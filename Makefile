GO ?= go

.PHONY: all build vet test race fuzz bench-gate bench-kernel bench-snapshot bench-load load-smoke sustained-gate chaos-gate svc-smoke metrics-smoke shard-gate clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The whole module under the race detector — the batch crypto layer runs
# a 64-goroutine key-sharing hammer, internal/parallel a cancellation
# leak check, internal/obs the registry hammer.
race:
	$(GO) test -race ./...

# Short burst of every fuzz target (15s each by default; FUZZTIME=1m
# for longer local runs).
fuzz:
	./scripts/fuzz-pass.sh ./internal/core ./internal/wire ./internal/modmath ./internal/svc ./internal/shard ./internal/parallel

# The CI benchmark-regression gate, runnable locally: the serial vs
# parallel pipeline benchmarks, then the LSP query-phase speedup gate
# against the committed baseline. Refresh the baseline by copying
# BENCH_parallel.ci.json over BENCH_parallel.json on representative
# hardware.
bench-gate:
	$(GO) test -run '^$$' -bench 'Paillier|LSP|Pipeline' -benchtime 1x -count 3 .
	$(GO) run ./cmd/ppgnn-experiments -parallel-gate -gate-reps 3 \
		-gate-baseline BENCH_parallel.json -gate-out BENCH_parallel.ci.json

# The modular-exponentiation kernel gate: Straus multi-exp on vs off for
# ⊙, ⨂, threshold combine, and one end-to-end δ'=101 query, with
# byte-identical exact outputs enforced. Refresh the baseline by copying
# BENCH_kernel.ci.json over BENCH_kernel.json on representative hardware.
bench-kernel:
	$(GO) run ./cmd/ppgnn-experiments -kernel-gate -gate-reps 3 \
		-kernel-baseline BENCH_kernel.json -kernel-out BENCH_kernel.ci.json

# Seeded n=5 t=3 faultnet soak; writes per-phase p50/p95, retry/dropout
# counters, and the Precomputer hit rate to BENCH_obs.json (DESIGN.md §9).
bench-snapshot:
	$(GO) run ./cmd/ppgnn-experiments -snapshot -keybits 256 -queries 6

# The open-loop sustained-traffic conformance gate (ROADMAP item 5): an
# in-process LSP on real TCP, a fleet of client groups at a fixed Poisson
# rate, one clean pass and one under seeded faultnet faults, every
# decrypted answer checked against the plaintext engine. Fails on any SLO
# violation or oracle mismatch. Refresh the baseline by copying
# BENCH_load.ci.json over BENCH_load.json on representative hardware.
bench-load:
	$(GO) run ./cmd/ppgnn-experiments -load-gate \
		-load-baseline BENCH_load.json -load-out BENCH_load.ci.json

# The ~20s CI variant: lower rate, shorter measure window, same oracle
# check and SLOs.
load-smoke:
	$(GO) run ./cmd/ppgnn-experiments -load-gate -load-rate 25 -load-measure 4s \
		-load-baseline BENCH_load.json -load-out BENCH_load.ci.json

# The steady-state throughput gate (DESIGN.md §15): the load gate plus
# two sustained passes — coalescer off then on, with background-refilled
# randomness pools and the shared constant cache engaged in both — a
# byte-identity probe of the coalesced path, and the ≥1.3× achieved-QPS
# floor on ≥2 cores (loudly skipped on one core; conformance and
# byte-identity always enforced).
sustained-gate:
	$(GO) run ./cmd/ppgnn-experiments -load-gate -sustained \
		-load-baseline BENCH_load.json -load-out BENCH_load.ci.json

# The multi-tenant lifecycle soak: two tenants under concurrent traffic
# (one behind seeded faults, one with a quota of a single session) while
# a reload storm rewrites the config mid-traffic. Fails on any oracle
# mismatch, lost session, epoch leak, or a shed not classified retryable.
chaos-gate:
	$(GO) run ./cmd/ppgnn-experiments -chaos-gate -chaos-out BENCH_chaos.ci.json

# The sharded-index gate (ROADMAP item 2): single-tree vs sharded+grid
# indexes at 10k/100k/1M synthetic POIs — per-candidate answers identical
# across paths (brute-force oracle-checked at 10k), encrypted answers
# byte-identical, candidate work sub-linear in database size, parallel
# sweep speedup floor on multi-core hardware. Refresh the baseline by
# copying BENCH_shard.ci.json over BENCH_shard.json on representative
# hardware.
shard-gate:
	$(GO) run ./cmd/ppgnn-experiments -shard-gate -gate-reps 3 \
		-shard-baseline BENCH_shard.json -shard-out BENCH_shard.ci.json

# Boot a two-tenant ppgnn-lsp from a config file, probe /healthz and
# /readyz, SIGHUP-reload it mid-load, then run the chaos soak (the CI
# svc-smoke job).
svc-smoke:
	./scripts/svc-smoke.sh

# Start the LSP with -metrics-addr, query it once, and check the metrics
# endpoint serves a JSON snapshot (the CI smoke test).
metrics-smoke:
	./scripts/metrics-smoke.sh

clean:
	rm -f BENCH_obs.json BENCH_parallel.ci.json BENCH_kernel.ci.json BENCH_load.ci.json BENCH_chaos.ci.json BENCH_shard.ci.json
