GO ?= go

.PHONY: all build vet test race bench-snapshot metrics-smoke clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive stack (includes the 64-goroutine registry
# hammer in internal/obs).
race:
	$(GO) test -race ./internal/obs/... ./internal/group/... ./internal/transport/... ./internal/core/... ./internal/faultnet/... ./internal/wire/...

# Seeded n=5 t=3 faultnet soak; writes per-phase p50/p95, retry/dropout
# counters, and the Precomputer hit rate to BENCH_obs.json (DESIGN.md §9).
bench-snapshot:
	$(GO) run ./cmd/ppgnn-experiments -snapshot -keybits 256 -queries 6

# Start the LSP with -metrics-addr, query it once, and check the metrics
# endpoint serves a JSON snapshot (the CI smoke test).
metrics-smoke:
	./scripts/metrics-smoke.sh

clean:
	rm -f BENCH_obs.json
