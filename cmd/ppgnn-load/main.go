// Command ppgnn-load is the open-loop load generator for ppgnn-lsp: it
// drives a fleet of client groups at a fixed arrival rate (Poisson or
// metronome), measures per-stage latency quantiles, classifies every
// failure into the closed error taxonomy, and — by default — checks
// every decrypted answer against a local plaintext engine built over the
// same dataset the server loaded.
//
// Usage:
//
//	ppgnn-load [flags]
//
//	-addr A       ppgnn-lsp address (default 127.0.0.1:9042)
//	-self-host    ignore -addr; start an in-process LSP on a loopback
//	              listener and load it (single-binary smoke runs)
//	-dataset F    point file the server loaded (default: the bundled
//	              Sequoia substitute) — the oracle must see the same data
//	-rate R       offered arrivals per second (default 40)
//	-arrival M    poisson | fixed (default poisson)
//	-warmup D     unscored warm-up window (default 2s)
//	-measure D    scored window (default 10s)
//	-drain D      grace for the in-flight tail after arrivals stop
//	              (default 30s)
//	-groups N     independent client groups; arrivals round-robin and
//	              queue per group (default 8)
//	-group-size N users per group (default 4)
//	-keybits N    Paillier modulus (default 256 — the harness measures
//	              the service, not the paper's cost model)
//	-k N          POIs per answer (default 4)
//	-seed N       drives keys, locations, arrivals, and backoff jitter
//	-timeout D    per-query end-to-end bound, retries included (30s)
//	-max-in-flight N  client-side concurrency cap; excess arrivals are
//	              dropped and counted (default 512)
//	-precompute N encryption-randomness factors pooled per group before
//	              the run (default 64)
//	-refill N     keep each group's randomness pool topped up to N by a
//	              background refiller for the whole run (default 0 = the
//	              one-shot -precompute fill only)
//	-cache N      share one N-entry constant-ciphertext cache across the
//	              fleet; hits are rerandomized so ciphertexts never
//	              repeat on the wire (default 0 = off)
//	-coalesce     with -self-host, merge concurrent sessions' batch work
//	              on the in-process server (DESIGN.md §15)
//	-oracle       conformance-check every answer (default true; forces
//	              NoSanitize queries so answers are deterministic)
//	-out F        write the JSON report (the BENCH_load.json shape)
//	-slo-p95 D, -slo-p99 D, -slo-err F, -slo-qps-frac F
//	              objectives for the measure stage; violations (and any
//	              oracle mismatch, always) exit nonzero
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/load"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
	"ppgnn/internal/rtree"
	"ppgnn/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9042", "ppgnn-lsp address")
	selfHost := flag.Bool("self-host", false, "start an in-process LSP and load it (ignores -addr)")
	datasetPath := flag.String("dataset", "", "point file the server loaded (default: Sequoia substitute)")
	rate := flag.Float64("rate", 40, "offered arrivals per second")
	arrivalName := flag.String("arrival", "poisson", "arrival process: poisson|fixed")
	warmup := flag.Duration("warmup", 2*time.Second, "unscored warm-up window")
	measure := flag.Duration("measure", 10*time.Second, "scored window")
	drain := flag.Duration("drain", 30*time.Second, "grace for the in-flight tail")
	groups := flag.Int("groups", 8, "independent client groups")
	groupSize := flag.Int("group-size", 4, "users per group")
	keybits := flag.Int("keybits", 256, "Paillier modulus in bits")
	k := flag.Int("k", 4, "POIs per answer")
	seed := flag.Int64("seed", 1, "base RNG seed")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query end-to-end bound, retries included")
	maxInFlight := flag.Int("max-in-flight", 512, "client-side concurrency cap")
	precompute := flag.Int("precompute", 64, "randomness factors pooled per group before the run")
	refill := flag.Int("refill", 0, "background-refilled pool floor per group (0 = one-shot -precompute only)")
	cacheSize := flag.Int("cache", 0, "shared constant-ciphertext cache entries across the fleet (0 = off)")
	coalesce := flag.Bool("coalesce", false, "with -self-host, coalesce concurrent sessions' batches on the in-process server")
	oracleOn := flag.Bool("oracle", true, "conformance-check every answer against the plaintext engine")
	out := flag.String("out", "", "write the JSON report here")
	sloP95 := flag.Duration("slo-p95", 0, "measure-stage p95 bound (0 = unchecked)")
	sloP99 := flag.Duration("slo-p99", 0, "measure-stage p99 bound (0 = unchecked)")
	sloErr := flag.Float64("slo-err", 1, "measure-stage max error rate (1 = unchecked)")
	sloQPSFrac := flag.Float64("slo-qps-frac", 0, "min achieved/offered qps fraction (0 = unchecked)")
	flag.Parse()

	arrival, err := load.ParseArrival(*arrivalName)
	if err != nil {
		fatal(err)
	}
	var items []rtree.Item
	if *datasetPath != "" {
		if items, err = dataset.LoadFile(*datasetPath); err != nil {
			fatal(err)
		}
	} else {
		items = dataset.Sequoia(dataset.DefaultSeed)
	}

	target := *addr
	if *selfHost {
		srv := transport.NewServer(core.NewLSP(items, geo.UnitRect))
		if *coalesce {
			co := parallel.NewCoalescer(0, parallel.CoalesceOptions{})
			defer co.Close()
			srv.Coalescer = co
		}
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		target = bound.String()
		log.Printf("ppgnn-load: self-hosting %d POIs on %s (coalesce=%v)", len(items), target, *coalesce)
	} else if *coalesce {
		fatal(fmt.Errorf("-coalesce configures the in-process server and needs -self-host; the daemon takes its own -coalesce flag"))
	}

	fc := load.FleetConfig{
		Addr:         target,
		Groups:       *groups,
		GroupSize:    *groupSize,
		KeyBits:      *keybits,
		K:            *k,
		Seed:         *seed,
		QueryTimeout: *timeout,
		Precompute:   *precompute,
		Refill:       *refill,
		CacheSize:    *cacheSize,
	}
	if *oracleOn {
		// The oracle is a local plaintext engine over the same dataset;
		// answers only match if the server loaded identical points.
		lsp := core.NewLSP(items, geo.UnitRect)
		fc.Oracle = func(q []geo.Point, kk int) []gnn.Result { return lsp.Search(q, kk, gnn.Sum) }
	}
	fleet, err := load.NewFleet(fc)
	if err != nil {
		fatal(err)
	}
	defer fleet.Close()

	d, err := load.NewDriver(load.Config{
		Rate:          *rate,
		Arrival:       arrival,
		Warmup:        *warmup,
		Measure:       *measure,
		Drain:         *drain,
		MaxInFlight:   *maxInFlight,
		Seed:          *seed,
		OracleChecked: fc.Oracle != nil,
		Obs:           obs.Default(),
		Logf:          log.Printf,
	}, fleet)
	if err != nil {
		fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		fatal(err)
	}

	for i := range rep.Stages {
		fmt.Println(rep.Stages[i].Summary())
	}
	fmt.Printf("run     arrivals=%d abandoned=%d peak-in-flight=%d sched-lag-p99=%.4fs oracle-mismatches=%d cores=%d\n",
		rep.Arrivals, rep.Abandoned, rep.PeakInFlight, rep.SchedLagP99, rep.Mismatches(), rep.Cores)

	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	slo := load.SLO{P95: *sloP95, P99: *sloP99, MaxErrorRate: *sloErr, MinThroughputFrac: *sloQPSFrac}
	if err := slo.Check(rep); err != nil {
		fatal(err)
	}
	fmt.Println("slo: PASS (" + slo.String() + ")")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-load:", err)
	os.Exit(1)
}
