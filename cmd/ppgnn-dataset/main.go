// Command ppgnn-dataset generates, inspects, and converts POI datasets for
// the LSP.
//
// Usage:
//
//	ppgnn-dataset -gen out.txt [-n 62556] [-seed 20180326]   generate synthetic POIs
//	ppgnn-dataset -stats file.txt                            print dataset statistics
//	ppgnn-dataset -stats ""                                  statistics of the bundled substitute
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ppgnn"
	"ppgnn/internal/dataset"
)

func main() {
	gen := flag.String("gen", "", "write a synthetic dataset to this path")
	n := flag.Int("n", dataset.SequoiaSize, "POI count for -gen")
	seed := flag.Int64("seed", dataset.DefaultSeed, "seed for -gen")
	stats := flag.Bool("stats", false, "print statistics of -file (or the bundled substitute)")
	file := flag.String("file", "", "dataset file for -stats")
	flag.Parse()

	switch {
	case *gen != "":
		items := dataset.Synthetic(*seed, *n)
		f, err := os.Create(*gen)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dataset.Save(f, items); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d POIs to %s (seed %d)\n", len(items), *gen, *seed)
	case *stats:
		var items []ppgnn.POI
		var err error
		if *file != "" {
			items, err = ppgnn.LoadDatasetFile(*file)
			if err != nil {
				fatal(err)
			}
		} else {
			items = ppgnn.SequoiaDataset()
		}
		printStats(items)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printStats reports counts, bounds, and a coarse clustering measure
// (max/mean occupancy over a 16×16 grid).
func printStats(items []ppgnn.POI) {
	if len(items) == 0 {
		fatal(fmt.Errorf("empty dataset"))
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	const g = 16
	var cells [g * g]int
	for _, it := range items {
		minX = math.Min(minX, it.P.X)
		minY = math.Min(minY, it.P.Y)
		maxX = math.Max(maxX, it.P.X)
		maxY = math.Max(maxY, it.P.Y)
		cx := int(it.P.X * g)
		cy := int(it.P.Y * g)
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		cells[cy*g+cx]++
	}
	maxOcc, occupied := 0, 0
	for _, c := range cells {
		if c > maxOcc {
			maxOcc = c
		}
		if c > 0 {
			occupied++
		}
	}
	mean := float64(len(items)) / (g * g)
	fmt.Printf("POIs:          %d\n", len(items))
	fmt.Printf("bounds:        [%.4f, %.4f] x [%.4f, %.4f]\n", minX, maxX, minY, maxY)
	fmt.Printf("grid cells:    %d/%d occupied (16x16)\n", occupied, g*g)
	fmt.Printf("max/mean cell: %.1f (1.0 = uniform; >3 = clustered)\n", float64(maxOcc)/mean)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-dataset:", err)
	os.Exit(1)
}
