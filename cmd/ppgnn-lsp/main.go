// Command ppgnn-lsp runs a location-based service provider as a TCP
// daemon. Groups query it with cmd/ppgnn -connect or the library's Dial.
//
// Usage:
//
//	ppgnn-lsp [flags]
//
//	-addr A      listen address (default :9042)
//	-dataset F   point file (default: the bundled Sequoia substitute)
//	-workers N   worker-pool width for candidate queries and the
//	             homomorphic selection (default 0 = GOMAXPROCS)
//	-seed N      sanitation RNG seed
//	-quiet       suppress per-connection logs
//	-max-conns N      connection limit; excess clients are shed with a
//	                  retryable busy reply (default 0 = unlimited)
//	-max-locations N  location frames accepted per session (default 4096)
//	-read-timeout D   per-frame read deadline within a session (default 30s)
//	-drain-timeout D  grace for in-flight sessions on shutdown (default 10s)
//	-metrics-addr A   serve the JSON metrics snapshot and pprof on A
//	                  (e.g. 127.0.0.1:9043; default off). The snapshot is
//	                  privacy-safe by construction: DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ppgnn"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
	"ppgnn/internal/transport"
)

func main() {
	addr := flag.String("addr", ":9042", "listen address")
	datasetPath := flag.String("dataset", "", "point file (default: Sequoia substitute)")
	workers := flag.Int("workers", 0, "worker-pool width for candidate queries and homomorphic selection (0 = all cores)")
	seed := flag.Int64("seed", 1, "sanitation RNG seed")
	quiet := flag.Bool("quiet", false, "suppress per-connection logs")
	maxConns := flag.Int("max-conns", 0, "connection limit, 0 = unlimited")
	maxLocations := flag.Int("max-locations", transport.DefaultMaxLocations, "location frames accepted per session")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline within a session")
	drainTimeout := flag.Duration("drain-timeout", transport.DefaultDrainTimeout, "grace for in-flight sessions on shutdown")
	metricsAddr := flag.String("metrics-addr", "", "serve JSON metrics snapshot and pprof on this address (default off)")
	flag.Parse()

	var pois []ppgnn.POI
	var err error
	if *datasetPath != "" {
		pois, err = ppgnn.LoadDatasetFile(*datasetPath)
		if err != nil {
			fatal(err)
		}
	} else {
		pois = ppgnn.SequoiaDataset()
	}
	// Flag semantics: 0 = GOMAXPROCS. The library keeps 0 = sequential
	// (the paper's cost accounting), so resolve here and size the
	// process-default pool to match.
	poolWidth := *workers
	if poolWidth <= 0 {
		poolWidth = runtime.GOMAXPROCS(0)
	}
	parallel.SetDefaultWorkers(poolWidth)
	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)
	server.Workers = poolWidth
	server.SanitizeSeed = *seed

	srv := transport.NewServer(server)
	srv.MaxConns = *maxConns
	srv.MaxLocations = *maxLocations
	srv.ReadTimeout = *readTimeout
	srv.DrainTimeout = *drainTimeout
	if !*quiet {
		srv.Logf = log.Printf
	}
	if *metricsAddr != "" {
		maddr, stop, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		defer stop()
		log.Printf("ppgnn-lsp: metrics on http://%s/metrics (pprof under /debug/pprof/)", maddr)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("ppgnn-lsp: serving %d POIs on %s (workers=%d max-conns=%d)", len(pois), bound, poolWidth, *maxConns)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("ppgnn-lsp: draining (up to %v)", *drainTimeout)
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-lsp:", err)
	os.Exit(1)
}
