// Command ppgnn-lsp runs a location-based service provider as a TCP
// daemon. Groups query it with cmd/ppgnn -connect or the library's Dial.
//
// Usage:
//
//	ppgnn-lsp [flags]
//
//	-addr A      listen address (default :9042)
//	-dataset F   point file (default: the bundled Sequoia substitute)
//	-workers N   parallel candidate-query workers (default 1)
//	-seed N      sanitation RNG seed
//	-quiet       suppress per-connection logs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"ppgnn"
	"ppgnn/internal/transport"
)

func main() {
	addr := flag.String("addr", ":9042", "listen address")
	datasetPath := flag.String("dataset", "", "point file (default: Sequoia substitute)")
	workers := flag.Int("workers", 1, "parallel candidate-query workers")
	seed := flag.Int64("seed", 1, "sanitation RNG seed")
	quiet := flag.Bool("quiet", false, "suppress per-connection logs")
	flag.Parse()

	var pois []ppgnn.POI
	var err error
	if *datasetPath != "" {
		pois, err = ppgnn.LoadDatasetFile(*datasetPath)
		if err != nil {
			fatal(err)
		}
	} else {
		pois = ppgnn.SequoiaDataset()
	}
	server := ppgnn.NewServer(pois, ppgnn.UnitSpace)
	server.Workers = *workers
	server.SanitizeSeed = *seed

	srv := transport.NewServer(server)
	if !*quiet {
		srv.Logf = log.Printf
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("ppgnn-lsp: serving %d POIs on %s (workers=%d)", len(pois), bound, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("ppgnn-lsp: shutting down")
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-lsp:", err)
	os.Exit(1)
}
