// Command ppgnn-lsp runs a location-based service provider as a TCP
// daemon. Groups query it with cmd/ppgnn -connect or the library's Dial.
//
// Usage:
//
//	ppgnn-lsp [flags]
//
//	-addr A      listen address (default :9042)
//	-config F    multi-tenant service config (JSON; see README). Enables
//	             the lifecycle layer: named tenants with per-tenant
//	             quotas, SIGHUP hot reload, adaptive admission control,
//	             /healthz + /readyz on the metrics address, and the
//	             crash-budget watchdog. Mutually exclusive with -dataset
//	             and -seed, which configure the single-tenant legacy mode.
//	-dataset F   point file (default: the bundled Sequoia substitute)
//	-workers N   worker-pool width for candidate queries and the
//	             homomorphic selection (default 0 = GOMAXPROCS)
//	-seed N      sanitation RNG seed (single-tenant mode)
//	-shards N    shard the POI index across N parallel R-trees
//	             (0/1 = single tree; single-tenant mode — multi-tenant
//	             mode takes per-tenant "shards" in the config)
//	-prune-grid  enable the hierarchical grid pruning stage in front of
//	             the index (single-tenant mode; DESIGN.md §14)
//	-coalesce    merge the homomorphic batch work of concurrently
//	             admitted sessions into shared worker submissions
//	             (DESIGN.md §15). Per-session answers stay byte-identical
//	             to the uncoalesced path; the win is steady-state QPS on
//	             multi-core hosts.
//	-pool-target N  floor (per key) for the background-refilled
//	             rerandomization pools behind tenants with
//	             "rerandomize": true (default 16; multi-tenant mode —
//	             the refiller scales above it with admission load)
//	-quiet       suppress per-connection logs
//	-max-conns N      connection limit; excess clients are shed with a
//	                  retryable busy reply (default 0 = unlimited)
//	-max-locations N  location frames accepted per session (default 4096)
//	-read-timeout D   per-frame read deadline within a session (default 30s)
//	-drain-timeout D  grace for in-flight sessions on shutdown (default 10s)
//	-crash-budget N   session panics within -crash-window that trip the
//	                  watchdog and fail the process (default 5; -1 disables)
//	-crash-window D   watchdog sliding window (default 1m)
//	-metrics-addr A   serve the JSON metrics snapshot, pprof, and (with
//	                  -config) /healthz + /readyz on A
//	                  (e.g. 127.0.0.1:9043; default off). The snapshot is
//	                  privacy-safe by construction: DESIGN.md §9.
//	-trace-sample F   head-sampling rate in [0,1] for locally originated
//	                  traces (default 1). Wire-propagated trace ids are
//	                  always honoured. The flight recorder serves the
//	                  retained traces at /traces and /traces/slow on the
//	                  metrics address; attributes are closed-enum buckets
//	                  only (DESIGN.md §9).
//	-trace-slow D     root duration at which a trace is retained in the
//	                  always-kept slow/failed reservoir (default 1s)
//
// Signals: SIGHUP re-reads -config and swaps tenants atomically (a
// rejected config keeps the old epoch serving); SIGINT/SIGTERM drain.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ppgnn"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
	"ppgnn/internal/svc"
	"ppgnn/internal/transport"
)

func main() {
	addr := flag.String("addr", ":9042", "listen address")
	configPath := flag.String("config", "", "multi-tenant service config (JSON); enables SIGHUP reload and admission control")
	datasetPath := flag.String("dataset", "", "point file (default: Sequoia substitute; single-tenant mode)")
	workers := flag.Int("workers", 0, "worker-pool width for candidate queries and homomorphic selection (0 = all cores)")
	seed := flag.Int64("seed", 1, "sanitation RNG seed (single-tenant mode)")
	shards := flag.Int("shards", 0, "shard the POI index across N parallel R-trees (0/1 = single tree; single-tenant mode)")
	pruneGrid := flag.Bool("prune-grid", false, "enable the hierarchical grid pruning stage (single-tenant mode)")
	coalesce := flag.Bool("coalesce", false, "merge concurrent sessions' homomorphic batches into shared submissions")
	poolTarget := flag.Int("pool-target", svc.DefaultPoolTarget, "per-key floor for background-refilled rerandomization pools (multi-tenant mode)")
	quiet := flag.Bool("quiet", false, "suppress per-connection logs")
	maxConns := flag.Int("max-conns", 0, "connection limit, 0 = unlimited")
	maxLocations := flag.Int("max-locations", transport.DefaultMaxLocations, "location frames accepted per session")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline within a session")
	drainTimeout := flag.Duration("drain-timeout", transport.DefaultDrainTimeout, "grace for in-flight sessions on shutdown")
	crashBudget := flag.Int("crash-budget", 5, "session panics within -crash-window that fail the process (-1 disables)")
	crashWindow := flag.Duration("crash-window", time.Minute, "crash-budget watchdog window")
	metricsAddr := flag.String("metrics-addr", "", "serve JSON metrics snapshot, pprof, and health endpoints on this address (default off)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate in [0,1] for locally originated traces")
	traceSlow := flag.Duration("trace-slow", obs.DefaultSlowThreshold, "root duration at which a trace enters the slow/failed reservoir")
	flag.Parse()
	if *configPath != "" && (*datasetPath != "" || *seed != 1 || *shards != 0 || *pruneGrid) {
		fatal(fmt.Errorf("-config is the multi-tenant mode; -dataset, -seed, -shards, and -prune-grid belong to the single-tenant mode (use per-tenant config fields)"))
	}

	// The flight recorder hangs off the default registry the transport
	// layer records into; configure it before any session can start.
	recorder := obs.Default().Recorder()
	recorder.SetSampleRate(*traceSample)
	recorder.SetSlowThreshold(*traceSlow)

	// Flag semantics: 0 = GOMAXPROCS. The library keeps 0 = sequential
	// (the paper's cost accounting), so resolve here and size the
	// process-default pool to match.
	poolWidth := *workers
	if poolWidth <= 0 {
		poolWidth = runtime.GOMAXPROCS(0)
	}
	parallel.SetDefaultWorkers(poolWidth)

	var srv *transport.Server
	var service *svc.Service
	if *configPath != "" {
		cfg, err := svc.LoadConfigFile(*configPath)
		if err != nil {
			fatal(err)
		}
		service, err = svc.New(cfg, svc.Options{
			ConfigPath:  *configPath,
			Workers:     poolWidth,
			PoolTarget:  *poolTarget,
			CrashBudget: *crashBudget,
			CrashWindow: *crashWindow,
			Logf:        log.Printf,
			// Incident dumps (watchdog trip, rejected reload) land on
			// stderr so the surrounding traces survive a process death.
			TraceSink: func(d *obs.TraceDump) {
				log.Printf("ppgnn-lsp: flight recorder dump (%s): %d recent, %d slow/failed traces",
					d.Reason, len(d.Recent), len(d.Slow))
				os.Stderr.Write(append(d.JSON(), '\n'))
			},
		})
		if err != nil {
			fatal(err)
		}
		srv = transport.NewServer(nil)
		srv.Admitter = service
		srv.OnSessionPanic = service.OnSessionPanic
	} else {
		var pois []ppgnn.POI
		var err error
		if *datasetPath != "" {
			pois, err = ppgnn.LoadDatasetFile(*datasetPath)
			if err != nil {
				fatal(err)
			}
		} else {
			pois = ppgnn.SequoiaDataset()
		}
		server := ppgnn.NewIndexedServer(pois, ppgnn.UnitSpace, ppgnn.IndexOptions{
			Shards:    *shards,
			PruneGrid: *pruneGrid,
		})
		server.Workers = poolWidth
		server.SanitizeSeed = *seed
		srv = transport.NewServer(server)
		if sc := server.ShardCount(); sc > 1 || *pruneGrid {
			log.Printf("ppgnn-lsp: single-tenant mode, %d POIs (shards=%d prune-grid=%v)", len(pois), sc, *pruneGrid)
		} else {
			log.Printf("ppgnn-lsp: single-tenant mode, %d POIs", len(pois))
		}
	}
	if *coalesce {
		co := parallel.NewCoalescer(poolWidth, parallel.CoalesceOptions{})
		defer co.Close()
		srv.Coalescer = co
		log.Printf("ppgnn-lsp: cross-session coalescing on (width %d)", poolWidth)
	}
	srv.MaxConns = *maxConns
	srv.MaxLocations = *maxLocations
	srv.ReadTimeout = *readTimeout
	srv.DrainTimeout = *drainTimeout
	if !*quiet {
		srv.Logf = log.Printf
	}
	if *metricsAddr != "" {
		maddr, stop, err := obs.ServeMux(*metricsAddr, obs.Default(), func(mux *http.ServeMux) {
			if service != nil {
				service.RegisterHealth(mux)
			}
		})
		if err != nil {
			fatal(err)
		}
		defer stop()
		if service != nil {
			log.Printf("ppgnn-lsp: metrics on http://%s/metrics, health on /healthz and /readyz (pprof under /debug/pprof/)", maddr)
		} else {
			log.Printf("ppgnn-lsp: metrics on http://%s/metrics (pprof under /debug/pprof/)", maddr)
		}
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	if service != nil {
		log.Printf("ppgnn-lsp: serving on %s (workers=%d max-conns=%d, SIGHUP reloads %s)",
			bound, poolWidth, *maxConns, *configPath)
	} else {
		log.Printf("ppgnn-lsp: serving on %s (workers=%d max-conns=%d)", bound, poolWidth, *maxConns)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 4)
	signal.Notify(hup, syscall.SIGHUP)

	var fatalCh <-chan struct{}
	if service != nil {
		fatalCh = service.Fatal()
	}
	for {
		select {
		case <-hup:
			if service == nil {
				log.Printf("ppgnn-lsp: SIGHUP ignored (no -config; single-tenant mode has nothing to reload)")
				continue
			}
			if err := service.Reload(); err != nil {
				log.Printf("ppgnn-lsp: reload rejected, keeping current epoch: %v", err)
			} else {
				log.Printf("ppgnn-lsp: reload applied, epoch %d", service.Epoch())
			}
			continue
		case <-fatalCh:
			log.Printf("ppgnn-lsp: crash-budget watchdog tripped, draining and exiting")
			srv.Close()
			os.Exit(1)
		case <-stop:
		}
		break
	}
	log.Printf("ppgnn-lsp: draining (up to %v)", *drainTimeout)
	if service != nil {
		service.Close()
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-lsp:", err)
	os.Exit(1)
}
