// Command ppgnn-experiments regenerates the tables and figures of the
// paper's evaluation (Section 8). Each figure is printed as text tables
// with the same x-axes and series as the paper.
//
// Usage:
//
//	ppgnn-experiments [flags]
//
//	-exp all|fig5|fig6|fig7|fig8|table2|table3|table4|mobile
//	     which experiment to run (default all)
//	-queries N   queries averaged per data point (default 3; paper: 500)
//	-keybits N   Paillier modulus size (default 1024, as in the paper)
//	-quick       endpoint-only sweeps with small defaults (smoke test)
//	-dataset F   load a real point file instead of the Sequoia substitute
//	-seed N      base RNG seed
//
// Absolute timings differ from the paper's C++/GMP testbed; the shapes
// (who wins, growth rates, crossovers) are the reproduction target. See
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppgnn/internal/dataset"
	"ppgnn/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig5|fig6|fig7|fig8|table2|table3|table4|mobile")
	queries := flag.Int("queries", 3, "queries averaged per data point")
	keybits := flag.Int("keybits", 1024, "Paillier modulus size in bits")
	quick := flag.Bool("quick", false, "endpoint-only sweeps (smoke test)")
	datasetPath := flag.String("dataset", "", "optional point file (e.g. the real Sequoia data)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	flag.Parse()

	cfg := experiments.Config{
		Queries: *queries,
		KeyBits: *keybits,
		Seed:    *seed,
		Quick:   *quick,
	}
	if *datasetPath != "" {
		items, err := dataset.LoadFile(*datasetPath)
		if err != nil {
			fatal(err)
		}
		cfg.Items = items
	}

	type job struct {
		name string
		run  func() error
	}
	printTables := func(fn func() ([]*experiments.Table, error)) func() error {
		return func() error {
			tables, err := fn()
			if err != nil {
				return err
			}
			for _, t := range tables {
				fmt.Println(t.Format())
			}
			return nil
		}
	}
	jobs := []job{
		{"table3", func() error { fmt.Println(cfg.Table3()); return nil }},
		{"table4", func() error { fmt.Println(experiments.Table4()); return nil }},
		{"table2", func() error {
			out, err := cfg.Table2()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		}},
		{"mobile", func() error {
			out, err := cfg.Mobile()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		}},
		{"fig5", printTables(cfg.Fig5)},
		{"fig6", printTables(cfg.Fig6)},
		{"fig7", printTables(cfg.Fig7)},
		{"fig8", printTables(cfg.Fig8)},
	}

	ran := false
	for _, j := range jobs {
		if *exp != "all" && *exp != j.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("=== %s ===\n", j.name)
		if err := j.run(); err != nil {
			fatal(fmt.Errorf("%s: %w", j.name, err))
		}
		fmt.Printf("[%s completed in %v]\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if kg, err := cfg.KeygenCost(); err == nil {
		fmt.Printf("(one-time %d-bit key generation: %v — excluded from per-query user cost)\n",
			cfg.Defaults().KeyBits, kg.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-experiments:", err)
	os.Exit(1)
}
