// Command ppgnn-experiments regenerates the tables and figures of the
// paper's evaluation (Section 8). Each figure is printed as text tables
// with the same x-axes and series as the paper.
//
// Usage:
//
//	ppgnn-experiments [flags]
//
//	-exp all|fig5|fig6|fig7|fig8|table2|table3|table4|mobile
//	     which experiment to run (default all)
//	-queries N   queries averaged per data point (default 3; paper: 500)
//	-keybits N   Paillier modulus size (default 1024, as in the paper)
//	-quick       endpoint-only sweeps with small defaults (smoke test)
//	-dataset F   load a real point file instead of the Sequoia substitute
//	-seed N      base RNG seed
//	-snapshot    instead of the paper experiments, run the seeded n=5 t=3
//	             faultnet soak and write its telemetry (per-phase p50/p95,
//	             retry counters, Precomputer hit rate) to -snapshot-out
//	-snapshot-out F  output file for -snapshot (default BENCH_obs.json)
//	-latency D   faultnet latency injected on every soak link (default 5ms)
//	-parallel-gate   measure the LSP query phase serial vs parallel, assert
//	             the answers are byte-identical, and write the timing report
//	             to -gate-out; exits nonzero if the speedup is below the CI
//	             floor or regresses against -gate-baseline
//	-gate-out F      output file for -parallel-gate (default BENCH_parallel.json)
//	-gate-baseline F committed baseline report to gate against (optional)
//	-gate-reps N     repetitions per width, best-of (default 3)
//	-kernel-gate     measure the homomorphic primitives (⊙, ⨂, threshold
//	             combine) and one end-to-end query with the modmath kernel
//	             on vs off on a single thread, assert byte-identical exact
//	             outputs and plaintext-identical short-rand answers, and
//	             write the report to -kernel-out; exits nonzero below the
//	             CI floors or on regression against -kernel-baseline
//	-kernel-out F      output file for -kernel-gate (default BENCH_kernel.json)
//	-kernel-baseline F committed baseline report to gate against (optional)
//	-load-gate   run the open-loop sustained-traffic conformance gate: an
//	             in-process LSP on real TCP, a fleet of client groups at a
//	             fixed arrival rate, every decrypted answer checked against
//	             the plaintext engine — once clean and once under seeded
//	             faultnet faults — and write the report to -load-out; exits
//	             nonzero on any SLO violation, oracle mismatch, or
//	             regression against -load-baseline
//	-load-out F      output file for -load-gate (default BENCH_load.json)
//	-load-baseline F committed baseline report to gate against (optional)
//	-load-rate R     offered arrivals/second (default 40)
//	-load-warmup D   unscored warm-up window (default 1s)
//	-load-measure D  scored window per pass (default 6s)
//	-load-faulted    include the faulted pass (default true)
//	-sustained       append the steady-state throughput section: a
//	                 coalesce-off and a coalesce-on pass with refilled
//	                 randomness pools and the shared constant cache, a
//	                 byte-identity probe, and the ≥1.3× floor on ≥2
//	                 cores (loudly skipped on one core)
//	-sustained-rate R     offered arrivals/second per sustained pass (120)
//	-sustained-measure D  scored window per sustained pass (0 = -load-measure)
//	-chaos-gate  run the multi-tenant lifecycle soak: two tenants under
//	             concurrent open-loop traffic (one behind seeded dial-kill
//	             and slow-link faults, one with a quota of a single session
//	             so the admission gate provably sheds) while a reload storm
//	             rewrites the service config mid-traffic — one write
//	             deliberately corrupt. Every answer is oracle-checked;
//	             exits nonzero on any mismatch, lost session, epoch leak,
//	             or an admission shed not classified retryable
//	-chaos-out F     output file for -chaos-gate (default BENCH_chaos.json)
//	-chaos-rate R    offered arrivals/second per tenant (default 25)
//	-chaos-measure D scored window (default 4s)
//	-chaos-reloads N valid reloads pushed mid-traffic (default 3)
//	-shard-gate  build the single-tree and sharded+grid POI indexes at
//	             10k/100k/1M synthetic POIs, assert every candidate kGNN
//	             answer identical across paths (and vs the brute-force
//	             oracle at 10k) and the encrypted answers byte-identical,
//	             and write candidate-work and wall-time curves to
//	             -shard-out; exits nonzero if pruning is not sub-linear,
//	             the parallel sweep misses its speedup floor (skipped
//	             loudly on one core), or the report regresses against
//	             -shard-baseline
//	-shard-out F      output file for -shard-gate (default BENCH_shard.json)
//	-shard-baseline F committed baseline report to gate against (optional)
//	-shard-count N    shard count K for -shard-gate (default 8)
//
// Absolute timings differ from the paper's C++/GMP testbed; the shapes
// (who wins, growth rates, crossovers) are the reproduction target. See
// EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ppgnn/internal/dataset"
	"ppgnn/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig5|fig6|fig7|fig8|table2|table3|table4|mobile")
	queries := flag.Int("queries", 3, "queries averaged per data point")
	keybits := flag.Int("keybits", 1024, "Paillier modulus size in bits")
	quick := flag.Bool("quick", false, "endpoint-only sweeps (smoke test)")
	datasetPath := flag.String("dataset", "", "optional point file (e.g. the real Sequoia data)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	snapshot := flag.Bool("snapshot", false, "run the n=5 t=3 faultnet soak and write its telemetry JSON")
	snapshotOut := flag.String("snapshot-out", "BENCH_obs.json", "output file for -snapshot")
	latency := flag.Duration("latency", 5*time.Millisecond, "faultnet latency per soak link (-snapshot)")
	parallelGate := flag.Bool("parallel-gate", false, "time the LSP query phase serial vs parallel and write the gate report")
	gateOut := flag.String("gate-out", "BENCH_parallel.json", "output file for -parallel-gate")
	gateBaseline := flag.String("gate-baseline", "", "baseline report to gate -parallel-gate against (optional)")
	gateReps := flag.Int("gate-reps", 3, "repetitions per width for -parallel-gate, best-of")
	kernelGate := flag.Bool("kernel-gate", false, "time the homomorphic primitives with the modmath kernel on vs off and write the gate report")
	kernelOut := flag.String("kernel-out", "BENCH_kernel.json", "output file for -kernel-gate")
	kernelBaseline := flag.String("kernel-baseline", "", "baseline report to gate -kernel-gate against (optional)")
	loadGate := flag.Bool("load-gate", false, "run the open-loop sustained-traffic conformance gate and write the report")
	loadOut := flag.String("load-out", "BENCH_load.json", "output file for -load-gate")
	loadBaseline := flag.String("load-baseline", "", "baseline report to gate -load-gate against (optional)")
	loadRate := flag.Float64("load-rate", 40, "offered arrivals/second for -load-gate")
	loadWarmup := flag.Duration("load-warmup", time.Second, "unscored warm-up window for -load-gate")
	loadMeasure := flag.Duration("load-measure", 6*time.Second, "scored window per -load-gate pass")
	loadFaulted := flag.Bool("load-faulted", true, "include the seeded-fault pass in -load-gate")
	sustained := flag.Bool("sustained", false, "append the steady-state section to -load-gate: coalesce-off vs coalesce-on passes with refilled pools and the shared constant cache")
	sustainedRate := flag.Float64("sustained-rate", 120, "offered arrivals/second for the -sustained passes")
	sustainedMeasure := flag.Duration("sustained-measure", 0, "scored window per -sustained pass (0 = -load-measure)")
	chaosGate := flag.Bool("chaos-gate", false, "run the multi-tenant lifecycle soak (reload storm + admission sheds + faults) and write the report")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output file for -chaos-gate")
	chaosRate := flag.Float64("chaos-rate", 25, "offered arrivals/second per tenant for -chaos-gate")
	chaosMeasure := flag.Duration("chaos-measure", 4*time.Second, "scored window for -chaos-gate")
	chaosReloads := flag.Int("chaos-reloads", 3, "valid config reloads pushed mid-traffic by -chaos-gate")
	shardGate := flag.Bool("shard-gate", false, "measure the sharded+grid POI index vs the single tree across database sizes and write the gate report")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "output file for -shard-gate")
	shardBaseline := flag.String("shard-baseline", "", "baseline report to gate -shard-gate against (optional)")
	shardCount := flag.Int("shard-count", 8, "shard count K for -shard-gate")
	flag.Parse()

	cfg := experiments.Config{
		Queries: *queries,
		KeyBits: *keybits,
		Seed:    *seed,
		Quick:   *quick,
	}
	if *datasetPath != "" {
		items, err := dataset.LoadFile(*datasetPath)
		if err != nil {
			fatal(err)
		}
		cfg.Items = items
	}

	if *parallelGate {
		start := time.Now()
		report, err := cfg.ParallelGate(0, *gateReps)
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*gateOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("parallel gate: keybits=%d δ'=%d workers=%d cores=%d reps=%d\n",
			report.KeyBits, report.DeltaPrime, report.Workers, report.Cores, report.Reps)
		fmt.Printf("  serial %v/op, parallel %v/op, speedup %.2fx (answers byte-identical), report in %s (%v)\n",
			time.Duration(report.SerialNsOp).Round(time.Microsecond),
			time.Duration(report.ParallelNsOp).Round(time.Microsecond),
			report.Speedup, *gateOut, time.Since(start).Round(time.Millisecond))
		var baseline *experiments.ParallelReport
		if *gateBaseline != "" {
			raw, err := os.ReadFile(*gateBaseline)
			if err != nil {
				fatal(err)
			}
			baseline = new(experiments.ParallelReport)
			if err := json.Unmarshal(raw, baseline); err != nil {
				fatal(fmt.Errorf("parsing %s: %w", *gateBaseline, err))
			}
			fmt.Printf("  baseline: serial %v/op, parallel %v/op, speedup %.2fx, cores=%d\n",
				time.Duration(baseline.SerialNsOp).Round(time.Microsecond),
				time.Duration(baseline.ParallelNsOp).Round(time.Microsecond),
				baseline.Speedup, baseline.Cores)
		}
		if err := report.Check(baseline); err != nil {
			fatal(err)
		}
		if reason := report.FloorSkipReason(); reason != "" {
			fmt.Printf("  gate: PASS with a caveat — %s\n", reason)
		} else {
			fmt.Println("  gate: PASS")
		}
		return
	}

	if *kernelGate {
		start := time.Now()
		report, err := cfg.KernelGate(*gateReps)
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*kernelOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("kernel gate: keybits=%d δ'=%d cores=%d reps=%d short-rand=%d bits\n",
			report.KeyBits, report.DeltaPrime, report.Cores, report.Reps, report.ShortRandBits)
		micro := func(name string, m experiments.KernelMicro) {
			fmt.Printf("  %-12s ref %v/op, kernel %v/op, speedup %.2fx\n", name,
				time.Duration(m.RefNsOp).Round(time.Microsecond),
				time.Duration(m.KernelNsOp).Round(time.Microsecond), m.Speedup)
		}
		micro("dot (⊙)", report.Dot)
		micro("mat (⨂)", report.Mat)
		micro("combine", report.Combine)
		micro("end-to-end", report.E2E)
		fmt.Printf("  exact outputs byte-identical, short-rand answer plaintext-identical, report in %s (%v)\n",
			*kernelOut, time.Since(start).Round(time.Millisecond))
		var baseline *experiments.KernelReport
		if *kernelBaseline != "" {
			raw, err := os.ReadFile(*kernelBaseline)
			if err != nil {
				fatal(err)
			}
			baseline = new(experiments.KernelReport)
			if err := json.Unmarshal(raw, baseline); err != nil {
				fatal(fmt.Errorf("parsing %s: %w", *kernelBaseline, err))
			}
			fmt.Printf("  baseline: ⊙ %.2fx, end-to-end %.2fx, cores=%d\n",
				baseline.Dot.Speedup, baseline.E2E.Speedup, baseline.Cores)
		}
		if err := report.Check(baseline); err != nil {
			fatal(err)
		}
		fmt.Println("  gate: PASS")
		return
	}

	if *loadGate {
		// The load gate measures the service under sustained traffic, not
		// the paper's cost model; unless -keybits was set explicitly it
		// runs at 256 bits so a CI smoke pass stays ~20s.
		gateCfg := cfg
		keybitsSet := false
		flag.Visit(func(f *flag.Flag) { keybitsSet = keybitsSet || f.Name == "keybits" })
		if !keybitsSet {
			gateCfg.KeyBits = 256
		}
		start := time.Now()
		report, err := gateCfg.LoadGate(experiments.LoadGateOptions{
			Rate:             *loadRate,
			Warmup:           *loadWarmup,
			Measure:          *loadMeasure,
			Faulted:          *loadFaulted,
			Sustained:        *sustained,
			SustainedRate:    *sustainedRate,
			SustainedMeasure: *sustainedMeasure,
			Logf:             func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		})
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*loadOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("load gate: keybits=%d cores=%d rate=%.3g/s measure=%v (%v total)\n",
			report.KeyBits, report.Cores, *loadRate, *loadMeasure, time.Since(start).Round(time.Millisecond))
		for _, p := range report.Passes {
			m := p.Report.Stage("measure")
			fmt.Printf("  %-7s %s\n          mismatches=%d abandoned=%d slo{%s}\n",
				p.Name, m.Summary(), p.Report.Mismatches(), p.Report.Abandoned, p.SLO)
			if p.SLOViolation != "" {
				fmt.Printf("          VIOLATION: %s\n", p.SLOViolation)
			}
		}
		if s := report.Sustained; s != nil {
			fmt.Printf("  sustained: rate=%.3g/s groups=%d byte-identical=%v\n", s.Rate, s.Groups, s.ByteIdentical)
			for _, p := range s.Passes {
				fmt.Printf("    %-12s achieved=%.2f/s offered=%.3g/s mismatches=%d abandoned=%d\n",
					p.Name, p.AchievedQPS, p.OfferedQPS, p.Mismatches, p.Abandoned)
			}
			if reason := s.FloorSkipReason(); reason != "" {
				fmt.Printf("    speedup=%.2fx — %s\n", s.Speedup, reason)
			} else {
				fmt.Printf("    speedup=%.2fx (floor 1.3x on %d cores)\n", s.Speedup, s.Cores)
			}
		}
		var baseline *experiments.LoadReport
		if *loadBaseline != "" {
			raw, err := os.ReadFile(*loadBaseline)
			if err != nil {
				fatal(err)
			}
			baseline = new(experiments.LoadReport)
			if err := json.Unmarshal(raw, baseline); err != nil {
				fatal(fmt.Errorf("parsing %s: %w", *loadBaseline, err))
			}
			if bm := baseline.Passes[0].Report.Stage("measure"); bm != nil {
				fmt.Printf("  baseline: clean p95=%.4fs achieved=%.2f/s cores=%d\n",
					bm.LatencyP95, bm.AchievedQPS, baseline.Cores)
			}
		}
		if err := report.Check(baseline); err != nil {
			fatal(err)
		}
		fmt.Println("  gate: PASS (every answer matched the plaintext oracle)")
		return
	}

	if *chaosGate {
		// Like -load-gate, the chaos gate measures the lifecycle layer,
		// not the cost model: default to 256-bit keys unless overridden.
		gateCfg := cfg
		keybitsSet := false
		flag.Visit(func(f *flag.Flag) { keybitsSet = keybitsSet || f.Name == "keybits" })
		if !keybitsSet {
			gateCfg.KeyBits = 256
		}
		start := time.Now()
		report, err := gateCfg.ChaosGate(experiments.ChaosGateOptions{
			Rate:    *chaosRate,
			Measure: *chaosMeasure,
			Reloads: *chaosReloads,
			Logf:    func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		})
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*chaosOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("chaos gate: keybits=%d cores=%d rate=%.3g/s/tenant measure=%v (%v total)\n",
			report.KeyBits, report.Cores, *chaosRate, *chaosMeasure, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  epochs=%d applied=%d rejected=%d watchdog=%d live=%d state=%s quota-sheds=%d\n",
			report.Epochs, report.AppliedReloads, report.RejectedReloads,
			report.WatchdogTrips, report.LiveEpochs, report.FinalState, report.QuotaSheds)
		for _, t := range report.Tenants {
			if m := t.Report.Stage("measure"); m != nil {
				fmt.Printf("  %-6s faulted=%-5v %s\n         mismatches=%d abandoned=%d busy=%d\n",
					t.Tenant, t.Faulted, m.Summary(), t.Report.Mismatches(),
					t.Report.Abandoned, m.Outcomes["busy"])
			}
		}
		if err := report.Check(); err != nil {
			fatal(err)
		}
		fmt.Println("  gate: PASS (oracle clean across every reload epoch)")
		return
	}

	if *shardGate {
		// The shard gate measures index layouts, not the cost model; the
		// crypto runs only as the byte-identity check, so unless -keybits
		// was set explicitly it runs at 256 bits to keep CI fast.
		gateCfg := cfg
		keybitsSet := false
		flag.Visit(func(f *flag.Flag) { keybitsSet = keybitsSet || f.Name == "keybits" })
		if !keybitsSet {
			gateCfg.KeyBits = 256
		}
		start := time.Now()
		report, err := gateCfg.ShardGate(*shardCount, *gateReps, nil)
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*shardOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("shard gate: keybits=%d δ'=%d k=%d shards=%d workers=%d cores=%d reps=%d (%v total)\n",
			report.KeyBits, report.DeltaPrime, report.K, report.Shards,
			report.Workers, report.Cores, report.Reps, time.Since(start).Round(time.Millisecond))
		for _, pt := range report.Sizes {
			oracle := ""
			if pt.OracleChecked {
				oracle = ", oracle-checked"
			}
			fmt.Printf("  %8d POIs: scanned single=%d sharded=%d, sweep single %v sharded %v (answers byte-identical%s)\n",
				pt.POIs, pt.ScannedSingle, pt.ScannedShard,
				time.Duration(pt.SweepSingleNs).Round(time.Microsecond),
				time.Duration(pt.SweepShardNs).Round(time.Microsecond), oracle)
		}
		fmt.Printf("  sweep speedup %.2fx at the largest size, report in %s\n", report.SweepSpeedup, *shardOut)
		var baseline *experiments.ShardReport
		if *shardBaseline != "" {
			raw, err := os.ReadFile(*shardBaseline)
			if err != nil {
				fatal(err)
			}
			baseline = new(experiments.ShardReport)
			if err := json.Unmarshal(raw, baseline); err != nil {
				fatal(fmt.Errorf("parsing %s: %w", *shardBaseline, err))
			}
			fmt.Printf("  baseline: speedup %.2fx, cores=%d\n", baseline.SweepSpeedup, baseline.Cores)
		}
		if err := report.Check(baseline); err != nil {
			fatal(err)
		}
		if reason := report.FloorSkipReason(); reason != "" {
			fmt.Printf("  gate: PASS with a caveat — %s\n", reason)
		} else {
			fmt.Println("  gate: PASS")
		}
		return
	}

	if *snapshot {
		start := time.Now()
		report, err := cfg.ObsSnapshot(*latency)
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snapshotOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("obs soak: %d/%d queries ok in %v (latency %v), report in %s\n",
			report.OK, report.Queries, time.Since(start).Round(time.Millisecond), *latency, *snapshotOut)
		for _, h := range report.Phases {
			fmt.Printf("  phase %-9s outcome %-8s n=%-4d p50=%8.4fs p95=%8.4fs\n",
				h.Labels["phase"], h.Labels["outcome"], h.Count, h.P50, h.P95)
		}
		fmt.Printf("  precompute pool hit rate %.2f, transport retries %d, dropouts %d\n",
			report.PoolHitRate, report.Retries, report.Dropouts)
		return
	}

	type job struct {
		name string
		run  func() error
	}
	printTables := func(fn func() ([]*experiments.Table, error)) func() error {
		return func() error {
			tables, err := fn()
			if err != nil {
				return err
			}
			for _, t := range tables {
				fmt.Println(t.Format())
			}
			return nil
		}
	}
	jobs := []job{
		{"table3", func() error { fmt.Println(cfg.Table3()); return nil }},
		{"table4", func() error { fmt.Println(experiments.Table4()); return nil }},
		{"table2", func() error {
			out, err := cfg.Table2()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		}},
		{"mobile", func() error {
			out, err := cfg.Mobile()
			if err != nil {
				return err
			}
			fmt.Println(out)
			return nil
		}},
		{"fig5", printTables(cfg.Fig5)},
		{"fig6", printTables(cfg.Fig6)},
		{"fig7", printTables(cfg.Fig7)},
		{"fig8", printTables(cfg.Fig8)},
	}

	ran := false
	for _, j := range jobs {
		if *exp != "all" && *exp != j.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("=== %s ===\n", j.name)
		if err := j.run(); err != nil {
			fatal(fmt.Errorf("%s: %w", j.name, err))
		}
		fmt.Printf("[%s completed in %v]\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if kg, err := cfg.KeygenCost(); err == nil {
		fmt.Printf("(one-time %d-bit key generation: %v — excluded from per-query user cost)\n",
			cfg.Defaults().KeyBits, kg.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn-experiments:", err)
	os.Exit(1)
}
