// Command ppgnn runs one privacy-preserving group kNN query end to end —
// either against an in-process LSP over the bundled Sequoia-substitute
// database, or against a remote ppgnn-lsp daemon.
//
// Usage:
//
//	ppgnn [flags] x1,y1 [x2,y2 ...]
//
// Each positional argument is one user's real location in the unit square.
//
//	-k N         POIs to retrieve (default 8)
//	-d N         Privacy I anonymity parameter (default 25)
//	-delta N     Privacy II anonymity parameter (default 100; = d for n=1)
//	-theta0 F    Privacy IV parameter (default 0.05)
//	-agg sum|max|min
//	-variant ppgnn|opt|naive
//	-keybits N   Paillier modulus size (default 1024)
//	-connect A   query a remote LSP at address A instead of in-process
//	-tenant T    route -connect sessions to tenant T of a multi-tenant
//	             LSP (default: the default tenant, no tenant frame)
//	-pool N      connection-pool size for -connect (default 4)
//	-retries N   resend attempts after a transient failure (default 3)
//	-query-timeout D  per-query deadline, retries included (default none)
//	-dataset F   point file for the in-process LSP
//	-no-sanitize disable answer sanitation (PPGNN-NAS)
//	-threshold T require T-of-n users to cooperate for decryption
//	-quorum-t T  run a quorum group session: complete with any T of the
//	             n users responding (in-process members; 0 = shared-memory
//	             group requiring all n)
//	-member-timeout D  per-member exchange deadline for -quorum-t
//	-members-tcp serve the -quorum-t members over loopback TCP
//	             MemberServers (accept-loop failures are logged) instead
//	             of in-process links
//	-ids         include POI database IDs in the answer
//	-workers N   worker-pool width for batch encryption/decryption and
//	             the in-process LSP (default 0 = GOMAXPROCS)
//	-v           print cost accounting
//	-metrics-addr A  serve the JSON metrics snapshot and pprof on A for
//	                 the process lifetime (default off); with -v the
//	                 snapshot is also printed to stderr after the query
//	-trace-sample F  head-sampling rate in [0,1] for the per-query trace
//	                 (default 1). The trace id rides a FrameTrace to the
//	                 remote LSP, whose flight recorder retains the
//	                 server-side span tree under the same id.
//	-trace-out F     after the query, write the client-side flight
//	                 recorder contents (the trace tree: session, collect,
//	                 partition, query, lsp, decrypt spans with closed-enum
//	                 attributes only) as JSON to file F
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"ppgnn"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
)

func main() {
	k := flag.Int("k", 8, "POIs to retrieve")
	d := flag.Int("d", 25, "Privacy I parameter d")
	delta := flag.Int("delta", 100, "Privacy II parameter delta")
	theta0 := flag.Float64("theta0", 0.05, "Privacy IV parameter theta0")
	agg := flag.String("agg", "sum", "aggregate function: sum|max|min")
	variant := flag.String("variant", "opt", "protocol variant: ppgnn|opt|naive")
	keybits := flag.Int("keybits", 1024, "Paillier modulus size")
	connect := flag.String("connect", "", "remote LSP address (default: in-process)")
	poolSize := flag.Int("pool", 4, "connection-pool size for -connect")
	retries := flag.Int("retries", 3, "resend attempts after a transient failure (-1 = none)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline, retries included (0 = none)")
	datasetPath := flag.String("dataset", "", "point file for the in-process LSP")
	shards := flag.Int("shards", 0, "shard the in-process LSP's index across N parallel R-trees (0/1 = single tree)")
	pruneGrid := flag.Bool("prune-grid", false, "enable the hierarchical grid pruning stage on the in-process LSP")
	noSanitize := flag.Bool("no-sanitize", false, "disable answer sanitation (PPGNN-NAS)")
	ids := flag.Bool("ids", false, "include POI IDs in the answer")
	verbose := flag.Bool("v", false, "print cost accounting")
	seed := flag.Int64("seed", 0, "RNG seed (0 = time-based)")
	threshold := flag.Int("threshold", 0, "require t-of-n users for decryption (0 = coordinator key)")
	quorumT := flag.Int("quorum-t", 0, "complete with any t-of-n users via a quorum group session (0 = require all)")
	memberTimeout := flag.Duration("member-timeout", 5*time.Second, "per-member exchange deadline for -quorum-t")
	membersTCP := flag.Bool("members-tcp", false, "serve -quorum-t members over loopback TCP MemberServers instead of in-process links")
	tenant := flag.String("tenant", "", "route -connect sessions to this tenant of a multi-tenant LSP (default: the default tenant)")
	metricsAddr := flag.String("metrics-addr", "", "serve JSON metrics snapshot and pprof on this address (default off)")
	workers := flag.Int("workers", 0, "worker-pool width for batch crypto and the in-process LSP (0 = all cores)")
	traceSample := flag.Float64("trace-sample", 1, "head-sampling rate in [0,1] for the per-query trace")
	traceOut := flag.String("trace-out", "", "write the client-side trace tree as JSON to this file after the query")
	shortRandBits := flag.Int("short-rand-bits", 0, "short-exponent encryption randomness width (0 = full-width, paper-faithful; changes the security assumption, see SECURITY.md)")
	flag.Parse()

	// 0 = GOMAXPROCS at the flag layer; the resolved width sizes the
	// process-default pool every batch crypto call draws from.
	parallel.SetDefaultWorkers(*workers)

	obs.Default().Recorder().SetSampleRate(*traceSample)

	if *metricsAddr != "" {
		maddr, stop, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (pprof under /debug/pprof/)\n", maddr)
	}

	locs, err := parseLocations(flag.Args())
	if err != nil {
		fatal(err)
	}

	p := ppgnn.DefaultParams(len(locs))
	p.K = *k
	p.D = *d
	p.Delta = *delta
	if len(locs) == 1 {
		p.Delta = p.D
	}
	p.Theta0 = *theta0
	p.KeyBits = *keybits
	p.ShortRandBits = *shortRandBits
	p.NoSanitize = *noSanitize
	p.IncludeIDs = *ids
	switch *agg {
	case "sum":
		p.Agg = ppgnn.Sum
	case "max":
		p.Agg = ppgnn.Max
	case "min":
		p.Agg = ppgnn.Min
	default:
		fatal(fmt.Errorf("unknown aggregate %q", *agg))
	}
	switch *variant {
	case "ppgnn":
		p.Variant = ppgnn.PPGNN
	case "opt":
		p.Variant = ppgnn.PPGNNOPT
	case "naive":
		p.Variant = ppgnn.Naive
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}

	var rng *rand.Rand
	if *seed != 0 {
		rng = rand.New(rand.NewSource(*seed))
	}
	// runQuery abstracts over the plain and threshold group types.
	var runQuery func(svc ppgnn.Service, meter *ppgnn.Meter) (*ppgnn.Result, error)
	var deltaPrime int
	var keygen time.Duration
	if *quorumT > 0 {
		// Quorum session: the coordinator at locs[0] collects the other
		// users' contributions over links and completes with any t of the
		// n responding (-threshold additionally makes decryption joint).
		var coord *ppgnn.Coordinator
		var shares []*ppgnn.KeyShare
		if *threshold > 0 {
			coord, shares, err = ppgnn.NewThresholdCoordinator(p, locs[0], rng, *threshold)
		} else {
			coord, err = ppgnn.NewCoordinator(p, locs[0], rng)
		}
		if err != nil {
			fatal(err)
		}
		links := make([]ppgnn.MemberLink, len(locs)-1)
		for i, loc := range locs[1:] {
			m := ppgnn.NewGroupMember(loc, rng)
			if shares != nil {
				m.TK, m.Share = coord.TK, shares[i]
			}
			if *membersTCP {
				// Each member behind a real loopback MemberServer: the
				// wire path the phones would use, accept-loop health
				// surfaced instead of dying silently.
				srv, err := ppgnn.ServeMember(m, "127.0.0.1:0")
				if err != nil {
					fatal(err)
				}
				member := i + 1
				srv.OnAcceptExit = func(err error) {
					if err != nil {
						fmt.Fprintf(os.Stderr, "member %d: accept loop died: %v\n", member, err)
					}
				}
				defer srv.Close()
				maddr, err := srv.Addr()
				if err != nil {
					fatal(err)
				}
				links[i] = ppgnn.DialGroupMember(maddr.String())
			} else {
				links[i] = ppgnn.InProcessMember(m)
			}
		}
		runQuery = func(svc ppgnn.Service, meter *ppgnn.Meter) (*ppgnn.Result, error) {
			sess, err := ppgnn.NewSession(coord, links, ppgnn.SessionConfig{
				Quorum: *quorumT, MemberTimeout: *memberTimeout, Seed: *seed, Meter: meter,
			})
			if err != nil {
				return nil, err
			}
			out, err := sess.Run(context.Background(), svc)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "session: %d/%d contributors, %d round(s)\n",
				len(out.Contributors), p.N, out.Rounds)
			return out.Result, nil
		}
		deltaPrime, _ = coord.DeltaPrime(p.N)
		keygen = coord.KeygenTime
	} else if *threshold > 0 {
		tg, err := ppgnn.NewThresholdGroup(p, locs, rng, *threshold)
		if err != nil {
			fatal(err)
		}
		runQuery = tg.Run
		deltaPrime = tg.DeltaPrime()
		keygen = tg.KeygenTime
	} else {
		group, err := ppgnn.NewGroup(p, locs, rng)
		if err != nil {
			fatal(err)
		}
		runQuery = group.Run
		deltaPrime = group.DeltaPrime()
		keygen = group.KeygenTime
	}

	var svc ppgnn.Service
	var meter ppgnn.Meter
	if *connect != "" {
		pool := ppgnn.NewPool(*connect)
		pool.Size = *poolSize
		pool.MaxRetries = *retries
		pool.QueryTimeout = *queryTimeout
		pool.Tenant = *tenant
		pool.Meter = &meter
		defer pool.Close()
		svc = pool
	} else {
		pois, err := loadPOIs(*datasetPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d POIs\n", len(pois))
		server := ppgnn.NewIndexedServer(pois, ppgnn.UnitSpace, ppgnn.IndexOptions{
			Shards:    *shards,
			PruneGrid: *pruneGrid,
		})
		server.Workers = parallel.Default().Workers()
		svc = ppgnn.LocalMetered(server, &meter)
	}

	start := time.Now()
	res, err := runQuery(svc, &meter)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("query: n=%d k=%d d=%d delta=%d (delta'=%d) theta0=%v agg=%s variant=%v\n",
		p.N, p.K, p.D, p.Delta, deltaPrime, p.Theta0, *agg, p.Variant)
	fmt.Printf("answer (%d POIs after sanitation):\n", len(res.Points))
	for i, pt := range res.Points {
		if p.IncludeIDs {
			fmt.Printf("  %2d. poi#%-8d (%.6f, %.6f)\n", i+1, res.Records[i].ID, pt.X, pt.Y)
		} else {
			fmt.Printf("  %2d. (%.6f, %.6f)\n", i+1, pt.X, pt.Y)
		}
	}
	if *traceOut != "" {
		// The flight recorder only holds closed-enum span trees, so the
		// file is as privacy-safe as the /traces endpoint it mirrors.
		d := obs.Default().Recorder().Dump("query")
		if err := os.WriteFile(*traceOut, append(d.JSON(), '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		fmt.Printf("total wall time: %v\n", elapsed.Round(time.Millisecond))
		fmt.Printf("costs: %v\n", meter.Snapshot())
		fmt.Printf("one-time keygen: %v\n", keygen.Round(time.Millisecond))
		if b, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  "); err == nil {
			fmt.Fprintf(os.Stderr, "metrics: %s\n", b)
		}
	}
}

func parseLocations(args []string) ([]ppgnn.Point, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no user locations given; usage: ppgnn [flags] x1,y1 [x2,y2 ...]")
	}
	out := make([]ppgnn.Point, len(args))
	for i, a := range args {
		parts := strings.Split(a, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("location %q: want x,y", a)
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("location %q: %w", a, err)
		}
		y, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("location %q: %w", a, err)
		}
		out[i] = ppgnn.Point{X: x, Y: y}
	}
	return out, nil
}

func loadPOIs(path string) ([]ppgnn.POI, error) {
	if path == "" {
		return ppgnn.SequoiaDataset(), nil
	}
	return ppgnn.LoadDatasetFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppgnn:", err)
	os.Exit(1)
}
