package transport

import (
	"math/rand"
	"sync"
	"testing"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/parallel"
)

// TestCoalescedServerSessions runs concurrent TCP query sessions
// against a server with a shared Coalescer: answers must be exact
// (each group's decrypted result matches the in-process LSP), and the
// wrap must not leak into the server's own LSP field.
func TestCoalescedServerSessions(t *testing.T) {
	co := parallel.NewCoalescer(2, parallel.CoalesceOptions{})
	defer co.Close()
	srv, addr := startServerWith(t, 1500, func(s *Server) {
		s.LSP.Workers = 2
		s.Coalescer = co
	})

	const sessions = 4
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(60 + i)))
			p := testParams(3, core.VariantPPGNN)
			locs := []geo.Point{
				{X: 0.2 + 0.01*float64(i), Y: 0.3}, {X: 0.4, Y: 0.5}, {X: 0.3, Y: 0.4},
			}
			g, err := core.NewGroup(p, locs, rng)
			if err != nil {
				errs[i] = err
				return
			}
			g.CacheSets = true
			cli, err := Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer cli.Close()
			res, err := g.Run(cli, nil)
			if err != nil {
				errs[i] = err
				return
			}
			// Same cached query against the raw (uncoalesced) LSP must
			// produce the same plaintext result.
			want, err := g.Run(core.LocalService{LSP: srv.LSP}, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if len(res.Points) != len(want.Points) {
				t.Errorf("session %d: %d points over TCP, %d locally", i, len(res.Points), len(want.Points))
				return
			}
			for j := range want.Points {
				if res.Points[j].Dist(want.Points[j]) > 1e-9 {
					t.Errorf("session %d point %d: %v != %v", i, j, res.Points[j], want.Points[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if srv.LSP.Coalesce != nil {
		t.Fatal("per-session wrap mutated the server's LSP")
	}
}
