package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/obs"
)

// Pool defaults; fields left zero on a Pool pick these up at first use.
const (
	DefaultPoolSize   = 4
	DefaultMaxRetries = 3
	DefaultRetryBase  = 50 * time.Millisecond
	DefaultRetryMax   = 2 * time.Second
)

// Pool is a fault-tolerant core.Service over a bounded pool of
// connections to one Server. It is safe for concurrent use: at most Size
// query sessions run at once (each on its own connection), healthy
// connections are reused across queries, and failed sessions are
// transparently resent.
//
// Retry semantics: a session is resent, on a fresh connection and after
// exponential backoff with jitter, only for errors core.IsRetryable
// classifies as transient — network failures before the first answer
// byte, and the server's busy/draining rejections. A PPGNN session is
// idempotent on the LSP side (the server keeps no cross-session state and
// a repeated session shows the LSP the same d-anonymous view it already
// saw), so resending from scratch is safe; see DESIGN.md "Transport
// reliability". Server rejections of the query itself are returned
// immediately — the same ciphertexts would only be rejected again.
type Pool struct {
	// Addr is the server address, as for Dial.
	Addr string
	// Size bounds concurrent sessions and pooled idle connections
	// (default DefaultPoolSize).
	Size int
	// MaxRetries is the number of resends after the first attempt
	// (default DefaultMaxRetries; negative = no retries).
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles per retry up to
	// RetryMax, each delay jittered in [½d, d).
	RetryBase time.Duration
	// RetryMax caps the backoff delay.
	RetryMax time.Duration
	// QueryTimeout bounds one Process call end to end, retries and
	// backoff included (0 = unbounded).
	QueryTimeout time.Duration
	// Tenant routes every session of this pool to a named tenant of a
	// multi-tenant server ("" or DefaultTenant = the default tenant, no
	// extra frame on the wire).
	Tenant string
	// Meter, when set, counts the bytes of every attempt — retried
	// sessions cost real cellular traffic, so resends are not netted out.
	Meter *cost.Meter
	// DialFunc replaces net.Dial (tests inject faultnet dialers).
	DialFunc func(addr string) (net.Conn, error)
	// Seed makes the backoff jitter deterministic (0 = seed 1).
	Seed int64
	// Obs receives the pool's telemetry (nil = obs.Default). See
	// DESIGN.md §9 for the metric catalog.
	Obs *obs.Registry

	initOnce sync.Once
	sem      chan struct{} // bounds connections checked out + idle
	mu       sync.Mutex
	idle     []net.Conn
	rng      *rand.Rand
	closed   bool

	// Pre-bound instruments (init populates them from Obs).
	mDialOK, mDialErr, mReuse, mBackoff *obs.Counter
	mSessions                           func(outcome string) *obs.Counter
	mRetries                            func(cause string) *obs.Counter
	mInflight                           *obs.Gauge
	rec                                 *obs.Recorder
}

// NewPool returns a Pool serving queries to addr with default sizing;
// adjust the exported fields before the first Process call.
func NewPool(addr string) *Pool { return &Pool{Addr: addr} }

func (p *Pool) init() {
	p.initOnce.Do(func() {
		if p.Size <= 0 {
			p.Size = DefaultPoolSize
		}
		if p.MaxRetries == 0 {
			p.MaxRetries = DefaultMaxRetries
		}
		if p.RetryBase <= 0 {
			p.RetryBase = DefaultRetryBase
		}
		if p.RetryMax <= 0 {
			p.RetryMax = DefaultRetryMax
		}
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
		p.sem = make(chan struct{}, p.Size)

		reg := p.Obs
		if reg == nil {
			reg = obs.Default()
		}
		p.mDialOK = reg.Counter("transport_dial_total", obs.L("outcome", "ok"))
		p.mDialErr = reg.Counter("transport_dial_total", obs.L("outcome", "error"))
		p.mReuse = reg.Counter("transport_conn_reuse_total")
		p.mBackoff = reg.Counter("transport_backoff_total")
		p.mInflight = reg.Gauge("transport_inflight")
		p.mSessions = func(outcome string) *obs.Counter {
			return reg.Counter("transport_sessions_total", obs.L("outcome", outcome))
		}
		p.mRetries = func(cause string) *obs.Counter {
			return reg.Counter("transport_retries_total", obs.L("cause", cause))
		}
		p.rec = reg.Recorder()
	})
}

// Process implements core.Service with automatic reconnect and retry.
//
// When every attempt fails, the returned error wraps the FULL cause
// chain of the retry loop via errors.Join — not just the last attempt's
// error — so typed causes (a *core.RemoteError behind two timeouts, a
// refused dial before a reset) stay matchable with errors.Is/errors.As
// after any number of resends.
func (p *Pool) Process(q *core.QueryMsg, locs []*core.LocationMsg) (ans *core.AnswerMsg, err error) {
	p.init()
	// An untraced caller (the load fleet, direct library use) still gets
	// flight-recorder coverage on both ends: the pool originates its own
	// head-sampled trace rooted at "query" and propagates it.
	tr := p.rec.Start("query")
	defer func() { tr.End(sessionOutcome(err)) }()
	return p.processTraced(tr.Context(nil), q, locs)
}

// ProcessTraced implements core.TracedService: retried attempts and
// their causes land on tc.Span, and the trace id precedes every attempt
// on the wire.
func (p *Pool) ProcessTraced(tc obs.TraceContext, q *core.QueryMsg, locs []*core.LocationMsg) (*core.AnswerMsg, error) {
	p.init()
	return p.processTraced(tc, q, locs)
}

func (p *Pool) processTraced(tc obs.TraceContext, q *core.QueryMsg, locs []*core.LocationMsg) (ans *core.AnswerMsg, err error) {
	p.mInflight.Add(1)
	defer func() {
		p.mInflight.Add(-1)
		p.mSessions(sessionOutcome(err)).Inc()
	}()
	ctx := context.Background()
	if p.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.QueryTimeout)
		defer cancel()
	}
	retries := p.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var attemptErrs []error
	attempts := 0
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			last := attemptErrs[len(attemptErrs)-1]
			p.mRetries(causeLabel(last)).Inc()
			tc.Span.AddRetry()
			tc.Span.SetAttr("cause", causeLabel(last))
			// A shed server may suggest how long to stay away; honor the
			// hint as the backoff floor (clamped to RetryMax).
			floor, _ := core.RetryAfterHint(last)
			if berr := p.backoff(ctx, attempt, floor); berr != nil {
				// Deadline exhausted mid-backoff: record it alongside the
				// attempts it interrupted.
				attemptErrs = append(attemptErrs, berr)
				break
			}
		}
		attempts++
		// After a failure the pooled connections are suspect too (one
		// broken path often means a broken network): retries always dial
		// fresh, the first attempt may reuse an idle connection.
		conn, aerr := p.acquire(ctx, attempt > 0)
		if aerr != nil {
			if !core.IsRetryable(aerr) {
				return nil, aerr
			}
			attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", attempts, aerr))
			continue
		}
		ans, serr := runSession(ctx, conn, p.Tenant, tc, q, locs, p.Meter)
		if serr == nil {
			p.release(conn)
			return ans, nil
		}
		// The session died partway through: the connection's framing is
		// unknown, never reuse it.
		conn.Close()
		p.put(nil)
		if !core.IsRetryable(serr) {
			return nil, serr
		}
		attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", attempts, serr))
	}
	return nil, fmt.Errorf("transport: session failed after %d attempt(s): %w",
		attempts, errors.Join(attemptErrs...))
}

// sessionOutcome maps a Process result to the closed "outcome" enum.
func sessionOutcome(err error) string {
	var re *core.RemoteError
	if errors.As(err, &re) {
		switch {
		case core.IsBusyMessage(re.Msg):
			return "busy"
		case core.IsDrainingMessage(re.Msg):
			return "drain"
		default:
			return "remote"
		}
	}
	return obs.Outcome(err)
}

// causeLabel maps a failed attempt's error to the closed "cause" enum.
func causeLabel(err error) string {
	var re *core.RemoteError
	if errors.As(err, &re) {
		switch {
		case core.IsBusyMessage(re.Msg):
			return "busy"
		case core.IsDrainingMessage(re.Msg):
			return "draining"
		default:
			return "remote"
		}
	}
	return obs.Cause(err)
}

// retryDelay computes one attempt's backoff: the jittered exponential
// delay, raised to the server-suggested floor (clamped to RetryMax) when
// the previous rejection carried a retry-after hint. The floor only ever
// lengthens the wait — a hinted server is a server that measured its own
// overload, and returning earlier than it asked just earns another shed.
func (p *Pool) retryDelay(attempt int, floor time.Duration) time.Duration {
	d := p.RetryBase << (attempt - 1)
	if d > p.RetryMax || d <= 0 {
		d = p.RetryMax
	}
	p.mu.Lock()
	// Full jitter in [½d, d): desynchronizes clients that failed together
	// (a cell handover drops a whole neighborhood at once) while keeping
	// the sequence deterministic under Seed.
	d = d/2 + time.Duration(p.rng.Int63n(int64(d/2)+1))
	p.mu.Unlock()
	if floor > p.RetryMax {
		floor = p.RetryMax
	}
	if d < floor {
		d = floor
	}
	return d
}

// backoff sleeps for the attempt's delay (see retryDelay), or fails when
// the context expires first.
func (p *Pool) backoff(ctx context.Context, attempt int, floor time.Duration) error {
	p.mBackoff.Inc()
	t := time.NewTimer(p.retryDelay(attempt, floor))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return core.Retryable(ctx.Err())
	case <-t.C:
		return nil
	}
}

// acquire checks a connection out of the pool, dialing if no idle
// connection is available (or if fresh demands a new one).
func (p *Pool) acquire(ctx context.Context, fresh bool) (net.Conn, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, core.Retryable(ctx.Err())
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		return nil, fmt.Errorf("transport: pool is closed")
	}
	var conn net.Conn
	if n := len(p.idle); n > 0 {
		conn = p.idle[n-1]
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if conn != nil {
		if !fresh {
			p.mReuse.Inc()
			return conn, nil
		}
		conn.Close()
	}
	dial := p.DialFunc
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	// The dial itself must honor the query deadline: a SYN blackhole can
	// hang far longer than any QueryTimeout. Run it aside and abandon it
	// when the context expires; an abandoned dial's connection, if it ever
	// arrives, is closed by the watcher rather than leaked.
	type dialed struct {
		conn net.Conn
		err  error
	}
	ch := make(chan dialed, 1)
	go func() {
		conn, err := dial(p.Addr)
		ch <- dialed{conn, err}
	}()
	select {
	case d := <-ch:
		if d.err != nil {
			<-p.sem
			p.mDialErr.Inc()
			return nil, core.Retryable(fmt.Errorf("transport: dial %s: %w", p.Addr, d.err))
		}
		p.mDialOK.Inc()
		return d.conn, nil
	case <-ctx.Done():
		go func() {
			if d := <-ch; d.conn != nil {
				d.conn.Close()
			}
		}()
		<-p.sem
		p.mDialErr.Inc()
		return nil, core.Retryable(fmt.Errorf("transport: dial %s: %w", p.Addr, ctx.Err()))
	}
}

// release returns a healthy connection to the idle pool.
func (p *Pool) release(conn net.Conn) { p.put(conn) }

// put releases the checked-out slot; a non-nil conn goes back to the idle
// pool unless the pool has closed meanwhile.
func (p *Pool) put(conn net.Conn) {
	p.mu.Lock()
	if conn != nil {
		if p.closed {
			conn.Close()
		} else {
			p.idle = append(p.idle, conn)
		}
	}
	p.mu.Unlock()
	<-p.sem
}

// Close closes all idle connections and fails subsequent Process calls.
// Sessions already in flight finish on their own connections, which close
// on return.
func (p *Pool) Close() error {
	p.init()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	return nil
}

var _ core.TracedService = (*Pool)(nil)
