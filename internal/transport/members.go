package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ppgnn/internal/group"
)

// MemberServer exposes one group member over TCP: each accepted
// connection runs the request/reply loop of group.ServeConn against the
// member's Handler. It is the member-phone side of a distributed group
// session — the coordinator dials it with a group.NetLink.
//
// The server shares the transport package's robustness posture: transient
// accept failures are retried, a panic while serving one connection is
// recovered and ends only that connection, and reads are bounded so a
// dead coordinator cannot pin a goroutine forever.
type MemberServer struct {
	Handler group.Handler
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...interface{})
	// ReadTimeout bounds the wait for each request frame (default 30s).
	ReadTimeout time.Duration
	// OnAcceptExit, when set, receives the accept loop's exit exactly
	// once: nil after a deliberate Close, the listener's terminal error
	// otherwise. Before this hook existed the loop could only end
	// silently — a member whose listener died externally just stopped
	// serving and nobody learned why. Set it before Listen/Serve.
	OnAcceptExit func(err error)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	exitOnce sync.Once
}

// NewMemberServer wraps a member handler.
func NewMemberServer(h group.Handler) *MemberServer {
	return &MemberServer{Handler: h, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr and returns the bound address.
func (s *MemberServer) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: member listen: %w", err)
	}
	return s.Serve(ln), nil
}

// Serve starts accepting on an existing listener (tests wrap one in
// faultnet) and returns its address.
func (s *MemberServer) Serve(ln net.Listener) net.Addr {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr()
}

// Addr returns the bound address, or an error before Listen/Serve.
func (s *MemberServer) Addr() (net.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil, errors.New("transport: member server is not listening")
	}
	return s.listener.Addr(), nil
}

// isTemporary reports whether err advertises itself as a transient
// condition. net.Error.Temporary is deprecated for general use, but for
// accept-loop errors specifically it still means exactly what we need:
// ECONNABORTED-class failures that the next Accept may not see.
func isTemporary(err error) bool {
	t, ok := err.(interface{ Temporary() bool })
	return ok && t.Temporary()
}

// reportAcceptExit delivers the accept loop's terminal condition to the
// OnAcceptExit hook, at most once.
func (s *MemberServer) reportAcceptExit(err error) {
	s.exitOnce.Do(func() {
		if s.OnAcceptExit != nil {
			s.OnAcceptExit(err)
		}
	})
}

func (s *MemberServer) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.reportAcceptExit(nil)
				return
			}
			if errors.Is(err, net.ErrClosed) {
				// Closed out from under us — not by Close. The member is
				// no longer reachable; that must surface, not vanish.
				s.logf("member accept: listener closed externally")
				s.reportAcceptExit(err)
				return
			}
			// Kernel-transient accept failures (ECONNABORTED, fd
			// pressure, injected faults) must not kill the accept loop;
			// anything else is a dead listener and ends it loudly.
			var ne net.Error
			if errors.As(err, &ne) && (ne.Timeout() || isTemporary(ne)) {
				s.logf("member accept: %v (retrying)", err)
				time.Sleep(10 * time.Millisecond)
				continue
			}
			s.logf("member accept: %v (terminal)", err)
			s.reportAcceptExit(err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *MemberServer) serveConn(conn net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("member conn %s: panic: %v", conn.RemoteAddr(), r)
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	err := group.ServeConn(timeoutConn{conn, s.readTimeout()}, s.Handler)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		s.logf("member conn %s: %v", conn.RemoteAddr(), err)
	}
}

func (s *MemberServer) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 30 * time.Second
}

func (s *MemberServer) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Close stops the listener and closes every open connection. Members
// hold no session-critical state a drain would protect — a coordinator
// retry against a restarted member gets a byte-identical reply — so
// unlike Server.Close this does not wait.
func (s *MemberServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return nil
}

// timeoutConn arms a fresh read deadline before every read, bounding the
// per-frame wait of the member's serve loop.
type timeoutConn struct {
	net.Conn
	d time.Duration
}

func (c timeoutConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}
