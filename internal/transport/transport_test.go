package transport

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
)

func startServer(t *testing.T, nPOIs int) (*Server, string) {
	t.Helper()
	lsp := core.NewLSP(dataset.Synthetic(5, nPOIs), geo.UnitRect)
	srv := NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func testParams(n int, variant core.Variant) core.Params {
	p := core.DefaultParams(n)
	p.KeyBits = 256
	p.D = 5
	p.Delta = 10
	if n == 1 {
		p.Delta = p.D
	}
	p.K = 4
	p.Variant = variant
	p.NoSanitize = true
	return p
}

func TestQueryOverTCP(t *testing.T) {
	_, addr := startServer(t, 2000)
	for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT, core.VariantNaive} {
		rng := rand.New(rand.NewSource(1))
		p := testParams(3, variant)
		locs := []geo.Point{{X: 0.2, Y: 0.3}, {X: 0.4, Y: 0.5}, {X: 0.3, Y: 0.4}}
		g, err := core.NewGroup(p, locs, rng)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		var m cost.Meter
		cli.Meter = &m
		res, err := g.Run(cli, nil)
		cli.Close()
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if len(res.Points) == 0 {
			t.Fatalf("%v: empty answer", variant)
		}
		// Compare with a local in-process run of the same group state.
		lsp := core.NewLSP(dataset.Synthetic(5, 2000), geo.UnitRect)
		g2, err := core.NewGroup(p, locs, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		res2, err := g2.Run(core.LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != len(res2.Points) {
			t.Fatalf("%v: remote %d POIs, local %d", variant, len(res.Points), len(res2.Points))
		}
		for i := range res.Points {
			if res.Points[i].Dist(res2.Points[i]) > 1e-9 {
				t.Fatalf("%v: remote/local answers differ at %d", variant, i)
			}
		}
		if m.Snapshot().TotalBytes() == 0 {
			t.Fatalf("%v: client meter recorded nothing", variant)
		}
	}
}

func TestSingleUserOverTCP(t *testing.T) {
	_, addr := startServer(t, 1000)
	p := testParams(1, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.7, Y: 0.7}}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := g.Run(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != p.K {
		t.Fatalf("got %d POIs, want %d", len(res.Points), p.K)
	}
}

func TestMultipleQueriesOneConnection(t *testing.T) {
	_, addr := startServer(t, 1000)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	p := testParams(2, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.2}, {X: 0.3, Y: 0.3}}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := g.Run(cli, nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func TestServerRejectsBadQuery(t *testing.T) {
	_, addr := startServer(t, 500)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	p := testParams(2, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.2}, {X: 0.3, Y: 0.3}}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	q.V = q.V[:len(q.V)-1] // corrupt the indicator length
	if _, err := cli.Process(q, locs); err == nil {
		t.Fatal("server accepted corrupt query")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			p := testParams(2, core.VariantPPGNN)
			rng := rand.New(rand.NewSource(seed))
			g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.6}, {X: 0.5, Y: 0.1}}, rng)
			if err != nil {
				errs <- err
				return
			}
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			if _, err := g.Run(cli, nil); err != nil {
				errs <- err
			}
		}(int64(i + 10))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, 100)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestAddrBeforeListen(t *testing.T) {
	srv := NewServer(core.NewLSP(dataset.Synthetic(1, 10), geo.UnitRect))
	if _, err := srv.Addr(); err == nil {
		t.Fatal("Addr before Listen succeeded")
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != addr.String() {
		t.Fatalf("Addr = %v, Listen returned %v", got, addr)
	}
}

func TestServerLogf(t *testing.T) {
	srv, addr := startServer(t, 100)
	logged := make(chan string, 8)
	srv.Logf = func(format string, args ...interface{}) {
		select {
		case logged <- format:
		default:
		}
	}
	// A corrupted query triggers a logged session error.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(2, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	q.K = 0 // invalid: the server rejects and logs
	if _, err := cli.Process(q, locs); err == nil {
		t.Fatal("invalid query accepted")
	}
	cli.Close()
	select {
	case <-logged:
	case <-time.After(5 * time.Second):
		t.Fatal("no session diagnostic logged")
	}
}
