package transport

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/wire"
)

func startServer(t *testing.T, nPOIs int) (*Server, string) {
	return startServerWith(t, nPOIs, nil)
}

// startServerWith applies configure before the accept loop starts, so
// tests can set server knobs without racing it.
func startServerWith(t *testing.T, nPOIs int, configure func(*Server)) (*Server, string) {
	t.Helper()
	lsp := core.NewLSP(dataset.Synthetic(5, nPOIs), geo.UnitRect)
	srv := NewServer(lsp)
	if configure != nil {
		configure(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func testParams(n int, variant core.Variant) core.Params {
	p := core.DefaultParams(n)
	p.KeyBits = 256
	p.D = 5
	p.Delta = 10
	if n == 1 {
		p.Delta = p.D
	}
	p.K = 4
	p.Variant = variant
	p.NoSanitize = true
	return p
}

func TestQueryOverTCP(t *testing.T) {
	_, addr := startServer(t, 2000)
	for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT, core.VariantNaive} {
		rng := rand.New(rand.NewSource(1))
		p := testParams(3, variant)
		locs := []geo.Point{{X: 0.2, Y: 0.3}, {X: 0.4, Y: 0.5}, {X: 0.3, Y: 0.4}}
		g, err := core.NewGroup(p, locs, rng)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		var m cost.Meter
		cli.Meter = &m
		res, err := g.Run(cli, nil)
		cli.Close()
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if len(res.Points) == 0 {
			t.Fatalf("%v: empty answer", variant)
		}
		// Compare with a local in-process run of the same group state.
		lsp := core.NewLSP(dataset.Synthetic(5, 2000), geo.UnitRect)
		g2, err := core.NewGroup(p, locs, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		res2, err := g2.Run(core.LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != len(res2.Points) {
			t.Fatalf("%v: remote %d POIs, local %d", variant, len(res.Points), len(res2.Points))
		}
		for i := range res.Points {
			if res.Points[i].Dist(res2.Points[i]) > 1e-9 {
				t.Fatalf("%v: remote/local answers differ at %d", variant, i)
			}
		}
		if m.Snapshot().TotalBytes() == 0 {
			t.Fatalf("%v: client meter recorded nothing", variant)
		}
	}
}

func TestSingleUserOverTCP(t *testing.T) {
	_, addr := startServer(t, 1000)
	p := testParams(1, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.7, Y: 0.7}}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := g.Run(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != p.K {
		t.Fatalf("got %d POIs, want %d", len(res.Points), p.K)
	}
}

func TestMultipleQueriesOneConnection(t *testing.T) {
	_, addr := startServer(t, 1000)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	p := testParams(2, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.2}, {X: 0.3, Y: 0.3}}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := g.Run(cli, nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

func TestServerRejectsBadQuery(t *testing.T) {
	_, addr := startServer(t, 500)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	p := testParams(2, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.2}, {X: 0.3, Y: 0.3}}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	q.V = q.V[:len(q.V)-1] // corrupt the indicator length
	if _, err := cli.Process(q, locs); err == nil {
		t.Fatal("server accepted corrupt query")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			p := testParams(2, core.VariantPPGNN)
			rng := rand.New(rand.NewSource(seed))
			g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.6}, {X: 0.5, Y: 0.1}}, rng)
			if err != nil {
				errs <- err
				return
			}
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			if _, err := g.Run(cli, nil); err != nil {
				errs <- err
			}
		}(int64(i + 10))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, 100)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestAddrBeforeListen(t *testing.T) {
	srv := NewServer(core.NewLSP(dataset.Synthetic(1, 10), geo.UnitRect))
	if _, err := srv.Addr(); err == nil {
		t.Fatal("Addr before Listen succeeded")
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != addr.String() {
		t.Fatalf("Addr = %v, Listen returned %v", got, addr)
	}
}

// slowServer starts a server whose LSP blocks in Search until release is
// called (once per query), signalling entry on started.
func slowServer(t *testing.T, drain time.Duration) (srv *Server, addr string, started chan struct{}, release chan struct{}) {
	t.Helper()
	lsp := core.NewLSP(dataset.Synthetic(5, 300), geo.UnitRect)
	started = make(chan struct{}, 8)
	release = make(chan struct{})
	inner := lsp.Search
	// Search runs once per candidate query, so signal and gate
	// tolerantly: started never blocks, release is a close-once gate.
	lsp.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return inner(query, k, agg)
	}
	srv = NewServer(lsp)
	srv.DrainTimeout = drain
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, bound.String(), started, release
}

// TestGracefulDrain: Close while a session is mid-query must let the
// session finish and deliver its answer.
func TestGracefulDrain(t *testing.T) {
	srv, addr, started, release := slowServer(t, 5*time.Second)
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.3}, {X: 0.4, Y: 0.4}}, rand.New(rand.NewSource(20)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := g.Run(cli, nil)
		done <- outcome{res, err}
	}()
	<-started // the session is now in-flight on the server
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Close must be draining, not killing: the client's query is still
	// pending and completes once the LSP is released.
	select {
	case o := <-done:
		t.Fatalf("query finished before release: res=%v err=%v", o.res, o.err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	o := <-done
	if o.err != nil {
		t.Fatalf("drained session failed: %v", o.err)
	}
	if len(o.res.Points) == 0 {
		t.Fatal("drained session returned an empty answer")
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}

// TestDrainTimeoutForceCloses: a session that outlives DrainTimeout is
// cut, and Close returns promptly instead of hanging.
func TestDrainTimeoutForceCloses(t *testing.T) {
	srv, addr, started, release := slowServer(t, 50*time.Millisecond)
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.5, Y: 0.2}, {X: 0.6, Y: 0.3}}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := g.Run(cli, nil)
		errc <- err
	}()
	<-started
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Fatalf("Close returned after %v, before the drain timeout", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Close hung %v on a stuck session", elapsed)
	}
	close(release) // let the stuck LSP goroutine finish
	if err := <-errc; err == nil {
		t.Fatal("query on a force-closed connection succeeded")
	}
}

// TestMaxConnsShedding: a connection over the limit is rejected with the
// retryable busy message instead of a silent close.
func TestMaxConnsShedding(t *testing.T) {
	srv, addr := startServerWith(t, 300, func(s *Server) { s.MaxConns = 1 })
	hog, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	// Wait until the hog's connection is registered by the accept loop.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hog connection never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.2, Y: 0.5}, {X: 0.3, Y: 0.6}}, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cli.Process(q, locs)
	var re *core.RemoteError
	if !errors.As(err, &re) || re.Msg != core.BusyMessage {
		t.Fatalf("err = %v, want busy RemoteError", err)
	}
	if !core.IsRetryable(err) {
		t.Fatal("shedding rejection must be retryable")
	}
}

// TestSessionPanicRecovery: a panicking LSP code path ends one session
// with a FrameError, not the process; the server keeps serving.
func TestSessionPanicRecovery(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(5, 300), geo.UnitRect)
	var once sync.Once
	inner := lsp.Search
	lsp.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
		panicked := false
		once.Do(func() { panicked = true })
		if panicked {
			panic("injected search fault")
		}
		return inner(query, k, agg)
	}
	srv := NewServer(lsp)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := bound.String()

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.4, Y: 0.1}, {X: 0.5, Y: 0.2}}, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(cli, nil); err == nil {
		t.Fatal("query served by a panicking LSP succeeded")
	}
	cli.Close()
	// The process survived; a second session succeeds.
	cli2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := g.Run(cli2, nil); err != nil {
		t.Fatalf("server did not survive the session panic: %v", err)
	}
}

// TestMaxLocationsCap: a client streaming unbounded location frames in an
// unknown-n session is rejected instead of pinning the session goroutine.
func TestMaxLocationsCap(t *testing.T) {
	_, addr := startServerWith(t, 300, func(s *Server) { s.MaxLocations = 4 })
	p := testParams(2, core.VariantNaive)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.8}}, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, core.FrameQuery, q.Marshal()); err != nil {
		t.Fatal(err)
	}
	// Never send the sentinel; just keep streaming location frames.
	lb := locs[0].Marshal()
	for i := 0; i < 16; i++ {
		if err := wire.WriteFrame(conn, core.FrameLocation, lb); err != nil {
			break // server may cut the connection after rejecting
		}
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no reply to a location flood: %v", err)
	}
	if typ != core.FrameError || !strings.Contains(string(payload), "location frames") {
		t.Fatalf("reply = type %d %q, want location-cap FrameError", typ, payload)
	}
}

// TestAcceptFailureResilience: transient accept failures (injected via
// faultnet) must not kill the accept loop.
func TestAcceptFailureResilience(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(5, 300), geo.UnitRect)
	srv := NewServer(lsp)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Serve(faultnet.WrapListener(inner, 3)).String()
	t.Cleanup(func() { srv.Close() })
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.7}, {X: 0.4, Y: 0.8}}, rand.New(rand.NewSource(25)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := g.Run(cli, nil); err != nil {
		t.Fatalf("query after injected accept failures: %v", err)
	}
}

func TestServerLogf(t *testing.T) {
	srv, addr := startServer(t, 100)
	logged := make(chan string, 8)
	srv.Logf = func(format string, args ...interface{}) {
		select {
		case logged <- format:
		default:
		}
	}
	// A corrupted query triggers a logged session error.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(2, core.VariantPPGNN)
	g, err := core.NewGroup(p, []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	q.K = 0 // invalid: the server rejects and logs
	if _, err := cli.Process(q, locs); err == nil {
		t.Fatal("invalid query accepted")
	}
	cli.Close()
	select {
	case <-logged:
	case <-time.After(5 * time.Second):
		t.Fatal("no session diagnostic logged")
	}
}
