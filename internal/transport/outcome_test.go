package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/obs"
)

// joinChain mimics the Pool's terminal error shape: every attempt's
// error joined, the join wrapped in the "session failed after N
// attempt(s)" envelope. The taxonomy must classify through it.
func joinChain(attempts ...error) error {
	return fmt.Errorf("transport: session failed after %d attempt(s): %w",
		len(attempts), errors.Join(attempts...))
}

// TestSessionOutcomeTaxonomy pins the outcome classification for every
// shape the transport produces — bare errors, typed rejections, and the
// errors.Join retry chains the Pool hands back after exhausting its
// budget. Each expected label must itself sit in the closed enum, so a
// taxonomy change cannot silently mint an unclassifiable outcome.
func TestSessionOutcomeTaxonomy(t *testing.T) {
	busy := &core.RemoteError{Msg: core.BusyReply(120 * time.Millisecond)}
	draining := &core.RemoteError{Msg: core.DrainingMessage}
	remote := &core.RemoteError{Msg: "query rejected: too many locations"}

	cases := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, "ok"},
		{"busy", busy, "busy"},
		{"busy no hint", &core.RemoteError{Msg: core.BusyMessage}, "busy"},
		{"draining", draining, "drain"},
		{"remote", remote, "remote"},
		{"timeout", context.DeadlineExceeded, "timeout"},
		{"canceled", context.Canceled, "canceled"},
		{"opaque", errors.New("boom"), "error"},
		// The joined retry chains: the typed cause buried under dial
		// failures and the envelope must still win the classification.
		{"join ends busy", joinChain(core.Retryable(errors.New("dial tcp: refused")), busy), "busy"},
		{"join ends drain", joinChain(busy, draining), "busy"}, // errors.As finds the first
		{"join all opaque", joinChain(errors.New("a"), errors.New("b")), "error"},
		{"join with timeout", joinChain(errors.New("a"), fmt.Errorf("attempt: %w", context.DeadlineExceeded)), "timeout"},
	}
	for _, c := range cases {
		if got := sessionOutcome(c.err); got != c.want {
			t.Errorf("%s: sessionOutcome = %q, want %q", c.name, got, c.want)
		} else if !obs.AllowedValues("outcome", c.want) {
			t.Errorf("%s: expected outcome %q is not in the closed enum", c.name, c.want)
		}
	}
}

// TestCauseLabelTaxonomy does the same for the per-attempt cause labels
// that feed transport_retries_total and the trace "cause" attribute.
func TestCauseLabelTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"busy", &core.RemoteError{Msg: core.BusyReply(time.Second)}, "busy"},
		{"draining", &core.RemoteError{Msg: core.DrainingMessage}, "draining"},
		{"remote", &core.RemoteError{Msg: "no such tenant"}, "remote"},
		{"timeout", context.DeadlineExceeded, "timeout"},
		{"wrapped remote", fmt.Errorf("attempt 2: %w", &core.RemoteError{Msg: core.BusyMessage}), "busy"},
		{"joined remote", errors.Join(errors.New("x"), &core.RemoteError{Msg: core.DrainingMessage}), "draining"},
		{"opaque", errors.New("boom"), obs.OtherValue},
	}
	for _, c := range cases {
		if got := causeLabel(c.err); got != c.want {
			t.Errorf("%s: causeLabel = %q, want %q", c.name, got, c.want)
		} else if !obs.AllowedValues("cause", c.want) {
			t.Errorf("%s: expected cause %q is not in the closed enum", c.name, c.want)
		}
	}
}

// TestRetryAfterHintThroughJoinChains pins that the server's suggested
// backoff survives the Pool's error-envelope layering — the hint is what
// the shed trace's retry_after bucket and the client's backoff floor are
// built from.
func TestRetryAfterHintThroughJoinChains(t *testing.T) {
	busy := &core.RemoteError{Msg: core.BusyReply(250 * time.Millisecond)}
	for name, err := range map[string]error{
		"bare":    busy,
		"wrapped": fmt.Errorf("attempt: %w", busy),
		"joined":  joinChain(core.Retryable(errors.New("dial refused")), busy),
	} {
		d, ok := core.RetryAfterHint(err)
		if !ok || d != 250*time.Millisecond {
			t.Errorf("%s: RetryAfterHint = %v, %v", name, d, ok)
		}
	}
	if _, ok := core.RetryAfterHint(errors.New("no hint")); ok {
		t.Error("hint invented from a plain error")
	}
	// The hint buckets into the closed retry_after enum for traces.
	if got := obs.DurationBucketLabel(250 * time.Millisecond); got != "le_250ms" {
		t.Errorf("hint bucket = %q", got)
	}
}

// TestBusyErrorSurface pins the server-side typed rejection: reason and
// slot ride the admission decision into metrics and traces, and the
// wire message it produces classifies back to "busy" on the client.
func TestBusyErrorSurface(t *testing.T) {
	be := &BusyError{RetryAfter: 80 * time.Millisecond, Reason: "quota", Slot: "t3"}
	if be.Error() == "" || !errors.As(error(be), new(*BusyError)) {
		t.Fatal("BusyError must be a matchable error")
	}
	if !obs.AllowedValues("admission", be.Reason) {
		t.Errorf("reason %q outside the admission enum", be.Reason)
	}
	if !obs.AllowedTraceAttr("tenant", be.Slot) {
		t.Errorf("slot %q outside the tenant trace attr enum", be.Slot)
	}
	// Round trip through the wire message the server actually sends.
	msg := core.BusyReply(be.RetryAfter)
	re := &core.RemoteError{Msg: msg}
	if got := sessionOutcome(re); got != "busy" {
		t.Errorf("wire round trip classified %q", got)
	}
	if d, ok := re.RetryAfter(); !ok || d != be.RetryAfter {
		t.Errorf("wire round trip hint = %v, %v", d, ok)
	}
}
