package transport

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/wire"
)

// recordingAdmitter is a fake SessionAdmitter for transport-level tests:
// it records every tenant id it is asked about and serves a scripted
// response per tenant.
type recordingAdmitter struct {
	mu       sync.Mutex
	admitted []string
	released int
	grants   map[string]*SessionGrant
	errs     map[string]error
}

func (a *recordingAdmitter) Admit(tenantID string) (*SessionGrant, error) {
	a.mu.Lock()
	a.admitted = append(a.admitted, tenantID)
	a.mu.Unlock()
	if err, ok := a.errs[tenantID]; ok {
		return nil, err
	}
	if g, ok := a.grants[tenantID]; ok {
		// Wrap the release so the test can count calls.
		inner := g.Release
		return &SessionGrant{LSP: g.LSP, MaxLocations: g.MaxLocations, Release: func() {
			a.mu.Lock()
			a.released++
			a.mu.Unlock()
			if inner != nil {
				inner()
			}
		}}, nil
	}
	return nil, errors.New("unknown tenant")
}

func (a *recordingAdmitter) snapshot() ([]string, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.admitted...), a.released
}

// TestTenantRoutingWithAdmitter: a FrameTenant session is routed through
// the admitter, served with the grant's LSP, and releases its grant
// exactly once; a tenantless session on the same server lands on the
// default tenant.
func TestTenantRoutingWithAdmitter(t *testing.T) {
	alphaLSP := core.NewLSP(dataset.Synthetic(5, 500), geo.UnitRect)
	adm := &recordingAdmitter{grants: map[string]*SessionGrant{
		"alpha":       {LSP: alphaLSP},
		DefaultTenant: {},
	}}
	_, addr := startServerWith(t, 500, func(s *Server) { s.Admitter = adm })

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(30)))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Tenant = "alpha"
	res, err := g.Run(cli, nil)
	if err != nil {
		t.Fatalf("tenant-routed query: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("tenant-routed query returned an empty answer")
	}
	// The same client, switched to the default tenant, skips the tenant
	// frame — the admitter must still see it as DefaultTenant.
	cli.Tenant = ""
	if _, err := g.Run(cli, nil); err != nil {
		t.Fatalf("default-tenant query: %v", err)
	}

	admitted, released := adm.snapshot()
	if len(admitted) != 2 || admitted[0] != "alpha" || admitted[1] != DefaultTenant {
		t.Fatalf("admitted = %v, want [alpha %s]", admitted, DefaultTenant)
	}
	if released != 2 {
		t.Fatalf("grants released %d times, want 2", released)
	}
}

// TestAdmitterBusyShedCarriesHint: a *BusyError from the admitter sheds
// the session with a retryable busy reply whose retry-after hint survives
// the wire round trip.
func TestAdmitterBusyShedCarriesHint(t *testing.T) {
	adm := &recordingAdmitter{errs: map[string]error{
		DefaultTenant: &BusyError{RetryAfter: 150 * time.Millisecond, Reason: "quota"},
	}}
	_, addr := startServerWith(t, 300, func(s *Server) { s.Admitter = adm })

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.2, Y: 0.7}, {X: 0.3, Y: 0.8}}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Process(q, locs)
	var re *core.RemoteError
	if !errors.As(err, &re) || !core.IsBusyMessage(re.Msg) {
		t.Fatalf("err = %v, want busy RemoteError", err)
	}
	if !core.IsRetryable(err) {
		t.Fatal("admission shed must be retryable")
	}
	if hint, ok := core.RetryAfterHint(err); !ok || hint != 150*time.Millisecond {
		t.Fatalf("retry-after hint = %v (%v), want 150ms", hint, ok)
	}
}

// TestAdmitterRejectionIsProtocolFatal: a non-busy admitter error reaches
// the client as a plain FrameError that is not retryable.
func TestAdmitterRejectionIsProtocolFatal(t *testing.T) {
	adm := &recordingAdmitter{errs: map[string]error{
		"ghost": errors.New("unknown tenant \"ghost\""),
	}}
	_, addr := startServerWith(t, 300, func(s *Server) { s.Admitter = adm })

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.4, Y: 0.4}, {X: 0.6, Y: 0.6}}, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Tenant = "ghost"
	_, err = cli.Process(q, locs)
	var re *core.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "unknown tenant") {
		t.Fatalf("err = %v, want unknown-tenant RemoteError", err)
	}
	if core.IsRetryable(err) {
		t.Fatal("tenant rejection must not be retryable")
	}
}

// TestUnknownTenantWithoutAdmitter: a single-tenant server (no Admitter)
// rejects any non-default tenant frame protocol-fatally, preserving the
// pre-multi-tenant behavior for everyone else.
func TestUnknownTenantWithoutAdmitter(t *testing.T) {
	_, addr := startServer(t, 300)
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.1, Y: 0.9}, {X: 0.2, Y: 0.8}}, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Tenant = "beta"
	_, err = cli.Process(q, locs)
	var re *core.RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "unknown tenant") {
		t.Fatalf("err = %v, want unknown-tenant RemoteError", err)
	}
	if core.IsRetryable(err) {
		t.Fatal("unknown tenant must be protocol-fatal")
	}
}

// TestTenantFrameValidation: an oversized tenant id is rejected before the
// session does any work.
func TestTenantFrameValidation(t *testing.T) {
	_, addr := startServer(t, 300)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	huge := strings.Repeat("x", core.MaxTenantIDLen+1)
	if err := wire.WriteFrame(conn, core.FrameTenant, []byte(huge)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no reply to an oversized tenant frame: %v", err)
	}
	if typ != core.FrameError || !strings.Contains(string(payload), "tenant frame") {
		t.Fatalf("reply = type %d %q, want tenant-frame FrameError", typ, payload)
	}
}
