// Package transport runs the PPGNN protocol across a real TCP connection —
// the base-station channel of the system model (Section 2). Server wraps an
// LSP; Client implements core.Service for remote groups.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/wire"
)

// Server exposes an LSP over TCP using the frame protocol: per query
// session the client sends one FrameQuery and n FrameLocation frames, then
// the server replies with one FrameAnswer (or FrameError carrying a UTF-8
// message). Connections are persistent; a client may run many query
// sessions over one connection.
type Server struct {
	LSP   *core.LSP
	Meter *cost.Meter // optional: accumulates server-side costs
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...interface{})
	// ReadTimeout bounds the wait for each frame (default 30s).
	ReadTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer wraps an LSP.
func NewServer(lsp *core.LSP) *Server {
	return &Server{LSP: lsp, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr (e.g. ":9042") and returns the bound
// address, which is useful with ":0".
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Addr returns the listening address; it errors before Listen.
func (s *Server) Addr() (net.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil, fmt.Errorf("transport: server is not listening")
	}
	return s.listener.Addr(), nil
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if err := s.serveQuery(conn); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("session on %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// serveQuery handles one query session: FrameQuery, n FrameLocations,
// reply.
func (s *Server) serveQuery(conn net.Conn) error {
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	// The first frame may arrive arbitrarily late (idle connection): no
	// deadline. Subsequent frames of the same session are bounded.
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	if typ != core.FrameQuery {
		return s.replyError(conn, fmt.Errorf("expected query frame, got %d", typ))
	}
	q, err := core.UnmarshalQuery(payload)
	if err != nil {
		return s.replyError(conn, err)
	}
	// Location-set count: the query does not carry n explicitly; the client
	// sends a location-count frame header via NBar when partitioned, but
	// the robust contract is: clients send locations until the expected
	// count derived from NBar (or 1 for single user / unknown) is reached.
	n := 0
	for _, v := range q.NBar {
		n += v
	}
	if q.Variant == core.VariantNaive || n == 0 {
		// Naive queries and n=1 queries carry no subgroup sizes; the client
		// prefixes the location frames with a count frame instead.
		n = -1
	}
	var locs []*core.LocationMsg
	expected := n
	for {
		if expected >= 0 && len(locs) == expected {
			break
		}
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("reading locations: %w", err)
		}
		if typ == core.FrameAnswer && expected < 0 {
			// Sentinel: an empty answer frame marks end-of-locations for
			// variants that do not pre-announce n.
			break
		}
		if typ != core.FrameLocation {
			return s.replyError(conn, fmt.Errorf("expected location frame, got %d", typ))
		}
		lm, err := core.UnmarshalLocation(payload)
		if err != nil {
			return s.replyError(conn, err)
		}
		locs = append(locs, lm)
	}
	ans, err := s.LSP.Process(q, locs, s.Meter)
	if err != nil {
		return s.replyError(conn, err)
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return wire.WriteFrame(conn, core.FrameAnswer, ans.Marshal())
}

func (s *Server) replyError(conn net.Conn, cause error) error {
	if err := wire.WriteFrame(conn, core.FrameError, []byte(cause.Error())); err != nil {
		return err
	}
	// Protocol errors poison the session framing; drop the connection.
	return fmt.Errorf("wire: rejected query: %w", cause)
}

// Client is a core.Service that talks to a remote Server. It is safe for
// sequential use; guard with a mutex for concurrent queries.
type Client struct {
	conn  net.Conn
	Meter *cost.Meter // optional: counts bytes actually sent/received
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Process implements core.Service over the TCP connection.
func (c *Client) Process(q *core.QueryMsg, locs []*core.LocationMsg) (*core.AnswerMsg, error) {
	qb := q.Marshal()
	if err := wire.WriteFrame(c.conn, core.FrameQuery, qb); err != nil {
		return nil, err
	}
	c.Meter.AddBytes(cost.UserToLSP, len(qb)+5)
	for _, lm := range locs {
		lb := lm.Marshal()
		if err := wire.WriteFrame(c.conn, core.FrameLocation, lb); err != nil {
			return nil, err
		}
		c.Meter.AddBytes(cost.UserToLSP, len(lb)+5)
	}
	// End-of-locations sentinel for variants that don't announce n.
	n := 0
	for _, v := range q.NBar {
		n += v
	}
	if q.Variant == core.VariantNaive || n == 0 {
		if err := wire.WriteFrame(c.conn, core.FrameAnswer, nil); err != nil {
			return nil, err
		}
	}
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	c.Meter.AddBytes(cost.LSPToUser, len(payload)+5)
	switch typ {
	case core.FrameAnswer:
		return core.UnmarshalAnswer(payload)
	case core.FrameError:
		return nil, fmt.Errorf("wire: LSP rejected query: %s", payload)
	default:
		return nil, fmt.Errorf("wire: unexpected frame type %d", typ)
	}
}

var _ core.Service = (*Client)(nil)
