// Package transport runs the PPGNN protocol across a real TCP connection —
// the base-station channel of the system model (Section 2). Server wraps an
// LSP; Client and Pool implement core.Service for remote groups, Pool
// adding the fault tolerance flaky cellular links demand (reconnect, retry
// with backoff, per-query deadlines).
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
	"ppgnn/internal/wire"
)

// DefaultMaxLocations bounds the location frames of one session when the
// query does not pre-announce n (naive/unknown-n sessions, which are
// terminated by a sentinel): without a cap a hostile client could stream
// frames forever and pin a session goroutine. The paper's groups are tens
// of users; 4096 leaves three orders of magnitude of headroom.
const DefaultMaxLocations = 4096

// DefaultDrainTimeout bounds how long Close waits for in-flight query
// sessions before force-closing their connections.
const DefaultDrainTimeout = 10 * time.Second

// DefaultTenant is the tenant id a session lands on when it opens with a
// FrameQuery directly instead of a FrameTenant — i.e. every client that
// predates multi-tenancy.
const DefaultTenant = "default"

// SessionAdmitter routes and admission-controls query sessions; the
// lifecycle layer (internal/svc) implements it over its tenant manager.
// Admit is called once per session after the tenant id is known but
// before the query is parsed. A nil error admits the session under the
// returned grant; a *BusyError sheds it with a retryable busy reply
// carrying the hint; any other error rejects it protocol-fatally (the
// client sees a plain FrameError and does not retry).
type SessionAdmitter interface {
	Admit(tenantID string) (*SessionGrant, error)
}

// SessionGrant is one admitted session's lease: the LSP to serve it with,
// the location cap to hold it to (0 = the server default), and a release
// hook the server calls exactly once when the session ends, panics
// included.
type SessionGrant struct {
	LSP          *core.LSP
	MaxLocations int
	Release      func()
	// Slot is the tenant's metric slot ("default", "t0".."t7") — the
	// only tenant identity allowed into telemetry and traces. Empty
	// means unknown and degrades to "other" in a trace attribute.
	Slot string
}

// BusyError is a typed admission rejection: the session is shed with a
// retryable busy reply, optionally carrying the server's suggested
// retry-after on the wire (clients use it as a backoff floor).
type BusyError struct {
	RetryAfter time.Duration
	Reason     string // closed "admission" enum: "quota" | "overload"
	// Slot is the shed tenant's metric slot when known (quota sheds);
	// overload sheds happen before tenant routing and leave it empty.
	Slot string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("transport: session shed (%s, retry after %v)", e.Reason, e.RetryAfter)
}

// Server exposes an LSP over TCP using the frame protocol: per query
// session the client sends one FrameQuery and n FrameLocation frames, then
// the server replies with one FrameAnswer (or FrameError carrying a UTF-8
// message). Connections are persistent; a client may run many query
// sessions over one connection.
//
// Close drains gracefully: the listener stops, idle connections close
// immediately, and in-flight sessions get up to DrainTimeout to finish
// before their connections are force-closed. A panic while serving one
// session is recovered, logged, and ends only that connection, so one
// malformed query cannot kill the process.
type Server struct {
	LSP   *core.LSP
	Meter *cost.Meter // optional: accumulates server-side costs
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...interface{})
	// ReadTimeout bounds the wait for each frame (default 30s).
	ReadTimeout time.Duration
	// MaxConns bounds concurrent connections; excess accepts are shed
	// with a FrameError carrying core.BusyMessage (0 = unlimited).
	MaxConns int
	// MaxLocations bounds the location frames of one session (default
	// DefaultMaxLocations).
	MaxLocations int
	// DrainTimeout bounds Close's wait for in-flight sessions (default
	// DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Admitter, when set, routes each session by its tenant frame and
	// decides admission (per-tenant quotas, adaptive overload shedding);
	// the grant's LSP and location cap then override this server's LSP
	// and MaxLocations for that session. Without one the server is
	// single-tenant: only the default tenant is served.
	Admitter SessionAdmitter
	// Coalescer, when set, merges the homomorphic batch submissions of
	// concurrently admitted sessions into shared parallel batches
	// (DESIGN.md §15): each session's LSP is wrapped per query with
	// core.LSP.WithCoalescer, after admission, so shed sessions never
	// touch it. Per-session answers are byte-identical to the
	// uncoalesced path. The server does not own the coalescer — the
	// serving command creates it and closes it after Server.Close.
	Coalescer *parallel.Coalescer
	// OnSessionPanic, when set, is invoked for every recovered
	// per-session panic — the crash-budget watchdog's feed.
	OnSessionPanic func()
	// Obs receives the server's telemetry (nil = obs.Default): session
	// outcomes, shed/drain/panic counters, frame-size histograms, and the
	// "lsp" phase span around Algorithm 2. See DESIGN.md §9.
	Obs *obs.Registry

	mu        sync.Mutex
	listener  net.Listener
	conns     map[net.Conn]struct{}
	inSession map[net.Conn]struct{}
	sessions  sync.WaitGroup
	closed    bool
}

// NewServer wraps an LSP.
func NewServer(lsp *core.LSP) *Server {
	return &Server{
		LSP:       lsp,
		conns:     make(map[net.Conn]struct{}),
		inSession: make(map[net.Conn]struct{}),
	}
}

// Listen starts accepting on addr (e.g. ":9042") and returns the bound
// address, which is useful with ":0".
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	return s.Serve(ln), nil
}

// Serve starts accepting on an existing listener (tests wrap one in
// faultnet) and returns its address.
func (s *Server) Serve(ln net.Listener) net.Addr {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	// Pre-register the rare-event counters so a metrics snapshot shows
	// them at zero instead of omitting them until the first incident.
	s.reg().Counter("transport_server_shed_total")
	s.reg().Counter("transport_server_panics_total")
	go s.acceptLoop(ln)
	return ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failures (ECONNABORTED, fd pressure,
			// injected faults) must not kill the accept loop.
			s.logf("accept: %v (retrying)", err)
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.mu.Unlock()
			go s.shed(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// shed rejects a connection over the MaxConns limit with a retryable
// FrameError instead of a silent close, so fault-tolerant clients back
// off and retry rather than misreading the condition as a network fault
// of unknown safety.
func (s *Server) shed(conn net.Conn) {
	defer conn.Close()
	s.reg().Counter("transport_server_shed_total").Inc()
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	wire.WriteFrame(conn, core.FrameError, []byte(core.BusyMessage))
	s.logf("shed %v: at MaxConns=%d", conn.RemoteAddr(), s.MaxConns)
}

// Addr returns the listening address; it errors before Listen.
func (s *Server) Addr() (net.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil, fmt.Errorf("transport: server is not listening")
	}
	return s.listener.Addr(), nil
}

// Close stops the listener and drains: idle connections close
// immediately, in-flight sessions get up to DrainTimeout to finish, then
// any survivors are force-closed. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		if _, busy := s.inSession[c]; !busy {
			c.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.sessions.Wait()
		close(done)
	}()
	timeout := s.DrainTimeout
	if timeout == 0 {
		timeout = DefaultDrainTimeout
	}
	select {
	case <-done:
	case <-time.After(timeout):
		s.logf("drain: timeout after %v, force-closing", timeout)
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

// beginSession registers an in-flight session for the drain accounting;
// it fails when the server is draining.
func (s *Server) beginSession(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inSession[conn] = struct{}{}
	s.sessions.Add(1)
	return true
}

func (s *Server) endSession(conn net.Conn) {
	s.mu.Lock()
	delete(s.inSession, conn)
	s.mu.Unlock()
	s.sessions.Done()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// reg returns the server's telemetry registry.
func (s *Server) reg() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return obs.Default()
}

// observeFrame records one frame payload's size in the server-side
// frame histogram.
func (s *Server) observeFrame(dir string, payloadLen int) {
	s.reg().Histogram("transport_server_frame_bytes", obs.SizeBuckets, obs.L("dir", dir)).
		Observe(float64(payloadLen + wire.FrameHeaderSize))
}

// countSession records one finished session under the closed outcome
// enum.
func (s *Server) countSession(outcome string) {
	s.reg().Counter("transport_server_sessions_total", obs.L("outcome", outcome)).Inc()
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if err := s.serveQuery(conn); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("session on %v: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.mu.Lock()
		draining := s.closed
		s.mu.Unlock()
		if draining {
			return
		}
	}
}

// serveQuery handles one query session: an optional FrameTrace, an
// optional FrameTenant, then FrameQuery, n FrameLocations, reply. A
// panic anywhere in the session (a malformed query tripping an
// unguarded code path in the LSP) is converted into an error that ends
// this connection only.
func (s *Server) serveQuery(conn net.Conn) (err error) {
	inSession := false
	outcomeOverride := "" // non-empty wins over obs.Outcome(err)
	var tr *obs.Trace     // non-nil when the client sent a FrameTrace
	defer func() {
		if r := recover(); r != nil {
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			wire.WriteFrame(conn, core.FrameError, []byte("internal error"))
			err = fmt.Errorf("transport: session panic: %v", r)
			s.reg().Counter("transport_server_panics_total").Inc()
			s.countSession("panic")
			tr.End("panic")
			if s.OnSessionPanic != nil {
				s.OnSessionPanic()
			}
		} else if inSession {
			out := obs.Outcome(err)
			if outcomeOverride != "" {
				out = outcomeOverride
			}
			s.countSession(out)
			tr.End(out)
		} else {
			tr.EndErr(err)
		}
		if inSession {
			s.endSession(conn)
		}
	}()
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	// The first frame may arrive arbitrarily late (idle connection): no
	// deadline. Subsequent frames of the same session are bounded.
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	s.observeFrame("rx", len(payload))
	if typ == core.FrameTrace {
		id, terr := core.UnmarshalTraceID(payload)
		if terr != nil {
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			wire.WriteFrame(conn, core.FrameError, []byte(terr.Error()))
			return fmt.Errorf("transport: %w", terr)
		}
		// The client already made the sampling decision; the server-side
		// tree roots at "session" and records how this end disposed of it.
		tr = s.reg().Recorder().StartRemote(id, "session")
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		typ, payload, err = wire.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("reading session after trace frame: %w", err)
		}
		s.observeFrame("rx", len(payload))
	}
	if !s.beginSession(conn) {
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		wire.WriteFrame(conn, core.FrameError, []byte(core.DrainingMessage))
		s.discardClient(conn)
		tr.End("drain")
		return fmt.Errorf("transport: draining, session rejected")
	}
	inSession = true
	tenant := DefaultTenant
	if typ == core.FrameTenant {
		if len(payload) == 0 || len(payload) > core.MaxTenantIDLen {
			return s.replyError(conn, fmt.Errorf("tenant frame of %d bytes (want 1..%d)", len(payload), core.MaxTenantIDLen))
		}
		tenant = string(payload)
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		typ, payload, err = wire.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("reading query after tenant frame: %w", err)
		}
		s.observeFrame("rx", len(payload))
	}
	if typ != core.FrameQuery {
		return s.replyError(conn, fmt.Errorf("expected query frame, got %d", typ))
	}
	// Admission: routed and gated before the query is even parsed, so a
	// shed session costs the server no crypto and no big.Int allocations.
	lsp, maxLocs := s.LSP, s.MaxLocations
	if s.Admitter != nil {
		grant, aerr := s.Admitter.Admit(tenant)
		if aerr != nil {
			var be *BusyError
			if errors.As(aerr, &be) {
				// Sheds get traced too: the trace records which gate shed
				// the session and the retry-after hint the client was
				// given, all as closed-enum buckets.
				tr.Root().SetAttr("admission", be.Reason)
				tr.Root().SetAttr("retry_after", obs.DurationBucketLabel(be.RetryAfter))
				if be.Slot != "" {
					tr.Root().SetAttr("tenant", be.Slot)
				}
				outcomeOverride = "busy"
				s.reg().Counter("transport_server_shed_total").Inc()
				conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				wire.WriteFrame(conn, core.FrameError, []byte(core.BusyReply(be.RetryAfter)))
				s.discardClient(conn)
				return fmt.Errorf("transport: %w", aerr)
			}
			tr.Root().SetAttr("admission", "unknown")
			return s.replyError(conn, aerr)
		}
		if grant.Release != nil {
			defer grant.Release()
		}
		if grant.LSP != nil {
			lsp = grant.LSP
		}
		if grant.MaxLocations > 0 {
			maxLocs = grant.MaxLocations
		}
		tr.Root().SetAttr("admission", "ok")
		if grant.Slot != "" {
			tr.Root().SetAttr("tenant", grant.Slot)
		}
	} else if tenant != DefaultTenant {
		return s.replyError(conn, fmt.Errorf("unknown tenant %q", tenant))
	} else {
		// No admitter: the default policy accepted the session.
		tr.Root().SetAttr("admission", "ok")
		tr.Root().SetAttr("tenant", DefaultTenant)
	}
	// Admitted: route this session's homomorphic batches through the
	// server-shared coalescer (WithCoalescer is the identity on nil).
	lsp = lsp.WithCoalescer(s.Coalescer)
	q, err := core.UnmarshalQuery(payload)
	if err != nil {
		return s.replyError(conn, err)
	}
	// Location-set count: the query does not carry n explicitly; the client
	// sends a location-count frame header via NBar when partitioned, but
	// the robust contract is: clients send locations until the expected
	// count derived from NBar (or 1 for single user / unknown) is reached.
	n := 0
	for _, v := range q.NBar {
		n += v
	}
	if q.Variant == core.VariantNaive || n == 0 {
		// Naive queries and n=1 queries carry no subgroup sizes; the client
		// prefixes the location frames with a count frame instead.
		n = -1
	}
	if maxLocs == 0 {
		maxLocs = DefaultMaxLocations
	}
	if n > maxLocs {
		return s.replyError(conn, fmt.Errorf("query announces %d locations, limit %d", n, maxLocs))
	}
	var locs []*core.LocationMsg
	expected := n
	for {
		if expected >= 0 && len(locs) == expected {
			break
		}
		if len(locs) >= maxLocs {
			return s.replyError(conn, fmt.Errorf("session exceeds %d location frames", maxLocs))
		}
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("reading locations: %w", err)
		}
		s.observeFrame("rx", len(payload))
		if typ == core.FrameAnswer && expected < 0 {
			// Sentinel: an empty answer frame marks end-of-locations for
			// variants that do not pre-announce n.
			break
		}
		if typ != core.FrameLocation {
			return s.replyError(conn, fmt.Errorf("expected location frame, got %d", typ))
		}
		lm, err := core.UnmarshalLocation(payload)
		if err != nil {
			return s.replyError(conn, err)
		}
		locs = append(locs, lm)
	}
	// The "lsp" span is Algorithm 2 as the provider experiences it:
	// candidate enumeration, homomorphic selection, sanitation. When the
	// session is traced the span doubles as the trace's "lsp" node,
	// annotated with the worker-width and candidate-count buckets.
	node := tr.Root().Child("lsp")
	sp := s.reg().StartSpan("lsp").Attach(node)
	ans, err := lsp.ProcessTraced(obs.TraceContext{ID: tr.ID(), Span: node}, q, locs, s.Meter)
	sp.EndErr(err)
	if err != nil {
		return s.replyError(conn, err)
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	ab := ans.Marshal()
	s.observeFrame("tx", len(ab))
	return wire.WriteFrame(conn, core.FrameAnswer, ab)
}

func (s *Server) replyError(conn net.Conn, cause error) error {
	if err := wire.WriteFrame(conn, core.FrameError, []byte(cause.Error())); err != nil {
		return err
	}
	s.discardClient(conn)
	// Protocol errors poison the session framing; drop the connection.
	return fmt.Errorf("wire: rejected query: %w", cause)
}

// discardClient drains what the client is still sending after the server
// has rejected the session. Closing with unread bytes in the receive
// buffer turns into a TCP reset that can destroy the error frame we just
// wrote before the client reads it — a shed session would then surface
// as a generic connection error instead of the typed retryable reply.
// Both bounds are hard: a few seconds of wall clock and a byte budget,
// so a client that streams forever cannot pin the connection.
func (s *Server) discardClient(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	io.CopyN(io.Discard, conn, 1<<20)
}

// countingReader tracks how many bytes of the server's reply have been
// consumed: a failure after the first answer byte is past the
// retry-safety boundary runSession enforces.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// runSession performs one query session on conn: an optional trace
// frame, an optional tenant frame, the query frame, location frames,
// optional end-of-locations sentinel, then the reply. The context
// deadline bounds every frame exchange. A traced session (tc.Traced)
// additionally records a client-observed "lsp" child span covering the
// reply wait — the server's processing as seen from this side of the
// wire.
//
// Error classification (see internal/core): every failure up to the first
// reply byte is marked core.Retryable — the server either never saw the
// session or abandoned it whole, and PPGNN sessions are idempotent, so a
// resend from scratch on a fresh connection is safe. A failure after the
// first reply byte is left unmarked (the extremely rare mid-answer cut),
// and a FrameError reply becomes a *core.RemoteError, retryable only for
// the transient busy/draining messages.
func runSession(ctx context.Context, conn net.Conn, tenant string, tc obs.TraceContext, q *core.QueryMsg, locs []*core.LocationMsg, meter *cost.Meter) (*core.AnswerMsg, error) {
	if tc.Traced() {
		tb := core.MarshalTraceID(tc.ID)
		if err := wire.WriteFrameCtx(ctx, conn, core.FrameTrace, tb); err != nil {
			return nil, core.Retryable(err)
		}
		meter.AddBytes(cost.UserToLSP, len(tb)+wire.FrameHeaderSize)
	}
	if tenant != "" && tenant != DefaultTenant {
		if err := wire.WriteFrameCtx(ctx, conn, core.FrameTenant, []byte(tenant)); err != nil {
			return nil, core.Retryable(err)
		}
		meter.AddBytes(cost.UserToLSP, len(tenant)+wire.FrameHeaderSize)
	}
	qb := q.Marshal()
	if err := wire.WriteFrameCtx(ctx, conn, core.FrameQuery, qb); err != nil {
		return nil, core.Retryable(err)
	}
	meter.AddBytes(cost.UserToLSP, len(qb)+wire.FrameHeaderSize)
	for _, lm := range locs {
		lb := lm.Marshal()
		if err := wire.WriteFrameCtx(ctx, conn, core.FrameLocation, lb); err != nil {
			return nil, core.Retryable(err)
		}
		meter.AddBytes(cost.UserToLSP, len(lb)+wire.FrameHeaderSize)
	}
	// End-of-locations sentinel for variants that don't announce n.
	n := 0
	for _, v := range q.NBar {
		n += v
	}
	if q.Variant == core.VariantNaive || n == 0 {
		if err := wire.WriteFrameCtx(ctx, conn, core.FrameAnswer, nil); err != nil {
			return nil, core.Retryable(err)
		}
		meter.AddBytes(cost.UserToLSP, wire.FrameHeaderSize)
	}
	if err := ctx.Err(); err != nil {
		return nil, core.Retryable(err)
	}
	dl, _ := ctx.Deadline()
	if err := conn.SetReadDeadline(dl); err != nil {
		return nil, core.Retryable(err)
	}
	cr := &countingReader{r: conn}
	// The reply wait, as a trace child: everything between the last
	// request byte and the first reply frame is the server's turn.
	lspNode := tc.Span.Child("lsp")
	typ, payload, err := wire.ReadFrame(cr)
	if err != nil {
		lspNode.EndErr(err)
		if cr.n == 0 {
			return nil, core.Retryable(err)
		}
		return nil, fmt.Errorf("transport: connection lost mid-answer: %w", err)
	}
	meter.AddBytes(cost.LSPToUser, len(payload)+wire.FrameHeaderSize)
	switch typ {
	case core.FrameAnswer:
		lspNode.End("ok")
		return core.UnmarshalAnswer(payload)
	case core.FrameError:
		rerr := &core.RemoteError{Msg: string(payload)}
		lspNode.End(sessionOutcome(rerr))
		return nil, rerr
	default:
		lspNode.End("error")
		return nil, fmt.Errorf("wire: unexpected frame type %d", typ)
	}
}

// Client is a core.Service that talks to a remote Server over one
// connection. It is safe for sequential use and performs no retries; use
// Pool for concurrent queries and fault tolerance.
type Client struct {
	conn  net.Conn
	Meter *cost.Meter // optional: counts bytes actually sent/received
	// Tenant routes this client's sessions to a named tenant of a
	// multi-tenant server ("" or DefaultTenant = the default tenant, no
	// extra frame on the wire).
	Tenant string
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Process implements core.Service over the TCP connection.
func (c *Client) Process(q *core.QueryMsg, locs []*core.LocationMsg) (*core.AnswerMsg, error) {
	return runSession(context.Background(), c.conn, c.Tenant, obs.TraceContext{}, q, locs, c.Meter)
}

// ProcessTraced implements core.TracedService: the trace id precedes
// the session on the wire, and the reply wait is recorded as an "lsp"
// child of tc.Span.
func (c *Client) ProcessTraced(tc obs.TraceContext, q *core.QueryMsg, locs []*core.LocationMsg) (*core.AnswerMsg, error) {
	return runSession(context.Background(), c.conn, c.Tenant, tc, q, locs, c.Meter)
}

var _ core.TracedService = (*Client)(nil)
