package transport

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/obs"
	"ppgnn/internal/wire"
)

// rejectingConn fabricates the server side of a shed: an in-memory
// connection whose peer drains whatever the client sends and answers the
// session with a single FrameError carrying msg — byte-for-byte what a
// transport.Server at MaxConns (or draining) puts on the wire.
func rejectingConn(msg string) net.Conn {
	client, server := net.Pipe()
	go func() {
		go io.Copy(io.Discard, server)
		wire.WriteFrame(server, core.FrameError, []byte(msg))
	}()
	return client
}

// scriptDialer returns one scripted outcome per dial, in order:
//
//	"ok"     dial the real server
//	"refuse" fail the dial (connection refused)
//	"busy"   a connection that sheds the session with BusyMessage
//	"drain"  likewise with DrainingMessage
//	"hang"   a dial that never completes until the test ends
//
// Dials past the script's end are "ok".
func scriptDialer(t *testing.T, addr string, script ...string) (func(string) (net.Conn, error), *int32) {
	t.Helper()
	var n int32
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	return func(string) (net.Conn, error) {
		i := int(atomic.AddInt32(&n, 1)) - 1
		action := "ok"
		if i < len(script) {
			action = script[i]
		}
		switch action {
		case "ok":
			return net.Dial("tcp", addr)
		case "refuse":
			return nil, errors.New("connection refused")
		case "busy":
			return rejectingConn(core.BusyMessage), nil
		case "drain":
			return rejectingConn(core.DrainingMessage), nil
		case "hang":
			<-hung
			return nil, errors.New("dial abandoned")
		default:
			t.Fatalf("unknown script action %q", action)
			return nil, nil
		}
	}, &n
}

// TestPoolRetryOrderings drives the retry loop through scripted
// shed/refuse/recover orderings and asserts, for each, the final verdict,
// the exact number of dials, and that the typed cause survives the
// errors.Join of the attempt chain.
func TestPoolRetryOrderings(t *testing.T) {
	_, addr := startServer(t, 500)
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.6}, {X: 0.4, Y: 0.7}}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		script     []string
		maxRetries int
		wantOK     bool
		wantDials  int32
		wantMsg    string // RemoteError message still matchable via errors.As
		wantRetry  bool   // core.IsRetryable on the final error
		retries    int64  // expected transport_retries_total across causes
	}{
		{
			name:   "shed twice then admitted",
			script: []string{"busy", "busy", "ok"},
			wantOK: true, wantDials: 3, retries: 2,
		},
		{
			name:   "draining then admitted elsewhere",
			script: []string{"drain", "ok"},
			wantOK: true, wantDials: 2, retries: 1,
		},
		{
			name:   "refused then shed then admitted",
			script: []string{"refuse", "busy", "ok"},
			wantOK: true, wantDials: 3, retries: 2,
		},
		{
			name:       "shed to exhaustion keeps busy matchable",
			script:     []string{"busy", "busy", "busy"},
			maxRetries: 2, wantOK: false, wantDials: 3,
			wantMsg: core.BusyMessage, wantRetry: true, retries: 2,
		},
		{
			name:       "refused to exhaustion stays retryable",
			script:     []string{"refuse", "refuse"},
			maxRetries: 1, wantOK: false, wantDials: 2,
			wantRetry: true, retries: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pool := fastPool(addr)
			defer pool.Close()
			pool.Obs = obs.NewRegistry()
			if c.maxRetries != 0 {
				pool.MaxRetries = c.maxRetries
			}
			dial, dials := scriptDialer(t, addr, c.script...)
			pool.DialFunc = dial

			ans, err := pool.Process(q, lms)
			if c.wantOK {
				if err != nil {
					t.Fatalf("Process: %v", err)
				}
				if ans == nil {
					t.Fatal("nil answer on success")
				}
			} else {
				if err == nil {
					t.Fatal("Process succeeded against the script")
				}
				if c.wantMsg != "" {
					var re *core.RemoteError
					if !errors.As(err, &re) || re.Msg != c.wantMsg {
						t.Fatalf("typed cause lost in %v", err)
					}
				}
				if core.IsRetryable(err) != c.wantRetry {
					t.Fatalf("IsRetryable = %v, want %v: %v", !c.wantRetry, c.wantRetry, err)
				}
			}
			if got := atomic.LoadInt32(dials); got != c.wantDials {
				t.Fatalf("dialed %d times, want %d", got, c.wantDials)
			}
			var retried int64
			for _, cs := range pool.Obs.Snapshot().Counters {
				if cs.Name == "transport_retries_total" {
					retried += cs.Value
				}
			}
			if retried != c.retries {
				t.Fatalf("transport_retries_total = %d, want %d", retried, c.retries)
			}
		})
	}
}

// TestRetryDelayFloor drives retryDelay through the hint/no-hint cases:
// the jittered exponential delay is raised to the server's retry-after
// floor, the floor is clamped to RetryMax, and an absent or smaller floor
// leaves the jitter window untouched.
func TestRetryDelayFloor(t *testing.T) {
	cases := []struct {
		name     string
		base     time.Duration
		max      time.Duration
		attempt  int
		floor    time.Duration
		min, cap time.Duration // delay must land in [min, cap]
	}{
		{
			name: "no hint keeps jitter window",
			base: 40 * time.Millisecond, max: 2 * time.Second,
			attempt: 1, floor: 0,
			min: 20 * time.Millisecond, cap: 40 * time.Millisecond,
		},
		{
			name: "hint below jitter window is a no-op",
			base: 40 * time.Millisecond, max: 2 * time.Second,
			attempt: 1, floor: 5 * time.Millisecond,
			min: 20 * time.Millisecond, cap: 40 * time.Millisecond,
		},
		{
			name: "hint raises a short delay",
			base: 40 * time.Millisecond, max: 2 * time.Second,
			attempt: 1, floor: 300 * time.Millisecond,
			min: 300 * time.Millisecond, cap: 300 * time.Millisecond,
		},
		{
			name: "hint clamped to RetryMax",
			base: 40 * time.Millisecond, max: 500 * time.Millisecond,
			attempt: 1, floor: time.Hour,
			min: 500 * time.Millisecond, cap: 500 * time.Millisecond,
		},
		{
			name: "later attempt already past the hint",
			base: 400 * time.Millisecond, max: 2 * time.Second,
			attempt: 3, floor: 100 * time.Millisecond,
			min: 800 * time.Millisecond, cap: 1600 * time.Millisecond,
		},
		{
			name: "overflowed exponent saturates at RetryMax",
			base: time.Second, max: 2 * time.Second,
			attempt: 40, floor: 0,
			min: time.Second, cap: 2 * time.Second,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewPool("unused")
			p.RetryBase = c.base
			p.RetryMax = c.max
			p.init()
			// The jitter is deterministic under Seed but the bound is the
			// contract; sample repeatedly to exercise the window.
			for i := 0; i < 64; i++ {
				d := p.retryDelay(c.attempt, c.floor)
				if d < c.min || d > c.cap {
					t.Fatalf("retryDelay(attempt=%d, floor=%v) = %v, want in [%v, %v]",
						c.attempt, c.floor, d, c.min, c.cap)
				}
			}
		})
	}
}

// TestPoolHonorsRetryAfterHint end-to-end: a shed reply carrying a
// retry-after hint must hold the pool back at least that long before the
// resend, even when its own backoff schedule would retry much sooner.
func TestPoolHonorsRetryAfterHint(t *testing.T) {
	_, addr := startServer(t, 500)
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.2, Y: 0.4}, {X: 0.3, Y: 0.5}}, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	const hint = 250 * time.Millisecond
	pool := fastPool(addr) // RetryBase 1ms: without the floor, retry is near-instant
	pool.RetryMax = time.Second
	defer pool.Close()
	var n int32
	pool.DialFunc = func(string) (net.Conn, error) {
		if atomic.AddInt32(&n, 1) == 1 {
			return rejectingConn(core.BusyReply(hint)), nil
		}
		return net.Dial("tcp", addr)
	}
	start := time.Now()
	ans, err := pool.Process(q, lms)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Process: %v", err)
	}
	if ans == nil {
		t.Fatal("nil answer")
	}
	if elapsed < hint {
		t.Fatalf("retried after %v, server asked for at least %v", elapsed, hint)
	}
}

// TestPoolDeadlineDuringDial: the dial itself hangs (SYN blackhole). The
// query deadline must still fire on time, classify as a timeout, and not
// leak the checked-out slot — the pool stays usable afterwards.
func TestPoolDeadlineDuringDial(t *testing.T) {
	_, addr := startServer(t, 500)
	pool := fastPool(addr)
	defer pool.Close()
	pool.QueryTimeout = 150 * time.Millisecond
	dial, _ := scriptDialer(t, addr, "hang")
	pool.DialFunc = dial

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.2, Y: 0.5}, {X: 0.3, Y: 0.6}}, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = pool.Process(q, lms)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Process succeeded through a hung dial")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung dial not classified as a deadline: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline fired after %v, want ≈150ms", elapsed)
	}
	// Slot not leaked: a healthy query on the same pool succeeds (script
	// past its end dials the real server).
	pool.QueryTimeout = 10 * time.Second
	if _, err := pool.Process(q, lms); err != nil {
		t.Fatalf("pool unusable after an abandoned dial: %v", err)
	}
}

// TestPoolDeadlineDuringBackoff: the shed happens, the deadline expires
// inside the backoff sleep, and the joined error carries both the typed
// shed cause and the deadline.
func TestPoolDeadlineDuringBackoff(t *testing.T) {
	_, addr := startServer(t, 500)
	pool := NewPool(addr)
	pool.RetryBase = 30 * time.Second // backoff far beyond the deadline
	pool.RetryMax = 30 * time.Second
	pool.QueryTimeout = 150 * time.Millisecond
	defer pool.Close()
	dial, dials := scriptDialer(t, addr, "busy")
	pool.DialFunc = dial

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.6, Y: 0.2}, {X: 0.7, Y: 0.3}}, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = pool.Process(q, lms)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Process succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("returned after %v, want ≈150ms (backoff must not outlive the deadline)", elapsed)
	}
	var re *core.RemoteError
	if !errors.As(err, &re) || re.Msg != core.BusyMessage {
		t.Fatalf("busy cause lost when the deadline cut the backoff: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not recorded alongside the shed: %v", err)
	}
	if got := atomic.LoadInt32(dials); got != 1 {
		t.Fatalf("dialed %d times, want 1 (deadline fired before the retry)", got)
	}
}
