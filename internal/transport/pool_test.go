package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
)

// countingDialer wraps a dial function, counting connections dialed.
func countingDialer(dial func(string) (net.Conn, error)) (func(string) (net.Conn, error), *int32) {
	var n int32
	return func(addr string) (net.Conn, error) {
		atomic.AddInt32(&n, 1)
		return dial(addr)
	}, &n
}

// fastPool returns a pool with test-friendly backoff.
func fastPool(addr string) *Pool {
	p := NewPool(addr)
	p.RetryBase = time.Millisecond
	p.RetryMax = 20 * time.Millisecond
	return p
}

// TestPoolRetriesMidLocationStreamReset is the acceptance scenario: the
// connection is reset mid-location-stream (after the query frame, inside
// the first location frame) and the Pool transparently redials, resends
// the session from scratch, and returns the correct answer.
func TestPoolRetriesMidLocationStreamReset(t *testing.T) {
	_, addr := startServer(t, 1500)
	p := testParams(3, core.VariantPPGNN)
	locs := []geo.Point{{X: 0.2, Y: 0.3}, {X: 0.4, Y: 0.5}, {X: 0.3, Y: 0.4}}

	// A sibling group with the same seed builds byte-identical messages,
	// giving the exact offset of a cut inside the first location frame.
	sizer, err := core.NewGroup(p, locs, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := sizer.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(len(q.Marshal()) + len(lms[0].Marshal())) // mid-frame: headers excluded on purpose

	g, err := core.NewGroup(p, locs, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	pool := fastPool(addr)
	defer pool.Close()
	dial, dials := countingDialer(faultnet.Dialer(
		faultnet.Faults{Seed: 1, WriteResetAfter: cut},
	))
	pool.DialFunc = dial
	res, err := g.Run(pool, nil)
	if err != nil {
		t.Fatalf("pool did not survive mid-stream reset: %v", err)
	}
	if got := atomic.LoadInt32(dials); got != 2 {
		t.Fatalf("dialed %d conns, want 2 (reset + redial)", got)
	}

	// The answer must match an in-process run of the same group state.
	lsp := core.NewLSP(dataset.Synthetic(5, 1500), geo.UnitRect)
	g2, err := core.NewGroup(p, locs, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := g2.Run(core.LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || len(res.Points) != len(res2.Points) {
		t.Fatalf("retried answer has %d POIs, local run %d", len(res.Points), len(res2.Points))
	}
	for i := range res.Points {
		if res.Points[i].Dist(res2.Points[i]) > 1e-9 {
			t.Fatalf("retried answer differs from local run at %d", i)
		}
	}
}

func TestPoolRetriesDialFailure(t *testing.T) {
	_, addr := startServer(t, 500)
	pool := fastPool(addr)
	defer pool.Close()
	dial, dials := countingDialer(faultnet.Dialer(
		faultnet.Faults{FailDial: true},
		faultnet.Faults{FailDial: true},
	))
	pool.DialFunc = dial
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.1, Y: 0.8}, {X: 0.2, Y: 0.7}}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(pool, nil); err != nil {
		t.Fatalf("pool did not survive two dial failures: %v", err)
	}
	if got := atomic.LoadInt32(dials); got != 3 {
		t.Fatalf("dialed %d times, want 3", got)
	}
}

func TestPoolGivesUpAfterMaxRetries(t *testing.T) {
	pool := fastPool("127.0.0.1:1") // nothing listens here
	defer pool.Close()
	pool.MaxRetries = 2
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Process(q, lms); err == nil {
		t.Fatal("pool succeeded against a dead address")
	} else if !core.IsRetryable(err) {
		t.Fatalf("exhausted-retries error lost the retryable cause: %v", err)
	}
}

func TestPoolDoesNotRetryFatalRejection(t *testing.T) {
	_, addr := startServer(t, 500)
	pool := fastPool(addr)
	defer pool.Close()
	dial, dials := countingDialer(faultnet.Dialer())
	pool.DialFunc = dial
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.2, Y: 0.2}, {X: 0.3, Y: 0.3}}, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	q.V = q.V[:len(q.V)-1] // corrupt the indicator length
	_, err = pool.Process(q, lms)
	var re *core.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want a RemoteError rejection", err)
	}
	if got := atomic.LoadInt32(dials); got != 1 {
		t.Fatalf("dialed %d times for a fatal rejection, want 1 (no retry)", got)
	}
}

func TestPoolQueryTimeout(t *testing.T) {
	lsp := core.NewLSP(dataset.Synthetic(5, 500), geo.UnitRect)
	block := make(chan struct{})
	inner := lsp.Search
	lsp.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
		<-block
		return inner(query, k, agg)
	}
	defer close(block)
	srv := NewServer(lsp)
	srv.DrainTimeout = 100 * time.Millisecond
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := bound.String()
	pool := fastPool(addr)
	defer pool.Close()
	pool.MaxRetries = -1
	pool.QueryTimeout = 150 * time.Millisecond
	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.4, Y: 0.4}, {X: 0.5, Y: 0.5}}, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	q, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := pool.Process(q, lms); err == nil {
		t.Fatal("query against a stalled LSP succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline fired after %v, want ≈150ms", elapsed)
	}
}

func TestPoolClosed(t *testing.T) {
	pool := fastPool("127.0.0.1:1")
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Process(&core.QueryMsg{}, nil); err == nil {
		t.Fatal("Process on a closed pool succeeded")
	}
}

// TestPoolSoak pushes ≥8 concurrent goroutines through one Pool (Size 4,
// so sessions also contend for the semaphore) and checks every answer
// against the plaintext kGNN oracle over the same database.
func TestPoolSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		goroutines = 8
		queries    = 2
		nPOIs      = 1200
	)
	srv, addr := startServer(t, nPOIs)
	pool := fastPool(addr)
	defer pool.Close()

	oracle := &gnn.MBM{Tree: srv.LSP.Tree(), Agg: gnn.Sum}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := testParams(2, core.VariantPPGNN)
			locs := []geo.Point{
				{X: 0.1 + 0.8*rng.Float64(), Y: 0.1 + 0.8*rng.Float64()},
				{X: 0.1 + 0.8*rng.Float64(), Y: 0.1 + 0.8*rng.Float64()},
			}
			g, err := core.NewGroup(p, locs, rng)
			if err != nil {
				errs <- err
				return
			}
			want := oracle.Search(locs, p.K)
			for j := 0; j < queries; j++ {
				res, err := g.Run(pool, nil)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Points) != len(want) {
					errs <- errors.New("answer length differs from the plaintext oracle")
					return
				}
				for i := range want {
					if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
						errs <- errors.New("answer differs from the plaintext oracle")
						return
					}
				}
			}
		}(int64(100 + i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
