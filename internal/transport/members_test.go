package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/group"
)

// echoHandler replies with the request payload under FrameContrib.
type echoHandler struct{}

func (echoHandler) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	return core.FrameContrib, payload, nil
}

// panicHandler crashes while serving — the server must survive it.
type panicHandler struct{}

func (panicHandler) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	panic("handler crash")
}

func TestMemberServerRoundTrip(t *testing.T) {
	srv := NewMemberServer(echoHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	link := group.DialMember(addr.String())
	defer link.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	want := []byte("hello group")
	if err := link.Send(ctx, core.FrameContribReq, want); err != nil {
		t.Fatal(err)
	}
	typ, got, err := link.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if typ != core.FrameContrib || string(got) != string(want) {
		t.Fatalf("got frame %d %q, want %d %q", typ, got, core.FrameContrib, want)
	}
}

func TestMemberServerSurvivesHandlerPanic(t *testing.T) {
	srv := NewMemberServer(panicHandler{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The panicking connection dies; the server must keep accepting.
	for i := 0; i < 3; i++ {
		link := group.DialMember(addr.String())
		if err := link.Send(ctx, core.FrameContribReq, []byte("x")); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if _, _, err := link.Recv(ctx); err == nil {
			t.Fatalf("dial %d: got a reply from a panicking handler", i)
		}
		link.Close()
	}
}

// TestMemberServerAcceptExitOnClose: a deliberate Close reports a nil
// accept-loop exit, exactly once.
func TestMemberServerAcceptExitOnClose(t *testing.T) {
	srv := NewMemberServer(echoHandler{})
	exits := make(chan error, 2)
	srv.OnAcceptExit = func(err error) { exits <- err }
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exits:
		if err != nil {
			t.Fatalf("deliberate Close reported %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept-loop exit never reported after Close")
	}
	// Close again: the exit must not be reported twice.
	srv.Close()
	select {
	case err := <-exits:
		t.Fatalf("accept exit reported twice (second: %v)", err)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestMemberServerAcceptExitOnListenerDeath: the listener dying out from
// under the server (not via Close) surfaces a non-nil exit error instead
// of the loop vanishing silently.
func TestMemberServerAcceptExitOnListenerDeath(t *testing.T) {
	srv := NewMemberServer(echoHandler{})
	exits := make(chan error, 1)
	srv.OnAcceptExit = func(err error) { exits <- err }
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(ln)
	defer srv.Close()
	ln.Close() // external death: srv.closed is still false
	select {
	case err := <-exits:
		if err == nil {
			t.Fatal("external listener death reported as a clean exit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("listener death never reported")
	}
}

func TestMemberServerServesRealMember(t *testing.T) {
	m := group.NewMember(geo.Point{X: 0.5, Y: 0.5}, nil, nil)
	srv := NewMemberServer(m)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	link := group.DialMember(addr.String())
	defer link.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := &core.ContribRequest{Session: 7, Round: 0, Slot: 1, Pos: 2, SetSize: 6, Space: geo.UnitRect}
	if err := link.Send(ctx, core.FrameContribReq, req.Marshal()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := link.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if typ != core.FrameContrib {
		t.Fatalf("frame type %d (%s), want contribution", typ, payload)
	}
	cm, err := core.UnmarshalContribution(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Validate(req); err != nil {
		t.Fatal(err)
	}
	if cm.Set[2] != (geo.Point{X: 0.5, Y: 0.5}) {
		t.Fatalf("real location not at requested position: %v", cm.Set)
	}
}
