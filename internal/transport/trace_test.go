package transport

import (
	"math/rand"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/obs"
)

// TestTracePropagationClientToServer runs one pooled query over real TCP
// and proves the wire contract of FrameTrace: the client-originated
// trace id reappears verbatim in the server's flight recorder, marked
// remote, with the admission and LSP attributes attached server-side.
func TestTracePropagationClientToServer(t *testing.T) {
	sreg := obs.NewRegistry()
	_, addr := startServerWith(t, 500, func(s *Server) { s.Obs = sreg })

	creg := obs.NewRegistry()
	pool := NewPool(addr)
	pool.Obs = creg
	defer pool.Close()

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}

	client := creg.Recorder().Snapshot()
	server := sreg.Recorder().Snapshot()
	if len(client) != 1 || len(server) != 1 {
		t.Fatalf("client retained %d traces, server %d; want 1 and 1", len(client), len(server))
	}
	if client[0].TraceID != server[0].TraceID {
		t.Fatalf("trace id diverged across the wire: client %s, server %s",
			client[0].TraceID, server[0].TraceID)
	}
	if client[0].Remote || !server[0].Remote {
		t.Fatalf("remote flags: client %v, server %v", client[0].Remote, server[0].Remote)
	}
	if client[0].Root.Phase != "query" || client[0].Root.Outcome != "ok" {
		t.Fatalf("client root = %s/%s", client[0].Root.Phase, client[0].Root.Outcome)
	}
	root := server[0].Root
	if root.Phase != "session" || root.Outcome != "ok" {
		t.Fatalf("server root = %s/%s", root.Phase, root.Outcome)
	}
	if root.Attrs["admission"] != "ok" || root.Attrs["tenant"] != "default" {
		t.Fatalf("server root attrs = %v", root.Attrs)
	}
	if len(root.Children) != 1 || root.Children[0].Phase != "lsp" {
		t.Fatalf("server children = %+v, want one lsp span", root.Children)
	}
	lsp := root.Children[0]
	if !obs.AllowedTraceAttr("workers", lsp.Attrs["workers"]) ||
		!obs.AllowedTraceAttr("candidates", lsp.Attrs["candidates"]) {
		t.Fatalf("lsp attrs = %v, want bucketed workers and candidates", lsp.Attrs)
	}
}

// TestShedSessionIsTraced pins the admission-control side of the
// tentpole: a quota rejection still produces a server-side trace that
// records the shed's reason, the tenant's metric slot, and the
// retry-after hint — as closed buckets, never raw values.
func TestShedSessionIsTraced(t *testing.T) {
	sreg := obs.NewRegistry()
	adm := &recordingAdmitter{errs: map[string]error{
		"alpha": &BusyError{RetryAfter: 80 * time.Millisecond, Reason: "quota", Slot: "t1"},
	}}
	_, addr := startServerWith(t, 400, func(s *Server) {
		s.Obs = sreg
		s.Admitter = adm
	})

	creg := obs.NewRegistry()
	pool := NewPool(addr)
	pool.Obs = creg
	pool.Tenant = "alpha"
	pool.MaxRetries = -1 // every shed must surface, not be retried away
	defer pool.Close()

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(pool, nil); err == nil {
		t.Fatal("quota shed did not fail the query")
	}

	// The server completes the trace when its session goroutine unwinds,
	// which can lag the client's error return while the server drains the
	// discarded connection.
	var server []*obs.TraceSnap
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if server = sreg.Recorder().Snapshot(); len(server) > 0 {
			break
		}
	}
	if len(server) != 1 {
		t.Fatalf("server retained %d traces, want the shed", len(server))
	}
	root := server[0].Root
	if !server[0].Remote || root.Outcome != "busy" {
		t.Fatalf("shed trace = remote=%v outcome=%s", server[0].Remote, root.Outcome)
	}
	want := map[string]string{"admission": "quota", "tenant": "t1", "retry_after": "le_100ms"}
	for k, v := range want {
		if root.Attrs[k] != v {
			t.Fatalf("shed attr %s = %q, want %q (all: %v)", k, root.Attrs[k], v, root.Attrs)
		}
	}
	// The client side recorded the same trace, failed.
	client := creg.Recorder().Snapshot()
	if len(client) != 1 || client[0].TraceID != server[0].TraceID {
		t.Fatalf("client shed trace = %+v", client)
	}
	if client[0].Root.Outcome != "busy" {
		t.Fatalf("client shed outcome = %s", client[0].Root.Outcome)
	}
}

// TestRetriedSessionTraceCarriesCause: a server that sheds once and then
// admits leaves a client trace with one retry and a "busy" cause attr.
func TestRetriedSessionTraceCarriesCause(t *testing.T) {
	sheds := 0
	adm := &recordingAdmitter{grants: map[string]*SessionGrant{DefaultTenant: {}}}
	sreg := obs.NewRegistry()
	_, addr := startServerWith(t, 400, func(s *Server) {
		s.Obs = sreg
		base := adm
		s.Admitter = admitFunc(func(tenant string) (*SessionGrant, error) {
			if sheds == 0 {
				sheds++
				return nil, &BusyError{RetryAfter: time.Millisecond, Reason: "overload"}
			}
			return base.Admit(tenant)
		})
	})

	creg := obs.NewRegistry()
	pool := NewPool(addr)
	pool.Obs = creg
	pool.RetryBase = time.Millisecond
	defer pool.Close()

	g, err := core.NewGroup(testParams(2, core.VariantPPGNN),
		[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(pool, nil); err != nil {
		t.Fatal(err)
	}
	client := creg.Recorder().Snapshot()
	if len(client) != 1 {
		t.Fatalf("client retained %d traces", len(client))
	}
	root := client[0].Root
	if root.Outcome != "ok" || root.Retries != 1 || root.Attrs["cause"] != "busy" {
		t.Fatalf("retried trace root = outcome=%s retries=%d attrs=%v", root.Outcome, root.Retries, root.Attrs)
	}
}

// admitFunc adapts a function to SessionAdmitter for tests.
type admitFunc func(tenantID string) (*SessionGrant, error)

func (f admitFunc) Admit(tenantID string) (*SessionGrant, error) { return f(tenantID) }
