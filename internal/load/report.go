package load

import "fmt"

// Report is one open-loop run, JSON-ready: the payload BENCH_load.json
// embeds once per pass. Latency quantiles come from the obs
// load_query_seconds histograms (bucket-interpolated, like the
// -metrics-addr endpoint reports them), so the gate and the live
// introspection surface can never disagree about what a p95 is.
type Report struct {
	Rate          float64 `json:"rate"`    // offered arrivals/second
	Arrival       string  `json:"arrival"` // poisson | fixed
	WarmupSec     float64 `json:"warmup_sec"`
	MeasureSec    float64 `json:"measure_sec"`
	DrainSec      float64 `json:"drain_sec"`
	Seed          int64   `json:"seed"`
	Cores         int     `json:"cores"` // runtime.NumCPU, honest
	MaxInFlight   int     `json:"max_in_flight"`
	OracleChecked bool    `json:"oracle_checked"`

	Arrivals     int64   `json:"arrivals"`  // total fired
	Abandoned    int64   `json:"abandoned"` // still in flight past the drain deadline
	PeakInFlight int64   `json:"peak_in_flight"`
	SchedLagP99  float64 `json:"sched_lag_p99_sec"` // generator health: offered rate is honest only if ~0

	Stages []StageReport `json:"stages"` // warmup, measure
}

// StageReport is one stage's numbers. Completions are attributed to the
// stage of their arrival's scheduled time.
type StageReport struct {
	Stage    string           `json:"stage"`
	Arrivals int64            `json:"arrivals"`
	Dropped  int64            `json:"dropped"` // client-side drops at MaxInFlight
	Done     int64            `json:"done"`
	OK       int64            `json:"ok"`
	Outcomes map[string]int64 `json:"outcomes"` // closed taxonomy → count

	Mismatches int64 `json:"oracle_mismatches"`

	LatencyP50  float64 `json:"latency_p50_sec"`
	LatencyP95  float64 `json:"latency_p95_sec"`
	LatencyP99  float64 `json:"latency_p99_sec"`
	LatencyMean float64 `json:"latency_mean_sec"`

	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // OK completions / stage duration
}

// Stage returns the named stage's report, or nil.
func (r *Report) Stage(name string) *StageReport {
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// Mismatches sums oracle disagreements across every stage — warmup
// included, because a wrong answer is a wrong answer whenever it
// happened.
func (r *Report) Mismatches() int64 {
	var n int64
	for _, s := range r.Stages {
		n += s.Mismatches
	}
	return n
}

// ErrorRate is the fraction of a stage's arrivals that did not come back
// ok: failures, drops, and (for the whole run's tail) nothing else —
// abandoned queries belong to the run, not a stage.
func (s *StageReport) ErrorRate() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.Arrivals-s.OK) / float64(s.Arrivals)
}

// Summary renders the stage as one human line.
func (s *StageReport) Summary() string {
	return fmt.Sprintf("%-7s arrivals=%d ok=%d dropped=%d err=%.3f p50=%.4fs p95=%.4fs p99=%.4fs achieved=%.2f/s",
		s.Stage, s.Arrivals, s.OK, s.Dropped, s.ErrorRate(), s.LatencyP50, s.LatencyP95, s.LatencyP99, s.AchievedQPS)
}
