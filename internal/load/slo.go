package load

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// SLO is the service-level objective a run's measure stage must meet.
// Zero-valued fields are unchecked, with one exception: oracle
// mismatches always fail, regardless of every other field — conformance
// is not an objective, it is the contract.
type SLO struct {
	// P50/P95/P99 bound the measure stage's latency quantiles.
	P50, P95, P99 time.Duration
	// MaxErrorRate bounds (arrivals − ok) / arrivals in the measure
	// stage; client-side drops count as errors. Set it to a small
	// non-zero value for faulted runs, where injected kills legitimately
	// cost a few sessions.
	MaxErrorRate float64
	// MinThroughputFrac requires achieved ok-QPS ≥ frac × offered rate
	// in the measure stage.
	MinThroughputFrac float64
	// MaxAbandoned bounds queries still unfinished at the drain
	// deadline. Zero means none are tolerated; use -1 to skip.
	MaxAbandoned int64
}

// String renders the objective as one human line for reports and logs.
func (s SLO) String() string {
	parts := []string{"mismatches=0"}
	add := func(bound time.Duration, name string) {
		if bound > 0 {
			parts = append(parts, fmt.Sprintf("%s≤%v", name, bound))
		}
	}
	add(s.P50, "p50")
	add(s.P95, "p95")
	add(s.P99, "p99")
	parts = append(parts, fmt.Sprintf("err≤%.2f", s.MaxErrorRate))
	if s.MinThroughputFrac > 0 {
		parts = append(parts, fmt.Sprintf("qps≥%.0f%%", 100*s.MinThroughputFrac))
	}
	if s.MaxAbandoned >= 0 {
		parts = append(parts, fmt.Sprintf("abandoned≤%d", s.MaxAbandoned))
	}
	return strings.Join(parts, " ")
}

// Check applies the SLO to a report and returns every violation joined,
// so a failing gate names all the broken objectives at once.
func (s SLO) Check(r *Report) error {
	var errs []error
	if n := r.Mismatches(); n > 0 {
		errs = append(errs, fmt.Errorf("load: %d answer(s) disagreed with the plaintext oracle", n))
	}
	m := r.Stage("measure")
	if m == nil {
		return errors.Join(append(errs, fmt.Errorf("load: report has no measure stage"))...)
	}
	if m.Arrivals == 0 {
		errs = append(errs, fmt.Errorf("load: measure stage saw no arrivals"))
	}
	check := func(bound time.Duration, got float64, name string) {
		if bound > 0 && got > bound.Seconds() {
			errs = append(errs, fmt.Errorf("load: measure %s %.4fs exceeds SLO %v", name, got, bound))
		}
	}
	check(s.P50, m.LatencyP50, "p50")
	check(s.P95, m.LatencyP95, "p95")
	check(s.P99, m.LatencyP99, "p99")
	if rate := m.ErrorRate(); rate > s.MaxErrorRate {
		errs = append(errs, fmt.Errorf("load: measure error rate %.4f exceeds SLO %.4f (outcomes %v, dropped %d)",
			rate, s.MaxErrorRate, m.Outcomes, m.Dropped))
	}
	if s.MinThroughputFrac > 0 && m.AchievedQPS < s.MinThroughputFrac*m.OfferedQPS {
		errs = append(errs, fmt.Errorf("load: measure achieved %.2f qps below %.0f%% of offered %.2f",
			m.AchievedQPS, 100*s.MinThroughputFrac, m.OfferedQPS))
	}
	if s.MaxAbandoned >= 0 && r.Abandoned > s.MaxAbandoned {
		errs = append(errs, fmt.Errorf("load: %d queries abandoned past the drain deadline (SLO allows %d)",
			r.Abandoned, s.MaxAbandoned))
	}
	return errors.Join(errs...)
}
