package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Arrival selects the open-loop arrival process of a load run. Open-loop
// means arrivals fire on the process's own clock, independent of how fast
// the system answers — the generator never waits for a response before
// firing the next query, so queueing delay under overload shows up in the
// measured latency instead of silently throttling the offered rate (the
// coordinated-omission trap of closed-loop benchmarks).
type Arrival int

const (
	// Poisson draws exponential inter-arrival gaps: memoryless traffic,
	// the standard model for many independent users.
	Poisson Arrival = iota
	// Fixed fires at exact 1/rate intervals: a metronome, useful for
	// pinning capacity cliffs without Poisson burst noise.
	Fixed
)

func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Fixed:
		return "fixed"
	}
	return fmt.Sprintf("arrival(%d)", int(a))
}

// ParseArrival maps the flag spelling to an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "fixed":
		return Fixed, nil
	}
	return 0, fmt.Errorf("load: unknown arrival process %q (want poisson|fixed)", s)
}

// schedule produces the deterministic inter-arrival gaps of one run: the
// same (process, rate, seed) triple always yields the same sequence, so a
// faulted run can be replayed exactly.
type schedule struct {
	arrival Arrival
	rate    float64 // arrivals per second
	rng     *rand.Rand
}

func newSchedule(arrival Arrival, rate float64, seed int64) *schedule {
	return &schedule{arrival: arrival, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// next returns the gap before the following arrival.
func (s *schedule) next() time.Duration {
	switch s.arrival {
	case Poisson:
		return time.Duration(s.rng.ExpFloat64() / s.rate * float64(time.Second))
	default:
		return time.Duration(float64(time.Second) / s.rate)
	}
}
