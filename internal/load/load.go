// Package load is the open-loop load harness of ROADMAP item 5: it
// drives sustained concurrent traffic against a PPGNN service at a fixed
// arrival rate (Poisson or metronome), measures per-stage latency
// distributions through internal/obs histograms, classifies every
// failure into the closed error taxonomy, and asserts SLOs. With an
// Oracle configured it is also a conformance suite: every decrypted
// answer delivered under load — retries, shed connections, and injected
// faultnet faults included — is checked point-for-point against the
// plaintext gnn engine, so correctness under concurrency is a gate, not
// folklore.
//
// A run has three stages. Warmup traffic fills connection pools, OS
// buffers, and allocator caches; its numbers are recorded but never
// gated. Measure is the scored window. Drain stops arrivals and waits
// out in-flight queries so the measure numbers are complete rather than
// censored; queries still unfinished when the drain deadline passes are
// counted as abandoned. Arrivals are attributed to the stage of their
// *scheduled* time, so a query fired late in measure and finishing
// during drain still scores.
package load

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/obs"
)

// Runner executes one arrival's query. Implementations must be safe for
// concurrent calls; Fleet is the standard one.
type Runner interface {
	Run(ctx context.Context, arrival int64) error
}

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the offered arrival rate in queries per second.
	Rate float64
	// Arrival selects Poisson (default) or Fixed inter-arrival gaps.
	Arrival Arrival
	// Warmup, Measure, Drain are the stage durations. Measure must be
	// positive; Warmup defaults to 0, Drain to QueryTimeout-scale 30s.
	Warmup, Measure, Drain time.Duration
	// MaxInFlight caps concurrently running queries; arrivals beyond it
	// are dropped and counted (default 512). The cap keeps an overloaded
	// open-loop run from growing goroutines without bound; drops are an
	// overload signal the SLO can gate on.
	MaxInFlight int
	// Seed drives the arrival schedule (default 1).
	Seed int64
	// OracleChecked records in the report that the runner verifies
	// answers (Fleet with a non-nil Oracle).
	OracleChecked bool
	// Obs receives the harness's telemetry (nil = obs.Default).
	Obs *obs.Registry
	// Logf, when set, receives stage-transition progress lines.
	Logf func(format string, args ...any)
}

// stageAgg accumulates one stage's numbers.
type stageAgg struct {
	name     string
	duration time.Duration

	arrivals atomic.Int64
	dropped  atomic.Int64
	done     atomic.Int64
	ok       atomic.Int64

	mu       sync.Mutex
	outcomes map[string]int64

	hist *obs.Histogram
}

// Driver runs the open-loop generator against a Runner.
type Driver struct {
	cfg    Config
	runner Runner

	reg      *obs.Registry
	inflight atomic.Int64
	peak     atomic.Int64
	wg       sync.WaitGroup

	stages [2]*stageAgg // warmup, measure
}

// NewDriver validates the config and binds the telemetry.
func NewDriver(cfg Config, r Runner) (*Driver, error) {
	if r == nil {
		return nil, fmt.Errorf("load: driver needs a runner")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: rate %v must be positive", cfg.Rate)
	}
	if cfg.Measure <= 0 {
		return nil, fmt.Errorf("load: measure window %v must be positive", cfg.Measure)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	d := &Driver{cfg: cfg, runner: r, reg: reg}
	names := [2]string{"warmup", "measure"}
	durations := [2]time.Duration{cfg.Warmup, cfg.Measure}
	for i := range d.stages {
		d.stages[i] = &stageAgg{
			name:     names[i],
			duration: durations[i],
			outcomes: make(map[string]int64),
			hist:     reg.Histogram("load_query_seconds", obs.TimeBuckets, obs.L("stage", names[i])),
		}
	}
	return d, nil
}

func (d *Driver) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Run executes the warmup + measure + drain timeline and returns the
// report. Cancelling the context stops arrivals early and fails the run.
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	sched := newSchedule(d.cfg.Arrival, d.cfg.Rate, d.cfg.Seed)
	start := time.Now()
	warmEnd := start.Add(d.cfg.Warmup)
	measEnd := warmEnd.Add(d.cfg.Measure)

	d.logf("load: %s arrivals at %.3g/s — warmup %v, measure %v, drain up to %v",
		d.cfg.Arrival, d.cfg.Rate, d.cfg.Warmup, d.cfg.Measure, d.cfg.Drain)

	lagHist := d.reg.Histogram("load_sched_lag_seconds", obs.TimeBuckets)
	inflightGauge := d.reg.Gauge("load_inflight")

	var arrival int64
	announced := 0 // stages whose start has been logged
	next := start
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

arrivals:
	for next.Before(measEnd) {
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break arrivals
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			break arrivals
		}
		// Attribute by scheduled time: deterministic under lag.
		agg := d.stages[0]
		if !next.Before(warmEnd) {
			agg = d.stages[1]
			if announced < 2 {
				announced = 2
				d.logf("load: measure window open")
			}
		} else if announced < 1 {
			announced = 1
			d.logf("load: warmup")
		}
		if lag := time.Since(next); lag > 0 {
			lagHist.Observe(lag.Seconds())
		} else {
			lagHist.Observe(0)
		}
		d.fire(ctx, arrival, agg, inflightGauge)
		arrival++
		next = next.Add(sched.next())
	}

	// Drain: no new arrivals; wait out the in-flight tail.
	d.logf("load: draining %d in-flight queries", d.inflight.Load())
	drained := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(drained)
	}()
	abandoned := int64(0)
	timer.Reset(d.cfg.Drain)
	select {
	case <-drained:
	case <-timer.C:
		abandoned = d.inflight.Load()
		d.logf("load: drain deadline passed with %d queries still in flight", abandoned)
	case <-ctx.Done():
		abandoned = d.inflight.Load()
	}

	rep := d.report(arrival, abandoned, lagHist)
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("load: run cancelled: %w", err)
	}
	return rep, nil
}

// fire launches one arrival's worker, or drops it at the in-flight cap.
func (d *Driver) fire(ctx context.Context, arrival int64, agg *stageAgg, inflightGauge *obs.Gauge) {
	agg.arrivals.Add(1)
	d.reg.Counter("load_arrivals_total", obs.L("stage", agg.name)).Inc()
	if d.inflight.Load() >= int64(d.cfg.MaxInFlight) {
		agg.dropped.Add(1)
		d.reg.Counter("load_dropped_total", obs.L("stage", agg.name)).Inc()
		return
	}
	cur := d.inflight.Add(1)
	inflightGauge.Set(cur)
	for {
		p := d.peak.Load()
		if cur <= p || d.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		begin := time.Now()
		err := d.runner.Run(ctx, arrival)
		elapsed := time.Since(begin)
		inflightGauge.Set(d.inflight.Add(-1))
		d.complete(agg, elapsed, err)
	}()
}

// complete records one finished query under its arrival's stage.
func (d *Driver) complete(agg *stageAgg, elapsed time.Duration, err error) {
	outcome := Classify(err)
	agg.done.Add(1)
	if err == nil {
		agg.ok.Add(1)
		if d.cfg.OracleChecked {
			d.reg.Counter("load_oracle_total", obs.L("verdict", "match")).Inc()
		}
	} else if outcome == "mismatch" {
		d.reg.Counter("load_oracle_total", obs.L("verdict", "mismatch")).Inc()
	}
	agg.mu.Lock()
	agg.outcomes[outcome]++
	agg.mu.Unlock()
	d.reg.Counter("load_sessions_total", obs.L("stage", agg.name), obs.L("outcome", outcome)).Inc()
	agg.hist.Observe(elapsed.Seconds())
}

// Classify maps one query's result onto the closed error taxonomy of the
// obs outcome enum: ok, mismatch (oracle disagreement), busy (server
// shed), drain (server draining), quorum_lost, timeout, canceled,
// exhausted (transient faults outlived the retry budget), remote
// (protocol-fatal server rejection), error (everything else).
func Classify(err error) string {
	if err == nil {
		return "ok"
	}
	var mm *MismatchError
	if errors.As(err, &mm) {
		return "mismatch"
	}
	if errors.Is(err, core.ErrQuorumLost) {
		return "quorum_lost"
	}
	var re *core.RemoteError
	if errors.As(err, &re) {
		switch {
		case core.IsBusyMessage(re.Msg):
			return "busy"
		case core.IsDrainingMessage(re.Msg):
			return "drain"
		default:
			return "remote"
		}
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case core.IsRetryable(err):
		// Every attempt failed transiently and the pool gave up: the
		// retry budget, not the protocol, ended this session.
		return "exhausted"
	}
	return "error"
}

// report freezes the run.
func (d *Driver) report(arrivals, abandoned int64, lagHist *obs.Histogram) *Report {
	rep := &Report{
		Rate:          d.cfg.Rate,
		Arrival:       d.cfg.Arrival.String(),
		WarmupSec:     d.cfg.Warmup.Seconds(),
		MeasureSec:    d.cfg.Measure.Seconds(),
		DrainSec:      d.cfg.Drain.Seconds(),
		Seed:          d.cfg.Seed,
		Cores:         runtime.NumCPU(),
		MaxInFlight:   d.cfg.MaxInFlight,
		OracleChecked: d.cfg.OracleChecked,
		Arrivals:      arrivals,
		Abandoned:     abandoned,
		PeakInFlight:  d.peak.Load(),
		SchedLagP99:   lagHist.Quantile(0.99),
	}
	for _, agg := range d.stages {
		sr := StageReport{
			Stage:    agg.name,
			Arrivals: agg.arrivals.Load(),
			Dropped:  agg.dropped.Load(),
			Done:     agg.done.Load(),
			OK:       agg.ok.Load(),
			Outcomes: make(map[string]int64),
		}
		agg.mu.Lock()
		for k, v := range agg.outcomes {
			sr.Outcomes[k] = v
		}
		agg.mu.Unlock()
		sr.Mismatches = sr.Outcomes["mismatch"]
		sr.LatencyP50 = agg.hist.Quantile(0.50)
		sr.LatencyP95 = agg.hist.Quantile(0.95)
		sr.LatencyP99 = agg.hist.Quantile(0.99)
		if n := agg.hist.Count(); n > 0 {
			sr.LatencyMean = agg.hist.Sum() / float64(n)
		}
		if secs := agg.duration.Seconds(); secs > 0 {
			sr.OfferedQPS = d.cfg.Rate
			sr.AchievedQPS = float64(sr.OK) / secs
		}
		rep.Stages = append(rep.Stages, sr)
	}
	return rep
}
