package load

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"
)

func TestScheduleDeterministic(t *testing.T) {
	for _, arrival := range []Arrival{Poisson, Fixed} {
		a := newSchedule(arrival, 100, 7)
		b := newSchedule(arrival, 100, 7)
		var sum time.Duration
		for i := 0; i < 1000; i++ {
			ga, gb := a.next(), b.next()
			if ga != gb {
				t.Fatalf("%v: gap %d diverges under equal seeds: %v vs %v", arrival, i, ga, gb)
			}
			if ga < 0 {
				t.Fatalf("%v: negative gap %v", arrival, ga)
			}
			sum += ga
		}
		// 1000 arrivals at 100/s should span ~10s; Poisson within ±30%.
		mean := sum / 1000
		want := 10 * time.Millisecond
		if mean < want*7/10 || mean > want*13/10 {
			t.Fatalf("%v: mean gap %v, want ≈%v", arrival, mean, want)
		}
	}
}

func TestParseArrival(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Arrival
		ok   bool
	}{{"poisson", Poisson, true}, {"fixed", Fixed, true}, {"burst", 0, false}} {
		got, err := ParseArrival(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseArrival(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseArrival(%q) accepted", c.in)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, "ok"},
		{"mismatch", &MismatchError{Group: 1, Rank: 0}, "mismatch"},
		{"wrapped mismatch", fmt.Errorf("q: %w", &MismatchError{Rank: -1}), "mismatch"},
		{"busy", &core.RemoteError{Msg: core.BusyMessage}, "busy"},
		{"draining", &core.RemoteError{Msg: core.DrainingMessage}, "drain"},
		{"remote fatal", &core.RemoteError{Msg: "bad query"}, "remote"},
		{"quorum", &core.QuorumError{Phase: "contribute", Need: 3, Have: 2, Total: 5}, "quorum_lost"},
		{"deadline", fmt.Errorf("t: %w", context.DeadlineExceeded), "timeout"},
		{"canceled", context.Canceled, "canceled"},
		{"retry exhausted", fmt.Errorf("after 4 attempts: %w",
			errors.Join(core.Retryable(errors.New("dial refused")), core.Retryable(errors.New("reset")))), "exhausted"},
		{"plain", errors.New("boom"), "error"},
		// The pool's real shape: a busy rejection behind two transient
		// attempts — the typed RemoteError must win over "exhausted".
		{"busy behind retries", errors.Join(
			core.Retryable(errors.New("reset")),
			&core.RemoteError{Msg: core.BusyMessage}), "busy"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %q, want %q", c.name, got, c.want)
		}
		if c.want != "ok" && !obs.AllowedValues("outcome", c.want) {
			t.Errorf("%s: %q is not in the outcome enum", c.name, c.want)
		}
	}
}

// loadRig is one in-process LSP behind real TCP plus its plaintext
// oracle.
type loadRig struct {
	lsp  *core.LSP
	srv  *transport.Server
	addr string
}

func newLoadRig(t *testing.T) *loadRig {
	t.Helper()
	lsp := core.NewLSP(dataset.Synthetic(41, 1500), geo.UnitRect)
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &loadRig{lsp: lsp, srv: srv, addr: addr.String()}
}

func (r *loadRig) oracle() Oracle {
	return func(q []geo.Point, k int) []gnn.Result { return r.lsp.Search(q, k, gnn.Sum) }
}

func testFleetConfig(addr string, oracle Oracle) FleetConfig {
	return FleetConfig{
		Addr:         addr,
		Groups:       4,
		GroupSize:    3,
		KeyBits:      192,
		D:            5,
		Delta:        10,
		K:            4,
		Seed:         11,
		QueryTimeout: 10 * time.Second,
		RetryBase:    2 * time.Millisecond,
		RetryMax:     20 * time.Millisecond,
		Oracle:       oracle,
	}
}

// The harness's core promise: an open-loop run against a live TCP server
// completes, every answer matches the plaintext oracle, and the report
// and registry agree on the numbers.
func TestDriverConformanceAgainstLiveServer(t *testing.T) {
	rig := newLoadRig(t)
	fleet, err := NewFleet(testFleetConfig(rig.addr, rig.oracle()))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	reg := obs.NewRegistry()
	d, err := NewDriver(Config{
		Rate:          60,
		Arrival:       Poisson,
		Warmup:        200 * time.Millisecond,
		Measure:       1200 * time.Millisecond,
		Drain:         15 * time.Second,
		Seed:          3,
		OracleChecked: true,
		Obs:           reg,
	}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	m := rep.Stage("measure")
	if m == nil || rep.Stage("warmup") == nil {
		t.Fatalf("report stages incomplete: %+v", rep.Stages)
	}
	if m.Arrivals == 0 || m.OK == 0 {
		t.Fatalf("measure stage empty: %s", m.Summary())
	}
	if got := rep.Mismatches(); got != 0 {
		t.Fatalf("%d oracle mismatches in a clean run", got)
	}
	if rep.Abandoned != 0 {
		t.Fatalf("%d queries abandoned with a 15s drain", rep.Abandoned)
	}
	if m.Done != m.Arrivals-m.Dropped {
		t.Fatalf("measure accounting broken: done=%d arrivals=%d dropped=%d", m.Done, m.Arrivals, m.Dropped)
	}
	if m.LatencyP50 <= 0 || m.LatencyP95 < m.LatencyP50 || m.LatencyP99 < m.LatencyP95 {
		t.Fatalf("quantiles not monotone: %s", m.Summary())
	}
	if rep.PeakInFlight < 1 {
		t.Fatalf("peak in-flight %d", rep.PeakInFlight)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("load_sessions_total", obs.L("stage", "measure"), obs.L("outcome", "ok")); got != m.OK {
		t.Fatalf("registry ok=%d, report ok=%d", got, m.OK)
	}
	if got := snap.Counter("load_oracle_total", obs.L("verdict", "match")); got != m.OK+rep.Stage("warmup").OK {
		t.Fatalf("oracle match counter %d, want %d", got, m.OK+rep.Stage("warmup").OK)
	}
	if h := snap.Histogram("load_query_seconds", obs.L("stage", "measure")); h == nil || h.Count != m.Done {
		t.Fatalf("measure latency histogram inconsistent with report")
	}

	if err := (SLO{P99: 10 * time.Second, MaxErrorRate: 0, MinThroughputFrac: 0.2}).Check(rep); err != nil {
		t.Fatalf("clean run violates a generous SLO: %v", err)
	}
}

// Faults injected mid-run — dropped dials, added latency, a mid-answer
// connection kill — must surface only as taxonomy entries and latency,
// never as a wrong answer.
func TestDriverFaultedRunStaysConformant(t *testing.T) {
	rig := newLoadRig(t)
	cfg := testFleetConfig(rig.addr, rig.oracle())
	cfg.DialFunc = func(group int) func(addr string) (net.Conn, error) {
		switch group {
		case 0: // first two dials refused: retry recovers, queries stay ok
			return faultnet.Dialer(
				faultnet.Faults{FailDial: true},
				faultnet.Faults{FailDial: true},
			)
		case 1: // first connection killed mid-answer: one session lost for good
			return faultnet.Dialer(faultnet.Faults{Seed: 1, ReadResetAfter: 40})
		case 2: // a slow link
			return faultnet.Dialer(
				faultnet.Faults{Seed: 2, Latency: 2 * time.Millisecond},
				faultnet.Faults{Seed: 3, Latency: 2 * time.Millisecond},
			)
		default:
			return nil // clean
		}
	}
	fleet, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	reg := obs.NewRegistry()
	d, err := NewDriver(Config{
		Rate:          50,
		Arrival:       Fixed,
		Measure:       1200 * time.Millisecond,
		Drain:         15 * time.Second,
		Seed:          5,
		OracleChecked: true,
		Obs:           reg,
	}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Mismatches(); got != 0 {
		t.Fatalf("injected faults produced %d oracle mismatches — answers must stay correct or absent", got)
	}
	m := rep.Stage("measure")
	if m.OK == 0 {
		t.Fatalf("no successful queries under faults: %v", m.Outcomes)
	}
	// The mid-answer kill is past the retry-safety boundary; that one
	// session must be reported lost (outcome "error"), not retried into
	// a duplicate or silently dropped.
	total := m.Outcomes["error"] + rep.Stage("warmup").Outcomes["error"]
	if total == 0 {
		t.Fatalf("mid-answer kill not surfaced in the taxonomy: %v", m.Outcomes)
	}
	if err := (SLO{MaxErrorRate: 0.2, MaxAbandoned: 0}).Check(rep); err != nil {
		t.Fatalf("faulted run exceeds the relaxed SLO: %v", err)
	}
}

// A deliberately wrong oracle proves the conformance check actually
// bites: every answer must be flagged and the SLO must fail.
func TestDriverDetectsNonConformance(t *testing.T) {
	rig := newLoadRig(t)
	badOracle := func(q []geo.Point, k int) []gnn.Result {
		res := rig.lsp.Search(q, k, gnn.Sum)
		for i := range res {
			res[i].Item.P.X += 0.25 // shift every expected POI
		}
		return res
	}
	fleet, err := NewFleet(testFleetConfig(rig.addr, badOracle))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	reg := obs.NewRegistry()
	d, err := NewDriver(Config{
		Rate: 30, Measure: 500 * time.Millisecond, Drain: 10 * time.Second,
		OracleChecked: true, Obs: reg,
	}, fleet)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches() == 0 {
		t.Fatal("shifted oracle produced no mismatches — the conformance check is dead")
	}
	err = (SLO{MaxErrorRate: 1, MaxAbandoned: -1}).Check(rep)
	if err == nil || !strings.Contains(err.Error(), "oracle") {
		t.Fatalf("SLO tolerated oracle mismatches: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("load_oracle_total", obs.L("verdict", "mismatch")); got != rep.Mismatches() {
		t.Fatalf("mismatch counter %d, report %d", got, rep.Mismatches())
	}
}

// blockingRunner parks every query until released.
type blockingRunner struct {
	release chan struct{}
	calls   atomic.Int64
}

func (b *blockingRunner) Run(ctx context.Context, arrival int64) error {
	b.calls.Add(1)
	select {
	case <-b.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Overload: with every worker parked, arrivals beyond MaxInFlight must
// be dropped — bounded memory — and the drops must fail a strict SLO.
func TestDriverOverloadDropsAtCap(t *testing.T) {
	r := &blockingRunner{release: make(chan struct{})}
	reg := obs.NewRegistry()
	d, err := NewDriver(Config{
		Rate: 500, Arrival: Fixed,
		Measure: 300 * time.Millisecond, Drain: 5 * time.Second,
		MaxInFlight: 4, Obs: reg,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rep *Report
	go func() {
		defer close(done)
		rep, err = d.Run(context.Background())
	}()
	time.Sleep(400 * time.Millisecond)
	close(r.release)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Stage("measure")
	dropped := m.Dropped + rep.Stage("warmup").Dropped
	if dropped == 0 {
		t.Fatalf("no drops at MaxInFlight=4 under 500/s: %+v", m)
	}
	if rep.PeakInFlight > 4 {
		t.Fatalf("peak in-flight %d exceeded the cap 4", rep.PeakInFlight)
	}
	if err := (SLO{MaxErrorRate: 0, MaxAbandoned: -1}).Check(rep); err == nil {
		t.Fatal("strict SLO ignored client-side drops")
	}
}

// Abandonment: queries still parked when the drain deadline passes are
// counted, and the default SLO rejects them.
func TestDriverDrainDeadlineAbandons(t *testing.T) {
	r := &blockingRunner{release: make(chan struct{})}
	defer close(r.release)
	d, err := NewDriver(Config{
		Rate: 100, Arrival: Fixed,
		Measure: 100 * time.Millisecond, Drain: 50 * time.Millisecond,
		MaxInFlight: 8, Obs: obs.NewRegistry(),
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Abandoned == 0 {
		t.Fatal("blocked workers not reported as abandoned")
	}
	if err := (SLO{MaxErrorRate: 1}).Check(rep); err == nil {
		t.Fatal("SLO accepted abandoned queries")
	}
}

func TestSLOCheckNamesEveryViolation(t *testing.T) {
	rep := &Report{
		Abandoned: 2,
		Stages: []StageReport{
			{Stage: "warmup"},
			{
				Stage: "measure", Arrivals: 100, Done: 90, OK: 80, Dropped: 10,
				Outcomes:   map[string]int64{"ok": 80, "timeout": 8, "mismatch": 2},
				Mismatches: 2,
				LatencyP50: 0.5, LatencyP95: 2.0, LatencyP99: 5.0,
				OfferedQPS: 10, AchievedQPS: 4,
			},
		},
	}
	err := SLO{
		P95:               time.Second,
		MaxErrorRate:      0.05,
		MinThroughputFrac: 0.8,
	}.Check(rep)
	if err == nil {
		t.Fatal("violating report passed")
	}
	for _, want := range []string{"oracle", "p95", "error rate", "qps", "abandoned"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("SLO error does not name the %s violation: %v", want, err)
		}
	}
	// A compliant report passes the same SLO.
	good := &Report{Stages: []StageReport{{
		Stage: "measure", Arrivals: 100, Done: 100, OK: 100,
		LatencyP50: 0.01, LatencyP95: 0.02, LatencyP99: 0.03,
		OfferedQPS: 10, AchievedQPS: 9.9,
	}}}
	if err := (SLO{P95: time.Second, MaxErrorRate: 0.05, MinThroughputFrac: 0.8}).Check(good); err != nil {
		t.Fatalf("compliant report failed: %v", err)
	}
}

func TestNewDriverValidation(t *testing.T) {
	r := &blockingRunner{release: make(chan struct{})}
	if _, err := NewDriver(Config{Rate: 0, Measure: time.Second}, r); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewDriver(Config{Rate: 1}, r); err == nil {
		t.Error("zero measure window accepted")
	}
	if _, err := NewDriver(Config{Rate: 1, Measure: time.Second}, nil); err == nil {
		t.Error("nil runner accepted")
	}
}
