package load

import (
	"context"
	"testing"
)

// TestFleetRefillAndSharedCache wires the steady-state client machinery
// into the fleet: every group shares one constant cache (keyed by public
// key, so answers stay per-group exact), each group gets a background
// refiller, and Close tears the refillers down before the pools.
func TestFleetRefillAndSharedCache(t *testing.T) {
	rig := newLoadRig(t)
	cfg := testFleetConfig(rig.addr, rig.oracle())
	cfg.Refill = 16
	cfg.CacheSize = 512
	fleet, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	if len(fleet.stops) != cfg.Groups {
		t.Fatalf("%d refiller stops for %d groups", len(fleet.stops), cfg.Groups)
	}
	shared := fleet.groups[0].g.EncCache
	if shared == nil {
		t.Fatal("no shared cache installed")
	}
	for i, fg := range fleet.groups {
		if fg.g.EncCache != shared {
			t.Fatalf("group %d has its own cache; the fleet must share one", i)
		}
	}

	// Two oracle-checked rounds per group: exactness through the cache
	// and refilled pools, and repeat queries to make hits possible.
	for round := 0; round < 2; round++ {
		for i := 0; i < cfg.Groups; i++ {
			if err := fleet.Run(context.Background(), int64(i)); err != nil {
				t.Fatalf("round %d group %d: %v", round, i, err)
			}
		}
	}
	if shared.Len() == 0 {
		t.Fatal("queries never populated the shared cache")
	}

	// Close is idempotent and stops the refillers exactly once.
	fleet.Close()
	if fleet.stops != nil {
		t.Fatal("Close did not clear the refiller stops")
	}
	fleet.Close()
}

// TestFleetCloseOnPartialBuild pins the construction-failure unwind:
// Close on a fleet whose later groups were never built must not panic.
func TestFleetCloseOnPartialBuild(t *testing.T) {
	f := &Fleet{groups: make([]*fleetGroup, 3)}
	f.Close()
}
