package load

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
	"ppgnn/internal/transport"
)

// Oracle answers plaintext group queries for conformance checking: the
// load harness compares every decrypted protocol answer against it. In
// the in-process gate this is the target LSP's own Search; against a
// remote ppgnn-lsp it is a local engine built over the same dataset.
type Oracle func(query []geo.Point, k int) []gnn.Result

// MismatchError reports a decrypted answer that disagreed with the
// plaintext oracle — a protocol correctness failure, never tolerated by
// any SLO. Match with errors.As.
type MismatchError struct {
	Group int // fleet group index
	Rank  int // first differing answer position (-1 = length mismatch)
	Got   int // POIs returned
	Want  int // POIs the oracle returns
	Delta float64
}

func (e *MismatchError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("load: group %d answer has %d POIs, oracle wants %d", e.Group, e.Got, e.Want)
	}
	return fmt.Sprintf("load: group %d answer diverges from oracle at rank %d (Δ=%g)", e.Group, e.Rank, e.Delta)
}

// FleetConfig sizes the client fleet NewFleet builds: Groups independent
// PPGNN groups, each with its own key pair, location set, and
// fault-tolerant connection pool to the same LSP address.
type FleetConfig struct {
	// Addr is the LSP server address.
	Addr string
	// Groups is the number of independent client groups (default 8).
	// Arrivals round-robin across them; each group runs at most one
	// query at a time (a group is one set of phones), so Groups bounds
	// the fleet's own concurrency and queueing beyond it is measured as
	// latency, exactly like overload in a real deployment.
	Groups int
	// GroupSize is n, the users per group (default 4).
	GroupSize int
	// KeyBits, D, Delta, K parameterize the protocol (defaults 256, 5,
	// 10, 4 — correctness is size-independent, and the load harness
	// measures the service, not the paper's cost model).
	KeyBits, D, Delta, K int
	// Variant selects the protocol flavour (default VariantPPGNN).
	Variant core.Variant
	// Seed derives every group's locations, keys, and pool jitter.
	Seed int64
	// QueryTimeout bounds one query end to end, retries included
	// (default 30s).
	QueryTimeout time.Duration
	// PoolSize bounds each group's pooled connections (default 2).
	PoolSize int
	// MaxRetries is each pool's resend budget (default
	// transport.DefaultMaxRetries).
	MaxRetries int
	// RetryBase/RetryMax tune the pools' backoff (defaults as in
	// transport).
	RetryBase, RetryMax time.Duration
	// Tenant routes every group's sessions to a named tenant of a
	// multi-tenant server ("" = the default tenant, no tenant frame on
	// the wire).
	Tenant string
	// DialFunc, when set, supplies group g's dialer — the faultnet
	// injection point: per-group seeded schedules of dial refusals,
	// latency, and mid-stream resets.
	DialFunc func(group int) func(addr string) (net.Conn, error)
	// Oracle enables conformance checking. It forces NoSanitize queries
	// (sanitation is intentionally lossy, so only the NAS configuration
	// has a deterministic plaintext reference).
	Oracle Oracle
	// Precompute fills each group's encryption-randomness pool with this
	// many factors before the run (0 = none): steady-state traffic is
	// the Precomputer's design point.
	Precompute int
	// Refill, when > 0, starts a background refiller on each group's
	// Precomputer with this pool floor, so sustained traffic keeps
	// drawing pooled randomness instead of falling off the one-shot
	// Precompute cliff mid-run. Fleet.Close stops the refillers.
	Refill int
	// CacheSize, when > 0, shares one bounded indicator-ciphertext
	// cache of this many entries across the whole fleet. The cache keys
	// by public key, so groups never see each other's entries; sharing
	// one LRU is exactly the multi-client deployment shape.
	CacheSize int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Groups <= 0 {
		c.Groups = 8
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 4
	}
	if c.KeyBits == 0 {
		c.KeyBits = 256
	}
	if c.D == 0 {
		c.D = 5
	}
	if c.Delta == 0 {
		c.Delta = 10
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	return c
}

// fleetGroup is one client group: a core.Group (key pair, locations,
// partition solution) behind its own transport.Pool, plus the oracle's
// expected answer for its fixed location set. The mutex serializes
// queries — one group of phones runs one protocol round at a time — so
// under overload arrivals queue here and the wait is measured.
type fleetGroup struct {
	mu   sync.Mutex
	g    *core.Group
	pool *transport.Pool
	want []geo.Point
}

// Fleet is a Runner driving real protocol queries from a fixed fleet of
// client groups. It is safe for concurrent Run calls.
type Fleet struct {
	cfg    FleetConfig
	groups []*fleetGroup
	// stops holds the per-group refiller stop functions when
	// FleetConfig.Refill is set; Close runs them before the pools go.
	stops []func()
}

// NewFleet builds the client fleet: Groups key pairs and location sets
// drawn from Seed, one pool per group. Key generation happens here, not
// on the arrival path — a real device carries its keys across queries.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, fmt.Errorf("load: fleet needs a server address")
	}
	f := &Fleet{cfg: cfg, groups: make([]*fleetGroup, cfg.Groups)}
	var ec *paillier.EncCache
	if cfg.CacheSize > 0 {
		ec = paillier.NewEncCache(cfg.CacheSize)
	}
	for i := range f.groups {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1009))
		p := core.DefaultParams(cfg.GroupSize)
		p.KeyBits = cfg.KeyBits
		p.D = cfg.D
		p.Delta = cfg.Delta
		p.K = cfg.K
		p.Variant = cfg.Variant
		if cfg.Oracle != nil {
			p.NoSanitize = true
		}
		locs := make([]geo.Point, cfg.GroupSize)
		for j := range locs {
			locs[j] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		g, err := core.NewGroup(p, locs, rng)
		if err != nil {
			return nil, fmt.Errorf("load: building group %d: %w", i, err)
		}
		// One group = one set of phones: repeated queries present the LSP
		// the same d-anonymous view (the multi-query intersection defense)
		// and skip redundant dummy generation on the hot path.
		g.CacheSets = true
		g.EncCache = ec
		if cfg.Precompute > 0 {
			if _, err := g.Precompute(cfg.Precompute); err != nil {
				return nil, fmt.Errorf("load: precomputing group %d: %w", i, err)
			}
		}
		if cfg.Refill > 0 {
			stop, err := g.StartRefill(paillier.RefillerOptions{Min: cfg.Refill})
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("load: refilling group %d: %w", i, err)
			}
			f.stops = append(f.stops, stop)
		}
		pool := transport.NewPool(cfg.Addr)
		pool.Size = cfg.PoolSize
		pool.QueryTimeout = cfg.QueryTimeout
		pool.Seed = cfg.Seed + int64(i)
		pool.Tenant = cfg.Tenant
		if cfg.MaxRetries != 0 {
			pool.MaxRetries = cfg.MaxRetries
		}
		if cfg.RetryBase > 0 {
			pool.RetryBase = cfg.RetryBase
		}
		if cfg.RetryMax > 0 {
			pool.RetryMax = cfg.RetryMax
		}
		if cfg.DialFunc != nil {
			pool.DialFunc = cfg.DialFunc(i)
		}
		fg := &fleetGroup{g: g, pool: pool}
		if cfg.Oracle != nil {
			res := cfg.Oracle(locs, cfg.K)
			fg.want = make([]geo.Point, len(res))
			for j, r := range res {
				fg.want[j] = r.Item.P
			}
		}
		f.groups[i] = fg
	}
	return f, nil
}

// Groups returns the fleet width.
func (f *Fleet) Groups() int { return len(f.groups) }

// Run executes one protocol query for the given arrival: build the
// encrypted query, send it through the group's pool, decrypt, and — when
// an oracle is configured — verify the answer point-for-point. The
// context only gates the start; once a query is on the wire its pool's
// QueryTimeout bounds it.
func (f *Fleet) Run(ctx context.Context, arrival int64) error {
	fg := f.groups[int(arrival)%len(f.groups)]
	fg.mu.Lock()
	defer fg.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := fg.g.Run(fg.pool, nil)
	if err != nil {
		return err
	}
	if fg.want == nil {
		return nil
	}
	gi := int(arrival) % len(f.groups)
	if len(res.Points) != len(fg.want) {
		return &MismatchError{Group: gi, Rank: -1, Got: len(res.Points), Want: len(fg.want)}
	}
	for i, w := range fg.want {
		if d := res.Points[i].Dist(w); d > 1e-6 {
			return &MismatchError{Group: gi, Rank: i, Got: len(res.Points), Want: len(fg.want), Delta: d}
		}
	}
	return nil
}

// Close stops any background refillers and releases every group's
// connection pool. Nil-safe on partially built fleets so NewFleet can
// unwind through it on a mid-construction failure.
func (f *Fleet) Close() {
	for _, stop := range f.stops {
		stop()
	}
	f.stops = nil
	for _, fg := range f.groups {
		if fg != nil && fg.pool != nil {
			fg.pool.Close()
		}
	}
}
