// Package faultnet provides deterministic, seedable fault injection for
// net.Conn and net.Listener. It simulates the flaky base-station links of
// the system model (Section 2) — added latency, fragmented writes,
// connections reset after a byte budget, and transient accept failures —
// so the transport's retry, shedding, and drain paths can be exercised
// reproducibly in ordinary unit tests: the same Faults schedule and seed
// always produce the same byte-level behavior.
//
// The wrappers are transparent when their Faults are zero, so a test can
// thread them through unconditionally and turn individual faults on per
// case.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrReset is the injected failure returned once a connection exhausts
// its byte budget (and by every operation after it). The underlying
// connection is closed at that point, so the peer observes a genuine
// mid-stream EOF/reset, not just a local error.
var ErrReset = errors.New("faultnet: injected connection reset")

// ErrDialFailed is the injected failure for scheduled dial refusals.
var ErrDialFailed = errors.New("faultnet: injected dial failure")

// errAcceptAborted is returned for injected accept failures. It reports
// itself as transient so accept loops treat it like a kernel-level
// transient (ECONNABORTED) rather than a dead listener.
type transientAcceptError struct{}

func (transientAcceptError) Error() string   { return "faultnet: injected accept failure" }
func (transientAcceptError) Timeout() bool   { return false }
func (transientAcceptError) Temporary() bool { return true }

// Faults is one connection's fault schedule. The zero value injects
// nothing.
type Faults struct {
	// Seed drives the fragment sizes of partial writes; two conns with
	// equal schedules and seeds fragment identically.
	Seed int64
	// Latency is added before every Read and Write.
	Latency time.Duration
	// MaxChunk > 0 fragments each Write into random chunks of 1..MaxChunk
	// bytes, exercising readers against arbitrary TCP segmentation.
	MaxChunk int
	// WriteResetAfter > 0 resets the connection after that many bytes have
	// been written; the cut can land mid-frame.
	WriteResetAfter int64
	// ReadResetAfter > 0 resets the connection after that many bytes have
	// been read.
	ReadResetAfter int64
	// FailDial makes Dialer refuse this scheduled connection outright
	// with ErrDialFailed (the other fields are then ignored).
	FailDial bool
}

// zero reports whether the schedule injects nothing.
func (f Faults) zero() bool {
	return f.Latency == 0 && f.MaxChunk == 0 && f.WriteResetAfter == 0 &&
		f.ReadResetAfter == 0 && !f.FailDial
}

// Conn wraps a net.Conn with a fault schedule. Deadlines, addresses, and
// Close pass through to the underlying connection.
type Conn struct {
	net.Conn

	mu     sync.Mutex
	f      Faults
	rng    *rand.Rand
	nr, nw int64
	reset  bool
}

// Wrap applies a fault schedule to a connection.
func Wrap(c net.Conn, f Faults) *Conn {
	return &Conn{Conn: c, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// trip closes the underlying conn and latches the reset state.
func (c *Conn) trip() {
	c.reset = true
	c.Conn.Close()
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.f.Latency > 0 {
		time.Sleep(c.f.Latency)
	}
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrReset
	}
	if c.f.ReadResetAfter > 0 {
		remaining := c.f.ReadResetAfter - c.nr
		if remaining <= 0 {
			c.trip()
			c.mu.Unlock()
			return 0, ErrReset
		}
		if int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.nr += int64(n)
	tripped := c.f.ReadResetAfter > 0 && c.nr >= c.f.ReadResetAfter
	if tripped {
		c.trip()
	}
	c.mu.Unlock()
	if err == nil && tripped {
		// The budget boundary itself still delivers its bytes; the *next*
		// operation fails. Matching kernel behavior where the RST races
		// the final segment would make tests nondeterministic.
		return n, nil
	}
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if c.f.Latency > 0 {
		time.Sleep(c.f.Latency)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, ErrReset
	}
	written := 0
	for written < len(p) {
		chunk := p[written:]
		if c.f.MaxChunk > 0 && len(chunk) > c.f.MaxChunk {
			chunk = chunk[:1+c.rng.Intn(c.f.MaxChunk)]
		}
		if c.f.WriteResetAfter > 0 {
			remaining := c.f.WriteResetAfter - c.nw
			if remaining <= 0 {
				c.trip()
				return written, ErrReset
			}
			if int64(len(chunk)) > remaining {
				chunk = chunk[:remaining]
			}
		}
		n, err := c.Conn.Write(chunk)
		written += n
		c.nw += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps a net.Listener: the first AcceptFailures accepts fail
// with a transient error, and the i-th successfully accepted connection
// is wrapped with Schedule[i] (connections past the schedule are clean).
type Listener struct {
	net.Listener

	mu       sync.Mutex
	failures int
	schedule []Faults
	accepted int
}

// WrapListener applies accept failures and a per-connection fault
// schedule to a listener.
func WrapListener(ln net.Listener, acceptFailures int, schedule ...Faults) *Listener {
	return &Listener{Listener: ln, failures: acceptFailures, schedule: schedule}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.mu.Unlock()
		return nil, transientAcceptError{}
	}
	l.mu.Unlock()
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	if i < len(l.schedule) && !l.schedule[i].zero() {
		return Wrap(conn, l.schedule[i]), nil
	}
	return conn, nil
}

// Dialer returns a dial function whose i-th connection carries
// Schedule[i]; connections past the schedule are clean. It is the
// client-side counterpart of WrapListener, made to plug into
// transport.Pool's DialFunc.
func Dialer(schedule ...Faults) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	dialed := 0
	return func(addr string) (net.Conn, error) {
		mu.Lock()
		i := dialed
		dialed++
		mu.Unlock()
		if i < len(schedule) && schedule[i].FailDial {
			return nil, ErrDialFailed
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if i < len(schedule) && !schedule[i].zero() {
			return Wrap(conn, schedule[i]), nil
		}
		return conn, nil
	}
}
