package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// readAll drains a conn into a buffer from a goroutine; the returned
// function waits for EOF and yields the bytes.
func readAll(t *testing.T, c net.Conn) func() []byte {
	t.Helper()
	done := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, c)
		done <- buf.Bytes()
	}()
	return func() []byte { return <-done }
}

func TestZeroFaultsTransparent(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Faults{})
	got := readAll(t, b)
	msg := []byte("through the clean wrapper")
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	w.Close()
	if !bytes.Equal(got(), msg) {
		t.Fatal("bytes corrupted by transparent wrapper")
	}
}

func TestPartialWritesDeliverEverything(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	w := Wrap(a, Faults{Seed: 7, MaxChunk: 3})
	got := readAll(t, b)
	msg := bytes.Repeat([]byte("0123456789"), 20)
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	w.Close()
	if !bytes.Equal(got(), msg) {
		t.Fatal("fragmented write corrupted the stream")
	}
}

func TestWriteResetAfterBudget(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	const budget = 64
	w := Wrap(a, Faults{WriteResetAfter: budget})
	got := readAll(t, b)
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte(i)
	}
	n, err := w.Write(msg)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("Write err = %v, want ErrReset", err)
	}
	if n != budget {
		t.Fatalf("wrote %d bytes before reset, want %d", n, budget)
	}
	if !bytes.Equal(got(), msg[:budget]) {
		t.Fatal("peer did not observe exactly the pre-reset bytes")
	}
	// The conn stays dead.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("post-reset Write err = %v, want ErrReset", err)
	}
	if _, err := w.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("post-reset Read err = %v, want ErrReset", err)
	}
}

func TestReadResetAfterBudget(t *testing.T) {
	a, b := net.Pipe()
	const budget = 10
	r := Wrap(a, Faults{ReadResetAfter: budget})
	go func() {
		b.Write(make([]byte, 50))
		b.Close()
	}()
	buf := make([]byte, 50)
	n, err := io.ReadFull(r, buf[:budget])
	if n != budget || err != nil {
		t.Fatalf("pre-budget read = %d, %v", n, err)
	}
	if _, err := r.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("post-budget Read err = %v, want ErrReset", err)
	}
}

func TestLatency(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	const lat = 20 * time.Millisecond
	w := Wrap(a, Faults{Latency: lat})
	got := readAll(t, b)
	start := time.Now()
	if _, err := w.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("write returned after %v, want ≥ %v", elapsed, lat)
	}
	w.Close()
	got()
}

func TestDeterministicFragmentation(t *testing.T) {
	run := func() []int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := Wrap(a, Faults{Seed: 42, MaxChunk: 5})
		sizes := make(chan []int, 1)
		go func() {
			var got []int
			buf := make([]byte, 64)
			for {
				n, err := b.Read(buf)
				if n > 0 {
					got = append(got, n)
				}
				if err != nil {
					sizes <- got
					return
				}
			}
		}()
		w.Write(make([]byte, 40))
		w.Close()
		return <-sizes
	}
	s1, s2 := run(), run()
	if len(s1) < 2 {
		t.Fatalf("expected fragmentation, got reads %v", s1)
	}
	if len(s1) != len(s2) {
		t.Fatalf("same seed produced different fragmentations: %v vs %v", s1, s2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed produced different fragmentations: %v vs %v", s1, s2)
		}
	}
}

func TestListenerAcceptFailures(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(inner, 2)
	defer ln.Close()
	for i := 0; i < 2; i++ {
		_, err := ln.Accept()
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Temporary() {
			t.Fatalf("accept %d: err = %v, want transient net.Error", i, err)
		}
	}
	// The third accept succeeds once a client shows up.
	go net.Dial("tcp", inner.Addr().String())
	conn, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept after failures: %v", err)
	}
	conn.Close()
}

func TestDialerSchedule(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	go func() {
		for {
			c, err := inner.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	dial := Dialer(
		Faults{FailDial: true},
		Faults{WriteResetAfter: 4},
	)
	if _, err := dial(inner.Addr().String()); !errors.Is(err, ErrDialFailed) {
		t.Fatalf("dial 0: err = %v, want ErrDialFailed", err)
	}
	c1, err := dial(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Write(make([]byte, 10)); !errors.Is(err, ErrReset) {
		t.Fatalf("dial 1 write: err = %v, want ErrReset", err)
	}
	c2, err := dial(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write(make([]byte, 10)); err != nil {
		t.Fatalf("dial 2 (past schedule) should be clean: %v", err)
	}
}
