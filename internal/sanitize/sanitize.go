// Package sanitize implements Section 5 of the paper: the full-user-
// collusion inequality attack and the answer sanitation that defeats it.
//
// Given a ranked answer P = {p_1, …, p_k} for query locations C, any n−1
// colluding users know every location but the target's and can intersect
// the k−1 inequalities F(p_i, C) ≤ F(p_{i+1}, C) to bound the target's
// location (Eqn 14). Privacy IV holds iff the feasible region's relative
// area θ exceeds θ0 for every target user.
//
// The LSP defends by simulating the attack itself: it returns the longest
// prefix P' of P such that, for every target user, a one-tailed Z-test
// (Eqn 16) over N_H uniform samples (Eqn 17) rejects H0: θ ≤ θ0. Testing
// only requires evaluating the inequalities at sample points, so the
// method works for any monotone aggregate F and any space shape (§5.3).
//
// The implementation filters the sample set incrementally: extending the
// prefix by one POI adds exactly one inequality, so only the samples that
// survived the previous inequalities are re-tested. This is why the LSP
// cost plateaus as k grows (paper Figure 6f).
package sanitize

import (
	"fmt"
	"math"
	"math/rand"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/stats"
)

// Paper-default hypothesis-testing parameters (Section 5.3).
const (
	DefaultGamma = 0.05 // Type I error bound γ
	DefaultEta   = 0.2  // Type II error bound η
	DefaultPhi   = 0.1  // ratio difference φ between θ1 and θ0
)

// Config parameterizes the sanitizer.
type Config struct {
	Theta0 float64       // Privacy IV parameter θ0 ∈ (0,1]
	Gamma  float64       // Type I error bound (DefaultGamma if 0)
	Eta    float64       // Type II error bound (DefaultEta if 0)
	Phi    float64       // θ1/θ0 − 1 (DefaultPhi if 0)
	Space  geo.Rect      // the location space to sample from
	Agg    gnn.Aggregate // the aggregate F of the query
}

func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = DefaultGamma
	}
	if c.Eta == 0 {
		c.Eta = DefaultEta
	}
	if c.Phi == 0 {
		c.Phi = DefaultPhi
	}
	if !c.Space.Valid() || c.Space.Area() == 0 {
		c.Space = geo.UnitRect
	}
	return c
}

// SampleSize returns N_H for this configuration (Theorem 5.1).
func (c Config) SampleSize() int {
	c = c.withDefaults()
	return stats.SampleSize(c.Theta0, c.Gamma, c.Eta, c.Phi)
}

// Sanitize returns the longest safe prefix of the ranked answer for the
// query (Section 5.2). The rng drives the Monte-Carlo sampling; use a
// per-candidate seeded source for reproducible experiments.
//
// For n ≤ 1 there are no other users and Privacy IV does not apply, so the
// answer is returned unchanged. A one-element prefix is always safe.
func (c Config) Sanitize(rng *rand.Rand, answer []gnn.Result, query []geo.Point) []gnn.Result {
	c = c.withDefaults()
	if len(query) <= 1 || len(answer) <= 1 {
		return answer
	}
	if c.Theta0 <= 0 || c.Theta0 > 1 {
		panic(fmt.Sprintf("sanitize: θ0=%v outside (0,1]", c.Theta0))
	}
	nh := c.SampleSize()
	test := stats.ZTest{Theta0: c.Theta0, Gamma: c.Gamma}
	threshold := test.Threshold(nh)

	// Per-target incremental attack state.
	states := make([]*attackState, len(query))
	for u := range query {
		states[u] = newAttackState(c, rng, answer, query, u, nh)
	}

	// Extend the prefix while every target user's feasible region stays
	// large enough. Prefix length t covers inequalities 1..t−1; going from
	// t to t+1 adds the single inequality F(p_t) ≤ F(p_{t+1}).
	safe := 1
	for t := 1; t < len(answer); t++ {
		ok := true
		for _, st := range states {
			if float64(st.addInequality(t)) <= threshold {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		safe = t + 1
	}
	return answer[:safe]
}

// AttackTheta estimates, from the colluders' side, the relative area θ of
// the region consistent with a received (already sanitized) answer for a
// given target user. It is the attack of Section 5.1 and is used by tests
// and examples to verify Privacy IV empirically.
func (c Config) AttackTheta(rng *rand.Rand, answer []gnn.Result, query []geo.Point, target, samples int) float64 {
	c = c.withDefaults()
	if target < 0 || target >= len(query) {
		panic("sanitize: target user out of range")
	}
	if samples <= 0 {
		samples = c.SampleSize()
	}
	st := newAttackState(c, rng, answer, query, target, samples)
	surv := samples
	for t := 1; t < len(answer); t++ {
		surv = st.addInequality(t)
	}
	return float64(surv) / float64(samples)
}

// attackState tracks, for one target user, the sample points that still
// satisfy every inequality added so far.
type attackState struct {
	cfg    Config
	answer []gnn.Result
	// partial[i] is the aggregate state of answer[i] over all non-target
	// users; combining it with dist(p_i, X) yields F(p_i, C[target→X]).
	partial   []float64 // aggregate over the non-target users; see combine
	survivors []geo.Point
}

func newAttackState(c Config, rng *rand.Rand, answer []gnn.Result, query []geo.Point, target, nh int) *attackState {
	st := &attackState{cfg: c, answer: answer}
	st.partial = make([]float64, len(answer))
	for i, res := range answer {
		st.partial[i] = partialAggregate(c.Agg, res.Item.P, query, target)
	}
	st.survivors = make([]geo.Point, nh)
	for i := range st.survivors {
		st.survivors[i] = geo.Point{
			X: c.Space.Min.X + rng.Float64()*c.Space.Width(),
			Y: c.Space.Min.Y + rng.Float64()*c.Space.Height(),
		}
	}
	return st
}

// partialAggregate computes the aggregate of dist(p, l_j) over j != target.
// For Sum it is the partial sum; for Max/Min the partial extreme.
func partialAggregate(agg gnn.Aggregate, p geo.Point, query []geo.Point, target int) float64 {
	switch agg {
	case gnn.Sum:
		s := 0.0
		for j, l := range query {
			if j != target {
				s += p.Dist(l)
			}
		}
		return s
	case gnn.Max:
		m := 0.0
		for j, l := range query {
			if j != target {
				if d := p.Dist(l); d > m {
					m = d
				}
			}
		}
		return m
	case gnn.Min:
		m := math.Inf(1)
		for j, l := range query {
			if j != target {
				if d := p.Dist(l); d < m {
					m = d
				}
			}
		}
		return m
	default:
		panic("sanitize: unknown aggregate")
	}
}

// combine folds the target's distance into a partial aggregate.
func combine(agg gnn.Aggregate, partial, d float64) float64 {
	switch agg {
	case gnn.Sum:
		return partial + d
	case gnn.Max:
		if d > partial {
			return d
		}
		return partial
	case gnn.Min:
		if d < partial {
			return d
		}
		return partial
	default:
		panic("sanitize: unknown aggregate")
	}
}

// addInequality filters the surviving samples with inequality
// F(p_t) ≤ F(p_{t+1}) (0-based: answer[t-1] vs answer[t]) and returns the
// surviving count.
func (st *attackState) addInequality(t int) int {
	pa := st.answer[t-1].Item.P
	pb := st.answer[t].Item.P
	parA := st.partial[t-1]
	parB := st.partial[t]
	agg := st.cfg.Agg
	out := st.survivors[:0]
	for _, x := range st.survivors {
		costA := combine(agg, parA, pa.Dist(x))
		costB := combine(agg, parB, pb.Dist(x))
		if costA <= costB {
			out = append(out, x)
		}
	}
	st.survivors = out
	return len(out)
}

// GridTheta estimates the attack region deterministically by testing a
// gridSize×gridSize lattice of cell centers instead of random samples. It
// is used to cross-validate the Monte-Carlo estimator (the Z-test needs
// i.i.d. samples, so the protocol itself uses AttackTheta/Sanitize; the
// lattice gives a reproducible reference).
func (c Config) GridTheta(answer []gnn.Result, query []geo.Point, target, gridSize int) float64 {
	c = c.withDefaults()
	if target < 0 || target >= len(query) {
		panic("sanitize: target user out of range")
	}
	if gridSize < 1 {
		panic("sanitize: grid size must be positive")
	}
	if len(answer) <= 1 {
		return 1
	}
	partials := make([]float64, len(answer))
	for i, res := range answer {
		partials[i] = partialAggregate(c.Agg, res.Item.P, query, target)
	}
	inside := 0
	for gy := 0; gy < gridSize; gy++ {
		for gx := 0; gx < gridSize; gx++ {
			x := geo.Point{
				X: c.Space.Min.X + (float64(gx)+0.5)/float64(gridSize)*c.Space.Width(),
				Y: c.Space.Min.Y + (float64(gy)+0.5)/float64(gridSize)*c.Space.Height(),
			}
			ok := true
			for t := 1; t < len(answer); t++ {
				costA := combine(c.Agg, partials[t-1], answer[t-1].Item.P.Dist(x))
				costB := combine(c.Agg, partials[t], answer[t].Item.P.Dist(x))
				if costA > costB {
					ok = false
					break
				}
			}
			if ok {
				inside++
			}
		}
	}
	return float64(inside) / float64(gridSize*gridSize)
}
