package sanitize

import (
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/rtree"
)

func defaultConfig(theta0 float64) Config {
	return Config{Theta0: theta0, Space: geo.UnitRect, Agg: gnn.Sum}
}

func randomQuery(rng *rand.Rand, n int) []geo.Point {
	q := make([]geo.Point, n)
	for i := range q {
		q[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return q
}

// answerFor computes a real top-k answer over a random database.
func answerFor(rng *rand.Rand, query []geo.Point, k int) []gnn.Result {
	items := make([]rtree.Item, 2000)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), P: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
	}
	bf := &gnn.BruteForce{Items: items, Agg: gnn.Sum}
	return bf.Search(query, k)
}

func TestSanitizeSingleUserUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := randomQuery(rng, 1)
	ans := answerFor(rng, q, 8)
	got := defaultConfig(0.05).Sanitize(rng, ans, q)
	if len(got) != len(ans) {
		t.Fatalf("n=1 sanitation truncated to %d", len(got))
	}
}

func TestSanitizeSinglePOIAlwaysSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := randomQuery(rng, 4)
	ans := answerFor(rng, q, 1)
	got := defaultConfig(0.5).Sanitize(rng, ans, q)
	if len(got) != 1 {
		t.Fatalf("single-POI answer truncated to %d", len(got))
	}
}

func TestSanitizeReturnsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := randomQuery(rng, 8)
	ans := answerFor(rng, q, 16)
	got := defaultConfig(0.05).Sanitize(rng, ans, q)
	if len(got) < 1 || len(got) > len(ans) {
		t.Fatalf("sanitized length %d outside [1,%d]", len(got), len(ans))
	}
	for i := range got {
		if got[i].Item.ID != ans[i].Item.ID {
			t.Fatalf("sanitized answer is not a prefix at %d", i)
		}
	}
}

// The central guarantee: after sanitation, the colluders' feasible region
// for every target user exceeds θ0 (up to Monte-Carlo noise).
func TestSanitizedAnswerResistsAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := defaultConfig(0.05)
	for trial := 0; trial < 5; trial++ {
		q := randomQuery(rng, 6)
		ans := answerFor(rng, q, 16)
		safe := cfg.Sanitize(rng, ans, q)
		for target := range q {
			theta := cfg.AttackTheta(rand.New(rand.NewSource(int64(trial*10+target))), safe, q, target, 20000)
			// Allow modest slack below θ0 for sampling noise on both sides.
			if theta < cfg.Theta0*0.7 {
				t.Fatalf("trial %d target %d: post-sanitation θ=%v ≪ θ0=%v",
					trial, target, theta, cfg.Theta0)
			}
		}
	}
}

// Conversely the unsanitized full answer usually pins users to a small
// region — i.e. sanitation is actually doing something. We check that the
// sanitizer truncates at least one of several random queries at θ0=0.05.
func TestSanitizeTruncatesSometimes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := defaultConfig(0.05)
	truncated := false
	for trial := 0; trial < 6 && !truncated; trial++ {
		q := randomQuery(rng, 8)
		ans := answerFor(rng, q, 16)
		if len(cfg.Sanitize(rng, ans, q)) < len(ans) {
			truncated = true
		}
	}
	if !truncated {
		t.Fatal("sanitizer never truncated a 16-POI answer at θ0=0.05 over 6 trials")
	}
}

// A larger θ0 is a stronger requirement and can only shorten the prefix
// (Figure 7c).
func TestStrongerTheta0ShortensPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randomQuery(rng, 8)
	ans := answerFor(rng, q, 16)
	prev := len(ans) + 1
	for _, th := range []float64{0.01, 0.05, 0.1, 0.3} {
		got := defaultConfig(th).Sanitize(rand.New(rand.NewSource(42)), ans, q)
		if len(got) > prev {
			t.Fatalf("θ0=%v gave longer prefix (%d) than weaker setting (%d)", th, len(got), prev)
		}
		prev = len(got)
	}
}

func TestSanitizeAllAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := randomQuery(rng, 5)
	items := make([]rtree.Item, 1000)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), P: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
	}
	for _, agg := range []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min} {
		bf := &gnn.BruteForce{Items: items, Agg: agg}
		ans := bf.Search(q, 10)
		cfg := Config{Theta0: 0.05, Space: geo.UnitRect, Agg: agg}
		got := cfg.Sanitize(rng, ans, q)
		if len(got) < 1 {
			t.Fatalf("%v: empty sanitized answer", agg)
		}
	}
}

func TestAttackThetaFullSpaceWithoutInequalities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := randomQuery(rng, 3)
	ans := answerFor(rng, q, 1) // one POI → no inequalities → θ = 1
	cfg := defaultConfig(0.05)
	if theta := cfg.AttackTheta(rng, ans, q, 0, 1000); theta != 1 {
		t.Fatalf("θ with no inequalities = %v, want 1", theta)
	}
}

// The attack region must always contain the target's true location: the
// real location satisfies the true inequalities by construction.
func TestTrueLocationSatisfiesInequalities(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng, 4)
		ans := answerFor(rng, q, 8)
		for target := range q {
			st := newAttackState(defaultConfig(0.05).withDefaults(), rng, ans, q, target, 1)
			st.survivors[0] = q[target] // plant the true location as the sample
			for ti := 1; ti < len(ans); ti++ {
				if st.addInequality(ti) != 1 {
					t.Fatalf("trial %d: true location excluded by inequality %d", trial, ti)
				}
			}
		}
	}
}

func TestSampleSizeMatchesStats(t *testing.T) {
	cfg := defaultConfig(0.05)
	if got := cfg.SampleSize(); got < 10000 {
		t.Fatalf("N_H = %d implausibly small for θ0=0.05", got)
	}
	// Larger θ0 → fewer samples (Figure 6l's mechanism).
	if defaultConfig(0.1).SampleSize() >= defaultConfig(0.01).SampleSize() {
		t.Fatal("sample size did not shrink with θ0")
	}
}

func TestSanitizePanicsOnBadTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q := randomQuery(rng, 3)
	ans := answerFor(rng, q, 4)
	for _, th := range []float64{-0.1, 0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("θ0=%v accepted", th)
				}
			}()
			Config{Theta0: th, Space: geo.UnitRect, Agg: gnn.Sum}.Sanitize(rng, ans, q)
		}()
	}
}

func TestAttackThetaPanicsOnBadTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := randomQuery(rng, 3)
	ans := answerFor(rng, q, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("bad target accepted")
		}
	}()
	defaultConfig(0.05).AttackTheta(rng, ans, q, 5, 100)
}

// More users dilute the target's weight in the sum, enlarging the feasible
// region (the Figure 7b effect): θ for n=16 should typically exceed θ for
// n=2 on the same ranked answer length.
func TestMoreUsersLargerRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := defaultConfig(0.05)
	avgTheta := func(n int) float64 {
		total := 0.0
		const trials = 40
		for trial := 0; trial < trials; trial++ {
			q := randomQuery(rng, n)
			ans := answerFor(rng, q, 4)
			total += cfg.AttackTheta(rng, ans, q, 0, 4000)
		}
		return total / trials
	}
	small, large := avgTheta(2), avgTheta(32)
	// The paper reports only a slight rise (Figure 7b); require the averaged
	// effect to be directionally right with Monte-Carlo slack.
	if large < small*0.9 {
		t.Fatalf("θ(n=32)=%v markedly below θ(n=2)=%v; dilution effect missing", large, small)
	}
}

// The deterministic lattice estimator and the Monte-Carlo estimator must
// agree on the region size.
func TestGridThetaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := defaultConfig(0.05)
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng, 4)
		ans := answerFor(rng, q, 6)
		for target := range q {
			mc := cfg.AttackTheta(rand.New(rand.NewSource(int64(trial))), ans, q, target, 40000)
			grid := cfg.GridTheta(ans, q, target, 200)
			if diff := mc - grid; diff > 0.02 || diff < -0.02 {
				t.Fatalf("trial %d target %d: MC θ=%v vs grid θ=%v", trial, target, mc, grid)
			}
		}
	}
}

func TestGridThetaEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := randomQuery(rng, 3)
	one := answerFor(rng, q, 1)
	if got := defaultConfig(0.05).GridTheta(one, q, 0, 10); got != 1 {
		t.Fatalf("single-POI grid θ = %v, want 1", got)
	}
	ans := answerFor(rng, q, 4)
	for _, fn := range []func(){
		func() { defaultConfig(0.05).GridTheta(ans, q, -1, 10) },
		func() { defaultConfig(0.05).GridTheta(ans, q, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid GridTheta input")
				}
			}()
			fn()
		}()
	}
}
