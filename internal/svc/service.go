package svc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/obs"
	"ppgnn/internal/paillier"
	"ppgnn/internal/rtree"
	"ppgnn/internal/transport"
)

// Options configures a Service.
type Options struct {
	// ConfigPath is the file Reload re-reads (SIGHUP). Empty is fine for
	// embedded use — call Apply with a parsed Config instead.
	ConfigPath string
	// Workers is copied to every tenant LSP (see core.LSP.Workers).
	Workers int
	// CrashBudget is the number of recovered session panics within
	// CrashWindow that trips the watchdog (default 5; negative disables).
	CrashBudget int
	// CrashWindow is the watchdog's sliding window (default 1 minute).
	CrashWindow time.Duration
	// PoolTarget is the per-tenant floor for the background-refilled
	// rerandomization pools (default 16 factors). The live target scales
	// above it with admitted-session pressure — see poolTargetHint.
	PoolTarget int
	// Obs receives the service's telemetry (nil = obs.Default).
	Obs *obs.Registry
	// Logf, when set, receives lifecycle diagnostics.
	Logf func(format string, args ...interface{})
	// TraceSink receives flight-recorder dumps when the service trips an
	// incident trigger (watchdog, rejected reload). Nil logs a summary
	// line via Logf instead; the full dump stays readable at /traces.
	TraceSink func(*obs.TraceDump)

	// reloadHook, test-only: observes the not-ready window inside Apply.
	reloadHook func(stage string)
}

// epoch is one applied configuration: a full set of tenants, each with
// its own LSP. Sessions pin the epoch they were admitted under, so a
// reload never yanks an LSP out from under an in-flight query; an old
// epoch is retired (and its LSPs released to the GC) when its last
// session ends.
type epoch struct {
	seq     int64
	cfg     *Config
	tenants map[string]*tenant
	refs    atomic.Int64
}

// tenant is one epoch's view of a named dataset.
type tenant struct {
	cfg  TenantConfig
	lsp  *core.LSP
	slot string // closed metric-slot enum, never the tenant name
	// inflight counts admitted sessions against cfg.MaxSessions.
	inflight atomic.Int64
}

// Service is the lifecycle layer: a transport.SessionAdmitter wired to a
// tenant manager, an epoch-based hot-reload scheme, health endpoints,
// and a crash-budget watchdog. Create with New, plug into a
// transport.Server via its Admitter and OnSessionPanic fields, and run
// Reload on SIGHUP.
type Service struct {
	opts Options
	reg  *obs.Registry

	cur atomic.Pointer[epoch]

	mu       sync.Mutex
	epochs   map[*epoch]struct{}
	seq      int64
	closed   bool
	state    string // "ready" | "reloading" | "draining" | "failed"
	inflight atomic.Int64

	// costEWMA is the smoothed session duration in nanoseconds; the
	// retry-after hint on sheds. Stored atomically so Release never locks.
	costEWMA atomic.Int64

	// pools holds the per-tenant rerandomization PoolSets, keyed by
	// tenant ID — deliberately OUTSIDE the epoch: pooled r^{N^s} factors
	// are key material, not index state, so a config reload must not
	// throw away a warm pool. An epoch swap rebinds the surviving pools'
	// metric slots and closes the pools of removed tenants (their
	// Precomputers stay usable, refiller-less, for draining sessions).
	// Guarded by poolsMu, never s.mu, so Admit's hot path stays lock-free.
	poolsMu sync.Mutex
	pools   map[string]*paillier.PoolSet

	watchdog watchdog

	// fatal closes when the watchdog trips; the command drains and exits.
	fatal     chan struct{}
	fatalOnce sync.Once

	mAdmit    func(slot, admission string) *obs.Counter
	gInflight func(slot string) *obs.Gauge
	hCost     *obs.Histogram
}

// New builds a Service and applies cfg as its first epoch. The initial
// configuration must be valid and its datasets loadable — a service that
// cannot serve its first epoch should fail at startup, not limp.
func New(cfg *Config, opts Options) (*Service, error) {
	if opts.CrashBudget == 0 {
		opts.CrashBudget = 5
	}
	if opts.CrashWindow <= 0 {
		opts.CrashWindow = time.Minute
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.Default()
	}
	s := &Service{
		opts:   opts,
		reg:    reg,
		epochs: make(map[*epoch]struct{}),
		pools:  make(map[string]*paillier.PoolSet),
		state:  "reloading",
		fatal:  make(chan struct{}),
	}
	s.watchdog.budget = opts.CrashBudget
	s.watchdog.window = opts.CrashWindow
	s.mAdmit = func(slot, admission string) *obs.Counter {
		return reg.Counter("svc_admissions_total", obs.L("tenant", slot), obs.L("admission", admission))
	}
	s.gInflight = func(slot string) *obs.Gauge {
		return reg.Gauge("svc_tenant_inflight", obs.L("tenant", slot))
	}
	s.hCost = reg.Histogram("svc_session_cost_seconds", obs.TimeBuckets)
	if err := s.apply(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Service) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// buildEpoch loads every tenant's dataset and constructs its LSP. This
// is the failable half of a reload: it runs entirely before the swap, so
// a missing dataset file or an unreadable point format rejects the new
// config while the old epoch keeps serving untouched.
func (s *Service) buildEpoch(cfg *Config) (*epoch, error) {
	ep := &epoch{cfg: cfg, tenants: make(map[string]*tenant, len(cfg.Tenants))}
	slot := 0
	for _, tc := range cfg.Tenants {
		var items []rtree.Item
		var err error
		switch {
		case tc.Dataset != "":
			items, err = dataset.LoadFile(tc.Dataset)
		default:
			seed := tc.Seed
			if seed == 0 {
				seed = 1
			}
			items = dataset.Synthetic(seed, tc.Synthetic)
		}
		if err != nil {
			return nil, fmt.Errorf("svc: tenant %q: %w", tc.ID, err)
		}
		// Sharded tenants get a fresh static index every epoch — the swap
		// is the rebuild point the static-index trade-off relies on.
		lsp := core.NewIndexedLSP(items, geo.UnitRect, core.IndexOptions{
			Shards:    tc.Shards,
			PruneGrid: tc.PruneGrid,
		})
		lsp.Workers = s.opts.Workers
		if tc.Seed != 0 {
			lsp.SanitizeSeed = tc.Seed
		}
		lsp.Rerandomize = tc.Rerandomize
		t := &tenant{cfg: tc, lsp: lsp, slot: tenantSlot(tc.ID, &slot)}
		ep.tenants[tc.ID] = t
	}
	return ep, nil
}

// DefaultPoolTarget is the Options.PoolTarget default: the floor, in
// r^{N^s} factors per (key, degree) pool, the refillers keep warm.
const DefaultPoolTarget = 16

// poolTargetHint converts the service's admission signals into a pool
// size: one PoolTarget of headroom per admitted session (each session's
// answer rerandomization drains a batch), doubled when the admission
// cost EWMA says sessions turn over in well under a refill breath —
// fast sessions cycle several batches through a pool per tick. Clamped
// to [PoolTarget, 64×PoolTarget] so an admission burst cannot balloon
// pool memory; the refiller's own drain EWMA sizes on top of this hint.
func (s *Service) poolTargetHint() int {
	base := s.opts.PoolTarget
	if base <= 0 {
		base = DefaultPoolTarget
	}
	want := base * (int(s.inflight.Load()) + 1)
	if c := time.Duration(s.costEWMA.Load()); c > 0 && c < 50*time.Millisecond {
		want *= 2
	}
	if max := 64 * base; want > max {
		want = max
	}
	return want
}

// poolSetFor returns the tenant's PoolSet, creating it on first use and
// rebinding its metric slot (slots can move between epochs as the
// config order changes).
func (s *Service) poolSetFor(id, slot string) *paillier.PoolSet {
	s.poolsMu.Lock()
	defer s.poolsMu.Unlock()
	if ps, ok := s.pools[id]; ok {
		ps.SetTenant(slot)
		return ps
	}
	ps := paillier.NewPoolSet(paillier.PoolSetOptions{
		Tenant: slot,
		Refill: paillier.RefillerOptions{Target: s.poolTargetHint},
	})
	s.pools[id] = ps
	return ps
}

// bindPools attaches the persistent per-tenant PoolSets to a freshly
// built epoch's rerandomizing LSPs and closes the pools of tenants the
// new config dropped (or switched off). Runs only after buildEpoch
// succeeded: a rejected reload must not disturb the serving pools.
func (s *Service) bindPools(ep *epoch) {
	for id, t := range ep.tenants {
		if t.cfg.Rerandomize {
			t.lsp.RerandPools = s.poolSetFor(id, t.slot)
		}
	}
	s.poolsMu.Lock()
	var stale []*paillier.PoolSet
	for id, ps := range s.pools {
		if t, ok := ep.tenants[id]; !ok || !t.cfg.Rerandomize {
			stale = append(stale, ps)
			delete(s.pools, id)
		}
	}
	s.poolsMu.Unlock()
	// Close outside poolsMu: Close waits for refiller goroutines, and a
	// draining session of a retiring epoch can still use the closed
	// set's Precomputers (refiller-less) safely.
	for _, ps := range stale {
		ps.Close()
	}
}

// tenantSlot maps a tenant id onto the closed metric-slot enum: the
// default tenant keeps its name, the first eight non-default tenants get
// "t0".."t7" in config order, the rest clamp to the contract's "other".
func tenantSlot(id string, next *int) string {
	if id == transport.DefaultTenant {
		return "default"
	}
	n := *next
	*next++
	if n > 7 {
		return obs.OtherValue
	}
	return fmt.Sprintf("t%d", n)
}

// Apply validates and installs cfg as a new epoch: new sessions admit
// against it immediately, in-flight sessions finish on the epoch they
// started under. On rejection the current epoch keeps serving and the
// error describes why. Apply is what Reload calls after re-reading the
// config file; embedded users may call it directly.
func (s *Service) Apply(cfg *Config) error {
	if err := cfg.Validate(); err != nil {
		s.reg.Counter("svc_reloads_total", obs.L("result", "rejected")).Inc()
		s.dumpTraces("reload_rejected")
		return err
	}
	if err := s.apply(cfg); err != nil {
		s.reg.Counter("svc_reloads_total", obs.L("result", "rejected")).Inc()
		s.dumpTraces("reload_rejected")
		return err
	}
	s.reg.Counter("svc_reloads_total", obs.L("result", "applied")).Inc()
	return nil
}

// dumpTraces snapshots the flight recorder on an incident trigger: a
// tripped watchdog or a rejected reload. The queries that led up to the
// incident are exactly what the recorder retains, so the dump is taken
// before any drain discards them.
func (s *Service) dumpTraces(reason string) {
	d := s.reg.Recorder().Dump(reason)
	if s.opts.TraceSink != nil {
		s.opts.TraceSink(d)
		return
	}
	s.logf("svc: flight recorder dump (%s): %d recent, %d slow/failed traces retained",
		d.Reason, len(d.Recent), len(d.Slow))
}

// apply installs cfg without touching the reload counters (New's initial
// load is not a "reload"). The service is unready for the duration: a
// rolling deploy's health checker must route around a node mid-swap.
func (s *Service) apply(cfg *Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("svc: service is closed")
	}
	prev := s.state
	s.setStateLocked("reloading")
	if s.opts.reloadHook != nil {
		s.opts.reloadHook("start")
	}
	ep, err := s.buildEpoch(cfg)
	if err != nil {
		// Rejected: the old epoch (if any) keeps serving.
		if prev == "ready" {
			s.setStateLocked("ready")
		}
		if s.opts.reloadHook != nil {
			s.opts.reloadHook("rejected")
		}
		return err
	}
	s.bindPools(ep)
	s.seq++
	ep.seq = s.seq
	s.cur.Store(ep)
	s.epochs[ep] = struct{}{}
	s.retireLocked()
	s.reg.Gauge("svc_epoch").Set(ep.seq)
	s.reg.Gauge("svc_tenants").Set(int64(len(ep.tenants)))
	s.reg.Gauge("svc_epochs_live").Set(int64(len(s.epochs)))
	s.setStateLocked("ready")
	if s.opts.reloadHook != nil {
		s.opts.reloadHook("applied")
	}
	s.logf("svc: epoch %d applied (%d tenants)", ep.seq, len(ep.tenants))
	return nil
}

// Reload re-reads the config file and applies it. Bad files reject the
// reload and keep the current epoch serving; the caller (the SIGHUP
// handler) just logs the error.
func (s *Service) Reload() error {
	if s.opts.ConfigPath == "" {
		return fmt.Errorf("svc: no config path to reload from")
	}
	cfg, err := LoadConfigFile(s.opts.ConfigPath)
	if err != nil {
		s.reg.Counter("svc_reloads_total", obs.L("result", "rejected")).Inc()
		s.dumpTraces("reload_rejected")
		return err
	}
	return s.Apply(cfg)
}

// Admit implements transport.SessionAdmitter: route the session to its
// tenant in the current epoch, shed on the global overload gate or the
// tenant's quota, otherwise grant the tenant's LSP with the epoch pinned
// until the session releases.
func (s *Service) Admit(tenantID string) (*transport.SessionGrant, error) {
	ep := s.cur.Load()
	if ep == nil {
		return nil, &transport.BusyError{RetryAfter: s.retryAfterHint(), Reason: "overload"}
	}
	t, ok := ep.tenants[tenantID]
	if !ok {
		s.mAdmit(obs.OtherValue, "unknown").Inc()
		return nil, fmt.Errorf("unknown tenant %q", tenantID)
	}
	// Global overload gate first: it protects the process, quotas only
	// arbitrate between tenants.
	if max := ep.cfg.MaxInFlight; max > 0 && s.inflight.Load() >= int64(max) {
		s.mAdmit(t.slot, "overload").Inc()
		return nil, &transport.BusyError{RetryAfter: s.retryAfterHint(), Reason: "overload", Slot: t.slot}
	}
	if t.inflight.Add(1) > int64(t.cfg.MaxSessions) {
		t.inflight.Add(-1)
		s.mAdmit(t.slot, "quota").Inc()
		return nil, &transport.BusyError{RetryAfter: s.retryAfterHint(), Reason: "quota", Slot: t.slot}
	}
	s.inflight.Add(1)
	ep.refs.Add(1)
	s.mAdmit(t.slot, "ok").Inc()
	s.gInflight(t.slot).Set(t.inflight.Load())
	begin := time.Now()
	var once sync.Once
	release := func() {
		once.Do(func() {
			elapsed := time.Since(begin)
			s.hCost.Observe(elapsed.Seconds())
			s.updateCost(elapsed)
			s.gInflight(t.slot).Set(t.inflight.Add(-1))
			s.inflight.Add(-1)
			if ep.refs.Add(-1) == 0 {
				s.retire()
			}
		})
	}
	return &transport.SessionGrant{LSP: t.lsp, MaxLocations: t.cfg.MaxLocations, Release: release, Slot: t.slot}, nil
}

// updateCost folds one session's duration into the EWMA (α = 1/8).
func (s *Service) updateCost(elapsed time.Duration) {
	for {
		old := s.costEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(elapsed)
		} else {
			next = old + (int64(elapsed)-old)/8
		}
		if s.costEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterHint is the backoff the service suggests to shed clients:
// roughly one smoothed session duration (a slot frees up about that far
// in the future), clamped to a sane wire range.
func (s *Service) retryAfterHint() time.Duration {
	const (
		floor = 10 * time.Millisecond
		ceil  = 2 * time.Second
	)
	d := time.Duration(s.costEWMA.Load())
	if d <= 0 {
		return 100 * time.Millisecond
	}
	if d < floor {
		return floor
	}
	if d > ceil {
		return ceil
	}
	return d
}

// retire drops epochs that are no longer current and carry no sessions.
func (s *Service) retire() {
	s.mu.Lock()
	s.retireLocked()
	s.mu.Unlock()
}

func (s *Service) retireLocked() {
	cur := s.cur.Load()
	for ep := range s.epochs {
		if ep != cur && ep.refs.Load() == 0 {
			delete(s.epochs, ep)
			s.logf("svc: epoch %d retired", ep.seq)
		}
	}
	s.reg.Gauge("svc_epochs_live").Set(int64(len(s.epochs)))
}

// LiveEpochs reports how many epochs still hold tenants — 1 in steady
// state; more only while old-epoch sessions drain. The reload leak test
// gates on it.
func (s *Service) LiveEpochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.epochs)
}

// Epoch returns the current epoch's sequence number (0 before the first
// apply).
func (s *Service) Epoch() int64 {
	if ep := s.cur.Load(); ep != nil {
		return ep.seq
	}
	return 0
}

// InFlight reports currently admitted sessions.
func (s *Service) InFlight() int64 { return s.inflight.Load() }

// setStateLocked transitions the health state; "failed" (the tripped
// watchdog) is terminal.
func (s *Service) setStateLocked(state string) {
	if s.state == "failed" {
		return
	}
	s.state = state
	if state == "ready" {
		s.reg.Gauge("svc_ready").Set(1)
	} else {
		s.reg.Gauge("svc_ready").Set(0)
	}
}

// State returns the health state: "ready", "reloading", "draining", or
// "failed".
func (s *Service) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Ready reports whether the service should receive new traffic.
func (s *Service) Ready() bool { return s.State() == "ready" }

// Fatal closes when the crash-budget watchdog trips; the serving command
// watches it, drains, and exits nonzero so the supervisor restarts a
// fresh process.
func (s *Service) Fatal() <-chan struct{} { return s.fatal }

// OnSessionPanic feeds the crash-budget watchdog; wire it to
// transport.Server.OnSessionPanic. When the budget is exhausted the
// service goes permanently unready and Fatal fires — repeated session
// panics mean corrupted process state or a crash-of-death input, and a
// clean restart beats limping.
func (s *Service) OnSessionPanic() {
	if !s.watchdog.record(time.Now()) {
		return
	}
	s.mu.Lock()
	s.state = "failed"
	s.reg.Gauge("svc_ready").Set(0)
	s.mu.Unlock()
	s.reg.Counter("svc_watchdog_trips_total").Inc()
	s.logf("svc: crash budget exhausted (%d panics in %v): going unready",
		s.watchdog.budget, s.watchdog.window)
	s.dumpTraces("watchdog")
	s.fatalOnce.Do(func() { close(s.fatal) })
}

// Close marks the service draining: readyz fails, Admit sheds. The
// transport.Server's own Close drains the in-flight sessions.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.setStateLocked("draining")
	s.mu.Unlock()
	// Stop the pool refillers outside s.mu; draining sessions can keep
	// using the closed sets' Precomputers.
	s.poolsMu.Lock()
	pools := make([]*paillier.PoolSet, 0, len(s.pools))
	for _, ps := range s.pools {
		pools = append(pools, ps)
	}
	s.poolsMu.Unlock()
	for _, ps := range pools {
		ps.Close()
	}
}
