// Package svc is the service lifecycle layer of ROADMAP item "always-on
// LSP": it turns the single-LSP transport.Server into a long-running
// multi-tenant service. A Service owns named tenants (each with its own
// LSP over its own dataset), admits sessions against per-tenant quotas
// and a global overload gate, hot-reloads its configuration on SIGHUP
// under an epoch scheme that never drops an in-flight session, exposes
// liveness/readiness on the metrics endpoint, and converts repeated
// per-session panics into an unready-then-exit crash budget. DESIGN.md
// §13 documents the design.
package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"ppgnn/internal/core"
)

// Config is the service configuration, read from a JSON file and
// re-read on SIGHUP. Unknown fields are rejected — a typoed knob must
// fail the reload, not silently configure nothing.
type Config struct {
	// Tenants are the named datasets the service serves. Order matters
	// for telemetry: non-default tenants get metric slots "t0".."t7" in
	// config order (names never reach a metric; see the obs privacy
	// contract).
	Tenants []TenantConfig `json:"tenants"`
	// MaxInFlight caps concurrently admitted sessions across all
	// tenants; past it the adaptive overload gate sheds with a
	// retryable busy reply (0 = no global cap, quotas only).
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// TenantConfig describes one tenant: its wire id, its dataset, and its
// admission limits. Exactly one of Dataset and Synthetic selects the
// POI database.
type TenantConfig struct {
	// ID is the tenant id clients put in their FrameTenant. The id
	// "default" (transport.DefaultTenant) also serves every client that
	// predates multi-tenancy and sends no tenant frame.
	ID string `json:"id"`
	// Dataset is a point file in the format dataset.Load reads.
	Dataset string `json:"dataset,omitempty"`
	// Synthetic generates a deterministic clustered dataset of this
	// many POIs instead of reading a file.
	Synthetic int `json:"synthetic,omitempty"`
	// Seed drives the synthetic generator and the tenant LSP's
	// sanitation RNG (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// MaxSessions is the tenant's concurrent-session quota; sessions
	// past it are shed with a retryable busy reply. Required.
	MaxSessions int `json:"max_sessions"`
	// MaxLocations overrides the server's per-session location-frame
	// cap for this tenant (0 = server default).
	MaxLocations int `json:"max_locations,omitempty"`
	// Shards partitions the tenant's POI index across this many shard
	// R-trees searched in parallel (0 or 1 = the single dynamic R-tree).
	// Sharded indexes are static and rebuilt on every epoch swap.
	Shards int `json:"shards,omitempty"`
	// PruneGrid enables the hierarchical grid pruning stage in front of
	// the tenant's index (DESIGN.md §14); implies a sharded (static)
	// index even with shards <= 1.
	PruneGrid bool `json:"prune_grid,omitempty"`
	// Rerandomize refreshes the randomness of every answer ciphertext
	// before it goes back on the wire (core.LSP.Rerandomize). The service
	// backs it with per-tenant background-refilled randomness pools that
	// survive epoch swaps (DESIGN.md §15), so the defense-in-depth pass
	// costs one modular multiply per answer element at steady state.
	Rerandomize bool `json:"rerandomize,omitempty"`
}

// ParseConfig decodes and validates a config document. It is the fuzz
// surface of the reload path: any input either yields a valid Config or
// a descriptive error, never a panic and never a half-valid Config.
func ParseConfig(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("svc: config: %w", err)
	}
	// Trailing garbage after the document is a malformed file, not an
	// extension point.
	if dec.More() {
		return nil, fmt.Errorf("svc: config: trailing data after document")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// LoadConfigFile reads and parses a config file.
func LoadConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("svc: config: %w", err)
	}
	return ParseConfig(data)
}

// Validate checks the structural invariants the service relies on.
// Dataset files are NOT opened here — a missing file is an epoch-build
// failure (it depends on the filesystem at swap time), while Validate is
// pure so the fuzzer can run it without touching disk.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("svc: config: no tenants")
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("svc: config: max_in_flight %d is negative", c.MaxInFlight)
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		if err := validateTenantID(t.ID); err != nil {
			return fmt.Errorf("svc: config: tenant %d: %w", i, err)
		}
		if seen[t.ID] {
			return fmt.Errorf("svc: config: duplicate tenant id %q", t.ID)
		}
		seen[t.ID] = true
		if t.Dataset == "" && t.Synthetic == 0 {
			return fmt.Errorf("svc: config: tenant %q: needs a dataset file or a synthetic size", t.ID)
		}
		if t.Dataset != "" && t.Synthetic != 0 {
			return fmt.Errorf("svc: config: tenant %q: dataset and synthetic are mutually exclusive", t.ID)
		}
		if t.Synthetic < 0 {
			return fmt.Errorf("svc: config: tenant %q: synthetic size %d is negative", t.ID, t.Synthetic)
		}
		if t.MaxSessions <= 0 {
			return fmt.Errorf("svc: config: tenant %q: max_sessions %d must be positive", t.ID, t.MaxSessions)
		}
		if t.MaxLocations < 0 {
			return fmt.Errorf("svc: config: tenant %q: max_locations %d is negative", t.ID, t.MaxLocations)
		}
		if t.Shards < 0 {
			return fmt.Errorf("svc: config: tenant %q: shards %d is negative", t.ID, t.Shards)
		}
	}
	return nil
}

// validateTenantID enforces the wire contract on tenant ids: non-empty,
// at most core.MaxTenantIDLen bytes, lowercase letters, digits, and
// separators only. The charset keeps ids unambiguous in logs, config
// files, and shell commands.
func validateTenantID(id string) error {
	if id == "" {
		return fmt.Errorf("empty tenant id")
	}
	if len(id) > core.MaxTenantIDLen {
		return fmt.Errorf("tenant id %d bytes long (max %d)", len(id), core.MaxTenantIDLen)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return fmt.Errorf("tenant id %q: character %q not in [a-z0-9._-]", id, r)
		}
	}
	return nil
}
