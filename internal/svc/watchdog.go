package svc

import (
	"sync"
	"time"
)

// watchdog is the crash budget: a sliding window of recovered session
// panic timestamps. One panic is a malformed query and is already
// contained by the transport's per-session recover; budget panics inside
// window mean something systemic (a poisoned dataset, corrupted process
// state, an input that crashes every retry), and the right move is to go
// unready and let the supervisor restart a clean process.
type watchdog struct {
	budget int
	window time.Duration

	mu      sync.Mutex
	tripped bool
	times   []time.Time
}

// record adds one panic at now and reports whether this one tripped the
// budget (true exactly once).
func (w *watchdog) record(now time.Time) bool {
	if w.budget < 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tripped {
		return false
	}
	cut := now.Add(-w.window)
	kept := w.times[:0]
	for _, t := range w.times {
		if t.After(cut) {
			kept = append(kept, t)
		}
	}
	w.times = append(kept, now)
	if len(w.times) >= w.budget {
		w.tripped = true
		return true
	}
	return false
}
