package svc

import (
	"strings"
	"testing"
)

// FuzzSvcConfig fuzzes the reload parser: any byte string must either
// produce a Config that passes Validate (parse and validation agree) or
// a descriptive error — never a panic, and never a config that violates
// the invariants the admission path relies on (unique ids, positive
// quotas, exactly one dataset source).
func FuzzSvcConfig(f *testing.F) {
	f.Add([]byte(`{"tenants": [{"id": "default", "synthetic": 100, "max_sessions": 4}]}`))
	f.Add([]byte(`{"tenants": [
		{"id": "default", "synthetic": 100, "max_sessions": 4},
		{"id": "alpha", "dataset": "a.txt", "max_sessions": 1, "max_locations": 8}],
		"max_in_flight": 32}`))
	f.Add([]byte(`{"tenants": []}`))
	f.Add([]byte(`{"tenants": [{"id": "a", "max_sessions": 0}]}`))
	f.Add([]byte(`{"tenants": [{"id": "A B", "synthetic": -1, "max_sessions": 1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			if cfg != nil {
				t.Fatalf("error %v alongside a non-nil config", err)
			}
			return
		}
		// A returned config must hold every invariant Admit depends on.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseConfig accepted a config Validate rejects: %v", err)
		}
		seen := make(map[string]bool)
		for _, tc := range cfg.Tenants {
			if tc.ID == "" || len(tc.ID) > 64 {
				t.Fatalf("invalid tenant id %q survived", tc.ID)
			}
			if strings.ContainsAny(tc.ID, " \t\n\"") {
				t.Fatalf("tenant id %q has unsafe characters", tc.ID)
			}
			if seen[tc.ID] {
				t.Fatalf("duplicate tenant id %q survived", tc.ID)
			}
			seen[tc.ID] = true
			if tc.MaxSessions <= 0 {
				t.Fatalf("non-positive quota %d survived", tc.MaxSessions)
			}
			if (tc.Dataset == "") == (tc.Synthetic == 0) {
				t.Fatalf("tenant %q does not have exactly one dataset source", tc.ID)
			}
		}
	})
}
