package svc

import (
	"strings"
	"testing"
)

// TestParseConfigValid: a well-formed two-tenant document round-trips
// into the expected struct.
func TestParseConfigValid(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"tenants": [
			{"id": "default", "synthetic": 500, "max_sessions": 8},
			{"id": "alpha", "dataset": "/data/alpha.txt", "max_sessions": 2, "max_locations": 64}
		],
		"max_in_flight": 16
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 2 || cfg.MaxInFlight != 16 {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.Tenants[1].ID != "alpha" || cfg.Tenants[1].Dataset != "/data/alpha.txt" ||
		cfg.Tenants[1].MaxSessions != 2 || cfg.Tenants[1].MaxLocations != 64 {
		t.Fatalf("tenant alpha parsed as %+v", cfg.Tenants[1])
	}
}

// TestParseConfigRejects drives every reject path of the reload
// validator. Each document must fail with an error mentioning the
// offending construct — reloads are operator-facing, so the message is
// part of the contract.
func TestParseConfigRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{
			name: "not json",
			doc:  `tenants: [..]`,
			want: "config",
		},
		{
			name: "unknown field",
			doc:  `{"tenants": [{"id": "a", "synthetic": 10, "max_sessions": 1}], "max_conns": 5}`,
			want: "max_conns",
		},
		{
			name: "trailing garbage",
			doc:  `{"tenants": [{"id": "a", "synthetic": 10, "max_sessions": 1}]} {"again": true}`,
			want: "trailing data",
		},
		{
			name: "no tenants",
			doc:  `{"tenants": []}`,
			want: "no tenants",
		},
		{
			name: "duplicate tenant ids",
			doc: `{"tenants": [
				{"id": "a", "synthetic": 10, "max_sessions": 1},
				{"id": "a", "synthetic": 10, "max_sessions": 1}]}`,
			want: "duplicate tenant id",
		},
		{
			name: "zero quota",
			doc:  `{"tenants": [{"id": "a", "synthetic": 10, "max_sessions": 0}]}`,
			want: "max_sessions",
		},
		{
			name: "negative quota",
			doc:  `{"tenants": [{"id": "a", "synthetic": 10, "max_sessions": -3}]}`,
			want: "max_sessions",
		},
		{
			name: "empty tenant id",
			doc:  `{"tenants": [{"id": "", "synthetic": 10, "max_sessions": 1}]}`,
			want: "empty tenant id",
		},
		{
			name: "tenant id charset",
			doc:  `{"tenants": [{"id": "Alpha!", "synthetic": 10, "max_sessions": 1}]}`,
			want: "not in [a-z0-9._-]",
		},
		{
			name: "tenant id too long",
			doc: `{"tenants": [{"id": "` + strings.Repeat("x", 65) +
				`", "synthetic": 10, "max_sessions": 1}]}`,
			want: "max 64",
		},
		{
			name: "no dataset source",
			doc:  `{"tenants": [{"id": "a", "max_sessions": 1}]}`,
			want: "needs a dataset",
		},
		{
			name: "two dataset sources",
			doc:  `{"tenants": [{"id": "a", "dataset": "f.txt", "synthetic": 10, "max_sessions": 1}]}`,
			want: "mutually exclusive",
		},
		{
			name: "negative synthetic",
			doc:  `{"tenants": [{"id": "a", "synthetic": -1, "max_sessions": 1}]}`,
			want: "negative",
		},
		{
			name: "negative max_in_flight",
			doc:  `{"tenants": [{"id": "a", "synthetic": 10, "max_sessions": 1}], "max_in_flight": -1}`,
			want: "max_in_flight",
		},
		{
			name: "negative max_locations",
			doc:  `{"tenants": [{"id": "a", "synthetic": 10, "max_sessions": 1, "max_locations": -5}]}`,
			want: "max_locations",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := ParseConfig([]byte(c.doc))
			if err == nil {
				t.Fatalf("accepted %s as %+v", c.doc, cfg)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestMissingDatasetFileRejectsAtBuild: a config naming a nonexistent
// dataset file parses fine (Validate is pure) but fails the epoch build,
// so New refuses to start on it and a reload to it is rejected.
func TestMissingDatasetFileRejectsAtBuild(t *testing.T) {
	doc := []byte(`{"tenants": [{"id": "default", "dataset": "/nonexistent/points.txt", "max_sessions": 1}]}`)
	cfg, err := ParseConfig(doc)
	if err != nil {
		t.Fatalf("pure validation opened the filesystem: %v", err)
	}
	if _, err := New(cfg, Options{}); err == nil {
		t.Fatal("service started on a missing dataset file")
	}
}
