package svc

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"
)

func testParams(n int) core.Params {
	p := core.DefaultParams(n)
	p.KeyBits = 256
	p.D = 5
	p.Delta = 10
	p.K = 4
	p.Variant = core.VariantPPGNN
	p.NoSanitize = true
	return p
}

// twoTenantConfig is the standard fixture: a default tenant and "alpha",
// each on its own small synthetic dataset.
func twoTenantConfig() *Config {
	return &Config{Tenants: []TenantConfig{
		{ID: transport.DefaultTenant, Synthetic: 400, Seed: 3, MaxSessions: 8},
		{ID: "alpha", Synthetic: 400, Seed: 7, MaxSessions: 8},
	}}
}

func newService(t *testing.T, cfg *Config, opts Options) *Service {
	t.Helper()
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	s, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// counterValue sums a counter family's series matching the given labels.
func counterValue(reg *obs.Registry, name string, labels ...obs.Label) int64 {
	return reg.Counter(name, labels...).Value()
}

// TestServiceServesTenantsEndToEnd: a transport.Server admitted by the
// service routes sessions to per-tenant LSPs; both the tenant-framed and
// the legacy tenantless client get correct answers.
func TestServiceServesTenantsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(t, twoTenantConfig(), Options{Obs: reg})
	srv := transport.NewServer(nil)
	srv.Admitter = s
	srv.OnSessionPanic = s.OnSessionPanic
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	for _, tenant := range []string{"", "alpha"} {
		g, err := core.NewGroup(testParams(2),
			[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(40)))
		if err != nil {
			t.Fatal(err)
		}
		cli, err := transport.Dial(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		cli.Tenant = tenant
		res, err := g.Run(cli, nil)
		cli.Close()
		if err != nil {
			t.Fatalf("tenant %q: %v", tenant, err)
		}
		if len(res.Points) == 0 {
			t.Fatalf("tenant %q: empty answer", tenant)
		}
	}
	if got := counterValue(reg, "svc_admissions_total", obs.L("tenant", "default"), obs.L("admission", "ok")); got != 1 {
		t.Fatalf("default-tenant ok admissions = %d, want 1", got)
	}
	if got := counterValue(reg, "svc_admissions_total", obs.L("tenant", "t0"), obs.L("admission", "ok")); got != 1 {
		t.Fatalf("slot-t0 ok admissions = %d, want 1", got)
	}
	if n := s.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after all sessions released", n)
	}
	if n := s.LiveEpochs(); n != 1 {
		t.Fatalf("%d live epochs in steady state", n)
	}
}

// TestQuotaShed: the per-tenant session quota sheds with a typed
// BusyError carrying a retry-after hint, and a release frees the slot.
func TestQuotaShed(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := twoTenantConfig()
	cfg.Tenants[1].MaxSessions = 1
	s := newService(t, cfg, Options{Obs: reg})

	g1, err := s.Admit("alpha")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Admit("alpha")
	var be *transport.BusyError
	if !errors.As(err, &be) || be.Reason != "quota" {
		t.Fatalf("second session got %v, want quota BusyError", err)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("shed without a retry-after hint: %+v", be)
	}
	// The default tenant is not starved by alpha's quota.
	gd, err := s.Admit(transport.DefaultTenant)
	if err != nil {
		t.Fatalf("default tenant starved by alpha quota: %v", err)
	}
	gd.Release()
	g1.Release()
	g2, err := s.Admit("alpha")
	if err != nil {
		t.Fatalf("slot not freed by release: %v", err)
	}
	g2.Release()
	if got := counterValue(reg, "svc_admissions_total", obs.L("tenant", "t0"), obs.L("admission", "quota")); got != 1 {
		t.Fatalf("quota sheds = %d, want 1", got)
	}
}

// TestOverloadGate: the global in-flight cap sheds across tenants, with
// the "overload" reason.
func TestOverloadGate(t *testing.T) {
	cfg := twoTenantConfig()
	cfg.MaxInFlight = 1
	s := newService(t, cfg, Options{})
	g1, err := s.Admit(transport.DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Admit("alpha")
	var be *transport.BusyError
	if !errors.As(err, &be) || be.Reason != "overload" {
		t.Fatalf("over the global cap got %v, want overload BusyError", err)
	}
	g1.Release()
	g2, err := s.Admit("alpha")
	if err != nil {
		t.Fatalf("gate not released: %v", err)
	}
	g2.Release()
}

// TestUnknownTenantRejected: an unknown tenant is a protocol-fatal
// rejection, not a shed.
func TestUnknownTenantRejected(t *testing.T) {
	s := newService(t, twoTenantConfig(), Options{})
	_, err := s.Admit("ghost")
	if err == nil {
		t.Fatal("unknown tenant admitted")
	}
	var be *transport.BusyError
	if errors.As(err, &be) {
		t.Fatalf("unknown tenant shed as busy: %v", err)
	}
	if !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("err = %v", err)
	}
}

// TestReleaseIdempotent: double-releasing a grant must not corrupt the
// in-flight accounting.
func TestReleaseIdempotent(t *testing.T) {
	s := newService(t, twoTenantConfig(), Options{})
	g, err := s.Admit("alpha")
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g.Release()
	if n := s.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after double release", n)
	}
}

// TestApplySwapsEpochAndRetires: a reload pins in-flight sessions to
// their epoch; the old epoch retires only when its last session ends.
func TestApplySwapsEpochAndRetires(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(t, twoTenantConfig(), Options{Obs: reg})
	if s.Epoch() != 1 {
		t.Fatalf("initial epoch %d, want 1", s.Epoch())
	}
	held, err := s.Admit("alpha")
	if err != nil {
		t.Fatal(err)
	}
	next := twoTenantConfig()
	next.Tenants[1].MaxSessions = 3
	if err := s.Apply(next); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after apply, want 2", s.Epoch())
	}
	if n := s.LiveEpochs(); n != 2 {
		t.Fatalf("%d live epochs with an old-epoch session in flight, want 2", n)
	}
	held.Release()
	if n := s.LiveEpochs(); n != 1 {
		t.Fatalf("%d live epochs after the old session drained, want 1 (epoch leak)", n)
	}
	if got := counterValue(reg, "svc_reloads_total", obs.L("result", "applied")); got != 1 {
		t.Fatalf("applied reloads = %d, want 1", got)
	}
}

// TestApplyRejectedKeepsServing: a bad new config (invalid, or a missing
// dataset file) is rejected; the current epoch keeps serving and the
// service returns to ready.
func TestApplyRejectedKeepsServing(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(t, twoTenantConfig(), Options{Obs: reg})
	bad := &Config{Tenants: []TenantConfig{
		{ID: "a", Synthetic: 10, MaxSessions: 1},
		{ID: "a", Synthetic: 10, MaxSessions: 1},
	}}
	if err := s.Apply(bad); err == nil {
		t.Fatal("duplicate-id config applied")
	}
	missing := &Config{Tenants: []TenantConfig{
		{ID: transport.DefaultTenant, Dataset: "/nonexistent/points.txt", MaxSessions: 1},
	}}
	if err := s.Apply(missing); err == nil {
		t.Fatal("missing-dataset config applied")
	}
	if s.Epoch() != 1 {
		t.Fatalf("rejected reloads moved the epoch to %d", s.Epoch())
	}
	if !s.Ready() {
		t.Fatalf("service stuck %q after rejected reloads", s.State())
	}
	if g, err := s.Admit("alpha"); err != nil {
		t.Fatalf("old epoch stopped serving: %v", err)
	} else {
		g.Release()
	}
	if got := counterValue(reg, "svc_reloads_total", obs.L("result", "rejected")); got != 2 {
		t.Fatalf("rejected reloads = %d, want 2", got)
	}
}

// TestReloadFromFile: the SIGHUP path end to end — rewrite the file,
// Reload applies it; corrupt the file, Reload rejects and keeps serving.
func TestReloadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "svc.json")
	write := func(doc string) {
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants": [{"id": "default", "synthetic": 300, "max_sessions": 4}]}`)
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, Options{ConfigPath: path, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	write(`{"tenants": [
		{"id": "default", "synthetic": 300, "max_sessions": 4},
		{"id": "beta", "synthetic": 300, "max_sessions": 2}]}`)
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if g, err := s.Admit("beta"); err != nil {
		t.Fatalf("reloaded tenant not served: %v", err)
	} else {
		g.Release()
	}
	write(`{"tenants": [{]`)
	if err := s.Reload(); err == nil {
		t.Fatal("corrupt config applied")
	}
	if g, err := s.Admit("beta"); err != nil {
		t.Fatalf("rejected reload broke serving: %v", err)
	} else {
		g.Release()
	}
}

// TestHealthEndpoints: /healthz always answers; /readyz follows the
// lifecycle state, including the mid-reload unready window.
func TestHealthEndpoints(t *testing.T) {
	var sawUnready bool
	reg := obs.NewRegistry()
	opts := Options{Obs: reg}
	opts.reloadHook = func(stage string) {
		// Inside apply the ready gauge must be down: a health checker
		// polling during the swap sees 503.
		if stage == "start" && reg.Gauge("svc_ready").Value() == 0 {
			sawUnready = true
		}
	}
	s := newService(t, twoTenantConfig(), opts)
	mux := http.NewServeMux()
	s.RegisterHealth(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, strings.TrimSpace(string(buf[:n]))
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != "ready" {
		t.Fatalf("readyz = %d %q", code, body)
	}
	if err := s.Apply(twoTenantConfig()); err != nil {
		t.Fatal(err)
	}
	if !sawUnready {
		t.Fatal("readiness never dropped during the reload swap")
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d after reload, want 200", code)
	}
	s.Close()
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("readyz while draining = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness outlives readiness)", code)
	}
}

// TestWatchdogTrips: repeated session panics inside the window exhaust
// the crash budget — the service goes permanently unready and Fatal
// fires exactly once.
func TestWatchdogTrips(t *testing.T) {
	reg := obs.NewRegistry()
	s := newService(t, twoTenantConfig(), Options{Obs: reg, CrashBudget: 3, CrashWindow: time.Minute})
	for i := 0; i < 2; i++ {
		s.OnSessionPanic()
		if !s.Ready() {
			t.Fatalf("watchdog tripped after %d panics, budget is 3", i+1)
		}
	}
	s.OnSessionPanic()
	if s.Ready() || s.State() != "failed" {
		t.Fatalf("state %q after the budget, want failed", s.State())
	}
	select {
	case <-s.Fatal():
	case <-time.After(time.Second):
		t.Fatal("Fatal did not fire")
	}
	// Further panics and reloads cannot resurrect a failed service.
	s.OnSessionPanic()
	if err := s.Apply(twoTenantConfig()); err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("failed service came back ready after a reload")
	}
	if got := counterValue(reg, "svc_watchdog_trips_total"); got != 1 {
		t.Fatalf("watchdog trips = %d, want 1", got)
	}
}

// TestWatchdogWindowSlides: panics spread wider than the window never
// trip the budget.
func TestWatchdogWindowSlides(t *testing.T) {
	w := watchdog{budget: 3, window: 100 * time.Millisecond}
	base := time.Now()
	for i := 0; i < 10; i++ {
		if w.record(base.Add(time.Duration(i) * 60 * time.Millisecond)) {
			t.Fatalf("tripped at spread-out panic %d", i)
		}
	}
	// Three inside one window do trip.
	w2 := watchdog{budget: 3, window: 100 * time.Millisecond}
	w2.record(base)
	w2.record(base.Add(10 * time.Millisecond))
	if !w2.record(base.Add(20 * time.Millisecond)) {
		t.Fatal("three panics in one window did not trip")
	}
}
