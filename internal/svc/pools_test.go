package svc

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/obs"
	"ppgnn/internal/paillier"
	"ppgnn/internal/transport"
)

// rerandConfig is twoTenantConfig with answer rerandomization switched
// on for "alpha".
func rerandConfig() *Config {
	cfg := twoTenantConfig()
	cfg.Tenants[1].Rerandomize = true
	return cfg
}

// runTenantQuery admits one session for the tenant and runs a full
// query against the granted LSP, returning the group for decryption
// checks.
func runTenantQuery(t *testing.T, s *Service, tenantID string) {
	t.Helper()
	g, err := core.NewGroup(testParams(2),
		[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	grant, err := s.Admit(tenantID)
	if err != nil {
		t.Fatal(err)
	}
	defer grant.Release()
	res, err := g.Run(core.LocalService{LSP: grant.LSP}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty answer")
	}
}

// TestRerandPoolsPersistAcrossEpochs pins the ISSUE 10 epoch-swap
// contract: a tenant's rerandomization PoolSet (and its warm factors)
// survives a config reload — only the tenant's LSP is rebuilt — while
// a tenant dropped from the config gets its pools closed, with any
// Precomputer still held by a draining session remaining usable.
func TestRerandPoolsPersistAcrossEpochs(t *testing.T) {
	s := newService(t, rerandConfig(), Options{Obs: obs.NewRegistry(), PoolTarget: 4})
	defer s.Close()

	ep := s.cur.Load()
	alpha := ep.tenants["alpha"]
	if !alpha.lsp.Rerandomize || alpha.lsp.RerandPools == nil {
		t.Fatal("rerandomizing tenant built without pools")
	}
	if def := ep.tenants[transport.DefaultTenant]; def.lsp.RerandPools != nil {
		t.Fatal("non-rerandomizing tenant got pools")
	}
	ps := alpha.lsp.RerandPools

	// Serve a query so the set holds a warm, partly drained pool.
	runTenantQuery(t, s, "alpha")
	if ps.Pools() == 0 {
		t.Fatal("rerandomized session opened no pool")
	}

	// Reload: same tenants, rebuilt datasets. The LSP is new, the
	// PoolSet — and the Precomputers inside it — are the same objects.
	cfg2 := rerandConfig()
	cfg2.Tenants[1].Synthetic = 500
	if err := s.Apply(cfg2); err != nil {
		t.Fatal(err)
	}
	ep2 := s.cur.Load()
	alpha2 := ep2.tenants["alpha"]
	if alpha2.lsp == alpha.lsp {
		t.Fatal("epoch swap did not rebuild the LSP")
	}
	if alpha2.lsp.RerandPools != ps {
		t.Fatal("epoch swap replaced the tenant's PoolSet; warm factors were thrown away")
	}
	if ps.Pools() == 0 {
		t.Fatal("epoch swap emptied the PoolSet")
	}
	runTenantQuery(t, s, "alpha")

	// Drop alpha: its PoolSet leaves the service map and is closed, but
	// a Precomputer still held (a draining session of the old epoch)
	// keeps working without a refiller.
	g, err := core.NewGroup(testParams(2),
		[]geo.Point{{X: 0.3, Y: 0.4}, {X: 0.5, Y: 0.6}}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	held, err := ps.For(&g.Key.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg3 := &Config{Tenants: []TenantConfig{
		{ID: transport.DefaultTenant, Synthetic: 400, Seed: 3, MaxSessions: 8},
	}}
	if err := s.Apply(cfg3); err != nil {
		t.Fatal(err)
	}
	s.poolsMu.Lock()
	_, still := s.pools["alpha"]
	s.poolsMu.Unlock()
	if still {
		t.Fatal("dropped tenant's PoolSet still in the service map")
	}
	ct, err := g.Key.PublicKey.EncryptInt64(nil, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := held.RerandomizeBatch(context.Background(), nil, nil, []*paillier.Ciphertext{ct})
	if err != nil {
		t.Fatalf("closed set's Precomputer unusable: %v", err)
	}
	if got, err := g.Key.Decrypt(out[0]); err != nil || got.Int64() != 9 {
		t.Fatalf("rerandomize after close: got %v, %v", got, err)
	}
}

// TestPoolTargetHintClamps pins the admission-driven sizing: the hint
// floors at PoolTarget, scales with in-flight sessions, doubles under a
// fast session-cost EWMA, and clamps at 64×PoolTarget.
func TestPoolTargetHintClamps(t *testing.T) {
	s := newService(t, twoTenantConfig(), Options{Obs: obs.NewRegistry(), PoolTarget: 4})
	defer s.Close()
	if got := s.poolTargetHint(); got != 4 {
		t.Fatalf("idle hint %d, want the PoolTarget floor 4", got)
	}
	s.inflight.Add(3)
	if got := s.poolTargetHint(); got != 16 {
		t.Fatalf("hint with 3 in flight = %d, want 16", got)
	}
	s.costEWMA.Store(int64(5 * time.Millisecond))
	if got := s.poolTargetHint(); got != 32 {
		t.Fatalf("fast-turnover hint = %d, want 32", got)
	}
	s.inflight.Add(1000)
	if got := s.poolTargetHint(); got != 64*4 {
		t.Fatalf("burst hint = %d, want clamp %d", got, 64*4)
	}
	s.inflight.Add(-1003)
}

// TestParseConfigRerandomize checks the new tenant knob round-trips
// through the strict JSON config parser.
func TestParseConfigRerandomize(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"tenants": [
		{"id": "default", "synthetic": 100, "max_sessions": 2, "rerandomize": true}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Tenants[0].Rerandomize {
		t.Fatal("rerandomize flag lost in parsing")
	}
}
