package svc

import (
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"
)

// TestSIGHUPReloadStorm is the satellite race test: real SIGHUPs drive
// config reloads — some valid, some rejected — while client sessions run
// concurrently against both tenants. Under -race this exercises the
// epoch swap against live admissions. Invariants:
//
//   - no in-flight query is dropped: every client session succeeds
//     (quotas are generous, so nothing should legitimately shed);
//   - readiness flips during each swap and recovers to ready;
//   - old epochs are released once their sessions drain (no LSP leak).
func TestSIGHUPReloadStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("reload storm needs real signals and concurrent crypto sessions")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "svc.json")
	writeCfg := func(doc string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	valid := func(quota int) string {
		return fmt.Sprintf(`{"tenants": [
			{"id": "default", "synthetic": 300, "seed": 3, "max_sessions": %d},
			{"id": "alpha", "synthetic": 300, "seed": 7, "max_sessions": %d}]}`, quota, quota)
	}
	writeCfg(valid(32))

	reg := obs.NewRegistry()
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, Options{ConfigPath: path, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(nil)
	srv.Admitter = s
	srv.OnSessionPanic = s.OnSessionPanic
	srv.Obs = reg
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// The SIGHUP handler a real deployment runs: each signal re-reads the
	// config; rejected reloads are logged and dropped.
	hup := make(chan os.Signal, 8)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		for range hup {
			s.Reload() // bad files reject; the storm keeps going
		}
	}()

	reloadsSeen := func() int64 {
		return reg.Counter("svc_reloads_total", obs.L("result", "applied")).Value() +
			reg.Counter("svc_reloads_total", obs.L("result", "rejected")).Value()
	}

	// Client fleet: four workers alternating tenants, each reusing one
	// prebuilt query through a retrying pool.
	const workers, queriesPer = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*queriesPer)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g, err := core.NewGroup(testParams(2),
				[]geo.Point{{X: 0.2 + float64(w)/10, Y: 0.3}, {X: 0.4, Y: 0.5 + float64(w)/20}},
				rand.New(rand.NewSource(int64(50+w))))
			if err != nil {
				errs <- err
				return
			}
			q, locs, err := g.BuildQuery(nil)
			if err != nil {
				errs <- err
				return
			}
			pool := transport.NewPool(addr.String())
			pool.Obs = reg
			pool.Seed = int64(w + 1)
			if w%2 == 1 {
				pool.Tenant = "alpha"
			}
			defer pool.Close()
			for i := 0; i < queriesPer; i++ {
				if _, err := pool.Process(q, locs); err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, i, err)
				}
			}
		}(w)
	}

	// The storm: alternate valid quota flips with an occasional corrupt
	// file, each pushed via a real SIGHUP. Wait for each signal to land
	// (reload counter moves) so none coalesce away.
	const storms = 5
	for i := 0; i < storms; i++ {
		if i == 2 {
			writeCfg(`{"tenants": [{]`) // rejected: old epoch keeps serving
		} else {
			writeCfg(valid(32 + i))
		}
		before := reloadsSeen()
		if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for reloadsSeen() == before {
			if time.Now().After(deadline) {
				t.Fatalf("SIGHUP %d never produced a reload", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	signal.Stop(hup)
	close(hup)
	<-handlerDone

	if got := reg.Counter("svc_reloads_total", obs.L("result", "applied")).Value(); got != storms-1 {
		t.Errorf("applied reloads = %d, want %d", got, storms-1)
	}
	if got := reg.Counter("svc_reloads_total", obs.L("result", "rejected")).Value(); got != 1 {
		t.Errorf("rejected reloads = %d, want 1", got)
	}
	if s.Epoch() != storms { // initial apply + (storms-1) applied reloads
		t.Errorf("epoch = %d, want %d", s.Epoch(), storms)
	}
	if !s.Ready() {
		t.Errorf("service %q after the storm, want ready", s.State())
	}
	// Old epochs must drain to exactly one once every session released.
	deadline := time.Now().Add(10 * time.Second)
	for s.LiveEpochs() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("%d epochs still live after drain (LSP leak)", s.LiveEpochs())
		}
		time.Sleep(time.Millisecond)
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("in-flight %d after drain", n)
	}
}
