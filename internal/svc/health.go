package svc

import (
	"fmt"
	"net/http"
)

// RegisterHealth installs the health surface on a mux (the metrics mux
// via obs.ServeMux):
//
//	/healthz  liveness — 200 as long as the process can answer HTTP at
//	          all, draining and reloading included. A supervisor kills
//	          on failure, so this only fails when the process is truly
//	          wedged.
//	/readyz   readiness — 200 only in the "ready" state. It flips to 503
//	          during a reload swap, stays 503 after the crash-budget
//	          watchdog trips, and goes 503 for good once draining
//	          starts, so load balancers stop routing before the listener
//	          disappears.
//
// Both respond with the state name in the body, which is drawn from a
// four-value set ("ready", "reloading", "draining", "failed") — no
// config or tenant data leaks through a health probe.
func (s *Service) RegisterHealth(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		state := s.State()
		if state != "ready" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, state)
	})
}
