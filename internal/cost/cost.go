// Package cost implements the measurement substrate for the three metrics
// of the paper's evaluation (Section 8.1): total communication cost in
// bytes (split by channel: users↔LSP and within the user group), total
// user computational cost, and LSP computational cost. A Meter is threaded
// through a protocol run; Snapshot freezes the totals for reporting.
package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Channel identifies a communication edge of the system model (Section 2):
// users talk to the LSP through the base station, and to each other for the
// coordinator broadcasts.
type Channel int

const (
	// UserToLSP covers query, indicator vectors, and location sets.
	UserToLSP Channel = iota
	// LSPToUser covers the encrypted answer.
	LSPToUser
	// IntraGroup covers coordinator broadcasts (positions, final answer)
	// and, in the GLP baseline, the O(n²) secure-sum shares.
	IntraGroup
	numChannels
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case UserToLSP:
		return "user→LSP"
	case LSPToUser:
		return "LSP→user"
	case IntraGroup:
		return "intra-group"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// Party attributes computation time.
type Party int

const (
	// Users is the summed computational cost of all users including the
	// coordinator (the paper's "user cost").
	Users Party = iota
	// LSP is the provider's computational cost.
	LSP
	numParties
)

// String implements fmt.Stringer.
func (p Party) String() string {
	switch p {
	case Users:
		return "users"
	case LSP:
		return "LSP"
	default:
		return fmt.Sprintf("Party(%d)", int(p))
	}
}

// Meter accumulates bytes, time, and operation counts. The zero value is
// ready to use and safe for concurrent use. A nil *Meter is a valid no-op
// sink, so instrumented code never needs nil checks.
type Meter struct {
	mu    sync.Mutex
	bytes [numChannels]int64
	times [numParties]time.Duration
	ops   map[string]int64
}

// AddBytes records n bytes sent on the channel.
func (m *Meter) AddBytes(ch Channel, n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.bytes[ch] += int64(n)
	m.mu.Unlock()
}

// AddTime attributes a duration to a party.
func (m *Meter) AddTime(p Party, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.times[p] += d
	m.mu.Unlock()
}

// Time runs fn and attributes its wall time to the party.
func (m *Meter) Time(p Party, fn func()) {
	start := time.Now()
	fn()
	m.AddTime(p, time.Since(start))
}

// CountOp increments a named operation counter (e.g. "enc1", "kgnn",
// "sanitize-sample") by n.
func (m *Meter) CountOp(name string, n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.ops == nil {
		m.ops = make(map[string]int64)
	}
	m.ops[name] += n
	m.mu.Unlock()
}

// Snapshot freezes the current totals.
func (m *Meter) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		UserToLSPBytes:  m.bytes[UserToLSP],
		LSPToUserBytes:  m.bytes[LSPToUser],
		IntraGroupBytes: m.bytes[IntraGroup],
		UserTime:        m.times[Users],
		LSPTime:         m.times[LSP],
	}
	if len(m.ops) > 0 {
		s.Ops = make(map[string]int64, len(m.ops))
		for k, v := range m.ops {
			s.Ops[k] = v
		}
	}
	return s
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.bytes = [numChannels]int64{}
	m.times = [numParties]time.Duration{}
	m.ops = nil
	m.mu.Unlock()
}

// Snapshot is an immutable view of a Meter.
type Snapshot struct {
	UserToLSPBytes  int64
	LSPToUserBytes  int64
	IntraGroupBytes int64
	UserTime        time.Duration
	LSPTime         time.Duration
	Ops             map[string]int64
}

// TotalBytes is the paper's "communication cost": all channels combined.
func (s Snapshot) TotalBytes() int64 {
	return s.UserToLSPBytes + s.LSPToUserBytes + s.IntraGroupBytes
}

// Add returns the component-wise sum of two snapshots (used to average
// repeated queries).
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := Snapshot{
		UserToLSPBytes:  s.UserToLSPBytes + o.UserToLSPBytes,
		LSPToUserBytes:  s.LSPToUserBytes + o.LSPToUserBytes,
		IntraGroupBytes: s.IntraGroupBytes + o.IntraGroupBytes,
		UserTime:        s.UserTime + o.UserTime,
		LSPTime:         s.LSPTime + o.LSPTime,
	}
	if len(s.Ops) > 0 || len(o.Ops) > 0 {
		out.Ops = make(map[string]int64, len(s.Ops)+len(o.Ops))
		for k, v := range s.Ops {
			out.Ops[k] += v
		}
		for k, v := range o.Ops {
			out.Ops[k] += v
		}
	}
	return out
}

// Scale divides every quantity by n (for per-query averages). n must be
// positive.
func (s Snapshot) Scale(n int) Snapshot {
	if n <= 0 {
		panic("cost: Scale by non-positive count")
	}
	out := Snapshot{
		UserToLSPBytes:  s.UserToLSPBytes / int64(n),
		LSPToUserBytes:  s.LSPToUserBytes / int64(n),
		IntraGroupBytes: s.IntraGroupBytes / int64(n),
		UserTime:        s.UserTime / time.Duration(n),
		LSPTime:         s.LSPTime / time.Duration(n),
	}
	if len(s.Ops) > 0 {
		out.Ops = make(map[string]int64, len(s.Ops))
		for k, v := range s.Ops {
			out.Ops[k] = v / int64(n)
		}
	}
	return out
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comm=%s (u→l %s, l→u %s, intra %s) user=%v lsp=%v",
		FormatBytes(s.TotalBytes()), FormatBytes(s.UserToLSPBytes),
		FormatBytes(s.LSPToUserBytes), FormatBytes(s.IntraGroupBytes),
		s.UserTime.Round(time.Microsecond), s.LSPTime.Round(time.Microsecond))
	if len(s.Ops) > 0 {
		keys := make([]string, 0, len(s.Ops))
		for k := range s.Ops {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" ops={")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s:%d", k, s.Ops[k])
		}
		b.WriteString("}")
	}
	return b.String()
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
