package cost

import (
	"fmt"
	"time"
)

// NetworkModel translates measured byte counts into user-perceived
// transfer time for a given link technology. The paper's motivation is the
// mobile scenario — "the communication bandwidth being precious" — and
// this model makes the trade-offs concrete: e.g. at 3G uplink rates the
// O(δ') indicator vector of plain PPGNN costs seconds where PPGNN-OPT's
// O(√δ') costs tenths (see cmd/ppgnn-experiments -exp mobile).
type NetworkModel struct {
	Name  string
	Up    int64         // uplink bytes/second (user → LSP)
	Down  int64         // downlink bytes/second (LSP → user)
	Local int64         // intra-group bytes/second (e.g. Bluetooth/WiFi Direct)
	RTT   time.Duration // one round-trip latency, charged once per query
}

// Link presets (order-of-magnitude figures for the paper's 2018 mobile
// setting).
var (
	ThreeG = NetworkModel{Name: "3G", Up: 250_000, Down: 1_000_000, Local: 250_000, RTT: 200 * time.Millisecond}
	FourG  = NetworkModel{Name: "4G", Up: 2_000_000, Down: 10_000_000, Local: 2_000_000, RTT: 60 * time.Millisecond}
	WiFi   = NetworkModel{Name: "WiFi", Up: 10_000_000, Down: 30_000_000, Local: 10_000_000, RTT: 10 * time.Millisecond}
)

// Validate reports malformed models.
func (n NetworkModel) Validate() error {
	if n.Up <= 0 || n.Down <= 0 || n.Local <= 0 {
		return fmt.Errorf("cost: network model %q has non-positive bandwidth", n.Name)
	}
	return nil
}

// TransferTime estimates the wall time the snapshot's traffic occupies on
// this link (serialized transfer plus one RTT).
func (n NetworkModel) TransferTime(s Snapshot) time.Duration {
	if err := n.Validate(); err != nil {
		panic(err)
	}
	secs := float64(s.UserToLSPBytes)/float64(n.Up) +
		float64(s.LSPToUserBytes)/float64(n.Down) +
		float64(s.IntraGroupBytes)/float64(n.Local)
	return n.RTT + time.Duration(secs*float64(time.Second))
}

// EndToEnd estimates the total user-perceived query latency: computation
// on both sides plus the link transfer time.
func (n NetworkModel) EndToEnd(s Snapshot) time.Duration {
	return s.UserTime + s.LSPTime + n.TransferTime(s)
}
