package cost

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterBasics(t *testing.T) {
	var m Meter
	m.AddBytes(UserToLSP, 100)
	m.AddBytes(UserToLSP, 50)
	m.AddBytes(LSPToUser, 10)
	m.AddBytes(IntraGroup, 5)
	m.AddTime(Users, 2*time.Millisecond)
	m.AddTime(LSP, 3*time.Millisecond)
	m.CountOp("enc1", 7)
	m.CountOp("enc1", 3)

	s := m.Snapshot()
	if s.UserToLSPBytes != 150 || s.LSPToUserBytes != 10 || s.IntraGroupBytes != 5 {
		t.Fatalf("bytes wrong: %+v", s)
	}
	if s.TotalBytes() != 165 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
	if s.UserTime != 2*time.Millisecond || s.LSPTime != 3*time.Millisecond {
		t.Fatalf("times wrong: %+v", s)
	}
	if s.Ops["enc1"] != 10 {
		t.Fatalf("ops wrong: %v", s.Ops)
	}
}

func TestNilMeterIsNoop(t *testing.T) {
	var m *Meter
	m.AddBytes(UserToLSP, 1)
	m.AddTime(LSP, time.Second)
	m.CountOp("x", 1)
	m.Reset()
	if s := m.Snapshot(); s.TotalBytes() != 0 {
		t.Fatal("nil meter recorded data")
	}
	// Time on a nil meter still runs the function.
	ran := false
	m.Time(Users, func() { ran = true })
	if !ran {
		t.Fatal("Time did not run fn on nil meter")
	}
}

func TestTimeAttributes(t *testing.T) {
	var m Meter
	m.Time(LSP, func() { time.Sleep(5 * time.Millisecond) })
	if s := m.Snapshot(); s.LSPTime < 4*time.Millisecond {
		t.Fatalf("LSP time %v too small", s.LSPTime)
	}
}

func TestReset(t *testing.T) {
	var m Meter
	m.AddBytes(UserToLSP, 9)
	m.CountOp("a", 1)
	m.Reset()
	s := m.Snapshot()
	if s.TotalBytes() != 0 || len(s.Ops) != 0 {
		t.Fatalf("reset did not clear: %+v", s)
	}
}

func TestSnapshotAddScale(t *testing.T) {
	a := Snapshot{UserToLSPBytes: 10, LSPToUserBytes: 4, UserTime: 10 * time.Millisecond,
		Ops: map[string]int64{"x": 4}}
	b := Snapshot{UserToLSPBytes: 30, IntraGroupBytes: 6, LSPTime: 20 * time.Millisecond,
		Ops: map[string]int64{"x": 2, "y": 2}}
	sum := a.Add(b)
	if sum.UserToLSPBytes != 40 || sum.LSPToUserBytes != 4 || sum.IntraGroupBytes != 6 {
		t.Fatalf("Add bytes wrong: %+v", sum)
	}
	if sum.Ops["x"] != 6 || sum.Ops["y"] != 2 {
		t.Fatalf("Add ops wrong: %v", sum.Ops)
	}
	avg := sum.Scale(2)
	if avg.UserToLSPBytes != 20 || avg.UserTime != 5*time.Millisecond || avg.Ops["x"] != 3 {
		t.Fatalf("Scale wrong: %+v", avg)
	}
}

func TestScalePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	Snapshot{}.Scale(0)
}

func TestConcurrentMeter(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddBytes(UserToLSP, 1)
				m.CountOp("op", 1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.UserToLSPBytes != 16000 || s.Ops["op"] != 16000 {
		t.Fatalf("concurrent totals wrong: %+v", s)
	}
}

func TestStringOutput(t *testing.T) {
	s := Snapshot{UserToLSPBytes: 2048, Ops: map[string]int64{"enc": 5}}
	str := s.String()
	for _, want := range []string{"2.00KiB", "enc:5", "user=", "lsp="} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestChannelPartyStrings(t *testing.T) {
	if UserToLSP.String() == "" || LSP.String() == "" || Users.String() == "" {
		t.Fatal("empty Stringer output")
	}
	if Channel(99).String() == "" || Party(99).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

func TestNetworkModelTransferTime(t *testing.T) {
	s := Snapshot{UserToLSPBytes: 250_000, LSPToUserBytes: 1_000_000, IntraGroupBytes: 0}
	// 3G: 1s up + 1s down + 200ms RTT.
	got := ThreeG.TransferTime(s)
	want := 2*time.Second + 200*time.Millisecond
	if got < want-50*time.Millisecond || got > want+50*time.Millisecond {
		t.Fatalf("3G transfer = %v, want ≈%v", got, want)
	}
	// Faster links are strictly faster.
	if !(WiFi.TransferTime(s) < FourG.TransferTime(s) && FourG.TransferTime(s) < ThreeG.TransferTime(s)) {
		t.Fatal("link ordering violated")
	}
}

func TestNetworkModelEndToEnd(t *testing.T) {
	s := Snapshot{UserToLSPBytes: 1000, UserTime: 100 * time.Millisecond, LSPTime: 200 * time.Millisecond}
	e2e := WiFi.EndToEnd(s)
	if e2e < 300*time.Millisecond {
		t.Fatalf("end-to-end %v below the pure compute time", e2e)
	}
}

func TestNetworkModelValidate(t *testing.T) {
	bad := NetworkModel{Name: "broken", Up: 0, Down: 1, Local: 1}
	if bad.Validate() == nil {
		t.Fatal("zero uplink accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TransferTime did not panic on invalid model")
		}
	}()
	bad.TransferTime(Snapshot{})
}
