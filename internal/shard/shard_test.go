package shard

import (
	"math"
	"math/rand"
	"testing"

	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/parallel"
	"ppgnn/internal/rtree"
)

func randomQuery(rng *rand.Rand, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return out
}

// assertSameResults requires exact equality — IDs, costs, points, order.
// The shard contract is byte-identity with the single-tree path, so any
// drift here (not just "same set") is a bug.
func assertSameResults(t *testing.T, got, want []gnn.Result, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Item != want[i].Item || got[i].Cost != want[i].Cost {
			t.Fatalf("%s rank %d: got {id=%d p=%v cost=%v}, want {id=%d p=%v cost=%v}",
				ctx, i,
				got[i].Item.ID, got[i].Item.P, got[i].Cost,
				want[i].Item.ID, want[i].Item.P, want[i].Cost)
		}
	}
}

// TestK1MatchesSingleTree pins the degenerate sharding: one shard, no
// grid, must reproduce the single-tree MBM answer exactly even though the
// shard tree uses a different leaf capacity.
func TestK1MatchesSingleTree(t *testing.T) {
	items := dataset.Synthetic(41, 3000)
	single := &gnn.MBM{Tree: rtree.Bulk(items, rtree.DefaultMaxEntries)}
	ix := New(items, geo.UnitRect, Options{Shards: 1})
	if ix.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", ix.Shards())
	}
	rng := rand.New(rand.NewSource(42))
	for _, agg := range []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min} {
		single.Agg = agg
		for trial := 0; trial < 20; trial++ {
			q := randomQuery(rng, 1+rng.Intn(6))
			k := 1 + rng.Intn(12)
			assertSameResults(t, ix.Search(q, k, agg), single.Search(q, k), agg.String())
		}
	}
}

// TestShardedGridMatchesSingleTree is the main equivalence test: K=8
// shards with the pruning grid in front, against both the single tree and
// the brute-force oracle, across all aggregates.
func TestShardedGridMatchesSingleTree(t *testing.T) {
	items := dataset.Synthetic(43, 5000)
	single := &gnn.MBM{Tree: rtree.Bulk(items, rtree.DefaultMaxEntries)}
	ix := New(items, geo.UnitRect, Options{Shards: 8, PruneGrid: true})
	if !ix.Pruned() {
		t.Fatal("PruneGrid requested but Pruned() = false")
	}
	rng := rand.New(rand.NewSource(44))
	for _, agg := range []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min} {
		single.Agg = agg
		bf := &gnn.BruteForce{Items: items, Agg: agg}
		for trial := 0; trial < 20; trial++ {
			q := randomQuery(rng, 1+rng.Intn(6))
			k := 1 + rng.Intn(12)
			got, st := ix.SearchStats(nil, q, k, agg)
			assertSameResults(t, got, single.Search(q, k), agg.String()+" vs tree")
			assertSameResults(t, got, bf.Search(q, k), agg.String()+" vs oracle")
			// The seed bound must be admissible: at or above the true
			// k-th best cost, never below it.
			if st.Bound < got[len(got)-1].Cost {
				t.Fatalf("%s: seed bound %v below true k-th cost %v", agg, st.Bound, got[len(got)-1].Cost)
			}
		}
	}
}

// TestShardCountExceedsPOIs covers empty shards: more shards than POIs
// means trailing shards hold zero items, and search must still be exact.
func TestShardCountExceedsPOIs(t *testing.T) {
	items := dataset.Synthetic(45, 5)
	ix := New(items, geo.UnitRect, Options{Shards: 16, PruneGrid: true})
	if ix.Shards() != 16 {
		t.Fatalf("Shards() = %d, want 16", ix.Shards())
	}
	if ix.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", ix.Len())
	}
	bf := &gnn.BruteForce{Items: items, Agg: gnn.Sum}
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng, 3)
		// k beyond the database size must return the whole database,
		// ranked — not panic or pad.
		for _, k := range []int{1, 3, 5, 50} {
			assertSameResults(t, ix.Search(q, k, gnn.Sum), bf.Search(q, k), "empty shards")
		}
	}
}

// TestAllPOIsInOneCell degenerates the grid: every POI inside a single
// leaf cell (a dense cluster far from the query), with exact-duplicate
// points forcing the (cost, ID) tie-break. Grid geometry must never
// affect correctness — only the bound's tightness.
func TestAllPOIsInOneCell(t *testing.T) {
	var items []rtree.Item
	for i := 0; i < 200; i++ {
		items = append(items, rtree.Item{
			ID: int64(i),
			P:  geo.Point{X: 0.9001, Y: 0.9001}, // identical points: pure ID ordering
		})
	}
	for i := 200; i < 400; i++ {
		items = append(items, rtree.Item{
			ID: int64(i),
			P:  geo.Point{X: 0.9 + float64(i-200)*1e-6, Y: 0.9},
		})
	}
	ix := New(items, geo.UnitRect, Options{Shards: 8, PruneGrid: true})
	bf := &gnn.BruteForce{Items: items, Agg: gnn.Sum}
	q := []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.1}}
	for _, k := range []int{1, 8, 250} {
		assertSameResults(t, ix.Search(q, k, gnn.Sum), bf.Search(q, k), "one cell")
	}
}

// TestEmptyAndInvalidInputs pins the degenerate corners of the Search
// contract.
func TestEmptyAndInvalidInputs(t *testing.T) {
	empty := New(nil, geo.UnitRect, Options{Shards: 4, PruneGrid: true})
	if got := empty.Search([]geo.Point{{X: 0.5, Y: 0.5}}, 3, gnn.Sum); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	ix := New(dataset.Synthetic(47, 100), geo.UnitRect, Options{Shards: 4, PruneGrid: true})
	if got := ix.Search(nil, 3, gnn.Sum); got != nil {
		t.Fatalf("empty query returned %v", got)
	}
	if got := ix.Search([]geo.Point{{X: 0.5, Y: 0.5}}, 0, gnn.Sum); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

// TestShardClamping pins the Options normalization: K below 1 becomes a
// single shard, K above MaxShards clamps.
func TestShardClamping(t *testing.T) {
	items := dataset.Synthetic(48, 200)
	if got := New(items, geo.UnitRect, Options{Shards: -3}).Shards(); got != 1 {
		t.Fatalf("Shards(-3) built %d shards, want 1", got)
	}
	if got := New(items, geo.UnitRect, Options{Shards: 1000}).Shards(); got != MaxShards {
		t.Fatalf("Shards(1000) built %d shards, want %d", got, MaxShards)
	}
}

// TestSeedBoundFewerThanK pins the no-bound case: a database smaller than
// k cannot bound the k-th cost, so the seed must report +Inf and the
// bounded searches degrade to unbounded — never an artificial cutoff.
func TestSeedBoundFewerThanK(t *testing.T) {
	items := dataset.Synthetic(49, 10)
	g := NewGrid(items, geo.UnitRect, 0)
	bound, _ := g.SeedBound([]geo.Point{{X: 0.5, Y: 0.5}}, 11, gnn.Sum)
	if !math.IsInf(bound, 1) {
		t.Fatalf("SeedBound with k > |DB| = %v, want +Inf", bound)
	}
}

// TestSearchDeterministicAcrossPools pins that the answer does not depend
// on the fan-out width: sequential (width 1) and wide pools must agree
// exactly, or byte-identity would depend on scheduling.
func TestSearchDeterministicAcrossPools(t *testing.T) {
	items := dataset.Synthetic(50, 2000)
	ix := New(items, geo.UnitRect, Options{Shards: 8, PruneGrid: true})
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng, 4)
		seq, _ := ix.SearchStats(parallel.New(1), q, 8, gnn.Sum)
		wide, _ := ix.SearchStats(parallel.New(8), q, 8, gnn.Sum)
		assertSameResults(t, wide, seq, "pool width")
	}
}

// TestInputOrderIrrelevant pins the deterministic partition: shuffling
// the input slice must produce an identical index (same shard assignment,
// same answers) — New sorts before chunking.
func TestInputOrderIrrelevant(t *testing.T) {
	items := dataset.Synthetic(52, 1000)
	shuffled := make([]rtree.Item, len(items))
	copy(shuffled, items)
	rng := rand.New(rand.NewSource(53))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	a := New(items, geo.UnitRect, Options{Shards: 8, PruneGrid: true})
	b := New(shuffled, geo.UnitRect, Options{Shards: 8, PruneGrid: true})
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng, 3)
		assertSameResults(t, b.Search(q, 8, gnn.Sum), a.Search(q, 8, gnn.Sum), "input order")
	}
}
