package shard

import (
	"math/rand"
	"testing"

	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
)

// FuzzShardSearch fuzzes the whole index configuration space — shard
// count, grid on/off, grid resolution, database size, query size, k,
// aggregate — against the brute-force oracle. The property under test is
// the package's core contract: the sharded, grid-pruned search is
// exactly the top-k by (cost, ID) over the whole database, for every
// configuration, including the degenerate ones (more shards than POIs,
// k past the database size, single-point queries).
func FuzzShardSearch(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(4), uint8(8), uint8(3), true, uint8(0))
	f.Add(int64(2), uint16(1), uint8(16), uint8(4), uint8(1), true, uint8(1))
	f.Add(int64(3), uint16(500), uint8(1), uint8(1), uint8(6), false, uint8(2))
	f.Add(int64(4), uint16(64), uint8(64), uint8(200), uint8(2), true, uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, n uint16, shards, k, nq uint8, grid bool, aggRaw uint8) {
		nItems := int(n) % 601 // 0..600 POIs keeps the oracle fast
		agg := gnn.Aggregate(aggRaw % 3)
		items := dataset.Synthetic(seed, nItems)
		ix := New(items, geo.UnitRect, Options{
			Shards:    int(shards),
			PruneGrid: grid,
			// Vary the resolution too: leafTarget 1 forces deep grids.
			GridLeafTarget: int(seed&3) + 1,
		})

		rng := rand.New(rand.NewSource(seed + 7))
		query := make([]geo.Point, int(nq)%6+1)
		for i := range query {
			query[i] = geo.Point{X: rng.Float64() * 1.2, Y: rng.Float64()*1.2 - 0.1}
		}
		wantK := int(k)%40 + 1

		got, st := ix.SearchStats(nil, query, wantK, agg)
		want := (&gnn.BruteForce{Items: items, Agg: agg}).Search(query, wantK)

		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d (n=%d shards=%d k=%d grid=%v agg=%v)",
				len(got), len(want), nItems, ix.Shards(), wantK, grid, agg)
		}
		for i := range want {
			if got[i].Item != want[i].Item || got[i].Cost != want[i].Cost {
				t.Fatalf("rank %d: got {id=%d cost=%v}, want {id=%d cost=%v} (n=%d shards=%d k=%d grid=%v agg=%v)",
					i, got[i].Item.ID, got[i].Cost, want[i].Item.ID, want[i].Cost,
					nItems, ix.Shards(), wantK, grid, agg)
			}
		}
		if len(got) > 0 && st.Bound < got[len(got)-1].Cost {
			t.Fatalf("seed bound %v below true k-th cost %v", st.Bound, got[len(got)-1].Cost)
		}
	})
}
