// Package shard is the million-POI index layer (ROADMAP item 2): it
// partitions the POI database across K independently STR-bulk-loaded
// R-tree shards, answers each candidate kGNN query by searching the
// shards in parallel on the internal/parallel pool and merging the
// per-shard top-k, and — in front of the shards — runs a hierarchical
// grid pruning stage (Grid) that seeds an upper bound on the k-th best
// aggregate cost so every shard search can cut off sub-linearly in
// database size, following the candidate-pruning idea of "Sub-Linear
// Privacy-Preserving Near-Neighbor Search" (arXiv 1612.01835).
//
// The contract that makes this usable under the PPGNN privacy argument
// is byte-identity: for any query, Search returns exactly the results
// (values and order) of a single-tree gnn.MBM search over the whole
// database. Both orders are the total order (aggregate cost, then POI
// ID); the seed bound is an exact cost of real POIs, so the bounded
// per-shard searches drop only POIs that provably cannot be in the
// top-k. The private selection downstream therefore produces identical
// ciphertext answers, and nothing about the sharding is observable to
// the client. DESIGN.md §14 carries the full equivalence argument.
package shard

import (
	"context"
	"math"
	"sort"
	"time"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
	"ppgnn/internal/rtree"
)

// Options configures an Index.
type Options struct {
	// Shards is the shard count K; <= 1 means a single shard (still a
	// valid Index, used for the K=1 equivalence tests and as the
	// unsharded comparison arm of the shard gate).
	Shards int
	// PruneGrid enables the hierarchical grid pruning stage: per-query
	// seed bounds that cap every shard search's candidate work.
	PruneGrid bool
	// GridLeafTarget tunes the grid resolution (POIs per leaf cell,
	// default DefaultGridLeafTarget). Only meaningful with PruneGrid.
	GridLeafTarget int
}

// MaxShards caps K: shards are goroutine-level, so hundreds of shards
// only fragment the trees without adding parallelism.
const MaxShards = 64

// shardLeafEntries is the R-tree node capacity of the shard trees.
// Bounded search scans whole leaves, so its candidate work is quantized
// to the leaf size; a fraction of the single tree's DefaultMaxEntries
// trades a deeper descent for a much finer scan granularity along the
// cutoff boundary — the right trade when a seed bound prunes the rest.
const shardLeafEntries = 8

// Index is a sharded, optionally grid-pruned POI index. It is immutable
// after New (rebuild to change the database — the svc layer rebuilds
// per-tenant indexes on every epoch swap), and safe for concurrent use.
type Index struct {
	space  geo.Rect
	shards []*rtree.Tree
	grid   *Grid
	total  int
}

// Telemetry (DESIGN.md §9, §14): closed-catalog instruments, pre-bound.
var (
	mSearches = map[bool]*obs.Counter{
		true:  obs.Default().Counter("shard_searches_total", obs.L("grid", "on")),
		false: obs.Default().Counter("shard_searches_total", obs.L("grid", "off")),
	}
	mScanned      = obs.Default().Histogram("shard_scanned", obs.CountBuckets)
	mSeedScanned  = obs.Default().Histogram("shard_seed_scanned", obs.CountBuckets)
	mShardsPruned = obs.Default().Counter("shard_shards_pruned_total")
	mBuildSecs    = obs.Default().Histogram("shard_build_seconds", obs.TimeBuckets)
	gShardCount   = obs.Default().Gauge("shard_count")
)

// New partitions items into K spatially coherent shards (sorted by
// (X, Y, ID) and chunked, so each shard's STR tree covers a tight
// vertical strip whose root bound prunes whole shards at query time)
// and bulk-loads each with the existing STR packer. The items slice is
// not retained. Empty chunks (K > len(items)) yield empty shards, which
// search as empty trees.
func New(items []rtree.Item, space geo.Rect, opts Options) *Index {
	start := time.Now()
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	if k > MaxShards {
		k = MaxShards
	}
	own := make([]rtree.Item, len(items))
	copy(own, items)
	// Deterministic partition: byte-identity requires the same shard
	// assignment for the same database regardless of input order.
	sort.Slice(own, func(i, j int) bool {
		a, b := own[i], own[j]
		if a.P.X != b.P.X {
			return a.P.X < b.P.X
		}
		if a.P.Y != b.P.Y {
			return a.P.Y < b.P.Y
		}
		return a.ID < b.ID
	})
	ix := &Index{space: space, total: len(items)}
	per := (len(own) + k - 1) / k
	if per == 0 {
		per = 1
	}
	for s := 0; s < k; s++ {
		lo := s * per
		hi := lo + per
		if lo > len(own) {
			lo = len(own)
		}
		if hi > len(own) {
			hi = len(own)
		}
		ix.shards = append(ix.shards, rtree.Bulk(own[lo:hi], shardLeafEntries))
	}
	if opts.PruneGrid {
		ix.grid = NewGrid(own, space, opts.GridLeafTarget)
	}
	mBuildSecs.Observe(time.Since(start).Seconds())
	gShardCount.Set(int64(len(ix.shards)))
	return ix
}

// Shards reports the shard count K.
func (ix *Index) Shards() int { return len(ix.shards) }

// Len reports the indexed POI count.
func (ix *Index) Len() int { return ix.total }

// Pruned reports whether the grid pruning stage is enabled.
func (ix *Index) Pruned() bool { return ix.grid != nil }

// Stats is the per-search work accounting the shard gate curves: how
// many POIs had their exact aggregate cost evaluated (the candidate
// work the grid bounds sub-linearly), split into the seed's share, and
// how many shards the bound pruned without scanning a single POI.
type Stats struct {
	Scanned      int     // total POIs cost-evaluated (seed + shards)
	SeedScanned  int     // POIs evaluated by the grid seed
	Bound        float64 // the seed's k-th-cost upper bound (+Inf = none)
	PrunedShards int     // shards whose search evaluated zero POIs
}

// Search implements the core.SearchFunc contract byte-identically to a
// single-tree gnn.MBM search, using the process-default parallel pool
// across shards.
func (ix *Index) Search(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
	res, _ := ix.SearchStats(nil, query, k, agg)
	return res
}

// SearchPool is Search on an explicit pool (the LSP threads its Workers
// knob here so a Workers=1 LSP stays honestly sequential).
func (ix *Index) SearchPool(pool *parallel.Pool, query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
	res, _ := ix.SearchStats(pool, query, k, agg)
	return res
}

// SearchStats is Search returning the work accounting. A nil pool uses
// the process default.
func (ix *Index) SearchStats(pool *parallel.Pool, query []geo.Point, k int, agg gnn.Aggregate) ([]gnn.Result, Stats) {
	var st Stats
	st.Bound = math.Inf(1)
	if k <= 0 || len(query) == 0 || ix.total == 0 {
		return nil, st
	}
	mSearches[ix.grid != nil].Inc()
	if ix.grid != nil {
		st.Bound, st.SeedScanned = ix.grid.SeedBound(query, k, agg)
		st.Scanned += st.SeedScanned
		mSeedScanned.Observe(float64(st.SeedScanned))
	}

	type shardOut struct {
		res     []gnn.Result
		scanned int
	}
	outs := make([]shardOut, len(ix.shards))
	bound := relaxBound(st.Bound)
	// Errors are impossible here (the task never fails); ForEach is used
	// for its bounded fan-out and slot-deterministic output.
	_ = parallel.New(poolWidth(pool, len(ix.shards))).ForEach(context.Background(), len(ix.shards), func(s int) error {
		m := &gnn.MBM{Tree: ix.shards[s], Agg: agg}
		res, scanned := m.SearchBounded(query, k, bound)
		outs[s] = shardOut{res: res, scanned: scanned}
		return nil
	})

	merged := make([]gnn.Result, 0, k*2)
	for _, o := range outs {
		st.Scanned += o.scanned
		if o.scanned == 0 {
			st.PrunedShards++
		}
		merged = append(merged, o.res...)
	}
	// The global order is the same total order every path uses:
	// aggregate cost ascending, POI ID breaking ties.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Cost != merged[j].Cost {
			return merged[i].Cost < merged[j].Cost
		}
		return merged[i].Item.ID < merged[j].Item.ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	mScanned.Observe(float64(st.Scanned))
	if st.PrunedShards > 0 {
		mShardsPruned.Add(int64(st.PrunedShards))
	}
	return merged, st
}

// relaxBound widens a finite cutoff by a sliver of relative epsilon. The
// seed bound is the exact aggregate cost of a real POI, but node lower
// bounds are computed by different expressions (n·mindist for the MBM
// bound, per-point sums for the tight one) whose last-ulp rounding can
// land just above a true value they tie with exactly; a cutoff at the
// exact cost could then prune a node holding a boundary item. Widening
// admits at most the items within one part in 10^13 of the cutoff — they
// lose the exact (cost, ID) merge, so answers stay byte-identical — and
// makes the cutoff immune to rounding-order differences in the bounds.
func relaxBound(b float64) float64 {
	if math.IsInf(b, 1) {
		return b
	}
	return b * (1 + 1e-13)
}

// poolWidth resolves the fan-out for the per-shard searches: never wider
// than the shard count, never wider than the caller's pool (so a
// sequential LSP runs shards sequentially too).
func poolWidth(pool *parallel.Pool, shards int) int {
	w := parallel.Default().Workers()
	if pool != nil {
		w = pool.Workers()
	}
	if w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}
