package shard

import (
	"container/heap"
	"math"
	"sort"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/rtree"
)

// Grid is the hierarchical pruning stage in front of the shard trees: a
// uniform leaf grid of precomputed POI buckets (the APNN idiom from
// internal/baseline/apnn, generalized from cell-center answers to cell
// buckets) under a quadtree pyramid of occupancy counts. Its one job per
// query is to produce a cheap, correct upper bound on the k-th best
// aggregate cost — SeedBound — by collecting the POIs nearest the query
// centroid with a best-first descent of the pyramid. The bound is then
// fed to every shard's bounded MBM search as a cutoff, which is what
// caps per-query candidate work sub-linearly in database size.
//
// Correctness never depends on the grid's geometry: the bound is the
// exact aggregate cost of real POIs (the k-th smallest among >= k
// collected), so it always dominates the true k-th best, and the
// bounded search returns every POI at or under it. A degenerate grid —
// all POIs in one cell, POIs on cell borders, a single-cell grid — can
// only make the bound looser, never the answer wrong.
type Grid struct {
	space geo.Rect
	bits  int // leaf level: 1<<bits cells per axis
	// buckets holds the leaf cells' POIs, row-major at the leaf level.
	buckets [][]rtree.Item
	// counts[l] is the occupancy pyramid at level l (l cells per axis =
	// 1<<l): counts[bits] is the leaf occupancy, each coarser level sums
	// its four children, counts[0] is the total.
	counts [][]int
	total  int
}

// DefaultGridLeafTarget is the POIs-per-leaf-cell the grid resolution
// aims for. Smaller cells seed tighter bounds but cost more memory.
const DefaultGridLeafTarget = 8

// maxGridBits caps the leaf grid at 1024x1024 cells (~8 MB of bucket
// headers): past that, bucket residency is so small that finer cells no
// longer tighten the seed.
const maxGridBits = 10

// NewGrid builds the pyramid over the items. A nil or empty item set
// yields a grid whose SeedBound is +Inf (nothing to seed from).
func NewGrid(items []rtree.Item, space geo.Rect, leafTarget int) *Grid {
	if leafTarget <= 0 {
		leafTarget = DefaultGridLeafTarget
	}
	g := &Grid{space: space, total: len(items)}
	// Smallest power-of-two axis with ~leafTarget POIs per cell.
	for g.bits < maxGridBits && len(items) > (1<<(2*g.bits))*leafTarget {
		g.bits++
	}
	n := 1 << g.bits
	g.buckets = make([][]rtree.Item, n*n)
	for _, it := range items {
		cx, cy := g.cellOf(it.P)
		g.buckets[cy*n+cx] = append(g.buckets[cy*n+cx], it)
	}
	// Deterministic bucket order (items arrive in caller order; seeding
	// must not depend on it).
	for i := range g.buckets {
		b := g.buckets[i]
		sort.Slice(b, func(a, c int) bool { return b[a].ID < b[c].ID })
	}
	// Occupancy pyramid, leaf up.
	g.counts = make([][]int, g.bits+1)
	leaf := make([]int, n*n)
	for i, b := range g.buckets {
		leaf[i] = len(b)
	}
	g.counts[g.bits] = leaf
	for l := g.bits - 1; l >= 0; l-- {
		m := 1 << l
		cur := make([]int, m*m)
		below := g.counts[l+1]
		bn := 1 << (l + 1)
		for cy := 0; cy < m; cy++ {
			for cx := 0; cx < m; cx++ {
				cur[cy*m+cx] = below[(2*cy)*bn+2*cx] + below[(2*cy)*bn+2*cx+1] +
					below[(2*cy+1)*bn+2*cx] + below[(2*cy+1)*bn+2*cx+1]
			}
		}
		g.counts[l] = cur
	}
	return g
}

// Levels reports the pyramid depth (1 for a single-cell grid).
func (g *Grid) Levels() int { return g.bits + 1 }

// LeafCells reports the leaf cell count per axis.
func (g *Grid) LeafCells() int { return 1 << g.bits }

// cellOf maps a point to leaf-cell coordinates, clamped to the grid so
// border and (defensively) out-of-space points land in edge cells.
func (g *Grid) cellOf(p geo.Point) (cx, cy int) {
	n := 1 << g.bits
	fx := (p.X - g.space.Min.X) / g.space.Width()
	fy := (p.Y - g.space.Min.Y) / g.space.Height()
	cx = int(fx * float64(n))
	cy = int(fy * float64(n))
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= n {
		cx = n - 1
	}
	if cy >= n {
		cy = n - 1
	}
	return cx, cy
}

// cellRect is the rectangle of cell (cx, cy) at level l.
func (g *Grid) cellRect(l, cx, cy int) geo.Rect {
	m := float64(int(1) << l)
	w := g.space.Width() / m
	h := g.space.Height() / m
	return geo.Rect{
		Min: geo.Point{X: g.space.Min.X + float64(cx)*w, Y: g.space.Min.Y + float64(cy)*h},
		Max: geo.Point{X: g.space.Min.X + float64(cx+1)*w, Y: g.space.Min.Y + float64(cy+1)*h},
	}
}

// seedCell is one pyramid cell in the best-first collection frontier,
// keyed by the admissible aggregate-cost lower bound of its rectangle.
type seedCell struct {
	bound  float64
	level  int
	cx, cy int
}

type seedQueue []seedCell

func (q seedQueue) Len() int { return len(q) }
func (q seedQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	if q[i].level != q[j].level {
		return q[i].level < q[j].level
	}
	if q[i].cy != q[j].cy {
		return q[i].cy < q[j].cy
	}
	return q[i].cx < q[j].cx
}
func (q seedQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *seedQueue) Push(x interface{}) { *q = append(*q, x.(seedCell)) }
func (q *seedQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// seedOverscan is how many POIs past k the seed collects. The bound is
// the k-th smallest exact cost among the collected POIs, so a larger
// sample can only tighten it (the k-th smallest over a superset is never
// larger); 56 extra evaluations per query buys a bound close enough to
// the true k-th cost to keep the shard sweep under the single tree's
// scan count.
const seedOverscan = 56

// SeedBound returns an upper bound on the k-th best aggregate cost of
// query over the whole database, plus the number of POIs it evaluated to
// get it. It best-first descends the occupancy pyramid in ascending
// aggregate-cost lower-bound order — a coarse MBM over cells instead of
// R-tree nodes — so the collected sample concentrates in the region the
// true top-k live in, collects at least k (+overscan) POIs, and returns
// the k-th smallest exact cost among them: the k-th best over any subset
// dominates the k-th best over the whole set. Fewer than k POIs in the
// database means no bound exists: +Inf (the bounded search then scans
// exactly what the unbounded one would).
func (g *Grid) SeedBound(query []geo.Point, k int, agg gnn.Aggregate) (float64, int) {
	if g.total < k || k <= 0 || len(query) == 0 {
		return math.Inf(1), 0
	}
	need := k + seedOverscan
	pq := &seedQueue{}
	heap.Push(pq, seedCell{bound: 0, level: 0, cx: 0, cy: 0})
	var collected []rtree.Item
	for pq.Len() > 0 && len(collected) < need {
		e := heap.Pop(pq).(seedCell)
		if e.level == g.bits {
			collected = append(collected, g.buckets[(e.cy<<g.bits)+e.cx]...)
			continue
		}
		below := g.counts[e.level+1]
		bn := 1 << (e.level + 1)
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				cx, cy := 2*e.cx+dx, 2*e.cy+dy
				if below[cy*bn+cx] == 0 {
					continue
				}
				heap.Push(pq, seedCell{
					bound: agg.LowerBound(g.cellRect(e.level+1, cx, cy), query),
					level: e.level + 1,
					cx:    cx, cy: cy,
				})
			}
		}
	}
	if len(collected) < k {
		return math.Inf(1), len(collected)
	}
	costs := make([]float64, len(collected))
	for i, it := range collected {
		costs[i] = agg.Cost(it.P, query)
	}
	sort.Float64s(costs)
	return costs[k-1], len(collected)
}
