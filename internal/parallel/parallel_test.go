package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCoversAllIndices runs widths around the worker count and
// checks every index is visited exactly once with results landing in the
// slot the index owns (the determinism contract).
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			p := New(workers)
			out := make([]int, n)
			err := p.ForEach(context.Background(), n, func(i int) error {
				out[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range out {
				if out[i] != i*i {
					t.Fatalf("workers=%d n=%d: slot %d = %d, want %d", workers, n, i, out[i], i*i)
				}
			}
		}
	}
}

// TestForEachDeterministicVsSerial pins that a parallel run produces the
// byte-identical output of the serial run for the same inputs.
func TestForEachDeterministicVsSerial(t *testing.T) {
	const n = 257
	run := func(p *Pool) []string {
		out := make([]string, n)
		if err := p.ForEach(context.Background(), n, func(i int) error {
			out[i] = fmt.Sprintf("task-%04d", i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, par := run(New(1)), run(New(8))
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("slot %d: serial %q != parallel %q", i, serial[i], par[i])
		}
	}
}

// TestForEachFirstError checks the first failure is the returned error
// and that dispatch of new indices stops after it.
func TestForEachFirstError(t *testing.T) {
	sentinel := errors.New("task 5 failed")
	var started atomic.Int64
	p := New(4)
	err := p.ForEach(context.Background(), 10_000, func(i int) error {
		started.Add(1)
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	// Dispatch must stop well short of the full batch: the failing task
	// cancels, and each worker observes the cancel before its next pull.
	if s := started.Load(); s == 10_000 {
		t.Fatalf("all %d tasks ran despite an early error", s)
	}
}

// TestForEachSerialErrorStopsImmediately pins the inline path: with one
// worker, nothing after the failing index runs.
func TestForEachSerialErrorStopsImmediately(t *testing.T) {
	sentinel := errors.New("boom")
	var ran []int
	err := New(1).ForEach(context.Background(), 100, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v, want exactly [0 1 2 3]", ran)
	}
}

// TestForEachCancellation cancels mid-batch and requires a prompt return
// with the context's error and no leaked goroutines afterwards.
func TestForEachCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var inFlight sync.WaitGroup
	inFlight.Add(4)

	done := make(chan error, 1)
	go func() {
		done <- New(4).ForEach(ctx, 10_000, func(i int) error {
			if i < 4 {
				inFlight.Done()
				<-release // first wave blocks until the test releases it
			}
			return nil
		})
	}()

	inFlight.Wait() // all workers are mid-task
	cancel()
	close(release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return promptly after cancel")
	}

	// All worker goroutines must be joined. Allow the runtime a moment to
	// retire them before comparing counts.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestForEachPreCanceledContext runs nothing when the context is already
// dead — including on the serial inline path.
func TestForEachPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := New(workers).ForEach(ctx, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if r := ran.Load(); r != 0 {
			t.Fatalf("workers=%d: %d tasks ran under a pre-canceled context", workers, r)
		}
	}
}

// TestMapChunkedCoversRange checks chunks tile [0, n) exactly and respect
// the minimum chunk width.
func TestMapChunkedCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{1, 5, 64, 1001} {
			for _, minChunk := range []int{0, 1, 7, 50} {
				p := New(workers)
				seen := make([]int32, n)
				var mu sync.Mutex
				var widths []int
				err := p.MapChunked(context.Background(), n, minChunk, func(lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						return fmt.Errorf("bad chunk [%d, %d)", lo, hi)
					}
					mu.Lock()
					widths = append(widths, hi-lo)
					mu.Unlock()
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("workers=%d n=%d minChunk=%d: %v", workers, n, minChunk, err)
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d minChunk=%d: index %d visited %d times", workers, n, minChunk, i, c)
					}
				}
				want := minChunk
				if want < 1 {
					want = 1
				}
				for _, w := range widths {
					// Every chunk except possibly the last is >= minChunk;
					// the tail may be shorter only when n itself isn't a
					// multiple. Just require no chunk exceeds n.
					if w > n {
						t.Fatalf("chunk width %d exceeds n=%d", w, n)
					}
				}
				if want > 1 && n >= want && len(widths) > (n+want-1)/want {
					t.Fatalf("minChunk=%d n=%d produced %d chunks", minChunk, n, len(widths))
				}
			}
		}
	}
}

// TestNilPoolUsesDefault exercises the nil-receiver path batch APIs rely
// on, and SetDefaultWorkers' effect on it.
func TestNilPoolUsesDefault(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(2)
	if w := Default().Workers(); w != 2 {
		t.Fatalf("default workers = %d, want 2", w)
	}
	var p *Pool
	var ran atomic.Int64
	if err := p.ForEach(context.Background(), 10, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", ran.Load())
	}
	SetDefaultWorkers(0)
	if w := Default().Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers after reset = %d, want GOMAXPROCS=%d", w, runtime.GOMAXPROCS(0))
	}
}

// TestNewClampsWidth pins the GOMAXPROCS fallback.
func TestNewClampsWidth(t *testing.T) {
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0) workers = %d, want GOMAXPROCS", w)
	}
	if w := New(-3).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3) workers = %d, want GOMAXPROCS", w)
	}
	if w := New(7).Workers(); w != 7 {
		t.Fatalf("New(7) workers = %d, want 7", w)
	}
}
