// Cross-session micro-batch coalescer (DESIGN.md §15). Under open-loop
// traffic the LSP's homomorphic hot ops arrive as many small batches —
// one per admitted session — each paying its own goroutine spawn/join
// and leaving workers idle between flushes. The Coalescer merges the
// batch submissions of concurrently admitted sessions into single fleet
// dispatches: a bounded queue that flushes when the pending task count
// reaches a size bound or the oldest submission has waited ~1ms,
// whichever comes first.
//
// Correctness does not depend on the coalescer at all: a submission's
// tasks are the SAME closures the uncoalesced pool would have run, each
// still owning exactly one index of its own submission and writing only
// its own slot. All randomness in the crypto batch helpers is drawn
// serially on the submitting goroutine BEFORE the batch is submitted
// (the batch.go determinism contract), so interleaving tasks from
// different sessions cannot reorder any session's randomness and
// per-session outputs stay byte-identical to the uncoalesced path.
//
// Failure isolation is per submission: an error or panic in one
// session's task skips only that submission's remaining tasks; the
// error is returned (and a panic re-raised) on the submitting session's
// goroutine, so the transport layer's crash-budget accounting sees
// exactly what it would have seen without coalescing.
package parallel

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ppgnn/internal/obs"
)

// Telemetry (DESIGN.md §9, §15): flush trigger mix, micro-batch shape,
// queue wait, and inline fallbacks after Close.
var (
	mCoInline   = obs.Default().Counter("parallel_coalesce_inline_total")
	mCoTasks    = obs.Default().Histogram("parallel_coalesce_batch_tasks", obs.CountBuckets)
	mCoSessions = obs.Default().Histogram("parallel_coalesce_batch_sessions", obs.CountBuckets)
	mCoWait     = obs.Default().Histogram("parallel_coalesce_wait_seconds", obs.TimeBuckets)
	mCoBatches  = map[string]*obs.Counter{
		"size":     obs.Default().Counter("parallel_coalesce_batches_total", obs.L("trigger", "size")),
		"deadline": obs.Default().Counter("parallel_coalesce_batches_total", obs.L("trigger", "deadline")),
		"close":    obs.Default().Counter("parallel_coalesce_batches_total", obs.L("trigger", "close")),
	}
)

// CoalesceOptions tune the flush rules; zero values take the defaults
// documented on each field.
type CoalesceOptions struct {
	// MaxTasks flushes a micro-batch once the pending task count
	// reaches it. Default 4× the worker width: enough to keep every
	// worker busy through scheduler jitter without letting the queue
	// grow past one dispatch of useful work.
	MaxTasks int
	// MaxDelay bounds how long the oldest pending submission may wait
	// before a flush (default 1ms). This is the latency cost ceiling a
	// lone session pays for the chance of being merged.
	MaxDelay time.Duration
}

// Coalescer merges batch submissions from concurrent sessions into
// single dispatches. Create with NewCoalescer, hand sessions a Pool via
// Pool(), and Close when done (post-Close submissions run inline, so a
// draining server never deadlocks a late session).
type Coalescer struct {
	workers  int
	maxTasks int
	maxDelay time.Duration
	fallback *Pool // inline path after Close

	mu      sync.Mutex
	pending []*coSubmission
	tasks   int
	closed  bool

	kick chan struct{} // capacity 1: "state changed, re-evaluate"
	dead chan struct{} // closed when the dispatcher exits
}

// NewCoalescer starts a coalescer whose flushes run on a fleet of the
// given width (workers <= 0 means GOMAXPROCS). The caller owns the
// returned Coalescer and must Close it to stop the dispatcher.
func NewCoalescer(workers int, opts CoalesceOptions) *Coalescer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxTasks := opts.MaxTasks
	if maxTasks <= 0 {
		maxTasks = 4 * workers
	}
	maxDelay := opts.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Millisecond
	}
	c := &Coalescer{
		workers:  workers,
		maxTasks: maxTasks,
		maxDelay: maxDelay,
		fallback: New(workers),
		kick:     make(chan struct{}, 1),
		dead:     make(chan struct{}),
	}
	go c.dispatch()
	return c
}

// Pool returns a *Pool that routes every batch through the coalescer.
// It is freely copyable and shareable, like any Pool; the coalescer
// itself bounds concurrency, so the pool's width only caps the inline
// fallback after Close.
func (c *Coalescer) Pool() *Pool {
	return &Pool{workers: c.workers, co: c}
}

// Workers returns the width of the coalescer's dispatch fleet.
func (c *Coalescer) Workers() int { return c.workers }

// Close drains the queue (flushing any pending submissions with the
// "close" trigger), stops the dispatcher, and waits for it to exit.
// Submissions arriving after Close run inline on the caller's
// goroutine with uncoalesced semantics. Close is idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	<-c.dead
}

// coSubmission is one session's batch waiting in the queue. done is
// closed exactly once, after every task of the submission has either
// run or been skipped — submit's caller can then safely reuse any
// memory the tasks wrote.
type coSubmission struct {
	ctx  context.Context
	n    int
	fn   func(i int) error
	enq  time.Time
	done chan struct{}

	failed   atomic.Bool // set => skip this submission's remaining tasks
	once     sync.Once   // guards err/panicVal: first failure wins
	err      error
	panicVal any
}

func (s *coSubmission) fail(err error) {
	s.once.Do(func() { s.err = err })
	s.failed.Store(true)
}

func (s *coSubmission) failPanic(v any) {
	s.once.Do(func() { s.panicVal = v })
	s.failed.Store(true)
}

// submit enqueues one batch and blocks until every one of its tasks has
// run or been skipped. It returns the submission's first error, or
// re-raises its first panic on the calling goroutine so transport's
// session recover (and the crash-budget watchdog behind it) observes
// panics exactly as in the uncoalesced path.
func (c *Coalescer) submit(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sub := &coSubmission{ctx: ctx, n: n, fn: fn, enq: time.Now(), done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		mCoInline.Inc()
		return c.fallback.run(ctx, n, fn)
	}
	c.pending = append(c.pending, sub)
	c.tasks += n
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
	<-sub.done
	if sub.panicVal != nil {
		panic(sub.panicVal)
	}
	return sub.err
}

// dispatch is the single background goroutine that applies the flush
// rules: size first (a full dispatch of work is ready), close (drain),
// then the per-submission age deadline.
func (c *Coalescer) dispatch() {
	defer close(c.dead)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	defer func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
	}()
	for {
		c.mu.Lock()
		for len(c.pending) == 0 {
			if c.closed {
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			<-c.kick
			c.mu.Lock()
		}
		trigger := ""
		switch {
		case c.tasks >= c.maxTasks:
			trigger = "size"
		case c.closed:
			trigger = "close"
		default:
			wait := time.Until(c.pending[0].enq.Add(c.maxDelay))
			if wait <= 0 {
				trigger = "deadline"
			} else {
				c.mu.Unlock()
				// Stop-and-drain before Reset: the timer may hold an
				// undelivered tick from a previous wait.
				if timerLive && !timer.Stop() {
					<-timer.C
				}
				timer.Reset(wait)
				timerLive = true
				select {
				case <-timer.C:
					timerLive = false
				case <-c.kick:
				}
				continue
			}
		}
		subs, total := c.pending, c.tasks
		c.pending, c.tasks = nil, 0
		c.mu.Unlock()
		c.runBatch(subs, total, trigger)
	}
}

// runBatch executes one flushed micro-batch: the concatenation of every
// pending submission's index space, pulled by an atomic cursor across
// min(workers, total) goroutines. Task gi maps back to submission si
// and local index gi-offs[si]; a failed submission's remaining tasks
// are skipped, other submissions are untouched.
func (c *Coalescer) runBatch(subs []*coSubmission, total int, trigger string) {
	now := time.Now()
	for _, s := range subs {
		mCoWait.Observe(now.Sub(s.enq).Seconds())
	}
	mCoBatches[trigger].Inc()
	mCoTasks.Observe(float64(total))
	mCoSessions.Observe(float64(len(subs)))

	offs := make([]int, len(subs)+1)
	for i, s := range subs {
		offs[i+1] = offs[i] + s.n
	}
	runOne := func(gi int) {
		si := sort.Search(len(offs), func(i int) bool { return offs[i] > gi }) - 1
		s := subs[si]
		if s.failed.Load() {
			return
		}
		if err := s.ctx.Err(); err != nil {
			s.fail(err)
			return
		}
		defer func() {
			if v := recover(); v != nil {
				s.failPanic(v)
			}
		}()
		if err := runTask(gi-offs[si], s.fn); err != nil {
			s.fail(err)
		}
	}

	workers := c.workers
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for gi := 0; gi < total; gi++ {
			runOne(gi)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					gi := int(next.Add(1)) - 1
					if gi >= total {
						return
					}
					runOne(gi)
				}
			}()
		}
		wg.Wait()
	}
	for _, s := range subs {
		// Match Pool.run: a batch whose context expired reports the
		// context error even if every started task happened to finish.
		if !s.failed.Load() {
			if err := s.ctx.Err(); err != nil {
				s.fail(err)
			}
		}
		close(s.done)
	}
}
