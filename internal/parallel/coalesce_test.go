package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesceCoversAllIndices submits many concurrent batches and checks
// every submission sees each of its own indices exactly once, in its own
// index space — the cross-session isolation the determinism argument in
// coalesce.go rests on.
func TestCoalesceCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := NewCoalescer(workers, CoalesceOptions{})
		p := c.Pool()
		const sessions = 12
		outs := make([][]int, sessions)
		var wg sync.WaitGroup
		errs := make([]error, sessions)
		for s := 0; s < sessions; s++ {
			n := 1 + s%7
			outs[s] = make([]int, n)
			wg.Add(1)
			go func(s, n int) {
				defer wg.Done()
				errs[s] = p.ForEach(context.Background(), n, func(i int) error {
					outs[s][i] = s*1000 + i
					return nil
				})
			}(s, n)
		}
		wg.Wait()
		c.Close()
		for s, out := range outs {
			if errs[s] != nil {
				t.Fatalf("workers=%d session %d: %v", workers, s, errs[s])
			}
			for i, v := range out {
				if v != s*1000+i {
					t.Fatalf("workers=%d session %d slot %d = %d, want %d", workers, s, i, v, s*1000+i)
				}
			}
		}
	}
}

// TestCoalesceMatchesUncoalesced pins that, at width > 1 and with many
// sessions in flight (run under -race in CI), each session's output is
// byte-identical to the serial uncoalesced run of the same batch: the
// acceptance-criterion identity at the pool layer.
func TestCoalesceMatchesUncoalesced(t *testing.T) {
	const sessions, n = 16, 33
	want := func(s int) []string {
		out := make([]string, n)
		if err := New(1).ForEach(context.Background(), n, func(i int) error {
			out[i] = fmt.Sprintf("s%02d-task-%04d", s, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	c := NewCoalescer(4, CoalesceOptions{})
	defer c.Close()
	p := c.Pool()
	got := make([][]string, sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		got[s] = make([]string, n)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := p.ForEach(context.Background(), n, func(i int) error {
				got[s][i] = fmt.Sprintf("s%02d-task-%04d", s, i)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
	for s := 0; s < sessions; s++ {
		w := want(s)
		for i := range w {
			if got[s][i] != w[i] {
				t.Fatalf("session %d slot %d: coalesced %q != serial %q", s, i, got[s][i], w[i])
			}
		}
	}
}

// TestCoalesceErrorIsolation checks a failing submission returns its own
// first error while concurrent submissions complete untouched.
func TestCoalesceErrorIsolation(t *testing.T) {
	c := NewCoalescer(4, CoalesceOptions{})
	defer c.Close()
	p := c.Pool()
	sentinel := errors.New("session 3 task 2 failed")

	var wg sync.WaitGroup
	errs := make([]error, 8)
	oks := make([]atomic.Int64, 8)
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = p.ForEach(context.Background(), 10, func(i int) error {
				if s == 3 && i == 2 {
					return sentinel
				}
				oks[s].Add(1)
				return nil
			})
		}(s)
	}
	wg.Wait()
	for s := 0; s < 8; s++ {
		if s == 3 {
			if !errors.Is(errs[3], sentinel) {
				t.Fatalf("session 3 err = %v, want %v", errs[3], sentinel)
			}
			continue
		}
		if errs[s] != nil {
			t.Fatalf("session %d err = %v, want nil", s, errs[s])
		}
		if got := oks[s].Load(); got != 10 {
			t.Fatalf("session %d ran %d tasks, want 10", s, got)
		}
	}
}

// TestCoalescePanicIsolation checks a panicking task re-raises on its own
// submitter's goroutine (where transport's session recover lives) and
// does not take down the dispatcher or sibling submissions.
func TestCoalescePanicIsolation(t *testing.T) {
	c := NewCoalescer(4, CoalesceOptions{})
	defer c.Close()
	p := c.Pool()

	panicked := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { panicked <- recover() }()
		_ = p.ForEach(context.Background(), 4, func(i int) error {
			if i == 1 {
				panic("kaboom")
			}
			return nil
		})
	}()
	wg.Wait()
	if v := <-panicked; v != "kaboom" {
		t.Fatalf("submitter recovered %v, want kaboom", v)
	}

	// The coalescer must still serve new submissions after the panic.
	var ran atomic.Int64
	if err := p.ForEach(context.Background(), 5, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("post-panic batch ran %d tasks, want 5", ran.Load())
	}
}

// TestCoalescePreCanceledContext runs nothing under a dead context.
func TestCoalescePreCanceledContext(t *testing.T) {
	c := NewCoalescer(2, CoalesceOptions{})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := c.Pool().ForEach(ctx, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a pre-canceled context", ran.Load())
	}
}

// TestCoalesceCloseDrainsAndFallsBackInline pins Close semantics: pending
// work flushes, and post-Close submissions run inline with correct
// results rather than deadlocking on a dead dispatcher.
func TestCoalesceCloseDrainsAndFallsBackInline(t *testing.T) {
	c := NewCoalescer(2, CoalesceOptions{MaxDelay: time.Hour, MaxTasks: 1 << 20})
	var out [3]int
	done := make(chan error, 1)
	go func() {
		done <- c.Pool().ForEach(context.Background(), 3, func(i int) error {
			out[i] = i + 1
			return nil
		})
	}()
	// The huge MaxDelay/MaxTasks guarantee only Close can flush it.
	time.Sleep(20 * time.Millisecond)
	c.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if out != [3]int{1, 2, 3} {
		t.Fatalf("drained batch wrote %v", out)
	}

	var ran atomic.Int64
	if err := c.Pool().ForEach(context.Background(), 7, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 7 {
		t.Fatalf("inline fallback ran %d tasks, want 7", ran.Load())
	}
	c.Close() // idempotent
}

// TestCoalesceSizeTriggerMerges forces the size trigger and checks two
// sessions land in one dispatch (the merge the sustained gate banks on).
func TestCoalesceSizeTriggerMerges(t *testing.T) {
	c := NewCoalescer(2, CoalesceOptions{MaxTasks: 4, MaxDelay: time.Hour})
	defer c.Close()
	p := c.Pool()

	// Two 2-task submissions: neither alone reaches MaxTasks=4, so the
	// first must wait (MaxDelay is an hour) until the second arrives.
	var wg sync.WaitGroup
	var ran atomic.Int64
	start := time.Now()
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.ForEach(context.Background(), 2, func(i int) error {
				ran.Add(1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 4 {
		t.Fatalf("ran %d tasks, want 4", ran.Load())
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size trigger took %v; deadline path must not have fired", elapsed)
	}
}

// TestCoalesceDeadlineTriggerFlushesLoneSession checks a single session
// smaller than MaxTasks still completes within ~MaxDelay — the latency
// ceiling a lone session pays.
func TestCoalesceDeadlineTriggerFlushesLoneSession(t *testing.T) {
	c := NewCoalescer(2, CoalesceOptions{MaxTasks: 1 << 20, MaxDelay: 5 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	var ran atomic.Int64
	if err := c.Pool().ForEach(context.Background(), 3, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d tasks, want 3", ran.Load())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("lone session waited %v; deadline trigger is broken", elapsed)
	}
}

// TestCoalesceMapChunked routes the chunked API through the coalescer and
// checks exact tiling, as in the plain-pool test.
func TestCoalesceMapChunked(t *testing.T) {
	c := NewCoalescer(4, CoalesceOptions{})
	defer c.Close()
	p := c.Pool()
	const n = 1001
	seen := make([]int32, n)
	if err := p.MapChunked(context.Background(), n, 7, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestCoalesceNoGoroutineLeak closes a busy coalescer and requires the
// dispatcher and all dispatch-fleet goroutines to retire.
func TestCoalesceNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	c := NewCoalescer(4, CoalesceOptions{})
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Pool().ForEach(context.Background(), 16, func(i int) error { return nil })
		}()
	}
	wg.Wait()
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// FuzzCoalesceBatch feeds arbitrary interleavings — submission sizes,
// error injections, and pre-canceled contexts — through a shared
// coalescer and compares every submission against the serial oracle:
// clean submissions must see each index exactly once with the right
// value, failing submissions must return exactly their injected error,
// and no submission may ever touch another's output (ISSUE 10 CI
// satellite).
func FuzzCoalesceBatch(f *testing.F) {
	f.Add([]byte{3, 0, 5, 1, 2, 0})
	f.Add([]byte{1})
	f.Add([]byte{8, 8, 8, 8})
	f.Add([]byte{0, 255, 7, 130})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		c := NewCoalescer(3, CoalesceOptions{MaxTasks: 6, MaxDelay: time.Millisecond})
		defer c.Close()
		p := c.Pool()

		type sub struct {
			n        int
			errAt    int // -1: no injected error
			canceled bool
		}
		subs := make([]sub, len(data))
		for i, b := range data {
			n := int(b & 0x0f) // 0..15 tasks
			errAt := -1
			if b&0x10 != 0 && n > 0 {
				errAt = int(b>>5) % n
			}
			subs[i] = sub{n: n, errAt: errAt, canceled: b&0x80 != 0 && b&0x10 == 0}
		}

		sentinels := make([]error, len(subs))
		outs := make([][]int64, len(subs))
		errs := make([]error, len(subs))
		var wg sync.WaitGroup
		for s := range subs {
			sentinels[s] = fmt.Errorf("sub %d failed", s)
			outs[s] = make([]int64, subs[s].n)
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				ctx := context.Background()
				if subs[s].canceled {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				}
				errs[s] = p.ForEach(ctx, subs[s].n, func(i int) error {
					if i < 0 || i >= subs[s].n {
						t.Errorf("sub %d saw out-of-range index %d", s, i)
						return nil
					}
					if subs[s].errAt == i {
						return sentinels[s]
					}
					atomic.AddInt64(&outs[s][i], int64(s*1000+i+1))
					return nil
				})
			}(s)
		}
		wg.Wait()

		for s := range subs {
			switch {
			case subs[s].n == 0:
				if errs[s] != nil {
					t.Fatalf("sub %d (n=0) err = %v", s, errs[s])
				}
			case subs[s].canceled:
				if !errors.Is(errs[s], context.Canceled) {
					t.Fatalf("sub %d err = %v, want context.Canceled", s, errs[s])
				}
				for i, v := range outs[s] {
					if v != 0 {
						t.Fatalf("pre-canceled sub %d slot %d written (%d)", s, i, v)
					}
				}
			case subs[s].errAt >= 0:
				if !errors.Is(errs[s], sentinels[s]) {
					t.Fatalf("sub %d err = %v, want its own sentinel", s, errs[s])
				}
				// Slots that DID run must still hold only this sub's values.
				for i, v := range outs[s] {
					if v != 0 && v != int64(s*1000+i+1) {
						t.Fatalf("failing sub %d slot %d corrupted: %d", s, i, v)
					}
				}
			default:
				if errs[s] != nil {
					t.Fatalf("clean sub %d err = %v", s, errs[s])
				}
				for i, v := range outs[s] {
					if v != int64(s*1000+i+1) {
						t.Fatalf("clean sub %d slot %d = %d, want %d (exactly-once violated)",
							s, i, v, s*1000+i+1)
					}
				}
			}
		}
	})
}
