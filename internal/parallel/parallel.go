// Package parallel is the bounded, context-aware worker pool behind the
// homomorphic batch pipeline. Every expensive phase of Algorithm 1 —
// indicator encryption, the LSP's ⊙ dot-products and ⨂ selections over
// the δ' candidate answers, threshold share production and combination —
// reduces to independent modular exponentiations, so fanning a batch
// across GOMAXPROCS workers scales nearly linearly with cores without
// changing a single protocol byte (DESIGN.md §10 argues why this leaks
// nothing beyond the timing the threat model already permits).
//
// The helpers guarantee deterministic output ordering (each task owns its
// index and writes only its own slot) and first-error cancellation: once
// any task fails, no new task starts, in-flight tasks finish, and every
// worker goroutine is joined before the call returns — a helper never
// leaks goroutines, even when the context is canceled mid-batch.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppgnn/internal/obs"
)

// Pool bounds the concurrency of batch helpers. A Pool holds no
// goroutines or other resources — workers are spawned per batch and
// joined before the batch returns — so it is freely copyable, safe for
// concurrent use, and needs no Close. A pool obtained from
// Coalescer.Pool additionally routes every batch through the
// cross-session coalescer (coalesce.go); semantics are unchanged.
type Pool struct {
	workers int
	co      *Coalescer
}

// New returns a pool of the given width; workers <= 0 means GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's width.
func (p *Pool) Workers() int { return p.workers }

// Coalesced reports whether batches on this pool are routed through a
// cross-session coalescer (the "coalesced" trace attribute).
func (p *Pool) Coalesced() bool { return p != nil && p.co != nil }

// defaultPool is the process-wide pool used when callers pass a nil
// *Pool: GOMAXPROCS-wide unless SetDefaultWorkers overrides it (the
// -workers flag of cmd/ppgnn and cmd/ppgnn-lsp).
var defaultPool atomic.Pointer[Pool]

func init() { defaultPool.Store(New(0)) }

// Default returns the process-wide pool.
func Default() *Pool { return defaultPool.Load() }

// SetDefaultWorkers resizes the process-wide pool (n <= 0 restores the
// GOMAXPROCS default).
func SetDefaultWorkers(n int) { defaultPool.Store(New(n)) }

// orDefault resolves a possibly-nil pool, so batch APIs can take *Pool
// and treat nil as "the process default".
func (p *Pool) orDefault() *Pool {
	if p == nil {
		return Default()
	}
	return p
}

// Telemetry (DESIGN.md §9, §10): aggregate-only instruments with no
// labels, pre-bound so the hot path pays atomics, not registry lookups.
var (
	mDepth     = obs.Default().Gauge("parallel_pool_depth")
	mTaskSecs  = obs.Default().Histogram("parallel_task_seconds", obs.TimeBuckets)
	mBatchSize = obs.Default().Histogram("parallel_batch_size", obs.CountBuckets)
)

// ForEach runs fn(i) for every i in [0, n), at most Workers at a time,
// and returns after every started task has finished. The first error (or
// the context's, if it expires first) cancels dispatch of the remaining
// indices and is returned; output stays deterministic because task i
// writes only its own result slot. A width-1 pool runs inline with no
// goroutines, which is the serial baseline the bench gate compares
// against.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	p = p.orDefault()
	if n <= 0 {
		return nil
	}
	mBatchSize.Observe(float64(n))
	return p.run(ctx, n, fn)
}

// run is ForEach without the batch-size observation (MapChunked records
// the item count, not the chunk count). A coalescing pool hands the
// whole batch to the coalescer, which merges it with other sessions'
// pending batches; error, panic, and ordering semantics are identical.
func (p *Pool) run(ctx context.Context, n int, fn func(i int) error) error {
	if p.co != nil {
		return p.co.submit(ctx, n, fn)
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := runTask(i, fn); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runTask executes one task under the depth gauge and latency histogram.
func runTask(i int, fn func(i int) error) error {
	mDepth.Add(1)
	start := time.Now()
	err := fn(i)
	mTaskSecs.Observe(time.Since(start).Seconds())
	mDepth.Add(-1)
	return err
}

// chunksPerWorker oversubscribes MapChunked so a slow chunk cannot leave
// the other workers idle for the whole tail of the batch.
const chunksPerWorker = 4

// MapChunked runs fn(lo, hi) over contiguous chunks covering [0, n), each
// at least minChunk wide (minChunk <= 0 means 1). Chunking amortizes the
// per-task accounting when individual items are cheap relative to a full
// modular exponentiation — the Precomputer's randomness refill is the
// main consumer. Ordering, cancellation, and goroutine-join semantics are
// those of ForEach.
func (p *Pool) MapChunked(ctx context.Context, n, minChunk int, fn func(lo, hi int) error) error {
	p = p.orDefault()
	if n <= 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	mBatchSize.Observe(float64(n))
	chunk := (n + p.workers*chunksPerWorker - 1) / (p.workers * chunksPerWorker)
	if chunk < minChunk {
		chunk = minChunk
	}
	chunks := (n + chunk - 1) / chunk
	return p.run(ctx, chunks, func(ci int) error {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}
