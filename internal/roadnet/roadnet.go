// Package roadnet provides a road-network distance substrate. The paper's
// problem statement (Section 2.1) allows any metric — "e.g., Euclidean
// distance, road-network distance [38]" — and the protocol treats query
// answering as a black box, so a network-distance kGNN engine slots
// directly into the LSP (see examples/roadnetwork).
//
// The package contains a weighted undirected graph with Dijkstra shortest
// paths, a deterministic synthetic road-grid generator (a perturbed lattice
// with random diagonal shortcuts, standing in for a real road map the way
// the synthetic Sequoia substitute stands in for the real POI file), and a
// Searcher that answers group queries under the aggregate network distance.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/rtree"
)

// Graph is a weighted undirected graph embedded in the plane.
type Graph struct {
	nodes []geo.Point
	adj   [][]edge
	index *rtree.Tree // nodes indexed for nearest-node snapping
}

type edge struct {
	to int
	w  float64
}

// NewGraph builds a graph from node coordinates; AddEdge connects them.
func NewGraph(nodes []geo.Point) *Graph {
	items := make([]rtree.Item, len(nodes))
	for i, p := range nodes {
		items[i] = rtree.Item{ID: int64(i), P: p}
	}
	return &Graph{
		nodes: nodes,
		adj:   make([][]edge, len(nodes)),
		index: rtree.Bulk(items, rtree.DefaultMaxEntries),
	}
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// Node returns the coordinates of node i.
func (g *Graph) Node(i int) geo.Point { return g.nodes[i] }

// AddEdge connects a and b with weight equal to their Euclidean distance
// (road segments are straight here). Adding an existing edge is a no-op.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		return
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return
		}
	}
	w := g.nodes[a].Dist(g.nodes[b])
	g.adj[a] = append(g.adj[a], edge{to: b, w: w})
	g.adj[b] = append(g.adj[b], edge{to: a, w: w})
}

// NearestNode snaps a point to its closest graph node.
func (g *Graph) NearestNode(p geo.Point) int {
	nb := g.index.NearestK(p, 1)
	if len(nb) == 0 {
		panic("roadnet: empty graph")
	}
	return int(nb[0].Item.ID)
}

// ShortestDists runs Dijkstra from src and returns the network distance to
// every node (+Inf when unreachable).
func (g *Graph) ShortestDists(src int) []float64 {
	dist := make([]float64, len(g.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &nodeQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeEntry)
		if cur.dist > dist[cur.node] {
			continue
		}
		for _, e := range g.adj[cur.node] {
			if nd := cur.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, nodeEntry{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

// Dist returns the network distance between two points, snapping each to
// its nearest node and adding the snap offsets (a standard approximation).
func (g *Graph) Dist(a, b geo.Point) float64 {
	na, nb := g.NearestNode(a), g.NearestNode(b)
	d := g.ShortestDists(na)[nb]
	return a.Dist(g.nodes[na]) + d + b.Dist(g.nodes[nb])
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	for _, d := range g.ShortestDists(0) {
		if math.IsInf(d, 1) {
			return false
		}
	}
	return true
}

type nodeEntry struct {
	node int
	dist float64
}

type nodeQueue []nodeEntry

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeEntry)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// NewGrid generates a deterministic synthetic road network over the unit
// square: a cols×rows lattice with perturbed intersections, full
// horizontal/vertical streets, and a sprinkle of diagonal shortcuts. The
// result is always connected.
func NewGrid(seed int64, cols, rows int, perturb float64) *Graph {
	if cols < 2 || rows < 2 {
		panic(fmt.Sprintf("roadnet: grid %dx%d too small", cols, rows))
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]geo.Point, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			x := (float64(c) + 0.5) / float64(cols)
			y := (float64(r) + 0.5) / float64(rows)
			x += (rng.Float64() - 0.5) * perturb / float64(cols)
			y += (rng.Float64() - 0.5) * perturb / float64(rows)
			nodes[r*cols+c] = geo.UnitRect.Clamp(geo.Point{X: x, Y: y})
		}
	}
	g := NewGraph(nodes)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols {
				g.AddEdge(i, i+1)
			}
			if r+1 < rows {
				g.AddEdge(i, i+cols)
			}
			// Occasional diagonal shortcut (an expressway).
			if c+1 < cols && r+1 < rows && rng.Float64() < 0.15 {
				g.AddEdge(i, i+cols+1)
			}
		}
	}
	return g
}

// Searcher answers group queries under aggregate road-network distance: it
// runs one Dijkstra per query location and combines the per-POI distances
// with the aggregate. It implements gnn.Searcher and plugs into the LSP as
// the protocol's black box.
type Searcher struct {
	Graph *Graph
	Agg   gnn.Aggregate

	pois     []rtree.Item
	poiNodes []int // nearest graph node per POI, precomputed
	poiSnap  []float64
}

// NewSearcher snaps the POIs onto the graph once.
func NewSearcher(g *Graph, pois []rtree.Item, agg gnn.Aggregate) *Searcher {
	s := &Searcher{
		Graph: g, Agg: agg,
		pois:     pois,
		poiNodes: make([]int, len(pois)),
		poiSnap:  make([]float64, len(pois)),
	}
	for i, p := range pois {
		s.poiNodes[i] = g.NearestNode(p.P)
		s.poiSnap[i] = p.P.Dist(g.Node(s.poiNodes[i]))
	}
	return s
}

var _ gnn.Searcher = (*Searcher)(nil)

// Search returns the top-k POIs by aggregate network distance, ties broken
// by POI ID.
func (s *Searcher) Search(query []geo.Point, k int) []gnn.Result {
	if k <= 0 || len(query) == 0 || len(s.pois) == 0 {
		return nil
	}
	// One Dijkstra per user, reused for every POI.
	dists := make([][]float64, len(query))
	snaps := make([]float64, len(query))
	for i, q := range query {
		node := s.Graph.NearestNode(q)
		snaps[i] = q.Dist(s.Graph.Node(node))
		dists[i] = s.Graph.ShortestDists(node)
	}
	perUser := make([]float64, len(query))
	results := make([]gnn.Result, 0, len(s.pois))
	for pi, poi := range s.pois {
		ok := true
		for ui := range query {
			d := dists[ui][s.poiNodes[pi]]
			if math.IsInf(d, 1) {
				ok = false
				break
			}
			perUser[ui] = snaps[ui] + d + s.poiSnap[pi]
		}
		if !ok {
			continue
		}
		results = append(results, gnn.Result{Item: poi, Cost: s.Agg.Combine(perUser)})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Cost != results[j].Cost {
			return results[i].Cost < results[j].Cost
		}
		return results[i].Item.ID < results[j].Item.ID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}
