package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/rtree"
)

func TestGridConnected(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := NewGrid(seed, 10, 8, 0.5)
		if g.NodeCount() != 80 {
			t.Fatalf("node count %d", g.NodeCount())
		}
		if !g.Connected() {
			t.Fatalf("seed %d: grid not connected", seed)
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	a := NewGrid(5, 6, 6, 0.4)
	b := NewGrid(5, 6, 6, 0.4)
	for i := 0; i < a.NodeCount(); i++ {
		if a.Node(i) != b.Node(i) {
			t.Fatal("grid not deterministic")
		}
	}
}

func TestGridPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 1x1 grid")
		}
	}()
	NewGrid(1, 1, 1, 0)
}

// Dijkstra against Floyd–Warshall on a small random graph.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	nodes := make([]geo.Point, n)
	for i := range nodes {
		nodes[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g := NewGraph(nodes)
	// Random edges plus a spanning chain for connectivity.
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i)
	}
	for e := 0; e < 60; e++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	// Floyd–Warshall reference.
	fw := make([][]float64, n)
	for i := range fw {
		fw[i] = make([]float64, n)
		for j := range fw[i] {
			if i != j {
				fw[i][j] = math.Inf(1)
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, e := range g.adj[i] {
			if e.w < fw[i][e.to] {
				fw[i][e.to] = e.w
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := fw[i][k] + fw[k][j]; d < fw[i][j] {
					fw[i][j] = d
				}
			}
		}
	}
	for src := 0; src < n; src += 7 {
		got := g.ShortestDists(src)
		for dst := 0; dst < n; dst++ {
			if math.Abs(got[dst]-fw[src][dst]) > 1e-9 {
				t.Fatalf("dist(%d,%d) = %v, Floyd-Warshall %v", src, dst, got[dst], fw[src][dst])
			}
		}
	}
}

// Network distance can never beat the straight line between graph nodes.
func TestNetworkDistanceAtLeastEuclidean(t *testing.T) {
	g := NewGrid(3, 12, 12, 0.3)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		a := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		b := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		na, nb := g.NearestNode(a), g.NearestNode(b)
		netd := g.ShortestDists(na)[nb]
		if netd < g.Node(na).Dist(g.Node(nb))-1e-9 {
			t.Fatalf("network distance %v below Euclidean %v", netd, g.Node(na).Dist(g.Node(nb)))
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	g := NewGrid(11, 8, 8, 0.4)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		a := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		b := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		if d1, d2 := g.Dist(a, b), g.Dist(b, a); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("Dist not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := NewGraph([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 0) // self-loop: no-op
	if len(g.adj[0]) != 1 || len(g.adj[1]) != 1 {
		t.Fatalf("duplicate edges: %d, %d", len(g.adj[0]), len(g.adj[1]))
	}
}

// The searcher must match a brute-force evaluation of the same metric.
func TestSearcherMatchesBruteForce(t *testing.T) {
	g := NewGrid(17, 10, 10, 0.4)
	pois := dataset.Synthetic(21, 300)
	rng := rand.New(rand.NewSource(23))
	for _, agg := range []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min} {
		s := NewSearcher(g, pois, agg)
		for trial := 0; trial < 5; trial++ {
			query := make([]geo.Point, 1+rng.Intn(5))
			for i := range query {
				query[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
			}
			got := s.Search(query, 10)
			// Brute force: evaluate the identical snapped network metric.
			type scored struct {
				id   int64
				cost float64
			}
			var all []scored
			perUser := make([]float64, len(query))
			for _, poi := range pois {
				for ui, q := range query {
					perUser[ui] = g.Dist(q, poi.P)
				}
				all = append(all, scored{poi.ID, agg.Combine(perUser)})
			}
			for i := range got {
				// Find brute-force cost for this POI and ensure no POI beats it
				// that is ranked later.
				var mine float64
				for _, sc := range all {
					if sc.id == got[i].Item.ID {
						mine = sc.cost
					}
				}
				if math.Abs(mine-got[i].Cost) > 1e-9 {
					t.Fatalf("%v: cost mismatch for POI %d: %v vs %v", agg, got[i].Item.ID, got[i].Cost, mine)
				}
			}
			// Ranking: every returned cost ≤ every non-returned cost.
			maxRet := got[len(got)-1].Cost
			retIDs := map[int64]bool{}
			for _, r := range got {
				retIDs[r.Item.ID] = true
			}
			for _, sc := range all {
				if !retIDs[sc.id] && sc.cost < maxRet-1e-9 {
					t.Fatalf("%v: POI %d with cost %v should have been returned (max returned %v)",
						agg, sc.id, sc.cost, maxRet)
				}
			}
		}
	}
}

func TestSearcherEdgeCases(t *testing.T) {
	g := NewGrid(29, 4, 4, 0.2)
	s := NewSearcher(g, nil, gnn.Sum)
	if s.Search([]geo.Point{{X: 0.5, Y: 0.5}}, 3) != nil {
		t.Error("empty POI set should return nil")
	}
	s2 := NewSearcher(g, dataset.Synthetic(1, 10), gnn.Sum)
	if s2.Search(nil, 3) != nil {
		t.Error("empty query should return nil")
	}
	if s2.Search([]geo.Point{{X: 0.5, Y: 0.5}}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if got := s2.Search([]geo.Point{{X: 0.5, Y: 0.5}}, 100); len(got) != 10 {
		t.Errorf("k>size returned %d", len(got))
	}
}

func TestSearcherDisconnectedPOI(t *testing.T) {
	// A POI snapped to an unreachable island is skipped.
	nodes := []geo.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.1}, {X: 0.9, Y: 0.9}}
	g := NewGraph(nodes)
	g.AddEdge(0, 1) // node 2 is an island
	pois := []rtree.Item{
		{ID: 1, P: geo.Point{X: 0.15, Y: 0.1}},
		{ID: 2, P: geo.Point{X: 0.9, Y: 0.88}}, // snaps to the island
	}
	s := NewSearcher(g, pois, gnn.Sum)
	got := s.Search([]geo.Point{{X: 0.1, Y: 0.12}}, 5)
	if len(got) != 1 || got[0].Item.ID != 1 {
		t.Fatalf("expected only the reachable POI, got %v", got)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := NewGrid(1, 50, 50, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestDists(i % g.NodeCount())
	}
}

func BenchmarkRoadnetGroupSearch(b *testing.B) {
	g := NewGrid(1, 40, 40, 0.4)
	pois := dataset.Synthetic(2, 5000)
	s := NewSearcher(g, pois, gnn.Sum)
	query := []geo.Point{{X: 0.2, Y: 0.3}, {X: 0.7, Y: 0.6}, {X: 0.5, Y: 0.8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(query, 8)
	}
}
