package group

import (
	"errors"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/obs"
)

// Telemetry for group sessions. Every label value below comes from a
// closed enum in internal/obs — roster ids, session ids, and error
// strings never become labels (DESIGN.md §9).

// groupOutcome maps a session-level error to the closed "outcome" enum,
// recognising the group and transport taxonomies before falling back to
// the stdlib mapping.
func groupOutcome(err error) string {
	if err == nil {
		return "ok"
	}
	if errors.Is(err, core.ErrQuorumLost) {
		return "quorum_lost"
	}
	if errors.Is(err, core.ErrBadContribution) {
		return "bad_contribution"
	}
	var re *core.RemoteError
	if errors.As(err, &re) {
		switch re.Msg {
		case core.BusyMessage:
			return "busy"
		case core.DrainingMessage:
			return "drain"
		}
		return "remote"
	}
	return obs.Outcome(err)
}

// dropCause maps a member-removal reason to the closed "cause" enum.
// Equivocation is counted where it is detected (staleVerdict), so here a
// bad contribution is just "bad_contribution"; transport-level reasons
// fall through to obs.Cause.
func dropCause(err error) string {
	if errors.Is(err, core.ErrBadContribution) {
		return "bad_contribution"
	}
	if errors.Is(err, core.ErrQuorumLost) {
		return "quorum_lost"
	}
	return obs.Cause(err)
}

// countRound records one finished contribution or decryption round.
func (s *Session) countRound(kind string, start time.Time) {
	s.reg.Counter("group_rounds_total", obs.L("kind", kind)).Inc()
	s.reg.Histogram("group_round_seconds", obs.TimeBuckets, obs.L("kind", kind)).
		Observe(time.Since(start).Seconds())
}

// quorumLost counts a quorum failure and builds its typed error. phase is
// the QuorumError phase ("contribute" or "decrypt"); the metric label
// uses the FSM phase names from the closed enum.
func (s *Session) quorumLost(phase string, need, have int) error {
	label := "decrypt"
	if phase == "contribute" {
		label = "collect"
	}
	s.reg.Counter("group_quorum_lost_total", obs.L("phase", label)).Inc()
	return &core.QuorumError{Phase: phase, Need: need, Have: have, Total: s.n}
}
