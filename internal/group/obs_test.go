package group_test

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/group"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"
)

// runObservedSession runs one n=3 plain-mode session over real TCP member
// links, each link's connections impaired with the given faultnet latency,
// and returns the registry snapshot of its phase spans.
func runObservedSession(t *testing.T, latency time.Duration) *obs.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	locs := []geo.Point{
		{X: 0.2, Y: 0.3}, {X: 0.6, Y: 0.4}, {X: 0.5, Y: 0.8},
	}
	p := core.DefaultParams(3)
	p.KeyBits = 192
	p.D = 6
	p.Delta = 12
	p.K = 4
	p.Variant = core.VariantPPGNN
	p.NoSanitize = true
	coord, err := core.NewCoordinator(p, locs[0], rng)
	if err != nil {
		t.Fatal(err)
	}

	links := make([]group.Link, 2)
	for i := 0; i < 2; i++ {
		m := group.NewMember(locs[i+1], nil, rand.New(rand.NewSource(int64(i+10))))
		srv := transport.NewMemberServer(m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		link := group.DialMember(addr.String())
		if latency > 0 {
			sched := make([]faultnet.Faults, 8)
			for j := range sched {
				sched[j] = faultnet.Faults{Seed: int64(j), Latency: latency}
			}
			link.DialFunc = faultnet.Dialer(sched...)
		}
		t.Cleanup(func() { link.Close() })
		links[i] = link
	}

	reg := obs.NewRegistry()
	s, err := group.NewSession(coord, links, group.Config{
		MemberTimeout: 5 * time.Second,
		Seed:          11,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	lsp := core.NewLSP(dataset.Synthetic(5, 400), geo.UnitRect)
	if _, err := s.Run(ctx, core.LocalService{LSP: lsp}); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot()
}

// TestLatencyAppearsInPhaseSpans is the faultnet knob assertion: delay
// injected on the member links must show up in the collect phase's span
// durations. One contribution exchange pays the latency at least twice
// (request write + reply read), so the collect span of the impaired run
// must exceed the clean run's by at least that much.
func TestLatencyAppearsInPhaseSpans(t *testing.T) {
	const latency = 25 * time.Millisecond

	clean := runObservedSession(t, 0)
	slow := runObservedSession(t, latency)

	ok := obs.L("outcome", "ok")
	ph := obs.L("phase", "collect")
	cleanH := clean.Histogram("ppgnn_phase_seconds", ph, ok)
	slowH := slow.Histogram("ppgnn_phase_seconds", ph, ok)
	if cleanH == nil || slowH == nil {
		t.Fatalf("collect span missing: clean=%v slow=%v", cleanH, slowH)
	}
	if cleanH.Count != 1 || slowH.Count != 1 {
		t.Fatalf("collect span counts: clean=%d slow=%d, want 1 each", cleanH.Count, slowH.Count)
	}
	floor := (2 * latency).Seconds()
	if slowH.Sum < floor {
		t.Fatalf("impaired collect span %.4fs, want ≥ %.4fs (2× injected latency)", slowH.Sum, floor)
	}
	if slowH.Sum < cleanH.Sum+floor/2 {
		t.Fatalf("impaired collect span %.4fs not measurably above clean %.4fs", slowH.Sum, cleanH.Sum)
	}

	// The whole-session span must dominate its phases.
	sess := slow.Histogram("ppgnn_phase_seconds", obs.L("phase", "session"), ok)
	if sess == nil || sess.Sum < slowH.Sum {
		t.Fatalf("session span %v should envelop collect %.4fs", sess, slowH.Sum)
	}
}

// TestSoakTelemetry re-runs one crash-and-recover soak scenario with an
// isolated registry and checks the counters tell the story: a dropout
// with a recorded cause, a re-partition, two collect rounds, and a
// quorum-sized decrypt round.
func TestSoakTelemetry(t *testing.T) {
	r := newSoakRig(t)
	wrap := map[int]func(group.Handler) group.Handler{
		2: func(h group.Handler) group.Handler { return killHandler{h: h} },
	}
	links := r.startMembers(t, 600, wrap, map[int]func(addr string) (net.Conn, error){})

	reg := obs.NewRegistry()
	cfg := soakConfig(601)
	cfg.Obs = reg
	s, err := group.NewSession(r.coord, links, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Run(ctx, core.LocalService{LSP: r.lsp}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	var dropouts int64
	for _, c := range snap.Counters {
		if c.Name == "group_dropouts_total" {
			dropouts += c.Value
		}
	}
	if dropouts != 1 {
		t.Errorf("group_dropouts_total = %d, want 1", dropouts)
	}
	if got := snap.Counter("group_repartitions_total"); got != 1 {
		t.Errorf("group_repartitions_total = %d, want 1", got)
	}
	if got := snap.Counter("group_rounds_total", obs.L("kind", "collect")); got != 2 {
		t.Errorf("collect rounds = %d, want 2 (crash then re-partition)", got)
	}
	if got := snap.Counter("group_rounds_total", obs.L("kind", "decrypt")); got < 1 {
		t.Errorf("decrypt rounds = %d, want ≥ 1", got)
	}
	if got := snap.Counter("ppgnn_phase_total", obs.L("phase", "session"), obs.L("outcome", "ok")); got != 1 {
		t.Errorf("session ok total = %d, want 1", got)
	}
}
