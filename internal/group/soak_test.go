package group_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/group"
	"ppgnn/internal/paillier"
	"ppgnn/internal/transport"
)

// The soak runs real TCP member servers and kills members by panicking
// inside their handler: the server recovers, the connection dies, and the
// coordinator sees exactly what a crashed member process looks like.
type killHandler struct {
	h group.Handler
	// trig is the frame type that triggers the crash; 0 crashes on any
	// request (the member died before contributing).
	trig byte
}

func (k killHandler) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	if k.trig == 0 || msgType == k.trig {
		panic("soak: member killed")
	}
	return k.h.Handle(msgType, payload)
}

// soakRig is the long-lived half of the soak: one threshold key pair and
// one POI database shared by every run (keygen dominates otherwise).
type soakRig struct {
	p      core.Params
	lsp    *core.LSP
	coord  *core.Coordinator
	shares []*paillier.KeyShare
	locs   []geo.Point
}

func newSoakRig(t *testing.T) *soakRig {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	locs := make([]geo.Point, 5)
	for i := range locs {
		locs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	p := core.DefaultParams(5)
	p.KeyBits = 192 // correctness is size-independent; keygen dominates
	p.D = 6
	p.Delta = 12
	p.K = 6
	p.Variant = core.VariantPPGNN
	p.NoSanitize = true
	coord, shares, err := core.NewThresholdCoordinator(p, locs[0], rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	return &soakRig{
		p:      p,
		lsp:    core.NewLSP(dataset.Synthetic(123, 1500), geo.UnitRect),
		coord:  coord,
		shares: shares,
		locs:   locs,
	}
}

// startMembers brings up fresh member servers for one run. wrap[id], when
// present, intercepts that member's handler.
func (r *soakRig) startMembers(t *testing.T, seed int64, wrap map[int]func(group.Handler) group.Handler,
	dialers map[int]func(addr string) (net.Conn, error)) []group.Link {
	t.Helper()
	links := make([]group.Link, 4)
	for i := 0; i < 4; i++ {
		id := i + 1
		m := group.NewMember(r.locs[id], nil, rand.New(rand.NewSource(seed+int64(id))))
		m.TK, m.Share = r.coord.TK, r.shares[i]
		var h group.Handler = m
		if w, ok := wrap[id]; ok {
			h = w(m)
		}
		srv := transport.NewMemberServer(h)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		link := group.DialMember(addr.String())
		if d, ok := dialers[id]; ok {
			link.DialFunc = d
		}
		t.Cleanup(func() { link.Close() })
		links[i] = link
	}
	return links
}

func soakConfig(seed int64) group.Config {
	return group.Config{
		Quorum:        3,
		MemberTimeout: 2 * time.Second,
		Retries:       1,
		RetryBase:     2 * time.Millisecond,
		RetryMax:      20 * time.Millisecond,
		Seed:          seed,
	}
}

// TestSoakTwoCrashesMatchOracle kills 2 of the 4 members per run — before
// or during the partial-decryption phase, chosen by a per-run seed — and
// requires every surviving session to return exactly the plaintext kGNN
// answer for its contributors. A third member gets a flaky first dial on
// even runs, exercising retry against mid-frame connection resets.
func TestSoakTwoCrashesMatchOracle(t *testing.T) {
	r := newSoakRig(t)
	runs := 50
	if testing.Short() {
		runs = 8
	}
	for run := 0; run < runs; run++ {
		runRng := rand.New(rand.NewSource(int64(1000 + run)))
		perm := runRng.Perm(4)
		wrap := make(map[int]func(group.Handler) group.Handler)
		contribVictims := make([]int, 0, 2)
		for _, vi := range perm[:2] {
			id := vi + 1
			trig := byte(0) // crash before contributing
			if runRng.Intn(2) == 1 {
				trig = core.FramePartialReq // crash during partial decryption
			} else {
				contribVictims = append(contribVictims, id)
			}
			wrap[id] = func(h group.Handler) group.Handler { return killHandler{h: h, trig: trig} }
		}
		dialers := make(map[int]func(addr string) (net.Conn, error))
		if run%2 == 0 {
			// A survivor whose first connection resets mid-reply.
			dialers[perm[2]+1] = faultnet.Dialer(faultnet.Faults{Seed: int64(run), ReadResetAfter: 60})
		}

		links := r.startMembers(t, int64(5000+run*10), wrap, dialers)
		s, err := group.NewSession(r.coord, links, soakConfig(int64(7000+run)))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		out, err := s.Run(ctx, core.LocalService{LSP: r.lsp})
		cancel()
		if err != nil {
			t.Fatalf("run %d (victims %v): %v", run, perm[:2], err)
		}
		if len(out.Contributors) < 3 {
			t.Fatalf("run %d: %d contributors, want ≥ quorum 3", run, len(out.Contributors))
		}
		for _, id := range contribVictims {
			if _, ok := out.Ejected[id]; !ok {
				t.Fatalf("run %d: crashed member %d not in ejected set %v", run, id, out.Ejected)
			}
		}
		real := make([]geo.Point, len(out.Contributors))
		for i, id := range out.Contributors {
			real[i] = r.locs[id]
		}
		want := r.lsp.Search(real, r.p.K, gnn.Sum)
		if len(out.Result.Points) != len(want) {
			t.Fatalf("run %d: got %d POIs, want %d", run, len(out.Result.Points), len(want))
		}
		for i := range want {
			if out.Result.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("run %d rank %d: got %v, want oracle %v", run, i, out.Result.Points[i], want[i].Item.P)
			}
		}
	}
}

// TestSoakThreeCrashesLoseQuorum kills 3 of the 4 members: the roster can
// no longer field the quorum of 3 and the session must fail fast with the
// typed quorum error instead of hanging.
func TestSoakThreeCrashesLoseQuorum(t *testing.T) {
	r := newSoakRig(t)
	runRng := rand.New(rand.NewSource(424242))
	perm := runRng.Perm(4)
	wrap := make(map[int]func(group.Handler) group.Handler)
	for _, vi := range perm[:3] {
		wrap[vi+1] = func(h group.Handler) group.Handler { return killHandler{h: h} }
	}
	links := r.startMembers(t, 9000, wrap, nil)
	s, err := group.NewSession(r.coord, links, soakConfig(31337))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	out, err := s.Run(ctx, core.LocalService{LSP: r.lsp})
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrQuorumLost) {
		t.Fatalf("err=%v, want ErrQuorumLost", err)
	}
	if len(out.Ejected) < 3 {
		t.Fatalf("ejected=%v, want all three crashed members named", out.Ejected)
	}
	if elapsed > 15*time.Second {
		t.Fatalf("quorum loss took %v, want fast failure", elapsed)
	}
}
