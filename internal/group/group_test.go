package group

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
)

// Key sizes mirror the core tests: correctness is size-independent, and
// threshold keygen at 192 bits keeps joint-decryption tests fast.
const (
	testKeyBits          = 256
	testThresholdKeyBits = 192
)

func testLSP(nPOIs int) *core.LSP {
	return core.NewLSP(dataset.Synthetic(123, nPOIs), geo.UnitRect)
}

func testParams(n int, variant core.Variant) core.Params {
	p := core.DefaultParams(n)
	p.KeyBits = testKeyBits
	p.D = 6
	p.Delta = 12
	p.K = 6
	p.Variant = variant
	p.NoSanitize = true // exact oracle comparison
	return p
}

// fastCfg keeps fault tests quick: one attempt, short deadlines.
func fastCfg(quorum int) Config {
	return Config{
		Quorum:        quorum,
		MemberTimeout: 500 * time.Millisecond,
		Retries:       -1,
		RetryBase:     time.Millisecond,
		RetryMax:      5 * time.Millisecond,
		Seed:          42,
	}
}

// rig is a coordinator, its members, and the links between them.
type rig struct {
	p       core.Params
	lsp     *core.LSP
	coord   *core.Coordinator
	members []*Member
	links   []Link
	locs    []geo.Point
}

// newRig builds an in-process group of n users (coordinator + n−1
// members) over ProcLinks; thresholdT > 0 deals key shares.
func newRig(t *testing.T, n int, variant core.Variant, thresholdT int, seed int64) *rig {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	p := testParams(n, variant)
	var coord *core.Coordinator
	var shares []*paillier.KeyShare
	var err error
	if thresholdT > 0 {
		p.KeyBits = testThresholdKeyBits
		coord, shares, err = core.NewThresholdCoordinator(p, locs[0], rng, thresholdT)
	} else {
		coord, err = core.NewCoordinator(p, locs[0], rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{p: p, lsp: testLSP(2000), coord: coord, locs: locs}
	for i := 0; i < n-1; i++ {
		m := NewMember(locs[i+1], nil, rand.New(rand.NewSource(seed+int64(i)+1)))
		if thresholdT > 0 {
			m.TK, m.Share = coord.TK, shares[i]
		}
		r.members = append(r.members, m)
		r.links = append(r.links, NewProcLink(m))
	}
	return r
}

func (r *rig) service(m *cost.Meter) core.Service {
	return core.LocalService{LSP: r.lsp, Meter: m}
}

// checkOracle compares the session's answer against the plaintext kGNN
// oracle over the contributors' real locations.
func checkOracle(t *testing.T, r *rig, out *Outcome) {
	t.Helper()
	if out == nil || out.Result == nil {
		t.Fatal("no result")
	}
	real := make([]geo.Point, len(out.Contributors))
	for i, id := range out.Contributors {
		real[i] = r.locs[id]
	}
	want := r.lsp.Search(real, r.p.K, gnn.Sum)
	if len(out.Result.Points) != len(want) {
		t.Fatalf("got %d POIs, want %d", len(out.Result.Points), len(want))
	}
	for i := range want {
		if out.Result.Points[i].Dist(want[i].Item.P) > 1e-6 {
			t.Fatalf("rank %d: got %v, want %v", i, out.Result.Points[i], want[i].Item.P)
		}
	}
}

func TestSessionHappyPath(t *testing.T) {
	for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT, core.VariantNaive} {
		r := newRig(t, 4, variant, 0, 7)
		var m cost.Meter
		s, err := NewSession(r.coord, r.links, Config{Seed: 1, Meter: &m})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		out, err := s.Run(context.Background(), r.service(&m))
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if s.Phase() != PhaseDone {
			t.Fatalf("%v: phase %s, want done", variant, s.Phase())
		}
		if out.Rounds != 1 || len(out.Ejected) != 0 {
			t.Fatalf("%v: rounds=%d ejected=%v, want a clean single round", variant, out.Rounds, out.Ejected)
		}
		if len(out.Contributors) != 4 {
			t.Fatalf("%v: contributors %v, want all 4", variant, out.Contributors)
		}
		checkOracle(t, r, out)
		if m.Snapshot().IntraGroupBytes == 0 {
			t.Fatalf("%v: no intra-group bytes metered", variant)
		}
	}
}

// Re-running against the same long-lived members with the same seed (the
// documented recovery path after ErrQuorumLost) must not collide with the
// members' (session, round) reply caches: a seed-derived session id would
// make them replay contributions built for the previous run's positions,
// silently corrupting the answer.
func TestSessionRerunSameSeedFreshID(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 0, 47)
	var ids []uint64
	for run := 0; run < 2; run++ {
		s, err := NewSession(r.coord, r.links, Config{Seed: 5})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		ids = append(ids, s.id)
		out, err := s.Run(context.Background(), r.service(nil))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(out.Ejected) != 0 {
			t.Fatalf("run %d: ejected=%v, want none (honest members must not look equivocating)", run, out.Ejected)
		}
		checkOracle(t, r, out)
	}
	if ids[0] == ids[1] {
		t.Fatalf("same-seed sessions share id %d — member caches would replay", ids[0])
	}
}

func TestSessionSingleUse(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 0, 7)
	s, err := NewSession(r.coord, r.links, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), r.service(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), r.service(nil)); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

// deadLink fails every send immediately with a retryable error — a member
// whose endpoint is unreachable.
type deadLink struct{}

func (deadLink) Send(ctx context.Context, msgType byte, payload []byte) error {
	return core.Retryable(errors.New("link down"))
}

func (deadLink) Recv(ctx context.Context) (byte, []byte, error) {
	<-ctx.Done()
	return 0, nil, core.Retryable(ctx.Err())
}

func (deadLink) Reset()       {}
func (deadLink) Close() error { return nil }

func TestSessionDropoutRepartitions(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 0, 11)
	r.links[1] = deadLink{} // member 2 never answers
	s, err := NewSession(r.coord, r.links, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(context.Background(), r.service(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 2 {
		t.Fatalf("rounds=%d, want 2 (one re-partition)", out.Rounds)
	}
	wantContrib := []int{0, 1, 3}
	if len(out.Contributors) != len(wantContrib) {
		t.Fatalf("contributors %v, want %v", out.Contributors, wantContrib)
	}
	for i, id := range wantContrib {
		if out.Contributors[i] != id {
			t.Fatalf("contributors %v, want %v", out.Contributors, wantContrib)
		}
	}
	ferr, ok := out.Ejected[2]
	if !ok {
		t.Fatalf("ejected=%v, want member 2 recorded", out.Ejected)
	}
	if errors.Is(ferr, core.ErrBadContribution) {
		t.Fatalf("dropout misclassified as bad contribution: %v", ferr)
	}
	checkOracle(t, r, out)
}

func TestSessionQuorumLostFailsFast(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 0, 13)
	r.links[0] = deadLink{}
	r.links[2] = deadLink{}
	s, err := NewSession(r.coord, r.links, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out, err := s.Run(context.Background(), r.service(nil))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrQuorumLost) {
		t.Fatalf("err=%v, want ErrQuorumLost", err)
	}
	var qe *core.QuorumError
	if !errors.As(err, &qe) || qe.Phase != "contribute" || qe.Need != 3 {
		t.Fatalf("quorum error detail %+v", qe)
	}
	if s.Phase() != PhaseFailed {
		t.Fatalf("phase %s, want failed", s.Phase())
	}
	if len(out.Ejected) < 2 {
		t.Fatalf("ejected=%v, want both dead members named", out.Ejected)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("quorum loss took %v, want fast failure", elapsed)
	}
}

// mangler corrupts the member's contribution by dropping a point — a
// malformed (wrong set size) but well-encoded reply.
type mangler struct{ h Handler }

func (w mangler) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	rt, rp, err := w.h.Handle(msgType, payload)
	if err == nil && rt == core.FrameContrib {
		cm, cerr := core.UnmarshalContribution(rp)
		if cerr != nil {
			return rt, rp, err
		}
		cm.Set = cm.Set[:len(cm.Set)-1]
		rp = cm.Marshal()
	}
	return rt, rp, err
}

func TestSessionEjectsMalformedContribution(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 0, 17)
	r.links[2] = NewProcLink(mangler{r.members[2]})
	s, err := NewSession(r.coord, r.links, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(context.Background(), r.service(nil))
	if err != nil {
		t.Fatal(err)
	}
	ferr, ok := out.Ejected[3]
	if !ok || !errors.Is(ferr, core.ErrBadContribution) {
		t.Fatalf("ejected=%v, want member 3 ejected with ErrBadContribution", out.Ejected)
	}
	if out.Rounds != 2 {
		t.Fatalf("rounds=%d, want 2", out.Rounds)
	}
	checkOracle(t, r, out)
}

// equivLink replays the member's first contribution with one byte flipped
// whenever a later round asks again — an equivocating resubmission.
type equivLink struct {
	Link
	mu    sync.Mutex
	first []byte
}

func (l *equivLink) Recv(ctx context.Context) (byte, []byte, error) {
	typ, payload, err := l.Link.Recv(ctx)
	if err != nil || typ != core.FrameContrib {
		return typ, payload, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.first == nil {
		l.first = append([]byte(nil), payload...)
		return typ, payload, nil
	}
	forged := append([]byte(nil), l.first...)
	forged[len(forged)-1] ^= 0x01 // still decodes; coordinates differ
	return typ, forged, nil
}

func TestSessionEjectsEquivocation(t *testing.T) {
	r := newRig(t, 5, core.VariantPPGNN, 0, 19)
	r.links[0] = deadLink{} // member 1 drops, forcing a second round
	r.links[3] = &equivLink{Link: r.links[3]}
	s, err := NewSession(r.coord, r.links, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(context.Background(), r.service(nil))
	if err != nil {
		t.Fatal(err)
	}
	ferr, ok := out.Ejected[4]
	if !ok || !errors.Is(ferr, core.ErrBadContribution) {
		t.Fatalf("ejected=%v, want member 4 ejected with ErrBadContribution", out.Ejected)
	}
	if !strings.Contains(ferr.Error(), "equivocating") {
		t.Fatalf("ejection reason %q, want equivocation", ferr)
	}
	if out.Rounds != 3 {
		t.Fatalf("rounds=%d, want 3 (dropout, equivocation, success)", out.Rounds)
	}
	checkOracle(t, r, out)
}

func TestSessionThresholdJointDecryption(t *testing.T) {
	for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT} {
		r := newRig(t, 4, variant, 3, 23)
		s, err := NewSession(r.coord, r.links, Config{Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		out, err := s.Run(context.Background(), r.service(nil))
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if len(out.Ejected) != 0 {
			t.Fatalf("%v: ejected=%v, want none", variant, out.Ejected)
		}
		checkOracle(t, r, out)
	}
}

// partialDeath serves contributions normally but refuses partial
// decryptions — a member crashing between the two phases.
type partialDeath struct{ h Handler }

func (w partialDeath) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	if msgType == core.FramePartialReq {
		return core.FrameError, []byte("member crashed"), nil
	}
	return w.h.Handle(msgType, payload)
}

// delayPartial delays the member's decryption shares, ordering the
// session's receipt of replies deterministically in tests.
type delayPartial struct {
	Link
	d time.Duration
}

func (l delayPartial) Recv(ctx context.Context) (byte, []byte, error) {
	typ, payload, err := l.Link.Recv(ctx)
	if err == nil && typ == core.FramePartial {
		time.Sleep(l.d)
	}
	return typ, payload, err
}

func TestSessionThresholdSurvivesDecryptDropout(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 3, 29)
	r.links[1] = NewProcLink(partialDeath{r.members[1]})
	// Delay the healthy members so the crash is read before the quorum
	// completes and the ejection is recorded deterministically.
	r.links[0] = delayPartial{r.links[0], 50 * time.Millisecond}
	r.links[2] = delayPartial{r.links[2], 50 * time.Millisecond}
	s, err := NewSession(r.coord, r.links, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Run(context.Background(), r.service(nil))
	if err != nil {
		t.Fatal(err)
	}
	// The dead member contributed a location before crashing, so the
	// oracle covers all four users even though it missed decryption.
	if len(out.Contributors) != 4 {
		t.Fatalf("contributors %v, want all 4", out.Contributors)
	}
	if _, ok := out.Ejected[2]; !ok {
		t.Fatalf("ejected=%v, want member 2 recorded", out.Ejected)
	}
	checkOracle(t, r, out)
}

func TestSessionThresholdQuorumLostInDecrypt(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 3, 31)
	r.links[0] = NewProcLink(partialDeath{r.members[0]})
	r.links[2] = NewProcLink(partialDeath{r.members[2]})
	s, err := NewSession(r.coord, r.links, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background(), r.service(nil))
	if !errors.Is(err, core.ErrQuorumLost) {
		t.Fatalf("err=%v, want ErrQuorumLost", err)
	}
	var qe *core.QuorumError
	if !errors.As(err, &qe) || qe.Phase != "decrypt" {
		t.Fatalf("quorum error detail %+v", qe)
	}
}

// slowPartial withholds the member's decryption shares until the session
// gives up on it — a straggler in the decrypt phase.
type slowPartial struct{ Link }

func (l slowPartial) Recv(ctx context.Context) (byte, []byte, error) {
	typ, payload, err := l.Link.Recv(ctx)
	if err != nil || typ != core.FramePartial {
		return typ, payload, err
	}
	<-ctx.Done()
	return 0, nil, core.Retryable(ctx.Err())
}

func TestSessionThresholdCancelsStragglers(t *testing.T) {
	// T=2: the coordinator's own share plus any single member's completes
	// the decryption; the two stragglers must be cancelled, not ejected.
	r := newRig(t, 4, core.VariantPPGNN, 2, 37)
	r.links[0] = slowPartial{r.links[0]}
	r.links[2] = slowPartial{r.links[2]}
	s, err := NewSession(r.coord, r.links, Config{Quorum: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out, err := s.Run(context.Background(), r.service(nil))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ejected) != 0 {
		t.Fatalf("ejected=%v — stragglers must not lose their roster spot", out.Ejected)
	}
	if elapsed > DefaultMemberTimeout {
		t.Fatalf("session took %v, want completion without waiting out the stragglers", elapsed)
	}
	checkOracle(t, r, out)
}

func TestNewSessionValidation(t *testing.T) {
	r := newRig(t, 4, core.VariantPPGNN, 0, 41)
	if _, err := NewSession(r.coord, r.links[:2], Config{}); err == nil {
		t.Fatal("link/roster mismatch accepted")
	}
	if _, err := NewSession(r.coord, r.links, Config{Quorum: 5}); err == nil {
		t.Fatal("quorum above roster accepted")
	}
	rt := newRig(t, 4, core.VariantPPGNN, 3, 43)
	s, err := NewSession(rt.coord, rt.links, Config{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Quorum() != 3 {
		t.Fatalf("quorum=%d, want raised to the key threshold 3", s.Quorum())
	}
}
