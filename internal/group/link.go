// Package group runs the intra-group phases of Algorithm 1 against n
// independent member endpoints instead of shared memory. A coordinator-
// side Session fans requests out to the members over Links, validates
// every contribution on receipt, and completes as soon as a quorum of
// members responds — dropouts are ejected, stragglers cancelled, and a
// roster that shrinks below the quorum fails fast with core.ErrQuorumLost
// (see DESIGN.md §8).
package group

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/wire"
)

// Link is one coordinator↔member channel. Send dispatches a request
// frame; Recv returns the next reply frame, which may answer an earlier
// request (links do not correlate — the session matches replies by their
// echoed session/round). Errors a retry can outlast are marked with
// core.Retryable. A Link is used by one session goroutine at a time.
type Link interface {
	Send(ctx context.Context, msgType byte, payload []byte) error
	Recv(ctx context.Context) (msgType byte, payload []byte, err error)
	// Reset discards transport state after a failed exchange, so a retry
	// starts clean (a NetLink drops its connection and redials).
	Reset()
	Close() error
}

// Handler is the member-side request processor: one reply frame per
// request frame. A returned error is delivered to the coordinator as a
// FrameError payload. Implementations must be safe for concurrent use —
// a member may serve several coordinator connections.
type Handler interface {
	Handle(msgType byte, payload []byte) (respType byte, resp []byte, err error)
}

// ProcLink runs a Handler in-process: Send hands the request to the
// handler on a fresh goroutine, Recv delivers the queued replies. The
// queue is bounded; replies beyond the bound are dropped, which the
// session experiences as loss and retries — exactly how an overloaded
// member behaves on a real link.
type ProcLink struct {
	H       Handler
	replies chan procFrame

	mu     sync.Mutex
	closed bool
}

type procFrame struct {
	typ     byte
	payload []byte
}

// NewProcLink wraps a Handler as an in-process Link.
func NewProcLink(h Handler) *ProcLink {
	return &ProcLink{H: h, replies: make(chan procFrame, 16)}
}

// Send implements Link.
func (l *ProcLink) Send(ctx context.Context, msgType byte, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return core.Retryable(err)
	}
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return fmt.Errorf("group: link closed")
	}
	if msgType == core.FrameTrace {
		// Trace-context frames are one-way: absorbed without a reply, so
		// the session's request/reply pairing stays intact and handlers
		// never see a frame type they predate.
		return nil
	}
	go func() {
		rt, rp, err := l.H.Handle(msgType, payload)
		if err != nil {
			rt, rp = core.FrameError, []byte(err.Error())
		}
		select {
		case l.replies <- procFrame{typ: rt, payload: rp}:
		default: // queue full: the reply is lost, like a dropped packet
		}
	}()
	return nil
}

// Recv implements Link.
func (l *ProcLink) Recv(ctx context.Context) (byte, []byte, error) {
	select {
	case f := <-l.replies:
		return f.typ, f.payload, nil
	case <-ctx.Done():
		return 0, nil, core.Retryable(ctx.Err())
	}
}

// Reset implements Link. Queued replies are kept: they carry their round
// and are skipped as stale by the session if outdated.
func (l *ProcLink) Reset() {}

// Close implements Link.
func (l *ProcLink) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return nil
}

// NetLink reaches a member over a net.Conn, dialing lazily and redialing
// after Reset. Cancellation of a blocked Recv is implemented by forcing
// the connection's read deadline into the past.
type NetLink struct {
	Addr string
	// DialFunc replaces net.Dial (tests inject faultnet dialers).
	DialFunc func(addr string) (net.Conn, error)

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DialMember returns a NetLink to a member endpoint.
func DialMember(addr string) *NetLink { return &NetLink{Addr: addr} }

func (l *NetLink) get() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("group: link to %s closed", l.Addr)
	}
	if l.conn != nil {
		return l.conn, nil
	}
	dial := l.DialFunc
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(l.Addr)
	if err != nil {
		return nil, core.Retryable(fmt.Errorf("group: dial member %s: %w", l.Addr, err))
	}
	l.conn = conn
	return conn, nil
}

// Send implements Link.
func (l *NetLink) Send(ctx context.Context, msgType byte, payload []byte) error {
	conn, err := l.get()
	if err != nil {
		return err
	}
	if err := wire.WriteFrameCtx(ctx, conn, msgType, payload); err != nil {
		l.Reset()
		return core.Retryable(fmt.Errorf("group: sending to member %s: %w", l.Addr, err))
	}
	return nil
}

// Recv implements Link.
func (l *NetLink) Recv(ctx context.Context) (byte, []byte, error) {
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	if conn == nil {
		return 0, nil, core.Retryable(fmt.Errorf("group: no connection to member %s", l.Addr))
	}
	// Watcher: a cancel without a deadline must still unblock the read.
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.SetReadDeadline(time.Unix(1, 0))
		case <-done:
		}
	}()
	typ, payload, err := wire.ReadFrameCtx(ctx, conn)
	close(done)
	if err != nil {
		l.Reset()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		}
		return 0, nil, core.Retryable(fmt.Errorf("group: receiving from member %s: %w", l.Addr, err))
	}
	return typ, payload, nil
}

// Reset implements Link: the connection is dropped (any stale bytes die
// with it) and the next Send redials.
func (l *NetLink) Reset() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
}

// Close implements Link.
func (l *NetLink) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.conn != nil {
		err := l.conn.Close()
		l.conn = nil
		return err
	}
	return nil
}

// ServeConn runs the member side of a link: a read-request/write-reply
// loop until the connection fails or the coordinator hangs up.
func ServeConn(conn net.Conn, h Handler) error {
	for {
		typ, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		if typ == core.FrameTrace {
			// One-way trace announcement: no reply (see ProcLink.Send).
			continue
		}
		rt, rp, err := h.Handle(typ, payload)
		if err != nil {
			rt, rp = core.FrameError, []byte(err.Error())
		}
		if err := wire.WriteFrame(conn, rt, rp); err != nil {
			return err
		}
	}
}
