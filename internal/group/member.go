package group

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dummy"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
)

// Member is the member-side protocol logic: it answers ContribRequests
// with d-anonymous location sets and, when it holds a key share,
// PartialRequests with decryption shares. It implements Handler and can
// sit behind a ProcLink (in-process) or ServeConn (TCP).
//
// Replies are idempotent: a repeated request for the same (session,
// round, slot) returns byte-identical bytes, so a coordinator retry after
// a lost reply cannot make an honest member look equivocating.
//
// Dummy locations are cached per session: across re-partition rounds the
// member re-sends the same dummy multiset with only the real location
// moved to the newly requested position. Fresh dummies every round would
// recreate the multi-query intersection attack inside a single session —
// the real location would be the only point recurring across rounds (see
// Group.CacheSets for the cross-query analogue).
type Member struct {
	Loc geo.Point
	Gen dummy.Generator
	Rng *rand.Rand

	// TK and Share are set in threshold mode.
	TK    *paillier.ThresholdKey
	Share *paillier.KeyShare

	mu      sync.Mutex
	dummies map[dummyKey][]geo.Point
	replies map[replyKey][]byte
}

type dummyKey struct {
	session uint64
	size    int
}

type replyKey struct {
	session uint64
	round   int
	kind    byte
}

// NewMember returns a member at loc drawing dummies with gen (uniform
// when nil) and randomness from rng (time-seeded when nil).
func NewMember(loc geo.Point, gen dummy.Generator, rng *rand.Rand) *Member {
	if gen == nil {
		gen = dummy.Uniform{}
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Member{
		Loc: loc, Gen: gen, Rng: rng,
		dummies: make(map[dummyKey][]geo.Point),
		replies: make(map[replyKey][]byte),
	}
}

// Handle implements Handler.
func (m *Member) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case core.FrameContribReq:
		return m.contribute(payload)
	case core.FramePartialReq:
		return m.partial(payload)
	default:
		return core.FrameError, []byte(fmt.Sprintf("group: unexpected frame type %d", msgType)), nil
	}
}

func (m *Member) contribute(payload []byte) (byte, []byte, error) {
	req, err := core.UnmarshalContribRequest(payload)
	if err != nil {
		return core.FrameError, []byte(err.Error()), nil
	}
	if !req.Space.Contains(m.Loc) {
		return core.FrameError, []byte("group: member location outside the service space"), nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rk := replyKey{session: req.Session, round: req.Round, kind: core.FrameContrib}
	if b, ok := m.replies[rk]; ok {
		return core.FrameContrib, b, nil
	}
	// One dummy multiset per (session, set size); the real location slots
	// into the requested position.
	dk := dummyKey{session: req.Session, size: req.SetSize}
	dums, ok := m.dummies[dk]
	if !ok {
		set := m.Gen.LocationSet(m.Rng, m.Loc, req.SetSize, 0, req.Space)
		dums = set[1:]
		m.dummies[dk] = dums
	}
	set := make([]geo.Point, 0, req.SetSize)
	set = append(set, dums[:req.Pos]...)
	set = append(set, m.Loc)
	set = append(set, dums[req.Pos:]...)
	msg := &core.ContributionMsg{Session: req.Session, Round: req.Round, Slot: req.Slot, Set: set}
	b := msg.Marshal()
	m.replies[rk] = b
	return core.FrameContrib, b, nil
}

func (m *Member) partial(payload []byte) (byte, []byte, error) {
	req, err := core.UnmarshalPartialRequest(payload)
	if err != nil {
		return core.FrameError, []byte(err.Error()), nil
	}
	if m.TK == nil || m.Share == nil {
		return core.FrameError, []byte("group: member holds no key share"), nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rk := replyKey{session: req.Session, round: req.Round, kind: core.FramePartial}
	if b, ok := m.replies[rk]; ok {
		return core.FramePartial, b, nil
	}
	shares := make([]*big.Int, len(req.Cts))
	for i, ct := range req.Cts {
		ds, err := m.TK.PartialDecrypt(m.Share, &paillier.Ciphertext{C: ct, S: req.Degree})
		if err != nil {
			return core.FrameError, []byte(fmt.Sprintf("group: partial decryption of element %d: %v", i, err)), nil
		}
		shares[i] = ds.Value
	}
	msg := &core.PartialMsg{
		Session: req.Session, Round: req.Round,
		Index: m.Share.Index, Degree: req.Degree, KeyBytes: req.KeyBytes,
		Shares: shares,
	}
	b := msg.Marshal()
	m.replies[rk] = b
	return core.FramePartial, b, nil
}

var _ Handler = (*Member)(nil)
