package group

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dummy"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
)

// Cache bounds protecting a long-lived member from a hostile or
// crash-looping coordinator that opens sessions (or invents rounds)
// without end. A protocol-conformant session needs at most n − t + 1
// contribution rounds plus MaxS decryption rounds and a handful of
// distinct set sizes, so honest traffic never comes near these caps.
const (
	// DefaultMaxSessions is the number of concurrently cached sessions
	// when Member.MaxSessions is zero; least-recently-used sessions are
	// evicted beyond it.
	DefaultMaxSessions = 16
	// maxSessionReplies caps cached replies within one session; requests
	// for further rounds are rejected with a FrameError.
	maxSessionReplies = 128
	// maxSessionSizes caps distinct dummy-set sizes within one session.
	// Rejecting (rather than evicting) beyond the cap preserves the
	// idempotency guarantee: an evicted multiset would be regenerated
	// differently, making an honest member look equivocating.
	maxSessionSizes = 32
)

// Member is the member-side protocol logic: it answers ContribRequests
// with d-anonymous location sets and, when it holds a key share,
// PartialRequests with decryption shares. It implements Handler and can
// sit behind a ProcLink (in-process) or ServeConn (TCP).
//
// Replies are idempotent: a repeated request for the same (session,
// round, slot) returns byte-identical bytes, so a coordinator retry after
// a lost reply cannot make an honest member look equivocating.
//
// Dummy locations are cached per session: across re-partition rounds the
// member re-sends the same dummy multiset with only the real location
// moved to the newly requested position. Fresh dummies every round would
// recreate the multi-query intersection attack inside a single session —
// the real location would be the only point recurring across rounds (see
// Group.CacheSets for the cross-query analogue).
//
// All per-session state is bounded: at most MaxSessions sessions are
// tracked (LRU-evicted), each holding at most maxSessionReplies replies
// and maxSessionSizes dummy multisets, so no coordinator can grow a
// member's memory without bound.
type Member struct {
	Loc geo.Point
	Gen dummy.Generator
	Rng *rand.Rand

	// TK and Share are set in threshold mode.
	TK    *paillier.ThresholdKey
	Share *paillier.KeyShare

	// MaxSessions caps concurrently cached sessions (0 =
	// DefaultMaxSessions).
	MaxSessions int

	mu       sync.Mutex
	sessions map[uint64]*memberSession
	order    []uint64 // session LRU order, oldest first
}

// memberSession is one session's cached state: the dummy multisets that
// keep contributions consistent across re-partition rounds, and the
// replies that keep retries idempotent.
type memberSession struct {
	dummies map[int][]geo.Point // set size → dummy multiset
	replies map[memberReplyKey][]byte
}

type memberReplyKey struct {
	round int
	kind  byte
}

// NewMember returns a member at loc drawing dummies with gen (uniform
// when nil) and randomness from rng (time-seeded when nil).
func NewMember(loc geo.Point, gen dummy.Generator, rng *rand.Rand) *Member {
	if gen == nil {
		gen = dummy.Uniform{}
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return &Member{
		Loc: loc, Gen: gen, Rng: rng,
		sessions: make(map[uint64]*memberSession),
	}
}

// session returns id's cached state, creating it (and LRU-evicting the
// oldest session beyond the cap) as needed. Callers hold m.mu.
func (m *Member) session(id uint64) *memberSession {
	if ss, ok := m.sessions[id]; ok {
		// Move id to the most-recently-used end.
		for i, v := range m.order {
			if v == id {
				m.order = append(append(m.order[:i:i], m.order[i+1:]...), id)
				break
			}
		}
		return ss
	}
	max := m.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	for len(m.sessions) >= max {
		delete(m.sessions, m.order[0])
		m.order = m.order[1:]
	}
	ss := &memberSession{
		dummies: make(map[int][]geo.Point),
		replies: make(map[memberReplyKey][]byte),
	}
	m.sessions[id] = ss
	m.order = append(m.order, id)
	return ss
}

// reply caches b for (round, kind), enforcing the per-session bound.
func (ss *memberSession) reply(round int, kind byte, b []byte) (byte, []byte, error) {
	if len(ss.replies) >= maxSessionReplies {
		return core.FrameError, []byte("group: session round budget exhausted"), nil
	}
	ss.replies[memberReplyKey{round: round, kind: kind}] = b
	return kind, b, nil
}

// Handle implements Handler.
func (m *Member) Handle(msgType byte, payload []byte) (byte, []byte, error) {
	switch msgType {
	case core.FrameContribReq:
		return m.contribute(payload)
	case core.FramePartialReq:
		return m.partial(payload)
	default:
		return core.FrameError, []byte(fmt.Sprintf("group: unexpected frame type %d", msgType)), nil
	}
}

func (m *Member) contribute(payload []byte) (byte, []byte, error) {
	req, err := core.UnmarshalContribRequest(payload)
	if err != nil {
		return core.FrameError, []byte(err.Error()), nil
	}
	if !req.Space.Contains(m.Loc) {
		return core.FrameError, []byte("group: member location outside the service space"), nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ss := m.session(req.Session)
	if b, ok := ss.replies[memberReplyKey{round: req.Round, kind: core.FrameContrib}]; ok {
		return core.FrameContrib, b, nil
	}
	// One dummy multiset per (session, set size); the real location slots
	// into the requested position.
	dums, ok := ss.dummies[req.SetSize]
	if !ok {
		if len(ss.dummies) >= maxSessionSizes {
			return core.FrameError, []byte("group: session set-size budget exhausted"), nil
		}
		set := m.Gen.LocationSet(m.Rng, m.Loc, req.SetSize, 0, req.Space)
		dums = set[1:]
		ss.dummies[req.SetSize] = dums
	}
	set := make([]geo.Point, 0, req.SetSize)
	set = append(set, dums[:req.Pos]...)
	set = append(set, m.Loc)
	set = append(set, dums[req.Pos:]...)
	msg := &core.ContributionMsg{Session: req.Session, Round: req.Round, Slot: req.Slot, Set: set}
	return ss.reply(req.Round, core.FrameContrib, msg.Marshal())
}

func (m *Member) partial(payload []byte) (byte, []byte, error) {
	req, err := core.UnmarshalPartialRequest(payload)
	if err != nil {
		return core.FrameError, []byte(err.Error()), nil
	}
	if m.TK == nil || m.Share == nil {
		return core.FrameError, []byte("group: member holds no key share"), nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ss := m.session(req.Session)
	if b, ok := ss.replies[memberReplyKey{round: req.Round, kind: core.FramePartial}]; ok {
		return core.FramePartial, b, nil
	}
	shares := make([]*big.Int, len(req.Cts))
	for i, ct := range req.Cts {
		ds, err := m.TK.PartialDecrypt(m.Share, &paillier.Ciphertext{C: ct, S: req.Degree})
		if err != nil {
			return core.FrameError, []byte(fmt.Sprintf("group: partial decryption of element %d: %v", i, err)), nil
		}
		shares[i] = ds.Value
	}
	msg := &core.PartialMsg{
		Session: req.Session, Round: req.Round,
		Index: m.Share.Index, Degree: req.Degree, KeyBytes: req.KeyBytes,
		Shares: shares,
	}
	return ss.reply(req.Round, core.FramePartial, msg.Marshal())
}

var _ Handler = (*Member)(nil)
