package group_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/group"
	"ppgnn/internal/obs"
)

// TestSessionTraceTree runs one quorum session over in-process member
// links and proves the coordinator's flight recorder retains the full
// phase tree — session covering collect (with its partition sub-span),
// query, and decrypt — with LSP attributes bucketed on the query span
// and the root's wall time accounting for its children.
func TestSessionTraceTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	locs := []geo.Point{{X: 0.2, Y: 0.3}, {X: 0.6, Y: 0.4}, {X: 0.5, Y: 0.8}}
	p := core.DefaultParams(3)
	p.KeyBits = 192
	p.D = 6
	p.Delta = 12
	p.K = 4
	p.Variant = core.VariantPPGNN
	coord, err := core.NewCoordinator(p, locs[0], rng)
	if err != nil {
		t.Fatal(err)
	}
	links := make([]group.Link, 2)
	for i := 0; i < 2; i++ {
		m := group.NewMember(locs[i+1], nil, rand.New(rand.NewSource(int64(i+10))))
		links[i] = group.NewProcLink(m)
	}
	reg := obs.NewRegistry()
	s, err := group.NewSession(coord, links, group.Config{
		MemberTimeout: 5 * time.Second,
		Seed:          11,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	lsp := core.NewLSP(dataset.Synthetic(5, 400), geo.UnitRect)
	if _, err := s.Run(context.Background(), core.LocalService{LSP: lsp}); err != nil {
		t.Fatal(err)
	}

	snaps := reg.Recorder().Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("recorder retained %d traces, want 1", len(snaps))
	}
	root := snaps[0].Root
	if root.Phase != "session" || root.Outcome != "ok" {
		t.Fatalf("root = %s/%s", root.Phase, root.Outcome)
	}
	byPhase := map[string]*obs.SpanSnap{}
	for _, c := range root.Children {
		byPhase[c.Phase] = c
	}
	for _, phase := range []string{"collect", "query", "decrypt"} {
		if byPhase[phase] == nil {
			t.Fatalf("missing %s span; children = %v", phase, byPhase)
		}
		if byPhase[phase].Outcome != "ok" {
			t.Fatalf("%s span outcome = %s", phase, byPhase[phase].Outcome)
		}
	}
	// The collect phase holds its partition sub-span.
	var sawPartition bool
	for _, c := range byPhase["collect"].Children {
		if c.Phase == "partition" {
			sawPartition = true
		}
	}
	if !sawPartition {
		t.Fatalf("collect has no partition sub-span: %+v", byPhase["collect"].Children)
	}
	// The traced LSP annotated the query span with closed buckets.
	q := byPhase["query"]
	if !obs.AllowedTraceAttr("workers", q.Attrs["workers"]) ||
		!obs.AllowedTraceAttr("candidates", q.Attrs["candidates"]) {
		t.Fatalf("query attrs = %v, want bucketed workers and candidates", q.Attrs)
	}
	// Wall-time accounting: children are sequential phases of the root.
	var children float64
	for _, c := range root.Children {
		children += c.Seconds
		if c.Seconds > root.Seconds {
			t.Fatalf("%s span %.4fs outlasts the session root %.4fs", c.Phase, c.Seconds, root.Seconds)
		}
	}
	if children > root.Seconds+0.05 {
		t.Fatalf("children sum %.4fs exceeds root %.4fs", children, root.Seconds)
	}
}

// TestSessionFailureTraceRetained pins the slow/failed reservoir on the
// group path: a session that cannot reach quorum leaves a failed trace
// that survives in the always-retained reservoir.
func TestSessionFailureTraceRetained(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	locs := []geo.Point{{X: 0.2, Y: 0.3}, {X: 0.6, Y: 0.4}, {X: 0.5, Y: 0.8}}
	p := core.DefaultParams(3)
	p.KeyBits = 192
	p.D = 6
	p.Delta = 12
	p.Variant = core.VariantPPGNN
	coord, err := core.NewCoordinator(p, locs[0], rng)
	if err != nil {
		t.Fatal(err)
	}
	// Both member links are closed before the session starts: every
	// exchange fails, the roster shrinks below quorum.
	links := make([]group.Link, 2)
	for i := 0; i < 2; i++ {
		m := group.NewMember(locs[i+1], nil, rand.New(rand.NewSource(int64(i+20))))
		l := group.NewProcLink(m)
		l.Close()
		links[i] = l
	}
	reg := obs.NewRegistry()
	s, err := group.NewSession(coord, links, group.Config{
		MemberTimeout: 200 * time.Millisecond,
		Seed:          12,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	lsp := core.NewLSP(dataset.Synthetic(5, 200), geo.UnitRect)
	if _, err := s.Run(context.Background(), core.LocalService{LSP: lsp}); err == nil {
		t.Fatal("session with dead links succeeded")
	}
	slow := reg.Recorder().SlowSnapshot()
	if len(slow) != 1 {
		t.Fatalf("slow reservoir holds %d traces, want the failed session", len(slow))
	}
	if out := slow[0].Root.Outcome; out == "ok" || !obs.AllowedValues("outcome", out) {
		t.Fatalf("failed session outcome = %q", out)
	}
}
