package group

import (
	"bytes"
	"math/rand"
	"testing"

	"ppgnn/internal/core"
	"ppgnn/internal/geo"
)

func contribReq(session uint64, round, setSize int) []byte {
	req := &core.ContribRequest{
		Session: session, Round: round, Slot: 1, Pos: 1, SetSize: setSize,
		Space: geo.UnitRect,
	}
	return req.Marshal()
}

// A long-lived member must not let a hostile or crash-looping coordinator
// grow its caches without bound: sessions are LRU-capped, and rounds and
// set sizes within one session are budgeted.
func TestMemberCachesBounded(t *testing.T) {
	m := NewMember(geo.Point{X: 0.5, Y: 0.5}, nil, rand.New(rand.NewSource(1)))
	m.MaxSessions = 4

	// 100 distinct sessions: only the cap's worth may remain cached.
	for s := uint64(1); s <= 100; s++ {
		typ, _, err := m.Handle(core.FrameContribReq, contribReq(s, 0, 5))
		if err != nil || typ != core.FrameContrib {
			t.Fatalf("session %d: typ=%d err=%v", s, typ, err)
		}
	}
	m.mu.Lock()
	cached, order := len(m.sessions), len(m.order)
	m.mu.Unlock()
	if cached != 4 || order != 4 {
		t.Fatalf("cached sessions=%d order=%d, want 4 (LRU cap)", cached, order)
	}

	// Within one session, rounds beyond the reply budget are rejected.
	var rejected bool
	for round := 0; round < maxSessionReplies+8; round++ {
		typ, _, err := m.Handle(core.FrameContribReq, contribReq(7777, round, 5))
		if err != nil {
			t.Fatal(err)
		}
		if typ == core.FrameError {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("round budget never enforced")
	}

	// Distinct set sizes beyond the dummy budget are rejected, not evicted.
	m2 := NewMember(geo.Point{X: 0.5, Y: 0.5}, nil, rand.New(rand.NewSource(2)))
	rejected = false
	for size := 3; size < 3+maxSessionSizes+8; size++ {
		typ, _, err := m2.Handle(core.FrameContribReq, contribReq(1, size, size))
		if err != nil {
			t.Fatal(err)
		}
		if typ == core.FrameError {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("set-size budget never enforced")
	}
}

// Idempotency and LRU recency: repeated requests inside the cap return
// byte-identical replies, and touching a session keeps it cached while
// colder sessions are evicted around it.
func TestMemberCacheIdempotentAndLRU(t *testing.T) {
	m := NewMember(geo.Point{X: 0.25, Y: 0.75}, nil, rand.New(rand.NewSource(3)))
	m.MaxSessions = 2

	_, first, err := m.Handle(core.FrameContribReq, contribReq(1, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Interleave another session, re-touching session 1 so it stays hot.
	for s := uint64(2); s <= 6; s++ {
		if _, _, err := m.Handle(core.FrameContribReq, contribReq(s, 0, 5)); err != nil {
			t.Fatal(err)
		}
		_, again, err := m.Handle(core.FrameContribReq, contribReq(1, 0, 5))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("session 1 reply changed after touching session %d", s)
		}
	}
	m.mu.Lock()
	_, hot := m.sessions[1]
	m.mu.Unlock()
	if !hot {
		t.Fatal("recently used session was evicted")
	}
}
