package group_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/gnn"
	"ppgnn/internal/group"
	"ppgnn/internal/transport"
)

// TestConcurrentSessionsShareMembers runs many Sessions in parallel
// against ONE set of live member servers — the long-lived-phone scenario:
// a member's process holds the reply caches of every coordinator
// currently talking to it. Each session must decrypt exactly the
// plaintext oracle answer; any cross-session bleed in the members' reply
// or dummy caches (a contribution cached under one session ID surfacing
// in another, a partial decryption replayed across sessions) corrupts the
// homomorphic pipeline and shows up here as a wrong or failed answer.
// Run under -race this also pins down the Member's internal locking.
func TestConcurrentSessionsShareMembers(t *testing.T) {
	r := newSoakRig(t)
	const sessions = 6 // below DefaultMaxSessions: nothing may be evicted

	// One shared server per member, every session dials the same four.
	addrs := make([]string, 4)
	for i := 0; i < 4; i++ {
		id := i + 1
		m := group.NewMember(r.locs[id], nil, rand.New(rand.NewSource(int64(300+id))))
		m.TK, m.Share = r.coord.TK, r.shares[i]
		srv := transport.NewMemberServer(m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr.String()
	}

	// All sessions share the threshold key world but not mutable state:
	// each gets a coordinator copy with a private RNG, plus private links.
	coordFor := func(seed int64) *core.Coordinator {
		c := *r.coord
		c.Rng = rand.New(rand.NewSource(seed))
		return &c
	}

	// Every session's roster is identical, so one oracle covers all.
	want := r.lsp.Search(r.locs, r.p.K, gnn.Sum)

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	fail := func(format string, args ...any) {
		errs <- &sessionFailure{msg: format, args: args}
	}
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			links := make([]group.Link, 4)
			for j, a := range addrs {
				link := group.DialMember(a)
				defer link.Close()
				links[j] = link
			}
			s, err := group.NewSession(coordFor(int64(600+i)), links, soakConfig(int64(800+i)))
			if err != nil {
				fail("session %d: %v", i, err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			out, err := s.Run(ctx, core.LocalService{LSP: r.lsp})
			if err != nil {
				fail("session %d: %v", i, err)
				return
			}
			if len(out.Contributors) != 5 || len(out.Ejected) != 0 {
				fail("session %d: contributors=%v ejected=%v, want the full healthy roster",
					i, out.Contributors, out.Ejected)
				return
			}
			if len(out.Result.Points) != len(want) {
				fail("session %d: %d POIs, oracle wants %d", i, len(out.Result.Points), len(want))
				return
			}
			for rank := range want {
				if out.Result.Points[rank].Dist(want[rank].Item.P) > 1e-6 {
					fail("session %d rank %d: %v differs from oracle %v — cross-session state bleed",
						i, rank, out.Result.Points[rank], want[rank].Item.P)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		f := e.(*sessionFailure)
		t.Errorf(f.msg, f.args...)
	}
}

type sessionFailure struct {
	msg  string
	args []any
}

func (f *sessionFailure) Error() string { return f.msg }

// TestSequentialSessionsEvictCleanly churns more sessions through one
// member than its LRU cache holds (MaxSessions=2, 5 sessions): eviction
// must only ever discard finished sessions' state, never corrupt a later
// answer — the cheap regression guard for the LRU bookkeeping in
// Member.session.
func TestSequentialSessionsEvictCleanly(t *testing.T) {
	r := newSoakRig(t)
	addrs := make([]string, 4)
	for i := 0; i < 4; i++ {
		id := i + 1
		m := group.NewMember(r.locs[id], nil, rand.New(rand.NewSource(int64(400+id))))
		m.TK, m.Share = r.coord.TK, r.shares[i]
		m.MaxSessions = 2
		srv := transport.NewMemberServer(m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr.String()
	}
	want := r.lsp.Search(r.locs, r.p.K, gnn.Sum)
	for i := 0; i < 5; i++ {
		links := make([]group.Link, 4)
		for j, a := range addrs {
			link := group.DialMember(a)
			defer link.Close()
			links[j] = link
		}
		c := *r.coord
		c.Rng = rand.New(rand.NewSource(int64(900 + i)))
		s, err := group.NewSession(&c, links, soakConfig(int64(950+i)))
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		out, err := s.Run(ctx, core.LocalService{LSP: r.lsp})
		cancel()
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		for rank := range want {
			if out.Result.Points[rank].Dist(want[rank].Item.P) > 1e-6 {
				t.Fatalf("session %d rank %d diverges from oracle after LRU churn", i, rank)
			}
		}
	}
}
