package group

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/encode"
	"ppgnn/internal/obs"
	"ppgnn/internal/wire"
)

// Session defaults; Config fields left zero pick these up.
const (
	DefaultMemberTimeout = 5 * time.Second
	DefaultRetries       = 2
	DefaultRetryBase     = 25 * time.Millisecond
	DefaultRetryMax      = 500 * time.Millisecond
)

// Config tunes a Session.
type Config struct {
	// Quorum is the minimum number of participants (coordinator included)
	// that must contribute for the session to complete; 0 requires the
	// full roster. Threshold mode raises it to at least the key's T.
	Quorum int
	// MemberTimeout bounds one request/reply exchange with one member
	// (default DefaultMemberTimeout).
	MemberTimeout time.Duration
	// Retries is the number of re-sends per exchange after the first
	// attempt (default DefaultRetries; negative = none).
	Retries int
	// RetryBase is the first backoff delay; it doubles per retry up to
	// RetryMax, each delay jittered in [½d, d) as in transport.Pool.
	RetryBase time.Duration
	// RetryMax caps the backoff delay.
	RetryMax time.Duration
	// Seed makes the backoff jitter deterministic (0 = time-seeded). The
	// session id is always drawn from fresh entropy: members cache their
	// replies by (session, round), so a re-run after ErrQuorumLost under
	// the same seed must not collide with the previous run's cache — the
	// members would replay contributions built for the old run's
	// positions, silently corrupting the answer.
	Seed int64
	// Meter, when set, receives the intra-group and LSP byte counts.
	Meter *cost.Meter
	// Logf, when set, receives roster-change progress lines.
	Logf func(format string, args ...any)
	// Obs receives the session's telemetry (nil = obs.Default). See
	// DESIGN.md §9 for the metric catalog.
	Obs *obs.Registry
}

// Phase is a session's position in its lifecycle FSM (DESIGN.md §8).
type Phase int

const (
	PhaseInit    Phase = iota // built, not started
	PhaseCollect              // collecting member contributions (may loop on re-partition)
	PhaseQuery                // query sent to the LSP, awaiting the answer
	PhaseDecrypt              // collecting partial decryptions (threshold mode)
	PhaseDone                 // result available
	PhaseFailed               // terminal error
)

func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseCollect:
		return "collect"
	case PhaseQuery:
		return "query"
	case PhaseDecrypt:
		return "decrypt"
	case PhaseDone:
		return "done"
	case PhaseFailed:
		return "failed"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Outcome reports how a session ended: the result, who contributed to
// the final round, and every member removed along the way with the typed
// error that removed it (errors.Is(err, core.ErrBadContribution)
// distinguishes ejections from plain dropouts).
type Outcome struct {
	Result       *core.Result
	Contributors []int // roster ids whose sets formed the final query (0 = coordinator)
	Ejected      map[int]error
	Rounds       int // contribution rounds run (1 = no re-partition)
}

// memberState is the session's book-keeping for one member.
type memberState struct {
	id       int // roster id, 1..n-1 (0 is the coordinator)
	shareIdx int // expected key-share index in threshold mode, else 0
	link     Link
	// accepted maps round → the raw payload accepted for that round, for
	// duplicate/equivocation detection on late resubmissions. Only the
	// session goroutine currently responsible for this member touches it.
	accepted map[int][]byte
}

// Session drives one group query against n−1 member links. A Session is
// single-use: build with NewSession, call Run once.
type Session struct {
	coord   *core.Coordinator
	members []*memberState
	cfg     Config

	id     uint64
	n      int // full roster size, coordinator included
	quorum int // effective quorum, coordinator included
	phase  Phase
	round  int // shared round counter across contribute and decrypt phases

	rngMu sync.Mutex
	rng   *rand.Rand

	alive   map[int]bool
	ejected map[int]error

	reg *obs.Registry
	// curSpan is the span for the phase currently fanning out member
	// exchanges; workers call AddRetry on it. It is written only between
	// phases, after every worker of the previous phase has been joined.
	curSpan *obs.Span
	// trace is the session's head-sampled per-query trace (nil =
	// untraced); collectNode is the live "collect" trace node while the
	// collect loop runs, so partition spans nest under it. Both follow
	// curSpan's single-writer discipline.
	trace       *obs.Trace
	collectNode *obs.TraceSpan
}

// NewSession wires a coordinator to its member links. links[i] reaches
// the member with roster id i+1; in threshold mode that member must hold
// the key share NewThresholdCoordinator dealt at the same position
// (share index i+2, the coordinator keeping index 1).
func NewSession(coord *core.Coordinator, links []Link, cfg Config) (*Session, error) {
	n := coord.Params.N
	if len(links) != n-1 {
		return nil, fmt.Errorf("group: %d links for a roster of %d members", len(links), n)
	}
	if cfg.Quorum < 0 || cfg.Quorum > n {
		return nil, fmt.Errorf("group: quorum %d outside [0,%d]", cfg.Quorum, n)
	}
	q := cfg.Quorum
	if q == 0 {
		q = n
	}
	if coord.TK != nil && q < coord.TK.T {
		q = coord.TK.T
	}
	if q < 2 {
		q = 2
	}
	if cfg.MemberTimeout <= 0 {
		cfg.MemberTimeout = DefaultMemberTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	s := &Session{
		coord: coord, cfg: cfg,
		id: newSessionID(), n: n, quorum: q,
		rng:     rng,
		alive:   make(map[int]bool, n-1),
		ejected: make(map[int]error),
		reg:     reg,
	}
	for i, l := range links {
		m := &memberState{id: i + 1, link: l, accepted: make(map[int][]byte)}
		if coord.TK != nil {
			m.shareIdx = i + 2
		}
		s.members = append(s.members, m)
		s.alive[m.id] = true
	}
	return s, nil
}

// newSessionID draws a session id from fresh entropy, never from
// Config.Seed (see the Seed doc: a seed-derived id would make members
// replay a previous same-seed run's cached replies). The time-seeded
// fallback only runs if the OS entropy source is unreadable.
func newSessionID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return rand.New(rand.NewSource(time.Now().UnixNano())).Uint64()
	}
	return binary.BigEndian.Uint64(b[:])
}

// Phase returns the session's current FSM phase.
func (s *Session) Phase() Phase { return s.phase }

// Quorum returns the effective quorum (coordinator included).
func (s *Session) Quorum() int { return s.quorum }

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// roster returns the sorted ids of the members still alive.
func (s *Session) roster() []int {
	ids := make([]int, 0, len(s.alive))
	for id := range s.alive {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// drop removes a member from the roster, recording why.
func (s *Session) drop(id int, err error) {
	if !s.alive[id] {
		return
	}
	delete(s.alive, id)
	s.ejected[id] = err
	s.reg.Counter("group_dropouts_total", obs.L("cause", dropCause(err))).Inc()
	s.logf("group: member %d removed: %v", id, err)
}

// meterFrame charges one frame (header included) to the intra-group
// channel.
func (s *Session) meterFrame(payloadLen int) {
	s.cfg.Meter.AddBytes(cost.IntraGroup, wire.FrameHeaderSize+payloadLen)
}

// outcome snapshots the terminal state.
func (s *Session) outcome(res *core.Result, contributors []int, rounds int) *Outcome {
	ej := make(map[int]error, len(s.ejected))
	for id, err := range s.ejected {
		ej[id] = err
	}
	return &Outcome{Result: res, Contributors: contributors, Ejected: ej, Rounds: rounds}
}

// Run executes the session: collect a quorum of contributions (looping
// through re-partitions as the roster shrinks), query the LSP, decrypt —
// jointly in threshold mode — and decode. The Outcome is returned even
// on error, so callers can see who was ejected before the failure.
func (s *Session) Run(ctx context.Context, svc core.Service) (out *Outcome, err error) {
	if s.phase != PhaseInit {
		return s.outcome(nil, nil, 0), fmt.Errorf("group: session already run (phase %s)", s.phase)
	}
	// One head-sampled trace per session: the root node doubles as the
	// "session" span's trace mirror, so ending the span completes the
	// trace and files it with the flight recorder.
	tr := s.reg.Recorder().Start("session")
	s.trace = tr
	sess := s.reg.StartSpan("session").Attach(tr.Root())
	defer func() { sess.End(groupOutcome(err)) }()

	s.phase = PhaseCollect
	s.collectNode = tr.Root().Child("collect")
	sp := s.reg.StartSpan("collect").Attach(s.collectNode)
	s.curSpan = sp
	plan, locs, contributors, err := s.collect(ctx)
	s.curSpan = nil
	s.collectNode = nil
	sp.End(groupOutcome(err))
	if err != nil {
		s.phase = PhaseFailed
		return s.outcome(nil, nil, s.round), err
	}
	rounds := s.round

	s.phase = PhaseQuery
	qnode := tr.Root().Child("query")
	qsp := s.reg.StartSpan("query").Attach(qnode)
	qm, err := s.coord.BuildQuery(plan, s.cfg.Meter)
	if err != nil {
		qsp.End(groupOutcome(err))
		s.phase = PhaseFailed
		return s.outcome(nil, contributors, rounds), err
	}
	s.cfg.Meter.AddBytes(cost.UserToLSP, len(qm.Marshal()))
	for _, lm := range locs {
		s.cfg.Meter.AddBytes(cost.UserToLSP, len(lm.Marshal()))
	}
	// Traced sessions hand the query node across the Service boundary:
	// transport clients propagate the id to the LSP on the wire,
	// LocalService annotates the LSP attributes directly.
	ans, perr := core.ProcessMaybeTraced(svc, tr.Context(qnode), qm, locs)
	qsp.End(groupOutcome(perr))
	if perr != nil {
		s.phase = PhaseFailed
		err = perr
		return s.outcome(nil, contributors, rounds), err
	}
	s.cfg.Meter.AddBytes(cost.LSPToUser, len(ans.Marshal()))

	s.phase = PhaseDecrypt
	dsp := s.reg.StartSpan("decrypt").Attach(tr.Root().Child("decrypt"))
	s.curSpan = dsp
	records, err := s.decrypt(ctx, ans)
	s.curSpan = nil
	dsp.End(groupOutcome(err))
	if err != nil {
		s.phase = PhaseFailed
		return s.outcome(nil, contributors, rounds), err
	}
	// Coordinator broadcasts the plaintext answer to the other
	// contributors, as in Group.DecryptAnswer.
	recBytes := 8
	if s.coord.Params.IncludeIDs {
		recBytes = 16
	}
	s.cfg.Meter.AddBytes(cost.IntraGroup, (len(locs)-1)*(1+len(records)*recBytes))

	s.phase = PhaseDone
	return s.outcome(s.coord.Finish(records), contributors, rounds), nil
}

// collect runs contribution rounds until one completes with no failures,
// re-partitioning for the survivors after every round that lost members.
// Each round strictly shrinks the roster or succeeds, so the loop is
// bounded by n − quorum + 1 rounds.
func (s *Session) collect(ctx context.Context) (*core.RoundPlan, []*core.LocationMsg, []int, error) {
	for {
		roster := s.roster()
		n := len(roster) + 1
		if n < s.quorum {
			return nil, nil, nil, s.quorumLost("contribute", s.quorum, n)
		}
		psp := s.reg.StartSpan("partition").Attach(s.collectNode.Child("partition"))
		plan, err := s.coord.Plan(n)
		psp.EndErr(err)
		if err != nil {
			return nil, nil, nil, err
		}
		round := s.round
		s.round++
		locs, failed, err := s.collectRound(ctx, plan, roster, round)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(failed) == 0 {
			return plan, locs, append([]int{0}, roster...), nil
		}
		for id, ferr := range failed {
			s.drop(id, ferr)
		}
		s.reg.Counter("group_repartitions_total").Inc()
		s.logf("group: round %d lost %d member(s), re-partitioning for %d", round, len(failed), len(s.alive)+1)
	}
}

// collectRound fans one round's ContribRequests out to the roster and
// waits for every member to succeed or fail within its bounded retry
// budget. The moment enough failures arrive to make a quorum impossible,
// the stragglers are cancelled and the round fails fast.
func (s *Session) collectRound(ctx context.Context, plan *core.RoundPlan, roster []int, round int) ([]*core.LocationMsg, map[int]error, error) {
	defer s.countRound("collect", time.Now())
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		slot int
		id   int
		lm   *core.LocationMsg
		err  error
	}
	ch := make(chan result, len(roster))
	for i, id := range roster {
		slot := i + 1 // coordinator is slot 0
		m := s.members[id-1]
		req := plan.Request(s.coord.Params, s.id, round, slot)
		go func() {
			lm, err := s.collectOne(rctx, m, req)
			ch <- result{slot: slot, id: m.id, lm: lm, err: err}
		}()
	}

	n := len(roster) + 1
	locs := make([]*core.LocationMsg, n)
	locs[0] = s.coord.OwnContribution(plan)
	failed := make(map[int]error)
	for done := 0; done < len(roster); {
		select {
		case r := <-ch:
			done++
			if r.err == nil {
				locs[r.slot] = r.lm
				continue
			}
			failed[r.id] = r.err
			if n-len(failed) < s.quorum {
				// Quorum unreachable: cancel the stragglers and collect
				// their verdicts so the outcome names everyone lost.
				cancel()
				for ; done < len(roster); done++ {
					if r2 := <-ch; r2.err != nil {
						failed[r2.id] = r2.err
					}
				}
				for id, ferr := range failed {
					s.drop(id, ferr)
				}
				return nil, nil, s.quorumLost("contribute", s.quorum, n-len(failed))
			}
		case <-ctx.Done():
			// Cancel and wait for the workers: none may outlive the round
			// still holding its member's link and accepted map.
			cancel()
			for ; done < len(roster); done++ {
				<-ch
			}
			return nil, nil, ctx.Err()
		}
	}
	return locs, failed, nil
}

// collectOne requests one member's contribution, validating the reply.
func (s *Session) collectOne(ctx context.Context, m *memberState, req *core.ContribRequest) (*core.LocationMsg, error) {
	v, err := s.call(ctx, m, req.Round, core.FrameContribReq, req.Marshal(),
		func(typ byte, payload []byte) (any, verdict, error) {
			switch typ {
			case core.FrameContrib:
				cm, err := core.UnmarshalContribution(payload)
				if err != nil {
					return nil, vEject, fmt.Errorf("undecodable contribution: %v", err)
				}
				if cm.Session != s.id {
					return nil, vSkip, nil
				}
				if cm.Round != req.Round {
					vd, verr := s.staleVerdict(m, cm.Round, payload)
					return nil, vd, verr
				}
				if err := cm.Validate(req); err != nil {
					return nil, vEject, err
				}
				return cm, vAccept, nil
			case core.FrameError:
				return nil, vEject, fmt.Errorf("member rejected contribution request: %s", payload)
			case core.FramePartial:
				return nil, vSkip, nil // stale frame from a decrypt phase
			default:
				return nil, vEject, fmt.Errorf("unexpected frame type %d", typ)
			}
		})
	if err != nil {
		return nil, err
	}
	return v.(*core.ContributionMsg).LocationMsg(), nil
}

// staleVerdict classifies a reply for a past round: a byte-identical
// resubmission is a benign replay (skipped); a differing one is
// equivocation (ejected).
func (s *Session) staleVerdict(m *memberState, round int, payload []byte) (verdict, error) {
	if prev, ok := m.accepted[round]; ok && !bytes.Equal(prev, payload) {
		s.reg.Counter("group_equivocations_total").Inc()
		return vEject, fmt.Errorf("equivocating resubmission for round %d", round)
	}
	return vSkip, nil
}

// decrypt recovers the answer records: directly in plain mode, via joint
// partial-decryption rounds in threshold mode (two layers for OPT).
func (s *Session) decrypt(ctx context.Context, ans *core.AnswerMsg) ([]encode.Record, error) {
	if s.coord.TK == nil {
		return s.coord.DecryptAnswer(ans, s.cfg.Meter)
	}
	if ans.Degree != s.coord.AnswerDegree() {
		return nil, fmt.Errorf("group: answer degree %d, want %d", ans.Degree, s.coord.AnswerDegree())
	}
	cts := ans.Cts
	for degree := ans.Degree; degree >= 1; degree-- {
		ints, err := s.decryptLayer(ctx, degree, cts)
		if err != nil {
			return nil, err
		}
		cts = ints
	}
	return s.coord.DecodeInts(cts)
}

// decryptLayer runs one joint decryption round: the coordinator's own
// shares plus the first T−1 valid member responses win; stragglers are
// cancelled, invalid shares eject their member, and a roster that can no
// longer field T share-holders fails fast.
func (s *Session) decryptLayer(ctx context.Context, degree int, cts []*big.Int) ([]*big.Int, error) {
	defer s.countRound("decrypt", time.Now())
	tk := s.coord.TK
	round := s.round
	s.round++

	self, err := s.coord.PartialSelf(degree, cts)
	if err != nil {
		return nil, err
	}
	shares := map[int][]*big.Int{s.coord.Share.Index: self}

	roster := s.roster()
	if len(roster)+1 < tk.T {
		return nil, s.quorumLost("decrypt", tk.T, len(roster)+1)
	}
	req := &core.PartialRequest{Session: s.id, Round: round, Degree: degree, KeyBytes: s.coord.KeyBytes(), Cts: cts}
	reqB := req.Marshal()

	pctx, cancel := context.WithCancel(ctx)
	type result struct {
		id  int
		pm  *core.PartialMsg
		err error
	}
	ch := make(chan result, len(roster))
	for _, id := range roster {
		m := s.members[id-1]
		go func() {
			pm, err := s.partialOne(pctx, m, req, reqB)
			ch <- result{id: m.id, pm: pm, err: err}
		}()
	}

	pending := len(roster)
	// Every exit must drain: a straggler goroutine left running would
	// share its member's link and accepted map with the next layer's
	// goroutine for the same member (OPT runs layers back to back),
	// racing on both. Cancellation makes the workers exit promptly; their
	// late errors are discarded — being slow is not an offense worth the
	// roster spot.
	defer func() {
		// Workers still pending here were cancelled as stragglers: the
		// layer already had its T shares (or failed for other reasons).
		s.reg.Counter("group_stragglers_total").Add(int64(pending))
		cancel()
		for ; pending > 0; pending-- {
			<-ch
		}
	}()
	for len(shares) < tk.T && pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err != nil {
				s.drop(r.id, r.err)
				if len(shares)+pending < tk.T {
					return nil, s.quorumLost("decrypt", tk.T, len(shares)+pending)
				}
				continue
			}
			shares[r.pm.Index] = r.pm.Shares
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if len(shares) < tk.T {
		return nil, s.quorumLost("decrypt", tk.T, len(shares))
	}
	return s.coord.CombinePartials(degree, cts, shares, s.cfg.Meter)
}

// partialOne requests one member's decryption shares, validating them
// against the request and the member's dealt share index.
func (s *Session) partialOne(ctx context.Context, m *memberState, req *core.PartialRequest, reqB []byte) (*core.PartialMsg, error) {
	v, err := s.call(ctx, m, req.Round, core.FramePartialReq, reqB,
		func(typ byte, payload []byte) (any, verdict, error) {
			switch typ {
			case core.FramePartial:
				pm, err := core.UnmarshalPartial(payload)
				if err != nil {
					return nil, vEject, fmt.Errorf("undecodable partial decryption: %v", err)
				}
				if pm.Session != s.id {
					return nil, vSkip, nil
				}
				if pm.Round != req.Round {
					vd, verr := s.staleVerdict(m, pm.Round, payload)
					return nil, vd, verr
				}
				if err := pm.Validate(req, m.shareIdx, s.coord.TK); err != nil {
					return nil, vEject, err
				}
				return pm, vAccept, nil
			case core.FrameContrib:
				cm, err := core.UnmarshalContribution(payload)
				if err != nil {
					return nil, vEject, fmt.Errorf("undecodable contribution: %v", err)
				}
				if cm.Session != s.id {
					return nil, vSkip, nil
				}
				vd, verr := s.staleVerdict(m, cm.Round, payload)
				return nil, vd, verr
			case core.FrameError:
				return nil, vEject, fmt.Errorf("member rejected partial-decryption request: %s", payload)
			default:
				return nil, vEject, fmt.Errorf("unexpected frame type %d", typ)
			}
		})
	if err != nil {
		return nil, err
	}
	return v.(*core.PartialMsg), nil
}

// verdict is a classifier's decision about one received frame.
type verdict int

const (
	vAccept verdict = iota // the awaited reply: accept and return
	vSkip                  // stale or foreign: keep waiting
	vEject                 // provably wrong: eject the member
)

// call runs one request/reply exchange with one member under the
// per-member deadline and bounded retry/backoff. classify inspects each
// received frame; stale frames are skipped without burning the attempt.
// Ejections surface as core.ContributionError (never retried); exhausted
// transient failures surface as the last marked-retryable error.
func (s *Session) call(ctx context.Context, m *memberState, round int, reqType byte, req []byte,
	classify func(typ byte, payload []byte) (any, verdict, error)) (any, error) {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.Retries; attempt++ {
		if attempt > 0 {
			s.curSpan.AddRetry()
			if err := s.backoff(ctx, attempt); err != nil {
				return nil, err
			}
			m.link.Reset()
		}
		actx, cancel := context.WithTimeout(ctx, s.cfg.MemberTimeout)
		v, err := s.exchange(actx, m, round, reqType, req, classify)
		cancel()
		if err == nil {
			return v, nil
		}
		if !core.IsRetryable(err) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, core.Retryable(ctx.Err())
		}
		lastErr = err
	}
	return nil, fmt.Errorf("group: member %d unreachable after %d attempt(s): %w", m.id, s.cfg.Retries+1, lastErr)
}

// exchange is one attempt: send the request, then read frames until
// classify accepts, ejects, or the attempt deadline kills the read.
func (s *Session) exchange(ctx context.Context, m *memberState, round int, reqType byte, req []byte,
	classify func(typ byte, payload []byte) (any, verdict, error)) (any, error) {
	// A traced session announces its id before each request. The frame
	// is one-way: ProcLink and ServeConn absorb it without producing a
	// reply, so the request/reply pairing below is undisturbed.
	if id := s.trace.ID(); id != 0 {
		tb := core.MarshalTraceID(id)
		s.meterFrame(len(tb))
		if err := m.link.Send(ctx, core.FrameTrace, tb); err != nil {
			return nil, err
		}
	}
	s.meterFrame(len(req))
	if err := m.link.Send(ctx, reqType, req); err != nil {
		return nil, err
	}
	for {
		typ, payload, err := m.link.Recv(ctx)
		if err != nil {
			return nil, err
		}
		s.meterFrame(len(payload))
		v, vd, cerr := classify(typ, payload)
		switch vd {
		case vAccept:
			m.accepted[round] = append([]byte(nil), payload...)
			return v, nil
		case vSkip:
			continue
		default:
			return nil, &core.ContributionError{Member: m.id, Reason: cerr.Error()}
		}
	}
}

// backoff sleeps the attempt's jittered exponential delay (the
// transport.Pool schedule), or fails when the context expires first.
func (s *Session) backoff(ctx context.Context, attempt int) error {
	d := s.cfg.RetryBase << (attempt - 1)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	s.rngMu.Lock()
	d = d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.rngMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return core.Retryable(ctx.Err())
	case <-t.C:
		return nil
	}
}
