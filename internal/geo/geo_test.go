package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// almostEq tolerates float rounding; exact equality first so that equal
// infinities (from extreme quick-generated inputs) compare equal.
func almostEq(a, b float64) bool { return a == b || math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
		{Point{0.5, 0.5}, Point{0.5, 0.75}, 0.25},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); !almostEq(got, c.want*c.want) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{rng.Float64(), rng.Float64()}
		b := Point{rng.Float64(), rng.Float64()}
		c := Point{rng.Float64(), rng.Float64()}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-12 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestNewRectOrientation(t *testing.T) {
	r := NewRect(Point{1, 0}, Point{0, 1})
	if !r.Valid() {
		t.Fatalf("NewRect produced invalid rect %v", r)
	}
	if r.Min != (Point{0, 0}) || r.Max != (Point{1, 1}) {
		t.Fatalf("NewRect = %v, want unit rect", r)
	}
}

func TestRectOf(t *testing.T) {
	r := RectOf(Point{0.2, 0.8}, Point{0.5, 0.1}, Point{0.9, 0.4})
	want := Rect{Point{0.2, 0.1}, Point{0.9, 0.8}}
	if r != want {
		t.Fatalf("RectOf = %v, want %v", r, want)
	}
}

func TestRectOfPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RectOf() did not panic on empty input")
		}
	}()
	RectOf()
}

func TestCentroidPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Centroid(nil) did not panic")
		}
	}()
	Centroid(nil)
}

func TestRectBasics(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 1}}
	if got := r.Area(); !almostEq(got, 2) {
		t.Errorf("Area = %v, want 2", got)
	}
	if got := r.Margin(); !almostEq(got, 3) {
		t.Errorf("Margin = %v, want 3", got)
	}
	if got := r.Center(); got != (Point{1, 0.5}) {
		t.Errorf("Center = %v, want (1,0.5)", got)
	}
	if !r.Contains(Point{2, 1}) {
		t.Error("Contains should be boundary-inclusive")
	}
	if r.Contains(Point{2.0001, 1}) {
		t.Error("Contains accepted an outside point")
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{Point{0.5, 0.5}, Point{1.5, 1.5}}, true},
		{Rect{Point{1, 1}, Point{2, 2}}, true}, // touching corner counts
		{Rect{Point{1.1, 1.1}, Point{2, 2}}, false},
		{Rect{Point{-1, -1}, Point{2, 2}}, true}, // containment
		{Rect{Point{0.25, -5}, Point{0.5, 5}}, true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.b)
		}
	}
}

func TestExtend(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	b := Rect{Point{2, -1}, Point{3, 0.5}}
	e := a.Extend(b)
	want := Rect{Point{0, -1}, Point{3, 1}}
	if e != want {
		t.Fatalf("Extend = %v, want %v", e, want)
	}
	if !e.ContainsRect(a) || !e.ContainsRect(b) {
		t.Fatal("Extend result does not contain inputs")
	}
}

func TestEnlargeArea(t *testing.T) {
	a := Rect{Point{0, 0}, Point{1, 1}}
	if got := a.EnlargeArea(Rect{Point{0.2, 0.2}, Point{0.8, 0.8}}); !almostEq(got, 0) {
		t.Errorf("EnlargeArea for contained rect = %v, want 0", got)
	}
	if got := a.EnlargeArea(Rect{Point{0, 0}, Point{2, 1}}); !almostEq(got, 1) {
		t.Errorf("EnlargeArea = %v, want 1", got)
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{0.5, 0.5}, 0}, // inside
		{Point{1, 1}, 0},     // on boundary
		{Point{2, 0.5}, 1},   // right side
		{Point{0.5, -2}, 2},  // below
		{Point{4, 5}, 5},     // corner: 3-4-5 triangle
		{Point{-3, -4}, 5},   // opposite corner
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); !almostEq(got, c.want) {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMaxDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	if got := r.MaxDist(Point{0, 0}); !almostEq(got, math.Sqrt2) {
		t.Errorf("MaxDist(corner) = %v, want sqrt(2)", got)
	}
	if got := r.MaxDist(Point{0.5, 0.5}); !almostEq(got, math.Sqrt2/2) {
		t.Errorf("MaxDist(center) = %v, want sqrt(2)/2", got)
	}
}

// MinDist must lower-bound and MaxDist upper-bound the distance from p to
// every point inside the rectangle.
func TestMinMaxDistBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r := NewRect(
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		)
		p := Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}
		lo, hi := r.MinDist(p), r.MaxDist(p)
		if lo > hi+1e-12 {
			t.Fatalf("MinDist %v > MaxDist %v for r=%v p=%v", lo, hi, r, p)
		}
		for j := 0; j < 20; j++ {
			q := Point{
				r.Min.X + rng.Float64()*r.Width(),
				r.Min.Y + rng.Float64()*r.Height(),
			}
			d := p.Dist(q)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("point %v in %v at distance %v outside [%v,%v] from %v", q, r, d, lo, hi, p)
			}
		}
	}
}

func TestClamp(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 1}}
	cases := []struct{ in, want Point }{
		{Point{0.5, 0.5}, Point{0.5, 0.5}},
		{Point{-1, 0.5}, Point{0, 0.5}},
		{Point{2, 3}, Point{1, 1}},
		{Point{0.25, -9}, Point{0.25, 0}},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if got := Centroid(pts); !almostEq(got.X, 0.5) || !almostEq(got.Y, 0.5) {
		t.Fatalf("Centroid = %v, want (0.5,0.5)", got)
	}
	one := []Point{{0.3, 0.7}}
	if got := Centroid(one); got != one[0] {
		t.Fatalf("Centroid of single point = %v, want %v", got, one[0])
	}
}

// Property: MinDist2 is the square of MinDist.
func TestMinDist2Consistent(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		r := NewRect(Point{ax, ay}, Point{bx, by})
		p := Point{px, py}
		return almostEq(r.MinDist(p)*r.MinDist(p), r.MinDist2(p))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
