// Package geo provides the planar geometry primitives used throughout the
// PPGNN system: points, axis-aligned rectangles, and the Euclidean metric
// together with the min/max distance bounds needed by the spatial index and
// the group nearest neighbor search.
//
// The location space is the normalized unit square [0,1]×[0,1], following
// the experimental setup of the paper (Section 8.1), but nothing in this
// package assumes unit bounds except where documented.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane (e.g. a user location or a POI location).
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is safe for comparisons because squaring is monotone.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the component-wise sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns the point scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle given by its lower-left (Min) and
// upper-right (Max) corners. A Rect with Min==Max is a degenerate rectangle
// containing a single point; that is valid.
type Rect struct {
	Min, Max Point
}

// UnitRect is the normalized location space used by the experiments.
var UnitRect = Rect{Min: Point{0, 0}, Max: Point{1, 1}}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectOf returns the minimum bounding rectangle of the given points.
// It panics if pts is empty.
func RectOf(pts ...Point) Rect {
	if len(pts) == 0 {
		panic("geo: RectOf of no points")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// Valid reports whether r.Min <= r.Max on both axes.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the extent of r on the X axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r on the Y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether the point p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies fully inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Extend returns the minimum bounding rectangle of r and s.
func (r Rect) Extend(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExtendPoint returns the minimum bounding rectangle of r and the point p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// EnlargeArea returns the area increase of r needed to also cover s.
func (r Rect) EnlargeArea(s Rect) float64 {
	return r.Extend(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from the point p to any
// point of r. It is zero when p lies inside r. This is the classic MINDIST
// lower bound used for R-tree pruning.
//
// It must use the same rounding as Point.Dist (math.Hypot, correctly
// rounded): for a degenerate rect — a single-POI leaf — the bound and the
// cost reduce to the identical expression, so the computed bound can
// never exceed the computed cost by an ulp. Bounded searches cut off at
// an exact k-th cost (the shard layer's grid seed) rely on that.
func (r Rect) MinDist(p Point) float64 {
	return math.Hypot(axisDist(p.X, r.Min.X, r.Max.X), axisDist(p.Y, r.Min.Y, r.Max.Y))
}

// MinDist2 returns the squared MinDist.
func (r Rect) MinDist2(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MaxDist returns the maximum Euclidean distance from the point p to any
// point of r (attained at one of the four corners). It is the upper bound
// used by the cloak-region baseline to build guaranteed candidate supersets.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Min, r.Max)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// Clamp returns p constrained to lie inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Centroid returns the arithmetic mean of the points. It panics if pts is
// empty. The GLP baseline queries the kNN of the group centroid.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geo: Centroid of no points")
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
