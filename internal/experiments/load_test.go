package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ppgnn/internal/dataset"
	"ppgnn/internal/load"
)

func quickLoadOpts() LoadGateOptions {
	return LoadGateOptions{
		Rate:    30,
		Warmup:  200 * time.Millisecond,
		Measure: time.Second,
		Drain:   20 * time.Second,
		Groups:  4,
		Faulted: true,
		SLO: &load.SLO{
			P95:               5 * time.Second,
			P99:               10 * time.Second,
			MinThroughputFrac: 0.5,
		},
	}
}

// A short clean+faulted gate run end to end: both passes complete, zero
// oracle mismatches, the faulted pass loses sessions only to the
// taxonomy, and the report survives the JSON round trip CI relies on.
func TestLoadGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-traffic gate run")
	}
	cfg := Config{Items: dataset.Synthetic(7, 1200), KeyBits: 192, Seed: 9}
	rep, err := cfg.LoadGate(quickLoadOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 2 || rep.Passes[0].Name != "clean" || rep.Passes[1].Name != "faulted" {
		t.Fatalf("want clean+faulted passes, got %+v", rep.Passes)
	}
	if rep.Cores < 1 {
		t.Fatalf("dishonest cores %d", rep.Cores)
	}
	for _, p := range rep.Passes {
		if n := p.Report.Mismatches(); n != 0 {
			t.Fatalf("%s pass: %d oracle mismatches", p.Name, n)
		}
		m := p.Report.Stage("measure")
		if m == nil || m.OK == 0 {
			t.Fatalf("%s pass: empty measure stage", p.Name)
		}
		if p.SLOViolation != "" {
			t.Fatalf("%s pass violated its SLO: %s", p.Name, p.SLOViolation)
		}
	}
	if err := rep.Check(nil); err != nil {
		t.Fatalf("Check(nil): %v", err)
	}

	// JSON round trip, then gate against itself as baseline: must pass.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Check(rep); err != nil {
		t.Fatalf("self-baseline check: %v", err)
	}
}

func TestLoadReportCheckRejects(t *testing.T) {
	mk := func(mut func(*LoadReport)) *LoadReport {
		r := &LoadReport{Cores: 1, Passes: []LoadPass{{
			Name: "clean",
			Report: &load.Report{Stages: []load.StageReport{{
				Stage: "measure", Arrivals: 10, Done: 10, OK: 10,
				LatencyP95: 0.1, OfferedQPS: 10, AchievedQPS: 10,
			}}},
		}}, Traces: &TraceAudit{Traces: 1, Remote: 1}}
		mut(r)
		return r
	}

	if err := mk(func(r *LoadReport) {}).Check(nil); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
	cases := []struct {
		name string
		rep  *LoadReport
		base *LoadReport
		want string
	}{
		{"mismatch", mk(func(r *LoadReport) { r.Passes[0].Report.Stages[0].Mismatches = 1 }), nil, "oracle"},
		{"slo", mk(func(r *LoadReport) { r.Passes[0].SLOViolation = "p95 too slow" }), nil, "SLO"},
		{"empty", &LoadReport{}, nil, "no passes"},
		{"no trace audit", mk(func(r *LoadReport) { r.Traces = nil }), nil, "trace audit"},
		{"trace violation", mk(func(r *LoadReport) {
			r.Traces.Violations = []string{`trace 0abc: attribute "city"="x" outside the closed catalog`}
		}), nil, "violation"},
		{"p95 blowout", mk(func(r *LoadReport) { r.Passes[0].Report.Stages[0].LatencyP95 = 0.6 }),
			mk(func(r *LoadReport) {}), "p95"},
		{"qps collapse", mk(func(r *LoadReport) { r.Passes[0].Report.Stages[0].AchievedQPS = 3 }),
			mk(func(r *LoadReport) {}), "qps"},
	}
	for _, c := range cases {
		err := c.rep.Check(c.base)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Check = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Baseline from different hardware is ignored.
	other := mk(func(r *LoadReport) { r.Passes[0].Report.Stages[0].LatencyP95 = 9; r.Cores = 64 })
	if err := other.Check(mk(func(r *LoadReport) {})); err != nil {
		t.Fatalf("cross-hardware baseline compared: %v", err)
	}
}
