package experiments

import (
	"strings"
	"testing"
)

// TestParallelGateRuns exercises the measurement end to end at a small key
// size: the report must carry the configured shape and an internally
// consistent speedup, and the byte-equality assertion inside must hold.
func TestParallelGateRuns(t *testing.T) {
	c := Config{KeyBits: 512, Seed: 7}
	rep, err := c.ParallelGate(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyBits != 512 || rep.Workers != 2 || rep.Reps != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.DeltaPrime < 32 {
		t.Fatalf("δ'=%d below gate floor", rep.DeltaPrime)
	}
	if rep.SerialNsOp <= 0 || rep.ParallelNsOp <= 0 || rep.Speedup <= 0 {
		t.Fatalf("non-positive timings: %+v", rep)
	}
}

// TestParallelReportCheck pins the gate rules on synthetic reports, so a
// rule regression fails here rather than in a slow CI bench job.
func TestParallelReportCheck(t *testing.T) {
	multi := &ParallelReport{Cores: 8, Workers: 8, SerialNsOp: 3000, ParallelNsOp: 1000, Speedup: 3.0}
	single := &ParallelReport{Cores: 1, Workers: 1, SerialNsOp: 1000, ParallelNsOp: 1050, Speedup: 0.95}

	cases := []struct {
		name     string
		report   *ParallelReport
		baseline *ParallelReport
		wantErr  string
	}{
		{"multi-core above floor", multi, nil, ""},
		{"single core exempt from floor", single, nil, ""},
		{"multi-core below floor", &ParallelReport{Cores: 8, SerialNsOp: 1000, ParallelNsOp: 900, Speedup: 1.1}, nil, "1.5× floor"},
		{"matching cores within 20%", &ParallelReport{Cores: 8, SerialNsOp: 3300, ParallelNsOp: 1100, Speedup: 3.0}, multi, ""},
		{"matching cores regressed", &ParallelReport{Cores: 8, SerialNsOp: 4500, ParallelNsOp: 1500, Speedup: 3.0}, multi, "regressed"},
		{"cores differ, ns not compared", &ParallelReport{Cores: 4, SerialNsOp: 9000, ParallelNsOp: 5000, Speedup: 1.8}, multi, ""},
		{"speedup collapse vs baseline", &ParallelReport{Cores: 8, SerialNsOp: 1800, ParallelNsOp: 1150, Speedup: 1.57}, multi, "80%"},
		{"single-core run vs multi-core baseline", single, multi, ""},
	}
	for _, tc := range cases {
		err := tc.report.Check(tc.baseline)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}
