package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ppgnn/internal/obs"
)

// TestObsSoakServesSnapshot is the acceptance scenario of the telemetry
// work end to end: the seeded n=5 t=3 faultnet soak runs over real TCP,
// and afterwards the -metrics-addr endpoint serves a JSON snapshot with
// per-phase histograms, transport retry/shed counters, and the paillier
// Precomputer hit rate — all of it privacy-safe by construction.
func TestObsSoakServesSnapshot(t *testing.T) {
	cfg := Config{Queries: 2, KeyBits: 192, Seed: 7}
	report, err := cfg.ObsSnapshot(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK != 2 {
		t.Fatalf("soak: %d/%d ok (failed %d)", report.OK, report.Queries, report.Failed)
	}
	if report.PoolHitRate <= 0 || report.PoolHitRate > 1 {
		t.Errorf("pool hit rate %v, want in (0,1]", report.PoolHitRate)
	}
	if report.Retries < 1 {
		t.Errorf("transport retries %d, want ≥ 1 (first LSP dial is scheduled to fail)", report.Retries)
	}
	if report.Dropouts < 1 {
		t.Errorf("dropouts %d, want ≥ 1 (member 1's first session is unreachable)", report.Dropouts)
	}

	// Per-phase histograms must cover the whole Algorithm 1 lifecycle.
	phases := map[string]bool{}
	for _, h := range report.Phases {
		if h.Count > 0 {
			phases[h.Labels["phase"]] = true
		}
		if h.Count > 0 && (h.P95 < h.P50 || h.P50 < 0) {
			t.Errorf("phase %v: implausible quantiles p50=%v p95=%v", h.Labels, h.P50, h.P95)
		}
	}
	for _, want := range []string{"session", "collect", "partition", "query", "decrypt"} {
		if !phases[want] {
			t.Errorf("phase %q missing from report (have %v)", want, phases)
		}
	}

	// The soak's registry is the process default, i.e. exactly what a
	// -metrics-addr endpoint serves. Curl it.
	addr, stop, err := obs.Serve("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Histogram("ppgnn_phase_seconds", obs.L("phase", "session"), obs.L("outcome", "ok")) == nil {
		t.Error("endpoint snapshot lacks the session phase histogram")
	}
	var sawRetries, sawShed bool
	for _, c := range snap.Counters {
		switch c.Name {
		case "transport_retries_total":
			sawRetries = true
		case "transport_server_shed_total":
			sawShed = true
		}
	}
	if !sawRetries || !sawShed {
		t.Errorf("endpoint snapshot lacks transport counters: retries=%v shed=%v", sawRetries, sawShed)
	}
	if snap.Counter("paillier_precompute_encrypt_total", obs.L("source", "pool")) < 1 {
		t.Error("endpoint snapshot lacks the Precomputer pool counter")
	}
}
