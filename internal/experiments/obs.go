package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/group"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"
)

// ObsReport is the payload of BENCH_obs.json: the telemetry of a seeded
// n=5, t=3 soak over real TCP with injected faultnet latency. Phases
// carries the per-phase latency distributions (p50/p95/p99 per outcome);
// Snapshot is the complete registry state the -metrics-addr endpoint
// would have served at the end of the run.
type ObsReport struct {
	N         int   `json:"n"`
	T         int   `json:"t"`
	Quorum    int   `json:"quorum"`
	Queries   int   `json:"queries"`
	KeyBits   int   `json:"keybits"`
	Seed      int64 `json:"seed"`
	LatencyMS int64 `json:"latency_ms"`

	OK     int `json:"ok"`     // sessions that returned an answer
	Failed int `json:"failed"` // sessions that returned an error

	Phases      []obs.HistSnap `json:"phases"` // ppgnn_phase_seconds rows
	PoolHitRate float64        `json:"paillier_pool_hit_rate"`
	Retries     int64          `json:"transport_retries"`
	Dropouts    int64          `json:"group_dropouts"`

	Snapshot obs.Snapshot `json:"snapshot"`
}

// latencySchedule builds a fault schedule of n latency-only entries, so
// every connection a dialer opens during the soak carries the delay.
func latencySchedule(seed int64, latency time.Duration, n int) []faultnet.Faults {
	s := make([]faultnet.Faults, n)
	for i := range s {
		s[i] = faultnet.Faults{Seed: seed + int64(i), Latency: latency}
	}
	return s
}

// ObsSnapshot runs the observability soak: an n=5 group with a t=3
// threshold key and quorum 3, querying a real transport.Server through a
// retrying Pool, every link impaired with the given faultnet latency and
// a few scheduled connection faults (one mid-reply reset on the LSP path,
// one member whose first session is unreachable). It resets the process
// registry first, so the report reflects this run alone.
//
// The run exercises every instrument family of DESIGN.md §9 on purpose:
// phase spans (collect/partition/query/lsp/decrypt), transport retry and
// dial counters, group dropout/re-partition counters, and the paillier
// Precomputer pool (filled for roughly half the encryptions, so both the
// pool and online paths appear).
func (c Config) ObsSnapshot(latency time.Duration) (*ObsReport, error) {
	c = c.Defaults()
	reg := obs.Default()
	reg.Reset()

	rng := rand.New(rand.NewSource(c.Seed))
	const n, t, quorum = 5, 3, 3
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	p := core.DefaultParams(n)
	p.KeyBits = c.KeyBits
	p.D = 6
	p.Delta = 12
	p.K = 6
	p.Variant = core.VariantPPGNN
	p.NoSanitize = true
	coord, shares, err := core.NewThresholdCoordinator(p, locs[0], rng, t)
	if err != nil {
		return nil, err
	}
	// Half a query's worth of offline randomness per query: the pool
	// serves the first encryptions of each round and then drains, so the
	// report shows both source=pool and source=online.
	dp, err := coord.DeltaPrime(n)
	if err != nil {
		return nil, err
	}
	if _, err := coord.Precompute(c.Queries * dp / 2); err != nil {
		return nil, err
	}

	// The LSP behind real TCP, queried through a retrying Pool whose
	// first dial is refused — a guaranteed-retryable fault, so the soak
	// always exercises the retry counters.
	lsp := core.NewLSP(c.Items, c.Space)
	srv := transport.NewServer(lsp)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	lspSched := latencySchedule(c.Seed, latency, 4*c.Queries)
	lspSched[0].FailDial = true
	pool := transport.NewPool(addr.String())
	pool.Size = 2
	pool.Seed = c.Seed
	pool.RetryBase = 2 * time.Millisecond
	pool.RetryMax = 20 * time.Millisecond
	pool.DialFunc = faultnet.Dialer(lspSched...)
	defer pool.Close()

	// Four member processes behind real TCP. Member 1's first two dials
	// fail outright: its first session drops it and re-partitions, and a
	// later session welcomes it back.
	links := make([]group.Link, n-1)
	for i := 0; i < n-1; i++ {
		id := i + 1
		m := group.NewMember(locs[id], nil, rand.New(rand.NewSource(c.Seed+int64(id))))
		m.TK, m.Share = coord.TK, shares[i]
		msrv := transport.NewMemberServer(m)
		maddr, err := msrv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer msrv.Close()
		sched := latencySchedule(c.Seed+int64(100*id), latency, 8*c.Queries)
		if id == 1 {
			sched[0].FailDial = true
			sched[1].FailDial = true
		}
		link := group.DialMember(maddr.String())
		link.DialFunc = faultnet.Dialer(sched...)
		defer link.Close()
		links[i] = link
	}

	report := &ObsReport{
		N: n, T: t, Quorum: quorum,
		Queries: c.Queries, KeyBits: c.KeyBits, Seed: c.Seed,
		LatencyMS: latency.Milliseconds(),
	}
	for q := 0; q < c.Queries; q++ {
		sess, err := group.NewSession(coord, links, group.Config{
			Quorum:        quorum,
			MemberTimeout: 2 * time.Second,
			Retries:       1,
			RetryBase:     2 * time.Millisecond,
			RetryMax:      20 * time.Millisecond,
			Seed:          c.Seed + int64(q),
		})
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		out, err := sess.Run(ctx, pool)
		cancel()
		if err != nil {
			report.Failed++
			continue
		}
		if len(out.Contributors) < quorum {
			return nil, fmt.Errorf("obs soak query %d: %d contributors below quorum %d",
				q, len(out.Contributors), quorum)
		}
		report.OK++
	}
	if report.OK == 0 {
		return nil, fmt.Errorf("obs soak: all %d queries failed", c.Queries)
	}

	snap := reg.Snapshot()
	report.Snapshot = *snap
	for _, h := range snap.Histograms {
		if h.Name == "ppgnn_phase_seconds" {
			report.Phases = append(report.Phases, h)
		}
	}
	pooled := snap.Counter("paillier_precompute_encrypt_total", obs.L("source", "pool"))
	online := snap.Counter("paillier_precompute_encrypt_total", obs.L("source", "online"))
	if pooled+online > 0 {
		report.PoolHitRate = float64(pooled) / float64(pooled+online)
	}
	for _, cs := range snap.Counters {
		switch cs.Name {
		case "transport_retries_total":
			report.Retries += cs.Value
		case "group_dropouts_total":
			report.Dropouts += cs.Value
		}
	}
	return report, nil
}
