package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ppgnn/internal/dataset"
	"ppgnn/internal/load"
)

func healthySustained(cores int) *SustainedSection {
	return &SustainedSection{
		Rate: 120, Groups: 4, Cores: cores,
		Passes: []SustainedPass{
			{Name: "coalesce_off", OfferedQPS: 120, AchievedQPS: 50, Report: &load.Report{}},
			{Name: "coalesce_on", OfferedQPS: 120, AchievedQPS: 80, Report: &load.Report{}},
		},
		Speedup:       1.6,
		ByteIdentical: true,
	}
}

// TestSustainedCheckRejects drives the sustained verdict table: the
// conformance conditions are unconditional, the throughput floor applies
// only on ≥2 cores, and a single core skips it loudly.
func TestSustainedCheckRejects(t *testing.T) {
	if err := healthySustained(4).check(); err != nil {
		t.Fatalf("healthy section rejected: %v", err)
	}
	if err := (*SustainedSection)(nil).check(); err != nil {
		t.Fatalf("nil section (no sustained run) rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*SustainedSection)
		want string
	}{
		{"one pass", func(s *SustainedSection) { s.Passes = s.Passes[:1] }, "want coalesce_off and coalesce_on"},
		{"mismatch", func(s *SustainedSection) { s.Passes[1].Mismatches = 2 }, "oracle"},
		{"abandoned", func(s *SustainedSection) { s.Passes[0].Abandoned = 1 }, "abandoned"},
		{"not byte-identical", func(s *SustainedSection) { s.ByteIdentical = false }, "byte-identical"},
		{"below floor", func(s *SustainedSection) { s.Speedup = 1.1 }, "below the 1.3× floor"},
	}
	for _, c := range cases {
		s := healthySustained(4)
		c.mut(s)
		err := s.check()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: check = %v, want mention of %q", c.name, err, c.want)
		}
	}

	// On one core the floor is skipped — loudly — but conformance still
	// gates.
	single := healthySustained(1)
	single.Speedup = 0.9
	if reason := single.FloorSkipReason(); !strings.Contains(reason, "SKIPPED") {
		t.Fatalf("single-core skip not loud: %q", reason)
	}
	if err := single.check(); err != nil {
		t.Fatalf("single core must skip the floor, got %v", err)
	}
	single.ByteIdentical = false
	if err := single.check(); err == nil {
		t.Fatal("single core skipped byte-identity too")
	}
	if reason := healthySustained(2).FloorSkipReason(); reason != "" {
		t.Fatalf("two cores skipped the floor: %q", reason)
	}

	// The section gates through LoadReport.Check.
	rep := &LoadReport{Cores: 4, Passes: []LoadPass{{
		Name: "clean",
		Report: &load.Report{Stages: []load.StageReport{{
			Stage: "measure", Arrivals: 10, Done: 10, OK: 10,
			LatencyP95: 0.1, OfferedQPS: 10, AchievedQPS: 10,
		}}},
	}}, Traces: &TraceAudit{Traces: 1, Remote: 1}}
	rep.Sustained = healthySustained(4)
	rep.Sustained.Speedup = 1.0
	if err := rep.Check(nil); err == nil || !strings.Contains(err.Error(), "floor") {
		t.Fatalf("Check ignored the sustained floor: %v", err)
	}
}

// TestSustainedGateEndToEnd runs the full sustained section against an
// in-process server: both passes conformant with nothing abandoned, the
// byte-identity probe green, and the report JSON-stable. On this
// machine's core count the floor either applies or is skipped with the
// recorded reason — both paths must leave Check passing when the runs
// are clean.
func TestSustainedGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained-traffic gate run")
	}
	cfg := Config{Items: dataset.Synthetic(7, 1200), KeyBits: 192, Seed: 9}
	opts := quickLoadOpts()
	opts.Faulted = false
	opts.Sustained = true
	opts.SustainedRate = 60
	opts.SustainedMeasure = 1200 * time.Millisecond
	rep, err := cfg.LoadGate(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Sustained
	if s == nil {
		t.Fatal("no sustained section")
	}
	if len(s.Passes) != 2 || s.Passes[0].Name != "coalesce_off" || s.Passes[1].Name != "coalesce_on" {
		t.Fatalf("want coalesce_off+coalesce_on, got %+v", s.Passes)
	}
	if !s.ByteIdentical {
		t.Fatal("coalesced answers diverged from uncoalesced")
	}
	for _, p := range s.Passes {
		if p.Mismatches != 0 || p.Abandoned != 0 {
			t.Fatalf("%s pass: %d mismatches, %d abandoned", p.Name, p.Mismatches, p.Abandoned)
		}
		if p.AchievedQPS <= 0 {
			t.Fatalf("%s pass achieved %.2f qps", p.Name, p.AchievedQPS)
		}
	}
	if s.Cores < 2 && s.FloorSkipReason() == "" {
		t.Fatal("single core without a loud skip reason")
	}
	if s.Cores >= 2 && s.Speedup < sustainedSpeedupFloor {
		t.Fatalf("sustained speedup %.2f below floor on %d cores", s.Speedup, s.Cores)
	}
	if err := rep.Check(nil); err != nil {
		t.Fatalf("Check(nil): %v", err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Check(rep); err != nil {
		t.Fatalf("self-baseline check: %v", err)
	}
}
