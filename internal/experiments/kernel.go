package experiments

import (
	"bytes"
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/paillier"
	"ppgnn/internal/rtree"
)

// KernelReport is the payload of BENCH_kernel.json: single-thread timings
// of the homomorphic primitives with the modmath kernel on vs off (the
// reference per-term Exp loops), plus one end-to-end LSP query at worker
// width 1. Every exact-mode comparison asserts byte-identical outputs —
// the kernel's exactness contract, measured on the production path — and
// the short-exponent randomness mode is checked for decrypted-answer
// equality against the full-width run.
//
// CI compares a fresh report against the committed baseline via Check;
// regenerate with `make bench-kernel` (or `ppgnn-experiments -kernel-gate`).
type KernelReport struct {
	KeyBits       int `json:"keybits"`
	DeltaPrime    int `json:"delta_prime"`
	N             int `json:"n"`
	Cores         int `json:"cores"`
	Reps          int `json:"reps"`
	ShortRandBits int `json:"short_rand_bits"` // width verified for answer equality

	Dot     KernelMicro `json:"dot"`     // ⊙ over δ' terms
	Mat     KernelMicro `json:"mat"`     // ⨂, 4 rows of δ' terms
	Combine KernelMicro `json:"combine"` // threshold combine, t shares
	E2E     KernelMicro `json:"e2e"`     // core.LSP.Process, workers=1
}

// KernelMicro is one serial-vs-kernel contrast, best-of-reps each.
type KernelMicro struct {
	RefNsOp    int64   `json:"ref_ns_op"`    // kernel disabled (reference loops)
	KernelNsOp int64   `json:"kernel_ns_op"` // kernel enabled
	Speedup    float64 `json:"speedup"`      // ref / kernel
}

func (m *KernelMicro) fill() {
	if m.KernelNsOp > 0 {
		m.Speedup = float64(m.RefNsOp) / float64(m.KernelNsOp)
	}
}

// kernelTime runs f once untimed (cache warm-up: modmath contexts, power
// tables), then reps timed repetitions, returning the best.
func kernelTime(reps int, f func() error) (int64, error) {
	var best int64
	for r := 0; r < reps+1; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start).Nanoseconds()
		if r == 0 {
			continue
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// kernelContrast measures f with the kernel off then on (best-of-reps
// each) and byte-compares the two modes' outputs via snap, which must
// return the result bytes of the most recent call.
func kernelContrast(reps int, f func() error, snap func() []byte) (KernelMicro, error) {
	var m KernelMicro
	prev := paillier.SetKernel(false)
	defer paillier.SetKernel(prev)
	refNs, err := kernelTime(reps, f)
	if err != nil {
		return m, err
	}
	refOut := snap()
	paillier.SetKernel(true)
	kernelNs, err := kernelTime(reps, f)
	if err != nil {
		return m, err
	}
	if !bytes.Equal(refOut, snap()) {
		return m, fmt.Errorf("kernel and reference outputs differ — exactness contract broken")
	}
	m.RefNsOp, m.KernelNsOp = refNs, kernelNs
	m.fill()
	return m, nil
}

// KernelGate measures the modmath kernel against the reference loops on
// one thread: the ⊙/⨂ primitives at the δ'-term protocol shape, the
// threshold share combine, and a full LSP query at worker width 1.
// Exact-path outputs must be byte-identical between modes; the
// short-exponent randomness mode must decrypt to the identical answer.
func (c Config) KernelGate(reps int) (*KernelReport, error) {
	c = c.Defaults()
	if reps <= 0 {
		reps = 3
	}
	rep := &KernelReport{
		KeyBits: c.KeyBits, Cores: runtime.NumCPU(), Reps: reps,
	}

	// --- ⊙ and ⨂ at the protocol shape: δ' ≈ 101 terms under a
	// production-size key, coefficients spanning the plaintext space the
	// way encoded candidate answers do.
	rng := rand.New(rand.NewSource(c.Seed))
	key, err := paillier.GenerateKey(rng, c.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("kernel gate: keygen: %w", err)
	}
	const dotTerms = 101
	ns := key.NS(1)
	xs := make([]*big.Int, dotTerms)
	ms := make([]*big.Int, dotTerms)
	for i := range xs {
		xs[i] = new(big.Int).Rand(rng, ns)
		ms[i] = new(big.Int).Rand(rng, ns)
	}
	cs := make([]*paillier.Ciphertext, dotTerms)
	for i, m := range ms {
		ct, err := key.Encrypt(rng, m, 1)
		if err != nil {
			return nil, fmt.Errorf("kernel gate: encrypting term %d: %w", i, err)
		}
		cs[i] = ct
	}

	var dotOut *paillier.Ciphertext
	rep.Dot, err = kernelContrast(reps,
		func() error {
			out, err := key.DotProduct(xs, cs)
			dotOut = out
			return err
		},
		func() []byte { return dotOut.Bytes(&key.PublicKey) })
	if err != nil {
		return nil, fmt.Errorf("kernel gate: ⊙: %w", err)
	}

	rows := [][]*big.Int{xs, xs, xs, xs}
	var matOut []*paillier.Ciphertext
	rep.Mat, err = kernelContrast(reps,
		func() error {
			out, err := key.MatSelect(rows, cs)
			matOut = out
			return err
		},
		func() []byte {
			var b bytes.Buffer
			for _, ct := range matOut {
				b.Write(ct.Bytes(&key.PublicKey))
			}
			return b.Bytes()
		})
	if err != nil {
		return nil, fmt.Errorf("kernel gate: ⨂: %w", err)
	}

	// --- Threshold combine. A smaller modulus keeps safe-prime generation
	// off the gate's critical path; t=5 shares put the combine above the
	// kernel's Straus cutoff so the interleaved path is what's measured.
	tkBits := c.KeyBits / 2
	if tkBits > 512 {
		tkBits = 512
	}
	if tkBits < 192 {
		tkBits = 192
	}
	tk, shares, err := paillier.GenerateThresholdKey(rng, tkBits, 7, 5, 1)
	if err != nil {
		return nil, fmt.Errorf("kernel gate: threshold keygen: %w", err)
	}
	ctT, err := tk.Encrypt(rng, big.NewInt(424242), 1)
	if err != nil {
		return nil, err
	}
	ds := make([]*paillier.DecryptionShare, 0, tk.T)
	for _, sh := range shares[:tk.T] {
		d, err := tk.PartialDecrypt(sh, ctT)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	var combineOut *big.Int
	rep.Combine, err = kernelContrast(reps,
		func() error {
			out, err := tk.Combine(ds)
			combineOut = out
			return err
		},
		func() []byte { return combineOut.Bytes() })
	if err != nil {
		return nil, fmt.Errorf("kernel gate: combine: %w", err)
	}
	if combineOut.Cmp(big.NewInt(424242)) != 0 {
		return nil, fmt.Errorf("kernel gate: combine decrypted %v, want 424242", combineOut)
	}

	// --- End to end: one fixed query through core.LSP.Process at worker
	// width 1, kernel off vs on, byte-identical answers required. The
	// query runs the PPGNN-NAS configuration (sanitation off, Section
	// 8.3.2) over a small POI set: answer sanitation and the R-tree kGNN
	// are dataset/statistics costs orthogonal to the kernel and would
	// drown the homomorphic selection this gate exists to pin (~150 ms of
	// dataset-independent sanitation against a ~95 ms serial selection).
	grng := rand.New(rand.NewSource(c.Seed))
	const n = 4
	p := core.DefaultParams(n)
	p.KeyBits = c.KeyBits
	p.NoSanitize = true
	locs := randomLocations(grng, n, c.Space)
	g, err := core.NewGroup(p, locs, grng)
	if err != nil {
		return nil, err
	}
	rep.N, rep.DeltaPrime = n, g.DeltaPrime()
	var m cost.Meter
	q, lms, err := g.BuildQuery(&m)
	if err != nil {
		return nil, err
	}
	lsp := core.NewLSP(kernelGateItems(), c.Space)
	lsp.Workers = 1
	var ansBytes []byte
	rep.E2E, err = kernelContrast(reps,
		func() error {
			var rm cost.Meter
			ans, err := lsp.Process(q, lms, &rm)
			if err != nil {
				return err
			}
			ansBytes = ans.Marshal()
			return nil
		},
		func() []byte { return ansBytes })
	if err != nil {
		return nil, fmt.Errorf("kernel gate: end-to-end: %w", err)
	}

	// --- Short-exponent randomness: the same seeds with the mode on must
	// decrypt to the identical POIs (ciphertext bytes legitimately differ;
	// the answer may not).
	exact, err := kernelGateAnswer(c, 0)
	if err != nil {
		return nil, fmt.Errorf("kernel gate: full-width answer: %w", err)
	}
	rep.ShortRandBits = 224
	if rep.ShortRandBits >= c.KeyBits {
		rep.ShortRandBits = c.KeyBits / 2
	}
	short, err := kernelGateAnswer(c, rep.ShortRandBits)
	if err != nil {
		return nil, fmt.Errorf("kernel gate: short-rand answer: %w", err)
	}
	if len(exact) != len(short) {
		return nil, fmt.Errorf("kernel gate: short-rand answer has %d coordinates, full-width %d", len(short), len(exact))
	}
	for i := range exact {
		if exact[i] != short[i] {
			return nil, fmt.Errorf("kernel gate: short-rand answer diverges at coordinate %d", i)
		}
	}
	return rep, nil
}

// kernelGateItems is the fixed small POI set the end-to-end contrast
// runs against (see the comment at its use).
func kernelGateItems() []rtree.Item {
	return dataset.Synthetic(123, 3000)
}

// kernelGateAnswer runs one seeded group query with the given
// ShortRandBits and returns the decrypted answer as flat coordinates.
func kernelGateAnswer(c Config, shortRandBits int) ([]float64, error) {
	rng := rand.New(rand.NewSource(c.Seed + 1))
	const n = 4
	p := core.DefaultParams(n)
	p.KeyBits = c.KeyBits
	p.ShortRandBits = shortRandBits
	p.NoSanitize = true
	locs := randomLocations(rng, n, c.Space)
	g, err := core.NewGroup(p, locs, rng)
	if err != nil {
		return nil, err
	}
	lsp := core.NewLSP(kernelGateItems(), c.Space)
	lsp.Workers = 1
	var m cost.Meter
	res, err := g.Run(core.LocalService{LSP: lsp, Meter: &m}, &m)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, 2*len(res.Points))
	for _, pt := range res.Points {
		out = append(out, pt.X, pt.Y)
	}
	return out, nil
}

// Check enforces the CI gate. The floors are single-thread — unlike the
// parallel gate they hold on any core count: the kernel must clear 1.5×
// on the ⊙/⨂ micro-contrasts and 1.3× end to end. Baseline comparisons
// only run when the core counts match (nanoseconds are not comparable
// across hardware): the kernel times may not regress more than 25% and
// the ⊙ speedup may not collapse below 80% of the baseline's.
func (r *KernelReport) Check(baseline *KernelReport) error {
	if r.Dot.Speedup < 1.5 {
		return fmt.Errorf("kernel gate: ⊙ speedup %.2f× below the 1.5× floor (ref %d ns, kernel %d ns)",
			r.Dot.Speedup, r.Dot.RefNsOp, r.Dot.KernelNsOp)
	}
	if r.Mat.Speedup < 1.5 {
		return fmt.Errorf("kernel gate: ⨂ speedup %.2f× below the 1.5× floor (ref %d ns, kernel %d ns)",
			r.Mat.Speedup, r.Mat.RefNsOp, r.Mat.KernelNsOp)
	}
	if r.E2E.Speedup < 1.3 {
		return fmt.Errorf("kernel gate: end-to-end speedup %.2f× below the 1.3× floor (ref %d ns, kernel %d ns)",
			r.E2E.Speedup, r.E2E.RefNsOp, r.E2E.KernelNsOp)
	}
	if baseline == nil || baseline.Cores != r.Cores {
		return nil
	}
	for _, c := range []struct {
		name      string
		cur, base KernelMicro
	}{
		{"⊙", r.Dot, baseline.Dot},
		{"end-to-end", r.E2E, baseline.E2E},
	} {
		if c.base.KernelNsOp > 0 {
			limit := c.base.KernelNsOp + c.base.KernelNsOp/4
			if c.cur.KernelNsOp > limit {
				return fmt.Errorf("kernel gate: %s kernel ns/op %d regressed >25%% vs baseline %d (cores=%d)",
					c.name, c.cur.KernelNsOp, c.base.KernelNsOp, r.Cores)
			}
		}
	}
	if r.Dot.Speedup < 0.8*baseline.Dot.Speedup {
		return fmt.Errorf("kernel gate: ⊙ speedup %.2f× below 80%% of baseline %.2f×",
			r.Dot.Speedup, baseline.Dot.Speedup)
	}
	return nil
}
