package experiments

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ppgnn/internal/load"
)

// A short chaos gate run end to end: reload storm, two tenants, fault
// injection, oracle checking — and the report survives the JSON round
// trip CI relies on.
func TestChaosGateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant lifecycle soak")
	}
	cfg := Config{KeyBits: 192, Seed: 5}
	rep, err := cfg.ChaosGate(ChaosGateOptions{
		Rate:    25,
		Warmup:  300 * time.Millisecond,
		Measure: 2 * time.Second,
		Drain:   20 * time.Second,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("chaos gate: %v", err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ChaosReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Check(); err != nil {
		t.Fatalf("after JSON round trip: %v", err)
	}
}

func TestChaosReportCheckRejects(t *testing.T) {
	mk := func(mut func(*ChaosReport)) *ChaosReport {
		r := &ChaosReport{
			AppliedReloads:  3,
			RejectedReloads: 1,
			Epochs:          4,
			LiveEpochs:      1,
			FinalState:      "ready",
			QuotaSheds:      2,
			Tenants: []ChaosTenant{
				{Tenant: "alpha", Faulted: true, Report: &load.Report{Stages: []load.StageReport{{
					Stage: "measure", Arrivals: 10, Done: 10, OK: 10,
					Outcomes: map[string]int64{"ok": 10},
				}}}},
				{Tenant: "beta", Report: &load.Report{Stages: []load.StageReport{{
					Stage: "measure", Arrivals: 10, Done: 10, OK: 8,
					Outcomes: map[string]int64{"ok": 8, "busy": 2},
				}}}},
			},
			Traces: &TraceAudit{Traces: 3, Remote: 3},
		}
		mut(r)
		return r
	}

	if err := mk(func(r *ChaosReport) {}).Check(); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
	cases := []struct {
		name string
		rep  *ChaosReport
		want string
	}{
		{"empty", &ChaosReport{}, "no tenant"},
		{"mismatch", mk(func(r *ChaosReport) { r.Tenants[1].Report.Stages[0].Mismatches = 1 }), "oracle"},
		{"abandoned", mk(func(r *ChaosReport) { r.Tenants[0].Report.Abandoned = 2 }), "abandoned"},
		{"too few reloads", mk(func(r *ChaosReport) { r.AppliedReloads = 2 }), "applied reloads"},
		{"no rejection", mk(func(r *ChaosReport) { r.RejectedReloads = 0 }), "rejected"},
		{"watchdog", mk(func(r *ChaosReport) { r.WatchdogTrips = 1 }), "watchdog"},
		{"epoch leak", mk(func(r *ChaosReport) { r.LiveEpochs = 3 }), "live"},
		{"not ready", mk(func(r *ChaosReport) { r.FinalState = "draining" }), "ready"},
		{"alpha shed", mk(func(r *ChaosReport) {
			r.Tenants[0].Report.Stages[0].Outcomes["busy"] = 1
		}), `"busy"`},
		{"beta timeout", mk(func(r *ChaosReport) {
			r.Tenants[1].Report.Stages[0].Outcomes["timeout"] = 1
		}), `"timeout"`},
		{"no beta sheds", mk(func(r *ChaosReport) {
			r.Tenants[1].Report.Stages[0].Outcomes = map[string]int64{"ok": 10}
		}), "no sheds"},
		{"no server sheds", mk(func(r *ChaosReport) { r.QuotaSheds = 0 }), "no quota admissions"},
		{"no trace audit", mk(func(r *ChaosReport) { r.Traces = nil }), "trace audit"},
		{"trace violation", mk(func(r *ChaosReport) {
			r.Traces.Violations = []string{`trace 0abc: phase "decrypt_user_3" outside the closed enum`}
		}), "violation"},
	}
	for _, c := range cases {
		err := c.rep.Check()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Check = %v, want mention of %q", c.name, err, c.want)
		}
	}
}
