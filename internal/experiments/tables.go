package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/encode"
	"ppgnn/internal/partition"
)

// Table2 verifies the asymptotic cost analysis of Table 2 empirically:
// the measured user↔LSP ciphertext traffic must match the closed forms
//
//	PPGNN:     O(nd)L_l + O(δ')L_e + O(k)L_e
//	PPGNN-OPT: O(nd)L_l + O(√δ')L_e + O(k)L_e
//
// It returns a textual report of predicted vs measured bytes at two δ'
// scales, demonstrating the O(δ') vs O(√δ') growth.
func (c Config) Table2() (string, error) {
	c = c.Defaults()
	lsp := c.newLSP()
	var b strings.Builder
	b.WriteString("Table 2: communication-cost forms, predicted vs measured (user↔LSP bytes)\n")
	b.WriteString("L_l = 16B/location, L_e = 2·|N|/8 per ε1 ciphertext, 1.5·L_e per ε2\n\n")
	kb := c.KeyBits / 8
	le := 2 * kb

	for _, delta := range []int{50, 200} {
		part, err := partition.Solve(core.DefaultN, core.DefaultD, delta)
		if err != nil {
			return "", err
		}
		dp := part.DeltaPrime
		codec := encode.Codec{ModulusBits: c.KeyBits}
		m := codec.IntsFor(core.DefaultK)

		for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT} {
			p := c.params(core.DefaultN, variant)
			p.Delta = delta
			p.NoSanitize = true // answer length = k exactly, matching the form
			meas, err := c.runProtocol(p, lsp, c.Seed+int64(delta))
			if err != nil {
				return "", err
			}
			var predicted int
			switch variant {
			case core.VariantPPGNN:
				predicted = core.DefaultN*core.DefaultD*16 + dp*le + m*le
			case core.VariantOPT:
				omega := core.OptimalOmega(dp)
				cols := (dp + omega - 1) / omega
				predicted = core.DefaultN*core.DefaultD*16 + cols*le + omega*3*kb + m*3*kb
			}
			fmt.Fprintf(&b, "δ=%3d (δ'=%3d) %-10v predicted≈%8d  measured=%8.0f  ratio=%.2f\n",
				delta, dp, variant, predicted, meas.CommBytes, meas.CommBytes/float64(predicted))
		}
	}
	b.WriteString("\nPPGNN grows linearly in δ'; PPGNN-OPT in √δ' (compare the two δ rows).\n")
	return b.String(), nil
}

// Table3 renders the evaluated parameter ranges and defaults.
func (c Config) Table3() string {
	var b strings.Builder
	b.WriteString("Table 3: parameters evaluated\n")
	b.WriteString("  scenario  parameter                      range        default\n")
	rows := []string{
		"  n = 1     Privacy I parameter (d)        [5, 50]      25",
		"  n = 1     POIs to retrieve (k)           [2, 32]      8",
		"  n > 1     Privacy II parameter (delta)   [25, 200]    100",
		"  n > 1     POIs to retrieve (k)           [2, 32]      8",
		"  n > 1     user number (n)                [2, 32]      8",
		"  n > 1     Privacy IV parameter (theta0)  [0.01, 0.1]  0.05",
	}
	b.WriteString(strings.Join(rows, "\n"))
	fmt.Fprintf(&b, "\n  keysize %d bits, gamma=0.05, eta=0.2, phi=0.1, F=sum, %d POIs\n",
		c.Defaults().KeyBits, len(c.Defaults().Items))
	return b.String()
}

// Table4 renders the privacy-property matrix of Table 4 for the systems
// implemented in this repository.
func Table4() string {
	var b strings.Builder
	b.WriteString("Table 4: privacy properties of the implemented approaches\n")
	b.WriteString("  approach    technique                        I    II   III  IV\n")
	rows := []string{
		"  APNN [36]   grid precompute + private fetch  yes  yes  yes  n/a  (n=1 only, approximate)",
		"  IPPF [14]   cloak-region candidate superset  yes  yes  NO   NO",
		"  GLP  [2]    secure-sum centroid              yes  NO   yes  NO",
		"  PPGNN       dummy + Paillier selection       yes  yes  yes  yes  (full collusion)",
	}
	b.WriteString(strings.Join(rows, "\n"))
	b.WriteString("\n")
	return b.String()
}

// KeygenCost reports the one-time key generation cost excluded from the
// per-query user cost (see core.Group.KeygenTime).
func (c Config) KeygenCost() (time.Duration, error) {
	c = c.Defaults()
	p := c.params(1, core.VariantPPGNN)
	p.Delta = p.D
	rng := rand.New(rand.NewSource(c.Seed))
	g, err := core.NewGroup(p, randomLocations(rng, 1, c.Space), rng)
	if err != nil {
		return 0, err
	}
	return g.KeygenTime, nil
}

// Mobile translates the default-setting costs of the three variants into
// user-perceived latency on 3G/4G/WiFi links — the mobile-scenario
// motivation of the paper made concrete (communication is the scarce
// resource, so PPGNN-OPT's O(√δ') indicator pays off most on slow links).
func (c Config) Mobile() (string, error) {
	c = c.Defaults()
	lsp := c.newLSP()
	var b strings.Builder
	b.WriteString("Mobile latency estimates at the Table 3 defaults (n=8, δ=100, k=8)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s\n", "variant", "comm", "3G", "4G", "WiFi")
	for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT, core.VariantNaive} {
		p := c.params(c.defaultN(), variant)
		meas, err := c.runProtocol(p, lsp, c.Seed+int64(variant))
		if err != nil {
			return "", err
		}
		snap := measurementSnapshot(meas)
		fmt.Fprintf(&b, "%-10v %14s %14v %14v %14v\n",
			variant,
			fmtBytes(int64(meas.CommBytes)),
			cost.ThreeG.EndToEnd(snap).Round(time.Millisecond),
			cost.FourG.EndToEnd(snap).Round(time.Millisecond),
			cost.WiFi.EndToEnd(snap).Round(time.Millisecond))
	}
	b.WriteString("\n(link presets: 3G 250KB/s up / 200ms RTT; 4G 2MB/s / 60ms; WiFi 10MB/s / 10ms)\n")
	return b.String(), nil
}

// measurementSnapshot reconstitutes a cost.Snapshot from an averaged
// measurement for the latency model (all communication charged to the
// uplink-dominant user→LSP channel except the answer, which is small).
func measurementSnapshot(m measurement) cost.Snapshot {
	return cost.Snapshot{
		UserToLSPBytes: int64(m.CommBytes),
		UserTime:       time.Duration(m.UserMS * float64(time.Millisecond)),
		LSPTime:        time.Duration(m.LSPMS * float64(time.Millisecond)),
	}
}

func fmtBytes(n int64) string { return cost.FormatBytes(n) }
