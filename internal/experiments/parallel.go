package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
)

// ParallelReport is the payload of BENCH_parallel.json: the serial vs
// parallel timing of the LSP query phase — core.LSP.Process, covering
// candidate kGNN, sanitation, encoding, and the homomorphic private
// selection — over one fixed query. The answers produced at every width
// are asserted byte-equal, so the gate doubles as a determinism check of
// the production path (not just the unit-test harness).
//
// CI compares a fresh report against the committed baseline via Check;
// the baseline is regenerated with `make bench-gate` (or
// `ppgnn-experiments -parallel-gate`).
type ParallelReport struct {
	KeyBits    int `json:"keybits"`
	DeltaPrime int `json:"delta_prime"`
	N          int `json:"n"`
	Workers    int `json:"workers"`
	Cores      int `json:"cores"`
	Reps       int `json:"reps"`

	SerialNsOp   int64   `json:"serial_ns_op"`   // best of Reps at Workers=1
	ParallelNsOp int64   `json:"parallel_ns_op"` // best of Reps at Workers
	Speedup      float64 `json:"speedup"`        // serial / parallel
}

// ParallelGate measures the LSP query phase serially (Workers=1) and with
// a pool of the given width (0 = GOMAXPROCS), reps repetitions each, and
// reports the best time per width. The query is built once and replayed,
// so the two widths process identical bytes; their answers must match
// exactly or the gate errors.
func (c Config) ParallelGate(workers, reps int) (*ParallelReport, error) {
	c = c.Defaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reps <= 0 {
		reps = 3
	}

	rng := rand.New(rand.NewSource(c.Seed))
	const n = 4
	p := core.DefaultParams(n)
	p.KeyBits = c.KeyBits
	locs := randomLocations(rng, n, c.Space)
	g, err := core.NewGroup(p, locs, rng)
	if err != nil {
		return nil, err
	}
	dp := g.DeltaPrime()
	if dp < 32 {
		return nil, fmt.Errorf("parallel gate: δ'=%d below the 32-candidate floor the gate is specified for", dp)
	}
	var m cost.Meter
	q, lms, err := g.BuildQuery(&m)
	if err != nil {
		return nil, err
	}
	lsp := core.NewLSP(c.Items, c.Space)

	// One timed sweep at a fixed width; returns best-of-reps and the
	// marshalled answer of the last repetition.
	run := func(width int) (int64, []byte, error) {
		lsp.Workers = width
		var best int64
		var answer []byte
		for r := 0; r < reps+1; r++ { // +1: untimed warm-up (cache fills)
			var rm cost.Meter
			start := time.Now()
			ans, err := lsp.Process(q, lms, &rm)
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				return 0, nil, err
			}
			if r == 0 {
				continue
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
			answer = ans.Marshal()
		}
		return best, answer, nil
	}

	serialNs, serialAns, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("parallel gate: serial run: %w", err)
	}
	parallelNs, parallelAns, err := run(workers)
	if err != nil {
		return nil, fmt.Errorf("parallel gate: parallel run: %w", err)
	}
	if !bytes.Equal(serialAns, parallelAns) {
		return nil, fmt.Errorf("parallel gate: answers differ between workers=1 and workers=%d — parallel pipeline is nondeterministic", workers)
	}

	rep := &ParallelReport{
		KeyBits: p.KeyBits, DeltaPrime: dp, N: n,
		Workers: workers, Cores: runtime.NumCPU(), Reps: reps,
		SerialNsOp: serialNs, ParallelNsOp: parallelNs,
	}
	if parallelNs > 0 {
		rep.Speedup = float64(serialNs) / float64(parallelNs)
	}
	return rep, nil
}

// Check enforces the CI gate. With two or more cores (Cores is
// runtime.NumCPU — the machine's truth, not GOMAXPROCS's opinion) the
// parallel path must clear a 1.5× speedup over serial; on a single core
// the floor is meaningless (there is nothing to parallelize onto), the
// skip is announced via FloorSkipReason, and only the determinism
// assertion inside ParallelGate applies. Baseline comparisons
// only run when the core counts match — neither nanoseconds nor achievable
// speedups are comparable across different hardware: the parallel time may
// not regress more than 20%, and on multi-core hardware the speedup may
// not collapse below 80% of the baseline's.
// FloorSkipReason is non-empty when the speedup floor cannot apply on
// this hardware; callers must surface it loudly rather than let a
// single-core PASS read as a verified speedup.
func (r *ParallelReport) FloorSkipReason() string {
	if r.Cores < 2 {
		return fmt.Sprintf("single core (cores=%d): the 1.5× speedup floor is SKIPPED — determinism and byte-equality checks only", r.Cores)
	}
	return ""
}

func (r *ParallelReport) Check(baseline *ParallelReport) error {
	if r.Cores >= 2 && r.Speedup < 1.5 {
		return fmt.Errorf("parallel gate: speedup %.2f× below the 1.5× floor (serial %d ns, parallel %d ns, workers=%d, cores=%d)",
			r.Speedup, r.SerialNsOp, r.ParallelNsOp, r.Workers, r.Cores)
	}
	if baseline == nil || baseline.Cores != r.Cores {
		return nil
	}
	if baseline.ParallelNsOp > 0 {
		limit := baseline.ParallelNsOp + baseline.ParallelNsOp/5
		if r.ParallelNsOp > limit {
			return fmt.Errorf("parallel gate: parallel ns/op %d regressed >20%% vs baseline %d (cores=%d)",
				r.ParallelNsOp, baseline.ParallelNsOp, r.Cores)
		}
	}
	if r.Cores >= 2 && r.Speedup < 0.8*baseline.Speedup {
		return fmt.Errorf("parallel gate: speedup %.2f× below 80%% of baseline %.2f×",
			r.Speedup, baseline.Speedup)
	}
	return nil
}
