// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8). Each FigN function returns the plotted series as
// text tables with the same x-axes and series the paper reports;
// cmd/ppgnn-experiments prints them and EXPERIMENTS.md records a run.
//
// Absolute numbers differ from the paper (Go + math/big here vs C++ + GMP
// there); the comparisons of interest are the *shapes*: who wins, by what
// factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ppgnn/internal/baseline/apnn"
	"ppgnn/internal/baseline/glp"
	"ppgnn/internal/baseline/ippf"
	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
	"ppgnn/internal/rtree"
)

// Config parameterizes a harness run.
type Config struct {
	Items   []rtree.Item // POI database (default: the Sequoia substitute)
	Space   geo.Rect
	Queries int   // repeated queries per data point (paper: 500)
	KeyBits int   // Paillier modulus (paper: 1024)
	Seed    int64 // base RNG seed
	// Quick shrinks the sweeps to two points each and the group defaults to
	// n=4, δ=50 — a smoke-test mode for CI; the paper's sweeps are the
	// default.
	Quick bool
}

// Defaults fills unset fields. Queries defaults to 3 (the paper used 500;
// scale up with -queries for tighter averages).
func (c Config) Defaults() Config {
	if c.Items == nil {
		c.Items = dataset.Sequoia(dataset.DefaultSeed)
	}
	if !c.Space.Valid() || c.Space.Area() == 0 {
		c.Space = geo.UnitRect
	}
	if c.Queries == 0 {
		c.Queries = 3
	}
	if c.KeyBits == 0 {
		c.KeyBits = core.DefaultKeyBits
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Table is one chart of the paper rendered as text.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
}

// Row is one x position with one value per series (NaN = not applicable).
type Row struct {
	X      float64
	Values []float64
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-10s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%16s", s)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10.4g", r.X)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%16.4g", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// measurement is one averaged protocol run.
type measurement struct {
	CommBytes float64 // total communication (all channels)
	UserMS    float64 // summed user computation, milliseconds
	LSPMS     float64 // LSP computation, milliseconds
	Answer    float64 // POIs returned per answer
}

// runProtocol measures `queries` repetitions of a group query with the
// given parameters. Each repetition uses a fresh random group (new real
// locations), matching the paper's averaging over 500 random queries; the
// unmetered per-group key generation is reported separately (KeygenCost).
func (c Config) runProtocol(p core.Params, lsp *core.LSP, seed int64) (measurement, error) {
	rng := rand.New(rand.NewSource(seed))
	var total cost.Snapshot
	answers := 0
	for q := 0; q < c.Queries; q++ {
		locs := randomLocations(rng, p.N, c.Space)
		g, err := core.NewGroup(p, locs, rng)
		if err != nil {
			return measurement{}, err
		}
		var m cost.Meter
		res, err := g.Run(core.LocalService{LSP: lsp, Meter: &m}, &m)
		if err != nil {
			return measurement{}, err
		}
		answers += len(res.Records)
		total = total.Add(m.Snapshot())
	}
	avg := total.Scale(c.Queries)
	return measurement{
		CommBytes: float64(avg.TotalBytes()),
		UserMS:    float64(avg.UserTime) / float64(time.Millisecond),
		LSPMS:     float64(avg.LSPTime) / float64(time.Millisecond),
		Answer:    float64(answers) / float64(c.Queries),
	}, nil
}

func randomLocations(rng *rand.Rand, n int, space geo.Rect) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{
			X: space.Min.X + rng.Float64()*space.Width(),
			Y: space.Min.Y + rng.Float64()*space.Height(),
		}
	}
	return out
}

// params builds the default group parameters for this config.
func (c Config) params(n int, variant core.Variant) core.Params {
	p := core.DefaultParams(n)
	p.KeyBits = c.KeyBits
	p.Variant = variant
	p.Space = c.Space
	if c.Quick && n > 1 {
		p.Delta = 50
	}
	return p
}

// defaultN is the group size used where the paper fixes n=8.
func (c Config) defaultN() int {
	if c.Quick {
		return 4
	}
	return core.DefaultN
}

// Sweep ranges (Table 3); Quick mode keeps the endpoints only.
func (c Config) sweepD() []int {
	if c.Quick {
		return []int{5, 25}
	}
	return []int{5, 15, 25, 35, 50}
}
func (c Config) sweepK() []int {
	if c.Quick {
		return []int{2, 8}
	}
	return []int{2, 4, 8, 16, 32}
}
func (c Config) sweepDelta() []int {
	if c.Quick {
		return []int{25, 50}
	}
	return []int{25, 50, 100, 150, 200}
}
func (c Config) sweepN() []int {
	if c.Quick {
		return []int{2, 4}
	}
	return []int{2, 4, 8, 16, 32}
}
func (c Config) sweepTheta() []float64 {
	if c.Quick {
		return []float64{0.05, 0.1}
	}
	return []float64{0.01, 0.025, 0.05, 0.075, 0.1}
}

// newLSP builds the shared LSP for a figure.
func (c Config) newLSP() *core.LSP {
	l := core.NewLSP(c.Items, c.Space)
	l.SanitizeSeed = c.Seed
	return l
}

// threeCostTables allocates the comm/user/LSP table triple used by most
// figures.
func threeCostTables(prefix, xlabel string, series []string) []*Table {
	return []*Table{
		{Title: prefix + ": total communication cost", XLabel: xlabel, YLabel: "bytes", Series: series},
		{Title: prefix + ": user computational cost", XLabel: xlabel, YLabel: "ms", Series: series},
		{Title: prefix + ": LSP computational cost", XLabel: xlabel, YLabel: "ms", Series: series},
	}
}

func appendMeasurements(tables []*Table, x float64, ms []measurement) {
	comm := make([]float64, len(ms))
	user := make([]float64, len(ms))
	lsp := make([]float64, len(ms))
	for i, m := range ms {
		comm[i], user[i], lsp[i] = m.CommBytes, m.UserMS, m.LSPMS
	}
	tables[0].Rows = append(tables[0].Rows, Row{X: x, Values: comm})
	tables[1].Rows = append(tables[1].Rows, Row{X: x, Values: user})
	tables[2].Rows = append(tables[2].Rows, Row{X: x, Values: lsp})
}

// Fig5 reproduces Figure 5 (single user, n=1): (a–c) vary d with PPGNN and
// PPGNN-OPT; (d–f) vary k adding the APNN baseline.
func (c Config) Fig5() ([]*Table, error) {
	c = c.Defaults()
	lsp := c.newLSP()

	// (a–c) vary d.
	varyD := threeCostTables("Figure 5a-c (n=1, vary d)", "d", []string{"PPGNN", "PPGNN-OPT"})
	for _, d := range c.sweepD() {
		var ms []measurement
		for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT} {
			p := c.params(1, variant)
			p.D, p.Delta = d, d
			m, err := c.runProtocol(p, lsp, c.Seed+int64(d))
			if err != nil {
				return nil, fmt.Errorf("fig5 d=%d %v: %w", d, variant, err)
			}
			ms = append(ms, m)
		}
		appendMeasurements(varyD, float64(d), ms)
	}

	// (d–f) vary k, with APNN (b=5 ≙ d=25).
	varyK := threeCostTables("Figure 5d-f (n=1, vary k)", "k", []string{"PPGNN", "PPGNN-OPT", "APNN"})
	apnnSrv, err := apnn.NewServer(c.Items, c.Space, 64, 32)
	if err != nil {
		return nil, err
	}
	apnnKey, err := paillier.GenerateKey(nil, c.KeyBits)
	if err != nil {
		return nil, err
	}
	for _, k := range c.sweepK() {
		var ms []measurement
		for _, variant := range []core.Variant{core.VariantPPGNN, core.VariantOPT} {
			p := c.params(1, variant)
			p.K = k
			p.Delta = p.D
			m, err := c.runProtocol(p, lsp, c.Seed+int64(k))
			if err != nil {
				return nil, fmt.Errorf("fig5 k=%d %v: %w", k, variant, err)
			}
			ms = append(ms, m)
		}
		// APNN.
		rng := rand.New(rand.NewSource(c.Seed + int64(k)))
		cli := &apnn.Client{B: 5, Key: apnnKey, Rng: rng}
		var total cost.Snapshot
		for q := 0; q < c.Queries; q++ {
			var meter cost.Meter
			loc := randomLocations(rng, 1, c.Space)[0]
			if _, err := cli.Query(apnnSrv, loc, k, &meter); err != nil {
				return nil, fmt.Errorf("fig5 apnn k=%d: %w", k, err)
			}
			total = total.Add(meter.Snapshot())
		}
		avg := total.Scale(c.Queries)
		ms = append(ms, measurement{
			CommBytes: float64(avg.TotalBytes()),
			UserMS:    float64(avg.UserTime) / float64(time.Millisecond),
			LSPMS:     float64(avg.LSPTime) / float64(time.Millisecond),
		})
		appendMeasurements(varyK, float64(k), ms)
	}
	return append(varyD, varyK...), nil
}

// Fig6 reproduces Figure 6 (group query, n>1): the PPGNN / PPGNN-OPT /
// Naive comparison varying δ, k, n and θ0.
func (c Config) Fig6() ([]*Table, error) {
	c = c.Defaults()
	lsp := c.newLSP()
	variants := []core.Variant{core.VariantPPGNN, core.VariantOPT, core.VariantNaive}
	names := []string{"PPGNN", "PPGNN-OPT", "Naive"}

	sweep := func(prefix, xlabel string, xs []int, mod func(p *core.Params, x int)) ([]*Table, error) {
		tables := threeCostTables(prefix, xlabel, names)
		for _, x := range xs {
			var ms []measurement
			for _, variant := range variants {
				p := c.params(c.defaultN(), variant)
				mod(&p, x)
				m, err := c.runProtocol(p, lsp, c.Seed+int64(x))
				if err != nil {
					return nil, fmt.Errorf("%s x=%d %v: %w", prefix, x, variant, err)
				}
				ms = append(ms, m)
			}
			appendMeasurements(tables, float64(x), ms)
		}
		return tables, nil
	}

	deltaT, err := sweep("Figure 6a-c (n>1, vary δ)", "delta", c.sweepDelta(),
		func(p *core.Params, x int) { p.Delta = x })
	if err != nil {
		return nil, err
	}
	kT, err := sweep("Figure 6d-f (n>1, vary k)", "k", c.sweepK(),
		func(p *core.Params, x int) { p.K = x })
	if err != nil {
		return nil, err
	}
	nT, err := sweep("Figure 6g-i (n>1, vary n)", "n", c.sweepN(),
		func(p *core.Params, x int) { p.N = x })
	if err != nil {
		return nil, err
	}
	// θ0 needs a float sweep.
	thetaT := threeCostTables("Figure 6j-l (n>1, vary θ0)", "theta0", names)
	for _, th := range c.sweepTheta() {
		var ms []measurement
		for _, variant := range variants {
			p := c.params(c.defaultN(), variant)
			p.Theta0 = th
			m, err := c.runProtocol(p, lsp, c.Seed+int64(th*1000))
			if err != nil {
				return nil, fmt.Errorf("fig6 θ0=%v %v: %w", th, variant, err)
			}
			ms = append(ms, m)
		}
		appendMeasurements(thetaT, th, ms)
	}
	out := append(deltaT, kT...)
	out = append(out, nT...)
	out = append(out, thetaT...)
	return out, nil
}

// Fig7 reproduces Figure 7: the number of POIs actually returned per
// answer after sanitation, varying k, n and θ0 (defaults k=8, n=8,
// θ0=0.01 as in the paper's Figure 7).
func (c Config) Fig7() ([]*Table, error) {
	c = c.Defaults()
	lsp := c.newLSP()
	const fig7Theta = 0.01

	run := func(p core.Params, seed int64) (float64, error) {
		m, err := c.runProtocol(p, lsp, seed)
		if err != nil {
			return 0, err
		}
		return m.Answer, nil
	}

	kT := &Table{Title: "Figure 7a: POIs returned vs k", XLabel: "k", YLabel: "POIs", Series: []string{"PPGNN"}}
	for _, k := range c.sweepK() {
		p := c.params(c.defaultN(), core.VariantPPGNN)
		p.K = k
		p.Theta0 = fig7Theta
		v, err := run(p, c.Seed+int64(k))
		if err != nil {
			return nil, err
		}
		kT.Rows = append(kT.Rows, Row{X: float64(k), Values: []float64{v}})
	}
	nT := &Table{Title: "Figure 7b: POIs returned vs n", XLabel: "n", YLabel: "POIs", Series: []string{"PPGNN"}}
	for _, n := range c.sweepN() {
		p := c.params(n, core.VariantPPGNN)
		p.Theta0 = fig7Theta
		v, err := run(p, c.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		nT.Rows = append(nT.Rows, Row{X: float64(n), Values: []float64{v}})
	}
	thT := &Table{Title: "Figure 7c: POIs returned vs θ0", XLabel: "theta0", YLabel: "POIs", Series: []string{"PPGNN"}}
	for _, th := range c.sweepTheta() {
		p := c.params(c.defaultN(), core.VariantPPGNN)
		p.Theta0 = th
		v, err := run(p, c.Seed+int64(th*1000))
		if err != nil {
			return nil, err
		}
		thT.Rows = append(thT.Rows, Row{X: th, Values: []float64{v}})
	}
	return []*Table{kT, nT, thT}, nil
}

// Fig8 reproduces Figure 8: PPGNN and PPGNN-NAS against the IPPF and GLP
// baselines, varying k and n.
func (c Config) Fig8() ([]*Table, error) {
	c = c.Defaults()
	lsp := c.newLSP()
	ippfSrv := ippf.NewServer(c.Items, c.Space)
	glpSrv := glp.NewServer(c.Items, c.Space)
	names := []string{"PPGNN", "PPGNN-NAS", "IPPF", "GLP"}

	point := func(n, k int, seed int64) ([]measurement, error) {
		var ms []measurement
		// PPGNN and PPGNN-NAS.
		for _, nas := range []bool{false, true} {
			p := c.params(n, core.VariantPPGNN)
			p.K = k
			p.NoSanitize = nas
			m, err := c.runProtocol(p, lsp, seed)
			if err != nil {
				return nil, err
			}
			ms = append(ms, m)
		}
		// IPPF.
		rng := rand.New(rand.NewSource(seed))
		ipg := &ippf.Group{
			Locations: randomLocations(rng, n, c.Space),
			RectArea:  5e-6, Agg: gnn.Sum, Space: c.Space, Rng: rng,
		}
		var total cost.Snapshot
		for q := 0; q < c.Queries; q++ {
			var meter cost.Meter
			if _, err := ipg.Query(ippfSrv, k, &meter); err != nil {
				return nil, err
			}
			total = total.Add(meter.Snapshot())
		}
		avg := total.Scale(c.Queries)
		ms = append(ms, measurement{
			CommBytes: float64(avg.TotalBytes()),
			UserMS:    float64(avg.UserTime) / float64(time.Millisecond),
			LSPMS:     float64(avg.LSPTime) / float64(time.Millisecond),
		})
		// GLP.
		glg := &glp.Group{
			Locations: randomLocations(rng, n, c.Space),
			Space:     c.Space, KeyBits: c.KeyBits, Rng: rng,
		}
		total = cost.Snapshot{}
		for q := 0; q < c.Queries; q++ {
			var meter cost.Meter
			if _, err := glg.Query(glpSrv, k, &meter); err != nil {
				return nil, err
			}
			total = total.Add(meter.Snapshot())
		}
		avg = total.Scale(c.Queries)
		ms = append(ms, measurement{
			CommBytes: float64(avg.TotalBytes()),
			UserMS:    float64(avg.UserTime) / float64(time.Millisecond),
			LSPMS:     float64(avg.LSPTime) / float64(time.Millisecond),
		})
		return ms, nil
	}

	kT := threeCostTables("Figure 8a-c (baselines, vary k)", "k", names)
	for _, k := range c.sweepK() {
		ms, err := point(c.defaultN(), k, c.Seed+int64(k))
		if err != nil {
			return nil, fmt.Errorf("fig8 k=%d: %w", k, err)
		}
		appendMeasurements(kT, float64(k), ms)
	}
	nT := threeCostTables("Figure 8d-f (baselines, vary n)", "n", names)
	for _, n := range c.sweepN() {
		ms, err := point(n, core.DefaultK, c.Seed+int64(n))
		if err != nil {
			return nil, fmt.Errorf("fig8 n=%d: %w", n, err)
		}
		appendMeasurements(nT, float64(n), ms)
	}
	return append(kT, nT...), nil
}
