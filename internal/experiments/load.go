package experiments

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/load"
	"ppgnn/internal/obs"
	"ppgnn/internal/transport"

	"context"
)

// LoadReport is the payload of BENCH_load.json: one or two open-loop
// passes (clean, and optionally faulted) of the sustained-traffic
// conformance harness against an in-process ppgnn-lsp over real TCP.
// Every decrypted answer in every pass is checked against the plaintext
// gnn oracle; a single mismatch fails the gate regardless of SLOs.
type LoadReport struct {
	KeyBits int        `json:"keybits"`
	Cores   int        `json:"cores"` // runtime.NumCPU, honest
	Passes  []LoadPass `json:"passes"`
	// Traces audits the server-side flight recorder after both passes:
	// every retained trace must carry only closed-enum attributes and
	// account for its measured wall time. Check enforces it.
	Traces *TraceAudit `json:"traces,omitempty"`
	// IncidentDump is the flight recorder's contents at the moment an
	// SLO check failed — the traces around the failure, preserved in the
	// report the way a production watchdog dump would be.
	IncidentDump *obs.TraceDump `json:"incident_dump,omitempty"`
}

// LoadPass is one driver run plus the verdict of its SLO.
type LoadPass struct {
	Name    string `json:"name"` // clean | faulted
	Faulted bool   `json:"faulted"`
	// SLO is the human rendering of the objective this pass was held to.
	SLO string `json:"slo"`
	// SLOViolation is empty on a passing run; otherwise every violated
	// objective, joined. Check refuses any report carrying one.
	SLOViolation string       `json:"slo_violation,omitempty"`
	Report       *load.Report `json:"report"`
}

// LoadGateOptions sizes a LoadGate run. The zero value is the CI smoke
// configuration: ~20 seconds of wall clock at a modest rate.
type LoadGateOptions struct {
	Rate                   float64 // offered QPS (default 40)
	Arrival                load.Arrival
	Warmup, Measure, Drain time.Duration // defaults 1s / 6s / 30s
	Groups, GroupSize      int           // default 6 groups of 3
	MaxInFlight            int
	// Faulted adds a second pass with seeded faultnet schedules — dial
	// drops, added latency, and mid-answer connection kills — injected on
	// the client links while the oracle check stays on.
	Faulted bool
	// SLO overrides the clean pass's objective (the faulted pass derives
	// a tolerant variant of it).
	SLO  *load.SLO
	Logf func(format string, args ...any)
}

func (o LoadGateOptions) withDefaults() LoadGateOptions {
	if o.Rate <= 0 {
		o.Rate = 40
	}
	if o.Warmup <= 0 {
		o.Warmup = time.Second
	}
	if o.Measure <= 0 {
		o.Measure = 6 * time.Second
	}
	if o.Drain <= 0 {
		o.Drain = 30 * time.Second
	}
	if o.Groups <= 0 {
		o.Groups = 6
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 3
	}
	return o
}

// gateFaults is the seeded per-group fault schedule of the faulted pass:
// a quarter of the fleet loses its first dials, a quarter has its first
// connection killed mid-answer (a non-retryable session loss, by the
// transport's at-most-once rule), a quarter runs over a slow link, and
// the rest stay clean. Deterministic in (seed, group).
func gateFaults(seed int64) func(group int) func(addr string) (net.Conn, error) {
	return func(group int) func(addr string) (net.Conn, error) {
		gs := seed + int64(group)
		switch group % 4 {
		case 0:
			return faultnet.Dialer(
				faultnet.Faults{FailDial: true},
				faultnet.Faults{FailDial: true},
			)
		case 1:
			return faultnet.Dialer(faultnet.Faults{Seed: gs, ReadResetAfter: 64})
		case 2:
			return faultnet.Dialer(
				faultnet.Faults{Seed: gs, Latency: 2 * time.Millisecond, MaxChunk: 512},
				faultnet.Faults{Seed: gs + 1, Latency: 2 * time.Millisecond, MaxChunk: 512},
			)
		default:
			return nil
		}
	}
}

// LoadGate is ROADMAP item 5's CI teeth: it starts an in-process LSP on
// a real TCP listener, builds a fleet of client groups, offers open-loop
// traffic, and holds the run to an SLO while conformance-checking every
// answer against the plaintext engine. With opts.Faulted it repeats the
// run under seeded faultnet schedules, where sessions may be lost to the
// taxonomy but never answered wrongly. The returned report is
// BENCH_load.json; call Check to enforce it.
func (c Config) LoadGate(opts LoadGateOptions) (*LoadReport, error) {
	c = c.Defaults()
	opts = opts.withDefaults()

	lsp := core.NewLSP(c.Items, c.Space)
	srv := transport.NewServer(lsp)
	// Isolated server registry: the trace audit below must see exactly
	// this run's traces, not whatever else the process recorded.
	reg := obs.NewRegistry()
	srv.Obs = reg
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load gate: %w", err)
	}
	defer srv.Close()
	oracle := func(q []geo.Point, k int) []gnn.Result { return lsp.Search(q, k, gnn.Sum) }

	cleanSLO := load.SLO{
		P95:               2 * time.Second,
		P99:               4 * time.Second,
		MaxErrorRate:      0,
		MinThroughputFrac: 0.9,
	}
	if opts.SLO != nil {
		cleanSLO = *opts.SLO
	}
	// Injected kills legitimately cost sessions and retries cost time;
	// the faulted pass relaxes rates and latency but still forbids
	// abandonment — and mismatches stay fatal everywhere.
	faultedSLO := cleanSLO
	faultedSLO.MaxErrorRate = maxf(cleanSLO.MaxErrorRate, 0.25)
	faultedSLO.MinThroughputFrac = 0.5
	faultedSLO.P95, faultedSLO.P99 = 2*cleanSLO.P95, 2*cleanSLO.P99

	rep := &LoadReport{KeyBits: c.KeyBits, Cores: runtime.NumCPU()}
	passes := []struct {
		name    string
		faulted bool
		slo     load.SLO
	}{{"clean", false, cleanSLO}}
	if opts.Faulted {
		passes = append(passes, struct {
			name    string
			faulted bool
			slo     load.SLO
		}{"faulted", true, faultedSLO})
	}

	for i, p := range passes {
		fc := load.FleetConfig{
			Addr:      addr.String(),
			Groups:    opts.Groups,
			GroupSize: opts.GroupSize,
			KeyBits:   c.KeyBits,
			Seed:      c.Seed + int64(i)*101,
			Oracle:    oracle,
		}
		if p.faulted {
			fc.DialFunc = gateFaults(c.Seed)
		}
		fleet, err := load.NewFleet(fc)
		if err != nil {
			return nil, fmt.Errorf("load gate: %s pass: %w", p.name, err)
		}
		d, err := load.NewDriver(load.Config{
			Rate:          opts.Rate,
			Arrival:       opts.Arrival,
			Warmup:        opts.Warmup,
			Measure:       opts.Measure,
			Drain:         opts.Drain,
			MaxInFlight:   opts.MaxInFlight,
			Seed:          c.Seed + int64(i),
			OracleChecked: true,
			Obs:           obs.NewRegistry(), // isolated per pass
			Logf:          opts.Logf,
		}, fleet)
		if err != nil {
			fleet.Close()
			return nil, fmt.Errorf("load gate: %s pass: %w", p.name, err)
		}
		run, err := d.Run(context.Background())
		fleet.Close()
		if err != nil {
			return nil, fmt.Errorf("load gate: %s pass: %w", p.name, err)
		}
		pass := LoadPass{Name: p.name, Faulted: p.faulted, SLO: p.slo.String(), Report: run}
		if err := p.slo.Check(run); err != nil {
			pass.SLOViolation = err.Error()
			// A failed SLO dumps the flight recorder: the traces behind
			// the violated percentiles ride along in the report.
			rep.IncidentDump = reg.Recorder().Dump("slo_failed")
		}
		rep.Passes = append(rep.Passes, pass)
	}
	rep.Traces = auditTraces(reg.Recorder())
	return rep, nil
}

// Check enforces the gate. Any recorded SLO violation or oracle mismatch
// fails outright. A baseline (the committed BENCH_load.json) is only
// comparable on matching core counts; there, the clean pass's measured
// p95 may not blow out to more than 2.5× the baseline's and its achieved
// throughput may not collapse below half.
func (r *LoadReport) Check(baseline *LoadReport) error {
	if len(r.Passes) == 0 {
		return fmt.Errorf("load gate: report has no passes")
	}
	for _, p := range r.Passes {
		if n := p.Report.Mismatches(); n > 0 {
			return fmt.Errorf("load gate: %s pass: %d answer(s) disagreed with the plaintext oracle", p.Name, n)
		}
		if p.SLOViolation != "" {
			return fmt.Errorf("load gate: %s pass failed its SLO: %s", p.Name, p.SLOViolation)
		}
	}
	if err := r.Traces.Check("load gate"); err != nil {
		return err
	}
	if baseline == nil || baseline.Cores != r.Cores {
		return nil
	}
	base := baseline.pass("clean")
	cur := r.pass("clean")
	if base == nil || cur == nil {
		return nil
	}
	bm, cm := base.Report.Stage("measure"), cur.Report.Stage("measure")
	if bm == nil || cm == nil {
		return nil
	}
	if bm.LatencyP95 > 0 && cm.LatencyP95 > 2.5*bm.LatencyP95 {
		return fmt.Errorf("load gate: clean p95 %.4fs regressed >2.5x vs baseline %.4fs (cores=%d)",
			cm.LatencyP95, bm.LatencyP95, r.Cores)
	}
	// Throughput compares as achieved/offered fractions, so a smoke run
	// at a lower offered rate still gates against a full-rate baseline.
	if bm.OfferedQPS > 0 && cm.OfferedQPS > 0 {
		baseFrac := bm.AchievedQPS / bm.OfferedQPS
		curFrac := cm.AchievedQPS / cm.OfferedQPS
		if baseFrac > 0 && curFrac < 0.5*baseFrac {
			return fmt.Errorf("load gate: clean achieved/offered qps %.2f collapsed below half of baseline %.2f (cores=%d)",
				curFrac, baseFrac, r.Cores)
		}
	}
	return nil
}

func (r *LoadReport) pass(name string) *LoadPass {
	for i := range r.Passes {
		if r.Passes[i].Name == name {
			return &r.Passes[i]
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
