package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/load"
	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
	"ppgnn/internal/transport"

	"context"
)

// LoadReport is the payload of BENCH_load.json: one or two open-loop
// passes (clean, and optionally faulted) of the sustained-traffic
// conformance harness against an in-process ppgnn-lsp over real TCP.
// Every decrypted answer in every pass is checked against the plaintext
// gnn oracle; a single mismatch fails the gate regardless of SLOs.
type LoadReport struct {
	KeyBits int        `json:"keybits"`
	Cores   int        `json:"cores"` // runtime.NumCPU, honest
	Passes  []LoadPass `json:"passes"`
	// Traces audits the server-side flight recorder after both passes:
	// every retained trace must carry only closed-enum attributes and
	// account for its measured wall time. Check enforces it.
	Traces *TraceAudit `json:"traces,omitempty"`
	// IncidentDump is the flight recorder's contents at the moment an
	// SLO check failed — the traces around the failure, preserved in the
	// report the way a production watchdog dump would be.
	IncidentDump *obs.TraceDump `json:"incident_dump,omitempty"`
	// Sustained is the steady-state throughput section (DESIGN.md §15):
	// coalescing-off vs coalescing-on passes with the client-side
	// refillers and constant cache engaged, plus a byte-identity probe.
	Sustained *SustainedSection `json:"sustained,omitempty"`
}

// sustainedSpeedupFloor is the steady-state gate: with the coalescer on,
// achieved QPS must clear this multiple of the coalescing-off pass. Like
// the parallel and shard floors it only applies on ≥2 cores — coalescing
// buys wall-clock by sharing batch fan-out across sessions, which a
// single core cannot exhibit.
const sustainedSpeedupFloor = 1.3

// SustainedPass is one measured steady-state pass of the sustained
// section.
type SustainedPass struct {
	Name        string       `json:"name"` // coalesce_off | coalesce_on
	OfferedQPS  float64      `json:"offered_qps"`
	AchievedQPS float64      `json:"achieved_qps"`
	Mismatches  int64        `json:"mismatches"`
	Abandoned   int64        `json:"abandoned"`
	Report      *load.Report `json:"report"`
}

// SustainedSection compares steady-state achieved throughput with the
// cross-session coalescer off and on. Both passes run with background
// pool refillers and the shared constant cache engaged on the client
// fleet, so the only difference between them is server-side coalescing.
type SustainedSection struct {
	Rate   float64         `json:"rate"`
	Groups int             `json:"groups"`
	Cores  int             `json:"cores"` // runtime.NumCPU, honest
	Passes []SustainedPass `json:"passes"`
	// Speedup is coalesce_on achieved QPS over coalesce_off.
	Speedup float64 `json:"speedup"`
	// ByteIdentical records the in-gate probe: the same query replayed
	// concurrently through the coalesced LSP produced answers byte-equal
	// to the uncoalesced LSP's (the internal/parallel determinism
	// contract, re-verified at gate time).
	ByteIdentical bool `json:"byte_identical"`
}

// FloorSkipReason is non-empty when the sustained-throughput floor
// cannot apply on this machine. Check skips the floor then — loudly, by
// recording this exact string — and still enforces conformance,
// zero-abandonment, and byte-identity.
func (s *SustainedSection) FloorSkipReason() string {
	if s.Cores < 2 {
		return fmt.Sprintf("single core (cores=%d): the %.1f× sustained-throughput floor is SKIPPED — oracle conformance, zero-abandonment, and byte-identity checks only", s.Cores, sustainedSpeedupFloor)
	}
	return ""
}

// LoadPass is one driver run plus the verdict of its SLO.
type LoadPass struct {
	Name    string `json:"name"` // clean | faulted
	Faulted bool   `json:"faulted"`
	// SLO is the human rendering of the objective this pass was held to.
	SLO string `json:"slo"`
	// SLOViolation is empty on a passing run; otherwise every violated
	// objective, joined. Check refuses any report carrying one.
	SLOViolation string       `json:"slo_violation,omitempty"`
	Report       *load.Report `json:"report"`
}

// LoadGateOptions sizes a LoadGate run. The zero value is the CI smoke
// configuration: ~20 seconds of wall clock at a modest rate.
type LoadGateOptions struct {
	Rate                   float64 // offered QPS (default 40)
	Arrival                load.Arrival
	Warmup, Measure, Drain time.Duration // defaults 1s / 6s / 30s
	Groups, GroupSize      int           // default 6 groups of 3
	MaxInFlight            int
	// Faulted adds a second pass with seeded faultnet schedules — dial
	// drops, added latency, and mid-answer connection kills — injected on
	// the client links while the oracle check stays on.
	Faulted bool
	// SLO overrides the clean pass's objective (the faulted pass derives
	// a tolerant variant of it).
	SLO  *load.SLO
	Logf func(format string, args ...any)
	// Sustained appends the steady-state throughput section: two extra
	// measured passes at SustainedRate — coalescer off, then on — with
	// the fleet's background refillers and shared constant cache engaged
	// in both, plus a concurrent byte-identity probe. Check enforces the
	// sustained floor on ≥2 cores.
	Sustained bool
	// SustainedRate is the offered QPS of the sustained passes (default
	// 120, high enough that the coalescer's micro-batch window actually
	// fills with tasks from distinct sessions).
	SustainedRate float64
	// SustainedMeasure is the measured window of each sustained pass
	// (default: the gate's Measure).
	SustainedMeasure time.Duration
}

func (o LoadGateOptions) withDefaults() LoadGateOptions {
	if o.Rate <= 0 {
		o.Rate = 40
	}
	if o.Warmup <= 0 {
		o.Warmup = time.Second
	}
	if o.Measure <= 0 {
		o.Measure = 6 * time.Second
	}
	if o.Drain <= 0 {
		o.Drain = 30 * time.Second
	}
	if o.Groups <= 0 {
		o.Groups = 6
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 3
	}
	if o.SustainedRate <= 0 {
		o.SustainedRate = 120
	}
	if o.SustainedMeasure <= 0 {
		o.SustainedMeasure = o.Measure
	}
	return o
}

// gateFaults is the seeded per-group fault schedule of the faulted pass:
// a quarter of the fleet loses its first dials, a quarter has its first
// connection killed mid-answer (a non-retryable session loss, by the
// transport's at-most-once rule), a quarter runs over a slow link, and
// the rest stay clean. Deterministic in (seed, group).
func gateFaults(seed int64) func(group int) func(addr string) (net.Conn, error) {
	return func(group int) func(addr string) (net.Conn, error) {
		gs := seed + int64(group)
		switch group % 4 {
		case 0:
			return faultnet.Dialer(
				faultnet.Faults{FailDial: true},
				faultnet.Faults{FailDial: true},
			)
		case 1:
			return faultnet.Dialer(faultnet.Faults{Seed: gs, ReadResetAfter: 64})
		case 2:
			return faultnet.Dialer(
				faultnet.Faults{Seed: gs, Latency: 2 * time.Millisecond, MaxChunk: 512},
				faultnet.Faults{Seed: gs + 1, Latency: 2 * time.Millisecond, MaxChunk: 512},
			)
		default:
			return nil
		}
	}
}

// LoadGate is ROADMAP item 5's CI teeth: it starts an in-process LSP on
// a real TCP listener, builds a fleet of client groups, offers open-loop
// traffic, and holds the run to an SLO while conformance-checking every
// answer against the plaintext engine. With opts.Faulted it repeats the
// run under seeded faultnet schedules, where sessions may be lost to the
// taxonomy but never answered wrongly. The returned report is
// BENCH_load.json; call Check to enforce it.
func (c Config) LoadGate(opts LoadGateOptions) (*LoadReport, error) {
	c = c.Defaults()
	opts = opts.withDefaults()

	lsp := core.NewLSP(c.Items, c.Space)
	srv := transport.NewServer(lsp)
	// Isolated server registry: the trace audit below must see exactly
	// this run's traces, not whatever else the process recorded.
	reg := obs.NewRegistry()
	srv.Obs = reg
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load gate: %w", err)
	}
	defer srv.Close()
	oracle := func(q []geo.Point, k int) []gnn.Result { return lsp.Search(q, k, gnn.Sum) }

	cleanSLO := load.SLO{
		P95:               2 * time.Second,
		P99:               4 * time.Second,
		MaxErrorRate:      0,
		MinThroughputFrac: 0.9,
	}
	if opts.SLO != nil {
		cleanSLO = *opts.SLO
	}
	// Injected kills legitimately cost sessions and retries cost time;
	// the faulted pass relaxes rates and latency but still forbids
	// abandonment — and mismatches stay fatal everywhere.
	faultedSLO := cleanSLO
	faultedSLO.MaxErrorRate = maxf(cleanSLO.MaxErrorRate, 0.25)
	faultedSLO.MinThroughputFrac = 0.5
	faultedSLO.P95, faultedSLO.P99 = 2*cleanSLO.P95, 2*cleanSLO.P99

	rep := &LoadReport{KeyBits: c.KeyBits, Cores: runtime.NumCPU()}
	passes := []struct {
		name    string
		faulted bool
		slo     load.SLO
	}{{"clean", false, cleanSLO}}
	if opts.Faulted {
		passes = append(passes, struct {
			name    string
			faulted bool
			slo     load.SLO
		}{"faulted", true, faultedSLO})
	}

	for i, p := range passes {
		fc := load.FleetConfig{
			Addr:      addr.String(),
			Groups:    opts.Groups,
			GroupSize: opts.GroupSize,
			KeyBits:   c.KeyBits,
			Seed:      c.Seed + int64(i)*101,
			Oracle:    oracle,
		}
		if p.faulted {
			fc.DialFunc = gateFaults(c.Seed)
		}
		fleet, err := load.NewFleet(fc)
		if err != nil {
			return nil, fmt.Errorf("load gate: %s pass: %w", p.name, err)
		}
		d, err := load.NewDriver(load.Config{
			Rate:          opts.Rate,
			Arrival:       opts.Arrival,
			Warmup:        opts.Warmup,
			Measure:       opts.Measure,
			Drain:         opts.Drain,
			MaxInFlight:   opts.MaxInFlight,
			Seed:          c.Seed + int64(i),
			OracleChecked: true,
			Obs:           obs.NewRegistry(), // isolated per pass
			Logf:          opts.Logf,
		}, fleet)
		if err != nil {
			fleet.Close()
			return nil, fmt.Errorf("load gate: %s pass: %w", p.name, err)
		}
		run, err := d.Run(context.Background())
		fleet.Close()
		if err != nil {
			return nil, fmt.Errorf("load gate: %s pass: %w", p.name, err)
		}
		pass := LoadPass{Name: p.name, Faulted: p.faulted, SLO: p.slo.String(), Report: run}
		if err := p.slo.Check(run); err != nil {
			pass.SLOViolation = err.Error()
			// A failed SLO dumps the flight recorder: the traces behind
			// the violated percentiles ride along in the report.
			rep.IncidentDump = reg.Recorder().Dump("slo_failed")
		}
		rep.Passes = append(rep.Passes, pass)
	}
	if opts.Sustained {
		sus, err := c.sustainedSection(lsp, oracle, reg, opts)
		if err != nil {
			return nil, fmt.Errorf("load gate: sustained: %w", err)
		}
		rep.Sustained = sus
	}
	rep.Traces = auditTraces(reg.Recorder())
	return rep, nil
}

// sustainedSection runs the steady-state comparison. Each pass gets its
// own server over the shared gate LSP — the coalescer is fixed at server
// construction, never flipped on a live server — and both report traces
// into the gate registry so the trace audit covers sustained traffic
// too. The fleet runs with background refillers and the shared constant
// cache in both passes, so coalescing is the only variable.
func (c Config) sustainedSection(lsp *core.LSP, oracle load.Oracle, reg *obs.Registry, opts LoadGateOptions) (*SustainedSection, error) {
	sec := &SustainedSection{
		Rate:   opts.SustainedRate,
		Groups: opts.Groups,
		Cores:  runtime.NumCPU(),
	}
	ident, err := coalesceByteIdentity(lsp, c.KeyBits, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("byte-identity probe: %w", err)
	}
	sec.ByteIdentical = ident

	for i, on := range []bool{false, true} {
		name := "coalesce_off"
		var co *parallel.Coalescer
		srv := transport.NewServer(lsp)
		srv.Obs = reg
		if on {
			name = "coalesce_on"
			co = parallel.NewCoalescer(0, parallel.CoalesceOptions{})
			srv.Coalescer = co
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("%s pass: %w", name, err)
		}
		run, runErr := func() (*load.Report, error) {
			fleet, err := load.NewFleet(load.FleetConfig{
				Addr:      addr.String(),
				Groups:    opts.Groups,
				GroupSize: opts.GroupSize,
				KeyBits:   c.KeyBits,
				Seed:      c.Seed + 1000 + int64(i)*101,
				Oracle:    oracle,
				Refill:    64,
				CacheSize: 1024,
			})
			if err != nil {
				return nil, err
			}
			defer fleet.Close()
			d, err := load.NewDriver(load.Config{
				Rate:          opts.SustainedRate,
				Arrival:       opts.Arrival,
				Warmup:        opts.Warmup,
				Measure:       opts.SustainedMeasure,
				Drain:         opts.Drain,
				MaxInFlight:   opts.MaxInFlight,
				Seed:          c.Seed + 7 + int64(i),
				OracleChecked: true,
				Obs:           obs.NewRegistry(), // isolated per pass
				Logf:          opts.Logf,
			}, fleet)
			if err != nil {
				return nil, err
			}
			return d.Run(context.Background())
		}()
		srv.Close()
		if co != nil {
			co.Close()
		}
		if runErr != nil {
			return nil, fmt.Errorf("%s pass: %w", name, runErr)
		}
		sp := SustainedPass{
			Name:       name,
			Mismatches: run.Mismatches(),
			Abandoned:  run.Abandoned,
			Report:     run,
		}
		if m := run.Stage("measure"); m != nil {
			sp.OfferedQPS, sp.AchievedQPS = m.OfferedQPS, m.AchievedQPS
		}
		sec.Passes = append(sec.Passes, sp)
	}
	if off := sec.Passes[0].AchievedQPS; off > 0 {
		sec.Speedup = sec.Passes[1].AchievedQPS / off
	}
	return sec, nil
}

// coalesceByteIdentity replays one fixed query concurrently through a
// coalesced wrap of the gate LSP and compares every encrypted answer
// byte for byte against the uncoalesced LSP's — the acceptance property
// that makes coalescing invisible to clients, re-checked in the gate
// binary itself rather than trusted from the unit suite.
func coalesceByteIdentity(lsp *core.LSP, keyBits int, seed int64) (bool, error) {
	rng := rand.New(rand.NewSource(seed + 9001))
	p := core.DefaultParams(3)
	p.KeyBits = keyBits
	p.NoSanitize = true
	locs := make([]geo.Point, p.N)
	for i := range locs {
		locs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g, err := core.NewGroup(p, locs, rng)
	if err != nil {
		return false, err
	}
	q, lmsgs, err := g.BuildQuery(nil)
	if err != nil {
		return false, err
	}
	want, err := lsp.Process(q, lmsgs, nil)
	if err != nil {
		return false, err
	}
	co := parallel.NewCoalescer(2, parallel.CoalesceOptions{})
	defer co.Close()
	clsp := lsp.WithCoalescer(co)
	const replays = 4
	got := make([]*core.AnswerMsg, replays)
	errs := make([]error, replays)
	var wg sync.WaitGroup
	for i := 0; i < replays; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = clsp.Process(q, lmsgs, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < replays; i++ {
		if errs[i] != nil {
			return false, errs[i]
		}
		if len(got[i].Cts) != len(want.Cts) {
			return false, nil
		}
		for j := range want.Cts {
			if got[i].Cts[j].Cmp(want.Cts[j]) != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}

// Check enforces the gate. Any recorded SLO violation or oracle mismatch
// fails outright. A baseline (the committed BENCH_load.json) is only
// comparable on matching core counts; there, the clean pass's measured
// p95 may not blow out to more than 2.5× the baseline's and its achieved
// throughput may not collapse below half.
func (r *LoadReport) Check(baseline *LoadReport) error {
	if len(r.Passes) == 0 {
		return fmt.Errorf("load gate: report has no passes")
	}
	for _, p := range r.Passes {
		if n := p.Report.Mismatches(); n > 0 {
			return fmt.Errorf("load gate: %s pass: %d answer(s) disagreed with the plaintext oracle", p.Name, n)
		}
		if p.SLOViolation != "" {
			return fmt.Errorf("load gate: %s pass failed its SLO: %s", p.Name, p.SLOViolation)
		}
	}
	if err := r.Sustained.check(); err != nil {
		return err
	}
	if err := r.Traces.Check("load gate"); err != nil {
		return err
	}
	if baseline == nil || baseline.Cores != r.Cores {
		return nil
	}
	base := baseline.pass("clean")
	cur := r.pass("clean")
	if base == nil || cur == nil {
		return nil
	}
	bm, cm := base.Report.Stage("measure"), cur.Report.Stage("measure")
	if bm == nil || cm == nil {
		return nil
	}
	if bm.LatencyP95 > 0 && cm.LatencyP95 > 2.5*bm.LatencyP95 {
		return fmt.Errorf("load gate: clean p95 %.4fs regressed >2.5x vs baseline %.4fs (cores=%d)",
			cm.LatencyP95, bm.LatencyP95, r.Cores)
	}
	// Throughput compares as achieved/offered fractions, so a smoke run
	// at a lower offered rate still gates against a full-rate baseline.
	if bm.OfferedQPS > 0 && cm.OfferedQPS > 0 {
		baseFrac := bm.AchievedQPS / bm.OfferedQPS
		curFrac := cm.AchievedQPS / cm.OfferedQPS
		if baseFrac > 0 && curFrac < 0.5*baseFrac {
			return fmt.Errorf("load gate: clean achieved/offered qps %.2f collapsed below half of baseline %.2f (cores=%d)",
				curFrac, baseFrac, r.Cores)
		}
	}
	return nil
}

// check enforces the sustained section. Conformance is unconditional:
// zero oracle mismatches, zero abandoned sessions in both passes, and a
// passing byte-identity probe. The ≥1.3× throughput floor applies only
// when the floor can physically show up — on ≥2 cores; on one core the
// skip is recorded loudly via FloorSkipReason. Nil receiver (no
// sustained run) checks nothing.
func (s *SustainedSection) check() error {
	if s == nil {
		return nil
	}
	if len(s.Passes) != 2 {
		return fmt.Errorf("load gate: sustained section has %d passes, want coalesce_off and coalesce_on", len(s.Passes))
	}
	for _, p := range s.Passes {
		if p.Mismatches > 0 {
			return fmt.Errorf("load gate: sustained %s pass: %d answer(s) disagreed with the plaintext oracle", p.Name, p.Mismatches)
		}
		if p.Abandoned > 0 {
			return fmt.Errorf("load gate: sustained %s pass abandoned %d session(s)", p.Name, p.Abandoned)
		}
	}
	if !s.ByteIdentical {
		return fmt.Errorf("load gate: coalesced answers were not byte-identical to uncoalesced")
	}
	if reason := s.FloorSkipReason(); reason != "" {
		// Loud skip: the reason string is part of the committed report.
		return nil
	}
	if s.Speedup < sustainedSpeedupFloor {
		return fmt.Errorf("load gate: sustained speedup %.2f× below the %.1f× floor (coalesce_on %.2f qps vs coalesce_off %.2f qps, cores=%d)",
			s.Speedup, sustainedSpeedupFloor, s.Passes[1].AchievedQPS, s.Passes[0].AchievedQPS, s.Cores)
	}
	return nil
}

func (r *LoadReport) pass(name string) *LoadPass {
	for i := range r.Passes {
		if r.Passes[i].Name == name {
			return &r.Passes[i]
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
