package experiments

import (
	"math"
	"strings"
	"testing"

	"ppgnn/internal/dataset"
)

// quickConfig keeps the harness smoke tests fast: tiny keys, one query per
// point, endpoint-only sweeps, small database.
func quickConfig() Config {
	return Config{
		Items:   dataset.Synthetic(9, 5000),
		Queries: 1,
		KeyBits: 256,
		Seed:    7,
		Quick:   true,
	}
}

func checkTables(t *testing.T, tables []*Table, wantTables int) {
	t.Helper()
	if len(tables) != wantTables {
		t.Fatalf("got %d tables, want %d", len(tables), wantTables)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("table %q has no rows", tb.Title)
		}
		for _, r := range tb.Rows {
			if len(r.Values) != len(tb.Series) {
				t.Fatalf("table %q: row %v has %d values for %d series",
					tb.Title, r.X, len(r.Values), len(tb.Series))
			}
			for i, v := range r.Values {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("table %q: series %s at x=%v has value %v",
						tb.Title, tb.Series[i], r.X, v)
				}
			}
		}
		if !strings.Contains(tb.Format(), tb.XLabel) {
			t.Fatalf("table %q: Format() missing x label", tb.Title)
		}
	}
}

func TestFig5Quick(t *testing.T) {
	tables, err := quickConfig().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 6)
	// Comm cost must grow with d for both variants (Figure 5a).
	comm := tables[0]
	first, last := comm.Rows[0], comm.Rows[len(comm.Rows)-1]
	for i := range comm.Series {
		if last.Values[i] <= first.Values[i] {
			t.Errorf("series %s: comm cost did not grow with d", comm.Series[i])
		}
	}
}

func TestFig6Quick(t *testing.T) {
	tables, err := quickConfig().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 12)
	// At the largest δ, Naive must cost the most communication and OPT the
	// least (Figure 6a).
	comm := tables[0]
	last := comm.Rows[len(comm.Rows)-1]
	ppgnn, opt, naive := last.Values[0], last.Values[1], last.Values[2]
	if !(opt < ppgnn && ppgnn < naive) {
		t.Errorf("Figure 6a shape violated: OPT=%v PPGNN=%v Naive=%v", opt, ppgnn, naive)
	}
}

func TestFig7Quick(t *testing.T) {
	tables, err := quickConfig().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 3)
	for _, tb := range tables {
		for _, r := range tb.Rows {
			if r.Values[0] < 1 {
				t.Fatalf("%s: fewer than 1 POI returned at x=%v", tb.Title, r.X)
			}
		}
	}
	// A stronger θ0 returns no more POIs (Figure 7c).
	thT := tables[2]
	if thT.Rows[len(thT.Rows)-1].Values[0] > thT.Rows[0].Values[0] {
		t.Error("Figure 7c shape violated: more POIs at stronger θ0")
	}
}

func TestFig8Quick(t *testing.T) {
	// Figure 8's IPPF-vs-PPGNN communication ordering depends on the
	// database size (IPPF streams ~hundreds of candidates per rank at
	// Sequoia scale), so this smoke test keeps the full-size database.
	cfg := quickConfig()
	cfg.Items = dataset.Sequoia(dataset.DefaultSeed)
	tables, err := cfg.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 6)
	// IPPF communication must dominate PPGNN (Figure 8a).
	comm := tables[0]
	for _, r := range comm.Rows {
		if r.Values[2] <= r.Values[0] {
			t.Errorf("Figure 8a shape violated at k=%v: IPPF=%v PPGNN=%v", r.X, r.Values[2], r.Values[0])
		}
	}
	// PPGNN-NAS LSP cost must be below PPGNN's (the sanitation gap,
	// Figure 8c).
	lspT := tables[2]
	for _, r := range lspT.Rows {
		if r.Values[1] >= r.Values[0] {
			t.Errorf("Figure 8c shape violated at k=%v: NAS=%v PPGNN=%v", r.X, r.Values[1], r.Values[0])
		}
	}
}

func TestTable2Quick(t *testing.T) {
	out, err := quickConfig().Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"predicted", "measured", "PPGNN-OPT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3And4(t *testing.T) {
	if out := quickConfig().Table3(); !strings.Contains(out, "theta0") {
		t.Fatalf("Table3 malformed:\n%s", out)
	}
	if out := Table4(); !strings.Contains(out, "PPGNN") || !strings.Contains(out, "IPPF") {
		t.Fatalf("Table4 malformed:\n%s", out)
	}
}

func TestKeygenCost(t *testing.T) {
	d, err := quickConfig().KeygenCost()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("keygen cost not recorded")
	}
}

func TestMobileQuick(t *testing.T) {
	out, err := quickConfig().Mobile()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3G", "4G", "WiFi", "PPGNN-OPT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Mobile output missing %q:\n%s", want, out)
		}
	}
}
