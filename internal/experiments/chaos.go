package experiments

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/dataset"
	"ppgnn/internal/faultnet"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/load"
	"ppgnn/internal/obs"
	"ppgnn/internal/svc"
	"ppgnn/internal/transport"
)

// ChaosReport is the payload of BENCH_chaos.json: the multi-tenant
// lifecycle soak. Two tenants run concurrent open-loop traffic against
// one svc.Service — tenant "alpha" with generous quota behind seeded
// faultnet dial-kills and slow links, tenant "beta" with a quota of one
// session and no client retries so every admission shed surfaces — while
// a reload storm rewrites and reapplies the config file (one write
// deliberately corrupt) mid-traffic. Every decrypted answer on both
// tenants is checked against a plaintext oracle built from the same
// dataset files the service loaded.
type ChaosReport struct {
	KeyBits int `json:"keybits"`
	Cores   int `json:"cores"`

	// Epochs is the final epoch sequence: 1 (initial) + applied reloads.
	Epochs          int64 `json:"epochs"`
	AppliedReloads  int64 `json:"applied_reloads"`
	RejectedReloads int64 `json:"rejected_reloads"`
	WatchdogTrips   int64 `json:"watchdog_trips"`
	// LiveEpochs after the drain — 1 unless an old epoch leaked.
	LiveEpochs int `json:"live_epochs"`
	// FinalState is the service state after the storm ("ready" or bust).
	FinalState string `json:"final_state"`
	// QuotaSheds counts admission rejections by tenant beta's quota as
	// the server recorded them.
	QuotaSheds int64 `json:"quota_sheds"`

	Tenants []ChaosTenant `json:"tenants"`

	// Traces audits the service's flight recorder after the storm:
	// alpha's retried sessions and beta's quota sheds must all have left
	// contract-clean traces. Check enforces it.
	Traces *TraceAudit `json:"traces,omitempty"`
	// IncidentDump is the recorder's contents when the gate's own checks
	// failed, mirroring the production dump-on-incident path.
	IncidentDump *obs.TraceDump `json:"incident_dump,omitempty"`
}

// ChaosTenant is one tenant's driver run.
type ChaosTenant struct {
	Tenant  string       `json:"tenant"`
	Faulted bool         `json:"faulted"` // seeded client-side faults injected
	Report  *load.Report `json:"report"`
}

// ChaosGateOptions sizes a ChaosGate run. The zero value is the CI smoke
// configuration (~15 s of wall clock).
type ChaosGateOptions struct {
	Rate                   float64       // per-tenant offered QPS (default 25)
	Warmup, Measure, Drain time.Duration // defaults 1s / 4s / 30s
	Groups                 int           // client groups per tenant (default 4)
	// Reloads is the number of valid config rewrites pushed mid-traffic
	// (default 3; one extra corrupt write exercises the rejected path).
	Reloads int
	Logf    func(format string, args ...any)
}

func (o ChaosGateOptions) withDefaults() ChaosGateOptions {
	if o.Rate <= 0 {
		o.Rate = 25
	}
	if o.Warmup <= 0 {
		o.Warmup = time.Second
	}
	if o.Measure <= 0 {
		o.Measure = 4 * time.Second
	}
	if o.Drain <= 0 {
		o.Drain = 30 * time.Second
	}
	if o.Groups <= 0 {
		o.Groups = 4
	}
	if o.Reloads <= 0 {
		o.Reloads = 3
	}
	return o
}

// chaosDialFaults is alpha's seeded client-side schedule: half the fleet
// loses its first two dials (the pool redials through them), the other
// half runs over a slow, fragmenting link. Everything is recoverable by
// design — the chaos gate demands zero lost sessions on alpha, so
// mid-answer kills (legitimately fatal under the at-most-once rule)
// belong to the load gate's faulted pass, not here.
func chaosDialFaults(seed int64) func(group int) func(addr string) (net.Conn, error) {
	return func(group int) func(addr string) (net.Conn, error) {
		gs := seed + int64(group)
		if group%2 == 0 {
			return faultnet.Dialer(
				faultnet.Faults{FailDial: true},
				faultnet.Faults{FailDial: true},
			)
		}
		return faultnet.Dialer(
			faultnet.Faults{Seed: gs, Latency: 2 * time.Millisecond, MaxChunk: 512},
			faultnet.Faults{Seed: gs + 1, Latency: 2 * time.Millisecond, MaxChunk: 512},
		)
	}
}

// chaosSlowLinks wraps every connection — faultnet.Dialer's schedule is
// per-dial, but beta's slowness must persist across redials — with a
// seeded latency-and-fragmentation fault. Pure delay, never a reset: the
// point is to stretch each session past the next Poisson arrival so
// beta's quota of one concurrent session provably engages.
func chaosSlowLinks(seed int64) func(group int) func(addr string) (net.Conn, error) {
	return func(group int) func(addr string) (net.Conn, error) {
		gs := seed + int64(group)
		return func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(conn, faultnet.Faults{Seed: gs, Latency: 8 * time.Millisecond, MaxChunk: 512}), nil
		}
	}
}

// ChaosGate runs the lifecycle soak and returns its report; Check
// enforces it. The service loads both tenants from dataset files written
// to a temp dir, and each tenant's oracle is built by reading the same
// file back through the same loader — byte-identical POI databases by
// construction, so a mismatch can only be a protocol or lifecycle bug.
func (c Config) ChaosGate(opts ChaosGateOptions) (*ChaosReport, error) {
	c = c.Defaults()
	opts = opts.withDefaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	dir, err := os.MkdirTemp("", "ppgnn-chaos")
	if err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}
	defer os.RemoveAll(dir)

	// Tenant datasets: small, distinct, written once and loaded by both
	// the service and the oracles.
	writeDataset := func(name string, seed int64, n int) (string, *core.LSP, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return "", nil, err
		}
		err = dataset.Save(f, dataset.Synthetic(seed, n))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return "", nil, err
		}
		items, err := dataset.LoadFile(path)
		if err != nil {
			return "", nil, err
		}
		return path, core.NewLSP(items, geo.UnitRect), nil
	}
	alphaPath, alphaOracle, err := writeDataset("alpha.txt", c.Seed+1, 600)
	if err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}
	betaPath, betaOracle, err := writeDataset("beta.txt", c.Seed+2, 600)
	if err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}

	cfgPath := filepath.Join(dir, "svc.json")
	// Alpha's quota flips across reloads (the storm must change something
	// real); beta's quota of one session is the shed generator and never
	// moves.
	writeConfig := func(alphaQuota int) error {
		doc := fmt.Sprintf(`{"tenants": [
			{"id": "alpha", "dataset": %q, "max_sessions": %d},
			{"id": "beta", "dataset": %q, "max_sessions": 1}]}`,
			alphaPath, alphaQuota, betaPath)
		return os.WriteFile(cfgPath, []byte(doc), 0o644)
	}
	if err := writeConfig(64); err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}

	reg := obs.NewRegistry()
	svcCfg, err := svc.LoadConfigFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}
	service, err := svc.New(svcCfg, svc.Options{
		ConfigPath: cfgPath,
		Obs:        reg,
		Logf:       func(format string, args ...interface{}) { logf(format, args...) },
	})
	if err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}
	srv := transport.NewServer(nil)
	srv.Admitter = service
	srv.OnSessionPanic = service.OnSessionPanic
	srv.Obs = reg
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos gate: %w", err)
	}
	defer srv.Close()

	// The reload storm: valid quota flips with one corrupt write in the
	// middle, spread across the traffic window.
	stormCtx, stopStorm := context.WithCancel(context.Background())
	defer stopStorm()
	var stormWG sync.WaitGroup
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		interval := (opts.Warmup + opts.Measure) / time.Duration(opts.Reloads+2)
		writes := 0
		for i := 0; writes < opts.Reloads; i++ {
			select {
			case <-stormCtx.Done():
				return
			case <-time.After(interval):
			}
			if i == 1 {
				// The rejected path: a corrupt file mid-storm must leave
				// the serving epoch untouched.
				os.WriteFile(cfgPath, []byte(`{"tenants": [{]`), 0o644)
				if err := service.Reload(); err == nil {
					logf("chaos: corrupt config was applied!?")
				} else {
					logf("chaos: corrupt config rejected (expected): %v", err)
				}
				continue
			}
			writes++
			if err := writeConfig(64 - writes*8); err != nil {
				logf("chaos: config write failed: %v", err)
				continue
			}
			if err := service.Reload(); err != nil {
				logf("chaos: reload %d failed: %v", writes, err)
			} else {
				logf("chaos: epoch %d applied mid-traffic", service.Epoch())
			}
		}
	}()

	// Two tenants, two concurrent drivers, isolated telemetry.
	type tenantRun struct {
		name    string
		faulted bool
		fleet   load.FleetConfig
		rep     *load.Report
		err     error
	}
	runs := []*tenantRun{
		{
			name:    "alpha",
			faulted: true,
			fleet: load.FleetConfig{
				Addr:      addr.String(),
				Tenant:    "alpha",
				Groups:    opts.Groups,
				GroupSize: 2,
				KeyBits:   c.KeyBits,
				Seed:      c.Seed + 11,
				Oracle:    func(q []geo.Point, k int) []gnn.Result { return alphaOracle.Search(q, k, gnn.Sum) },
				DialFunc:  chaosDialFaults(c.Seed),
				// Generous resend budget: dial-kills and reload windows
				// must all be ridden out — alpha tolerates zero losses.
				MaxRetries: 6,
			},
		},
		{
			name:    "beta",
			faulted: true,
			fleet: load.FleetConfig{
				Addr:      addr.String(),
				Tenant:    "beta",
				Groups:    opts.Groups,
				GroupSize: 2,
				KeyBits:   c.KeyBits,
				Seed:      c.Seed + 23,
				Oracle:    func(q []geo.Point, k int) []gnn.Result { return betaOracle.Search(q, k, gnn.Sum) },
				// Slow links (recoverable: latency only, never a reset)
				// stretch every session so the offered load overlaps its
				// quota of one — the admission gate must engage.
				DialFunc: chaosSlowLinks(c.Seed + 40),
				// No resends: every quota shed must surface in the
				// outcome taxonomy as a retryable "busy", not be papered
				// over by the pool.
				MaxRetries: -1,
			},
		},
	}
	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(r *tenantRun) {
			defer wg.Done()
			fleet, err := load.NewFleet(r.fleet)
			if err != nil {
				r.err = fmt.Errorf("%s fleet: %w", r.name, err)
				return
			}
			defer fleet.Close()
			d, err := load.NewDriver(load.Config{
				Rate:          opts.Rate,
				Warmup:        opts.Warmup,
				Measure:       opts.Measure,
				Drain:         opts.Drain,
				Seed:          r.fleet.Seed,
				OracleChecked: true,
				Obs:           obs.NewRegistry(),
				Logf: func(format string, args ...any) {
					logf("chaos[%s]: "+format, append([]any{r.name}, args...)...)
				},
			}, fleet)
			if err != nil {
				r.err = fmt.Errorf("%s driver: %w", r.name, err)
				return
			}
			r.rep, r.err = d.Run(context.Background())
		}(r)
	}
	wg.Wait()
	stopStorm()
	stormWG.Wait()
	for _, r := range runs {
		if r.err != nil {
			return nil, fmt.Errorf("chaos gate: %w", r.err)
		}
	}

	// Post-storm settling: every session released, old epochs retired.
	deadline := time.Now().Add(10 * time.Second)
	for service.LiveEpochs() > 1 || service.InFlight() > 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	rep := &ChaosReport{
		KeyBits:         c.KeyBits,
		Cores:           runtime.NumCPU(),
		Epochs:          service.Epoch(),
		AppliedReloads:  reg.Counter("svc_reloads_total", obs.L("result", "applied")).Value(),
		RejectedReloads: reg.Counter("svc_reloads_total", obs.L("result", "rejected")).Value(),
		WatchdogTrips:   reg.Counter("svc_watchdog_trips_total").Value(),
		LiveEpochs:      service.LiveEpochs(),
		FinalState:      service.State(),
		QuotaSheds:      quotaSheds(reg),
	}
	for _, r := range runs {
		rep.Tenants = append(rep.Tenants, ChaosTenant{Tenant: r.name, Faulted: r.faulted, Report: r.rep})
	}
	rep.Traces = auditTraces(reg.Recorder())
	if err := rep.Check(); err != nil {
		logf("chaos: gate failing (%v), dumping flight recorder", err)
		rep.IncidentDump = reg.Recorder().Dump("slo_failed")
	}
	return rep, nil
}

// quotaSheds sums the server-side quota admissions across tenant slots.
func quotaSheds(reg *obs.Registry) int64 {
	var n int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name != "svc_admissions_total" {
			continue
		}
		if c.Labels["admission"] == "quota" {
			n += c.Value
		}
	}
	return n
}

// Check enforces the chaos gate:
//
//   - zero oracle mismatches on either tenant, anywhere in the run;
//   - zero abandoned in-flight sessions;
//   - the storm really stormed: ≥3 applied reload epochs on top of the
//     initial one, and ≥1 rejected reload;
//   - alpha (quota headroom + retries) lost nothing: every session ok;
//   - beta's sheds all classified as the retryable "busy" — nothing
//     leaked out as a protocol-fatal or unclassified error — and at
//     least one shed actually happened;
//   - the service ended ready on exactly one live epoch with a clean
//     watchdog.
func (r *ChaosReport) Check() error {
	if len(r.Tenants) == 0 {
		return fmt.Errorf("chaos gate: report has no tenant runs")
	}
	for _, t := range r.Tenants {
		if n := t.Report.Mismatches(); n > 0 {
			return fmt.Errorf("chaos gate: tenant %s: %d answer(s) disagreed with the plaintext oracle", t.Tenant, n)
		}
		if t.Report.Abandoned > 0 {
			return fmt.Errorf("chaos gate: tenant %s: %d in-flight session(s) abandoned", t.Tenant, t.Report.Abandoned)
		}
	}
	if r.AppliedReloads < 3 {
		return fmt.Errorf("chaos gate: only %d applied reloads, want ≥3", r.AppliedReloads)
	}
	if r.RejectedReloads < 1 {
		return fmt.Errorf("chaos gate: the corrupt config was never rejected")
	}
	if r.WatchdogTrips != 0 {
		return fmt.Errorf("chaos gate: watchdog tripped %d time(s)", r.WatchdogTrips)
	}
	if r.LiveEpochs != 1 {
		return fmt.Errorf("chaos gate: %d epochs still live after drain (LSP leak)", r.LiveEpochs)
	}
	if r.FinalState != "ready" {
		return fmt.Errorf("chaos gate: service ended %q, want ready", r.FinalState)
	}
	for _, t := range r.Tenants {
		for _, stage := range t.Report.Stages {
			for outcome, n := range stage.Outcomes {
				if n == 0 {
					continue
				}
				switch {
				case outcome == "ok":
				case outcome == "busy" && t.Tenant == "beta":
					// Quota sheds, correctly classified retryable.
				default:
					return fmt.Errorf("chaos gate: tenant %s %s stage: %d session(s) ended %q",
						t.Tenant, stage.Stage, n, outcome)
				}
			}
		}
	}
	beta := r.tenant("beta")
	if beta == nil {
		return fmt.Errorf("chaos gate: no beta run in report")
	}
	var betaBusy int64
	for _, stage := range beta.Report.Stages {
		betaBusy += stage.Outcomes["busy"]
	}
	if betaBusy == 0 {
		return fmt.Errorf("chaos gate: beta's quota of 1 produced no sheds — the admission gate never engaged")
	}
	if r.QuotaSheds == 0 {
		return fmt.Errorf("chaos gate: server recorded no quota admissions despite %d client-side busys", betaBusy)
	}
	if err := r.Traces.Check("chaos gate"); err != nil {
		return err
	}
	return nil
}

func (r *ChaosReport) tenant(name string) *ChaosTenant {
	for i := range r.Tenants {
		if r.Tenants[i].Tenant == name {
			return &r.Tenants[i]
		}
	}
	return nil
}
