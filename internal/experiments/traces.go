package experiments

import (
	"fmt"
	"time"

	"ppgnn/internal/obs"
)

// traceSlack is the timing tolerance the gates grant a trace tree:
// sibling spans are recorded sequentially, so the sum of a span's
// direct children may only exceed the parent by scheduler noise.
const traceSlack = 100 * time.Millisecond

// TraceAudit is the gates' verdict on the server-side flight recorder:
// the retained trace population and every way it violated the
// observability contract. A gate's Check fails on any violation — the
// traces must exist (the wire propagation worked), carry only
// closed-enum attributes (the privacy contract held), and account for
// the wall time their parents measured (the timing is honest).
type TraceAudit struct {
	Traces     int `json:"traces"`
	SlowTraces int `json:"slow_traces"`
	// Remote counts traces whose id arrived via FrameTrace — for a gate
	// driving a server over TCP, that should be all of them.
	Remote     int      `json:"remote"`
	Violations []string `json:"violations,omitempty"`
}

// auditTraces inspects a recorder's retained traces. Passing the slow
// reservoir through the same span checks keeps failed traces honest too.
func auditTraces(rec *obs.Recorder) *TraceAudit {
	a := &TraceAudit{}
	recent, slow := rec.Snapshot(), rec.SlowSnapshot()
	a.Traces, a.SlowTraces = len(recent), len(slow)
	if a.Traces == 0 {
		a.Violations = append(a.Violations, "no traces retained: wire propagation or recording is broken")
	}
	for _, set := range [][]*obs.TraceSnap{recent, slow} {
		for _, t := range set {
			if t.Remote {
				a.Remote++
			}
			if t.Root == nil {
				a.Violations = append(a.Violations, fmt.Sprintf("trace %s: no root span", t.TraceID))
				continue
			}
			auditSpan(a, t.TraceID, t.Root)
		}
	}
	// Both stores can retain the same trace; Remote counts each copy, so
	// clamp to the population for the report's sanity.
	if total := a.Traces + a.SlowTraces; a.Remote > total {
		a.Remote = total
	}
	return a
}

// auditSpan checks one span and recurses: enums closed, attributes in
// the trace-attribute catalog, and the children's wall time accounted
// for by the parent.
func auditSpan(a *TraceAudit, id string, s *obs.SpanSnap) {
	if !obs.AllowedValues("phase", s.Phase) {
		a.Violations = append(a.Violations, fmt.Sprintf("trace %s: phase %q outside the closed enum", id, s.Phase))
	}
	if !obs.AllowedValues("outcome", s.Outcome) {
		a.Violations = append(a.Violations, fmt.Sprintf("trace %s: outcome %q outside the closed enum", id, s.Outcome))
	}
	for k, v := range s.Attrs {
		if !obs.AllowedTraceAttr(k, v) {
			a.Violations = append(a.Violations, fmt.Sprintf("trace %s: attribute %q=%q outside the closed catalog", id, k, v))
		}
	}
	var children float64
	for _, c := range s.Children {
		children += c.Seconds
		if c.Seconds > s.Seconds+traceSlack.Seconds() {
			a.Violations = append(a.Violations, fmt.Sprintf(
				"trace %s: %s span (%.4fs) outlasts its parent %s (%.4fs)", id, c.Phase, c.Seconds, s.Phase, s.Seconds))
		}
		auditSpan(a, id, c)
	}
	if children > s.Seconds+traceSlack.Seconds() {
		a.Violations = append(a.Violations, fmt.Sprintf(
			"trace %s: %s children sum to %.4fs, parent measured only %.4fs", id, s.Phase, children, s.Seconds))
	}
}

// Check fails on a missing or violated audit.
func (a *TraceAudit) Check(gate string) error {
	if a == nil {
		return fmt.Errorf("%s: report carries no trace audit", gate)
	}
	if len(a.Violations) > 0 {
		return fmt.Errorf("%s: %d trace violation(s), first: %s", gate, len(a.Violations), a.Violations[0])
	}
	return nil
}
