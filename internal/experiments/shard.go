package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"ppgnn/internal/core"
	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/parallel"
	"ppgnn/internal/partition"
	"ppgnn/internal/shard"
)

// ShardSizePoint is one database size of the shard gate's curves: build
// times for both index layouts, the candidate work (POIs cost-evaluated
// across the full δ′-candidate sweep) of the single tree vs the
// sharded+grid index, the wall time of the serial single-tree sweep vs
// the parallel sharded sweep, and whether the two paths produced
// byte-identical encrypted answers through the full Algorithm 2.
type ShardSizePoint struct {
	POIs          int   `json:"pois"`
	BuildSingleNs int64 `json:"build_single_ns"`
	BuildShardNs  int64 `json:"build_shard_ns"`
	// ScannedSingle / ScannedShard are per-sweep totals (δ′ candidate
	// queries), deterministic for a fixed seed. ScannedShard includes the
	// grid seed's evaluations — the honest total the sub-linearity floor
	// is asserted on.
	ScannedSingle int   `json:"scanned_single"`
	ScannedShard  int   `json:"scanned_shard"`
	SweepSingleNs int64 `json:"sweep_single_ns"` // serial, best of reps
	SweepShardNs  int64 `json:"sweep_shard_ns"`  // parallel, best of reps
	// AnswersIdentical is the end-to-end check: core.LSP.Process on both
	// index layouts, same query bytes, ans.Marshal() byte-equality.
	AnswersIdentical bool `json:"answers_identical"`
	// OracleChecked records that every candidate's kGNN answer was also
	// verified against the O(N) brute-force engine at this size (done up
	// to oracleMaxPOIs; cross-path equality is asserted at every size).
	OracleChecked bool `json:"oracle_checked"`
}

// ShardReport is the payload of BENCH_shard.json.
type ShardReport struct {
	KeyBits    int `json:"keybits"`
	DeltaPrime int `json:"delta_prime"`
	N          int `json:"n"`
	K          int `json:"k"`
	Shards     int `json:"shards"`
	Workers    int `json:"workers"`
	Cores      int `json:"cores"`
	Reps       int `json:"reps"`

	Sizes []ShardSizePoint `json:"sizes"`
	// SweepSpeedup is serial-single / parallel-sharded sweep time at the
	// largest size — where sharding must pay for itself.
	SweepSpeedup float64 `json:"sweep_speedup"`
}

// DefaultShardSizes are the database sizes of the gate's growth curves.
var DefaultShardSizes = []int{10_000, 100_000, 1_000_000}

// oracleMaxPOIs bounds the brute-force oracle pass: past this the O(N·δ′)
// scan costs more than the signal it adds over cross-path equality.
const oracleMaxPOIs = 10_000

// sweepRounds amplifies each timed sweep repetition: the plaintext
// candidate sweep is microseconds per candidate, so a single pass would
// time mostly scheduler noise.
const sweepRounds = 5

// ShardGate measures the sharded, grid-pruned POI index against the
// single-tree path at each database size: it builds both indexes over
// the same synthetic POIs, runs the full δ′-candidate plaintext sweep on
// both (serial single tree vs parallel shards, the comparison sharding
// exists for), asserts every candidate answer identical (and equal to
// the brute-force oracle at sizes up to oracleMaxPOIs), runs the full
// encrypted Process on both and asserts the answers byte-identical, and
// reports the candidate-work and wall-time curves.
func (c Config) ShardGate(shards, reps int, sizes []int) (*ShardReport, error) {
	c = c.Defaults()
	if shards <= 0 {
		shards = 8
	}
	if reps <= 0 {
		reps = 3
	}
	if len(sizes) == 0 {
		sizes = DefaultShardSizes
	}
	workers := runtime.GOMAXPROCS(0)

	// One fixed query replayed at every size: the curves must vary only
	// the database.
	rng := rand.New(rand.NewSource(c.Seed))
	const n = 4
	p := core.DefaultParams(n)
	p.KeyBits = c.KeyBits
	locs := randomLocations(rng, n, c.Space)
	g, err := core.NewGroup(p, locs, rng)
	if err != nil {
		return nil, err
	}
	dp := g.DeltaPrime()
	var m cost.Meter
	q, lms, err := g.BuildQuery(&m)
	if err != nil {
		return nil, err
	}
	ordered := make([][]geo.Point, n)
	for _, lm := range lms {
		ordered[lm.UserID] = lm.Set
	}
	// The same candidate materialization the LSP runs (Section 4.2).
	params := partition.Params{
		N: n, D: p.D, Delta: q.Delta,
		Alpha: len(q.NBar), NBar: q.NBar, DBar: q.DBar,
		DeltaPrime: dp,
	}
	cands, err := params.Candidates(ordered)
	if err != nil {
		return nil, err
	}

	rep := &ShardReport{
		KeyBits: p.KeyBits, DeltaPrime: dp, N: n, K: p.K,
		Shards: shards, Workers: workers, Cores: runtime.NumCPU(), Reps: reps,
	}

	for _, size := range sizes {
		pt, err := c.shardSizePoint(size, shards, workers, reps, q, lms, cands)
		if err != nil {
			return nil, fmt.Errorf("shard gate: %d POIs: %w", size, err)
		}
		rep.Sizes = append(rep.Sizes, *pt)
	}
	last := rep.Sizes[len(rep.Sizes)-1]
	if last.SweepShardNs > 0 {
		rep.SweepSpeedup = float64(last.SweepSingleNs) / float64(last.SweepShardNs)
	}
	return rep, nil
}

func (c Config) shardSizePoint(size, shards, workers, reps int, q *core.QueryMsg, lms []*core.LocationMsg, cands [][]geo.Point) (*ShardSizePoint, error) {
	items := dataset.Synthetic(c.Seed, size)
	pt := &ShardSizePoint{POIs: size}

	start := time.Now()
	single := core.NewLSP(items, c.Space)
	pt.BuildSingleNs = time.Since(start).Nanoseconds()
	single.Workers = 1
	single.SanitizeSeed = c.Seed

	start = time.Now()
	ix := shard.New(items, c.Space, shard.Options{Shards: shards, PruneGrid: true})
	pt.BuildShardNs = time.Since(start).Nanoseconds()

	// Plaintext candidate sweep, single tree, serial: the reference arm.
	mbm := &gnn.MBM{Tree: single.Tree(), Agg: q.Agg}
	singleRes := make([][]gnn.Result, len(cands))
	for t, cand := range cands {
		res, scanned := mbm.SearchBounded(cand, q.K, math.Inf(1))
		singleRes[t] = res
		pt.ScannedSingle += scanned
	}

	// Sharded+grid sweep, candidates fanned out on the pool (each
	// candidate's shard scan sequential, so scanned counts stay
	// deterministic and the parallelism mirrors the LSP's per-candidate
	// fan-out).
	seq := parallel.New(1)
	shardRes := make([][]gnn.Result, len(cands))
	shardScanned := make([]int, len(cands))
	sweepPool := parallel.New(workers)
	if err := sweepPool.ForEach(context.Background(), len(cands), func(t int) error {
		res, st := ix.SearchStats(seq, cands[t], q.K, q.Agg)
		shardRes[t] = res
		shardScanned[t] = st.Scanned
		return nil
	}); err != nil {
		return nil, err
	}
	for _, s := range shardScanned {
		pt.ScannedShard += s
	}

	// Equivalence at this size: the sharded path must reproduce the
	// single tree exactly, and (up to oracleMaxPOIs) both must match the
	// brute-force engine.
	var oracle *gnn.BruteForce
	if size <= oracleMaxPOIs {
		oracle = &gnn.BruteForce{Items: items, Agg: q.Agg}
		pt.OracleChecked = true
	}
	for t := range cands {
		if err := sameResults(singleRes[t], shardRes[t]); err != nil {
			return nil, fmt.Errorf("candidate %d: sharded vs single tree: %w", t, err)
		}
		if oracle != nil {
			if err := sameResults(oracle.Search(cands[t], q.K), shardRes[t]); err != nil {
				return nil, fmt.Errorf("candidate %d: sharded vs brute-force oracle: %w", t, err)
			}
		}
	}

	// Timed sweeps, best of reps, one untimed warm-up each. sweepRounds
	// passes per repetition amplify the microsecond-scale per-candidate
	// work above timer noise.
	pt.SweepSingleNs = bestOf(reps, func() {
		for r := 0; r < sweepRounds; r++ {
			for _, cand := range cands {
				mbm.SearchBounded(cand, q.K, math.Inf(1))
			}
		}
	})
	pt.SweepShardNs = bestOf(reps, func() {
		for r := 0; r < sweepRounds; r++ {
			sweepPool.ForEach(context.Background(), len(cands), func(t int) error {
				ix.SearchPool(seq, cands[t], q.K, q.Agg)
				return nil
			})
		}
	})

	// End to end: full Algorithm 2 on both layouts, byte-compared.
	sharded := core.NewIndexedLSP(items, c.Space, core.IndexOptions{Shards: shards, PruneGrid: true})
	sharded.Workers = workers
	sharded.SanitizeSeed = c.Seed
	var m1, m2 cost.Meter
	ansSingle, err := single.Process(q, lms, &m1)
	if err != nil {
		return nil, fmt.Errorf("single-tree Process: %w", err)
	}
	ansShard, err := sharded.Process(q, lms, &m2)
	if err != nil {
		return nil, fmt.Errorf("sharded Process: %w", err)
	}
	pt.AnswersIdentical = bytes.Equal(ansSingle.Marshal(), ansShard.Marshal())
	if !pt.AnswersIdentical {
		return nil, fmt.Errorf("encrypted answers differ between the single-tree and sharded paths")
	}
	return pt, nil
}

// sameResults asserts two ranked answers identical: same length, same
// IDs in the same order, bit-identical costs.
func sameResults(want, got []gnn.Result) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Item.ID != got[i].Item.ID || want[i].Cost != got[i].Cost {
			return fmt.Errorf("rank %d: got id=%d cost=%v, want id=%d cost=%v",
				i, got[i].Item.ID, got[i].Cost, want[i].Item.ID, want[i].Cost)
		}
	}
	return nil
}

// bestOf times fn reps times after one untimed warm-up and returns the
// fastest run in nanoseconds.
func bestOf(reps int, fn func()) int64 {
	var best int64
	for r := 0; r < reps+1; r++ {
		start := time.Now()
		fn()
		elapsed := time.Since(start).Nanoseconds()
		if r == 0 {
			continue
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

// FloorSkipReason is non-empty when the sweep-speedup floor cannot apply
// on this hardware; callers surface it loudly so a single-core PASS
// never reads as a verified speedup (same contract as the parallel
// gate).
func (r *ShardReport) FloorSkipReason() string {
	if r.Cores < 2 {
		return fmt.Sprintf("single core (cores=%d): the 1.2× sweep-speedup floor is SKIPPED — equivalence, byte-identity, and sub-linearity checks only", r.Cores)
	}
	return ""
}

// Check enforces the CI gate:
//
//   - every size must have produced byte-identical encrypted answers;
//   - candidate work must grow sub-linearly: across the sizes the
//     sharded+grid scan count may grow at most like the square root of
//     the database (ratio(scanned) ≤ √ratio(POIs), with a small slack);
//   - at the largest size the pruned path may not scan more than the
//     single tree;
//   - with 2+ cores, the parallel sharded sweep must beat the serial
//     single-tree sweep by 1.2× at the largest size (skipped loudly on
//     one core via FloorSkipReason);
//   - against a same-core-count baseline: the sharded sweep time may not
//     regress more than 20%, and on multi-core hardware the speedup may
//     not collapse below 80% of the baseline's. Other-hardware baselines
//     are ignored — nanoseconds do not transfer.
func (r *ShardReport) Check(baseline *ShardReport) error {
	if len(r.Sizes) < 2 {
		return fmt.Errorf("shard gate: %d size points, need at least 2 for a growth curve", len(r.Sizes))
	}
	for _, pt := range r.Sizes {
		if !pt.AnswersIdentical {
			return fmt.Errorf("shard gate: answers not byte-identical at %d POIs", pt.POIs)
		}
	}
	first, last := r.Sizes[0], r.Sizes[len(r.Sizes)-1]
	if first.ScannedShard > 0 {
		sizeRatio := float64(last.POIs) / float64(first.POIs)
		scanRatio := float64(last.ScannedShard) / float64(first.ScannedShard)
		// 1.2 slack: bucket granularity shifts a few seed evaluations
		// between sizes without changing the asymptotic story.
		if limit := 1.2 * math.Sqrt(sizeRatio); scanRatio > limit {
			return fmt.Errorf("shard gate: candidate work grew %.1f× over a %.0f× database (limit %.1f× = 1.2·√ratio) — pruning is not sub-linear",
				scanRatio, sizeRatio, limit)
		}
	}
	if last.ScannedShard > last.ScannedSingle {
		return fmt.Errorf("shard gate: pruned path scanned %d POIs vs single tree's %d at %d POIs — the grid is not paying for the shard fan-out",
			last.ScannedShard, last.ScannedSingle, last.POIs)
	}
	if r.Cores >= 2 && r.SweepSpeedup < 1.2 {
		return fmt.Errorf("shard gate: sweep speedup %.2f× below the 1.2× floor at %d POIs (single %d ns, sharded %d ns, workers=%d, cores=%d)",
			r.SweepSpeedup, last.POIs, last.SweepSingleNs, last.SweepShardNs, r.Workers, r.Cores)
	}
	if baseline == nil || baseline.Cores != r.Cores || len(baseline.Sizes) == 0 {
		return nil
	}
	blast := baseline.Sizes[len(baseline.Sizes)-1]
	if blast.POIs == last.POIs && blast.SweepShardNs > 0 {
		limit := blast.SweepShardNs + blast.SweepShardNs/5
		if last.SweepShardNs > limit {
			return fmt.Errorf("shard gate: sharded sweep %d ns regressed >20%% vs baseline %d ns at %d POIs (cores=%d)",
				last.SweepShardNs, blast.SweepShardNs, last.POIs, r.Cores)
		}
	}
	if r.Cores >= 2 && r.SweepSpeedup < 0.8*baseline.SweepSpeedup {
		return fmt.Errorf("shard gate: sweep speedup %.2f× below 80%% of baseline %.2f×",
			r.SweepSpeedup, baseline.SweepSpeedup)
	}
	return nil
}
