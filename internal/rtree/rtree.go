// Package rtree implements an in-memory R-tree over planar points: the
// spatial index the LSP uses to answer kNN and group kNN (MBM) queries on
// its POI database. It supports Guttman-style insertion with quadratic
// splits, deletion with reinsertion (so the database is dynamic, a property
// the paper's approach explicitly preserves), STR bulk loading, window
// search, and best-first k-nearest-neighbor search.
//
// The tree exposes read-only node accessors so that higher layers (the MBM
// group nearest neighbor search in internal/gnn) can run their own
// branch-and-bound traversals with custom aggregate bounds.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"ppgnn/internal/geo"
)

// Item is an indexed point with a caller-assigned identifier.
type Item struct {
	ID int64
	P  geo.Point
}

// Tree is an R-tree. The zero value is not usable; call New or Bulk.
type Tree struct {
	root       *Node
	size       int
	minEntries int
	maxEntries int
	height     int
}

// Node is an R-tree node. Exported accessors are read-only; mutating the
// tree through them is not supported.
type Node struct {
	leaf     bool
	rect     geo.Rect
	children []*Node
	items    []Item
}

// IsLeaf reports whether the node stores items rather than child nodes.
func (n *Node) IsLeaf() bool { return n.leaf }

// Rect returns the node's minimum bounding rectangle.
func (n *Node) Rect() geo.Rect { return n.rect }

// Children returns the child nodes of an internal node (nil for leaves).
func (n *Node) Children() []*Node { return n.children }

// Items returns the items of a leaf node (nil for internal nodes).
func (n *Node) Items() []Item { return n.items }

// DefaultMaxEntries is the node capacity used by New and Bulk.
const DefaultMaxEntries = 32

// New returns an empty tree with the given maximum node fanout
// (DefaultMaxEntries if maxEntries <= 0).
func New(maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root:       &Node{leaf: true},
		minEntries: maxEntries * 2 / 5, // the common 40% fill floor
		maxEntries: maxEntries,
		height:     1,
	}
}

// Bulk builds a tree over the items using Sort-Tile-Recursive packing,
// which produces near-optimal leaves for static loads. The items slice is
// not retained.
func Bulk(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(items) == 0 {
		return t
	}
	own := make([]Item, len(items))
	copy(own, items)

	leaves := strPack(own, t.maxEntries)
	level := leaves
	height := 1
	for len(level) > 1 {
		level = packNodes(level, t.maxEntries)
		height++
	}
	t.root = level[0]
	t.size = len(items)
	t.height = height
	return t
}

// strPack tiles the sorted items into leaf nodes.
func strPack(items []Item, capacity int) []*Node {
	n := len(items)
	leafCount := (n + capacity - 1) / capacity
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * capacity

	sort.Slice(items, func(i, j int) bool { return items[i].P.X < items[j].P.X })
	var leaves []*Node
	for start := 0; start < n; start += sliceSize {
		end := min(start+sliceSize, n)
		run := items[start:end]
		sort.Slice(run, func(i, j int) bool { return run[i].P.Y < run[j].P.Y })
		for ls := 0; ls < len(run); ls += capacity {
			le := min(ls+capacity, len(run))
			leaf := &Node{leaf: true, items: append([]Item(nil), run[ls:le]...)}
			leaf.recomputeRect()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups a level of nodes into parents using the same tiling.
func packNodes(nodes []*Node, capacity int) []*Node {
	n := len(nodes)
	parentCount := (n + capacity - 1) / capacity
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * capacity

	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].rect.Center().X < nodes[j].rect.Center().X
	})
	var parents []*Node
	for start := 0; start < n; start += sliceSize {
		end := min(start+sliceSize, n)
		run := nodes[start:end]
		sort.Slice(run, func(i, j int) bool {
			return run[i].rect.Center().Y < run[j].rect.Center().Y
		})
		for ls := 0; ls < len(run); ls += capacity {
			le := min(ls+capacity, len(run))
			parent := &Node{children: append([]*Node(nil), run[ls:le]...)}
			parent.recomputeRect()
			parents = append(parents, parent)
		}
	}
	return parents
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree that is a single leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the root node for custom traversals.
func (t *Tree) Root() *Node { return t.root }

// Bounds returns the bounding rectangle of all items and false when empty.
func (t *Tree) Bounds() (geo.Rect, bool) {
	if t.size == 0 {
		return geo.Rect{}, false
	}
	return t.root.rect, true
}

func (n *Node) recomputeRect() {
	if n.leaf {
		if len(n.items) == 0 {
			n.rect = geo.Rect{}
			return
		}
		r := geo.Rect{Min: n.items[0].P, Max: n.items[0].P}
		for _, it := range n.items[1:] {
			r = r.ExtendPoint(it.P)
		}
		n.rect = r
		return
	}
	if len(n.children) == 0 {
		n.rect = geo.Rect{}
		return
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Extend(c.rect)
	}
	n.rect = r
}

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	left, right := t.insert(t.root, it)
	if right != nil {
		t.root = &Node{children: []*Node{left, right}}
		t.root.recomputeRect()
		t.height++
	} else {
		t.root = left
	}
	t.size++
}

// insert adds it under n and returns the (possibly split) replacement
// node(s). right is nil when no split occurred.
func (t *Tree) insert(n *Node, it Item) (left, right *Node) {
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) == 1 {
			n.rect = geo.Rect{Min: it.P, Max: it.P}
		} else {
			n.rect = n.rect.ExtendPoint(it.P)
		}
		if len(n.items) > t.maxEntries {
			a, b := n.split(t.minEntries)
			return a, b
		}
		return n, nil
	}
	child := chooseSubtree(n.children, it.P)
	cl, cr := t.insert(n.children[child], it)
	n.children[child] = cl
	if cr != nil {
		n.children = append(n.children, cr)
	}
	n.recomputeRect()
	if len(n.children) > t.maxEntries {
		a, b := n.split(t.minEntries)
		return a, b
	}
	return n, nil
}

// chooseSubtree picks the child needing the least area enlargement to cover
// p, breaking ties by smaller area (Guttman's ChooseLeaf heuristic).
func chooseSubtree(children []*Node, p geo.Point) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range children {
		enl := c.rect.ExtendPoint(p).Area() - c.rect.Area()
		area := c.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

func (n *Node) entryCount() int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.children)
}

// split performs Guttman's quadratic split, returning two nodes.
func (n *Node) split(minEntries int) (*Node, *Node) {
	rects := n.entryRects()
	seedA, seedB := quadraticSeeds(rects)

	groupA := []int{seedA}
	groupB := []int{seedB}
	rectA, rectB := rects[seedA], rects[seedB]
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	total := len(rects)
	for len(remaining) > 0 {
		// Force-assign if one group must take all the rest to reach min.
		if len(groupA)+len(remaining) == minEntries {
			groupA = append(groupA, remaining...)
			for _, i := range remaining {
				rectA = rectA.Extend(rects[i])
			}
			break
		}
		if len(groupB)+len(remaining) == minEntries {
			groupB = append(groupB, remaining...)
			for _, i := range remaining {
				rectB = rectB.Extend(rects[i])
			}
			break
		}
		// Pick the entry with the greatest preference for one group.
		bestIdx, bestDiff, bestPos := -1, -1.0, 0
		for pos, i := range remaining {
			dA := rectA.Extend(rects[i]).Area() - rectA.Area()
			dB := rectB.Extend(rects[i]).Area() - rectB.Area()
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos = diff, i, pos
			}
		}
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		dA := rectA.Extend(rects[bestIdx]).Area() - rectA.Area()
		dB := rectB.Extend(rects[bestIdx]).Area() - rectB.Area()
		toA := dA < dB
		if dA == dB {
			toA = rectA.Area() < rectB.Area() ||
				(rectA.Area() == rectB.Area() && len(groupA) < len(groupB))
		}
		if toA {
			groupA = append(groupA, bestIdx)
			rectA = rectA.Extend(rects[bestIdx])
		} else {
			groupB = append(groupB, bestIdx)
			rectB = rectB.Extend(rects[bestIdx])
		}
	}
	if len(groupA)+len(groupB) != total {
		panic("rtree: split lost entries")
	}
	return n.subset(groupA), n.subset(groupB)
}

func (n *Node) entryRects() []geo.Rect {
	if n.leaf {
		rects := make([]geo.Rect, len(n.items))
		for i, it := range n.items {
			rects[i] = geo.Rect{Min: it.P, Max: it.P}
		}
		return rects
	}
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	return rects
}

func (n *Node) subset(idx []int) *Node {
	out := &Node{leaf: n.leaf}
	if n.leaf {
		out.items = make([]Item, 0, len(idx))
		for _, i := range idx {
			out.items = append(out.items, n.items[i])
		}
	} else {
		out.children = make([]*Node, 0, len(idx))
		for _, i := range idx {
			out.children = append(out.children, n.children[i])
		}
	}
	out.recomputeRect()
	return out
}

// quadraticSeeds picks the pair of rectangles wasting the most area when
// covered together.
func quadraticSeeds(rects []geo.Rect) (int, int) {
	bestWaste := math.Inf(-1)
	a, b := 0, 1
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Extend(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > bestWaste {
				bestWaste, a, b = waste, i, j
			}
		}
	}
	return a, b
}

// Delete removes the item (matched by ID and point). It reports whether the
// item was found. Underflowing nodes are dissolved and their remaining items
// reinserted (the "condense tree" step), keeping the tree balanced under a
// dynamic database.
func (t *Tree) Delete(it Item) bool {
	var orphans []Item
	found := t.delete(t.root, it, &orphans)
	if !found {
		return false
	}
	t.size--
	t.root.recomputeRect()
	// Shrink the root while it has a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &Node{leaf: true}
		t.height = 1
	}
	t.size -= len(orphans)
	for _, o := range orphans {
		t.Insert(o)
	}
	return true
}

// delete removes it from the subtree rooted at n, dissolving underflowing
// children into orphans for reinsertion.
func (t *Tree) delete(n *Node, it Item, orphans *[]Item) bool {
	if n.leaf {
		for i, li := range n.items {
			if li.ID == it.ID && li.P == it.P {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeRect()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.rect.Contains(it.P) {
			continue
		}
		if !t.delete(c, it, orphans) {
			continue
		}
		if c.entryCount() < t.minEntries {
			n.children = append(n.children[:i], n.children[i+1:]...)
			collectItems(c, orphans)
		}
		n.recomputeRect()
		return true
	}
	return false
}

func collectItems(n *Node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}

// Search calls fn for every item whose point lies inside r (boundary
// inclusive). Returning false from fn stops the search early.
func (t *Tree) Search(r geo.Rect, fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	search(t.root, r, fn)
}

func search(n *Node, r geo.Rect, fn func(Item) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if r.Contains(it.P) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !search(c, r, fn) {
			return false
		}
	}
	return true
}

// All calls fn for every item in the tree.
func (t *Tree) All(fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.leaf {
			for _, it := range n.items {
				if !fn(it) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Neighbor is a kNN result: an item and its distance to the query point.
type Neighbor struct {
	Item Item
	Dist float64
}

// NearestK returns the k items nearest to p in ascending distance order
// (fewer if the tree holds fewer than k items). Ties are broken by item ID
// so results are deterministic.
func (t *Tree) NearestK(p geo.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &entryQueue{}
	heap.Push(pq, queueEntry{dist: t.root.rect.MinDist(p), node: t.root})
	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(queueEntry)
		switch {
		case e.node != nil && e.node.leaf:
			for _, it := range e.node.items {
				heap.Push(pq, queueEntry{dist: p.Dist(it.P), item: it, isItem: true})
			}
		case e.node != nil:
			for _, c := range e.node.children {
				heap.Push(pq, queueEntry{dist: c.rect.MinDist(p), node: c})
			}
		default:
			out = append(out, Neighbor{Item: e.item, Dist: e.dist})
		}
	}
	return out
}

type queueEntry struct {
	dist   float64
	node   *Node
	item   Item
	isItem bool
}

type entryQueue []queueEntry

func (q entryQueue) Len() int { return len(q) }
func (q entryQueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	// Tie-break: expand nodes before emitting items at the same distance so
	// every tied item is in the queue, then order tied items by ID. This
	// makes results deterministic.
	if q[i].isItem != q[j].isItem {
		return !q[i].isItem
	}
	return q[i].item.ID < q[j].item.ID
}
func (q entryQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *entryQueue) Push(x interface{}) { *q = append(*q, x.(queueEntry)) }
func (q *entryQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// CheckInvariants validates structural invariants; it is exported for tests.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *Node, depth int) error
	maxDepth := -1
	walk = func(n *Node, depth int) error {
		if n.leaf {
			if maxDepth == -1 {
				maxDepth = depth
			}
			if depth != maxDepth {
				return fmt.Errorf("rtree: leaves at different depths (%d vs %d)", depth, maxDepth)
			}
			count += len(n.items)
			for _, it := range n.items {
				if len(n.items) > 0 && !n.rect.Contains(it.P) {
					return fmt.Errorf("rtree: leaf rect %v misses item %v", n.rect, it.P)
				}
			}
			return nil
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: internal node with no children")
		}
		for _, c := range n.children {
			if !n.rect.ContainsRect(c.rect) {
				return fmt.Errorf("rtree: node rect %v misses child %v", n.rect, c.rect)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but counted %d items", t.size, count)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
