package rtree

import (
	"container/heap"

	"ppgnn/internal/geo"
)

// NearestIter streams the tree's items in ascending distance from a query
// point, one at a time — the incremental nearest-neighbor primitive used
// by the SPM and MQM group-query algorithms, which do not know in advance
// how many neighbors they need.
//
// The iterator is a snapshot-free view: mutating the tree while iterating
// is not supported.
type NearestIter struct {
	p  geo.Point
	pq entryQueue
}

// NearestIter starts an incremental nearest-neighbor scan from p.
func (t *Tree) NearestIter(p geo.Point) *NearestIter {
	it := &NearestIter{p: p}
	if t.size > 0 {
		heap.Push(&it.pq, queueEntry{dist: t.root.rect.MinDist(p), node: t.root})
	}
	return it
}

// Next returns the next nearest item and its distance; ok is false when the
// tree is exhausted.
func (it *NearestIter) Next() (item Item, dist float64, ok bool) {
	for it.pq.Len() > 0 {
		e := heap.Pop(&it.pq).(queueEntry)
		switch {
		case e.node != nil && e.node.leaf:
			for _, li := range e.node.items {
				heap.Push(&it.pq, queueEntry{dist: it.p.Dist(li.P), item: li, isItem: true})
			}
		case e.node != nil:
			for _, c := range e.node.children {
				heap.Push(&it.pq, queueEntry{dist: c.rect.MinDist(it.p), node: c})
			}
		default:
			return e.item, e.dist, true
		}
	}
	return Item{}, 0, false
}

// Peek returns the distance of the next item without consuming it; ok is
// false when exhausted. It may expand internal nodes to find the answer.
func (it *NearestIter) Peek() (dist float64, ok bool) {
	for it.pq.Len() > 0 {
		e := it.pq[0]
		if e.isItem {
			return e.dist, true
		}
		e = heap.Pop(&it.pq).(queueEntry)
		if e.node.leaf {
			for _, li := range e.node.items {
				heap.Push(&it.pq, queueEntry{dist: it.p.Dist(li.P), item: li, isItem: true})
			}
		} else {
			for _, c := range e.node.children {
				heap.Push(&it.pq, queueEntry{dist: c.rect.MinDist(it.p), node: c})
			}
		}
	}
	return 0, false
}
