package rtree

import (
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
)

func TestNearestIterMatchesNearestK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items := randomItems(rng, 1500)
	tr := Bulk(items, 16)
	for trial := 0; trial < 20; trial++ {
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		want := tr.NearestK(q, 100)
		it := tr.NearestIter(q)
		for i, w := range want {
			got, dist, ok := it.Next()
			if !ok {
				t.Fatalf("iterator exhausted at %d", i)
			}
			if got.ID != w.Item.ID {
				t.Fatalf("trial %d rank %d: iter %d, NearestK %d", trial, i, got.ID, w.Item.ID)
			}
			if dist != w.Dist {
				t.Fatalf("distance mismatch at rank %d", i)
			}
		}
	}
}

func TestNearestIterExhaustsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	items := randomItems(rng, 237)
	tr := Bulk(items, 8)
	it := tr.NearestIter(geo.Point{X: 0.5, Y: 0.5})
	seen := map[int64]bool{}
	prev := -1.0
	for {
		item, dist, ok := it.Next()
		if !ok {
			break
		}
		if dist < prev {
			t.Fatal("distances not non-decreasing")
		}
		prev = dist
		if seen[item.ID] {
			t.Fatalf("item %d emitted twice", item.ID)
		}
		seen[item.ID] = true
	}
	if len(seen) != len(items) {
		t.Fatalf("iterator emitted %d of %d items", len(seen), len(items))
	}
	// Next after exhaustion stays exhausted.
	if _, _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator produced an item")
	}
}

func TestNearestIterEmptyTree(t *testing.T) {
	tr := New(4)
	it := tr.NearestIter(geo.Point{X: 0.1, Y: 0.1})
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree produced an item")
	}
	if _, ok := it.Peek(); ok {
		t.Fatal("empty tree peeked an item")
	}
}

func TestNearestIterPeek(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	items := randomItems(rng, 300)
	tr := Bulk(items, 8)
	it := tr.NearestIter(geo.Point{X: 0.3, Y: 0.7})
	for i := 0; i < 300; i++ {
		pd, ok := it.Peek()
		if !ok {
			t.Fatalf("peek failed at %d", i)
		}
		_, nd, ok := it.Next()
		if !ok {
			t.Fatalf("next failed at %d", i)
		}
		if pd != nd {
			t.Fatalf("peek %v != next %v at %d", pd, nd, i)
		}
	}
	if _, ok := it.Peek(); ok {
		t.Fatal("peek after exhaustion")
	}
}
