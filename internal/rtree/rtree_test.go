package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"ppgnn/internal/geo"
)

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), P: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
	}
	return items
}

// linearNearestK is the brute-force reference for kNN.
func linearNearestK(items []Item, p geo.Point, k int) []Neighbor {
	out := make([]Neighbor, 0, len(items))
	for _, it := range items {
		out = append(out, Neighbor{Item: it, Dist: p.Dist(it.P)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Item.ID < out[j].Item.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if got := tr.NearestK(geo.Point{}, 5); got != nil {
		t.Fatalf("NearestK on empty = %v, want nil", got)
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("Bounds on empty reported ok")
	}
	tr.Search(geo.UnitRect, func(Item) bool { t.Fatal("search hit on empty tree"); return true })
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New(8)
	items := randomItems(rng, 500)
	for i, it := range items {
		tr.Insert(it)
		if i%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	tr.All(func(it Item) bool { seen[it.ID] = true; return true })
	if len(seen) != len(items) {
		t.Fatalf("All visited %d distinct items, want %d", len(seen), len(items))
	}
}

func TestBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 33, 100, 5000} {
		items := randomItems(rng, n)
		tr := Bulk(items, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestNearestKMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randomItems(rng, 2000)
	bulk := Bulk(items, 16)
	incr := New(8)
	for _, it := range items {
		incr.Insert(it)
	}
	for trial := 0; trial < 50; trial++ {
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		k := 1 + rng.Intn(20)
		want := linearNearestK(items, q, k)
		for name, tr := range map[string]*Tree{"bulk": bulk, "incremental": incr} {
			got := tr.NearestK(q, k)
			if len(got) != len(want) {
				t.Fatalf("%s: NearestK returned %d items, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i].Item.ID != want[i].Item.ID {
					t.Fatalf("%s trial %d: result[%d] = id %d (d=%v), want id %d (d=%v)",
						name, trial, i, got[i].Item.ID, got[i].Dist, want[i].Item.ID, want[i].Dist)
				}
			}
		}
	}
}

func TestNearestKMoreThanSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 10)
	tr := Bulk(items, 4)
	got := tr.NearestK(geo.Point{X: 0.5, Y: 0.5}, 25)
	if len(got) != 10 {
		t.Fatalf("NearestK(k>size) returned %d, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestSearchWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 1000)
	tr := Bulk(items, 16)
	win := geo.Rect{Min: geo.Point{X: 0.25, Y: 0.25}, Max: geo.Point{X: 0.5, Y: 0.75}}
	want := map[int64]bool{}
	for _, it := range items {
		if win.Contains(it.P) {
			want[it.ID] = true
		}
	}
	got := map[int64]bool{}
	tr.Search(win, func(it Item) bool { got[it.ID] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("window search found %d, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("window search missed id %d", id)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := Bulk(randomItems(rng, 100), 8)
	count := 0
	tr.Search(geo.UnitRect, func(Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d items, want 5", count)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randomItems(rng, 400)
	tr := Bulk(items, 8)
	perm := rng.Perm(len(items))
	for i, pi := range perm {
		if !tr.Delete(items[pi]) {
			t.Fatalf("Delete(%v) not found", items[pi])
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%40 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := Bulk(randomItems(rng, 50), 8)
	if tr.Delete(Item{ID: 9999, P: geo.Point{X: 0.123, Y: 0.456}}) {
		t.Fatal("Delete of missing item reported success")
	}
	if tr.Len() != 50 {
		t.Fatalf("Len changed to %d", tr.Len())
	}
}

func TestDeleteThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := randomItems(rng, 300)
	tr := Bulk(items, 8)
	// Delete every third item.
	var remaining []Item
	for i, it := range items {
		if i%3 == 0 {
			if !tr.Delete(it) {
				t.Fatalf("delete %d failed", i)
			}
		} else {
			remaining = append(remaining, it)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geo.Point{X: 0.5, Y: 0.5}
	want := linearNearestK(remaining, q, 10)
	got := tr.NearestK(q, 10)
	for i := range want {
		if got[i].Item.ID != want[i].Item.ID {
			t.Fatalf("post-delete kNN mismatch at %d: got %d want %d", i, got[i].Item.ID, want[i].Item.ID)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(4)
	p := geo.Point{X: 0.5, Y: 0.5}
	for i := 0; i < 20; i++ {
		tr.Insert(Item{ID: int64(i), P: p})
	}
	if tr.Len() != 20 {
		t.Fatalf("Len = %d, want 20", tr.Len())
	}
	got := tr.NearestK(p, 20)
	if len(got) != 20 {
		t.Fatalf("NearestK returned %d, want 20", len(got))
	}
	// Deterministic tie-breaking by ID.
	for i := range got {
		if got[i].Item.ID != int64(i) {
			t.Fatalf("tie-break order wrong at %d: %d", i, got[i].Item.ID)
		}
	}
	if !tr.Delete(Item{ID: 7, P: p}) {
		t.Fatal("delete duplicate-point item failed")
	}
	if tr.Len() != 19 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
}

func TestMixedInsertDeleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := New(8)
	alive := map[int64]Item{}
	nextID := int64(0)
	for step := 0; step < 3000; step++ {
		if len(alive) == 0 || rng.Float64() < 0.6 {
			it := Item{ID: nextID, P: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
			nextID++
			tr.Insert(it)
			alive[it.ID] = it
		} else {
			// Delete a random alive item.
			var victim Item
			for _, it := range alive {
				victim = it
				break
			}
			if !tr.Delete(victim) {
				t.Fatalf("step %d: delete of live item %v failed", step, victim)
			}
			delete(alive, victim.ID)
		}
		if step%250 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(alive) {
				t.Fatalf("step %d: Len=%d alive=%d", step, tr.Len(), len(alive))
			}
		}
	}
	// Final kNN cross-check.
	var items []Item
	for _, it := range alive {
		items = append(items, it)
	}
	q := geo.Point{X: 0.3, Y: 0.6}
	want := linearNearestK(items, q, 15)
	got := tr.NearestK(q, 15)
	for i := range want {
		if got[i].Item.ID != want[i].Item.ID {
			t.Fatalf("final kNN mismatch at %d", i)
		}
	}
}

func TestBounds(t *testing.T) {
	tr := New(4)
	tr.Insert(Item{ID: 1, P: geo.Point{X: 0.2, Y: 0.3}})
	tr.Insert(Item{ID: 2, P: geo.Point{X: 0.8, Y: 0.1}})
	b, ok := tr.Bounds()
	if !ok {
		t.Fatal("Bounds not ok")
	}
	want := geo.Rect{Min: geo.Point{X: 0.2, Y: 0.1}, Max: geo.Point{X: 0.8, Y: 0.3}}
	if b != want {
		t.Fatalf("Bounds = %v, want %v", b, want)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := New(4)
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		tr.Insert(Item{ID: int64(i), P: geo.Point{X: rng.Float64(), Y: rng.Float64()}})
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d after 200 inserts with fanout 4, expected >= 3", tr.Height())
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 62556)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(items, DefaultMaxEntries)
	}
}

func BenchmarkNearestK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := Bulk(randomItems(rng, 62556), DefaultMaxEntries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		tr.NearestK(q, 8)
	}
}
