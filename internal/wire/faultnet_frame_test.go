package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ppgnn/internal/faultnet"
)

// frameOver writes one frame through a fault-injecting conn from a
// goroutine and reads it on the peer, returning the read outcome.
func frameOver(t *testing.T, f faultnet.Faults, msgType byte, payload []byte) (byte, []byte, error) {
	t.Helper()
	a, b := net.Pipe()
	defer b.Close()
	w := faultnet.Wrap(a, f)
	go func() {
		WriteFrame(w, msgType, payload)
		w.Close()
	}()
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	return ReadFrame(b)
}

func TestFrameFragmentedRoundTrip(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	typ, got, err := frameOver(t, faultnet.Faults{Seed: 3, MaxChunk: 7}, 2, payload)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 2 || len(got) != len(payload) {
		t.Fatalf("frame = type %d, %d bytes; want type 2, %d bytes", typ, len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestFrameZeroLengthPayload(t *testing.T) {
	typ, got, err := frameOver(t, faultnet.Faults{Seed: 4, MaxChunk: 2}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 3 || len(got) != 0 {
		t.Fatalf("frame = type %d, %d bytes; want type 3, empty", typ, len(got))
	}
}

func TestFrameMidHeaderEOF(t *testing.T) {
	_, _, err := frameOver(t, faultnet.Faults{WriteResetAfter: 3}, 1, []byte("payload"))
	if err == nil {
		t.Fatal("ReadFrame accepted a frame cut inside the header")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestFrameMidPayloadEOF(t *testing.T) {
	payload := make([]byte, 100)
	cut := int64(FrameHeaderSize + 40)
	_, _, err := frameOver(t, faultnet.Faults{WriteResetAfter: cut}, 1, payload)
	if err == nil {
		t.Fatal("ReadFrame accepted a frame cut inside the payload")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestFrameOversizedLengthPrefix(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	go func() {
		var hdr [FrameHeaderSize]byte
		hdr[0] = 1
		binary.BigEndian.PutUint32(hdr[1:], uint32(MaxFrameSize+1))
		a.Write(hdr[:])
		a.Close()
	}()
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, _, err := ReadFrame(b)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want frame-limit rejection", err)
	}
}

func TestFrameCtxDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	// Nothing ever arrives: the read must fail at the context deadline
	// instead of hanging.
	start := time.Now()
	_, _, err := ReadFrameCtx(ctx, b)
	if err == nil {
		t.Fatal("ReadFrameCtx returned without input")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ReadFrameCtx honored no deadline (%v)", elapsed)
	}
	// A cancelled context fails fast on both paths.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := WriteFrameCtx(done, a, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteFrameCtx on cancelled ctx: %v", err)
	}
	if _, _, err := ReadFrameCtx(done, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadFrameCtx on cancelled ctx: %v", err)
	}
}
