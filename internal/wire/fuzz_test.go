package wire

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder. A frame that
// decodes must round-trip: re-encoding the decoded (type, payload) with
// WriteFrame has to reproduce the consumed prefix byte for byte, and the
// declared payload length may never exceed MaxFrameSize (the hostile
// length-prefix guard).
func FuzzReadFrame(f *testing.F) {
	var w bytes.Buffer
	if err := WriteFrame(&w, 3, []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff}) // length prefix over the limit
	f.Add([]byte{2, 0, 0, 0, 9, 'x'})        // truncated payload
	f.Add(append(w.Bytes(), w.Bytes()...))   // two back-to-back frames
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		msgType, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("decoded payload of %d bytes above MaxFrameSize", len(payload))
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, msgType, payload); err != nil {
			t.Fatalf("re-encoding decoded frame: %v", err)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round-trip mismatch: read %x, rewrote %x", data[:consumed], out.Bytes())
		}
	})
}

// FuzzReader drives the Reader primitives over arbitrary input in a fixed
// order. The contract under fuzz: no panic, no huge allocation from a
// hostile length prefix, and once Err() is non-nil every subsequent read
// returns a zero value without clearing the error.
func FuzzReader(f *testing.F) {
	var w Writer
	w.Uvarint(42)
	w.Uint32(7)
	w.Float64(0.25)
	w.Bool(true)
	w.BytesField([]byte("abc"))
	w.IntSlice([]int{1, 2, 3})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.Uvarint()
		r.Uint32()
		r.Float64()
		r.Bool()
		b := r.BytesField()
		if len(b) > len(data) {
			t.Fatalf("BytesField returned %d bytes from %d-byte input", len(b), len(data))
		}
		vs := r.IntSlice()
		if len(vs) > len(data) {
			t.Fatalf("IntSlice returned %d elements from %d-byte input", len(vs), len(data))
		}
		cs := r.FixedBigIntSlice(16)
		if len(cs)*16 > len(data) {
			t.Fatalf("FixedBigIntSlice returned %d elements from %d-byte input", len(cs), len(data))
		}
		if r.Remaining() < 0 || r.Remaining() > len(data) {
			t.Fatalf("Remaining()=%d outside [0,%d]", r.Remaining(), len(data))
		}
		if err := r.Err(); err != nil {
			// Sticky-error contract: further reads stay zero and the error stays.
			if got := r.Uvarint(); got != 0 {
				t.Fatalf("read after error returned %d, want 0", got)
			}
			if r.Err() != err {
				t.Fatalf("error changed after failed read: %v -> %v", err, r.Err())
			}
		}
	})
}

// FuzzWriterReaderRoundTrip encodes fuzz-chosen values with Writer and
// requires Reader to return them exactly with no bytes left over.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), false, []byte(nil))
	f.Add(uint64(1<<40), uint32(9), true, []byte("hello"))
	f.Fuzz(func(t *testing.T, u uint64, x uint32, b bool, blob []byte) {
		var w Writer
		w.Uvarint(u)
		w.Uint32(x)
		w.Bool(b)
		w.BytesField(blob)
		r := NewReader(w.Bytes())
		if got := r.Uvarint(); got != u {
			t.Fatalf("Uvarint: %d != %d", got, u)
		}
		if got := r.Uint32(); got != x {
			t.Fatalf("Uint32: %d != %d", got, x)
		}
		if got := r.Bool(); got != b {
			t.Fatalf("Bool: %v != %v", got, b)
		}
		if got := r.BytesField(); !bytes.Equal(got, blob) {
			t.Fatalf("BytesField: %x != %x", got, blob)
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}
