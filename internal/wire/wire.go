// Package wire provides the binary serialization substrate the protocol
// messages are built on, plus length-prefixed framing for running the
// protocol across a TCP connection (the base-station channel of the system
// model, Section 2). All encodings are deterministic so that message byte
// counts — the paper's communication-cost metric — are reproducible.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
)

// ErrTruncated reports that a reader ran out of input mid-value.
var ErrTruncated = errors.New("wire: truncated input")

// MaxFrameSize bounds a single framed message (16 MiB), protecting servers
// from hostile length prefixes.
const MaxFrameSize = 16 << 20

// FrameHeaderSize is the fixed per-frame overhead of WriteFrame: one type
// byte plus a 4-byte big-endian payload length. Byte accounting (the
// paper's communication-cost metric) must add it to every payload length.
const FrameHeaderSize = 5

// Writer builds a binary message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends a varint-encoded unsigned integer.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Uint32 appends a fixed 4-byte big-endian integer.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Float64 appends an IEEE-754 double.
func (w *Writer) Float64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bool appends a single byte 0/1.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// BytesField appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// BigInt appends a length-prefixed big integer (non-negative).
func (w *Writer) BigInt(v *big.Int) {
	if v.Sign() < 0 {
		panic("wire: negative big.Int")
	}
	w.BytesField(v.Bytes())
}

// FixedBigInt appends v zero-padded to exactly size bytes; it panics if v
// does not fit. Fixed-width encoding keeps ciphertext message sizes
// deterministic, matching the L_e cost model.
func (w *Writer) FixedBigInt(v *big.Int, size int) {
	if v.Sign() < 0 {
		panic("wire: negative big.Int")
	}
	if (v.BitLen()+7)/8 > size {
		panic(fmt.Sprintf("wire: big.Int of %d bytes exceeds fixed size %d", (v.BitLen()+7)/8, size))
	}
	start := len(w.buf)
	w.buf = append(w.buf, make([]byte, size)...)
	v.FillBytes(w.buf[start:])
}

// FixedBigIntSlice appends a length-prefixed slice of big integers, each
// zero-padded to exactly size bytes. Ciphertext and decryption-share
// vectors use it so message sizes stay deterministic (the L_e cost
// model).
func (w *Writer) FixedBigIntSlice(vs []*big.Int, size int) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.FixedBigInt(v, size)
	}
}

// IntSlice appends a length-prefixed slice of uvarint-encoded ints.
func (w *Writer) IntSlice(vs []int) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		if v < 0 {
			panic("wire: negative int in IntSlice")
		}
		w.Uvarint(uint64(v))
	}
}

// Reader decodes a binary message produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a byte slice.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads a varint-encoded unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Int reads a uvarint and converts it to int, failing on overflow.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > math.MaxInt32 {
		r.fail(fmt.Errorf("wire: integer %d out of range", v))
		return 0
	}
	return int(v)
}

// Uint32 reads a fixed 4-byte big-endian integer.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Float64 reads an IEEE-754 double.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// Bool reads a single byte as a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail(ErrTruncated)
		return false
	}
	v := r.buf[r.off]
	r.off++
	if v > 1 {
		r.fail(fmt.Errorf("wire: invalid bool byte %d", v))
	}
	return v == 1
}

// BytesField reads a length-prefixed byte string.
func (r *Reader) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

// BigInt reads a length-prefixed big integer.
func (r *Reader) BigInt() *big.Int {
	b := r.BytesField()
	if r.err != nil {
		return new(big.Int)
	}
	return new(big.Int).SetBytes(b)
}

// FixedBigInt reads a zero-padded big integer of exactly size bytes.
func (r *Reader) FixedBigInt(size int) *big.Int {
	if r.err != nil {
		return new(big.Int)
	}
	if r.Remaining() < size {
		r.fail(ErrTruncated)
		return new(big.Int)
	}
	v := new(big.Int).SetBytes(r.buf[r.off : r.off+size])
	r.off += size
	return v
}

// FixedBigIntSlice reads a slice written by Writer.FixedBigIntSlice. The
// declared element count is checked against the remaining payload before
// any allocation, so a hostile length prefix cannot force a huge
// allocation. The check divides rather than multiplies: n and size are
// both attacker-influenced, and n*size can wrap negative and slip past a
// product comparison.
func (r *Reader) FixedBigIntSlice(size int) []*big.Int {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if size <= 0 || n > r.Remaining()/size {
		r.fail(fmt.Errorf("wire: big.Int vector of %d × %d bytes exceeds payload", n, size))
		return nil
	}
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = r.FixedBigInt(size)
	}
	return out
}

// IntSlice reads a length-prefixed slice of uvarint ints.
func (r *Reader) IntSlice() []int {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n > r.Remaining() { // each element is at least one byte
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// WriteFrame writes a type-tagged, length-prefixed frame to w.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [FrameHeaderSize]byte
	hdr[0] = msgType
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return hdr[0], payload, nil
}
