package wire

import (
	"context"
	"io"
	"time"
)

// DeadlineConn is the subset of net.Conn the deadline-aware frame I/O
// needs. net.Pipe conns and faultnet wrappers satisfy it too.
type DeadlineConn interface {
	io.ReadWriter
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// WriteFrameCtx writes a frame honoring the context deadline: the
// deadline (or its absence) is installed as the connection's write
// deadline before writing, so a slow or dead peer cannot stall the writer
// past it. A context that is already done fails fast without touching the
// connection.
func WriteFrameCtx(ctx context.Context, conn DeadlineConn, msgType byte, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	dl, _ := ctx.Deadline() // zero time clears any previous deadline
	if err := conn.SetWriteDeadline(dl); err != nil {
		return err
	}
	return WriteFrame(conn, msgType, payload)
}

// ReadFrameCtx reads a frame honoring the context deadline, mirroring
// WriteFrameCtx on the read side.
func ReadFrameCtx(ctx context.Context, conn DeadlineConn) (msgType byte, payload []byte, err error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	dl, _ := ctx.Deadline()
	if err := conn.SetReadDeadline(dl); err != nil {
		return 0, nil, err
	}
	return ReadFrame(conn)
}
