package wire

import (
	"bytes"
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(math.MaxUint64)
	w.Uint32(0xdeadbeef)
	w.Float64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.BytesField([]byte("hello"))
	w.BigInt(big.NewInt(123456789))
	w.FixedBigInt(big.NewInt(7), 16)
	w.IntSlice([]int{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint0 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("uvarint1 = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("uvarint2 = %d", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Fatalf("uint32 = %x", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Fatalf("float = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools wrong")
	}
	if got := r.BytesField(); string(got) != "hello" {
		t.Fatalf("bytes = %q", got)
	}
	if got := r.BigInt(); got.Int64() != 123456789 {
		t.Fatalf("bigint = %v", got)
	}
	if got := r.FixedBigInt(16); got.Int64() != 7 {
		t.Fatalf("fixed bigint = %v", got)
	}
	got := r.IntSlice()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("intslice = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	var w Writer
	w.Float64(1.5)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Float64()
		if r.Err() == nil {
			t.Fatalf("no error at cut %d", cut)
		}
	}
}

func TestReaderErrorSticky(t *testing.T) {
	r := NewReader(nil)
	r.Uint32() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	r.Float64()
	r.Uvarint()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestFixedBigIntPanics(t *testing.T) {
	var w Writer
	defer func() {
		if recover() == nil {
			t.Fatal("oversized FixedBigInt accepted")
		}
	}()
	w.FixedBigInt(big.NewInt(1<<40), 2)
}

func TestNegativeBigIntPanics(t *testing.T) {
	var w Writer
	defer func() {
		if recover() == nil {
			t.Fatal("negative BigInt accepted")
		}
	}()
	w.BigInt(big.NewInt(-5))
}

func TestIntSliceHostileLength(t *testing.T) {
	// A claimed length far beyond the payload must fail, not allocate.
	var w Writer
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.IntSlice(); got != nil || r.Err() == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestBoolValidation(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("invalid bool byte accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the payload")
	if err := WriteFrame(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != 7 || string(got) != string(payload) {
		t.Fatalf("frame = type %d payload %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != 1 || len(got) != 0 {
		t.Fatalf("empty frame: %v %d %v", err, typ, got)
	}
}

func TestFrameHostileLength(t *testing.T) {
	// Header claims a frame bigger than the cap.
	hdr := []byte{1, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("hostile frame length accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 3, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// Property: random value sequences roundtrip.
func TestRoundTripProperty(t *testing.T) {
	f := func(u64 uint64, u32 uint32, f64 float64, bs []byte, n uint8) bool {
		if math.IsNaN(f64) {
			f64 = 0
		}
		ints := make([]int, n%16)
		for i := range ints {
			// Reader.Int rejects values above MaxInt32; stay below it.
			ints[i] = int(u32%(math.MaxInt32-16)) + i
		}
		var w Writer
		w.Uvarint(u64)
		w.Uint32(u32)
		w.Float64(f64)
		w.BytesField(bs)
		w.IntSlice(ints)
		r := NewReader(w.Bytes())
		if r.Uvarint() != u64 || r.Uint32() != u32 || r.Float64() != f64 {
			return false
		}
		if !bytes.Equal(r.BytesField(), bs) {
			return false
		}
		got := r.IntSlice()
		if len(got) != len(ints) {
			return false
		}
		for i := range got {
			if got[i] != ints[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFixedBigIntSliceRoundTrip(t *testing.T) {
	vals := []*big.Int{big.NewInt(0), big.NewInt(255), big.NewInt(1 << 30)}
	var w Writer
	w.FixedBigIntSlice(vals, 8)
	// Deterministic size: count prefix + n fixed-width elements.
	if w.Len() != 1+3*8 {
		t.Fatalf("encoded %d bytes, want %d", w.Len(), 1+3*8)
	}
	r := NewReader(w.Bytes())
	got := r.FixedBigIntSlice(8)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d elements, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i].Cmp(vals[i]) != 0 {
			t.Fatalf("element %d = %v, want %v", i, got[i], vals[i])
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}

	// Empty slice round-trips.
	var w2 Writer
	w2.FixedBigIntSlice(nil, 8)
	r2 := NewReader(w2.Bytes())
	if got := r2.FixedBigIntSlice(8); len(got) != 0 || r2.Err() != nil {
		t.Fatalf("empty slice: %v, %v", got, r2.Err())
	}
}

func TestFixedBigIntSliceHostileLength(t *testing.T) {
	// A count prefix promising far more elements than the payload holds
	// must fail before allocating.
	var w Writer
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.FixedBigIntSlice(16); got != nil || r.Err() == nil {
		t.Fatalf("hostile length accepted: %v, err=%v", got, r.Err())
	}

	// Truncated mid-element.
	var w2 Writer
	w2.FixedBigIntSlice([]*big.Int{big.NewInt(1), big.NewInt(2)}, 8)
	r2 := NewReader(w2.Bytes()[:10])
	if got := r2.FixedBigIntSlice(8); got != nil || r2.Err() == nil {
		t.Fatalf("truncated slice accepted: %v, err=%v", got, r2.Err())
	}

	// Nonsensical element width.
	r3 := NewReader([]byte{3})
	if got := r3.FixedBigIntSlice(0); got != nil || r3.Err() == nil {
		t.Fatalf("zero width accepted: %v, err=%v", got, r3.Err())
	}

	// Count × width chosen so the product wraps negative (2^30 × 2^33 =
	// 2^63): the guard must not be bypassable by integer overflow.
	var w4 Writer
	w4.Uvarint(1 << 30)
	r4 := NewReader(w4.Bytes())
	if got := r4.FixedBigIntSlice(1 << 33); got != nil || r4.Err() == nil {
		t.Fatalf("overflowing count×width accepted: %v, err=%v", got, r4.Err())
	}
}
