package core

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestRetryableClassification(t *testing.T) {
	base := errors.New("connection reset by peer")
	r := Retryable(base)
	if !IsRetryable(r) {
		t.Fatal("Retryable-marked error not classified retryable")
	}
	if !errors.Is(r, base) {
		t.Fatal("Retryable does not unwrap to the cause")
	}
	// The mark survives further wrapping.
	wrapped := fmt.Errorf("attempt 2: %w", r)
	if !IsRetryable(wrapped) {
		t.Fatal("wrapping lost the retryable mark")
	}
	if Retryable(nil) != nil {
		t.Fatal("Retryable(nil) != nil")
	}
}

func TestUnmarkedErrorsAreFatal(t *testing.T) {
	for _, err := range []error{
		io.EOF,
		errors.New("plain"),
		fmt.Errorf("wrapped: %w", io.ErrUnexpectedEOF),
	} {
		if IsRetryable(err) {
			t.Errorf("%v classified retryable without a mark", err)
		}
	}
	if IsRetryable(nil) {
		t.Fatal("nil classified retryable")
	}
}

func TestRemoteErrorClassification(t *testing.T) {
	fatal := &RemoteError{Msg: "protocol version 9, this build speaks 1"}
	if IsRetryable(fatal) {
		t.Fatal("query rejection classified retryable")
	}
	for _, msg := range []string{BusyMessage, DrainingMessage} {
		err := fmt.Errorf("session: %w", &RemoteError{Msg: msg})
		if !IsRetryable(err) {
			t.Errorf("%q rejection not classified retryable", msg)
		}
	}
	var re *RemoteError
	if !errors.As(fatal, &re) || re.Msg == "" {
		t.Fatal("RemoteError lost its message")
	}
}
