package core

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestRetryableClassification(t *testing.T) {
	base := errors.New("connection reset by peer")
	r := Retryable(base)
	if !IsRetryable(r) {
		t.Fatal("Retryable-marked error not classified retryable")
	}
	if !errors.Is(r, base) {
		t.Fatal("Retryable does not unwrap to the cause")
	}
	// The mark survives further wrapping.
	wrapped := fmt.Errorf("attempt 2: %w", r)
	if !IsRetryable(wrapped) {
		t.Fatal("wrapping lost the retryable mark")
	}
	if Retryable(nil) != nil {
		t.Fatal("Retryable(nil) != nil")
	}
}

func TestUnmarkedErrorsAreFatal(t *testing.T) {
	for _, err := range []error{
		io.EOF,
		errors.New("plain"),
		fmt.Errorf("wrapped: %w", io.ErrUnexpectedEOF),
	} {
		if IsRetryable(err) {
			t.Errorf("%v classified retryable without a mark", err)
		}
	}
	if IsRetryable(nil) {
		t.Fatal("nil classified retryable")
	}
}

// TestErrorClassificationTable pins the retryable-vs-fatal verdict for
// every error kind the transport and group-session layers produce.
func TestErrorClassificationTable(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
	}{
		{"nil", nil, false},
		{"marked transient", Retryable(errors.New("dial tcp: refused")), true},
		{"marked transient, wrapped", fmt.Errorf("attempt 3: %w", Retryable(io.EOF)), true},
		{"unmarked network error", io.ErrUnexpectedEOF, false},
		{"server busy", &RemoteError{Msg: BusyMessage}, true},
		{"server draining", &RemoteError{Msg: DrainingMessage}, true},
		{"server rejected query", &RemoteError{Msg: "indicator length 3 != 12"}, false},
		{"quorum lost", &QuorumError{Phase: "contribute", Need: 3, Have: 2, Total: 5}, false},
		{"quorum lost, wrapped", fmt.Errorf("session: %w", &QuorumError{Phase: "decrypt", Need: 3, Have: 1, Total: 5}), false},
		{"bad contribution", &ContributionError{Member: 2, Reason: "set size 7, want 25"}, false},
		{"bad contribution, wrapped", fmt.Errorf("round 1: %w", &ContributionError{Member: 4, Reason: "equivocating resubmission"}), false},
		{"bare quorum sentinel", ErrQuorumLost, false},
		{"bare contribution sentinel", ErrBadContribution, false},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.retryable {
			t.Errorf("%s: IsRetryable = %v, want %v", tc.name, got, tc.retryable)
		}
	}
}

// TestGroupSessionErrorIdentity checks the errors.Is / errors.As plumbing
// of the typed session errors.
func TestGroupSessionErrorIdentity(t *testing.T) {
	qe := fmt.Errorf("running session: %w", &QuorumError{Phase: "contribute", Need: 3, Have: 2, Total: 5})
	if !errors.Is(qe, ErrQuorumLost) {
		t.Fatal("QuorumError does not match ErrQuorumLost")
	}
	if errors.Is(qe, ErrBadContribution) {
		t.Fatal("QuorumError matches ErrBadContribution")
	}
	var q *QuorumError
	if !errors.As(qe, &q) || q.Need != 3 || q.Have != 2 || q.Total != 5 || q.Phase != "contribute" {
		t.Fatalf("QuorumError lost its fields: %+v", q)
	}

	ce := fmt.Errorf("collecting: %w", &ContributionError{Member: 4, Reason: "share 2 out of range"})
	if !errors.Is(ce, ErrBadContribution) {
		t.Fatal("ContributionError does not match ErrBadContribution")
	}
	if errors.Is(ce, ErrQuorumLost) {
		t.Fatal("ContributionError matches ErrQuorumLost")
	}
	var c *ContributionError
	if !errors.As(ce, &c) || c.Member != 4 {
		t.Fatalf("ContributionError lost its fields: %+v", c)
	}
	for _, err := range []error{qe, ce} {
		if err.Error() == "" {
			t.Fatal("empty error string")
		}
	}
}

func TestRemoteErrorClassification(t *testing.T) {
	fatal := &RemoteError{Msg: "protocol version 9, this build speaks 1"}
	if IsRetryable(fatal) {
		t.Fatal("query rejection classified retryable")
	}
	for _, msg := range []string{BusyMessage, DrainingMessage} {
		err := fmt.Errorf("session: %w", &RemoteError{Msg: msg})
		if !IsRetryable(err) {
			t.Errorf("%q rejection not classified retryable", msg)
		}
	}
	var re *RemoteError
	if !errors.As(fatal, &re) || re.Msg == "" {
		t.Fatal("RemoteError lost its message")
	}
}
