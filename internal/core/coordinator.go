package core

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"time"

	"ppgnn/internal/cost"
	"ppgnn/internal/dummy"
	"ppgnn/internal/encode"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
	"ppgnn/internal/partition"
)

// Coordinator is the u_c side of a distributed group session: where Group
// models all n users in one process, Coordinator holds only its own
// location and key material and expects the other members' contributions
// to arrive over links (internal/group drives the exchange). Because the
// roster can shrink between rounds — members drop out and are replaced by
// a smaller re-partition — the partition program is re-solved per round
// via Plan rather than once at construction.
type Coordinator struct {
	Params Params    // template; Params.N is the full roster size
	Loc    geo.Point // the coordinator's own real location
	Gen    dummy.Generator
	Rng    *rand.Rand

	// Key is the coordinator's sole key pair (plain mode). In threshold
	// mode it is nil and TK/Share carry the shared key instead.
	Key *paillier.PrivateKey

	// TK and Share are set in threshold mode: the shared public key and
	// the coordinator's own key share (index 1).
	TK    *paillier.ThresholdKey
	Share *paillier.KeyShare

	KeygenTime time.Duration

	// Offline encryption-randomness pools (see Precompute). They hold
	// r^{N^s} factors for the shared public key, so they work in both
	// plain and threshold mode.
	pre1, pre2 *paillier.Precomputer
}

// NewCoordinator builds a plain-mode coordinator: it alone can decrypt,
// so a session needs member contributions but no partial decryptions.
func NewCoordinator(p Params, loc geo.Point, rng *rand.Rand) (*Coordinator, error) {
	c, err := newCoordinator(p, loc, rng)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	key, err := paillier.GenerateKey(nil, c.Params.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("core: generating key: %w", err)
	}
	if c.Params.ShortRandBits > 0 {
		if err := key.SetOptions(paillier.Options{ShortRandBits: c.Params.ShortRandBits}); err != nil {
			return nil, fmt.Errorf("core: enabling short-exponent randomness: %w", err)
		}
	}
	c.Key = key
	c.KeygenTime = time.Since(start)
	return c, nil
}

// NewThresholdCoordinator builds a threshold-mode coordinator for a
// (t, n) group. The coordinator deals the key and keeps share index 1;
// the returned shares (indices 2..n) belong to the members, in roster
// order. As in NewThresholdGroup, dealing stands in for a distributed
// key generation.
func NewThresholdCoordinator(p Params, loc geo.Point, rng *rand.Rand, t int) (*Coordinator, []*paillier.KeyShare, error) {
	c, err := newCoordinator(p, loc, rng)
	if err != nil {
		return nil, nil, err
	}
	if t < 2 || t > p.N {
		return nil, nil, fmt.Errorf("core: threshold t=%d outside [2,%d]", t, p.N)
	}
	sMax := 1
	if p.Variant == VariantOPT {
		sMax = 2
	}
	start := time.Now()
	tk, shares, err := paillier.GenerateThresholdKey(nil, p.KeyBits, p.N, t, sMax)
	if err != nil {
		return nil, nil, fmt.Errorf("core: threshold keygen: %w", err)
	}
	if c.Params.ShortRandBits > 0 {
		if err := tk.SetOptions(paillier.Options{ShortRandBits: c.Params.ShortRandBits}); err != nil {
			return nil, nil, fmt.Errorf("core: enabling short-exponent randomness: %w", err)
		}
	}
	c.KeygenTime = time.Since(start)
	c.TK = tk
	c.Share = shares[0]
	return c, shares[1:], nil
}

func newCoordinator(p Params, loc geo.Point, rng *rand.Rand) (*Coordinator, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N < 2 {
		return nil, fmt.Errorf("core: a group session needs n ≥ 2, got %d", p.N)
	}
	if !p.Space.Contains(loc) {
		return nil, fmt.Errorf("core: coordinator location %v outside space", loc)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	// Fail early if the full-roster partition is infeasible; smaller
	// rosters are checked per Plan (Solve memoizes, so this is cheap).
	if p.Variant != VariantNaive {
		if _, err := partition.Solve(p.N, p.D, p.Delta); err != nil {
			return nil, err
		}
	}
	return &Coordinator{Params: p, Loc: loc, Gen: dummy.Uniform{}, Rng: rng}, nil
}

// DeltaPrime returns the candidate-query count δ' the LSP would process
// for a roster of n members (δ for the Naive variant).
func (c *Coordinator) DeltaPrime(n int) (int, error) {
	if c.Params.Variant == VariantNaive {
		return c.Params.Delta, nil
	}
	part, err := partition.Solve(n, c.Params.D, c.Params.Delta)
	if err != nil {
		return 0, err
	}
	return part.DeltaPrime, nil
}

// RoundPlan fixes one round's partition and hidden positions: which
// segment was drawn, the per-subgroup positions, and the roster size the
// partition was solved for. Every surviving member is addressed by a slot
// in [0, Size); the coordinator is always slot 0.
type RoundPlan struct {
	Size  int // roster size n' this round
	part  partition.Params
	seg   int
	xs    []int
	pos   []int // per-subgroup hidden position (index into the set)
	naive int   // common position, Naive variant
}

// Plan draws a fresh round plan for a roster of n members (coordinator
// included). It fails if the partition program is infeasible for n — the
// session layer treats that the same as a lost quorum, since no smaller
// roster will make δ reachable either.
func (c *Coordinator) Plan(n int) (*RoundPlan, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: cannot plan a round for %d members", n)
	}
	p := c.Params
	if p.Variant == VariantNaive {
		return &RoundPlan{Size: n, naive: c.Rng.Intn(p.Delta)}, nil
	}
	part, err := partition.Solve(n, p.D, p.Delta)
	if err != nil {
		return nil, fmt.Errorf("core: re-partitioning for %d members: %w", n, err)
	}
	plan := &RoundPlan{Size: n, part: part}
	plan.seg = sampleSegment(c.Rng, part.SegmentDist())
	plan.xs = make([]int, part.Alpha)
	plan.pos = make([]int, part.Alpha)
	off := part.SegmentOffset(plan.seg)
	for j := range plan.xs {
		plan.xs[j] = c.Rng.Intn(part.DBar[plan.seg])
		plan.pos[j] = off + plan.xs[j]
	}
	return plan, nil
}

// SetSize returns the location-set size each member must contribute.
func (pl *RoundPlan) SetSize(p Params) int {
	if p.Variant == VariantNaive {
		return p.Delta
	}
	return p.D
}

// PosFor returns the hidden position for the member at the given slot.
func (pl *RoundPlan) PosFor(slot int) int {
	if pl.pos == nil {
		return pl.naive
	}
	return pl.pos[pl.part.SubgroupOfUser(slot)]
}

// Request builds the ContribRequest for one slot of the round.
func (pl *RoundPlan) Request(p Params, session uint64, round, slot int) *ContribRequest {
	return &ContribRequest{
		Session: session,
		Round:   round,
		Slot:    slot,
		Pos:     pl.PosFor(slot),
		SetSize: pl.SetSize(p),
		Space:   p.Space,
	}
}

// encPublic returns the key the indicator vectors are encrypted under.
func (c *Coordinator) encPublic() *paillier.PublicKey {
	if c.TK != nil {
		return &c.TK.PublicKey
	}
	return &c.Key.PublicKey
}

// KeyBytes returns the wire width of the modulus in bytes.
func (c *Coordinator) KeyBytes() int {
	return (c.encPublic().N.BitLen() + 7) / 8
}

// Precompute fills the coordinator's encryption-randomness pools, as
// Group.Precompute does for the all-in-one-process model: the r^{N^s}
// factors depend only on the public key, so BuildQuery's indicator
// encryptions then pay only the cheap plaintext-dependent part online.
// The pools drain one factor per ciphertext; call again before later
// queries. It returns the offline time spent.
func (c *Coordinator) Precompute(count int) (time.Duration, error) {
	start := time.Now()
	var err error
	if c.pre1 == nil {
		if c.pre1, err = c.encPublic().NewPrecomputer(1); err != nil {
			return 0, err
		}
	}
	if err := c.pre1.Fill(nil, count); err != nil {
		return 0, err
	}
	if c.Params.Variant == VariantOPT {
		if c.pre2 == nil {
			if c.pre2, err = c.encPublic().NewPrecomputer(2); err != nil {
				return 0, err
			}
		}
		if err := c.pre2.Fill(nil, count); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// BuildQuery builds the QueryMsg for a round plan (lines 9–10 of
// Algorithm 1): the encrypted indicator vector(s) at the plan's query
// index. Location sets are NOT included — they arrive from the members.
func (c *Coordinator) BuildQuery(pl *RoundPlan, meter *cost.Meter) (*QueryMsg, error) {
	start := time.Now()
	defer func() { meter.AddTime(cost.Users, time.Since(start)) }()

	p := c.Params
	msg := &QueryMsg{
		Variant: p.Variant, K: p.K, Agg: p.Agg,
		Theta0: p.Theta0, Gamma: p.Gamma, Eta: p.Eta, Phi: p.Phi,
		Sanitize: !p.NoSanitize, Include: p.IncludeIDs,
		PK: c.encPublic().N, Delta: p.Delta,
	}
	var err error
	switch p.Variant {
	case VariantNaive:
		msg.V, err = encryptIndicatorVec(c.encPublic(), c.pre1, nil, p.Delta, pl.naive, 1, meter)
		return msg, err
	case VariantPPGNN:
		msg.NBar, msg.DBar = pl.part.NBar, pl.part.DBar
		qi := pl.part.QueryIndex(pl.seg, pl.xs)
		msg.V, err = encryptIndicatorVec(c.encPublic(), c.pre1, nil, pl.part.DeltaPrime, qi, 1, meter)
		return msg, err
	case VariantOPT:
		msg.NBar, msg.DBar = pl.part.NBar, pl.part.DBar
		qi := pl.part.QueryIndex(pl.seg, pl.xs)
		omega := OptimalOmega(pl.part.DeltaPrime)
		cols := (pl.part.DeltaPrime + omega - 1) / omega
		if msg.V1, err = encryptIndicatorVec(c.encPublic(), c.pre1, nil, cols, qi%cols, 1, meter); err != nil {
			return nil, err
		}
		msg.V2, err = encryptIndicatorVec(c.encPublic(), c.pre2, nil, omega, qi/cols, 2, meter)
		return msg, err
	}
	return nil, fmt.Errorf("core: unknown variant %d", p.Variant)
}

// OwnContribution builds the coordinator's own location set for slot 0.
func (c *Coordinator) OwnContribution(pl *RoundPlan) *LocationMsg {
	set := c.Gen.LocationSet(c.Rng, c.Loc, pl.SetSize(c.Params), pl.PosFor(0), c.Params.Space)
	return &LocationMsg{UserID: 0, Set: set}
}

// AnswerDegree returns the ciphertext degree the LSP's answer arrives at.
func (c *Coordinator) AnswerDegree() int {
	if c.Params.Variant == VariantOPT {
		return 2
	}
	return 1
}

// DecryptAnswer decrypts the answer with the coordinator's sole key
// (plain mode only).
func (c *Coordinator) DecryptAnswer(ans *AnswerMsg, meter *cost.Meter) ([]encode.Record, error) {
	if c.Key == nil {
		return nil, fmt.Errorf("core: threshold coordinator has no sole key")
	}
	if ans.Degree != c.AnswerDegree() {
		return nil, fmt.Errorf("core: answer degree %d, want %d", ans.Degree, c.AnswerDegree())
	}
	start := time.Now()
	defer func() { meter.AddTime(cost.Users, time.Since(start)) }()
	ints, err := decryptAnswerInts(c.Key, ans)
	if err != nil {
		return nil, err
	}
	meter.CountOp(fmt.Sprintf("dec%d", ans.Degree), int64(len(ints)))
	return c.DecodeInts(ints)
}

// PartialSelf produces the coordinator's own decryption-share values for
// a batch of degree-s ciphertexts (threshold mode): the same shape a
// member returns in a PartialMsg.
func (c *Coordinator) PartialSelf(degree int, cts []*big.Int) ([]*big.Int, error) {
	if c.TK == nil {
		return nil, fmt.Errorf("core: not a threshold coordinator")
	}
	in := make([]*paillier.Ciphertext, len(cts))
	for i, cv := range cts {
		in[i] = &paillier.Ciphertext{C: cv, S: degree}
	}
	dss, err := c.TK.PartialDecryptBatch(context.Background(), nil, c.Share, in)
	if err != nil {
		return nil, fmt.Errorf("core: partial decryption: %w", err)
	}
	out := make([]*big.Int, len(dss))
	for i, ds := range dss {
		out[i] = ds.Value
	}
	return out, nil
}

// CombinePartials recovers the plaintext of every ciphertext from the
// collected share vectors: shares maps key-share index → per-ciphertext
// share values (each the same length as cts). At least T entries are
// required; the T lowest indices are used, matching the deterministic
// share choice of ThresholdGroup.
func (c *Coordinator) CombinePartials(degree int, cts []*big.Int, shares map[int][]*big.Int, meter *cost.Meter) ([]*big.Int, error) {
	if c.TK == nil {
		return nil, fmt.Errorf("core: not a threshold coordinator")
	}
	if len(shares) < c.TK.T {
		return nil, fmt.Errorf("core: %d share vectors below threshold %d", len(shares), c.TK.T)
	}
	idxs := make([]int, 0, len(shares))
	for idx, vec := range shares {
		if len(vec) != len(cts) {
			return nil, fmt.Errorf("core: share vector %d has %d entries for %d ciphertexts", idx, len(vec), len(cts))
		}
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	idxs = idxs[:c.TK.T]

	start := time.Now()
	defer func() { meter.AddTime(cost.Users, time.Since(start)) }()
	sets := make([][]*paillier.DecryptionShare, len(cts))
	for i := range cts {
		ds := make([]*paillier.DecryptionShare, len(idxs))
		for j, idx := range idxs {
			ds[j] = &paillier.DecryptionShare{Index: idx, S: degree, Value: shares[idx][i]}
		}
		sets[i] = ds
	}
	out, err := c.TK.CombineBatch(context.Background(), nil, sets)
	if err != nil {
		return nil, fmt.Errorf("core: combining shares: %w", err)
	}
	meter.CountOp("threshold-dec", int64(len(cts)*c.TK.T))
	return out, nil
}

// DecodeInts decodes the decrypted answer integers into records.
func (c *Coordinator) DecodeInts(ints []*big.Int) ([]encode.Record, error) {
	codec := encode.Codec{ModulusBits: c.encPublic().N.BitLen(), IncludeID: c.Params.IncludeIDs}
	records, err := codec.Decode(ints)
	if err != nil {
		return nil, fmt.Errorf("core: decoding answer: %w", err)
	}
	return records, nil
}

// Finish dequantizes decoded records into a Result.
func (c *Coordinator) Finish(records []encode.Record) *Result {
	res := &Result{Records: records, Points: make([]geo.Point, len(records))}
	for i, r := range records {
		res.Points[i] = r.Point(c.Params.Space)
	}
	return res
}
