package core

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"
	"time"

	"ppgnn/internal/cost"
	"ppgnn/internal/encode"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
	"ppgnn/internal/parallel"
	"ppgnn/internal/partition"
	"ppgnn/internal/rtree"
	"ppgnn/internal/sanitize"
	"ppgnn/internal/shard"
)

// SearchFunc is the black-box group query engine (paper Section 1: "it
// treats the query answering as a black box"): anything mapping query
// locations to a ranked POI list can serve, including non-kGNN queries.
type SearchFunc func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result

// LSP is the location-based service provider: it owns the POI database and
// processes privacy-preserving queries (Algorithm 2). An LSP is safe for
// concurrent use.
type LSP struct {
	Space geo.Rect
	// Search answers plaintext group queries; defaults to MBM over the
	// R-tree built by NewLSP.
	Search SearchFunc
	// Workers bounds the per-query parallelism across candidate queries
	// and the homomorphic selection (1 = sequential, matching the paper's
	// single-threaded LSP cost accounting; 0 = 1; negative = GOMAXPROCS).
	// cmd/ppgnn-lsp maps its -workers flag here, with flag value 0
	// meaning GOMAXPROCS.
	Workers int
	// SanitizeSeed makes the Monte-Carlo sanitation reproducible; each
	// candidate query derives its own stream from it.
	SanitizeSeed int64
	// MaxCandidates bounds δ' (default DefaultMaxCandidates): a hostile
	// coordinator could otherwise submit partition parameters implying
	// billions of candidate queries and stall the LSP.
	MaxCandidates int
	// Rerandomize refreshes the randomness of every answer ciphertext with
	// a homomorphic zero before returning it. The private selection's
	// output randomness is a deterministic function of the indicator
	// ciphertexts and the plaintext matrix; rerandomizing makes the answer
	// unlinkable to them (defense in depth — Privacy III needs only the
	// selection itself).
	Rerandomize bool
	// Coalesce, when set, submits the homomorphic batch phases (the
	// candidate fan-out on the single-tree layout, the private selection,
	// and the answer rerandomization) to a server-shared cross-session
	// Coalescer instead of a per-query pool (DESIGN.md §15), so work from
	// concurrently admitted sessions merges into shared batches. Answers
	// stay byte-identical to the uncoalesced path: the paillier batch
	// forms draw all randomness serially before fanning out and task i
	// writes only slot i, so execution interleaving cannot change them.
	Coalesce *parallel.Coalescer
	// RerandPools, when set, supplies pooled r^{N^s} rerandomization
	// factors (shared across sessions, refilled in the background) for
	// the Rerandomize pass, replacing its per-answer online modexps.
	RerandPools *paillier.PoolSet

	tree   *rtree.Tree
	shards *shard.Index
}

// DefaultMaxCandidates caps δ' per query (Privacy II rarely needs more
// than a few hundred; the paper's maximum is δ'≈200).
const DefaultMaxCandidates = 65536

// NewLSP builds an LSP over the POI database, indexed with an R-tree.
func NewLSP(items []rtree.Item, space geo.Rect) *LSP {
	return NewIndexedLSP(items, space, IndexOptions{})
}

// IndexOptions selects the POI index layout for NewIndexedLSP.
type IndexOptions struct {
	// Shards partitions the database across K shard R-trees searched in
	// parallel on the LSP's worker pool (DESIGN.md §14). 0 or 1 keeps the
	// single dynamic R-tree of the paper.
	Shards int
	// PruneGrid puts the hierarchical grid pruning stage in front of the
	// index, bounding per-query candidate work sub-linearly in database
	// size. Implies the static sharded index even with Shards <= 1.
	PruneGrid bool
}

// sharded reports whether the options call for the static shard.Index
// instead of the paper's single dynamic R-tree.
func (o IndexOptions) sharded() bool { return o.Shards > 1 || o.PruneGrid }

// NewIndexedLSP is NewLSP with an explicit index layout. The sharded
// layouts answer every query byte-identically to the single-tree path
// (the shard package's core contract) but are static: the precompute
// trade-off of grid schemes (PAPERS.md, arXiv 1612.01835) applied to
// index structure, so Insert/Delete panic and the svc layer instead
// rebuilds per-tenant indexes on epoch swaps.
func NewIndexedLSP(items []rtree.Item, space geo.Rect, opts IndexOptions) *LSP {
	l := &LSP{Space: space, SanitizeSeed: 1}
	if opts.sharded() {
		ix := shard.New(items, space, shard.Options{Shards: opts.Shards, PruneGrid: opts.PruneGrid})
		l.shards = ix
		l.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
			// The shard fan-out shares the per-query Workers budget so a
			// Workers=1 LSP keeps the paper's sequential cost accounting.
			return ix.SearchPool(l.pool(), query, k, agg)
		}
		return l
	}
	tree := rtree.Bulk(items, rtree.DefaultMaxEntries)
	l.tree = tree
	l.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
		return (&gnn.MBM{Tree: tree, Agg: agg}).Search(query, k)
	}
	return l
}

// Tree exposes the POI index (used by baselines sharing the database).
// It is nil for sharded LSPs.
func (l *LSP) Tree() *rtree.Tree { return l.tree }

// ShardCount reports the shard count of the index: 1 for the single
// dynamic R-tree, K for a sharded LSP (trace annotation and tests).
func (l *LSP) ShardCount() int {
	if l.shards != nil {
		return l.shards.Shards()
	}
	return 1
}

// pool maps the Workers knob onto a parallel.Pool: 0 keeps the paper's
// sequential cost accounting, negative widths resolve to GOMAXPROCS.
func (l *LSP) pool() *parallel.Pool {
	w := l.Workers
	if w == 0 {
		w = 1
	}
	return parallel.New(w)
}

// cryptoPool is the pool for the homomorphic phases: the shared
// coalescer when configured, the per-query Workers pool otherwise.
func (l *LSP) cryptoPool() *parallel.Pool {
	if l.Coalesce != nil {
		return l.Coalesce.Pool()
	}
	return l.pool()
}

// WithCoalescer returns a shallow copy of the LSP whose homomorphic
// batch work is submitted to c (a nil c returns l itself). The copy
// shares the POI index; transport servers call this per admitted query
// so concurrent sessions coalesce into shared batches. Note the copy's
// Search closure still captures the original LSP, so a sharded index's
// internal fan-out keeps its plain per-query pool — only the top-level
// batch submissions coalesce, and never from inside a coalescer task
// (which would deadlock a saturated batch on itself).
func (l *LSP) WithCoalescer(c *parallel.Coalescer) *LSP {
	if c == nil {
		return l
	}
	cp := *l
	cp.Coalesce = c
	return &cp
}

// Insert adds a POI to the live database — the dynamic-database capability
// the paper contrasts against precomputation-based schemes. Sharded LSPs
// are static (rebuild to change the database) and panic here.
func (l *LSP) Insert(it rtree.Item) {
	if l.tree == nil {
		panic("core: Insert on a sharded LSP; sharded indexes are static — rebuild with NewIndexedLSP")
	}
	l.tree.Insert(it)
}

// Delete removes a POI from the live database. Sharded LSPs panic, like
// Insert.
func (l *LSP) Delete(it rtree.Item) bool {
	if l.tree == nil {
		panic("core: Delete on a sharded LSP; sharded indexes are static — rebuild with NewIndexedLSP")
	}
	return l.tree.Delete(it)
}

// Process runs Algorithm 2: candidate query generation, per-candidate kGNN
// + answer sanitation, answer encoding, and the homomorphic private
// selection. The meter (may be nil) accumulates the LSP computational cost
// and operation counts.
func (l *LSP) Process(q *QueryMsg, locs []*LocationMsg, meter *cost.Meter) (ans *AnswerMsg, err error) {
	start := nowFunc()
	defer func() { meter.AddTime(cost.LSP, nowFunc().Sub(start)) }()

	if err := l.validateQuery(q, locs); err != nil {
		return nil, err
	}
	n := len(locs)
	pk := paillier.NewPublicKey(q.PK)

	// Reassemble the location sets in user order: LSP reconstructs
	// subgroups from the user IDs (Section 4.2).
	ordered := make([][]geo.Point, n)
	for _, lm := range locs {
		ordered[lm.UserID] = lm.Set
	}

	// Candidate query list.
	candidates, err := l.candidates(q, ordered)
	if err != nil {
		return nil, err
	}
	maxCand := l.MaxCandidates
	if maxCand <= 0 {
		maxCand = DefaultMaxCandidates
	}
	if len(candidates) > maxCand {
		return nil, fmt.Errorf("core: query implies %d candidate queries, above this LSP's limit %d", len(candidates), maxCand)
	}
	meter.CountOp("candidates", int64(len(candidates)))

	// Per-candidate: kGNN (line 3), sanitation (line 4), encoding (line 5).
	codec := encode.Codec{ModulusBits: q.PK.BitLen(), IncludeID: q.Include}
	sanCfg := sanitize.Config{
		Theta0: q.Theta0, Gamma: q.Gamma, Eta: q.Eta, Phi: q.Phi,
		Space: l.Space, Agg: q.Agg,
	}
	encoded := make([][]*big.Int, len(candidates))
	candPool := l.pool()
	if l.Coalesce != nil && l.shards == nil {
		// The single-tree candidate fan-out is leaf work (no nested pool
		// submissions), so it rides the shared coalescer too. Sharded
		// search fans out internally on the per-query pool and stays off
		// the coalescer: a coalescer task that submitted back to its own
		// coalescer could block the very batch it runs in.
		candPool = l.Coalesce.Pool()
	}
	err = candPool.ForEach(context.Background(), len(candidates), func(t int) (taskErr error) {
		// A panic here would escape any recover installed by the caller
		// (transport sessions recover per session); convert it into a
		// query rejection so one hostile query cannot kill a serving
		// process.
		defer func() {
			if r := recover(); r != nil {
				taskErr = fmt.Errorf("core: candidate query %d panicked: %v", t, r)
			}
		}()
		res := l.Search(candidates[t], q.K, q.Agg)
		if q.Sanitize && n > 1 {
			rng := rand.New(rand.NewSource(l.SanitizeSeed + int64(t)))
			res = sanCfg.Sanitize(rng, res, candidates[t])
		}
		records := make([]encode.Record, len(res))
		for i, r := range res {
			records[i] = encode.RecordOf(r.Item.ID, r.Item.P, l.Space)
		}
		ints := codec.Encode(records)
		for _, v := range ints {
			if v.Cmp(q.PK) >= 0 {
				return fmt.Errorf("core: encoded answer exceeds modulus")
			}
		}
		encoded[t] = ints
		return nil
	})
	if err != nil {
		return nil, err
	}
	meter.CountOp("kgnn", int64(len(candidates)))
	if q.Sanitize && n > 1 {
		meter.CountOp("sanitize", int64(len(candidates)))
	}

	// Build the m × δ' answer matrix (line 6), padding answers to height m.
	m := 0
	for _, ints := range encoded {
		if len(ints) > m {
			m = len(ints)
		}
	}
	for t := range encoded {
		encoded[t] = encode.Pad(encoded[t], m)
	}

	// Private selection (line 7).
	switch q.Variant {
	case VariantOPT:
		return l.selectTwoPhase(pk, q, encoded, m, meter)
	default:
		return l.selectSinglePhase(pk, q, encoded, m, meter)
	}
}

// nowFunc is swappable in tests.
var nowFunc = time.Now

// validateQuery checks message consistency against the location sets.
func (l *LSP) validateQuery(q *QueryMsg, locs []*LocationMsg) error {
	if len(locs) == 0 {
		return fmt.Errorf("core: no location sets")
	}
	if q.K < 1 {
		return fmt.Errorf("core: k=%d < 1", q.K)
	}
	if q.PK == nil || q.PK.BitLen() < 128 {
		return fmt.Errorf("core: missing or undersized public key")
	}
	n := len(locs)
	seen := make([]bool, n)
	d := len(locs[0].Set)
	for _, lm := range locs {
		if lm.UserID < 0 || lm.UserID >= n || seen[lm.UserID] {
			return fmt.Errorf("core: bad or duplicate user id %d", lm.UserID)
		}
		seen[lm.UserID] = true
		if len(lm.Set) != d {
			return fmt.Errorf("core: user %d sent %d locations, others sent %d", lm.UserID, len(lm.Set), d)
		}
		for _, p := range lm.Set {
			if !l.Space.Contains(p) {
				return fmt.Errorf("core: user %d location %v outside service space", lm.UserID, p)
			}
		}
	}
	return nil
}

// candidates materializes the candidate query list for the query variant.
func (l *LSP) candidates(q *QueryMsg, ordered [][]geo.Point) ([][]geo.Point, error) {
	n := len(ordered)
	d := len(ordered[0])
	if q.Variant == VariantNaive {
		// Column i across all users is candidate i.
		if q.Delta != d {
			return nil, fmt.Errorf("core: naive query: δ=%d but location sets have %d entries", q.Delta, d)
		}
		if len(q.V) != d {
			return nil, fmt.Errorf("core: naive query: indicator length %d != δ=%d", len(q.V), d)
		}
		out := make([][]geo.Point, d)
		for t := 0; t < d; t++ {
			cand := make([]geo.Point, n)
			for u := 0; u < n; u++ {
				cand[u] = ordered[u][t]
			}
			out[t] = cand
		}
		return out, nil
	}

	deltaPrime := 0
	alpha := len(q.NBar)
	for _, di := range q.DBar {
		deltaPrime += intPow(di, alpha)
	}
	params := partition.Params{
		N: n, D: d, Delta: q.Delta,
		Alpha: alpha, NBar: q.NBar, DBar: q.DBar,
		DeltaPrime: deltaPrime,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	switch q.Variant {
	case VariantPPGNN:
		if len(q.V) != deltaPrime {
			return nil, fmt.Errorf("core: indicator length %d != δ'=%d", len(q.V), deltaPrime)
		}
	case VariantOPT:
		omega := len(q.V2)
		cols := len(q.V1)
		if omega < 1 || cols < 1 || omega*cols < deltaPrime {
			return nil, fmt.Errorf("core: OPT indicators cover %d < δ'=%d candidates", omega*cols, deltaPrime)
		}
	}
	return params.Candidates(ordered)
}

func intPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// selectSinglePhase computes A ⨂ [v] (Theorem 3.1) and returns m ε_1
// ciphertexts.
func (l *LSP) selectSinglePhase(pk *paillier.PublicKey, q *QueryMsg, encoded [][]*big.Int, m int, meter *cost.Meter) (*AnswerMsg, error) {
	v := make([]*paillier.Ciphertext, len(q.V))
	for i, c := range q.V {
		v[i] = &paillier.Ciphertext{C: c, S: 1}
	}
	rows := make([][]*big.Int, m)
	for i := 0; i < m; i++ {
		row := make([]*big.Int, len(encoded))
		for t := range encoded {
			row[t] = encoded[t][i]
		}
		rows[i] = row
	}
	cts, err := pk.MatSelectBatch(context.Background(), l.cryptoPool(), rows, v)
	if err != nil {
		return nil, fmt.Errorf("core: private selection: %w", err)
	}
	if l.Rerandomize {
		if cts, err = l.rerandomize(pk, cts); err != nil {
			return nil, fmt.Errorf("core: rerandomizing answer: %w", err)
		}
	}
	out := make([]*big.Int, m)
	for i, ct := range cts {
		out[i] = ct.C
	}
	meter.CountOp("homomorphic-dot", int64(m))
	return NewAnswerMsg(pk, 1, out), nil
}

// selectTwoPhase implements the two-phase private selection of Section 6:
// phase 1 selects a column within every block with [v1] under ε_1; phase 2
// selects the block with [[v2]] under ε_2, treating the phase-1 ε_1
// ciphertexts as ε_2 plaintexts.
func (l *LSP) selectTwoPhase(pk *paillier.PublicKey, q *QueryMsg, encoded [][]*big.Int, m int, meter *cost.Meter) (*AnswerMsg, error) {
	omega := len(q.V2)
	cols := len(q.V1)
	v1 := make([]*paillier.Ciphertext, cols)
	for i, c := range q.V1 {
		v1[i] = &paillier.Ciphertext{C: c, S: 1}
	}
	v2 := make([]*paillier.Ciphertext, omega)
	for i, c := range q.V2 {
		v2[i] = &paillier.Ciphertext{C: c, S: 2}
	}

	// Pad the matrix with zero columns to ω·cols (the paper pads v with
	// trailing 0s so that δ'/ω is an integer).
	zero := make([]*big.Int, m)
	for i := range zero {
		zero[i] = new(big.Int)
	}
	for len(encoded) < omega*cols {
		encoded = append(encoded, zero)
	}

	cts, err := pk.LayeredSelectBatch(context.Background(), l.cryptoPool(), encoded, v1, v2)
	if err != nil {
		return nil, fmt.Errorf("core: layered selection: %w", err)
	}
	if l.Rerandomize {
		if cts, err = l.rerandomize(pk, cts); err != nil {
			return nil, fmt.Errorf("core: rerandomizing answer: %w", err)
		}
	}
	out := make([]*big.Int, m)
	for i, ct := range cts {
		out[i] = ct.C
	}
	meter.CountOp("homomorphic-dot", int64(m*(omega+1)))
	return NewAnswerMsg(pk, 2, out), nil
}

// rerandomize refreshes every answer ciphertext with a homomorphic
// zero, drawing pooled r^{N^s} factors from RerandPools when the LSP
// has one (falling back to online randomness for any factors past the
// pool's current depth) and paying the full online encryption
// otherwise.
func (l *LSP) rerandomize(pk *paillier.PublicKey, cts []*paillier.Ciphertext) ([]*paillier.Ciphertext, error) {
	if len(cts) == 0 {
		return cts, nil
	}
	if l.RerandPools != nil {
		pre, err := l.RerandPools.For(pk, cts[0].S)
		if err != nil {
			return nil, err
		}
		out, _, err := pre.RerandomizeBatch(context.Background(), l.cryptoPool(), nil, cts)
		return out, err
	}
	return pk.RerandomizeBatch(context.Background(), l.cryptoPool(), nil, cts)
}

// OptimalOmega returns the ω minimizing the OPT communication cost (Eqn
// 18): the nearest integer to √(δ'/2), clamped to [1, δ'].
func OptimalOmega(deltaPrime int) int {
	omega := int(math.Round(math.Sqrt(float64(deltaPrime) / 2)))
	if omega < 1 {
		omega = 1
	}
	if omega > deltaPrime {
		omega = deltaPrime
	}
	return omega
}

// sortLocations orders location messages by user ID (stable input for
// Process callers that collected them out of order).
func sortLocations(locs []*LocationMsg) {
	sort.Slice(locs, func(i, j int) bool { return locs[i].UserID < locs[j].UserID })
}
