package core

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
)

func thresholdTestParams(n int, variant Variant) Params {
	p := testParams(n, variant)
	p.KeyBits = 192 // safe-prime generation is the slow part
	return p
}

// Threshold-mode queries must return exactly the same answers as the base
// protocol while requiring T users to cooperate for decryption.
func TestThresholdGroupEndToEnd(t *testing.T) {
	lsp := testLSP(1500)
	for _, variant := range []Variant{VariantPPGNN, VariantOPT, VariantNaive} {
		p := thresholdTestParams(4, variant)
		p.NoSanitize = true
		locs := randomLocations(rand.New(rand.NewSource(1)), 4)

		tg, err := NewThresholdGroup(p, locs, rand.New(rand.NewSource(2)), 3)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		var m cost.Meter
		res, err := tg.Run(LocalService{LSP: lsp, Meter: &m}, &m)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		want := plainAnswer(lsp, locs, p.K, p.Agg)
		if len(res.Points) != len(want) {
			t.Fatalf("%v: got %d POIs, want %d", variant, len(res.Points), len(want))
		}
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("%v rank %d: got %v, want %v", variant, i, res.Points[i], want[i].Item.P)
			}
		}
		s := m.Snapshot()
		if s.Ops["threshold-dec"] == 0 {
			t.Fatalf("%v: no threshold decryptions recorded", variant)
		}
		// The share exchange must appear on the intra-group channel.
		if s.IntraGroupBytes == 0 {
			t.Fatalf("%v: no intra-group share traffic", variant)
		}
	}
}

func TestThresholdGroupSanitized(t *testing.T) {
	lsp := testLSP(1500)
	p := thresholdTestParams(3, VariantPPGNN)
	locs := randomLocations(rand.New(rand.NewSource(3)), 3)
	tg, err := NewThresholdGroup(p, locs, rand.New(rand.NewSource(4)), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tg.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 1 || len(res.Points) > p.K {
		t.Fatalf("sanitized threshold answer length %d", len(res.Points))
	}
}

func TestThresholdGroupValidation(t *testing.T) {
	locs2 := randomLocations(rand.New(rand.NewSource(5)), 2)
	p := thresholdTestParams(2, VariantPPGNN)
	if _, err := NewThresholdGroup(p, locs2, nil, 3); err == nil {
		t.Error("t > n accepted")
	}
	if _, err := NewThresholdGroup(p, locs2, nil, 1); err == nil {
		t.Error("t = 1 accepted")
	}
	p1 := thresholdTestParams(1, VariantPPGNN)
	p1.Delta = p1.D
	if _, err := NewThresholdGroup(p1, randomLocations(rand.New(rand.NewSource(6)), 1), nil, 2); err == nil {
		t.Error("n = 1 accepted")
	}
}
