package core

import (
	"fmt"
	"math/big"

	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
	"ppgnn/internal/wire"
)

// Member-phase frames. The quorum session manager (internal/group) runs
// the intra-group phases of Algorithm 1 against n independent member
// endpoints instead of shared memory; these frames carry the
// coordinator↔member exchanges:
//
//	FrameContribReq  coordinator → member  "build your location set at pos"
//	FrameContrib     member → coordinator  the member's LocationMsg payload
//	FramePartialReq  coordinator → member  "partially decrypt these cts"
//	FramePartial     member → coordinator  the member's decryption shares
//
// Every message echoes (Session, Round) so late replies from an abandoned
// round are recognized as stale instead of being mistaken for
// equivocation, and a FrameError payload carries a member-side rejection.
const (
	FrameContribReq = byte(5)
	FrameContrib    = byte(6)
	FramePartialReq = byte(7)
	FramePartial    = byte(8)
)

// ContribRequest asks one member for its location-set contribution: build
// a set of SetSize locations inside Space with the real location at index
// Pos, and answer as user Slot (lines 4–7 of Algorithm 1; the slot is the
// member's user index under the current round's partition).
type ContribRequest struct {
	Session uint64
	Round   int
	Slot    int
	Pos     int
	SetSize int
	Space   geo.Rect
}

// Marshal encodes the request.
func (c *ContribRequest) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(c.Session)
	w.Uvarint(uint64(c.Round))
	w.Uvarint(uint64(c.Slot))
	w.Uvarint(uint64(c.Pos))
	w.Uvarint(uint64(c.SetSize))
	w.Float64(c.Space.Min.X)
	w.Float64(c.Space.Min.Y)
	w.Float64(c.Space.Max.X)
	w.Float64(c.Space.Max.Y)
	return w.Bytes()
}

// UnmarshalContribRequest decodes a ContribRequest.
func UnmarshalContribRequest(b []byte) (*ContribRequest, error) {
	r := wire.NewReader(b)
	c := &ContribRequest{
		Session: r.Uvarint(),
		Round:   r.Int(),
		Slot:    r.Int(),
		Pos:     r.Int(),
		SetSize: r.Int(),
	}
	c.Space.Min.X = r.Float64()
	c.Space.Min.Y = r.Float64()
	c.Space.Max.X = r.Float64()
	c.Space.Max.Y = r.Float64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding contribution request: %w", err)
	}
	if c.SetSize < 1 {
		return nil, fmt.Errorf("core: contribution request for empty set")
	}
	if c.Pos < 0 || c.Pos >= c.SetSize {
		return nil, fmt.Errorf("core: contribution position %d outside [0,%d)", c.Pos, c.SetSize)
	}
	if !c.Space.Valid() || c.Space.Area() == 0 {
		return nil, fmt.Errorf("core: contribution request with degenerate space")
	}
	return c, nil
}

// ContributionMsg is one member's answer to a ContribRequest: its
// d-anonymous location set for the round. The coordinator validates it on
// receipt and forwards it to the LSP as a LocationMsg; the member's real
// location is hidden at the requested position exactly as in the
// shared-memory protocol.
type ContributionMsg struct {
	Session uint64
	Round   int
	Slot    int
	Set     []geo.Point
}

// Marshal encodes the contribution.
func (c *ContributionMsg) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(c.Session)
	w.Uvarint(uint64(c.Round))
	w.Uvarint(uint64(c.Slot))
	w.Uvarint(uint64(len(c.Set)))
	for _, p := range c.Set {
		w.Float64(p.X)
		w.Float64(p.Y)
	}
	return w.Bytes()
}

// UnmarshalContribution decodes a ContributionMsg.
func UnmarshalContribution(b []byte) (*ContributionMsg, error) {
	r := wire.NewReader(b)
	c := &ContributionMsg{
		Session: r.Uvarint(),
		Round:   r.Int(),
		Slot:    r.Int(),
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding contribution: %w", err)
	}
	if n*16 > r.Remaining() {
		return nil, fmt.Errorf("core: contribution of %d locations exceeds payload", n)
	}
	c.Set = make([]geo.Point, n)
	for i := range c.Set {
		c.Set[i] = geo.Point{X: r.Float64(), Y: r.Float64()}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding contribution set: %w", err)
	}
	return c, nil
}

// Validate checks the contribution against the request that solicited it.
// The returned error is descriptive but untyped; the session layer wraps
// it into a ContributionError carrying the member's identity.
func (c *ContributionMsg) Validate(req *ContribRequest) error {
	if c.Session != req.Session {
		return fmt.Errorf("session %d, want %d", c.Session, req.Session)
	}
	if c.Round != req.Round {
		return fmt.Errorf("round %d, want %d", c.Round, req.Round)
	}
	if c.Slot != req.Slot {
		return fmt.Errorf("slot %d, want %d", c.Slot, req.Slot)
	}
	if len(c.Set) != req.SetSize {
		return fmt.Errorf("set size %d, want %d", len(c.Set), req.SetSize)
	}
	for i, p := range c.Set {
		if !req.Space.Contains(p) {
			return fmt.Errorf("location %d (%v) outside the service space", i, p)
		}
	}
	return nil
}

// LocationMsg converts the contribution into the user→LSP message form.
func (c *ContributionMsg) LocationMsg() *LocationMsg {
	return &LocationMsg{UserID: c.Slot, Set: c.Set}
}

// PartialRequest asks one member for its partial decryptions of the
// answer ciphertexts (threshold mode). KeyBytes fixes the wire width of
// every ciphertext at (Degree+1)·KeyBytes, matching AnswerMsg.
type PartialRequest struct {
	Session  uint64
	Round    int
	Degree   int
	KeyBytes int
	Cts      []*big.Int
}

// Marshal encodes the request.
func (p *PartialRequest) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(p.Session)
	w.Uvarint(uint64(p.Round))
	w.Uvarint(uint64(p.Degree))
	w.Uvarint(uint64(p.KeyBytes))
	w.FixedBigIntSlice(p.Cts, (p.Degree+1)*p.KeyBytes)
	return w.Bytes()
}

// UnmarshalPartialRequest decodes a PartialRequest.
func UnmarshalPartialRequest(b []byte) (*PartialRequest, error) {
	r := wire.NewReader(b)
	p := &PartialRequest{
		Session:  r.Uvarint(),
		Round:    r.Int(),
		Degree:   r.Int(),
		KeyBytes: r.Int(),
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding partial request: %w", err)
	}
	if p.Degree < 1 || p.Degree > paillier.MaxS {
		return nil, fmt.Errorf("core: partial request degree %d out of range", p.Degree)
	}
	// One ciphertext wider than a whole frame is nonsense; rejecting here
	// also keeps (Degree+1)·KeyBytes far from integer-overflow territory.
	if p.KeyBytes < 1 || (p.Degree+1)*p.KeyBytes > wire.MaxFrameSize {
		return nil, fmt.Errorf("core: partial request key width %d", p.KeyBytes)
	}
	p.Cts = r.FixedBigIntSlice((p.Degree + 1) * p.KeyBytes)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding partial request ciphertexts: %w", err)
	}
	return p, nil
}

// PartialMsg is one member's decryption shares for a PartialRequest:
// Shares[i] is the share of Cts[i], produced under key-share Index.
type PartialMsg struct {
	Session  uint64
	Round    int
	Index    int // 1-based key-share index of the contributing member
	Degree   int
	KeyBytes int
	Shares   []*big.Int
}

// Marshal encodes the shares.
func (p *PartialMsg) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(p.Session)
	w.Uvarint(uint64(p.Round))
	w.Uvarint(uint64(p.Index))
	w.Uvarint(uint64(p.Degree))
	w.Uvarint(uint64(p.KeyBytes))
	w.FixedBigIntSlice(p.Shares, (p.Degree+1)*p.KeyBytes)
	return w.Bytes()
}

// UnmarshalPartial decodes a PartialMsg.
func UnmarshalPartial(b []byte) (*PartialMsg, error) {
	r := wire.NewReader(b)
	p := &PartialMsg{
		Session:  r.Uvarint(),
		Round:    r.Int(),
		Index:    r.Int(),
		Degree:   r.Int(),
		KeyBytes: r.Int(),
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding partial decryption: %w", err)
	}
	if p.Degree < 1 || p.Degree > paillier.MaxS {
		return nil, fmt.Errorf("core: partial decryption degree %d out of range", p.Degree)
	}
	// See UnmarshalPartialRequest: cap the element width before using it.
	if p.KeyBytes < 1 || (p.Degree+1)*p.KeyBytes > wire.MaxFrameSize {
		return nil, fmt.Errorf("core: partial decryption key width %d", p.KeyBytes)
	}
	p.Shares = r.FixedBigIntSlice((p.Degree + 1) * p.KeyBytes)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding partial decryption shares: %w", err)
	}
	return p, nil
}

// Validate checks the shares against the request that solicited them and
// the threshold key: the member must answer for the round it was asked
// about, under its own share index, with one share per ciphertext, every
// share a unit in [1, N^(s+1)). As with ContributionMsg.Validate, the
// session layer wraps the error with the member's identity.
func (p *PartialMsg) Validate(req *PartialRequest, wantIndex int, tk *paillier.ThresholdKey) error {
	if p.Session != req.Session {
		return fmt.Errorf("session %d, want %d", p.Session, req.Session)
	}
	if p.Round != req.Round {
		return fmt.Errorf("decrypt round %d, want %d", p.Round, req.Round)
	}
	if p.Degree != req.Degree {
		return fmt.Errorf("degree %d, want %d", p.Degree, req.Degree)
	}
	if p.Index != wantIndex {
		return fmt.Errorf("share index %d, want %d", p.Index, wantIndex)
	}
	if len(p.Shares) != len(req.Cts) {
		return fmt.Errorf("%d shares for %d ciphertexts", len(p.Shares), len(req.Cts))
	}
	mod := tk.NS(p.Degree + 1)
	for i, s := range p.Shares {
		if s.Sign() <= 0 || s.Cmp(mod) >= 0 {
			return fmt.Errorf("share %d outside [1, N^%d)", i, p.Degree+1)
		}
	}
	return nil
}
