package core

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
)

// TestShortRandAnswersIdentical pins the Params.ShortRandBits contract:
// the short-exponent randomness mode changes ciphertext randomness (and
// the security assumption), never the decrypted answer. The same seeds
// must yield the same POIs with the mode on and off, for both variants.
func TestShortRandAnswersIdentical(t *testing.T) {
	lsp := testLSP(2000)
	for _, variant := range []Variant{VariantPPGNN, VariantOPT} {
		run := func(bits int) []float64 {
			rng := rand.New(rand.NewSource(17))
			p := testParams(4, variant)
			p.NoSanitize = true
			p.ShortRandBits = bits
			locs := randomLocations(rng, 4)
			g, err := NewGroup(p, locs, rng)
			if err != nil {
				t.Fatalf("%v bits=%d: %v", variant, bits, err)
			}
			if got := g.Key.ShortRandBits(); got != bits {
				t.Fatalf("%v: key ShortRandBits=%d, want %d", variant, got, bits)
			}
			var m cost.Meter
			res, err := g.Run(LocalService{LSP: lsp, Meter: &m}, &m)
			if err != nil {
				t.Fatalf("%v bits=%d: %v", variant, bits, err)
			}
			out := make([]float64, 0, 2*len(res.Points))
			for _, pt := range res.Points {
				out = append(out, pt.X, pt.Y)
			}
			return out
		}
		full := run(0)
		short := run(64)
		if len(full) != len(short) {
			t.Fatalf("%v: answer sizes differ: %d vs %d", variant, len(full), len(short))
		}
		for i := range full {
			if full[i] != short[i] {
				t.Fatalf("%v: answers diverge at coordinate %d", variant, i)
			}
		}
	}
}

func TestShortRandParamsValidation(t *testing.T) {
	for _, bits := range []int{8, -1, testKeyBits, testKeyBits + 64} {
		p := testParams(2, VariantPPGNN)
		p.ShortRandBits = bits
		if err := p.Validate(); err == nil {
			t.Errorf("ShortRandBits=%d accepted", bits)
		}
	}
	p := testParams(2, VariantPPGNN)
	p.ShortRandBits = 64
	if err := p.Validate(); err != nil {
		t.Errorf("ShortRandBits=64: %v", err)
	}
}
