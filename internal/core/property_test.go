package core

import (
	"math/rand"
	"testing"

	"ppgnn/internal/dummy"
	"ppgnn/internal/gnn"
)

// TestProtocolExactnessRandomizedParams is the protocol-level property
// test: across randomized (n, d, δ, k, F, variant, generator) settings,
// the decrypted answer must equal the plaintext kGNN answer computed
// directly on the real locations (sanitation off to make the reference
// deterministic).
func TestProtocolExactnessRandomizedParams(t *testing.T) {
	lsp := testLSP(2500)
	rng := rand.New(rand.NewSource(2024))
	variants := []Variant{VariantPPGNN, VariantOPT, VariantNaive}
	aggs := []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min}
	gens := []dummy.Generator{dummy.Uniform{}, dummy.GridSpread{}}

	trials := 24
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(6)
		d := 3 + rng.Intn(6)
		delta := d + rng.Intn(12)
		if n == 1 {
			delta = d
		}
		p := Params{
			N: n, D: d, Delta: delta,
			K:          1 + rng.Intn(10),
			Theta0:     0.05,
			KeyBits:    testKeyBits,
			Agg:        aggs[rng.Intn(len(aggs))],
			Variant:    variants[rng.Intn(len(variants))],
			Space:      lsp.Space,
			NoSanitize: true,
		}
		locs := randomLocations(rng, n)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			// δ > d^n is a legitimate infeasibility; skip those draws.
			if n >= 2 || delta == d {
				t.Logf("trial %d: %v (params %+v)", trial, err, p)
			}
			continue
		}
		g.Gen = gens[rng.Intn(len(gens))]
		res, err := g.Run(LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, p, err)
		}
		want := plainAnswer(lsp, locs, p.K, p.Agg)
		if len(res.Points) != len(want) {
			t.Fatalf("trial %d (%+v): %d POIs, want %d", trial, p, len(res.Points), len(want))
		}
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("trial %d (%+v): rank %d mismatch", trial, p, i)
			}
		}
	}
}
