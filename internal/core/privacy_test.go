package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
	"ppgnn/internal/sanitize"
)

// TestPrivacyI_RealPositionUniform verifies the 1/d guarantee of Theorem
// 4.3: across many query generations, the position of each user's real
// location within their location set is uniform over [0, d), so the LSP's
// best guess succeeds with probability 1/d.
func TestPrivacyI_RealPositionUniform(t *testing.T) {
	p := testParams(4, VariantPPGNN)
	locs := randomLocations(rand.New(rand.NewSource(1)), 4)
	g, err := NewGroup(p, locs, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.D)
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		_, lms, err := g.BuildQuery(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Find the real location's position for user 0.
		found := -1
		for i, loc := range lms[0].Set {
			if loc == locs[0] {
				found = i
				break
			}
		}
		if found == -1 {
			t.Fatal("real location missing from the location set")
		}
		counts[found]++
	}
	// Chi-square test against uniform at a generous threshold: with d-1
	// degrees of freedom (d=6 here), chi2 < 30 keeps false failures rare.
	expected := float64(trials) / float64(p.D)
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > 30 {
		t.Fatalf("real-position distribution non-uniform: counts=%v chi2=%.1f", counts, chi2)
	}
}

// TestPrivacyII_CandidateCount verifies that the LSP always evaluates at
// least δ candidate queries, so its posterior over the real query is at
// most 1/δ.
func TestPrivacyII_CandidateCount(t *testing.T) {
	lsp := testLSP(500)
	for _, n := range []int{1, 2, 5, 8} {
		p := testParams(n, VariantPPGNN)
		if n == 1 {
			p.Delta = p.D
		}
		p.NoSanitize = true
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := NewGroup(p, randomLocations(rng, n), rng)
		if err != nil {
			t.Fatal(err)
		}
		q, lms, err := g.BuildQuery(nil)
		if err != nil {
			t.Fatal(err)
		}
		ordered := make([][]geo.Point, n)
		for _, lm := range lms {
			ordered[lm.UserID] = lm.Set
		}
		cands, err := lsp.candidates(q, ordered)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) < p.Delta {
			t.Fatalf("n=%d: LSP sees %d candidates < δ=%d", n, len(cands), p.Delta)
		}
		// The real query must be among them (otherwise the protocol could
		// not return the real answer).
		found := false
		for _, c := range cands {
			match := true
			for u := range c {
				if c[u] != g.Locations[u] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("n=%d: real query not among the candidates", n)
		}
	}
}

// TestPrivacyIII_AnswerBounded verifies the pay-per-result property: the
// decrypted answer never contains more than the k requested POIs, and every
// returned POI belongs to the true top-k of the real query.
func TestPrivacyIII_AnswerBounded(t *testing.T) {
	lsp := testLSP(2000)
	rng := rand.New(rand.NewSource(5))
	p := testParams(4, VariantPPGNN)
	p.IncludeIDs = true
	locs := randomLocations(rng, 4)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) > p.K {
		t.Fatalf("answer has %d POIs > k=%d", len(res.Records), p.K)
	}
	truth := plainAnswer(lsp, locs, p.K, p.Agg)
	inTruth := map[int64]bool{}
	for _, r := range truth {
		inTruth[r.Item.ID] = true
	}
	for _, rec := range res.Records {
		if !inTruth[int64(rec.ID)] {
			t.Fatalf("answer leaked POI %d outside the requested top-%d", rec.ID, p.K)
		}
	}
}

// TestPrivacyIV_EndToEnd runs the complete protocol and then mounts the
// full-collusion inequality attack of Section 5.1 on the delivered answer:
// every target user must retain a feasible region of relative size > θ0
// (with Monte-Carlo slack).
func TestPrivacyIV_EndToEnd(t *testing.T) {
	lsp := testLSP(3000)
	p := testParams(5, VariantPPGNN)
	p.K = 12
	p.Theta0 = 0.05
	rng := rand.New(rand.NewSource(8))
	locs := randomLocations(rng, 5)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the colluders' view: the ranked answer points.
	answer := make([]gnn.Result, len(res.Points))
	for i, pt := range res.Points {
		answer[i].Item.P = pt
	}
	cfg := sanitize.Config{Theta0: p.Theta0, Space: p.Space, Agg: p.Agg}
	for target := range locs {
		theta := cfg.AttackTheta(rand.New(rand.NewSource(int64(100+target))), answer, locs, target, 20000)
		if theta < p.Theta0*0.7 {
			t.Fatalf("target %d: post-protocol attack region %.4f ≪ θ0=%.2f", target, theta, p.Theta0)
		}
	}
}

// TestPrivacyIV_UnsanitizedIsVulnerable is the negative control: with
// sanitation disabled (PPGNN-NAS) and a long answer, the attack usually
// succeeds against at least one user, demonstrating that the sanitizer is
// actually necessary.
func TestPrivacyIV_UnsanitizedIsVulnerable(t *testing.T) {
	lsp := testLSP(3000)
	p := testParams(5, VariantPPGNN)
	p.K = 16
	p.Theta0 = 0.05
	p.NoSanitize = true
	vulnerableSomewhere := false
	for trial := 0; trial < 4 && !vulnerableSomewhere; trial++ {
		rng := rand.New(rand.NewSource(int64(20 + trial)))
		locs := randomLocations(rng, 5)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatal(err)
		}
		answer := make([]gnn.Result, len(res.Points))
		for i, pt := range res.Points {
			answer[i].Item.P = pt
		}
		cfg := sanitize.Config{Theta0: p.Theta0, Space: p.Space, Agg: p.Agg}
		for target := range locs {
			theta := cfg.AttackTheta(rand.New(rand.NewSource(int64(target))), answer, locs, target, 10000)
			if theta <= p.Theta0 {
				vulnerableSomewhere = true
				break
			}
		}
	}
	if !vulnerableSomewhere {
		t.Fatal("unsanitized 16-POI answers never enabled the inequality attack; the Privacy IV tests prove nothing")
	}
}

// TestIndicatorCacheNeverRepeatsCiphertexts sweeps the closed contract
// of the shared constant cache at the wire level (ISSUE 10): with
// EncCache enabled, repeated queries re-encrypt the same tiny constant
// set through the cache, yet no ciphertext the LSP ever receives —
// within a vector, across vectors, across queries — repeats byte for
// byte. A repeat would hand the LSP plaintext-equality structure that
// semantic security is supposed to hide; rerandomize-on-hit is what
// prevents it.
func TestIndicatorCacheNeverRepeatsCiphertexts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	locs := randomLocations(rng, 4)
	for _, variant := range []Variant{VariantPPGNN, VariantOPT} {
		p := testParams(4, variant)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			t.Fatal(err)
		}
		g.EncCache = paillier.NewEncCache(256)
		seen := map[string]bool{}
		total := 0
		for round := 0; round < 3; round++ {
			q, _, err := g.BuildQuery(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range append(append(append([]*big.Int{}, q.V...), q.V1...), q.V2...) {
				if key := string(c.Bytes()); seen[key] {
					t.Fatalf("%v round %d: indicator ciphertext repeated on the wire", variant, round)
				} else {
					seen[key] = true
				}
				total++
			}
		}
		if total == 0 || g.EncCache.Len() == 0 {
			t.Fatalf("%v: sweep vacuous (total=%d, cache len=%d)", variant, total, g.EncCache.Len())
		}
	}
}

// TestIndicatorVectorIsEncryptedAndDense checks what the LSP receives: the
// indicator vectors are ciphertexts (no zero/one plaintext structure leaks)
// and have exactly the expected lengths for each variant.
func TestIndicatorVectorShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	locs := randomLocations(rng, 4)
	for _, variant := range []Variant{VariantPPGNN, VariantOPT, VariantNaive} {
		p := testParams(4, variant)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			t.Fatal(err)
		}
		q, _, err := g.BuildQuery(nil)
		if err != nil {
			t.Fatal(err)
		}
		switch variant {
		case VariantPPGNN:
			if len(q.V) != g.DeltaPrime() {
				t.Fatalf("PPGNN indicator length %d != δ'=%d", len(q.V), g.DeltaPrime())
			}
		case VariantOPT:
			omega := OptimalOmega(g.DeltaPrime())
			cols := (g.DeltaPrime() + omega - 1) / omega
			if len(q.V2) != omega || len(q.V1) != cols {
				t.Fatalf("OPT lengths v1=%d v2=%d, want %d and %d", len(q.V1), len(q.V2), cols, omega)
			}
			// ω ≈ √(δ'/2): total ciphertext load is O(√δ').
			if float64(len(q.V1)+len(q.V2)) > 4*math.Sqrt(float64(g.DeltaPrime()))+4 {
				t.Fatalf("OPT ciphertext load %d not O(√δ')", len(q.V1)+len(q.V2))
			}
		case VariantNaive:
			if len(q.V) != p.Delta {
				t.Fatalf("Naive indicator length %d != δ=%d", len(q.V), p.Delta)
			}
		}
		// Every ciphertext must be a nontrivial group element (semantic
		// security means no plaintext 0/1 visible).
		for _, c := range append(append(append([]*big.Int{}, q.V...), q.V1...), q.V2...) {
			if c.BitLen() < p.KeyBits/2 {
				t.Fatalf("%v: suspiciously small ciphertext (%d bits)", variant, c.BitLen())
			}
		}
	}
}
