package core

import (
	"fmt"
	"math/big"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/paillier"
	"ppgnn/internal/wire"
)

// Frame type tags for the TCP transport.
const (
	FrameQuery    = byte(1)
	FrameLocation = byte(2)
	FrameAnswer   = byte(3)
	FrameError    = byte(4)
	// FrameTenant optionally opens a session before FrameQuery: its
	// payload is the UTF-8 tenant id the session should be routed to.
	// Sessions that skip it land on the default tenant, which keeps the
	// pre-multi-tenant wire format valid byte for byte.
	FrameTenant = byte(5)
	// FrameTrace optionally precedes a session's first request frame on
	// either protocol (client → LSP before FrameTenant/FrameQuery,
	// coordinator → member before a request): its payload is the 8-byte
	// big-endian crypto-random trace id. An absent frame means the query
	// is untraced, so — like FrameTenant — the extension is wire
	// compatible byte for byte. Tags 5–8 belong to the member protocol
	// (member.go), hence 9.
	FrameTrace = byte(9)
)

// MaxTenantIDLen bounds the FrameTenant payload; tenant ids are operator
// configuration, not user data, and never need to be long.
const MaxTenantIDLen = 64

// ProtocolVersion is the wire-format version embedded in every QueryMsg; a
// server rejects queries from incompatible clients instead of
// misinterpreting their bytes.
const ProtocolVersion = 1

// QueryMsg is the coordinator's message to the LSP: {k, pk, n̄, d̄, [v], θ0}
// of Algorithm 1, extended with the protocol variant and the testing
// parameters the LSP needs for the answer sanitation.
type QueryMsg struct {
	Variant  Variant
	K        int
	Agg      gnn.Aggregate
	Theta0   float64
	Gamma    float64
	Eta      float64
	Phi      float64
	Sanitize bool
	Include  bool // include POI IDs in the answer encoding

	PK *big.Int // Paillier modulus N

	// PPGNN partitioning (unused by Naive).
	NBar []int
	DBar []int
	// Delta is δ: for Naive it is the location-set length; for the others
	// it documents the requested Privacy II level (δ' derives from DBar).
	Delta int

	// Encrypted indicator vectors, by variant:
	//   PPGNN/Naive: V (ε_1, length δ' resp. δ)
	//   OPT:         V1 (ε_1, length ⌈δ'/ω⌉) and V2 (ε_2, length ω)
	V  []*big.Int
	V1 []*big.Int
	V2 []*big.Int
}

// keyBytes returns the byte length of the modulus.
func (q *QueryMsg) keyBytes() int { return (q.PK.BitLen() + 7) / 8 }

// Marshal encodes the message; its length is the message's communication
// cost.
func (q *QueryMsg) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(ProtocolVersion)
	w.Uvarint(uint64(q.Variant))
	w.Uvarint(uint64(q.K))
	w.Uvarint(uint64(q.Agg))
	w.Float64(q.Theta0)
	w.Float64(q.Gamma)
	w.Float64(q.Eta)
	w.Float64(q.Phi)
	w.Bool(q.Sanitize)
	w.Bool(q.Include)
	w.BigInt(q.PK)
	w.IntSlice(q.NBar)
	w.IntSlice(q.DBar)
	w.Uvarint(uint64(q.Delta))
	kb := q.keyBytes()
	writeCts := func(cts []*big.Int, degree int) {
		w.Uvarint(uint64(len(cts)))
		for _, c := range cts {
			w.FixedBigInt(c, (degree+1)*kb)
		}
	}
	writeCts(q.V, 1)
	writeCts(q.V1, 1)
	writeCts(q.V2, 2)
	return w.Bytes()
}

// UnmarshalQuery decodes a QueryMsg.
func UnmarshalQuery(b []byte) (*QueryMsg, error) {
	r := wire.NewReader(b)
	if v := r.Uvarint(); v != ProtocolVersion {
		if r.Err() == nil {
			return nil, fmt.Errorf("core: protocol version %d, this build speaks %d", v, ProtocolVersion)
		}
	}
	q := &QueryMsg{}
	q.Variant = Variant(r.Int())
	q.K = r.Int()
	q.Agg = gnn.Aggregate(r.Int())
	q.Theta0 = r.Float64()
	q.Gamma = r.Float64()
	q.Eta = r.Float64()
	q.Phi = r.Float64()
	q.Sanitize = r.Bool()
	q.Include = r.Bool()
	q.PK = r.BigInt()
	q.NBar = r.IntSlice()
	q.DBar = r.IntSlice()
	q.Delta = r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding query: %w", err)
	}
	if q.PK.Sign() <= 0 {
		return nil, fmt.Errorf("core: query has invalid public key")
	}
	kb := q.keyBytes()
	var ctErr error
	readCts := func(degree int) []*big.Int {
		n := r.Int()
		if r.Err() != nil || n*(degree+1)*kb > r.Remaining() {
			if ctErr == nil {
				ctErr = fmt.Errorf("core: ciphertext vector exceeds payload")
			}
			return nil
		}
		out := make([]*big.Int, n)
		for i := range out {
			out[i] = r.FixedBigInt((degree + 1) * kb)
		}
		return out
	}
	q.V = readCts(1)
	q.V1 = readCts(1)
	q.V2 = readCts(2)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding query ciphertexts: %w", err)
	}
	if ctErr != nil {
		return nil, ctErr
	}
	return q, nil
}

// LocationMsg carries one user's location set (i, 𝕃_i), sent directly from
// the user to the LSP so no other user sees it (Algorithm 1, line 15).
type LocationMsg struct {
	UserID int
	Set    []geo.Point
}

// Marshal encodes the message.
func (l *LocationMsg) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(uint64(l.UserID))
	w.Uvarint(uint64(len(l.Set)))
	for _, p := range l.Set {
		w.Float64(p.X)
		w.Float64(p.Y)
	}
	return w.Bytes()
}

// UnmarshalLocation decodes a LocationMsg.
func UnmarshalLocation(b []byte) (*LocationMsg, error) {
	r := wire.NewReader(b)
	l := &LocationMsg{UserID: r.Int()}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding location set: %w", err)
	}
	if n*16 > r.Remaining() {
		return nil, fmt.Errorf("core: location set length %d exceeds payload", n)
	}
	l.Set = make([]geo.Point, n)
	for i := range l.Set {
		l.Set[i] = geo.Point{X: r.Float64(), Y: r.Float64()}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding location set: %w", err)
	}
	return l, nil
}

// AnswerMsg is the LSP's encrypted answer [a_*]: M ciphertexts of the given
// degree (1 for PPGNN/Naive, 2 for OPT).
type AnswerMsg struct {
	Degree int
	Cts    []*big.Int

	keyBytes int // for fixed-width marshaling
}

// NewAnswerMsg builds an answer for the given public key.
func NewAnswerMsg(pk *paillier.PublicKey, degree int, cts []*big.Int) *AnswerMsg {
	return &AnswerMsg{Degree: degree, Cts: cts, keyBytes: (pk.N.BitLen() + 7) / 8}
}

// Marshal encodes the message.
func (a *AnswerMsg) Marshal() []byte {
	var w wire.Writer
	w.Uvarint(uint64(a.Degree))
	w.Uvarint(uint64(a.keyBytes))
	w.Uvarint(uint64(len(a.Cts)))
	for _, c := range a.Cts {
		w.FixedBigInt(c, (a.Degree+1)*a.keyBytes)
	}
	return w.Bytes()
}

// UnmarshalAnswer decodes an AnswerMsg.
func UnmarshalAnswer(b []byte) (*AnswerMsg, error) {
	r := wire.NewReader(b)
	a := &AnswerMsg{}
	a.Degree = r.Int()
	a.keyBytes = r.Int()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding answer: %w", err)
	}
	if a.Degree < 1 || a.Degree > paillier.MaxS {
		return nil, fmt.Errorf("core: answer degree %d out of range", a.Degree)
	}
	ctLen := (a.Degree + 1) * a.keyBytes
	if n*ctLen > r.Remaining() {
		return nil, fmt.Errorf("core: answer of %d ciphertexts exceeds payload", n)
	}
	a.Cts = make([]*big.Int, n)
	for i := range a.Cts {
		a.Cts[i] = r.FixedBigInt(ctLen)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decoding answer ciphertexts: %w", err)
	}
	return a, nil
}
