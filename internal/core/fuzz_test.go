package core

import (
	"math/rand"
	"testing"
)

// Fuzz targets for the message decoders: whatever bytes arrive from the
// network, the unmarshalers must return an error or a well-formed message —
// never panic. Run with `go test -fuzz FuzzUnmarshalQuery ./internal/core`;
// plain `go test` exercises the seed corpus.

func fuzzSeeds(t interface{ Add(...interface{}) }) {
	// Real marshaled messages as seeds.
	rng := rand.New(rand.NewSource(1))
	p := testParams(2, VariantPPGNN)
	g, err := NewGroup(p, randomLocations(rng, 2), rng)
	if err != nil {
		return
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		return
	}
	t.Add(q.Marshal())
	t.Add(locs[0].Marshal())
}

func FuzzUnmarshalQuery(f *testing.F) {
	fuzzSeeds(f)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalQuery(data)
		if err != nil {
			return
		}
		// A successfully decoded query must re-marshal without panicking.
		if q.PK == nil || q.PK.Sign() <= 0 {
			t.Fatal("decoded query with invalid public key")
		}
		_ = q.Marshal()
	})
}

func FuzzUnmarshalLocation(f *testing.F) {
	fuzzSeeds(f)
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		lm, err := UnmarshalLocation(data)
		if err != nil {
			return
		}
		_ = lm.Marshal()
	})
}

func FuzzUnmarshalAnswer(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x20, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalAnswer(data)
		if err != nil {
			return
		}
		if a.Degree < 1 {
			t.Fatal("decoded answer with invalid degree")
		}
		_ = a.Marshal()
	})
}
