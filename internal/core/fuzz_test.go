package core

import (
	"math/big"
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
)

// Fuzz targets for the message decoders: whatever bytes arrive from the
// network, the unmarshalers must return an error or a well-formed message —
// never panic. Run with `go test -fuzz FuzzUnmarshalQuery ./internal/core`;
// plain `go test` exercises the seed corpus.

func fuzzSeeds(t interface{ Add(...interface{}) }) {
	// Real marshaled messages as seeds.
	rng := rand.New(rand.NewSource(1))
	p := testParams(2, VariantPPGNN)
	g, err := NewGroup(p, randomLocations(rng, 2), rng)
	if err != nil {
		return
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		return
	}
	t.Add(q.Marshal())
	t.Add(locs[0].Marshal())
}

func FuzzUnmarshalQuery(f *testing.F) {
	fuzzSeeds(f)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := UnmarshalQuery(data)
		if err != nil {
			return
		}
		// A successfully decoded query must re-marshal without panicking.
		if q.PK == nil || q.PK.Sign() <= 0 {
			t.Fatal("decoded query with invalid public key")
		}
		_ = q.Marshal()
	})
}

func FuzzUnmarshalLocation(f *testing.F) {
	fuzzSeeds(f)
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		lm, err := UnmarshalLocation(data)
		if err != nil {
			return
		}
		_ = lm.Marshal()
	})
}

func FuzzUnmarshalAnswer(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x20, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalAnswer(data)
		if err != nil {
			return
		}
		if a.Degree < 1 {
			t.Fatal("decoded answer with invalid degree")
		}
		_ = a.Marshal()
	})
}

func FuzzUnmarshalContribution(f *testing.F) {
	c := &ContributionMsg{Session: 7, Round: 1, Slot: 2}
	for i := 0; i < 4; i++ {
		c.Set = append(c.Set, geo.Point{X: float64(i), Y: float64(i * 2)})
	}
	seed := c.Marshal()
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-point
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalContribution(data)
		if err != nil {
			return
		}
		// Decoded messages must re-marshal to the bytes they came from
		// (the encoding is canonical), so equivocation detection can
		// compare raw payloads.
		if again, err := UnmarshalContribution(m.Marshal()); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		} else if len(again.Set) != len(m.Set) {
			t.Fatal("re-decode changed the set size")
		}
	})
}

func FuzzUnmarshalPartial(f *testing.F) {
	pm := &PartialMsg{Session: 3, Round: 0, Index: 2, Degree: 1, KeyBytes: 4,
		Shares: []*big.Int{big.NewInt(99), big.NewInt(1 << 30)}}
	seed := pm.Marshal()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // truncated mid-share
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x02, 0x7F, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalPartial(data)
		if err != nil {
			return
		}
		if m.Degree < 1 || m.KeyBytes < 1 {
			t.Fatal("decoded partial with invalid geometry")
		}
		_ = m.Marshal()
	})
}
