package core

import (
	"bytes"
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// TestShardedLSPByteIdenticalAnswers is the protocol-level equivalence
// check: the same encrypted query processed by a single-tree LSP and a
// sharded+grid LSP must produce byte-identical answer messages — same
// candidate answers, same encoding, same ciphertexts. This is what makes
// the sharding invisible to the client and keeps the paper's privacy
// argument untouched (DESIGN.md §14).
func TestShardedLSPByteIdenticalAnswers(t *testing.T) {
	items := testItems(2000)
	single := NewLSP(items, geo.UnitRect)
	sharded := NewIndexedLSP(items, geo.UnitRect, IndexOptions{Shards: 8, PruneGrid: true})
	if sharded.ShardCount() != 8 {
		t.Fatalf("ShardCount() = %d, want 8", sharded.ShardCount())
	}

	for _, variant := range []Variant{VariantPPGNN, VariantOPT} {
		rng := rand.New(rand.NewSource(31))
		p := testParams(4, variant)
		g, err := NewGroup(p, randomLocations(rng, 4), rng)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		q, locs, err := g.BuildQuery(nil)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		ansSingle, err := single.Process(q, locs, nil)
		if err != nil {
			t.Fatalf("%v single: %v", variant, err)
		}
		ansSharded, err := sharded.Process(q, locs, nil)
		if err != nil {
			t.Fatalf("%v sharded: %v", variant, err)
		}
		if !bytes.Equal(ansSingle.Marshal(), ansSharded.Marshal()) {
			t.Fatalf("%v: sharded answer differs from single-tree answer", variant)
		}
	}
}

// TestShardedMaxCandidatesCap pins that the δ' admission cap runs before
// any index work on the sharded path too: a hostile coordinator whose
// partition parameters imply more candidates than MaxCandidates is
// rejected by the sharded LSP exactly like the single-tree one.
func TestShardedMaxCandidatesCap(t *testing.T) {
	lsp := NewIndexedLSP(testItems(200), geo.UnitRect, IndexOptions{Shards: 4, PruneGrid: true})
	lsp.MaxCandidates = 8
	rng := rand.New(rand.NewSource(91))
	p := testParams(3, VariantPPGNN) // δ=12 > cap 8
	p.NoSanitize = true
	g, err := NewGroup(p, randomLocations(rng, 3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(LocalService{LSP: lsp}, nil); err == nil {
		t.Fatal("sharded LSP accepted a query above its candidate cap")
	}
	lsp.MaxCandidates = 0
	if _, err := g.Run(LocalService{LSP: lsp}, nil); err != nil {
		t.Fatalf("default cap rejected a normal query on the sharded LSP: %v", err)
	}
}

// TestShardedLSPStatic pins the static-index contract: Insert and Delete
// on a sharded LSP panic (the svc layer rebuilds indexes on epoch swaps
// instead of mutating them).
func TestShardedLSPStatic(t *testing.T) {
	lsp := NewIndexedLSP(testItems(100), geo.UnitRect, IndexOptions{Shards: 2})
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a sharded LSP did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Insert", func() { lsp.Insert(rtree.Item{ID: 1, P: geo.Point{X: 0.5, Y: 0.5}}) })
	assertPanics("Delete", func() { lsp.Delete(rtree.Item{ID: 1, P: geo.Point{X: 0.5, Y: 0.5}}) })
	if lsp.Tree() != nil {
		t.Fatal("sharded LSP exposes a non-nil Tree")
	}
}

// TestPruneGridImpliesSharded pins the IndexOptions contract: PruneGrid
// alone (Shards unset) still selects the static sharded index.
func TestPruneGridImpliesSharded(t *testing.T) {
	lsp := NewIndexedLSP(testItems(100), geo.UnitRect, IndexOptions{PruneGrid: true})
	if lsp.Tree() != nil {
		t.Fatal("PruneGrid LSP kept the dynamic tree")
	}
	if lsp.ShardCount() != 1 {
		t.Fatalf("ShardCount() = %d, want 1", lsp.ShardCount())
	}
}
