package core

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/gnn"
	"ppgnn/internal/rtree"

	"ppgnn/internal/geo"
)

// testKeyBits keeps protocol tests fast; correctness is size-independent.
const testKeyBits = 256

func testItems(n int) []rtree.Item { return dataset.Synthetic(123, n) }

func testLSP(nPOIs int) *LSP {
	return NewLSP(testItems(nPOIs), geo.UnitRect)
}

func testParams(n int, variant Variant) Params {
	p := DefaultParams(n)
	p.KeyBits = testKeyBits
	p.D = 6
	p.Delta = 12
	if n == 1 {
		p.Delta = p.D
	}
	p.K = 6
	p.Variant = variant
	return p
}

func randomLocations(rng *rand.Rand, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return out
}

// plainAnswer computes the reference plaintext kGNN answer.
func plainAnswer(l *LSP, query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
	return l.Search(query, k, agg)
}

func TestSingleUserQueryExact(t *testing.T) {
	lsp := testLSP(3000)
	rng := rand.New(rand.NewSource(1))
	p := testParams(1, VariantPPGNN)
	locs := randomLocations(rng, 1)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	var m cost.Meter
	res, err := g.Run(LocalService{LSP: lsp, Meter: &m}, &m)
	if err != nil {
		t.Fatal(err)
	}
	want := plainAnswer(lsp, locs, p.K, p.Agg)
	if len(res.Points) != len(want) {
		t.Fatalf("got %d POIs, want %d", len(res.Points), len(want))
	}
	for i := range want {
		if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
			t.Fatalf("rank %d: got %v, want %v", i, res.Points[i], want[i].Item.P)
		}
	}
}

func TestGroupQueryExactNoSanitize(t *testing.T) {
	lsp := testLSP(3000)
	for _, variant := range []Variant{VariantPPGNN, VariantOPT, VariantNaive} {
		rng := rand.New(rand.NewSource(7))
		p := testParams(4, variant)
		p.NoSanitize = true
		locs := randomLocations(rng, 4)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		var m cost.Meter
		res, err := g.Run(LocalService{LSP: lsp, Meter: &m}, &m)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		want := plainAnswer(lsp, locs, p.K, p.Agg)
		if len(res.Points) != len(want) {
			t.Fatalf("%v: got %d POIs, want %d", variant, len(res.Points), len(want))
		}
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("%v rank %d: got %v, want %v", variant, i, res.Points[i], want[i].Item.P)
			}
		}
	}
}

func TestGroupQuerySanitizedIsPrefix(t *testing.T) {
	lsp := testLSP(3000)
	rng := rand.New(rand.NewSource(11))
	p := testParams(6, VariantPPGNN)
	locs := randomLocations(rng, 6)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	var m cost.Meter
	res, err := g.Run(LocalService{LSP: lsp, Meter: &m}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 1 || len(res.Points) > p.K {
		t.Fatalf("sanitized answer length %d outside [1,%d]", len(res.Points), p.K)
	}
	full := plainAnswer(lsp, locs, p.K, p.Agg)
	for i := range res.Points {
		if res.Points[i].Dist(full[i].Item.P) > 1e-6 {
			t.Fatalf("rank %d: sanitized answer is not a prefix of the true answer", i)
		}
	}
}

func TestAllAggregates(t *testing.T) {
	lsp := testLSP(2000)
	for _, agg := range []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min} {
		rng := rand.New(rand.NewSource(13))
		p := testParams(3, VariantPPGNN)
		p.Agg = agg
		p.NoSanitize = true
		locs := randomLocations(rng, 3)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		res, err := g.Run(LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		want := plainAnswer(lsp, locs, p.K, agg)
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("%v rank %d mismatch", agg, i)
			}
		}
	}
}

func TestIncludeIDs(t *testing.T) {
	lsp := testLSP(2000)
	rng := rand.New(rand.NewSource(17))
	p := testParams(2, VariantPPGNN)
	p.IncludeIDs = true
	p.NoSanitize = true
	locs := randomLocations(rng, 2)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := plainAnswer(lsp, locs, p.K, p.Agg)
	for i := range want {
		if int64(res.Records[i].ID) != want[i].Item.ID {
			t.Fatalf("rank %d: ID %d, want %d", i, res.Records[i].ID, want[i].Item.ID)
		}
	}
}

// The OPT variant must return exactly the same answer as PPGNN.
func TestOPTMatchesPPGNN(t *testing.T) {
	lsp := testLSP(2000)
	for trial := 0; trial < 3; trial++ {
		locs := randomLocations(rand.New(rand.NewSource(int64(trial+100))), 5)
		var answers [][]geo.Point
		for _, variant := range []Variant{VariantPPGNN, VariantOPT} {
			p := testParams(5, variant)
			p.NoSanitize = true
			g, err := NewGroup(p, locs, rand.New(rand.NewSource(42)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := g.Run(LocalService{LSP: lsp}, nil)
			if err != nil {
				t.Fatal(err)
			}
			answers = append(answers, res.Points)
		}
		if len(answers[0]) != len(answers[1]) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(answers[0]), len(answers[1]))
		}
		for i := range answers[0] {
			if answers[0][i] != answers[1][i] {
				t.Fatalf("trial %d rank %d: PPGNN %v, OPT %v", trial, i, answers[0][i], answers[1][i])
			}
		}
	}
}

// Communication shape (Table 2 / Section 6): for large δ', OPT moves fewer
// user→LSP ciphertext bytes than PPGNN; Naive moves the most location data.
func TestCommunicationShape(t *testing.T) {
	lsp := testLSP(1000)
	locs := randomLocations(rand.New(rand.NewSource(3)), 4)
	run := func(variant Variant, delta int) cost.Snapshot {
		p := testParams(4, variant)
		p.Delta = delta
		p.NoSanitize = true
		g, err := NewGroup(p, locs, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		var m cost.Meter
		if _, err := g.Run(LocalService{LSP: lsp, Meter: &m}, &m); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	const delta = 64
	ppgnn := run(VariantPPGNN, delta)
	opt := run(VariantOPT, delta)
	naive := run(VariantNaive, delta)
	if opt.UserToLSPBytes >= ppgnn.UserToLSPBytes {
		t.Errorf("OPT user→LSP bytes %d not below PPGNN %d at δ'=%d",
			opt.UserToLSPBytes, ppgnn.UserToLSPBytes, delta)
	}
	if naive.UserToLSPBytes <= ppgnn.UserToLSPBytes {
		t.Errorf("Naive user→LSP bytes %d not above PPGNN %d",
			naive.UserToLSPBytes, ppgnn.UserToLSPBytes)
	}
	// The OPT answer is ε_2: about 1.5× the ε_1 answer size.
	if opt.LSPToUserBytes <= ppgnn.LSPToUserBytes {
		t.Errorf("OPT answer bytes %d not above PPGNN %d", opt.LSPToUserBytes, ppgnn.LSPToUserBytes)
	}
}

func TestDynamicDatabase(t *testing.T) {
	lsp := testLSP(500)
	rng := rand.New(rand.NewSource(21))
	p := testParams(1, VariantPPGNN)
	p.K = 1
	loc := []geo.Point{{X: 0.5, Y: 0.5}}
	g, err := NewGroup(p, loc, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a POI exactly at the user's location: it must become the top-1.
	lsp.Insert(rtree.Item{ID: 999999, P: geo.Point{X: 0.5, Y: 0.5}})
	res, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Dist(geo.Point{X: 0.5, Y: 0.5}) > 1e-6 {
		t.Fatalf("dynamic insert not reflected: top-1 at %v", res.Points[0])
	}
	// Delete it: the top-1 must change.
	if !lsp.Delete(rtree.Item{ID: 999999, P: geo.Point{X: 0.5, Y: 0.5}}) {
		t.Fatal("delete failed")
	}
	res2, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Points[0].Dist(geo.Point{X: 0.5, Y: 0.5}) < 1e-9 {
		t.Fatal("deleted POI still returned")
	}
}

func TestQueryMsgRoundTrip(t *testing.T) {
	lsp := testLSP(200)
	_ = lsp
	rng := rand.New(rand.NewSource(31))
	for _, variant := range []Variant{VariantPPGNN, VariantOPT, VariantNaive} {
		p := testParams(3, variant)
		g, err := NewGroup(p, randomLocations(rng, 3), rng)
		if err != nil {
			t.Fatal(err)
		}
		var m cost.Meter
		q, locs, err := g.BuildQuery(&m)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := UnmarshalQuery(q.Marshal())
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if q2.Variant != q.Variant || q2.K != q.K || q2.Delta != q.Delta ||
			q2.Theta0 != q.Theta0 || q2.PK.Cmp(q.PK) != 0 ||
			len(q2.V) != len(q.V) || len(q2.V1) != len(q.V1) || len(q2.V2) != len(q.V2) {
			t.Fatalf("%v: query roundtrip mismatch", variant)
		}
		for i := range q.V {
			if q2.V[i].Cmp(q.V[i]) != 0 {
				t.Fatalf("%v: V[%d] mismatch", variant, i)
			}
		}
		for _, lm := range locs {
			lm2, err := UnmarshalLocation(lm.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			if lm2.UserID != lm.UserID || len(lm2.Set) != len(lm.Set) {
				t.Fatal("location roundtrip mismatch")
			}
			for i := range lm.Set {
				if lm2.Set[i] != lm.Set[i] {
					t.Fatal("location point mismatch")
				}
			}
		}
	}
}

func TestAnswerMsgRoundTrip(t *testing.T) {
	lsp := testLSP(500)
	rng := rand.New(rand.NewSource(37))
	p := testParams(2, VariantPPGNN)
	p.NoSanitize = true
	g, err := NewGroup(p, randomLocations(rng, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := lsp.Process(q, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAnswer(ans.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Degree != ans.Degree || len(back.Cts) != len(ans.Cts) {
		t.Fatal("answer roundtrip mismatch")
	}
	// The unmarshaled answer must still decrypt.
	records, err := g.DecryptAnswer(back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records after roundtrip")
	}
}

func TestLSPValidation(t *testing.T) {
	lsp := testLSP(200)
	rng := rand.New(rand.NewSource(41))
	p := testParams(3, VariantPPGNN)
	p.NoSanitize = true
	g, err := NewGroup(p, randomLocations(rng, 3), rng)
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg)
	}{
		{"no locations", func(q QueryMsg, _ []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			return &q, nil
		}},
		{"bad user id", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			bad := *locs[0]
			bad.UserID = 99
			return &q, []*LocationMsg{&bad, locs[1], locs[2]}
		}},
		{"duplicate user id", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			dup := *locs[1]
			dup.UserID = 0
			return &q, []*LocationMsg{locs[0], &dup, locs[2]}
		}},
		{"ragged sets", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			short := *locs[2]
			short.Set = short.Set[:len(short.Set)-1]
			return &q, []*LocationMsg{locs[0], locs[1], &short}
		}},
		{"out of space", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			bad := *locs[0]
			bad.Set = append([]geo.Point(nil), bad.Set...)
			bad.Set[0] = geo.Point{X: 5, Y: 5}
			return &q, []*LocationMsg{&bad, locs[1], locs[2]}
		}},
		{"short indicator", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			q.V = q.V[:len(q.V)-1]
			return &q, locs
		}},
		{"k=0", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			q.K = 0
			return &q, locs
		}},
		{"corrupt partition", func(q QueryMsg, locs []*LocationMsg) (*QueryMsg, []*LocationMsg) {
			q.DBar = append([]int{}, q.DBar...)
			q.DBar[0]++
			return &q, locs
		}},
	}
	for _, c := range cases {
		mq, mlocs := c.mutate(*q, locs)
		if _, err := lsp.Process(mq, mlocs, nil); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// The unmutated query still works.
	if _, err := lsp.Process(q, locs, nil); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestNewGroupValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	good := testParams(2, VariantPPGNN)
	locs := randomLocations(rng, 2)
	cases := []struct {
		name string
		p    Params
		locs []geo.Point
	}{
		{"n=0", func() Params { p := good; p.N = 0; return p }(), locs},
		{"d=1", func() Params { p := good; p.D = 1; return p }(), locs},
		{"delta<d", func() Params { p := good; p.Delta = p.D - 1; return p }(), locs},
		{"k=0", func() Params { p := good; p.K = 0; return p }(), locs},
		{"theta0=0", func() Params { p := good; p.Theta0 = 0; return p }(), locs},
		{"theta0>1", func() Params { p := good; p.Theta0 = 1.5; return p }(), locs},
		{"tiny key", func() Params { p := good; p.KeyBits = 64; return p }(), locs},
		{"wrong locs", good, locs[:1]},
		{"loc outside", good, []geo.Point{{X: 2, Y: 2}, {X: 0.5, Y: 0.5}}},
	}
	for _, c := range cases {
		if _, err := NewGroup(c.p, c.locs, rng); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSingleUserRequiresDeltaEqualsD(t *testing.T) {
	p := testParams(1, VariantPPGNN)
	p.Delta = p.D + 1
	if _, err := NewGroup(p, randomLocations(rand.New(rand.NewSource(1)), 1), nil); err == nil {
		t.Fatal("n=1 with δ≠d accepted")
	}
}

func TestOptimalOmega(t *testing.T) {
	cases := []struct{ dp, want int }{
		{8, 2},   // √(8/2)=2 — the Figure 4 example
		{100, 7}, // √50≈7.07
		{1, 1},
		{2, 1},
		{200, 10},
	}
	for _, c := range cases {
		if got := OptimalOmega(c.dp); got != c.want {
			t.Errorf("OptimalOmega(%d) = %d, want %d", c.dp, got, c.want)
		}
	}
}

// Black-box property (paper Section 1): swap the kGNN engine for an
// arbitrary group query and the protocol still works. Here: a "most
// central POI" query that ignores k ordering beyond centrality.
func TestBlackBoxSearcherSwap(t *testing.T) {
	items := testItems(500)
	lsp := NewLSP(items, geo.UnitRect)
	lsp.Search = func(query []geo.Point, k int, agg gnn.Aggregate) []gnn.Result {
		// A PPMLD-style engine: rank POIs by distance to the group centroid.
		c := geo.Centroid(query)
		return (&gnn.MBM{Tree: lsp.Tree(), Agg: gnn.Sum}).Search([]geo.Point{c}, k)
	}
	rng := rand.New(rand.NewSource(51))
	p := testParams(3, VariantPPGNN)
	p.NoSanitize = true
	locs := randomLocations(rng, 3)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cen := geo.Centroid(locs)
	want := (&gnn.MBM{Tree: lsp.Tree(), Agg: gnn.Sum}).Search([]geo.Point{cen}, p.K)
	for i := range want {
		if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
			t.Fatalf("black-box swap: rank %d mismatch", i)
		}
	}
}

func TestVariantString(t *testing.T) {
	if VariantPPGNN.String() != "PPGNN" || VariantOPT.String() != "PPGNN-OPT" || VariantNaive.String() != "Naive" {
		t.Fatal("Variant.String mismatch")
	}
}

func TestDeltaPrime(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := testParams(4, VariantPPGNN)
	g, err := NewGroup(p, randomLocations(rng, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.DeltaPrime() < p.Delta {
		t.Fatalf("δ' = %d < δ = %d", g.DeltaPrime(), p.Delta)
	}
	pn := testParams(4, VariantNaive)
	gn, err := NewGroup(pn, randomLocations(rng, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	if gn.DeltaPrime() != pn.Delta {
		t.Fatalf("naive δ' = %d, want δ = %d", gn.DeltaPrime(), pn.Delta)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalQuery([]byte{0xff, 0x01}); err == nil {
		t.Error("garbage query accepted")
	}
	if _, err := UnmarshalLocation([]byte{0x01}); err == nil {
		t.Error("garbage location accepted")
	}
	if _, err := UnmarshalAnswer([]byte{0x09}); err == nil {
		t.Error("garbage answer accepted")
	}
}

func TestWorkersParallelSanitation(t *testing.T) {
	lsp := testLSP(1000)
	lsp.Workers = 4
	rng := rand.New(rand.NewSource(71))
	p := testParams(4, VariantPPGNN)
	locs := randomLocations(rng, 4)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic vs sequential: same SanitizeSeed → same answer.
	lsp2 := testLSP(1000)
	lsp2.Workers = 1
	g2, err := NewGroup(p, locs, rand.New(rand.NewSource(71)))
	if err != nil {
		t.Fatal(err)
	}
	// Use a fresh rng with the same seed so the protocol choices repeat.
	g2.Rng = rand.New(rand.NewSource(99))
	g.Rng = rand.New(rand.NewSource(99))
	res2, err := g2.Run(LocalService{LSP: lsp2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res1b, err := g.Run(LocalService{LSP: lsp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if len(res1b.Points) != len(res2.Points) {
		t.Fatalf("parallel vs sequential differ: %d vs %d POIs", len(res1b.Points), len(res2.Points))
	}
	for i := range res1b.Points {
		if res1b.Points[i] != res2.Points[i] {
			t.Fatalf("parallel vs sequential differ at rank %d", i)
		}
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	lsp := testLSP(200)
	lsp.MaxCandidates = 8
	rng := rand.New(rand.NewSource(91))
	p := testParams(3, VariantPPGNN) // δ=12 > cap 8
	p.NoSanitize = true
	g, err := NewGroup(p, randomLocations(rng, 3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(LocalService{LSP: lsp}, nil); err == nil {
		t.Fatal("LSP accepted a query above its candidate cap")
	}
	lsp.MaxCandidates = 0 // default cap is permissive
	if _, err := g.Run(LocalService{LSP: lsp}, nil); err != nil {
		t.Fatalf("default cap rejected a normal query: %v", err)
	}
}

func TestProtocolVersionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	p := testParams(2, VariantPPGNN)
	g, err := NewGroup(p, randomLocations(rng, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw := q.Marshal()
	if _, err := UnmarshalQuery(raw); err != nil {
		t.Fatalf("own version rejected: %v", err)
	}
	raw[0] = 99 // future version
	if _, err := UnmarshalQuery(raw); err == nil {
		t.Fatal("foreign protocol version accepted")
	}
}
