package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
	"ppgnn/internal/parallel"
)

// TestCoalescedSessionsByteIdentical is the ISSUE 10 acceptance pin:
// queries from many concurrent sessions processed through one shared
// Coalescer (width > 1, so tasks from different sessions really mix in
// shared batches) return encrypted answers byte-identical to the same
// queries processed serially on the uncoalesced LSP. Run under -race
// this also hammers the coalescer's slot isolation.
func TestCoalescedSessionsByteIdentical(t *testing.T) {
	lsp := testLSP(1500)
	lsp.Workers = 4
	co := parallel.NewCoalescer(4, parallel.CoalesceOptions{})
	defer co.Close()
	clsp := lsp.WithCoalescer(co)
	if !clsp.Coalesce.Pool().Coalesced() {
		t.Fatal("WithCoalescer copy does not submit to the coalescer")
	}
	if lsp.Coalesce != nil {
		t.Fatal("WithCoalescer mutated the original LSP")
	}

	type session struct {
		q    *QueryMsg
		locs []*LocationMsg
		want *AnswerMsg
	}
	variants := []Variant{
		VariantPPGNN, VariantOPT, VariantNaive,
		VariantPPGNN, VariantOPT, VariantPPGNN,
	}
	sessions := make([]*session, len(variants))
	for i, v := range variants {
		rng := rand.New(rand.NewSource(int64(40 + i)))
		p := testParams(3, v)
		g, err := NewGroup(p, randomLocations(rng, 3), rng)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		q, locs, err := g.BuildQuery(nil)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		want, err := lsp.Process(q, locs, nil)
		if err != nil {
			t.Fatalf("session %d uncoalesced: %v", i, err)
		}
		sessions[i] = &session{q: q, locs: locs, want: want}
	}

	// Replay every session concurrently through the coalesced LSP, a few
	// rounds so size- and deadline-triggered flushes both occur.
	for round := 0; round < 3; round++ {
		got := make([]*AnswerMsg, len(sessions))
		errs := make([]error, len(sessions))
		var wg sync.WaitGroup
		for i, s := range sessions {
			wg.Add(1)
			go func(i int, s *session) {
				defer wg.Done()
				got[i], errs[i] = clsp.Process(s.q, s.locs, nil)
			}(i, s)
		}
		wg.Wait()
		for i, s := range sessions {
			if errs[i] != nil {
				t.Fatalf("round %d session %d: %v", round, i, errs[i])
			}
			if got[i].Degree != s.want.Degree || len(got[i].Cts) != len(s.want.Cts) {
				t.Fatalf("round %d session %d: answer shape (deg %d, %d cts) != (deg %d, %d cts)",
					round, i, got[i].Degree, len(got[i].Cts), s.want.Degree, len(s.want.Cts))
			}
			for j := range s.want.Cts {
				if got[i].Cts[j].Cmp(s.want.Cts[j]) != 0 {
					t.Fatalf("round %d session %d ct %d: coalesced answer differs from uncoalesced", round, i, j)
				}
			}
		}
	}
}

// TestCoalescedShardedLSP runs a sharded LSP through a coalescer: the
// shard fan-out must stay on the per-query pool (no nested coalescer
// submissions to deadlock on) while the selection phases coalesce, and
// answers must match the uncoalesced sharded LSP byte for byte.
func TestCoalescedShardedLSP(t *testing.T) {
	items := testItems(1200)
	lsp := NewIndexedLSP(items, geo.UnitRect, IndexOptions{Shards: 3})
	lsp.Workers = 2
	co := parallel.NewCoalescer(2, parallel.CoalesceOptions{})
	defer co.Close()
	clsp := lsp.WithCoalescer(co)

	rng := rand.New(rand.NewSource(77))
	p := testParams(4, VariantPPGNN)
	g, err := NewGroup(p, randomLocations(rng, 4), rng)
	if err != nil {
		t.Fatal(err)
	}
	q, locs, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lsp.Process(q, locs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := clsp.Process(q, locs, nil)
			if err != nil {
				t.Errorf("coalesced sharded Process: %v", err)
				return
			}
			for j := range want.Cts {
				if got.Cts[j].Cmp(want.Cts[j]) != 0 {
					t.Errorf("ct %d: coalesced sharded answer differs", j)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLSPRerandPools wires a PoolSet into a rerandomizing LSP: answers
// still decrypt to the true result, the pool keyed by the session's
// wire-parsed public key maps onto the pool prefilled under the
// client's own key object (fingerprint keying), and pooled factors are
// actually consumed.
func TestLSPRerandPools(t *testing.T) {
	for _, variant := range []Variant{VariantPPGNN, VariantOPT} {
		lsp := testLSP(1500)
		lsp.Rerandomize = true
		ps := paillier.NewPoolSet(paillier.PoolSetOptions{})
		lsp.RerandPools = ps
		defer ps.Close()

		rng := rand.New(rand.NewSource(5))
		p := testParams(3, variant)
		p.NoSanitize = true
		locs := randomLocations(rng, 3)
		g, err := NewGroup(p, locs, rng)
		if err != nil {
			t.Fatal(err)
		}
		degree := 1
		if variant == VariantOPT {
			degree = 2
		}
		// Prefill under the client's key object; the LSP will look the
		// pool up via the re-parsed wire key.
		pre, err := ps.For(&g.Key.PublicKey, degree)
		if err != nil {
			t.Fatal(err)
		}
		if err := pre.Fill(nil, 32); err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		want := plainAnswer(lsp, locs, p.K, p.Agg)
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("%v rank %d: rerandomized answer %v != %v", variant, i, res.Points[i], want[i].Item.P)
			}
		}
		if pre.Taken() == 0 {
			t.Fatalf("%v: rerandomization consumed no pooled factors", variant)
		}
		if ps.Pools() != 1 {
			t.Fatalf("%v: %d pools, want 1 (wire key must map onto the prefilled pool)", variant, ps.Pools())
		}
	}
}

// TestGroupRefillAndCache runs sustained queries with a background
// refiller and the shared constant cache on the client side: results
// stay exact, the refiller feeds pooled factors to later queries, and
// the cache serves hits after the first query.
func TestGroupRefillAndCache(t *testing.T) {
	lsp := testLSP(1500)
	rng := rand.New(rand.NewSource(12))
	p := testParams(3, VariantPPGNN)
	p.NoSanitize = true
	locs := randomLocations(rng, 3)
	g, err := NewGroup(p, locs, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.EncCache = paillier.NewEncCache(256)
	stop, err := g.StartRefill(paillier.RefillerOptions{
		Min: 32, Interval: time.Millisecond, MaxChunk: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Let the refiller reach its floor before querying, so the queries
	// observably draw pooled factors.
	for deadline := time.Now().Add(10 * time.Second); g.pre1.Size() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("refiller never filled the pool")
		}
		time.Sleep(time.Millisecond)
	}
	want := plainAnswer(lsp, locs, p.K, p.Agg)
	for round := 0; round < 3; round++ {
		res, err := g.Run(LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range want {
			if res.Points[i].Dist(want[i].Item.P) > 1e-6 {
				t.Fatalf("round %d rank %d: %v != %v", round, i, res.Points[i], want[i].Item.P)
			}
		}
	}
	if g.EncCache.Len() == 0 {
		t.Fatal("indicator encryptions never populated the constant cache")
	}
	if g.pre1.Taken() == 0 {
		t.Fatal("refilled pool was never drawn from")
	}
	// Stop is idempotent and the group keeps working afterwards.
	stop()
	if _, err := g.Run(LocalService{LSP: lsp}, nil); err != nil {
		t.Fatal(err)
	}
}
