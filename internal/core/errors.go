package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Transport error classification. A PPGNN query session is idempotent on
// the LSP side — the server holds no per-session state once a session
// aborts, and answering the same (query, locations) pair twice leaks
// nothing the first answer did not (the LSP already sees the full
// d-anonymous view; see DESIGN.md "Transport reliability"). Resending a
// session from scratch is therefore always safe, and the only question a
// client must answer after a failure is whether a retry can possibly
// succeed:
//
//   - retryable: the network ate the session (dial failure, connection
//     reset, timeout before the answer arrived) or the server shed load.
//     A fresh connection and a resend may well succeed.
//   - protocol-fatal: the server examined the query and rejected it
//     (malformed frame, bad parameters, incompatible version). The same
//     bytes will be rejected again; retrying only burns ciphertexts.

// RemoteError is a server-side rejection carried in a FrameError frame.
// It is protocol-fatal except for the well-known load-shedding and drain
// messages, which signal a transient server condition rather than a
// defect in the query.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "core: server rejected query: " + e.Msg }

// FrameError payloads with transport-level meaning. Servers send these
// verbatim (optionally suffixed with a retry-after hint, see BusyReply);
// clients match them by prefix to classify the rejection as transient.
const (
	// BusyMessage sheds load when the server is at its connection limit
	// or its admission gate rejects the session.
	BusyMessage = "server at capacity"
	// DrainingMessage rejects new sessions while the server drains.
	DrainingMessage = "server draining"
)

// retryAfterSep separates a shed message from its optional retry-after
// hint: "server at capacity; retry-after=120ms". Old clients that compare
// whole strings simply see an unknown (hence non-retryable) message, so
// the hint is only attached by servers that know their clients prefix-
// match — which every Pool in this module does.
const retryAfterSep = "; retry-after="

// BusyReply renders the load-shedding FrameError payload, carrying the
// server's suggested retry-after as a wire hint when positive.
func BusyReply(retryAfter time.Duration) string {
	if retryAfter <= 0 {
		return BusyMessage
	}
	return BusyMessage + retryAfterSep + retryAfter.String()
}

// IsBusyMessage reports whether a FrameError payload is a load shed,
// with or without a retry-after suffix.
func IsBusyMessage(msg string) bool {
	return msg == BusyMessage || strings.HasPrefix(msg, BusyMessage+retryAfterSep)
}

// IsDrainingMessage reports whether a FrameError payload is a drain
// rejection.
func IsDrainingMessage(msg string) bool {
	return msg == DrainingMessage || strings.HasPrefix(msg, DrainingMessage+retryAfterSep)
}

// RetryAfter returns the server-suggested backoff carried in the
// rejection, if any. Malformed hints are ignored — the message stays a
// valid transient rejection either way.
func (e *RemoteError) RetryAfter() (time.Duration, bool) {
	i := strings.Index(e.Msg, retryAfterSep)
	if i < 0 {
		return 0, false
	}
	d, err := time.ParseDuration(e.Msg[i+len(retryAfterSep):])
	if err != nil || d <= 0 {
		return 0, false
	}
	return d, true
}

// RetryAfterHint extracts the server-suggested backoff from anywhere in
// err's chain (a *RemoteError behind retry-loop wrapping included).
func RetryAfterHint(err error) (time.Duration, bool) {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.RetryAfter()
	}
	return 0, false
}

// transient reports whether the rejection is a server condition a retry
// (possibly against another replica) can outlast.
func (e *RemoteError) transient() bool {
	return IsBusyMessage(e.Msg) || IsDrainingMessage(e.Msg)
}

// Group-session error taxonomy (internal/group). The quorum session
// manager runs the intra-group phases of Algorithm 1 against n
// independent member endpoints; its failures divide the same way the
// transport's do:
//
//   - per-member transient: a member's link ate one exchange (timeout,
//     reset, dial failure). The session retries that member with backoff;
//     the error never escapes the session.
//   - ErrBadContribution: a member sent something provably wrong (set
//     size mismatch, out-of-space point, out-of-range decryption share,
//     equivocating resubmission). Fatal for that member — it is ejected
//     and never retried (the same member would just lie again) — but not
//     for the session, which continues if a quorum survives.
//   - ErrQuorumLost: fewer than t members remain reachable and honest.
//     Fatal for the session and NOT retryable: an immediate resend would
//     face the same dead members. Callers decide whether to re-run later
//     with a recovered roster.

// ErrQuorumLost reports that a group session lost so many members that no
// t-quorum can complete it. Match with errors.Is.
var ErrQuorumLost = errors.New("core: quorum lost")

// ErrBadContribution reports a malformed, duplicate, or equivocating
// member contribution. Match with errors.Is.
var ErrBadContribution = errors.New("core: bad member contribution")

// QuorumError carries the roster arithmetic behind an ErrQuorumLost.
type QuorumError struct {
	Phase string // session phase that lost the quorum ("contribute", "decrypt")
	Need  int    // quorum t
	Have  int    // members still reachable and honest
	Total int    // original group size n
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("core: quorum lost during %s: %d of %d members alive, need %d",
		e.Phase, e.Have, e.Total, e.Need)
}

// Is makes errors.Is(err, ErrQuorumLost) match.
func (e *QuorumError) Is(target error) bool { return target == ErrQuorumLost }

// ContributionError identifies the member behind an ErrBadContribution
// and why it was ejected.
type ContributionError struct {
	Member int // member index (0 = coordinator)
	Reason string
}

func (e *ContributionError) Error() string {
	return fmt.Sprintf("core: bad contribution from member %d: %s", e.Member, e.Reason)
}

// Is makes errors.Is(err, ErrBadContribution) match.
func (e *ContributionError) Is(target error) bool { return target == ErrBadContribution }

// retryableError marks a network-level failure that occurred before any
// answer byte arrived, so a resend-from-scratch is safe.
type retryableError struct {
	err error
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable marks err as safe to retry with a fresh connection. It
// returns nil for a nil err.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (anywhere in its chain) is a transient
// failure a fault-tolerant client should resend the session for.
func IsRetryable(err error) bool {
	var r *retryableError
	if errors.As(err, &r) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.transient()
	}
	return false
}
