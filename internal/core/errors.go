package core

import "errors"

// Transport error classification. A PPGNN query session is idempotent on
// the LSP side — the server holds no per-session state once a session
// aborts, and answering the same (query, locations) pair twice leaks
// nothing the first answer did not (the LSP already sees the full
// d-anonymous view; see DESIGN.md "Transport reliability"). Resending a
// session from scratch is therefore always safe, and the only question a
// client must answer after a failure is whether a retry can possibly
// succeed:
//
//   - retryable: the network ate the session (dial failure, connection
//     reset, timeout before the answer arrived) or the server shed load.
//     A fresh connection and a resend may well succeed.
//   - protocol-fatal: the server examined the query and rejected it
//     (malformed frame, bad parameters, incompatible version). The same
//     bytes will be rejected again; retrying only burns ciphertexts.

// RemoteError is a server-side rejection carried in a FrameError frame.
// It is protocol-fatal except for the well-known load-shedding and drain
// messages, which signal a transient server condition rather than a
// defect in the query.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "core: server rejected query: " + e.Msg }

// FrameError payloads with transport-level meaning. Servers send these
// verbatim; clients match them to classify the rejection as transient.
const (
	// BusyMessage sheds load when the server is at its connection limit.
	BusyMessage = "server at capacity"
	// DrainingMessage rejects new sessions while the server drains.
	DrainingMessage = "server draining"
)

// transient reports whether the rejection is a server condition a retry
// (possibly against another replica) can outlast.
func (e *RemoteError) transient() bool {
	return e.Msg == BusyMessage || e.Msg == DrainingMessage
}

// retryableError marks a network-level failure that occurred before any
// answer byte arrived, so a resend-from-scratch is safe.
type retryableError struct {
	err error
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable marks err as safe to retry with a fresh connection. It
// returns nil for a nil err.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (anywhere in its chain) is a transient
// failure a fault-tolerant client should resend the session for.
func IsRetryable(err error) bool {
	var r *retryableError
	if errors.As(err, &r) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.transient()
	}
	return false
}
