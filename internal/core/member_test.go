package core

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
	"ppgnn/internal/wire"
)

func testSpace() geo.Rect {
	return geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}}
}

func TestContribRequestRoundTrip(t *testing.T) {
	req := &ContribRequest{Session: 42, Round: 1, Slot: 3, Pos: 2, SetSize: 5, Space: testSpace()}
	got, err := UnmarshalContribRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Fatalf("round trip: got %+v, want %+v", got, req)
	}
	// Hostile variants the decoder must reject.
	for name, bad := range map[string]*ContribRequest{
		"pos out of range": {Session: 1, SetSize: 3, Pos: 3, Space: testSpace()},
		"empty set":        {Session: 1, SetSize: 0, Space: testSpace()},
		"degenerate space": {Session: 1, SetSize: 3, Pos: 0},
	} {
		if _, err := UnmarshalContribRequest(bad.Marshal()); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestContributionRoundTripAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	req := &ContribRequest{Session: 9, Round: 2, Slot: 1, Pos: 0, SetSize: 4, Space: testSpace()}
	c := &ContributionMsg{Session: 9, Round: 2, Slot: 1, Set: make([]geo.Point, 4)}
	for i := range c.Set {
		c.Set[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	got, err := UnmarshalContribution(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != c.Session || got.Round != c.Round || got.Slot != c.Slot || len(got.Set) != len(c.Set) {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
	for i := range c.Set {
		if got.Set[i] != c.Set[i] {
			t.Fatalf("set[%d]: got %v, want %v", i, got.Set[i], c.Set[i])
		}
	}
	if err := got.Validate(req); err != nil {
		t.Fatalf("valid contribution rejected: %v", err)
	}
	lm := got.LocationMsg()
	if lm.UserID != 1 || len(lm.Set) != 4 {
		t.Fatalf("LocationMsg conversion: %+v", lm)
	}

	for name, mutate := range map[string]func(*ContributionMsg){
		"wrong session": func(m *ContributionMsg) { m.Session = 8 },
		"wrong round":   func(m *ContributionMsg) { m.Round = 1 },
		"wrong slot":    func(m *ContributionMsg) { m.Slot = 2 },
		"short set":     func(m *ContributionMsg) { m.Set = m.Set[:3] },
		"out of space":  func(m *ContributionMsg) { m.Set[2] = geo.Point{X: -5, Y: 3} },
	} {
		bad := &ContributionMsg{Session: c.Session, Round: c.Round, Slot: c.Slot, Set: append([]geo.Point(nil), c.Set...)}
		mutate(bad)
		if err := bad.Validate(req); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestPartialRoundTripAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tk, shares, err := paillier.GenerateThresholdKey(rng, 192, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	kb := (tk.PublicKey.N.BitLen() + 7) / 8
	degree := 1
	mod := tk.NS(degree + 1)
	cts := make([]*big.Int, 3)
	for i := range cts {
		cts[i] = new(big.Int).Rand(rng, mod)
	}
	req := &PartialRequest{Session: 5, Round: 0, Degree: degree, KeyBytes: kb, Cts: cts}
	gotReq, err := UnmarshalPartialRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.Session != 5 || gotReq.Degree != degree || gotReq.KeyBytes != kb || len(gotReq.Cts) != 3 {
		t.Fatalf("request round trip: %+v", gotReq)
	}
	for i := range cts {
		if gotReq.Cts[i].Cmp(cts[i]) != 0 {
			t.Fatalf("ct[%d] mangled", i)
		}
	}

	sh := make([]*big.Int, 3)
	for i := range sh {
		sh[i] = new(big.Int).Rand(rng, mod)
		sh[i].Add(sh[i], big.NewInt(1)) // keep in [1, N^(s+1))
		if sh[i].Cmp(mod) >= 0 {
			sh[i].Sub(sh[i], big.NewInt(1))
		}
	}
	pm := &PartialMsg{Session: 5, Round: 0, Index: shares[1].Index, Degree: degree, KeyBytes: kb, Shares: sh}
	gotPm, err := UnmarshalPartial(pm.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gotPm.Index != pm.Index || len(gotPm.Shares) != 3 {
		t.Fatalf("partial round trip: %+v", gotPm)
	}
	if err := gotPm.Validate(req, pm.Index, tk); err != nil {
		t.Fatalf("valid partial rejected: %v", err)
	}

	for name, mutate := range map[string]func(*PartialMsg){
		"wrong session":     func(m *PartialMsg) { m.Session = 6 },
		"wrong round":       func(m *PartialMsg) { m.Round = 1 },
		"wrong degree":      func(m *PartialMsg) { m.Degree = 2 },
		"wrong index":       func(m *PartialMsg) { m.Index++ },
		"share count":       func(m *PartialMsg) { m.Shares = m.Shares[:2] },
		"zero share":        func(m *PartialMsg) { m.Shares[0] = big.NewInt(0) },
		"oversize share":    func(m *PartialMsg) { m.Shares[1] = new(big.Int).Set(mod) },
		"negative-ish huge": func(m *PartialMsg) { m.Shares[2] = new(big.Int).Lsh(mod, 1) },
	} {
		bad := &PartialMsg{Session: pm.Session, Round: pm.Round, Index: pm.Index, Degree: pm.Degree,
			KeyBytes: pm.KeyBytes, Shares: append([]*big.Int(nil), pm.Shares...)}
		mutate(bad)
		if err := bad.Validate(req, pm.Index, tk); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestPartialDecodersRejectHostileInput(t *testing.T) {
	// A hostile count prefix must not force a giant allocation.
	huge := &PartialRequest{Session: 1, Round: 0, Degree: 1, KeyBytes: 24, Cts: nil}
	b := huge.Marshal()
	b[len(b)-1] = 0xFF // count varint continuation: now truncated/hostile
	if _, err := UnmarshalPartialRequest(b); err == nil {
		t.Error("hostile count decoded")
	}
	if _, err := UnmarshalPartialRequest(nil); err == nil {
		t.Error("empty request decoded")
	}
	if _, err := UnmarshalPartial([]byte{0x01, 0x00, 0x01}); err == nil {
		t.Error("truncated partial decoded")
	}
	// Degree beyond MaxS must be rejected before the vector is read.
	bad := &PartialMsg{Session: 1, Degree: paillier.MaxS + 1, KeyBytes: 1, Index: 1,
		Shares: []*big.Int{big.NewInt(1)}}
	if _, err := UnmarshalPartial(bad.Marshal()); err == nil ||
		!strings.Contains(err.Error(), "degree") {
		t.Errorf("oversized degree: %v", err)
	}
	// Degree/KeyBytes/count chosen so count × (Degree+1)·KeyBytes wraps
	// negative (2^30 × 2^33 = 2^63): a tiny frame must not buy a multi-GB
	// allocation via integer overflow in the size arithmetic.
	var w wire.Writer
	w.Uvarint(1)       // session
	w.Uvarint(0)       // round
	w.Uvarint(7)       // degree → element width (7+1)·KeyBytes
	w.Uvarint(1 << 30) // KeyBytes
	w.Uvarint(1 << 30) // element count
	if _, err := UnmarshalPartialRequest(w.Bytes()); err == nil {
		t.Error("overflowing request geometry decoded")
	}
	var w2 wire.Writer
	w2.Uvarint(1)       // session
	w2.Uvarint(0)       // round
	w2.Uvarint(2)       // share index
	w2.Uvarint(7)       // degree
	w2.Uvarint(1 << 30) // KeyBytes
	w2.Uvarint(1 << 30) // element count
	if _, err := UnmarshalPartial(w2.Bytes()); err == nil {
		t.Error("overflowing partial geometry decoded")
	}
}
