package core

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
)

// Precomputed randomness must not change answers, must drain the pool, and
// must shift encryption work offline (the enc1 vs enc1-pooled op counters).
func TestGroupPrecompute(t *testing.T) {
	lsp := testLSP(1500)
	for _, variant := range []Variant{VariantPPGNN, VariantOPT} {
		p := testParams(3, variant)
		p.NoSanitize = true
		locs := randomLocations(rand.New(rand.NewSource(3)), 3)

		plain, err := NewGroup(p, locs, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		resPlain, err := plain.Run(LocalService{LSP: lsp}, nil)
		if err != nil {
			t.Fatal(err)
		}

		pooled, err := NewGroup(p, locs, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pooled.Precompute(pooled.DeltaPrime() + 8); err != nil {
			t.Fatal(err)
		}
		var m cost.Meter
		resPooled, err := pooled.Run(LocalService{LSP: lsp, Meter: &m}, &m)
		if err != nil {
			t.Fatal(err)
		}

		if len(resPlain.Points) != len(resPooled.Points) {
			t.Fatalf("%v: pooled answer length differs", variant)
		}
		for i := range resPlain.Points {
			if resPlain.Points[i] != resPooled.Points[i] {
				t.Fatalf("%v: pooled answer differs at rank %d", variant, i)
			}
		}
		ops := m.Snapshot().Ops
		if ops["enc1-pooled"] == 0 {
			t.Fatalf("%v: no pooled encryptions recorded: %v", variant, ops)
		}
		if ops["enc1"] != 0 {
			t.Fatalf("%v: %d online ε1 encryptions despite a filled pool", variant, ops["enc1"])
		}
		if variant == VariantOPT && ops["enc2-pooled"] == 0 {
			t.Fatalf("OPT: no pooled ε2 encryptions: %v", ops)
		}
	}
}

// An underfilled pool falls back to online encryption mid-vector without
// corrupting the query.
func TestGroupPrecomputePartialPool(t *testing.T) {
	lsp := testLSP(800)
	p := testParams(2, VariantPPGNN)
	p.NoSanitize = true
	locs := randomLocations(rand.New(rand.NewSource(4)), 2)
	g, err := NewGroup(p, locs, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Precompute(3); err != nil { // far fewer than δ'
		t.Fatal(err)
	}
	var m cost.Meter
	res, err := g.Run(LocalService{LSP: lsp, Meter: &m}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty answer")
	}
	ops := m.Snapshot().Ops
	if ops["enc1-pooled"] != 3 {
		t.Fatalf("pooled count %d, want 3", ops["enc1-pooled"])
	}
	if ops["enc1"] != int64(g.DeltaPrime()-3) {
		t.Fatalf("online count %d, want %d", ops["enc1"], g.DeltaPrime()-3)
	}
}
