package core

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"ppgnn/internal/cost"
	"ppgnn/internal/obs"
)

// Per-query trace plumbing (DESIGN.md §9): FrameTrace marshalling, the
// optional TracedService interface, and the LSP-side trace attributes.
// Everything here degrades to a no-op on an untraced context, so
// tracing never changes protocol behaviour — only what the flight
// recorder retains.

// traceIDLen is the FrameTrace payload length: one big-endian uint64.
const traceIDLen = 8

// MarshalTraceID encodes a trace id as a FrameTrace payload.
func MarshalTraceID(id obs.TraceID) []byte {
	b := make([]byte, traceIDLen)
	binary.BigEndian.PutUint64(b, uint64(id))
	return b
}

// UnmarshalTraceID decodes a FrameTrace payload. A malformed or zero
// payload is an error: a peer that sends the frame must mean it.
func UnmarshalTraceID(b []byte) (obs.TraceID, error) {
	if len(b) != traceIDLen {
		return 0, fmt.Errorf("core: trace frame payload %d bytes, want %d", len(b), traceIDLen)
	}
	id := obs.TraceID(binary.BigEndian.Uint64(b))
	if id == 0 {
		return 0, fmt.Errorf("core: zero trace id")
	}
	return id, nil
}

// TracedService is the optional extension of Service for
// implementations that can attribute their work to a caller-supplied
// trace: transport clients propagate the id on the wire, LocalService
// annotates the LSP spans directly. Callers type-assert and fall back
// to Process, so Service implementors never need to know about traces.
type TracedService interface {
	Service
	ProcessTraced(tc obs.TraceContext, q *QueryMsg, locs []*LocationMsg) (*AnswerMsg, error)
}

// ProcessMaybeTraced dispatches to ProcessTraced when svc supports it
// and the context carries a trace, and to plain Process otherwise.
func ProcessMaybeTraced(svc Service, tc obs.TraceContext, q *QueryMsg, locs []*LocationMsg) (*AnswerMsg, error) {
	if ts, ok := svc.(TracedService); ok && tc.Traced() {
		return ts.ProcessTraced(tc, q, locs)
	}
	return svc.Process(q, locs)
}

// CandidateCount returns the candidate-query count δ' the query
// implies, mirroring the LSP's candidate materialization without
// running it. Trace attributes bucket this value; it never enters a
// trace raw.
func (q *QueryMsg) CandidateCount() int {
	if q.Variant == VariantNaive {
		return q.Delta
	}
	deltaPrime := 0
	alpha := len(q.NBar)
	for _, di := range q.DBar {
		deltaPrime += intPow(di, alpha)
	}
	return deltaPrime
}

// resolvedWorkers maps the Workers knob to the effective pool width
// (the same resolution LSP.pool applies).
func (l *LSP) resolvedWorkers() int {
	switch {
	case l.Workers == 0:
		return 1
	case l.Workers < 0:
		return runtime.GOMAXPROCS(0)
	}
	return l.Workers
}

// annotateTrace attaches the LSP-side closed bucket attributes — worker
// width and candidate count — to the query's trace span.
func (l *LSP) annotateTrace(tc obs.TraceContext, q *QueryMsg) {
	if !tc.Traced() {
		return
	}
	tc.Span.SetAttr("workers", obs.CountBucketLabel(l.resolvedWorkers()))
	tc.Span.SetAttr("candidates", obs.CountBucketLabel(q.CandidateCount()))
	tc.Span.SetAttr("shards", obs.CountBucketLabel(l.ShardCount()))
	// A server-wide mode bit, never a per-query datum: whether this
	// query's homomorphic batches rode the shared coalescer.
	coalesced := "off"
	if l.Coalesce != nil {
		coalesced = "on"
	}
	tc.Span.SetAttr("coalesced", coalesced)
}

// ProcessTraced runs Process and annotates the trace span with the
// LSP-side attributes. The paillier batch work under Process (the
// candidate fan-out and the homomorphic selection) is attributed to the
// same span via its worker-width and candidate-count buckets.
func (l *LSP) ProcessTraced(tc obs.TraceContext, q *QueryMsg, locs []*LocationMsg, meter *cost.Meter) (*AnswerMsg, error) {
	l.annotateTrace(tc, q)
	return l.Process(q, locs, meter)
}

// ProcessTraced implements TracedService for the in-process adapter.
func (s LocalService) ProcessTraced(tc obs.TraceContext, q *QueryMsg, locs []*LocationMsg) (*AnswerMsg, error) {
	return s.LSP.ProcessTraced(tc, q, locs, s.Meter)
}

var _ TracedService = LocalService{}
