package core

import (
	"math/rand"
	"testing"

	"ppgnn/internal/attack"
	"ppgnn/internal/geo"
)

// CacheSets: repeated queries present the LSP with identical location sets
// (defeating the multi-query intersection attack of internal/attack), yet
// the encrypted indicators are fresh and answers stay correct.
func TestCacheSetsStableAcrossQueries(t *testing.T) {
	lsp := testLSP(1000)
	for _, variant := range []Variant{VariantPPGNN, VariantNaive} {
		p := testParams(3, variant)
		p.NoSanitize = true
		locs := randomLocations(rand.New(rand.NewSource(1)), 3)
		g, err := NewGroup(p, locs, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		g.CacheSets = true

		var observedSets [][]geo.Point
		var firstV []string
		var answers [][]geo.Point
		for q := 0; q < 4; q++ {
			msg, lms, err := g.BuildQuery(nil)
			if err != nil {
				t.Fatal(err)
			}
			observedSets = append(observedSets, append([]geo.Point(nil), lms[0].Set...))
			// Indicator ciphertexts must be fresh every query.
			var vs []string
			for _, c := range msg.V {
				vs = append(vs, c.String())
			}
			if firstV == nil {
				firstV = vs
			} else {
				same := true
				for i := range vs {
					if vs[i] != firstV[i] {
						same = false
						break
					}
				}
				if same {
					t.Fatalf("%v: indicator ciphertexts repeated across queries", variant)
				}
			}
			ans, err := lsp.Process(msg, lms, nil)
			if err != nil {
				t.Fatal(err)
			}
			recs, err := g.DecryptAnswer(ans, nil)
			if err != nil {
				t.Fatal(err)
			}
			pts := make([]geo.Point, len(recs))
			for i, r := range recs {
				pts[i] = r.Point(p.Space)
			}
			answers = append(answers, pts)
		}
		// All observed sets identical → intersection attack learns nothing
		// beyond the original d-anonymity.
		surv := attack.Intersection(observedSets, 1e-9)
		wantD := p.D
		if variant == VariantNaive {
			wantD = p.Delta
		}
		if len(surv) != wantD {
			t.Fatalf("%v: intersection left %d candidates, want full anonymity %d", variant, len(surv), wantD)
		}
		// Answers identical across queries (same real query, same database).
		for q := 1; q < len(answers); q++ {
			if len(answers[q]) != len(answers[0]) {
				t.Fatalf("%v: answer %d length changed", variant, q)
			}
			for i := range answers[q] {
				if answers[q][i] != answers[0][i] {
					t.Fatalf("%v: answer %d differs at rank %d", variant, q, i)
				}
			}
		}
	}
}

// Without caching, fresh dummies leak: the intersection shrinks toward the
// real location (the attack the cache defends against).
func TestNoCacheLeaksUnderIntersection(t *testing.T) {
	p := testParams(2, VariantPPGNN)
	locs := randomLocations(rand.New(rand.NewSource(3)), 2)
	g, err := NewGroup(p, locs, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	var observed [][]geo.Point
	for q := 0; q < 5; q++ {
		_, lms, err := g.BuildQuery(nil)
		if err != nil {
			t.Fatal(err)
		}
		observed = append(observed, append([]geo.Point(nil), lms[0].Set...))
	}
	surv := attack.Intersection(observed, 1e-9)
	if len(surv) != 1 || surv[0] != locs[0] {
		t.Fatalf("expected the intersection attack to isolate the real location, got %v", surv)
	}
}

func TestInvalidateCache(t *testing.T) {
	p := testParams(2, VariantPPGNN)
	locs := randomLocations(rand.New(rand.NewSource(5)), 2)
	g, err := NewGroup(p, locs, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	g.CacheSets = true
	_, first, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	g.InvalidateCache()
	_, second, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first[0].Set {
		if first[0].Set[i] != second[0].Set[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("InvalidateCache did not refresh the location sets")
	}
}

// Rerandomized answers decrypt identically but differ as ciphertexts across
// runs of the same query.
func TestLSPRerandomize(t *testing.T) {
	lsp := testLSP(800)
	lsp.Rerandomize = true
	p := testParams(2, VariantPPGNN)
	p.NoSanitize = true
	locs := randomLocations(rand.New(rand.NewSource(7)), 2)
	g, err := NewGroup(p, locs, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	g.CacheSets = true
	msg, lms, err := g.BuildQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := lsp.Process(msg, lms, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := lsp.Process(msg, lms, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cts[0].Cmp(a2.Cts[0]) == 0 {
		t.Fatal("rerandomization did not change the answer ciphertext")
	}
	r1, err := g.DecryptAnswer(a1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.DecryptAnswer(a2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("rerandomized answers decode differently")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rerandomized answer differs at %d", i)
		}
	}
	// Control: without rerandomization the same query yields the same
	// ciphertext (the deterministic-selection linkability being defended).
	lsp.Rerandomize = false
	b1, _ := lsp.Process(msg, lms, nil)
	b2, _ := lsp.Process(msg, lms, nil)
	if b1.Cts[0].Cmp(b2.Cts[0]) != 0 {
		t.Fatal("deterministic selection expected identical ciphertexts")
	}
}
