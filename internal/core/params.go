// Package core implements the PPGNN protocol — the paper's primary
// contribution. It contains the three protocol variants:
//
//   - PPGNN (Section 4.2): location sets of size d, partition-parameter
//     candidate generation, a single ε_1 encrypted indicator vector of
//     length δ', and one homomorphic private selection on the LSP.
//   - PPGNN-OPT (Section 6): the indicator is factored into [v1] (ε_1,
//     length ⌈δ'/ω⌉) and [[v2]] (ε_2, length ω ≈ √(δ'/2)), and the LSP
//     runs a two-phase private selection, cutting user communication and
//     computation from O(δ') to O(√δ').
//   - Naive (Section 4): every user sends δ locations with the real one at
//     a shared position; no partitioning.
//
// The client side (Group) implements query generation (Algorithm 1) and
// answer decryption; the server side (LSP) implements query processing
// (Algorithm 2) including the answer sanitation of Section 5. The two
// halves communicate through explicit, byte-counted messages so the
// experiments can reproduce the paper's communication-cost figures.
package core

import (
	"fmt"

	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/sanitize"
)

// Variant selects the protocol flavour.
type Variant int

const (
	// VariantPPGNN is the base protocol of Section 4.2.
	VariantPPGNN Variant = iota
	// VariantOPT is the optimized protocol of Section 6.
	VariantOPT
	// VariantNaive is the strawman at the start of Section 4: every user
	// sends δ (not d) locations, aligned at a common position.
	VariantNaive
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantPPGNN:
		return "PPGNN"
	case VariantOPT:
		return "PPGNN-OPT"
	case VariantNaive:
		return "Naive"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Params collects the protocol parameters of Table 3 plus implementation
// knobs. The zero value is not valid; start from DefaultParams.
type Params struct {
	N      int     // group size n ≥ 1
	D      int     // Privacy I anonymity parameter d > 1
	Delta  int     // Privacy II anonymity parameter δ ≥ d
	K      int     // POIs to retrieve
	Theta0 float64 // Privacy IV parameter θ0 ∈ (0,1]

	KeyBits int           // Paillier modulus size (paper: 1024)
	Agg     gnn.Aggregate // aggregate F (paper default: sum)
	Space   geo.Rect      // normalized location space

	// ShortRandBits, when > 0, enables the short-exponent encryption
	// randomness mode (paillier.Options.ShortRandBits) on the group's
	// key: randomness factors come from a fixed-base power table instead
	// of a full-width exponentiation. Answers are identical; the
	// semantic-security assumption changes (see SECURITY.md), which is
	// why 0 — the paper-faithful full-width mode — is the default.
	ShortRandBits int

	// Hypothesis-testing parameters (Section 5.3); zero means the paper
	// defaults γ=0.05, η=0.2, φ=0.1.
	Gamma, Eta, Phi float64

	// IncludeIDs adds POI identifiers to the returned records (the paper
	// returns coordinates only).
	IncludeIDs bool

	Variant Variant
	// NoSanitize disables answer sanitation — the PPGNN-NAS configuration
	// of Section 8.3.2 that assumes no user collusion.
	NoSanitize bool
}

// Defaults from Table 3.
const (
	DefaultD       = 25
	DefaultDelta   = 100
	DefaultK       = 8
	DefaultN       = 8
	DefaultTheta0  = 0.05
	DefaultKeyBits = 1024
)

// DefaultParams returns the paper's default parameterization (Table 3) for
// a group of n users. For n = 1 the Privacy II parameter collapses to
// δ = d (Section 3).
func DefaultParams(n int) Params {
	p := Params{
		N:       n,
		D:       DefaultD,
		Delta:   DefaultDelta,
		K:       DefaultK,
		Theta0:  DefaultTheta0,
		KeyBits: DefaultKeyBits,
		Agg:     gnn.Sum,
		Space:   geo.UnitRect,
	}
	if n == 1 {
		p.Delta = p.D
	}
	return p
}

// withDefaults fills the hypothesis-testing defaults.
func (p Params) withDefaults() Params {
	if p.Gamma == 0 {
		p.Gamma = sanitize.DefaultGamma
	}
	if p.Eta == 0 {
		p.Eta = sanitize.DefaultEta
	}
	if p.Phi == 0 {
		p.Phi = sanitize.DefaultPhi
	}
	if !p.Space.Valid() || p.Space.Area() == 0 {
		p.Space = geo.UnitRect
	}
	return p
}

// Validate checks the parameter ranges of Definition 2.2 and Table 3.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("core: group size n=%d < 1", p.N)
	}
	if p.D < 2 {
		return fmt.Errorf("core: Privacy I requires d > 1, got %d", p.D)
	}
	if p.Delta < p.D {
		return fmt.Errorf("core: Privacy II requires δ ≥ d, got δ=%d d=%d", p.Delta, p.D)
	}
	if p.N == 1 && p.Delta != p.D {
		return fmt.Errorf("core: single-user query requires δ = d, got δ=%d d=%d", p.Delta, p.D)
	}
	if p.K < 1 {
		return fmt.Errorf("core: k=%d < 1", p.K)
	}
	if p.Theta0 <= 0 || p.Theta0 > 1 {
		return fmt.Errorf("core: θ0=%v outside (0,1]", p.Theta0)
	}
	if p.KeyBits < 128 {
		return fmt.Errorf("core: key size %d bits too small", p.KeyBits)
	}
	if p.ShortRandBits != 0 && (p.ShortRandBits < 16 || p.ShortRandBits >= p.KeyBits) {
		return fmt.Errorf("core: ShortRandBits=%d outside [16, KeyBits)", p.ShortRandBits)
	}
	if p.Variant < VariantPPGNN || p.Variant > VariantNaive {
		return fmt.Errorf("core: unknown variant %d", p.Variant)
	}
	return nil
}
