package core

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"ppgnn/internal/cost"
	"ppgnn/internal/encode"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
)

// Threshold mode removes the protocol's residual trust point. In the base
// protocol the coordinator alone holds the Paillier secret key, so u_c
// decrypts the answer before anyone else and a compromised u_c could
// decrypt arbitrary intercepted ciphertexts. With a (t, n)-threshold key
// (Damgård–Jurik Section 4.1, internal/paillier/threshold.go), every user
// holds one key share and any t of them must cooperate per decryption; the
// LSP side of the protocol is completely unchanged — it only ever sees the
// public modulus.

// ThresholdGroup is a Group whose answer decryption requires T of the N
// users to cooperate.
type ThresholdGroup struct {
	Group
	TK     *paillier.ThresholdKey
	Shares []*paillier.KeyShare // share i belongs to user i
	T      int
}

// NewThresholdGroup builds a group with a (t, n)-threshold key. Key
// generation uses safe primes and is noticeably slower than NewGroup
// (recorded in KeygenTime). In deployment the dealer role is played by a
// distributed key generation; here the coordinator deals and forgets.
func NewThresholdGroup(p Params, locations []geo.Point, rng *rand.Rand, t int) (*ThresholdGroup, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N < 2 {
		return nil, fmt.Errorf("core: threshold mode needs n ≥ 2, got %d", p.N)
	}
	if t < 2 || t > p.N {
		return nil, fmt.Errorf("core: threshold t=%d outside [2,%d]", t, p.N)
	}
	sMax := 1
	if p.Variant == VariantOPT {
		sMax = 2
	}
	start := time.Now()
	tk, shares, err := paillier.GenerateThresholdKey(nil, p.KeyBits, p.N, t, sMax)
	if err != nil {
		return nil, fmt.Errorf("core: threshold keygen: %w", err)
	}
	if p.ShortRandBits > 0 {
		if err := tk.SetOptions(paillier.Options{ShortRandBits: p.ShortRandBits}); err != nil {
			return nil, fmt.Errorf("core: enabling short-exponent randomness: %w", err)
		}
	}
	keygen := time.Since(start)

	// Build the underlying group, then point its indicator encryption at
	// the threshold modulus. (The base group's own key pair goes unused in
	// threshold mode; it merely keeps the Group invariants intact.)
	g, err := NewGroup(p, locations, rng)
	if err != nil {
		return nil, err
	}
	g.encOverride = &tk.PublicKey
	tg := &ThresholdGroup{Group: *g, TK: tk, Shares: shares, T: t}
	tg.KeygenTime = keygen
	return tg, nil
}

// DecryptAnswer gathers T users' decryption shares for every answer
// ciphertext and combines them; the share exchange is charged to the
// intra-group channel. For the OPT variant the unwrapping runs twice
// (ε₂ then ε₁), each time with a fresh share round.
func (tg *ThresholdGroup) DecryptAnswer(ans *AnswerMsg, meter *cost.Meter) ([]encode.Record, error) {
	start := time.Now()
	defer func() { meter.AddTime(cost.Users, time.Since(start)) }()

	wantDegree := 1
	if tg.Params.Variant == VariantOPT {
		wantDegree = 2
	}
	if ans.Degree != wantDegree {
		return nil, fmt.Errorf("core: answer degree %d, want %d", ans.Degree, wantDegree)
	}
	kb := (tg.TK.N.BitLen() + 7) / 8

	// jointDecryptAll runs one threshold round over the whole vector:
	// each of the T contributing holders produces its shares for every
	// element in one parallel batch (that is also how the distributed
	// session collects them — one PartialMsg per member, covering all
	// elements), then combination fans out per element. The transfer
	// accounting is unchanged: T shares of (S+1)·kb bytes per element.
	jointDecryptAll := func(cs []*paillier.Ciphertext) ([]*big.Int, error) {
		sets := make([][]*paillier.DecryptionShare, len(cs))
		for _, ks := range tg.Shares[:tg.T] {
			dss, err := tg.TK.PartialDecryptBatch(context.Background(), nil, ks, cs)
			if err != nil {
				return nil, err
			}
			for i, ds := range dss {
				sets[i] = append(sets[i], ds)
			}
		}
		for _, c := range cs {
			meter.AddBytes(cost.IntraGroup, tg.T*(c.S+1)*kb)
		}
		return tg.TK.CombineBatch(context.Background(), nil, sets)
	}

	cts := make([]*paillier.Ciphertext, len(ans.Cts))
	for i, cval := range ans.Cts {
		cts[i] = &paillier.Ciphertext{C: cval, S: ans.Degree}
	}
	ints, err := jointDecryptAll(cts)
	if err != nil {
		return nil, fmt.Errorf("core: joint decryption: %w", err)
	}
	if ans.Degree == 2 {
		// The ε₂ plaintexts are themselves ε₁ ciphertexts: second round.
		inner := make([]*paillier.Ciphertext, len(ints))
		for i, m := range ints {
			inner[i] = &paillier.Ciphertext{C: m, S: 1}
		}
		if ints, err = jointDecryptAll(inner); err != nil {
			return nil, fmt.Errorf("core: joint inner decryption: %w", err)
		}
	}
	meter.CountOp("threshold-dec", int64(len(ints)*tg.T))

	codec := encode.Codec{ModulusBits: tg.TK.N.BitLen(), IncludeID: tg.Params.IncludeIDs}
	records, err := codec.Decode(ints)
	if err != nil {
		return nil, fmt.Errorf("core: decoding answer: %w", err)
	}
	if tg.Params.N > 1 {
		recBytes := 8
		if tg.Params.IncludeIDs {
			recBytes = 16
		}
		meter.AddBytes(cost.IntraGroup, (tg.Params.N-1)*(1+len(records)*recBytes))
	}
	return records, nil
}

// Run executes a full threshold-mode round trip.
func (tg *ThresholdGroup) Run(svc Service, meter *cost.Meter) (*Result, error) {
	q, locs, err := tg.BuildQuery(meter)
	if err != nil {
		return nil, err
	}
	meter.AddBytes(cost.UserToLSP, len(q.Marshal()))
	for _, lm := range locs {
		meter.AddBytes(cost.UserToLSP, len(lm.Marshal()))
	}
	ans, err := svc.Process(q, locs)
	if err != nil {
		return nil, err
	}
	meter.AddBytes(cost.LSPToUser, len(ans.Marshal()))
	records, err := tg.DecryptAnswer(ans, meter)
	if err != nil {
		return nil, err
	}
	res := &Result{Records: records, Points: make([]geo.Point, len(records))}
	for i, r := range records {
		res.Points[i] = r.Point(tg.Params.Space)
	}
	return res, nil
}
