package gnn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// All four engines (MBM, SPM, MQM, brute force) must agree exactly.
func TestAllMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	items := randomItems(rng, 4000)
	tree := rtree.Bulk(items, 16)
	for _, agg := range []Aggregate{Sum, Max, Min} {
		engines := map[string]Searcher{
			"MBM":   &MBM{Tree: tree, Agg: agg},
			"SPM":   &SPM{Tree: tree, Agg: agg},
			"MQM":   &MQM{Tree: tree, Agg: agg},
			"brute": &BruteForce{Items: items, Agg: agg},
		}
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(8)
			k := 1 + rng.Intn(12)
			q := randomQuery(rng, n)
			want := engines["brute"].Search(q, k)
			for name, e := range engines {
				got := e.Search(q, k)
				if len(got) != len(want) {
					t.Fatalf("%s/%v trial %d: %d results, want %d", name, agg, trial, len(got), len(want))
				}
				for i := range want {
					if got[i].Item.ID != want[i].Item.ID {
						t.Fatalf("%s/%v trial %d rank %d: got %d (%.6f), want %d (%.6f)",
							name, agg, trial, i, got[i].Item.ID, got[i].Cost,
							want[i].Item.ID, want[i].Cost)
					}
					if math.Abs(got[i].Cost-want[i].Cost) > 1e-9 {
						t.Fatalf("%s/%v: cost mismatch at rank %d", name, agg, i)
					}
				}
			}
		}
	}
}

func TestMethodsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	items := randomItems(rng, 30)
	tree := rtree.Bulk(items, 8)
	empty := rtree.New(0)
	for _, e := range []Searcher{
		&SPM{Tree: tree, Agg: Sum},
		&MQM{Tree: tree, Agg: Sum},
	} {
		if e.Search(nil, 5) != nil {
			t.Errorf("%T: empty query accepted", e)
		}
		if e.Search(randomQuery(rng, 2), 0) != nil {
			t.Errorf("%T: k=0 accepted", e)
		}
		if got := e.Search(randomQuery(rng, 2), 100); len(got) != 30 {
			t.Errorf("%T: k>size returned %d", e, len(got))
		}
	}
	for _, e := range []Searcher{
		&SPM{Tree: empty, Agg: Sum},
		&MQM{Tree: empty, Agg: Sum},
	} {
		if e.Search(randomQuery(rng, 2), 5) != nil {
			t.Errorf("%T: empty tree returned results", e)
		}
	}
}

// Clustered (non-uniform) data stresses the pruning bounds differently.
func TestMethodsAgreeOnClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var items []rtree.Item
	id := int64(0)
	for c := 0; c < 10; c++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < 200; i++ {
			items = append(items, rtree.Item{
				ID: id,
				P: geo.UnitRect.Clamp(geo.Point{
					X: cx + rng.NormFloat64()*0.02,
					Y: cy + rng.NormFloat64()*0.02,
				}),
			})
			id++
		}
	}
	tree := rtree.Bulk(items, 16)
	bf := &BruteForce{Items: items, Agg: Sum}
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng, 4)
		want := bf.Search(q, 10)
		for name, e := range map[string]Searcher{
			"MBM": &MBM{Tree: tree, Agg: Sum},
			"SPM": &SPM{Tree: tree, Agg: Sum},
			"MQM": &MQM{Tree: tree, Agg: Sum},
		} {
			got := e.Search(q, 10)
			for i := range want {
				if got[i].Item.ID != want[i].Item.ID {
					t.Fatalf("%s trial %d rank %d mismatch", name, trial, i)
				}
			}
		}
	}
}

// Widely spread query points are the worst case for SPM's centroid bound;
// it must stay correct (if slow).
func TestSPMSpreadQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	items := randomItems(rng, 2000)
	tree := rtree.Bulk(items, 16)
	q := []geo.Point{{X: 0.01, Y: 0.01}, {X: 0.99, Y: 0.99}, {X: 0.01, Y: 0.99}, {X: 0.99, Y: 0.01}}
	want := (&BruteForce{Items: items, Agg: Sum}).Search(q, 5)
	got := (&SPM{Tree: tree, Agg: Sum}).Search(q, 5)
	for i := range want {
		if got[i].Item.ID != want[i].Item.ID {
			t.Fatalf("rank %d mismatch", i)
		}
	}
}

// BenchmarkAblationGNNMethods compares the C_q term of the LSP cost model
// across the three tree-based methods and the linear scan — the ablation
// called out in DESIGN.md (the protocol's LSP cost is O(δ')·C_q, so the
// engine choice scales every candidate query).
func BenchmarkAblationGNNMethods(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 62556)
	tree := rtree.Bulk(items, rtree.DefaultMaxEntries)
	for _, n := range []int{2, 8} {
		q := randomQuery(rng, n)
		for name, e := range map[string]Searcher{
			"MBM":   &MBM{Tree: tree, Agg: Sum},
			"SPM":   &SPM{Tree: tree, Agg: Sum},
			"MQM":   &MQM{Tree: tree, Agg: Sum},
			"brute": &BruteForce{Items: items, Agg: Sum},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.Search(q, 8)
				}
			})
		}
	}
}
