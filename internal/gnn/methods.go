package gnn

import (
	"container/heap"
	"math"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// This file implements the two other group-NN algorithms of Papadias et
// al. (ICDE 2004) beside MBM — the Single Point Method and the Multiple
// Query Method. The paper's protocol only needs one plaintext kGNN engine,
// but all three are provided (a) to cross-validate MBM, and (b) for the
// ablation benchmarks comparing the LSP's C_q term across methods
// (BenchmarkAblationGNNMethods).

// SPM is the Single Point Method: stream POIs in ascending distance from
// the query centroid q and stop once the triangle-inequality lower bound
// for any unseen POI exceeds the current k-th best aggregate.
//
// For a POI p with dist(p, q) = r the bounds used are:
//
//	Sum: Σ_i dist(p, l_i) ≥ n·r − Σ_i dist(q, l_i)
//	Max: max_i dist(p, l_i) ≥ r − min_i dist(q, l_i)
//	Min: min_i dist(p, l_i) ≥ r − max_i dist(q, l_i)
//
// all from |dist(p, l_i) − dist(q, l_i)| ≤ dist(p, q).
type SPM struct {
	Tree *rtree.Tree
	Agg  Aggregate
}

var _ Searcher = (*SPM)(nil)

// Search implements Searcher.
func (s *SPM) Search(query []geo.Point, k int) []Result {
	if k <= 0 || len(query) == 0 || s.Tree.Len() == 0 {
		return nil
	}
	q := geo.Centroid(query)
	sumQ, minQ, maxQ := 0.0, math.Inf(1), 0.0
	for _, l := range query {
		d := q.Dist(l)
		sumQ += d
		if d < minQ {
			minQ = d
		}
		if d > maxQ {
			maxQ = d
		}
	}
	lower := func(r float64) float64 {
		switch s.Agg {
		case Sum:
			return float64(len(query))*r - sumQ
		case Max:
			return r - minQ
		case Min:
			return r - maxQ
		default:
			panic("gnn: unknown aggregate")
		}
	}

	best := newTopK(k)
	it := s.Tree.NearestIter(q)
	for {
		item, r, ok := it.Next()
		if !ok {
			break
		}
		if best.full() && lower(r) > best.worst() {
			break // every later POI is at least this far from q
		}
		best.add(Result{Item: item, Cost: s.Agg.Cost(item.P, query)})
	}
	return best.sorted()
}

// MQM is the Multiple Query Method: one incremental NN stream per query
// point, combined threshold-algorithm style. Each round advances the
// stream with the smallest current threshold; newly seen POIs are scored
// exactly (random access to coordinates); the search stops when
// F(τ_1, …, τ_n) — a lower bound for every unseen POI — reaches the k-th
// best score.
type MQM struct {
	Tree *rtree.Tree
	Agg  Aggregate
}

var _ Searcher = (*MQM)(nil)

// Search implements Searcher.
func (m *MQM) Search(query []geo.Point, k int) []Result {
	if k <= 0 || len(query) == 0 || m.Tree.Len() == 0 {
		return nil
	}
	iters := make([]*rtree.NearestIter, len(query))
	tau := make([]float64, len(query))
	exhausted := make([]bool, len(query))
	for i, l := range query {
		iters[i] = m.Tree.NearestIter(l)
	}
	seen := make(map[int64]bool)
	best := newTopK(k)
	remaining := m.Tree.Len()
	for seenCount := 0; seenCount < remaining; {
		// Advance the stream with the smallest threshold (round-robin over
		// the minimum keeps all τ_i balanced, the classic TA schedule).
		pick := -1
		for i := range iters {
			if exhausted[i] {
				continue
			}
			if pick == -1 || tau[i] < tau[pick] {
				pick = i
			}
		}
		if pick == -1 {
			break
		}
		item, d, ok := iters[pick].Next()
		if !ok {
			exhausted[pick] = true
			continue
		}
		tau[pick] = d
		if !seen[item.ID] {
			seen[item.ID] = true
			seenCount++
			best.add(Result{Item: item, Cost: m.Agg.Cost(item.P, query)})
		}
		// Unseen POIs have dist(·, l_i) ≥ τ_i for every i, hence aggregate
		// ≥ F(τ). Stop when that can no longer beat the k-th best.
		if best.full() && m.Agg.Combine(tau) >= best.worst() {
			break
		}
	}
	return best.sorted()
}

// topK maintains the k best results seen so far (max-heap on cost, ties by
// reversed ID so that final extraction is deterministic).
type topK struct {
	k    int
	heap resultMaxHeap
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) full() bool { return t.heap.Len() >= t.k }

// worst returns the k-th best cost; call only when full.
func (t *topK) worst() float64 { return t.heap[0].Cost }

func (t *topK) add(r Result) {
	if t.heap.Len() < t.k {
		heap.Push(&t.heap, r)
		return
	}
	w := t.heap[0]
	if r.Cost < w.Cost || (r.Cost == w.Cost && r.Item.ID < w.Item.ID) {
		t.heap[0] = r
		heap.Fix(&t.heap, 0)
	}
}

func (t *topK) sorted() []Result {
	out := make([]Result, t.heap.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.heap).(Result)
	}
	return out
}

type resultMaxHeap []Result

func (h resultMaxHeap) Len() int { return len(h) }
func (h resultMaxHeap) Less(i, j int) bool {
	if h[i].Cost != h[j].Cost {
		return h[i].Cost > h[j].Cost
	}
	return h[i].Item.ID > h[j].Item.ID // worst-first also by ID for determinism
}
func (h resultMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultMaxHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}
