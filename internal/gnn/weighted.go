package gnn

import (
	"container/heap"
	"fmt"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// Weighted answers group queries under the weighted-sum aggregate
// F(p) = Σ_i w_i · dist(p, l_i), the natural generalization the paper's
// "any monotonically increasing aggregate function F" admits: weights
// model users with different travel costs (walking vs driving, or priority
// members whose convenience matters more).
//
// Like MBM it is a best-first branch and bound over the R-tree; the node
// bound is Σ_i w_i·mindist(N, l_i), admissible because every w_i ≥ 0.
// It implements Searcher, so it plugs into the protocol's black box the
// same way as the road-network engine (LSP.Search override).
type Weighted struct {
	Tree *rtree.Tree
	// Weights w_i ≥ 0, one per query location, matched by position. A
	// query with a different length is rejected by Search (nil result).
	Weights []float64
}

var _ Searcher = (*Weighted)(nil)

// Validate reports malformed weights.
func (w *Weighted) Validate() error {
	if len(w.Weights) == 0 {
		return fmt.Errorf("gnn: weighted searcher without weights")
	}
	positive := false
	for i, wi := range w.Weights {
		if wi < 0 {
			return fmt.Errorf("gnn: negative weight %v at %d", wi, i)
		}
		if wi > 0 {
			positive = true
		}
	}
	if !positive {
		return fmt.Errorf("gnn: all weights are zero")
	}
	return nil
}

// Cost evaluates the weighted sum for a candidate point.
func (w *Weighted) Cost(p geo.Point, query []geo.Point) float64 {
	s := 0.0
	for i, q := range query {
		s += w.Weights[i] * p.Dist(q)
	}
	return s
}

// Search implements Searcher. It returns nil when the query length does
// not match the weights (a misconfiguration the caller must fix).
func (w *Weighted) Search(query []geo.Point, k int) []Result {
	if k <= 0 || len(query) == 0 || len(query) != len(w.Weights) || w.Tree.Len() == 0 {
		return nil
	}
	if err := w.Validate(); err != nil {
		return nil
	}
	bound := func(rect geo.Rect) float64 {
		s := 0.0
		for i, q := range query {
			s += w.Weights[i] * rect.MinDist(q)
		}
		return s
	}
	pq := &boundQueue{}
	root := w.Tree.Root()
	heap.Push(pq, boundEntry{bound: bound(root.Rect()), node: root})
	var out []Result
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(boundEntry)
		switch {
		case e.node != nil && e.node.IsLeaf():
			for _, it := range e.node.Items() {
				heap.Push(pq, boundEntry{bound: w.Cost(it.P, query), item: it, isItem: true})
			}
		case e.node != nil:
			for _, c := range e.node.Children() {
				heap.Push(pq, boundEntry{bound: bound(c.Rect()), node: c})
			}
		default:
			out = append(out, Result{Item: e.item, Cost: e.bound})
		}
	}
	return out
}
