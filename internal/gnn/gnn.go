// Package gnn implements the plaintext group k-nearest-neighbor (kGNN)
// query of Definition 2.1: given a POI database, n query locations, and a
// monotonically increasing aggregate F over the per-user distances, find
// the k POIs with the smallest aggregate cost, in ascending order.
//
// The main engine is the Minimum Bounding Method (MBM) of Papadias et al.
// ("Group Nearest Neighbor Queries", ICDE 2004): a best-first branch and
// bound over the LSP's R-tree that prunes nodes using two admissible lower
// bounds — the cheap bound derived from the minimum bounding rectangle M of
// the query points, and the tighter per-point bound F(mindist(N,l_1), …,
// mindist(N,l_n)).
//
// The PPGNN protocol treats query answering as a black box (paper Section
// 1), which the Searcher interface captures: anything that maps a set of
// query locations to a ranked answer can be plugged into the protocol —
// including non-kGNN group queries such as meeting location determination
// (see examples/ppmld).
package gnn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// Aggregate selects the monotone aggregate cost function F of Eqn (1).
type Aggregate int

const (
	// Sum minimizes the total travel distance (the default in the paper's
	// experiments; e.g. the best joint meeting place).
	Sum Aggregate = iota
	// Max minimizes the distance of the farthest user (earliest time at
	// which everyone can be there).
	Max
	// Min minimizes the distance of the nearest user (earliest time at
	// which anyone can be there).
	Min
)

// String implements fmt.Stringer.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Combine applies the aggregate to a slice of distances. It panics on an
// empty slice since F is undefined for zero users.
func (a Aggregate) Combine(dists []float64) float64 {
	if len(dists) == 0 {
		panic("gnn: aggregate of no distances")
	}
	switch a {
	case Sum:
		s := 0.0
		for _, d := range dists {
			s += d
		}
		return s
	case Max:
		m := dists[0]
		for _, d := range dists[1:] {
			if d > m {
				m = d
			}
		}
		return m
	case Min:
		m := dists[0]
		for _, d := range dists[1:] {
			if d < m {
				m = d
			}
		}
		return m
	default:
		panic("gnn: unknown aggregate")
	}
}

// Cost evaluates F(dis(p, l_1), …, dis(p, l_n)) for a candidate point p.
func (a Aggregate) Cost(p geo.Point, query []geo.Point) float64 {
	if len(query) == 0 {
		panic("gnn: empty query")
	}
	switch a {
	case Sum:
		s := 0.0
		for _, q := range query {
			s += p.Dist(q)
		}
		return s
	case Max:
		m := 0.0
		for _, q := range query {
			if d := p.Dist(q); d > m {
				m = d
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		for _, q := range query {
			if d := p.Dist(q); d < m {
				m = d
			}
		}
		return m
	default:
		panic("gnn: unknown aggregate")
	}
}

// nodeLowerBound returns an admissible lower bound on the aggregate cost of
// any point inside rect: F applied to the per-query-point MINDISTs, combined
// with the MBM bound from the query MBR.
func (a Aggregate) nodeLowerBound(rect geo.Rect, query []geo.Point, queryMBR geo.Rect) float64 {
	mbrBound := rect.MinDist(queryMBR.Center()) // placeholder, replaced below
	// MBM bound: every query point lies inside queryMBR, so any p has
	// dist(p, l_i) >= MinDist(rect→... ) — use mindist between rect and MBR.
	md := rectMinDist(rect, queryMBR)
	switch a {
	case Sum:
		mbrBound = float64(len(query)) * md
	case Max, Min:
		mbrBound = md
	}
	// Tighter per-point bound.
	var ptBound float64
	switch a {
	case Sum:
		s := 0.0
		for _, q := range query {
			s += rect.MinDist(q)
		}
		ptBound = s
	case Max:
		m := 0.0
		for _, q := range query {
			if d := rect.MinDist(q); d > m {
				m = d
			}
		}
		ptBound = m
	case Min:
		m := math.Inf(1)
		for _, q := range query {
			if d := rect.MinDist(q); d < m {
				m = d
			}
		}
		ptBound = m
	}
	if mbrBound > ptBound {
		return mbrBound
	}
	return ptBound
}

// LowerBound returns an admissible lower bound on the aggregate cost of
// any point inside rect — the same bound MBM prunes R-tree nodes with,
// exported for index layers that prune other spatial partitions (the
// shard package's grid cells).
func (a Aggregate) LowerBound(rect geo.Rect, query []geo.Point) float64 {
	return a.nodeLowerBound(rect, query, geo.RectOf(query...))
}

// rectMinDist is the minimum distance between two rectangles.
func rectMinDist(a, b geo.Rect) float64 {
	dx := axisGap(a.Min.X, a.Max.X, b.Min.X, b.Max.X)
	dy := axisGap(a.Min.Y, a.Max.Y, b.Min.Y, b.Max.Y)
	return math.Hypot(dx, dy)
}

func axisGap(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// Result is one ranked POI of a kGNN answer.
type Result struct {
	Item rtree.Item
	Cost float64
}

// Searcher is the black-box group query interface the PPGNN protocol builds
// on: it maps query locations to a ranked list of POIs.
type Searcher interface {
	Search(query []geo.Point, k int) []Result
}

// MBM answers kGNN queries over an R-tree using the Minimum Bounding Method.
type MBM struct {
	Tree *rtree.Tree
	Agg  Aggregate
}

var _ Searcher = (*MBM)(nil)

// Search returns the top-k POIs by aggregate cost in ascending order
// (ties broken by item ID). It returns fewer than k results only when the
// database holds fewer than k POIs.
func (m *MBM) Search(query []geo.Point, k int) []Result {
	out, _ := m.SearchBounded(query, k, math.Inf(1))
	return out
}

// SearchBounded is Search with an admissible cost cutoff: entries whose
// lower bound exceeds maxCost are never expanded, and because the queue
// pops in ascending bound order the search stops outright at the first
// such entry. Any POI with aggregate cost <= maxCost is still returned,
// so a caller holding an upper bound on the true k-th cost (the shard
// layer's grid seed) gets a result byte-identical to the unbounded
// search. The second return value counts the POIs whose exact cost was
// evaluated — the per-query candidate work the shard gate curves track.
func (m *MBM) SearchBounded(query []geo.Point, k int, maxCost float64) ([]Result, int) {
	if k <= 0 || len(query) == 0 || m.Tree.Len() == 0 {
		return nil, 0
	}
	queryMBR := geo.RectOf(query...)
	pq := &boundQueue{}
	root := m.Tree.Root()
	heap.Push(pq, boundEntry{
		bound: m.Agg.nodeLowerBound(root.Rect(), query, queryMBR),
		node:  root,
	})
	scanned := 0
	var out []Result
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(boundEntry)
		if e.bound > maxCost {
			break
		}
		switch {
		case e.node != nil && e.node.IsLeaf():
			for _, it := range e.node.Items() {
				scanned++
				heap.Push(pq, boundEntry{
					bound:  m.Agg.Cost(it.P, query),
					item:   it,
					isItem: true,
				})
			}
		case e.node != nil:
			for _, c := range e.node.Children() {
				heap.Push(pq, boundEntry{
					bound: m.Agg.nodeLowerBound(c.Rect(), query, queryMBR),
					node:  c,
				})
			}
		default:
			out = append(out, Result{Item: e.item, Cost: e.bound})
		}
	}
	return out, scanned
}

type boundEntry struct {
	bound  float64
	node   *rtree.Node
	item   rtree.Item
	isItem bool
}

type boundQueue []boundEntry

func (q boundQueue) Len() int { return len(q) }
func (q boundQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	if q[i].isItem != q[j].isItem {
		return !q[i].isItem // expand tied nodes before emitting items
	}
	return q[i].item.ID < q[j].item.ID
}
func (q boundQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *boundQueue) Push(x interface{}) { *q = append(*q, x.(boundEntry)) }
func (q *boundQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// BruteForce is the exhaustive reference implementation used for testing
// and as the query engine for databases too small to index.
type BruteForce struct {
	Items []rtree.Item
	Agg   Aggregate
}

var _ Searcher = (*BruteForce)(nil)

// Search scans all items and returns the top-k by aggregate cost.
func (b *BruteForce) Search(query []geo.Point, k int) []Result {
	if k <= 0 || len(query) == 0 || len(b.Items) == 0 {
		return nil
	}
	all := make([]Result, 0, len(b.Items))
	for _, it := range b.Items {
		all = append(all, Result{Item: it, Cost: b.Agg.Cost(it.P, query)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Cost != all[j].Cost {
			return all[i].Cost < all[j].Cost
		}
		return all[i].Item.ID < all[j].Item.ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
