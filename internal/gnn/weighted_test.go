package gnn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// weightedBrute is the exhaustive reference.
func weightedBrute(items []rtree.Item, query []geo.Point, weights []float64, k int) []Result {
	all := make([]Result, 0, len(items))
	for _, it := range items {
		s := 0.0
		for i, q := range query {
			s += weights[i] * it.P.Dist(q)
		}
		all = append(all, Result{Item: it, Cost: s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Cost != all[j].Cost {
			return all[i].Cost < all[j].Cost
		}
		return all[i].Item.ID < all[j].Item.ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	items := randomItems(rng, 3000)
	tree := rtree.Bulk(items, 16)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		query := randomQuery(rng, n)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 5
		}
		weights[rng.Intn(n)] = 1 // ensure at least one positive
		w := &Weighted{Tree: tree, Weights: weights}
		k := 1 + rng.Intn(10)
		got := w.Search(query, k)
		want := weightedBrute(items, query, weights, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Item.ID != want[i].Item.ID {
				t.Fatalf("trial %d rank %d: got %d, want %d", trial, i, got[i].Item.ID, want[i].Item.ID)
			}
			if math.Abs(got[i].Cost-want[i].Cost) > 1e-9 {
				t.Fatalf("trial %d rank %d: cost mismatch", trial, i)
			}
		}
	}
}

// Equal weights reduce the weighted search to plain sum-kGNN (scaled).
func TestWeightedReducesToSum(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	items := randomItems(rng, 1500)
	tree := rtree.Bulk(items, 16)
	query := randomQuery(rng, 4)
	w := &Weighted{Tree: tree, Weights: []float64{2, 2, 2, 2}}
	got := w.Search(query, 8)
	want := (&MBM{Tree: tree, Agg: Sum}).Search(query, 8)
	for i := range want {
		if got[i].Item.ID != want[i].Item.ID {
			t.Fatalf("rank %d: weighted %d, sum %d", i, got[i].Item.ID, want[i].Item.ID)
		}
		if math.Abs(got[i].Cost-2*want[i].Cost) > 1e-9 {
			t.Fatalf("rank %d: weighted cost %v != 2×%v", i, got[i].Cost, want[i].Cost)
		}
	}
}

// A zero-weight user does not influence the ranking at all.
func TestWeightedZeroWeightIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	items := randomItems(rng, 1000)
	tree := rtree.Bulk(items, 16)
	base := randomQuery(rng, 3)
	w := &Weighted{Tree: tree, Weights: []float64{1, 1, 0}}
	a := w.Search(base, 6)
	moved := append(append([]geo.Point{}, base[:2]...), geo.Point{X: 0.999, Y: 0.001})
	b := w.Search(moved, 6)
	for i := range a {
		if a[i].Item.ID != b[i].Item.ID {
			t.Fatalf("zero-weight user changed the ranking at %d", i)
		}
	}
}

func TestWeightedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	items := randomItems(rng, 100)
	tree := rtree.Bulk(items, 8)
	q := randomQuery(rng, 2)
	cases := []*Weighted{
		{Tree: tree, Weights: nil},
		{Tree: tree, Weights: []float64{1, -1}},
		{Tree: tree, Weights: []float64{0, 0}},
		{Tree: tree, Weights: []float64{1, 1, 1}}, // length mismatch
	}
	for i, w := range cases {
		if got := w.Search(q, 4); got != nil {
			t.Errorf("case %d: invalid weighted search returned results", i)
		}
	}
	good := &Weighted{Tree: tree, Weights: []float64{1, 1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
}
