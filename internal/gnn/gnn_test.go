package gnn

import (
	"math"
	"math/rand"
	"testing"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

func randomItems(rng *rand.Rand, n int) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		items[i] = rtree.Item{ID: int64(i), P: geo.Point{X: rng.Float64(), Y: rng.Float64()}}
	}
	return items
}

func randomQuery(rng *rand.Rand, n int) []geo.Point {
	q := make([]geo.Point, n)
	for i := range q {
		q[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return q
}

func TestAggregateCombine(t *testing.T) {
	d := []float64{3, 1, 2}
	if got := Sum.Combine(d); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := Max.Combine(d); got != 3 {
		t.Errorf("Max = %v", got)
	}
	if got := Min.Combine(d); got != 1 {
		t.Errorf("Min = %v", got)
	}
}

func TestAggregateCombinePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty combine")
		}
	}()
	Sum.Combine(nil)
}

func TestAggregateString(t *testing.T) {
	if Sum.String() != "sum" || Max.String() != "max" || Min.String() != "min" {
		t.Fatal("Aggregate.String mismatch")
	}
}

func TestCostMatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		q := randomQuery(rng, 1+rng.Intn(8))
		dists := make([]float64, len(q))
		for i, l := range q {
			dists[i] = p.Dist(l)
		}
		for _, agg := range []Aggregate{Sum, Max, Min} {
			if got, want := agg.Cost(p, q), agg.Combine(dists); math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v: Cost=%v Combine=%v", agg, got, want)
			}
		}
	}
}

// TestMBMMatchesBruteForce is the core correctness property: the
// branch-and-bound must return exactly the brute-force ranking for every
// aggregate.
func TestMBMMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	items := randomItems(rng, 3000)
	tree := rtree.Bulk(items, 16)
	for _, agg := range []Aggregate{Sum, Max, Min} {
		mbm := &MBM{Tree: tree, Agg: agg}
		bf := &BruteForce{Items: items, Agg: agg}
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(10)
			k := 1 + rng.Intn(16)
			q := randomQuery(rng, n)
			got := mbm.Search(q, k)
			want := bf.Search(q, k)
			if len(got) != len(want) {
				t.Fatalf("%v: got %d results, want %d", agg, len(got), len(want))
			}
			for i := range got {
				if got[i].Item.ID != want[i].Item.ID {
					t.Fatalf("%v trial %d: rank %d got id %d (cost %v) want id %d (cost %v)",
						agg, trial, i, got[i].Item.ID, got[i].Cost, want[i].Item.ID, want[i].Cost)
				}
				if math.Abs(got[i].Cost-want[i].Cost) > 1e-9 {
					t.Fatalf("%v: cost mismatch at rank %d", agg, i)
				}
			}
		}
	}
}

func TestSearchResultsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 1000)
	tree := rtree.Bulk(items, 16)
	for _, agg := range []Aggregate{Sum, Max, Min} {
		mbm := &MBM{Tree: tree, Agg: agg}
		res := mbm.Search(randomQuery(rng, 5), 20)
		for i := 1; i < len(res); i++ {
			if res[i].Cost < res[i-1].Cost-1e-12 {
				t.Fatalf("%v: results not ascending at %d", agg, i)
			}
		}
	}
}

func TestSearchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randomItems(rng, 50)
	tree := rtree.Bulk(items, 8)
	mbm := &MBM{Tree: tree, Agg: Sum}
	if got := mbm.Search(nil, 5); got != nil {
		t.Error("empty query should return nil")
	}
	if got := mbm.Search(randomQuery(rng, 3), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	empty := &MBM{Tree: rtree.New(0), Agg: Sum}
	if got := empty.Search(randomQuery(rng, 3), 5); got != nil {
		t.Error("empty tree should return nil")
	}
	// k greater than database size returns everything ranked.
	if got := mbm.Search(randomQuery(rng, 2), 100); len(got) != 50 {
		t.Errorf("k>size returned %d results, want 50", len(got))
	}
}

func TestSingleUserEqualsKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := randomItems(rng, 1500)
	tree := rtree.Bulk(items, 16)
	mbm := &MBM{Tree: tree, Agg: Sum}
	for trial := 0; trial < 20; trial++ {
		q := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		k := 1 + rng.Intn(10)
		gnnRes := mbm.Search([]geo.Point{q}, k)
		knnRes := tree.NearestK(q, k)
		if len(gnnRes) != len(knnRes) {
			t.Fatalf("length mismatch %d vs %d", len(gnnRes), len(knnRes))
		}
		for i := range gnnRes {
			if gnnRes[i].Item.ID != knnRes[i].Item.ID {
				t.Fatalf("kGNN(n=1) != kNN at rank %d", i)
			}
		}
	}
}

// For n=1 all three aggregates coincide.
func TestAggregatesCoincideForSingleUser(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := randomItems(rng, 500)
	tree := rtree.Bulk(items, 16)
	q := randomQuery(rng, 1)
	sum := (&MBM{Tree: tree, Agg: Sum}).Search(q, 10)
	mx := (&MBM{Tree: tree, Agg: Max}).Search(q, 10)
	mn := (&MBM{Tree: tree, Agg: Min}).Search(q, 10)
	for i := range sum {
		if sum[i].Item.ID != mx[i].Item.ID || sum[i].Item.ID != mn[i].Item.ID {
			t.Fatalf("aggregates disagree for n=1 at rank %d", i)
		}
	}
}

// The first result of a sum-kGNN must minimize the total distance; verify
// directly against definition on a small instance.
func TestDefinitionHolds(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, P: geo.Point{X: 0.1, Y: 0.1}},
		{ID: 2, P: geo.Point{X: 0.5, Y: 0.5}},
		{ID: 3, P: geo.Point{X: 0.9, Y: 0.9}},
		{ID: 4, P: geo.Point{X: 0.45, Y: 0.55}},
	}
	tree := rtree.Bulk(items, 4)
	query := []geo.Point{{X: 0.4, Y: 0.4}, {X: 0.6, Y: 0.6}}
	res := (&MBM{Tree: tree, Agg: Sum}).Search(query, 2)
	if res[0].Item.ID != 2 {
		t.Fatalf("top result = %d, want 2 (the central POI)", res[0].Item.ID)
	}
	if res[1].Item.ID != 4 {
		t.Fatalf("second result = %d, want 4", res[1].Item.ID)
	}
}

func TestBruteForceEdgeCases(t *testing.T) {
	bf := &BruteForce{Items: nil, Agg: Sum}
	if bf.Search([]geo.Point{{X: 0.5, Y: 0.5}}, 3) != nil {
		t.Error("empty brute force should return nil")
	}
}

func TestRectMinDist(t *testing.T) {
	a := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1, Y: 1}}
	b := geo.Rect{Min: geo.Point{X: 2, Y: 0}, Max: geo.Point{X: 3, Y: 1}}
	if got := rectMinDist(a, b); got != 1 {
		t.Errorf("rectMinDist = %v, want 1", got)
	}
	c := geo.Rect{Min: geo.Point{X: 0.5, Y: 0.5}, Max: geo.Point{X: 2, Y: 2}}
	if got := rectMinDist(a, c); got != 0 {
		t.Errorf("overlapping rectMinDist = %v, want 0", got)
	}
	d := geo.Rect{Min: geo.Point{X: 4, Y: 5}, Max: geo.Point{X: 6, Y: 7}}
	if got := rectMinDist(a, d); math.Abs(got-5) > 1e-12 {
		t.Errorf("diagonal rectMinDist = %v, want 5", got)
	}
}

func BenchmarkMBMSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 62556)
	tree := rtree.Bulk(items, rtree.DefaultMaxEntries)
	mbm := &MBM{Tree: tree, Agg: Sum}
	q := randomQuery(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbm.Search(q, 8)
	}
}

func BenchmarkBruteForceSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 62556)
	bf := &BruteForce{Items: items, Agg: Sum}
	q := randomQuery(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Search(q, 8)
	}
}
