// Package attack implements adversary analyses against the protocol's
// privacy mechanisms, complementing the inequality attack of Section 5
// (which lives in internal/sanitize):
//
//   - Intersection: the classic multi-query attack on dummy anonymity. A
//     single query hides the user among d locations (Privacy I), but if the
//     same user issues repeated queries from the same place with fresh
//     independent dummies, the real location is the only one that recurs.
//     This is a known limitation of all dummy-based schemes (the paper's
//     included) and the reason dummy caches / consistent dummies exist in
//     the literature [17, 22]. The package quantifies how fast anonymity
//     decays and verifies that reusing a cached location set prevents it.
//
//   - DensityRank: a single-query heuristic adversary that ranks the d
//     locations by local POI density (users tend to be where POIs are).
//     Both uniform and grid-spread dummies mimic the *space*, not the POI
//     distribution, so on a clustered database this prior gives the LSP a
//     measurable edge over the nominal 1/d when users sit exactly at POIs
//     (the tests measure ≈0.4–0.5 top-1 accuracy at d=10 in that worst
//     case). Production deployments should draw dummies from a population
//     prior rather than uniformly — the Generator interface admits that.
package attack

import (
	"math"
	"sort"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// Intersection mounts the multi-query intersection attack: given the
// location sets one user sent across several queries (each of size d, with
// the real location present in every one), it returns the candidate real
// locations — the points that appear in every set, up to the matching
// tolerance eps.
func Intersection(sets [][]geo.Point, eps float64) []geo.Point {
	if len(sets) == 0 {
		return nil
	}
	candidates := append([]geo.Point(nil), sets[0]...)
	for _, set := range sets[1:] {
		var surviving []geo.Point
		for _, c := range candidates {
			for _, p := range set {
				if c.Dist(p) <= eps {
					surviving = append(surviving, c)
					break
				}
			}
		}
		candidates = surviving
		if len(candidates) == 0 {
			return nil
		}
	}
	return candidates
}

// AnonymityAfter returns the expected number of surviving candidates after
// q queries with d locations each when dummies are drawn independently and
// uniformly: 1 + (d−1)·P^(q−1), where P = 1 − (1 − π·eps²/area)^d is the
// probability that at least one of a later query's d fresh locations lands
// within eps of a fixed dummy. It quantifies the decay the Intersection
// attack exploits.
func AnonymityAfter(d, q int, eps float64, space geo.Rect) float64 {
	if q < 1 {
		return float64(d)
	}
	p := math.Pi * eps * eps / space.Area()
	if p > 1 {
		p = 1
	}
	pMatch := 1 - math.Pow(1-p, float64(d))
	return 1 + float64(d-1)*math.Pow(pMatch, float64(q-1))
}

// DensityRank ranks the locations of one set by descending local POI
// density (POIs within radius r), the heuristic prior "users are where the
// POIs are". It returns the indices into set, best guess first.
func DensityRank(set []geo.Point, db *rtree.Tree, r float64) []int {
	type scored struct {
		idx   int
		count int
	}
	scores := make([]scored, len(set))
	for i, p := range set {
		window := geo.Rect{
			Min: geo.Point{X: p.X - r, Y: p.Y - r},
			Max: geo.Point{X: p.X + r, Y: p.Y + r},
		}
		count := 0
		db.Search(window, func(it rtree.Item) bool {
			if it.P.Dist(p) <= r {
				count++
			}
			return true
		})
		scores[i] = scored{idx: i, count: count}
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].count > scores[b].count })
	out := make([]int, len(scores))
	for i, s := range scores {
		out[i] = s.idx
	}
	return out
}

// GuessAccuracy runs DensityRank over many (set, realIndex) observations
// and returns the fraction where the attacker's top guess was the real
// location. A value near 1/d means the dummies resist the heuristic.
func GuessAccuracy(sets [][]geo.Point, realIdx []int, db *rtree.Tree, r float64) float64 {
	if len(sets) == 0 || len(sets) != len(realIdx) {
		panic("attack: mismatched observations")
	}
	hits := 0
	for i, set := range sets {
		if DensityRank(set, db, r)[0] == realIdx[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(sets))
}
