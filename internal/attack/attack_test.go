package attack

import (
	"math/rand"
	"testing"

	"ppgnn/internal/dataset"
	"ppgnn/internal/dummy"
	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// Independent dummies per query: after a handful of queries, the
// intersection attack isolates the real location.
func TestIntersectionBreaksIndependentDummies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	real := geo.Point{X: 0.37, Y: 0.61}
	const d, queries = 25, 5
	var sets [][]geo.Point
	for q := 0; q < queries; q++ {
		pos := rng.Intn(d)
		sets = append(sets, dummy.Uniform{}.LocationSet(rng, real, d, pos, geo.UnitRect))
	}
	got := Intersection(sets, 1e-9)
	if len(got) != 1 {
		t.Fatalf("intersection left %d candidates, want exactly the real location", len(got))
	}
	if got[0] != real {
		t.Fatalf("intersection found %v, real is %v", got[0], real)
	}
}

// Reusing one cached location set across queries defeats the intersection
// attack: the anonymity set never shrinks.
func TestCachedLocationSetResists(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	real := geo.Point{X: 0.5, Y: 0.5}
	const d = 25
	cached := dummy.Uniform{}.LocationSet(rng, real, d, 7, geo.UnitRect)
	sets := [][]geo.Point{cached, cached, cached, cached, cached}
	got := Intersection(sets, 1e-9)
	if len(got) != d {
		t.Fatalf("cached sets left %d candidates, want %d", len(got), d)
	}
}

// The real location must always survive the intersection.
func TestIntersectionNeverLosesReal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		real := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		var sets [][]geo.Point
		for q := 0; q < 3; q++ {
			sets = append(sets, dummy.GridSpread{}.LocationSet(rng, real, 16, rng.Intn(16), geo.UnitRect))
		}
		got := Intersection(sets, 1e-9)
		found := false
		for _, c := range got {
			if c == real {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: real location eliminated", trial)
		}
	}
}

func TestIntersectionEdgeCases(t *testing.T) {
	if got := Intersection(nil, 0.1); got != nil {
		t.Fatal("empty input returned candidates")
	}
	a := []geo.Point{{X: 0.1, Y: 0.1}}
	b := []geo.Point{{X: 0.9, Y: 0.9}}
	if got := Intersection([][]geo.Point{a, b}, 1e-9); got != nil {
		t.Fatal("disjoint sets returned candidates")
	}
}

func TestAnonymityAfterFormula(t *testing.T) {
	// One query: full anonymity d.
	if got := AnonymityAfter(25, 1, 0.01, geo.UnitRect); got != 25 {
		t.Fatalf("q=1 anonymity = %v", got)
	}
	// Anonymity is monotone non-increasing in q and tends to 1.
	prev := 26.0
	for q := 1; q <= 6; q++ {
		got := AnonymityAfter(25, q, 0.01, geo.UnitRect)
		if got > prev {
			t.Fatalf("anonymity grew at q=%d", q)
		}
		prev = got
	}
	if prev > 1.001 {
		t.Fatalf("anonymity after 6 queries = %v, want ≈1", prev)
	}
	if got := AnonymityAfter(25, 0, 0.01, geo.UnitRect); got != 25 {
		t.Fatalf("q=0 anonymity = %v", got)
	}
}

// Empirical decay matches the closed form within noise.
func TestIntersectionDecayMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const d, eps = 25, 0.05
	const trials = 60
	real := geo.Point{X: 0.5, Y: 0.5}
	for _, q := range []int{2, 3} {
		total := 0
		for trial := 0; trial < trials; trial++ {
			var sets [][]geo.Point
			for i := 0; i < q; i++ {
				sets = append(sets, dummy.Uniform{}.LocationSet(rng, real, d, rng.Intn(d), geo.UnitRect))
			}
			total += len(Intersection(sets, eps))
		}
		got := float64(total) / trials
		want := AnonymityAfter(d, q, eps, geo.UnitRect)
		if got < want*0.5 || got > want*2+1 {
			t.Fatalf("q=%d: empirical anonymity %.2f vs formula %.2f", q, got, want)
		}
	}
}

// DensityRank: on a clustered database, the density prior should not give
// the attacker a dramatic edge over random guessing for either generator —
// and the measured accuracies document the comparison.
func TestDensityRankAccuracy(t *testing.T) {
	items := dataset.Synthetic(5, 20000)
	db := rtree.Bulk(items, rtree.DefaultMaxEntries)
	rng := rand.New(rand.NewSource(6))
	const d, obs = 10, 150
	for name, gen := range map[string]dummy.Generator{
		"uniform": dummy.Uniform{},
		"grid":    dummy.GridSpread{},
	} {
		var sets [][]geo.Point
		var realIdx []int
		for i := 0; i < obs; i++ {
			// Users are positioned near POIs (sampled from the database),
			// which is what gives the density prior its power.
			real := items[rng.Intn(len(items))].P
			pos := rng.Intn(d)
			sets = append(sets, gen.LocationSet(rng, real, d, pos, geo.UnitRect))
			realIdx = append(realIdx, pos)
		}
		acc := GuessAccuracy(sets, realIdx, db, 0.02)
		t.Logf("%s dummies: density-rank top-1 accuracy %.2f (random guess %.2f)", name, acc, 1.0/d)
		if acc > 0.8 {
			t.Fatalf("%s dummies: density attack accuracy %.2f — anonymity collapsed", name, acc)
		}
		if acc < 1.0/(2*d) {
			t.Fatalf("%s dummies: accuracy %.2f below random; scoring broken?", name, acc)
		}
	}
}

func TestGuessAccuracyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched observations accepted")
		}
	}()
	GuessAccuracy(make([][]geo.Point, 2), make([]int, 1), rtree.New(0), 0.1)
}
