package encode

import (
	"math/big"
	"testing"
)

// FuzzDecode: arbitrary packed integers must decode cleanly or error —
// never panic — since the coordinator decodes whatever the LSP returns.
func FuzzDecode(f *testing.F) {
	c := Codec{ModulusBits: 512}
	f.Add([]byte{0x01}, []byte{0x02})
	f.Add(c.Encode([]Record{{X: 1, Y: 2}})[0].Bytes(), []byte{})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ints := []*big.Int{new(big.Int).SetBytes(a), new(big.Int).SetBytes(b)}
		recs, err := c.Decode(ints)
		if err != nil {
			return
		}
		// Decoded records must re-encode within the modulus bound.
		for _, v := range c.Encode(recs) {
			if v.BitLen() > c.ModulusBits-1 {
				t.Fatal("re-encoded record exceeds modulus")
			}
		}
	})
}

// FuzzCodecRoundTrip: every record list round-trips under both codecs.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(2), uint32(3), true)
	f.Add(uint64(0), uint32(0), uint32(0), false)
	f.Fuzz(func(t *testing.T, id uint64, x, y uint32, withID bool) {
		c := Codec{ModulusBits: 256, IncludeID: withID}
		rec := Record{ID: id, X: x, Y: y}
		if !withID {
			rec.ID = 0
		}
		got, err := c.Decode(c.Encode([]Record{rec}))
		if err != nil {
			t.Fatalf("roundtrip decode: %v", err)
		}
		if len(got) != 1 || got[0] != rec {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", got, rec)
		}
	})
}
