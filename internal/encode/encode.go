// Package encode packs ranked POI answers into big integers smaller than
// the Paillier modulus N, as required by the answer matrix A of Theorem
// 3.1 ("each query answer is represented by a vector of integers such that
// every element is less than N").
//
// Layout: the answer is a stream of 64-bit slots — slot 0 holds the record
// count, then each POI record follows (one slot for quantized coordinates,
// or two when IDs are included). Slots are packed little-endian into
// integers of ⌊(|N|−1)/64⌋ slots each, so every integer is strictly below
// 2^(|N|−1) < N. With a 1024-bit modulus this gives 15 POI slots per big
// integer, matching the paper's "15 POIs information can be encoded by a
// big integer" and the staged growth of Figure 5d.
//
// Coordinates are quantized to 32 bits per axis over the location space
// (8 bytes per POI, the answer size used in Section 8.1).
package encode

import (
	"fmt"
	"math"
	"math/big"

	"ppgnn/internal/geo"
)

// SlotBits is the width of one slot in the packed stream.
const SlotBits = 64

// Record is one POI of an answer: 32-bit quantized coordinates plus an
// optional database identifier.
type Record struct {
	ID   uint64 // used only when the codec includes IDs
	X, Y uint32 // coordinates quantized over the location space
}

// Quantize maps a point in space to 32-bit grid coordinates.
func Quantize(p geo.Point, space geo.Rect) (x, y uint32) {
	fx := (p.X - space.Min.X) / space.Width()
	fy := (p.Y - space.Min.Y) / space.Height()
	clamp := func(f float64) uint32 {
		if f <= 0 {
			return 0
		}
		if f >= 1 {
			return math.MaxUint32
		}
		return uint32(f * float64(math.MaxUint32))
	}
	return clamp(fx), clamp(fy)
}

// Dequantize inverts Quantize up to the 32-bit grid resolution.
func Dequantize(x, y uint32, space geo.Rect) geo.Point {
	return geo.Point{
		X: space.Min.X + float64(x)/float64(math.MaxUint32)*space.Width(),
		Y: space.Min.Y + float64(y)/float64(math.MaxUint32)*space.Height(),
	}
}

// RecordOf quantizes a POI location into a Record.
func RecordOf(id int64, p geo.Point, space geo.Rect) Record {
	x, y := Quantize(p, space)
	return Record{ID: uint64(id), X: x, Y: y}
}

// Point returns the record's location in the given space.
func (r Record) Point(space geo.Rect) geo.Point {
	return Dequantize(r.X, r.Y, space)
}

// Codec packs and unpacks answers for a modulus of the given bit length.
type Codec struct {
	// ModulusBits is the bit length of the Paillier modulus N. Every packed
	// integer is < 2^(ModulusBits-1) and therefore a valid plaintext.
	ModulusBits int
	// IncludeID adds the POI's database identifier to each record (2 slots
	// per record instead of 1). The paper's experiments return coordinates
	// only; applications that need to reference POIs enable IDs.
	IncludeID bool
}

// slotsPerRecord returns the number of 64-bit slots one record occupies.
func (c Codec) slotsPerRecord() int {
	if c.IncludeID {
		return 2
	}
	return 1
}

// SlotsPerInt returns how many slots fit in one packed integer.
func (c Codec) SlotsPerInt() int {
	n := (c.ModulusBits - 1) / SlotBits
	if n < 1 {
		panic(fmt.Sprintf("encode: modulus of %d bits cannot hold a slot", c.ModulusBits))
	}
	return n
}

// IntsFor returns m, the number of packed integers needed for an answer of
// k records (including the count slot). This is the m of Theorem 3.1 and
// of the communication analysis in Sections 6–7.
func (c Codec) IntsFor(k int) int {
	slots := 1 + k*c.slotsPerRecord()
	per := c.SlotsPerInt()
	return (slots + per - 1) / per
}

// Encode packs records into big integers, each < 2^(ModulusBits−1).
func (c Codec) Encode(records []Record) []*big.Int {
	slots := make([]uint64, 0, 1+len(records)*c.slotsPerRecord())
	slots = append(slots, uint64(len(records)))
	for _, r := range records {
		if c.IncludeID {
			slots = append(slots, r.ID)
		}
		slots = append(slots, uint64(r.X)<<32|uint64(r.Y))
	}
	per := c.SlotsPerInt()
	out := make([]*big.Int, 0, (len(slots)+per-1)/per)
	for start := 0; start < len(slots); start += per {
		end := start + per
		if end > len(slots) {
			end = len(slots)
		}
		v := new(big.Int)
		tmp := new(big.Int)
		for i := end - 1; i >= start; i-- {
			v.Lsh(v, SlotBits)
			v.Or(v, tmp.SetUint64(slots[i]))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = append(out, new(big.Int))
	}
	return out
}

// Pad extends ints with zero integers to length m, the shared answer-matrix
// height ("if the number of integers encoded for a query answer is less
// than m, 0's are padded as placeholders"). It panics if ints is already
// longer than m.
func Pad(ints []*big.Int, m int) []*big.Int {
	if len(ints) > m {
		panic(fmt.Sprintf("encode: answer of %d ints exceeds matrix height %d", len(ints), m))
	}
	for len(ints) < m {
		ints = append(ints, new(big.Int))
	}
	return ints
}

// Decode unpacks an answer previously produced by Encode (possibly padded
// with trailing zero integers).
func (c Codec) Decode(ints []*big.Int) ([]Record, error) {
	if len(ints) == 0 {
		return nil, fmt.Errorf("encode: no integers to decode")
	}
	per := c.SlotsPerInt()
	slots := make([]uint64, 0, len(ints)*per)
	mask := new(big.Int).SetUint64(math.MaxUint64)
	for _, v := range ints {
		if v.Sign() < 0 || v.BitLen() > c.ModulusBits-1 {
			return nil, fmt.Errorf("encode: packed integer out of range (bitlen %d)", v.BitLen())
		}
		cur := new(big.Int).Set(v)
		tmp := new(big.Int)
		for i := 0; i < per; i++ {
			slots = append(slots, tmp.And(cur, mask).Uint64())
			cur.Rsh(cur, SlotBits)
		}
	}
	count := slots[0]
	spr := uint64(c.slotsPerRecord())
	if count > uint64(len(slots)-1)/spr {
		return nil, fmt.Errorf("encode: count %d exceeds available slots", count)
	}
	records := make([]Record, 0, count)
	pos := 1
	for i := uint64(0); i < count; i++ {
		var r Record
		if c.IncludeID {
			r.ID = slots[pos]
			pos++
		}
		xy := slots[pos]
		pos++
		r.X = uint32(xy >> 32)
		r.Y = uint32(xy)
		records = append(records, r)
	}
	return records, nil
}
