package encode

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"ppgnn/internal/geo"
)

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		x, y := Quantize(p, geo.UnitRect)
		q := Dequantize(x, y, geo.UnitRect)
		if math.Abs(p.X-q.X) > 1e-9 || math.Abs(p.Y-q.Y) > 1e-9 {
			t.Fatalf("quantize roundtrip error: %v → %v", p, q)
		}
	}
}

func TestQuantizeCorners(t *testing.T) {
	x, y := Quantize(geo.Point{X: 0, Y: 0}, geo.UnitRect)
	if x != 0 || y != 0 {
		t.Fatalf("min corner = (%d,%d)", x, y)
	}
	x, y = Quantize(geo.Point{X: 1, Y: 1}, geo.UnitRect)
	if x != math.MaxUint32 || y != math.MaxUint32 {
		t.Fatalf("max corner = (%d,%d)", x, y)
	}
	// Out-of-space points clamp rather than wrap.
	x, _ = Quantize(geo.Point{X: 2, Y: 0.5}, geo.UnitRect)
	if x != math.MaxUint32 {
		t.Fatalf("overflow not clamped: %d", x)
	}
}

func TestQuantizeNonUnitSpace(t *testing.T) {
	space := geo.Rect{Min: geo.Point{X: -100, Y: 50}, Max: geo.Point{X: 100, Y: 150}}
	p := geo.Point{X: 25, Y: 120}
	x, y := Quantize(p, space)
	q := Dequantize(x, y, space)
	if math.Abs(p.X-q.X) > 1e-6 || math.Abs(p.Y-q.Y) > 1e-6 {
		t.Fatalf("non-unit roundtrip: %v → %v", p, q)
	}
}

func randomRecords(rng *rand.Rand, n int, withID bool) []Record {
	rs := make([]Record, n)
	for i := range rs {
		rs[i] = Record{X: rng.Uint32(), Y: rng.Uint32()}
		if withID {
			rs[i].ID = uint64(rng.Int63())
		}
	}
	return rs
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, bits := range []int{256, 1024, 2048} {
		for _, withID := range []bool{false, true} {
			c := Codec{ModulusBits: bits, IncludeID: withID}
			for _, k := range []int{0, 1, 2, 7, 15, 16, 32, 100} {
				recs := randomRecords(rng, k, withID)
				ints := c.Encode(recs)
				if len(ints) != c.IntsFor(k) {
					t.Fatalf("bits=%d id=%v k=%d: %d ints, IntsFor says %d",
						bits, withID, k, len(ints), c.IntsFor(k))
				}
				for _, v := range ints {
					if v.BitLen() > bits-1 {
						t.Fatalf("packed int of %d bits exceeds modulus-1", v.BitLen())
					}
				}
				got, err := c.Decode(ints)
				if err != nil {
					t.Fatalf("bits=%d id=%v k=%d: %v", bits, withID, k, err)
				}
				if len(got) != k {
					t.Fatalf("decoded %d records, want %d", len(got), k)
				}
				for i := range got {
					want := recs[i]
					if !withID {
						want.ID = 0
					}
					if got[i] != want {
						t.Fatalf("record %d = %+v, want %+v", i, got[i], want)
					}
				}
			}
		}
	}
}

func TestDecodeWithPadding(t *testing.T) {
	c := Codec{ModulusBits: 1024}
	rng := rand.New(rand.NewSource(3))
	recs := randomRecords(rng, 5, false)
	ints := Pad(c.Encode(recs), 4)
	if len(ints) != 4 {
		t.Fatalf("padded to %d", len(ints))
	}
	got, err := c.Decode(ints)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("decoded %d records", len(got))
	}
}

func TestPadPanicsWhenTooLong(t *testing.T) {
	c := Codec{ModulusBits: 256}
	ints := c.Encode(randomRecords(rand.New(rand.NewSource(4)), 20, false))
	defer func() {
		if recover() == nil {
			t.Fatal("Pad did not panic")
		}
	}()
	Pad(ints, 1)
}

func TestFifteenPOIsPerIntegerAt1024Bits(t *testing.T) {
	// The paper's encoding density claim for 1024-bit keys.
	c := Codec{ModulusBits: 1024}
	if got := c.SlotsPerInt(); got != 15 {
		t.Fatalf("slots per 1024-bit integer = %d, want 15", got)
	}
	// 14 POIs + count slot fit in one integer; the 15th spills over.
	if c.IntsFor(14) != 1 {
		t.Fatalf("IntsFor(14) = %d, want 1", c.IntsFor(14))
	}
	if c.IntsFor(15) != 2 {
		t.Fatalf("IntsFor(15) = %d, want 2", c.IntsFor(15))
	}
}

func TestDecodeErrors(t *testing.T) {
	c := Codec{ModulusBits: 256}
	if _, err := c.Decode(nil); err == nil {
		t.Error("empty decode accepted")
	}
	// Out-of-range integer.
	big1 := new(big.Int).Lsh(big.NewInt(1), 256)
	if _, err := c.Decode([]*big.Int{big1}); err == nil {
		t.Error("oversized integer accepted")
	}
	// Corrupted count.
	huge := new(big.Int).SetUint64(1 << 40)
	if _, err := c.Decode([]*big.Int{huge}); err == nil {
		t.Error("absurd count accepted")
	}
}

func TestEncodeEmptyAnswer(t *testing.T) {
	c := Codec{ModulusBits: 512}
	ints := c.Encode(nil)
	if len(ints) != 1 {
		t.Fatalf("empty answer encoded to %d ints", len(ints))
	}
	got, err := c.Decode(ints)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty answer", len(got))
	}
}

// Property: roundtrip holds for arbitrary record contents.
func TestRoundTripProperty(t *testing.T) {
	c := Codec{ModulusBits: 512, IncludeID: true}
	f := func(ids []uint64, xs, ys []uint32) bool {
		n := len(ids)
		if len(xs) < n {
			n = len(xs)
		}
		if len(ys) < n {
			n = len(ys)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{ID: ids[i], X: xs[i], Y: ys[i]}
		}
		got, err := c.Decode(c.Encode(recs))
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSlotsPerIntPanicsTinyModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 64-bit modulus")
		}
	}()
	Codec{ModulusBits: 64}.SlotsPerInt()
}
