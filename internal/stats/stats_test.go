package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.8, 0.8416212335729143},
		{0.025, -1.959963984540054},
		{0.9999, 3.719016485455709},
		{0.0001, -3.719016485455709},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

// Property: NormalCDF(NormalQuantile(p)) == p.
func TestQuantileCDFInverse(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(2)),
		Values:   nil,
	}
	f := func(u uint32) bool {
		p := (float64(u) + 1) / (float64(math.MaxUint32) + 2) // in (0,1)
		z := NormalQuantile(p)
		return math.Abs(NormalCDF(z)-p) < 1e-12
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.4} {
		if got := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(got) > 1e-10 {
			t.Errorf("quantile not symmetric at p=%v: sum=%v", p, got)
		}
	}
}

func TestCriticalZ(t *testing.T) {
	// The paper uses γ=0.05 → z ≈ 1.645 and η=0.2 → z ≈ 0.8416.
	if got := CriticalZ(0.05); math.Abs(got-1.6448536269514722) > 1e-9 {
		t.Errorf("CriticalZ(0.05) = %v", got)
	}
	if got := CriticalZ(0.2); math.Abs(got-0.8416212335729143) > 1e-9 {
		t.Errorf("CriticalZ(0.2) = %v", got)
	}
}

func TestZTestRejectH0(t *testing.T) {
	zt := ZTest{Theta0: 0.05, Gamma: 0.05}
	n := 1000
	// Expected under H0 boundary: 50 + 1.645*sqrt(47.5) ≈ 61.3.
	if zt.RejectH0(61, n) {
		t.Error("x=61 should not reject H0 at n=1000")
	}
	if !zt.RejectH0(62, n) {
		t.Error("x=62 should reject H0 at n=1000")
	}
	// Threshold consistency.
	thr := zt.Threshold(n)
	for x := 0; x <= n; x += 7 {
		if got, want := zt.RejectH0(x, n), float64(x) > thr; got != want {
			t.Fatalf("RejectH0(%d) = %v inconsistent with Threshold %v", x, got, thr)
		}
	}
}

func TestSampleSizePaperDefaults(t *testing.T) {
	// γ=0.05, η=0.2, φ=0.1: for θ0=0.05 the required N_H is large (tens of
	// thousands) because θ1-θ0 = 0.005 is small.
	n := SampleSize(0.05, 0.05, 0.2, 0.1)
	if n < 10000 || n > 200000 {
		t.Errorf("SampleSize(0.05) = %d, outside plausible range", n)
	}
	// Verify against the closed form directly.
	zg, ze := CriticalZ(0.05), CriticalZ(0.2)
	th0, th1 := 0.05, 0.055
	want := math.Pow((zg*math.Sqrt(th0*(1-th0))+ze*math.Sqrt(th1*(1-th1)))/(th1-th0), 2)
	if math.Abs(float64(n)-math.Ceil(want)) > 0.5 {
		t.Errorf("SampleSize = %d, closed form = %v", n, want)
	}
}

// A stronger privacy level (larger θ0) needs fewer samples — the effect the
// paper reports in Figure 6l.
func TestSampleSizeDecreasesWithTheta0(t *testing.T) {
	prev := math.MaxInt64
	for _, th := range []float64{0.01, 0.02, 0.05, 0.1} {
		n := SampleSize(th, 0.05, 0.2, 0.1)
		if n >= prev {
			t.Fatalf("SampleSize(%v) = %d did not decrease (prev %d)", th, n, prev)
		}
		prev = n
	}
}

func TestSampleSizePanics(t *testing.T) {
	bad := [][4]float64{
		{0, 0.05, 0.2, 0.1},    // θ0 = 0
		{0.95, 0.05, 0.2, 0.1}, // θ1 > 1
		{0.05, 0, 0.2, 0.1},    // γ = 0
		{0.05, 0.05, 1, 0.1},   // η = 1
		{0.05, 0.05, 0.2, 0},   // φ = 0 → θ1 = θ0
	}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleSize(%v) did not panic", c)
				}
			}()
			SampleSize(c[0], c[1], c[2], c[3])
		}()
	}
}

// Monte-Carlo check: the Z-test's Type I error is near γ.
func TestZTestTypeIErrorRate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	zt := ZTest{Theta0: 0.05, Gamma: 0.05}
	n := 2000
	rejections := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		x := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < zt.Theta0 { // H0 boundary: θ = θ0
				x++
			}
		}
		if zt.RejectH0(x, n) {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.075 { // γ=0.05 plus generous Monte-Carlo slack
		t.Errorf("Type I error rate %v far above γ=0.05", rate)
	}
}

func TestBinomialSFKnownValues(t *testing.T) {
	// Hand-computable cases.
	if got := BinomialSF(1, 2, 0.5); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("SF(1;2,0.5) = %v, want 0.75", got)
	}
	if got := BinomialSF(2, 2, 0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("SF(2;2,0.5) = %v, want 0.25", got)
	}
	if got := BinomialSF(0, 10, 0.3); got != 1 {
		t.Fatalf("SF(0) = %v, want 1", got)
	}
	if got := BinomialSF(11, 10, 0.3); got != 0 {
		t.Fatalf("SF(n+1) = %v, want 0", got)
	}
	if got := BinomialSF(3, 10, 0); got != 0 {
		t.Fatalf("SF with p=0 = %v", got)
	}
	if got := BinomialSF(3, 10, 1); got != 1 {
		t.Fatalf("SF with p=1 = %v", got)
	}
	// Monotone decreasing in x.
	prev := 1.1
	for x := 0; x <= 20; x++ {
		v := BinomialSF(x, 20, 0.4)
		if v > prev+1e-12 {
			t.Fatalf("SF not monotone at x=%d", x)
		}
		prev = v
	}
}

func TestBinomialSFMatchesNormalApprox(t *testing.T) {
	// At the sanitizer's scale the exact test and the Z-test agree on the
	// rejection decision near (but not exactly at) the boundary.
	zt := ZTest{Theta0: 0.05, Gamma: 0.05}
	n := 5000
	thr := int(zt.Threshold(n))
	for _, x := range []int{thr - 20, thr + 21} {
		if got, want := zt.RejectH0Exact(x, n), zt.RejectH0(x, n); got != want {
			t.Fatalf("x=%d: exact=%v, normal=%v", x, got, want)
		}
	}
}

func TestBinomialSFPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { BinomialSF(-1, 5, 0.5) },
		func() { BinomialSF(1, -5, 0.5) },
		func() { BinomialSF(1, 5, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid BinomialSF input")
				}
			}()
			fn()
		}()
	}
}

// Edge-region coverage for NormalQuantile: the rational approximation
// switches formulas at plow = 0.02425 and 1-plow, and the deep tails
// stress both the -2·log(p) transform and the Halley polish step.

func TestNormalQuantileDeepTails(t *testing.T) {
	// The Halley step keeps the round trip Φ(z_p) = p accurate to ~1e-13
	// relative error all the way down to p = 1e-300 (the polish overflows
	// only past |z| ≈ 37.5, i.e. p below ~1e-308).
	for _, p := range []float64{1e-300, 1e-100, 1e-20, 1e-15, 1e-8} {
		z := NormalQuantile(p)
		if math.IsNaN(z) || math.IsInf(z, 0) {
			t.Fatalf("NormalQuantile(%g) = %v", p, z)
		}
		back := NormalCDF(z)
		if rel := math.Abs(back-p) / p; rel > 1e-10 {
			t.Errorf("round trip at p=%g: Φ(%v)=%g, rel err %g", p, z, back, rel)
		}
	}
	// Near-one side: 1-1e-10 and the largest float64 below 1.
	for _, p := range []float64{1 - 1e-10, 0.9999999999999999} {
		z := NormalQuantile(p)
		if back := NormalCDF(z); math.Abs(back-p) > 1e-12 {
			t.Errorf("round trip at p=%v: Φ(%v)=%v", p, z, back)
		}
	}
}

func TestNormalQuantileTailSymmetry(t *testing.T) {
	// z_p = -z_{1-p} must survive into the region where the two branch
	// formulas (p < plow vs p > 1-plow) are used, not just the center.
	// The achievable agreement is bounded by representation, not by the
	// algorithm: rounding 1-p to the nearest float64 perturbs the upper
	// tail by up to half an ulp of 1.0, which the quantile magnifies by
	// dz/dp = 1/φ(z) (≈ 4e5 at |z| ≈ 7). Tolerate exactly that.
	for _, p := range []float64{1e-12, 1e-9, 1e-6, 0.001, 0.02} {
		lo, hi := NormalQuantile(p), NormalQuantile(1-p)
		phi := math.Exp(-lo*lo/2) / math.Sqrt(2*math.Pi)
		tol := 1e-9 + 2*1.2e-16/phi
		if math.Abs(lo+hi) > tol {
			t.Errorf("asymmetric tails at p=%g: %v vs %v (sum %g > tol %g)", p, lo, hi, lo+hi, tol)
		}
	}
}

func TestNormalQuantilePlowBoundary(t *testing.T) {
	// Crossing plow = 0.02425 (and 1-plow) switches between the tail and
	// central rational approximations. The polished result must stay
	// strictly monotone and continuous across both seams.
	const plow = 0.02425
	for _, center := range []float64{plow, 1 - plow} {
		prev := math.Inf(-1)
		for i := -50; i <= 50; i++ {
			p := center + float64(i)*1e-9
			z := NormalQuantile(p)
			if z <= prev {
				t.Fatalf("not strictly increasing at p=%v: z=%v after %v", p, z, prev)
			}
			if back := NormalCDF(z); math.Abs(back-p) > 1e-12 {
				t.Fatalf("round trip at boundary p=%v: Φ(%v)=%v", p, z, back)
			}
			prev = z
		}
		// No jump at the seam itself: the one-ulp-scale step between
		// adjacent grid points stays bounded by the local slope
		// (dz/dp = 1/φ(z) ≈ 20 at |z| ≈ 1.97, so 1e-9 steps move z by
		// ~2e-8).
		a := NormalQuantile(center - 1e-9)
		b := NormalQuantile(center + 1e-9)
		if d := b - a; d <= 0 || d > 1e-6 {
			t.Errorf("seam at %v: z step %g across 2e-9 in p", center, d)
		}
	}
}

func TestNormalQuantileSubnormalInput(t *testing.T) {
	// Subnormal p is inside (0,1), so it must not panic; the result must
	// at least be a finite, very negative z in the right ordering.
	tiny := math.SmallestNonzeroFloat64 // 5e-324
	z := NormalQuantile(tiny)
	if math.IsNaN(z) || z > -37 {
		t.Fatalf("NormalQuantile(subnormal) = %v, want finite z < -37", z)
	}
	if z2 := NormalQuantile(1e-300); z >= z2 {
		t.Errorf("ordering violated: z(5e-324)=%v not below z(1e-300)=%v", z, z2)
	}
}
