// Package stats provides the statistical machinery of Section 5.3: the
// standard normal quantile z_γ, the one-tailed Z-test of Eqn (16) used to
// decide whether an inequality attack succeeds, and the Fleiss sample-size
// formula of Theorem 5.1 (Eqn 17) that bounds both error types.
package stats

import (
	"fmt"
	"math"
)

// NormalQuantile returns z_p, the value with Φ(z_p) = p for the standard
// normal CDF Φ. It uses Acklam's rational approximation refined with one
// Halley step against math.Erfc, giving ~1e-15 relative accuracy. It panics
// for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: NormalQuantile of p=%v outside (0,1)", p))
	}
	// Coefficients from Peter Acklam's algorithm.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley's method against the high-precision CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalCDF returns Φ(x) for the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// CriticalZ returns the one-tailed critical value z_γ such that a standard
// normal exceeds it with probability γ (i.e. the (1-γ)-quantile).
func CriticalZ(gamma float64) float64 {
	return NormalQuantile(1 - gamma)
}

// ZTest holds the parameters of the one-tailed proportion test of Section
// 5.3, testing H0: θ ≤ θ0 against H1: θ > θ0.
type ZTest struct {
	Theta0 float64 // the privacy parameter θ0 of Privacy IV
	Gamma  float64 // Type I error bound γ
}

// RejectH0 reports whether the test rejects H0 (the attack is judged NOT
// successful, i.e. the solution region is large enough) given that x of n
// uniform samples landed in the attack's solution region — Eqn (16):
//
//	reject H0 iff X > n·θ0 + z_γ·sqrt(n·θ0·(1-θ0))
func (t ZTest) RejectH0(x, n int) bool {
	mean := float64(n) * t.Theta0
	sd := math.Sqrt(float64(n) * t.Theta0 * (1 - t.Theta0))
	return float64(x) > mean+CriticalZ(t.Gamma)*sd
}

// Threshold returns the smallest sample count X that rejects H0 for sample
// size n. Useful for the incremental sanitation loop: once the surviving
// sample count drops to or below this, the prefix is unsafe.
func (t ZTest) Threshold(n int) float64 {
	mean := float64(n) * t.Theta0
	sd := math.Sqrt(float64(n) * t.Theta0 * (1 - t.Theta0))
	return mean + CriticalZ(t.Gamma)*sd
}

// SampleSize returns the number of Monte-Carlo samples N_H required so that
// Pr(Type I) ≤ γ and Pr(Type II) ≤ η when distinguishing θ0 from
// θ1 = θ0·(1+φ) — Theorem 5.1 (Fleiss et al.):
//
//	N_H ≥ [ (z_γ·sqrt(θ0(1-θ0)) + z_η·sqrt(θ1(1-θ1))) / (θ1-θ0) ]²
//
// It panics when the parameters are out of range (θ0, θ1 must lie in (0,1),
// θ1 > θ0, and γ, η in (0,1)).
func SampleSize(theta0, gamma, eta, phi float64) int {
	theta1 := theta0 * (1 + phi)
	if !(theta0 > 0 && theta0 < 1) || !(theta1 > theta0 && theta1 < 1) {
		panic(fmt.Sprintf("stats: invalid thetas θ0=%v θ1=%v", theta0, theta1))
	}
	if !(gamma > 0 && gamma < 1) || !(eta > 0 && eta < 1) {
		panic(fmt.Sprintf("stats: invalid error bounds γ=%v η=%v", gamma, eta))
	}
	zg := CriticalZ(gamma)
	ze := CriticalZ(eta)
	num := zg*math.Sqrt(theta0*(1-theta0)) + ze*math.Sqrt(theta1*(1-theta1))
	v := num / (theta1 - theta0)
	return int(math.Ceil(v * v))
}

// BinomialSF returns the survival function Pr[X ≥ x] for X ~ Binomial(n, p),
// computed by direct summation of log-probabilities (math.Lgamma), so it is
// exact up to floating-point error for any n the sanitizer uses. The Z-test
// of Eqn (16) relies on the normal approximation, which is excellent at the
// paper's N_H (tens of thousands); RejectH0Exact uses this function instead
// and is preferable when a caller configures very small sample counts.
func BinomialSF(x, n int, p float64) float64 {
	if n < 0 || x < 0 {
		panic(fmt.Sprintf("stats: BinomialSF(%d, %d) with negative argument", x, n))
	}
	if !(p >= 0 && p <= 1) {
		panic(fmt.Sprintf("stats: BinomialSF with p=%v outside [0,1]", p))
	}
	if x > n {
		return 0
	}
	if x == 0 {
		return 1
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return 1
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	lgN, _ := math.Lgamma(float64(n + 1))
	sum := 0.0
	for i := x; i <= n; i++ {
		lgI, _ := math.Lgamma(float64(i + 1))
		lgNI, _ := math.Lgamma(float64(n - i + 1))
		sum += math.Exp(lgN - lgI - lgNI + float64(i)*lp + float64(n-i)*lq)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// RejectH0Exact is the exact-test counterpart of RejectH0: reject H0: θ ≤ θ0
// iff Pr[X ≥ x | θ = θ0] ≤ γ. For large n it agrees with the Z-test.
func (t ZTest) RejectH0Exact(x, n int) bool {
	return BinomialSF(x, n, t.Theta0) <= t.Gamma
}
