// Package dataset provides the POI databases the experiments run on.
//
// The paper evaluates on the Sequoia dataset (62,556 POIs from California,
// chorochronos.org), normalized to a square space. That file is not
// redistributable here, so Sequoia() generates a deterministic synthetic
// substitute with the same cardinality and a comparable spatial character:
// a Gaussian-mixture of urban clusters over the unit square plus a uniform
// rural background. The evaluation's measured quantities (crypto and
// communication costs, sanitation sampling, candidate-query counts) depend
// only on the POI count and broad clustering, so the substitution preserves
// the reported behaviour; Load() accepts the real file when available.
// See DESIGN.md §5 (Substitutions).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"ppgnn/internal/geo"
	"ppgnn/internal/rtree"
)

// SequoiaSize is the POI count of the Sequoia California dataset used in
// Section 8.1.
const SequoiaSize = 62556

// DefaultSeed makes Sequoia() reproducible across runs and machines.
const DefaultSeed = 20180326 // EDBT 2018 opening day

// Sequoia returns the synthetic Sequoia-substitute: SequoiaSize POIs in the
// unit square, deterministic for a given seed.
func Sequoia(seed int64) []rtree.Item {
	return Synthetic(seed, SequoiaSize)
}

// Synthetic generates n clustered POIs in the unit square: 75% drawn from a
// mixture of 48 Gaussian "urban" clusters, 25% uniform background.
func Synthetic(seed int64, n int) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 48
	type cluster struct {
		center geo.Point
		sigma  float64
		weight float64
	}
	cs := make([]cluster, clusters)
	totalW := 0.0
	for i := range cs {
		cs[i] = cluster{
			center: geo.Point{X: rng.Float64(), Y: rng.Float64()},
			sigma:  0.005 + rng.Float64()*0.04,
			weight: 0.2 + rng.Float64(), // some clusters are denser "cities"
		}
		totalW += cs[i].weight
	}
	items := make([]rtree.Item, n)
	for i := 0; i < n; i++ {
		var p geo.Point
		if rng.Float64() < 0.25 {
			p = geo.Point{X: rng.Float64(), Y: rng.Float64()}
		} else {
			// Pick a cluster proportionally to weight.
			w := rng.Float64() * totalW
			ci := 0
			for ; ci < clusters-1; ci++ {
				if w < cs[ci].weight {
					break
				}
				w -= cs[ci].weight
			}
			c := cs[ci]
			p = geo.Point{
				X: c.center.X + rng.NormFloat64()*c.sigma,
				Y: c.center.Y + rng.NormFloat64()*c.sigma,
			}
			p = geo.UnitRect.Clamp(p)
		}
		items[i] = rtree.Item{ID: int64(i), P: p}
	}
	return items
}

// Load reads a whitespace-separated point file (one "x y" pair per line,
// '#' comments and blank lines ignored) and normalizes the points into the
// unit square. This accepts the real Sequoia file when it is available.
func Load(r io.Reader) ([]rtree.Item, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pts []geo.Point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d: want at least 2 fields, got %d", line, len(fields))
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		pts = append(pts, geo.Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading: %w", err)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("dataset: no points found")
	}
	return Normalize(pts), nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) ([]rtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Normalize maps points into the unit square, preserving the aspect ratio
// by scaling both axes with the larger extent (as in the paper: "the
// location space is normalized into a square space").
func Normalize(pts []geo.Point) []rtree.Item {
	bounds := geo.RectOf(pts...)
	scale := bounds.Width()
	if bounds.Height() > scale {
		scale = bounds.Height()
	}
	if scale == 0 {
		scale = 1
	}
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{
			ID: int64(i),
			P: geo.Point{
				X: (p.X - bounds.Min.X) / scale,
				Y: (p.Y - bounds.Min.Y) / scale,
			},
		}
	}
	return items
}

// Save writes items in the text format Load reads.
func Save(w io.Writer, items []rtree.Item) error {
	bw := bufio.NewWriter(w)
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%.9f %.9f\n", it.P.X, it.P.Y); err != nil {
			return fmt.Errorf("dataset: writing: %w", err)
		}
	}
	return bw.Flush()
}
