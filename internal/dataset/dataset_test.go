package dataset

import (
	"bytes"
	"strings"
	"testing"

	"ppgnn/internal/geo"
)

func TestSequoiaSizeAndBounds(t *testing.T) {
	items := Sequoia(DefaultSeed)
	if len(items) != SequoiaSize {
		t.Fatalf("len = %d, want %d", len(items), SequoiaSize)
	}
	for _, it := range items {
		if !geo.UnitRect.Contains(it.P) {
			t.Fatalf("POI %d at %v outside unit square", it.ID, it.P)
		}
	}
	// IDs must be unique and dense.
	seen := make([]bool, len(items))
	for _, it := range items {
		if it.ID < 0 || it.ID >= int64(len(items)) || seen[it.ID] {
			t.Fatalf("bad or duplicate ID %d", it.ID)
		}
		seen[it.ID] = true
	}
}

func TestSequoiaDeterministic(t *testing.T) {
	a := Synthetic(7, 500)
	b := Synthetic(7, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	c := Synthetic(8, 500)
	same := 0
	for i := range a {
		if a[i].P == c[i].P {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticClustered(t *testing.T) {
	// A clustered distribution has markedly uneven cell occupancy compared
	// to uniform: measure the max/mean ratio over a 20×20 grid.
	items := Synthetic(1, 20000)
	const g = 20
	var cells [g * g]int
	for _, it := range items {
		x := int(it.P.X * g)
		y := int(it.P.Y * g)
		if x == g {
			x--
		}
		if y == g {
			y--
		}
		cells[y*g+x]++
	}
	maxC := 0
	for _, c := range cells {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(len(items)) / (g * g)
	if ratio := float64(maxC) / mean; ratio < 3 {
		t.Fatalf("max/mean cell occupancy %.2f; data not clustered", ratio)
	}
}

func TestLoadAndNormalize(t *testing.T) {
	in := `# Sequoia-format points
	 100.0 200.0
	 300.0 200.0

	 100.0 300.0
	`
	items, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("loaded %d points", len(items))
	}
	// Width 200 > height 100, so scale = 200.
	want := []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0.5}}
	for i, w := range want {
		if items[i].P != w {
			t.Fatalf("point %d = %v, want %v", i, items[i].P, w)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Load(strings.NewReader("1.0\n")); err == nil {
		t.Error("single-field line accepted")
	}
	if _, err := Load(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	items := Synthetic(3, 100)
	var buf bytes.Buffer
	if err := Save(&buf, items); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(items) {
		t.Fatalf("roundtrip length %d", len(back))
	}
	// Items are already normalized, Load re-normalizes; points within the
	// unit square survive up to the written precision and re-scaling.
	for i := range back {
		if back[i].P.Dist(items[i].P) > 0.01 {
			t.Fatalf("point %d drifted: %v vs %v", i, back[i].P, items[i].P)
		}
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	// A single point must not divide by zero.
	items := Normalize([]geo.Point{{X: 5, Y: 5}})
	if items[0].P != (geo.Point{X: 0, Y: 0}) {
		t.Fatalf("degenerate normalize = %v", items[0].P)
	}
}
