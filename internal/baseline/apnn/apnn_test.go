package apnn

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
)

func testClient(t *testing.T, b int) *Client {
	t.Helper()
	key, err := paillier.GenerateKey(nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	return &Client{B: b, Key: key, Rng: rand.New(rand.NewSource(1))}
}

func TestQueryReturnsCellAnswer(t *testing.T) {
	items := dataset.Synthetic(2, 3000)
	srv, err := NewServer(items, geo.UnitRect, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	cli := testClient(t, 3)
	var m cost.Meter
	loc := geo.Point{X: 0.42, Y: 0.58}
	recs, err := cli.Query(srv, loc, 5, &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	// The answer must equal the precomputed answer of the user's own cell.
	cx, cy := srv.CellOf(loc)
	want := srv.answers[cy*srv.Grid+cx][:5]
	for i, r := range recs {
		if r.Point(geo.UnitRect).Dist(want[i].P) > 1e-6 {
			t.Fatalf("rank %d: got %v, want %v", i, r.Point(geo.UnitRect), want[i].P)
		}
	}
	s := m.Snapshot()
	if s.UserToLSPBytes == 0 || s.LSPToUserBytes == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestAnswerIsApproximate(t *testing.T) {
	// With a coarse grid, the cell-center answer can differ from the true
	// kNN — the approximation the paper criticizes. We only assert the
	// answer is "near" the true one (bounded by the cell diagonal).
	items := dataset.Synthetic(3, 5000)
	srv, err := NewServer(items, geo.UnitRect, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	cli := testClient(t, 2)
	loc := geo.Point{X: 0.31, Y: 0.77}
	recs, err := cli.Query(srv, loc, 4, &m0)
	if err != nil {
		t.Fatal(err)
	}
	cellDiag := 2.0 / 8 * 1.5
	for _, r := range recs {
		if r.Point(geo.UnitRect).Dist(loc) > cellDiag {
			t.Fatalf("answer POI at %v implausibly far from %v", r.Point(geo.UnitRect), loc)
		}
	}
}

var m0 cost.Meter

func TestCloakRegionHidesCell(t *testing.T) {
	// The request never reveals which of the b² cells is the user's: run
	// many queries and confirm the user's cell is not always at a fixed
	// offset in the cloak region.
	items := dataset.Synthetic(4, 1000)
	srv, err := NewServer(items, geo.UnitRect, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	cli := testClient(t, 4)
	loc := geo.Point{X: 0.5, Y: 0.5}
	cx, cy := srv.CellOf(loc)
	offsets := map[[2]int]bool{}
	for i := 0; i < 30; i++ {
		offX := cli.Rng.Intn(cli.B)
		offY := cli.Rng.Intn(cli.B)
		x0 := clamp(cx-offX, 0, srv.Grid-cli.B)
		y0 := clamp(cy-offY, 0, srv.Grid-cli.B)
		offsets[[2]int{cx - x0, cy - y0}] = true
	}
	if len(offsets) < 2 {
		t.Fatal("cloak region always places the user at the same offset")
	}
}

func TestServerValidation(t *testing.T) {
	items := dataset.Synthetic(5, 200)
	srv, err := NewServer(items, geo.UnitRect, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := paillier.GenerateKey(nil, 256)
	cases := []*QueryMsg{
		{K: 0, B: 2, PK: key.N},                       // k=0
		{K: 99, B: 2, PK: key.N},                      // k > MaxK
		{K: 2, X0: 3, Y0: 0, B: 2, PK: key.N},         // region out of grid
		{K: 2, X0: 0, Y0: 0, B: 2, PK: key.N, V: nil}, // wrong indicator length
	}
	for i, q := range cases {
		if _, err := srv.Process(q, nil); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewServerValidation(t *testing.T) {
	items := dataset.Synthetic(6, 100)
	if _, err := NewServer(items, geo.UnitRect, 0, 4); err == nil {
		t.Error("grid=0 accepted")
	}
	if _, err := NewServer(items, geo.UnitRect, 4, 0); err == nil {
		t.Error("maxK=0 accepted")
	}
}

func TestPrecomputeTimeRecorded(t *testing.T) {
	items := dataset.Synthetic(7, 2000)
	srv, err := NewServer(items, geo.UnitRect, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if srv.PrecomputeTime() <= 0 {
		t.Fatal("no precompute time recorded")
	}
}

func TestCellOfCorners(t *testing.T) {
	items := dataset.Synthetic(8, 100)
	srv, err := NewServer(items, geo.UnitRect, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cx, cy := srv.CellOf(geo.Point{X: 0, Y: 0}); cx != 0 || cy != 0 {
		t.Fatalf("corner cell (%d,%d)", cx, cy)
	}
	if cx, cy := srv.CellOf(geo.Point{X: 1, Y: 1}); cx != 9 || cy != 9 {
		t.Fatalf("max corner cell (%d,%d)", cx, cy)
	}
	// Clamping for out-of-space points.
	if cx, _ := srv.CellOf(geo.Point{X: 2, Y: 0.5}); cx != 9 {
		t.Fatalf("out-of-space not clamped: %d", cx)
	}
}
