// Package apnn implements the single-user baseline of Section 8.2: the
// approximate private kNN of Yi et al. [36] ("Practical Approximate k
// Nearest Neighbor Queries with Location and Query Privacy", TKDE 2016).
//
// The LSP tiles the space into a G×G grid and precomputes the kNN answer
// with respect to every cell center. At query time the user picks a b×b
// cloak region of cells containing her cell and privately retrieves the
// precomputed answer of her own cell with an encrypted indicator vector of
// length b², so the LSP learns neither the cell (Privacy I/II, level b²)
// nor more than one answer is released (Privacy III).
//
// Trade-offs the paper highlights: the answer is approximate (computed for
// the cell center, not the true location), the precomputation must be
// redone when the database changes, and the scheme cannot extend to group
// queries because the number of possible (multi-cell) queries explodes.
package apnn

import (
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"ppgnn/internal/cost"
	"ppgnn/internal/encode"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
	"ppgnn/internal/rtree"
)

// Server is the APNN LSP: a grid of precomputed kNN answers.
type Server struct {
	Space   geo.Rect
	Grid    int // G: cells per axis
	MaxK    int // precomputed answer length
	tree    *rtree.Tree
	answers [][]rtree.Item // per cell, MaxK nearest to the cell center
	preTime time.Duration
}

// NewServer precomputes the per-cell answers. The precomputation time is
// retrievable via PrecomputeTime — the "expensive update cost" the paper
// attributes to this class of schemes.
func NewServer(items []rtree.Item, space geo.Rect, grid, maxK int) (*Server, error) {
	if grid < 1 || maxK < 1 {
		return nil, fmt.Errorf("apnn: invalid grid=%d maxK=%d", grid, maxK)
	}
	s := &Server{
		Space: space, Grid: grid, MaxK: maxK,
		tree: rtree.Bulk(items, rtree.DefaultMaxEntries),
	}
	start := time.Now()
	s.answers = make([][]rtree.Item, grid*grid)
	for cy := 0; cy < grid; cy++ {
		for cx := 0; cx < grid; cx++ {
			center := s.cellCenter(cx, cy)
			nbs := s.tree.NearestK(center, maxK)
			ans := make([]rtree.Item, len(nbs))
			for i, nb := range nbs {
				ans[i] = nb.Item
			}
			s.answers[cy*grid+cx] = ans
		}
	}
	s.preTime = time.Since(start)
	return s, nil
}

// PrecomputeTime is the one-time (and per-database-update) cost of building
// the grid answers.
func (s *Server) PrecomputeTime() time.Duration { return s.preTime }

func (s *Server) cellCenter(cx, cy int) geo.Point {
	w := s.Space.Width() / float64(s.Grid)
	h := s.Space.Height() / float64(s.Grid)
	return geo.Point{
		X: s.Space.Min.X + (float64(cx)+0.5)*w,
		Y: s.Space.Min.Y + (float64(cy)+0.5)*h,
	}
}

// CellOf returns the grid coordinates of a point.
func (s *Server) CellOf(p geo.Point) (cx, cy int) {
	fx := (p.X - s.Space.Min.X) / s.Space.Width()
	fy := (p.Y - s.Space.Min.Y) / s.Space.Height()
	cx = int(fx * float64(s.Grid))
	cy = int(fy * float64(s.Grid))
	if cx >= s.Grid {
		cx = s.Grid - 1
	}
	if cy >= s.Grid {
		cy = s.Grid - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cx, cy
}

// QueryMsg is the client's request: a cloak region of b×b cells and an
// encrypted indicator of the user's cell within it.
type QueryMsg struct {
	K         int
	X0, Y0, B int        // cloak region: cells [X0,X0+B)×[Y0,Y0+B)
	PK        *big.Int   // Paillier modulus
	V         []*big.Int // ε_1 indicator, length B²
}

// byteLen approximates the serialized request size (the communication
// metric): fixed header + B² ciphertexts.
func (q *QueryMsg) byteLen() int {
	kb := (q.PK.BitLen() + 7) / 8
	return 16 + kb + len(q.V)*2*kb
}

// Process runs the private selection over the cloak region's precomputed
// answers, charging its work to the meter's LSP time.
func (s *Server) Process(q *QueryMsg, meter *cost.Meter) ([]*big.Int, error) {
	start := time.Now()
	defer func() { meter.AddTime(cost.LSP, time.Since(start)) }()
	if q.K < 1 || q.K > s.MaxK {
		return nil, fmt.Errorf("apnn: k=%d outside [1,%d]", q.K, s.MaxK)
	}
	if q.B < 1 || q.X0 < 0 || q.Y0 < 0 || q.X0+q.B > s.Grid || q.Y0+q.B > s.Grid {
		return nil, fmt.Errorf("apnn: cloak region out of grid")
	}
	if len(q.V) != q.B*q.B {
		return nil, fmt.Errorf("apnn: indicator length %d != b²=%d", len(q.V), q.B*q.B)
	}
	pk := paillier.NewPublicKey(q.PK)
	codec := encode.Codec{ModulusBits: q.PK.BitLen()}

	// Encode each cell's k-prefix answer.
	m := codec.IntsFor(q.K)
	cols := make([][]*big.Int, len(q.V))
	for i := range cols {
		cx := q.X0 + i%q.B
		cy := q.Y0 + i/q.B
		ans := s.answers[cy*s.Grid+cx]
		if len(ans) > q.K {
			ans = ans[:q.K]
		}
		recs := make([]encode.Record, len(ans))
		for j, it := range ans {
			recs[j] = encode.RecordOf(it.ID, it.P, s.Space)
		}
		cols[i] = encode.Pad(codec.Encode(recs), m)
	}
	v := make([]*paillier.Ciphertext, len(q.V))
	for i, c := range q.V {
		v[i] = &paillier.Ciphertext{C: c, S: 1}
	}
	out := make([]*big.Int, m)
	for row := 0; row < m; row++ {
		coeffs := make([]*big.Int, len(cols))
		for i := range cols {
			coeffs[i] = cols[i][row]
		}
		ct, err := pk.DotProduct(coeffs, v)
		if err != nil {
			return nil, fmt.Errorf("apnn: selection: %w", err)
		}
		out[row] = ct.C
	}
	meter.CountOp("apnn-dot", int64(m))
	return out, nil
}

// Client is the single APNN user.
type Client struct {
	B   int // cloak width in cells (paper: 5, i.e. b² = 25 ≙ d = 25)
	Key *paillier.PrivateKey
	Rng *rand.Rand
}

// Query runs the full APNN round trip and returns the (approximate)
// answer records. Costs land on the meter.
func (c *Client) Query(srv *Server, loc geo.Point, k int, meter *cost.Meter) ([]encode.Record, error) {
	userStart := time.Now()
	cx, cy := srv.CellOf(loc)
	// Place the user's cell uniformly inside the cloak region, clamped to
	// the grid.
	offX := c.Rng.Intn(c.B)
	offY := c.Rng.Intn(c.B)
	x0 := clamp(cx-offX, 0, srv.Grid-c.B)
	y0 := clamp(cy-offY, 0, srv.Grid-c.B)
	idx := (cy-y0)*c.B + (cx - x0)

	v := make([]*big.Int, c.B*c.B)
	for i := range v {
		bit := int64(0)
		if i == idx {
			bit = 1
		}
		ct, err := c.Key.EncryptInt64(nil, bit, 1)
		if err != nil {
			return nil, fmt.Errorf("apnn: encrypting indicator: %w", err)
		}
		v[i] = ct.C
	}
	q := &QueryMsg{K: k, X0: x0, Y0: y0, B: c.B, PK: c.Key.N, V: v}
	meter.AddTime(cost.Users, time.Since(userStart))
	meter.AddBytes(cost.UserToLSP, q.byteLen())

	cts, err := srv.Process(q, meter)
	if err != nil {
		return nil, err
	}
	kb := (c.Key.N.BitLen() + 7) / 8
	meter.AddBytes(cost.LSPToUser, len(cts)*2*kb)

	decStart := time.Now()
	defer func() { meter.AddTime(cost.Users, time.Since(decStart)) }()
	ints := make([]*big.Int, len(cts))
	for i, ct := range cts {
		m, err := c.Key.Decrypt(&paillier.Ciphertext{C: ct, S: 1})
		if err != nil {
			return nil, fmt.Errorf("apnn: decrypting: %w", err)
		}
		ints[i] = m
	}
	codec := encode.Codec{ModulusBits: c.Key.N.BitLen()}
	return codec.Decode(ints)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
