// Package glp implements the second group-query baseline of Section 8.3.2:
// the group location privacy scheme of Ashouri-Talouki et al. [2] ("GLP: A
// cryptographic approach for group location privacy", Computer
// Communications 2012).
//
// The users jointly compute their centroid with a secure multiparty sum —
// modeled here as pairwise additive masking with Paillier-encrypted mask
// exchange, which reproduces the O(n²) cryptographic operations and the
// O(n²) intra-group traffic the paper measures (Figure 8d–e) — and the LSP
// answers a plaintext kNN query at the centroid.
//
// Privacy profile (Table 4): Privacy I and III hold (no user location or
// extra POI is revealed), but the LSP sees the centroid query and its
// answer (no Privacy II), and n−1 colluders can recover the last user's
// location from the centroid (no Privacy IV). The answer is approximate:
// the kNN of the centroid is generally not the kGNN of the group.
package glp

import (
	"crypto/rand"
	"fmt"
	"math/big"
	mrand "math/rand"
	"time"

	"ppgnn/internal/cost"
	"ppgnn/internal/geo"
	"ppgnn/internal/paillier"
	"ppgnn/internal/rtree"
)

// coordBits quantizes coordinates for the secure sum; 32 bits per axis
// matches the answer encoding used elsewhere.
const coordBits = 32

// Server is the GLP LSP: a plain kNN server.
type Server struct {
	Space geo.Rect
	tree  *rtree.Tree
}

// NewServer indexes the POI database.
func NewServer(items []rtree.Item, space geo.Rect) *Server {
	return &Server{Space: space, tree: rtree.Bulk(items, rtree.DefaultMaxEntries)}
}

// KNN answers the plaintext centroid query (the LSP sees it — the Privacy
// II loss of this scheme).
func (s *Server) KNN(center geo.Point, k int, meter *cost.Meter) []rtree.Item {
	start := time.Now()
	defer func() { meter.AddTime(cost.LSP, time.Since(start)) }()
	nbs := s.tree.NearestK(center, k)
	out := make([]rtree.Item, len(nbs))
	for i, nb := range nbs {
		out[i] = nb.Item
	}
	return out
}

// Group is the GLP client group.
type Group struct {
	Locations []geo.Point
	Space     geo.Rect
	KeyBits   int
	Rng       *mrand.Rand

	keys []*paillier.PrivateKey // per-user keys, generated on first use
}

// Query runs the GLP protocol: secure-sum centroid then centroid kNN.
func (g *Group) Query(srv *Server, k int, meter *cost.Meter) ([]rtree.Item, error) {
	n := len(g.Locations)
	if n < 1 {
		return nil, fmt.Errorf("glp: empty group")
	}
	if g.KeyBits < 128 {
		return nil, fmt.Errorf("glp: key size %d too small for the mask range", g.KeyBits)
	}
	// Every user has a key pair for receiving encrypted mask shares;
	// generated once per group and reused across queries (the one-time
	// keygen is excluded from the per-query user cost, as for PPGNN).
	if g.keys == nil {
		keys := make([]*paillier.PrivateKey, n)
		for i := range keys {
			key, err := paillier.GenerateKey(nil, g.KeyBits)
			if err != nil {
				return nil, fmt.Errorf("glp: keygen: %w", err)
			}
			keys[i] = key
		}
		g.keys = keys
	}
	keys := g.keys
	userStart := time.Now()

	// Quantize locations; the modulus for the additive sharing must exceed
	// n·2^coordBits on each axis, so pack (x,y) into one integer with a
	// wide gap.
	const axisShift = coordBits + 16
	quant := func(p geo.Point) *big.Int {
		fx := (p.X - g.Space.Min.X) / g.Space.Width()
		fy := (p.Y - g.Space.Min.Y) / g.Space.Height()
		x := uint64(fx * float64(1<<coordBits-1))
		y := uint64(fy * float64(1<<coordBits-1))
		v := new(big.Int).SetUint64(x)
		v.Lsh(v, axisShift)
		v.Or(v, new(big.Int).SetUint64(y))
		return v
	}

	// Pairwise additive masking: user i draws r_ij for every j≠i, sends
	// Enc_j(r_ij), and publishes s_i = v_i + Σ_j r_ji − Σ_j r_ij. The sum
	// of the s_i equals Σ v_i with all masks cancelling. This costs n(n−1)
	// encryptions + decryptions and n(n−1) ciphertext transfers — the
	// O(n²) behaviour of Figure 8e.
	maskBound := new(big.Int).Lsh(big.NewInt(1), 2*axisShift)
	sent := make([][]*big.Int, n) // sent[i][j]: r_ij plaintext
	recv := make([][]*big.Int, n) // recv[j][i]: r_ij decrypted by j
	for i := range sent {
		sent[i] = make([]*big.Int, n)
		recv[i] = make([]*big.Int, n)
	}
	encCount := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r, err := rand.Int(rand.Reader, maskBound)
			if err != nil {
				return nil, fmt.Errorf("glp: drawing mask: %w", err)
			}
			sent[i][j] = r
			ct, err := keys[j].PublicKey.Encrypt(nil, r, 1)
			if err != nil {
				return nil, fmt.Errorf("glp: encrypting mask: %w", err)
			}
			meter.AddBytes(cost.IntraGroup, 2*((keys[j].N.BitLen()+7)/8))
			dec, err := keys[j].Decrypt(ct)
			if err != nil {
				return nil, fmt.Errorf("glp: decrypting mask: %w", err)
			}
			recv[j][i] = dec
			encCount++
		}
	}
	meter.CountOp("glp-enc", int64(encCount))
	meter.CountOp("glp-dec", int64(encCount))

	// Each user publishes a masked share; the shares circulate in the
	// group (n−1 recipients each).
	mod := new(big.Int).Lsh(big.NewInt(1), 3*axisShift) // > n·(v+masks)
	total := new(big.Int)
	for i := 0; i < n; i++ {
		s := quant(g.Locations[i])
		si := new(big.Int).Set(s)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			si.Add(si, recv[i][j])
			si.Sub(si, sent[i][j])
		}
		si.Mod(si, mod)
		meter.AddBytes(cost.IntraGroup, (n-1)*len(si.Bytes()))
		total.Add(total, si)
	}
	total.Mod(total, mod)

	// Unpack the centroid. The y-axis sum occupies the low bits (each
	// user's y < 2^32, so the sum < n·2^32 < 2^axisShift).
	yMask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), axisShift), big.NewInt(1))
	sumY := new(big.Int).And(total, yMask)
	sumX := new(big.Int).Rsh(total, axisShift)
	cx := float64(sumX.Uint64()) / float64(n) / float64(1<<coordBits-1)
	cy := float64(sumY.Uint64()) / float64(n) / float64(1<<coordBits-1)
	centroid := geo.Point{
		X: g.Space.Min.X + cx*g.Space.Width(),
		Y: g.Space.Min.Y + cy*g.Space.Height(),
	}
	meter.AddTime(cost.Users, time.Since(userStart))

	// The coordinator sends the centroid query; LSP returns the plaintext
	// answer; the coordinator broadcasts it.
	meter.AddBytes(cost.UserToLSP, 20)
	res := srv.KNN(centroid, k, meter)
	meter.AddBytes(cost.LSPToUser, len(res)*24)
	meter.AddBytes(cost.IntraGroup, (n-1)*len(res)*24)
	return res, nil
}

// Centroid returns the exact centroid for test comparison.
func (g *Group) Centroid() geo.Point { return geo.Centroid(g.Locations) }
