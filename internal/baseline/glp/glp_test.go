package glp

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
)

func testGroup(rng *rand.Rand, n int) *Group {
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return &Group{Locations: locs, Space: geo.UnitRect, KeyBits: 256, Rng: rng}
}

// The secure sum must reconstruct the true centroid (up to quantization),
// so the GLP answer equals the plaintext centroid kNN.
func TestGLPMatchesCentroidKNN(t *testing.T) {
	items := dataset.Synthetic(1, 3000)
	srv := NewServer(items, geo.UnitRect)
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := testGroup(rng, 5)
		var m cost.Meter
		got, err := g.Query(srv, 6, &m)
		if err != nil {
			t.Fatal(err)
		}
		want := srv.KNN(g.Centroid(), 6, nil)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: got %d, want %d (quantization drift?)",
					trial, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// The O(n²) behaviour of Figure 8d–e: crypto ops and intra-group bytes
// grow quadratically with n.
func TestGLPQuadraticCosts(t *testing.T) {
	items := dataset.Synthetic(2, 1000)
	srv := NewServer(items, geo.UnitRect)
	measure := func(n int) (int64, int64) {
		rng := rand.New(rand.NewSource(7))
		g := testGroup(rng, n)
		var m cost.Meter
		if _, err := g.Query(srv, 4, &m); err != nil {
			t.Fatal(err)
		}
		s := m.Snapshot()
		return s.Ops["glp-enc"], s.IntraGroupBytes
	}
	enc4, intra4 := measure(4)
	enc8, intra8 := measure(8)
	if enc4 != 4*3 || enc8 != 8*7 {
		t.Fatalf("encryption counts %d, %d; want n(n-1)", enc4, enc8)
	}
	// intra bytes should grow by roughly (8·7)/(4·3) ≈ 4.7×.
	if ratio := float64(intra8) / float64(intra4); ratio < 3 {
		t.Fatalf("intra-group bytes ratio %.2f; expected quadratic growth", ratio)
	}
}

func TestGLPValidation(t *testing.T) {
	srv := NewServer(dataset.Synthetic(3, 100), geo.UnitRect)
	empty := &Group{Space: geo.UnitRect, KeyBits: 256, Rng: rand.New(rand.NewSource(1))}
	if _, err := empty.Query(srv, 4, nil); err == nil {
		t.Error("empty group accepted")
	}
	weak := testGroup(rand.New(rand.NewSource(2)), 2)
	weak.KeyBits = 64
	if _, err := weak.Query(srv, 4, nil); err == nil {
		t.Error("undersized key accepted")
	}
}

func TestGLPSingleUser(t *testing.T) {
	items := dataset.Synthetic(4, 500)
	srv := NewServer(items, geo.UnitRect)
	rng := rand.New(rand.NewSource(3))
	g := testGroup(rng, 1)
	got, err := g.Query(srv, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := srv.KNN(g.Locations[0], 3, nil)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("single-user GLP != kNN at rank %d", i)
		}
	}
}
