package ippf

import (
	"math/rand"
	"testing"

	"ppgnn/internal/cost"
	"ppgnn/internal/dataset"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
)

func testGroup(rng *rand.Rand, n int) *Group {
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{X: 0.3 + 0.4*rng.Float64(), Y: 0.3 + 0.4*rng.Float64()}
	}
	return &Group{
		Locations: locs,
		RectArea:  5e-6, // the paper's 0.0005% of the space
		Agg:       gnn.Sum,
		Space:     geo.UnitRect,
		Rng:       rng,
	}
}

// The core guarantee: the filtered IPPF answer equals the true kGNN.
func TestIPPFExactAnswer(t *testing.T) {
	items := dataset.Synthetic(1, 5000)
	srv := NewServer(items, geo.UnitRect)
	bf := &gnn.BruteForce{Items: items, Agg: gnn.Sum}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		g := testGroup(rng, 4)
		var m cost.Meter
		got, err := g.Query(srv, 6, &m)
		if err != nil {
			t.Fatal(err)
		}
		want := bf.Search(g.Locations, 6)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Item.ID != want[i].Item.ID {
				t.Fatalf("trial %d rank %d: got %d, want %d", trial, i, got[i].Item.ID, want[i].Item.ID)
			}
		}
	}
}

// Exactness must hold for every aggregate.
func TestIPPFExactAllAggregates(t *testing.T) {
	items := dataset.Synthetic(2, 3000)
	srv := NewServer(items, geo.UnitRect)
	for _, agg := range []gnn.Aggregate{gnn.Sum, gnn.Max, gnn.Min} {
		rng := rand.New(rand.NewSource(9))
		g := testGroup(rng, 5)
		g.Agg = agg
		got, err := g.Query(srv, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := (&gnn.BruteForce{Items: items, Agg: agg}).Search(g.Locations, 8)
		for i := range want {
			if got[i].Item.ID != want[i].Item.ID {
				t.Fatalf("%v rank %d: got %d, want %d", agg, i, got[i].Item.ID, want[i].Item.ID)
			}
		}
	}
}

// Every incremental round's candidate set must contain the true next-best
// unreceived POI (the invariant behind the exactness proof).
func TestIncrementalRoundsCoverTruth(t *testing.T) {
	items := dataset.Synthetic(3, 2000)
	srv := NewServer(items, geo.UnitRect)
	rng := rand.New(rand.NewSource(4))
	g := testGroup(rng, 3)
	rects := make([]geo.Rect, 3)
	for i, p := range g.Locations {
		rects[i] = g.cloak(p)
	}
	ses, err := srv.NewSession(rects, gnn.Sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	want := (&gnn.BruteForce{Items: items, Agg: gnn.Sum}).Search(g.Locations, k)
	received := map[int64]bool{}
	for round := 0; round < k; round++ {
		for _, c := range ses.NextCandidates(nil) {
			received[c.ID] = true
		}
		if !received[want[round].Item.ID] {
			t.Fatalf("round %d: true rank-%d POI %d not yet received", round, round+1, want[round].Item.ID)
		}
	}
}

// The communication cost is dominated by the per-rank candidate streams —
// far larger than k POIs, and growing with k (the Figure 8a effect).
func TestCandidateStreamIsLarge(t *testing.T) {
	items := dataset.Sequoia(dataset.DefaultSeed)
	srv := NewServer(items, geo.UnitRect)
	measure := func(k int) int64 {
		rng := rand.New(rand.NewSource(3))
		g := testGroup(rng, 8)
		var m cost.Meter
		res, err := g.Query(srv, k, &m)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != k {
			t.Fatalf("filtered answer %d, want %d", len(res), k)
		}
		return m.Snapshot().Ops["ippf-candidates"]
	}
	c2, c16 := measure(2), measure(16)
	if c2 < 16 {
		t.Fatalf("k=2 candidates = %d; superset effect missing", c2)
	}
	if c16 < 3*c2 {
		t.Fatalf("candidates did not grow with k: k=2→%d, k=16→%d", c2, c16)
	}
}

func TestCloakContainsUser(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := testGroup(rng, 1)
	for i := 0; i < 200; i++ {
		p := geo.Point{X: rng.Float64(), Y: rng.Float64()}
		r := g.cloak(p)
		if !r.Contains(p) {
			t.Fatalf("cloak %v does not contain %v", r, p)
		}
		if !geo.UnitRect.ContainsRect(r) {
			t.Fatalf("cloak %v leaves the space", r)
		}
	}
}

func TestCloakCornerCases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testGroup(rng, 1)
	for _, p := range []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: 1, Y: 0}} {
		r := g.cloak(p)
		if !r.Contains(p) {
			t.Fatalf("corner cloak %v does not contain %v", r, p)
		}
	}
}

func TestValidation(t *testing.T) {
	srv := NewServer(dataset.Synthetic(6, 100), geo.UnitRect)
	if _, err := srv.NewSession(nil, gnn.Sum, nil); err == nil {
		t.Error("empty rects accepted")
	}
	bad := []geo.Rect{{Min: geo.Point{X: 0.5, Y: 0.5}, Max: geo.Point{X: 0.1, Y: 0.1}}}
	if _, err := srv.NewSession(bad, gnn.Sum, nil); err == nil {
		t.Error("invalid rect accepted")
	}
	g := testGroup(rand.New(rand.NewSource(1)), 2)
	if _, err := g.Query(srv, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	empty := &Group{Agg: gnn.Sum, Space: geo.UnitRect, Rng: rand.New(rand.NewSource(2))}
	if _, err := empty.Query(srv, 3, nil); err == nil {
		t.Error("empty group accepted")
	}
}

// Degenerate rectangles (points) make the bounds tight, so each round
// returns very few candidates.
func TestPointRectangles(t *testing.T) {
	items := dataset.Synthetic(7, 2000)
	srv := NewServer(items, geo.UnitRect)
	locs := []geo.Point{{X: 0.4, Y: 0.4}, {X: 0.6, Y: 0.6}}
	rects := []geo.Rect{{Min: locs[0], Max: locs[0]}, {Min: locs[1], Max: locs[1]}}
	ses, err := srv.NewSession(rects, gnn.Sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for round := 0; round < 4; round++ {
		total += len(ses.NextCandidates(nil))
	}
	if total < 4 {
		t.Fatalf("%d candidates < k", total)
	}
	if total > 20 {
		t.Fatalf("point rectangles produced %d candidates; pruning broken", total)
	}
}

// Exhausting the database terminates cleanly.
func TestSmallDatabaseExhaustion(t *testing.T) {
	items := dataset.Synthetic(8, 5)
	srv := NewServer(items, geo.UnitRect)
	rng := rand.New(rand.NewSource(9))
	g := testGroup(rng, 2)
	res, err := g.Query(srv, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results from a 5-POI database", len(res))
	}
}

func BenchmarkIPPFQuery(b *testing.B) {
	items := dataset.Sequoia(dataset.DefaultSeed)
	srv := NewServer(items, geo.UnitRect)
	rng := rand.New(rand.NewSource(1))
	g := testGroup(rng, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Query(srv, 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}
