// Package ippf implements the group-query baseline of Section 8.3.2: the
// incremental pruning private filter of Hashem, Kulik and Zhang [14]
// ("Privacy preserving group nearest neighbor queries", EDBT 2010).
//
// Each user obfuscates their location into a cloak rectangle; the LSP
// evaluates the group query with respect to the rectangles and returns
// *candidate supersets* that are guaranteed to contain the true answer,
// which the users then filter cooperatively with their real locations.
//
// The protocol is incremental — one round per rank r = 1..k. In round r
// the LSP sends every not-yet-sent POI that could be the best remaining
// one for some true locations inside the rectangles: with per-user
// rectangles R_1..R_n, POI p qualifies iff
//
//	F(mindist(p,R_i)) ≤ min over unsent q of F(maxdist(q,R_i)),
//
// since the aggregate cost of p for any consistent locations lies in
// [F(mindist(p,R_i)), F(maxdist(p,R_i))]. The union of the k rounds
// provably contains the true top-k, and the group filters it exactly.
//
// This per-rank streaming is what makes IPPF's communication cost explode
// (hundreds to thousands of POIs per query, growing with k and circulating
// within the group — Figure 8a/8d), and it is why Privacy III fails (many
// extra POIs are disclosed). Privacy IV also fails in the cooperative
// filtering phase, where intermediate rankings leak to neighbors.
package ippf

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ppgnn/internal/cost"
	"ppgnn/internal/geo"
	"ppgnn/internal/gnn"
	"ppgnn/internal/rtree"
)

// Server is the IPPF LSP.
type Server struct {
	Space geo.Rect
	items []rtree.Item
}

// NewServer wraps the POI database.
func NewServer(items []rtree.Item, space geo.Rect) *Server {
	return &Server{Space: space, items: items}
}

// session holds the LSP-side state of one incremental query: the per-POI
// bounds (computed once) and the set of already-sent POIs.
type session struct {
	srv  *Server
	lo   []float64 // F(mindist(p, R_i)) per POI
	hi   []float64 // F(maxdist(p, R_i)) per POI
	sent []bool
}

// NewSession validates the cloak rectangles and precomputes the aggregate
// bounds for every POI.
func (s *Server) NewSession(rects []geo.Rect, agg gnn.Aggregate, meter *cost.Meter) (*session, error) {
	start := time.Now()
	defer func() { meter.AddTime(cost.LSP, time.Since(start)) }()
	if len(rects) == 0 {
		return nil, fmt.Errorf("ippf: no cloak rectangles")
	}
	for _, r := range rects {
		if !r.Valid() {
			return nil, fmt.Errorf("ippf: invalid cloak rectangle %v", r)
		}
	}
	ses := &session{
		srv:  s,
		lo:   make([]float64, len(s.items)),
		hi:   make([]float64, len(s.items)),
		sent: make([]bool, len(s.items)),
	}
	los := make([]float64, len(rects))
	his := make([]float64, len(rects))
	for i, it := range s.items {
		for j, r := range rects {
			los[j] = r.MinDist(it.P)
			his[j] = r.MaxDist(it.P)
		}
		ses.lo[i] = agg.Combine(los)
		ses.hi[i] = agg.Combine(his)
	}
	return ses, nil
}

// NextCandidates returns the candidates for the next rank: every unsent
// POI whose lower bound does not exceed the smallest unsent upper bound.
// The returned POIs are marked sent. It returns nil when the database is
// exhausted.
func (ses *session) NextCandidates(meter *cost.Meter) []rtree.Item {
	start := time.Now()
	defer func() { meter.AddTime(cost.LSP, time.Since(start)) }()
	tau := math.Inf(1)
	for i, h := range ses.hi {
		if !ses.sent[i] && h < tau {
			tau = h
		}
	}
	if math.IsInf(tau, 1) {
		return nil
	}
	var out []rtree.Item
	for i := range ses.srv.items {
		if !ses.sent[i] && ses.lo[i] <= tau {
			ses.sent[i] = true
			out = append(out, ses.srv.items[i])
		}
	}
	meter.CountOp("ippf-candidates", int64(len(out)))
	return out
}

// Group is the IPPF client group.
type Group struct {
	Locations []geo.Point
	// RectArea is each user's cloak-rectangle area as a fraction of the
	// space (paper: 0.0005% = 5e-6, comparable to hiding among d=25 of the
	// ~5M California addresses).
	RectArea float64
	Agg      gnn.Aggregate
	Space    geo.Rect
	Rng      *rand.Rand
}

// cloak returns a random rectangle of the configured area containing p.
func (g *Group) cloak(p geo.Point) geo.Rect {
	side := g.Space.Width() * math.Sqrt(g.RectArea)
	if side <= 0 {
		side = 1e-6
	}
	// Place p uniformly inside the rectangle, clamped to the space.
	dx := g.Rng.Float64() * side
	dy := g.Rng.Float64() * side
	min := geo.Point{X: p.X - dx, Y: p.Y - dy}
	min = geo.Rect{Min: g.Space.Min, Max: geo.Point{X: g.Space.Max.X - side, Y: g.Space.Max.Y - side}}.Clamp(min)
	return geo.Rect{Min: min, Max: geo.Point{X: min.X + side, Y: min.Y + side}}
}

// Query runs the k-round IPPF protocol and returns the exact top-k (IPPF
// is exact in answer content — its weaknesses are cost and privacy, not
// accuracy). Costs land on the meter.
func (g *Group) Query(srv *Server, k int, meter *cost.Meter) ([]gnn.Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("ippf: k=%d < 1", k)
	}
	n := len(g.Locations)
	if n == 0 {
		return nil, fmt.Errorf("ippf: empty group")
	}
	userStart := time.Now()
	rects := make([]geo.Rect, n)
	for i, p := range g.Locations {
		rects[i] = g.cloak(p)
	}
	meter.AddTime(cost.Users, time.Since(userStart))
	// Each user sends one rectangle (4 floats + id).
	meter.AddBytes(cost.UserToLSP, n*36)

	ses, err := srv.NewSession(rects, g.Agg, meter)
	if err != nil {
		return nil, err
	}

	// k incremental rounds; the group accumulates candidates and filters
	// with the real locations. In [14] the filter is a cooperative private
	// protocol among the users; its computation is equivalent to scoring
	// every candidate against all real locations, and the candidates
	// circulate through the group — the intra-group traffic below.
	var received []rtree.Item
	for round := 0; round < k; round++ {
		cands := ses.NextCandidates(meter)
		if len(cands) == 0 {
			break
		}
		// LSP → group, then circulated to the other n−1 users.
		meter.AddBytes(cost.LSPToUser, len(cands)*24)
		meter.AddBytes(cost.IntraGroup, (n-1)*len(cands)*24)
		received = append(received, cands...)
	}
	filterStart := time.Now()
	defer func() { meter.AddTime(cost.Users, time.Since(filterStart)) }()
	bf := &gnn.BruteForce{Items: received, Agg: g.Agg}
	return bf.Search(g.Locations, k), nil
}
