package modmath

import (
	"time"

	"ppgnn/internal/obs"
)

// Kernel telemetry (DESIGN.md §9, §11). Like the paillier layer, modmath
// reports to the process-global obs.Default registry with pre-bound
// instruments: the kernel has no per-query object, and its signals —
// how often tables are (re)built, whether fixed-base exponentiations hit
// their table, how wide the multi-exponentiations run — only make sense
// aggregated per process. All labels come from the closed enums in
// obs/contract.go; obs.MustPreRegister materializes every series at
// zero (catalog.go).
var (
	mTblBuildWindow = obs.Default().Counter("modmath_table_builds_total", obs.L("table", "window"))
	mTblBuildFixed  = obs.Default().Counter("modmath_table_builds_total", obs.L("table", "fixed_base"))
	mTblSecsWindow  = obs.Default().Histogram("modmath_table_build_seconds", obs.TimeBuckets, obs.L("table", "window"))
	mTblSecsFixed   = obs.Default().Histogram("modmath_table_build_seconds", obs.TimeBuckets, obs.L("table", "fixed_base"))
	mFixedHit       = obs.Default().Counter("modmath_fixed_base_total", obs.L("result", "hit"))
	mFixedMiss      = obs.Default().Counter("modmath_fixed_base_total", obs.L("result", "miss"))
	mMultiExpWidth  = obs.Default().Histogram("modmath_multiexp_width", obs.CountBuckets)
)

// tableKind distinguishes the two precomputed-table families.
type tableKind int

const (
	tableWindow    tableKind = iota // per-call Straus odd-power tables
	tableFixedBase                  // long-lived fixed-base digit tables
)

// timeTableBuild counts one table build and returns a closure that
// records its duration when the build finishes. The size argument is
// unused beyond keeping call sites self-describing (width distribution
// is tracked by observeMultiExp).
func timeTableBuild(kind tableKind, size int) func() {
	_ = size
	start := time.Now()
	cnt, hist := mTblBuildWindow, mTblSecsWindow
	if kind == tableFixedBase {
		cnt, hist = mTblBuildFixed, mTblSecsFixed
	}
	cnt.Inc()
	return func() { hist.Observe(time.Since(start).Seconds()) }
}

// countFixedBase records a fixed-base exponentiation that used its table
// (hit) or fell back to a cold exponentiation (miss).
func countFixedBase(hit bool) {
	if hit {
		mFixedHit.Inc()
	} else {
		mFixedMiss.Inc()
	}
}

// observeMultiExp records the live width (nonzero-exponent terms) of one
// MultiExp call.
func observeMultiExp(width int) {
	mMultiExpWidth.Observe(float64(width))
}
