package modmath

import (
	"errors"
	"math/big"
)

// fixedBaseWindow is the digit width of the fixed-base tables: 2^w − 1
// table entries per digit position, one multiplication per nonzero
// digit at evaluation time. Width 4 keeps the table for a 2048-bit
// exponent range around 2^4·2048/4 ≈ 8k entries worst case while already
// cutting evaluation to ~maxBits/4 multiplications with no squarings.
const fixedBaseWindow = 4

// FixedBase is a precomputed power table for one base under one
// modulus: Exp(e) costs at most ⌈maxBits/4⌉ modular multiplications and
// no squarings, against a full square-and-multiply ladder for a cold
// base. Build it once per (base, modulus) pair that sees many
// exponentiations — the paillier layer keys tables by (key, s) for the
// short-exponent randomness base h^{N^s}. Immutable after creation and
// safe for concurrent use.
type FixedBase struct {
	ctx     *Ctx
	g       *big.Int // reduced base (for the over-width fallback)
	maxBits int
	tbl     [][]*big.Int // tbl[i][j-1] = g^(j·2^{i·w}) mod M, j ∈ [1, 2^w)
}

// NewFixedBase precomputes the table of g's powers covering exponents
// up to maxBits bits. Exponents beyond maxBits still work via a plain
// Exp fallback (counted as a table miss).
func (c *Ctx) NewFixedBase(g *big.Int, maxBits int) (*FixedBase, error) {
	if g == nil {
		return nil, errors.New("modmath: nil fixed base")
	}
	if maxBits < 1 {
		return nil, errors.New("modmath: fixed-base table needs maxBits >= 1")
	}
	const w = fixedBaseWindow
	digits := (maxBits + w - 1) / w
	done := timeTableBuild(tableFixedBase, digits)
	f := &FixedBase{
		ctx:     c,
		g:       new(big.Int).Mod(g, c.M),
		maxBits: maxBits,
		tbl:     make([][]*big.Int, digits),
	}
	sq := new(big.Int)
	base := f.g // g^(2^{i·w}) for the current digit position i
	for i := 0; i < digits; i++ {
		row := make([]*big.Int, (1<<w)-1)
		row[0] = base
		for j := 1; j < len(row); j++ {
			next := new(big.Int)
			sq.Mul(row[j-1], base)
			next.Mod(sq, c.M)
			row[j] = next
		}
		f.tbl[i] = row
		if i+1 < digits {
			// base^(2^w) = g^(2^{(i+1)·w}): top entry times base once more.
			next := new(big.Int)
			sq.Mul(row[len(row)-1], base)
			next.Mod(sq, c.M)
			base = next
		}
	}
	done()
	return f, nil
}

// Exp returns g^e mod M for e ≥ 0. Exponents within the table's range
// cost one multiplication per nonzero base-2^w digit; wider exponents
// fall back to a cold exponentiation (a table miss in the kernel
// metrics). The result is byte-identical to Ctx.Exp(g, e).
func (f *FixedBase) Exp(e *big.Int) (*big.Int, error) {
	if e == nil || e.Sign() < 0 {
		return nil, errors.New("modmath: fixed-base exponent must be >= 0")
	}
	if e.BitLen() > f.maxBits {
		countFixedBase(false)
		return f.ctx.Exp(f.g, e), nil
	}
	countFixedBase(true)
	const w = fixedBaseWindow
	acc := new(big.Int)
	live := false
	sq := new(big.Int)
	for i := 0; i*w < e.BitLen(); i++ {
		var digit uint
		for b := w - 1; b >= 0; b-- {
			digit = digit<<1 | uint(e.Bit(i*w+b))
		}
		if digit == 0 {
			continue
		}
		v := f.tbl[i][digit-1]
		if live {
			sq.Mul(acc, v)
			acc.Mod(sq, f.ctx.M)
		} else {
			acc.Set(v)
			live = true
		}
	}
	if !live {
		return acc.Mod(one, f.ctx.M), nil
	}
	return acc, nil
}

// Base returns the (reduced) fixed base g.
func (f *FixedBase) Base() *big.Int { return f.g }

// MaxBits returns the exponent width the table covers.
func (f *FixedBase) MaxBits() int { return f.maxBits }
