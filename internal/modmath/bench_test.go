package modmath

import (
	"math/big"
	mrand "math/rand"
	"testing"
)

// The kernel's reason to exist, in microbenchmark form: MultiExp vs the
// per-term Exp loop at the protocol's characteristic shapes (δ'≈101
// terms for a ⊙ dot product over the candidate indicator; a handful of
// terms for a threshold combine), and FixedBase vs cold Exp at
// short-exponent widths. The -kernel-gate experiment measures the same
// contrast end to end and CI enforces its floor.

func benchTerms(b *testing.B, bits, k, expBits int) (*Ctx, []*big.Int, []*big.Int) {
	b.Helper()
	rng := mrand.New(mrand.NewSource(7))
	m := testModulus(b, bits)
	ctx := MustCtx(m)
	bound := new(big.Int).Lsh(big.NewInt(1), uint(expBits))
	bases := make([]*big.Int, k)
	exps := make([]*big.Int, k)
	for i := range bases {
		bases[i] = randBelow(rng, m)
		exps[i] = randBelow(rng, bound)
	}
	return ctx, bases, exps
}

func benchMultiExp(b *testing.B, bits, k, expBits int, ref bool) {
	ctx, bases, exps := benchTerms(b, bits, k, expBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if ref {
			_, err = ctx.MultiExpRef(bases, exps)
		} else {
			_, err = ctx.MultiExp(bases, exps)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiExp101Kernel(b *testing.B) { benchMultiExp(b, 1024, 101, 512, false) }
func BenchmarkMultiExp101Ref(b *testing.B)    { benchMultiExp(b, 1024, 101, 512, true) }
func BenchmarkMultiExp8Kernel(b *testing.B)   { benchMultiExp(b, 1024, 8, 512, false) }
func BenchmarkMultiExp8Ref(b *testing.B)      { benchMultiExp(b, 1024, 8, 512, true) }
func BenchmarkMultiExp3Kernel(b *testing.B)   { benchMultiExp(b, 1024, 3, 1024, false) }
func BenchmarkMultiExp3Ref(b *testing.B)      { benchMultiExp(b, 1024, 3, 1024, true) }

func BenchmarkFixedBaseExp(b *testing.B) {
	rng := mrand.New(mrand.NewSource(8))
	m := testModulus(b, 1024)
	ctx := MustCtx(m)
	g := randBelow(rng, m)
	f, err := ctx.NewFixedBase(g, 320)
	if err != nil {
		b.Fatal(err)
	}
	e := randBelow(rng, new(big.Int).Lsh(big.NewInt(1), 320))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Exp(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedBaseColdExp(b *testing.B) {
	rng := mrand.New(mrand.NewSource(8))
	m := testModulus(b, 1024)
	ctx := MustCtx(m)
	g := randBelow(rng, m)
	// The cold path this replaces: full-width randomness r^{N^s} with a
	// 512-bit exponent (N^s for a 512-bit N at s=1).
	e := randBelow(rng, new(big.Int).Lsh(big.NewInt(1), 512))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Exp(g, e)
	}
}
