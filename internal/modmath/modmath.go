// Package modmath is the modular-exponentiation kernel under the
// homomorphic pipeline (DESIGN.md §11). Every hot path of the protocol —
// encryption randomness r^{N^s}, the ⊙ dot products and ⨂ selections of
// the LSP, threshold share combination — bottoms out in modular
// exponentiation over a handful of fixed moduli (N^{s+1} for s ∈ {1,2}),
// so this package trades per-call generality for per-modulus and
// per-base precomputation:
//
//   - Ctx: a per-modulus context caching the modulus and derived state
//     so repeated operations share it instead of recomputing (the
//     paillier keys hold one Ctx per power of N, built once per key).
//   - MultiExp: Straus/interleaved multi-exponentiation
//     Π bases[i]^{exps[i]} mod M with one shared squaring chain across
//     all terms — the ⊙/⨂/combine replacement for per-term Exp loops.
//   - FixedBase: windowed fixed-base exponentiation with a precomputed
//     power table, for bases reused across many exponentiations (the
//     short-exponent encryption randomness h^x of paillier.Options).
//
// Exactness contract: every routine returns exactly the canonical
// representative in [0, M) that the equivalent big.Int.Exp composition
// would return. Results are byte-identical to the reference loops by
// construction (the group element is unique mod M), which is what lets
// the paillier layer swap loops for kernel calls without changing a
// single ciphertext byte. The kernel is NOT constant-time — no more and
// no less than math/big itself (see SECURITY.md).
package modmath

import (
	"errors"
	"math/big"
)

var one = big.NewInt(1)

// Ctx is an arithmetic context for one modulus. It is immutable after
// creation and safe for concurrent use. The modulus M must not be
// mutated by callers.
type Ctx struct {
	// M is the modulus. Callers may read it freely (the paillier layer
	// uses Ctx as its N^s cache), but must never mutate it.
	M *big.Int

	odd bool // odd moduli take big.Int.Exp's Montgomery path
}

// NewCtx builds a context for modulus m > 1. The context aliases m;
// callers must not mutate it afterwards.
func NewCtx(m *big.Int) (*Ctx, error) {
	if m == nil || m.Cmp(one) <= 0 {
		return nil, errors.New("modmath: modulus must be > 1")
	}
	return &Ctx{M: m, odd: m.Bit(0) == 1}, nil
}

// MustCtx is NewCtx for moduli known valid at construction time.
func MustCtx(m *big.Int) *Ctx {
	c, err := NewCtx(m)
	if err != nil {
		panic(err)
	}
	return c
}

// Exp returns base^e mod M for e ≥ 0. Single exponentiations delegate to
// big.Int.Exp, whose internal Montgomery/window machinery is already the
// right tool for one (base, exponent) pair; the kernel's wins come from
// sharing work across calls (MultiExp, FixedBase), not from beating
// math/big at its own game.
func (c *Ctx) Exp(base, e *big.Int) *big.Int {
	return new(big.Int).Exp(base, e, c.M)
}

// windowWidth picks the Straus window width for the given maximum
// exponent bit length, clamped so the per-base odd-power tables
// (2^{w-1} entries each) stay small for wide products.
func windowWidth(maxBits, terms int) uint {
	var w uint
	switch {
	case maxBits <= 8:
		w = 2
	case maxBits <= 64:
		w = 3
	case maxBits <= 256:
		w = 4
	case maxBits <= 1024:
		w = 5
	default:
		w = 6
	}
	// Bound total table memory: terms · 2^{w-1} entries ≤ 4096.
	for w > 2 && terms<<(w-1) > 4096 {
		w--
	}
	return w
}

// strausMinTerms is the live-term count below which MultiExp delegates
// to per-term big.Int.Exp (see the comment at the call site).
const strausMinTerms = 4

// window is one sliding-window digit of an exponent: an odd value val
// whose least-significant bit sits at bit position pos.
type window struct {
	pos int
	val uint
}

// slideWindows decomposes e (> 0) into left-to-right sliding windows of
// width ≤ w: e = Σ val_i · 2^{pos_i} with every val_i odd.
func slideWindows(e *big.Int, w uint, dst []window) []window {
	i := e.BitLen() - 1
	for i >= 0 {
		if e.Bit(i) == 0 {
			i--
			continue
		}
		l := i - int(w) + 1
		if l < 0 {
			l = 0
		}
		for e.Bit(l) == 0 {
			l++
		}
		var val uint
		for j := i; j >= l; j-- {
			val = val<<1 | uint(e.Bit(j))
		}
		dst = append(dst, window{pos: l, val: val})
		i = l - 1
	}
	return dst
}

// MultiExp computes Π bases[i]^{exps[i]} mod M via Straus' interleaved
// sliding-window method: one shared squaring chain over the longest
// exponent plus per-term window multiplications, instead of a full
// square-and-multiply ladder per term. All exponents must be ≥ 0
// (callers reduce negatives into [0, group order) first — paillier does,
// mod N^s). Terms with a zero exponent contribute 1 and are skipped.
//
// The result is exactly the canonical product in [0, M): byte-identical
// to multiplying the big.Int.Exp of every term.
func (c *Ctx) MultiExp(bases, exps []*big.Int) (*big.Int, error) {
	if len(bases) != len(exps) {
		return nil, errors.New("modmath: multiexp length mismatch")
	}
	// Collect live terms (nonzero exponent) and the squaring-chain length.
	type term struct {
		base *big.Int
		exp  *big.Int
	}
	terms := make([]term, 0, len(bases))
	maxBits := 0
	for i := range bases {
		e := exps[i]
		if e == nil || bases[i] == nil {
			return nil, errors.New("modmath: nil multiexp element")
		}
		if e.Sign() < 0 {
			return nil, errors.New("modmath: negative multiexp exponent")
		}
		if e.Sign() == 0 {
			continue
		}
		terms = append(terms, term{base: bases[i], exp: e})
		if b := e.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	observeMultiExp(len(terms))
	if len(terms) == 0 {
		return new(big.Int).Mod(one, c.M), nil
	}
	// Below strausMinTerms live terms the shared squaring chain cannot
	// amortize: its Mul+Mod squarings cost ~2× the Montgomery squarings
	// inside big.Int.Exp, so interleaving only pays once enough terms
	// share the chain (BenchmarkMultiExp3* vs BenchmarkMultiExp8* in
	// bench_test.go). Either path returns the identical canonical value.
	if len(terms) < strausMinTerms {
		acc := new(big.Int)
		tmp := new(big.Int)
		for i, tm := range terms {
			tmp.Exp(tm.base, tm.exp, c.M)
			if i == 0 {
				acc.Set(tmp)
				continue
			}
			acc.Mul(acc, tmp)
			acc.Mod(acc, c.M)
		}
		return acc, nil
	}

	w := windowWidth(maxBits, len(terms))
	halfTbl := 1 << (w - 1) // odd powers b^1, b^3, …, b^{2^w-1}

	// Per-term odd-power tables and window decompositions. A base that
	// reduces to zero zeroes the whole product (its exponent is > 0).
	buildDone := timeTableBuild(tableWindow, len(terms))
	tbl := make([][]*big.Int, len(terms))
	wins := make([][]window, len(terms))
	sq := new(big.Int) // scratch for products before reduction
	for t, tm := range terms {
		b := new(big.Int).Mod(tm.base, c.M)
		if b.Sign() == 0 {
			return new(big.Int), nil
		}
		tbl[t] = make([]*big.Int, halfTbl)
		tbl[t][0] = b
		if halfTbl > 1 {
			b2 := new(big.Int)
			sq.Mul(b, b)
			b2.Mod(sq, c.M)
			for j := 1; j < halfTbl; j++ {
				next := new(big.Int)
				sq.Mul(tbl[t][j-1], b2)
				next.Mod(sq, c.M)
				tbl[t][j] = next
			}
		}
		wins[t] = slideWindows(tm.exp, w, nil)
	}
	buildDone()

	// Shared left-to-right chain: square once per bit level, multiply in
	// every window whose low end sits at that level. next[t] tracks the
	// first unconsumed window of term t (windows are MSB-first).
	acc := new(big.Int)
	live := false // acc holds a value (skip squarings of the implicit 1)
	next := make([]int, len(terms))
	for p := maxBits - 1; p >= 0; p-- {
		if live {
			sq.Mul(acc, acc)
			acc.Mod(sq, c.M)
		}
		for t := range terms {
			if next[t] < len(wins[t]) && wins[t][next[t]].pos == p {
				v := tbl[t][wins[t][next[t]].val>>1]
				if live {
					sq.Mul(acc, v)
					acc.Mod(sq, c.M)
				} else {
					acc.Set(v)
					live = true
				}
				next[t]++
			}
		}
	}
	return acc, nil
}

// MultiExpRef is the reference implementation MultiExp is measured and
// fuzzed against: the plain per-term big.Int.Exp product loop the kernel
// replaced. It stays exported so the fuzz target, the unit tests, and
// the -kernel-gate benchmarks all compare against the same oracle.
func (c *Ctx) MultiExpRef(bases, exps []*big.Int) (*big.Int, error) {
	if len(bases) != len(exps) {
		return nil, errors.New("modmath: multiexp length mismatch")
	}
	acc := new(big.Int).Mod(one, c.M)
	tmp := new(big.Int)
	for i := range bases {
		if exps[i] == nil || bases[i] == nil {
			return nil, errors.New("modmath: nil multiexp element")
		}
		if exps[i].Sign() < 0 {
			return nil, errors.New("modmath: negative multiexp exponent")
		}
		if exps[i].Sign() == 0 {
			continue
		}
		tmp.Exp(bases[i], exps[i], c.M)
		acc.Mul(acc, tmp)
		acc.Mod(acc, c.M)
	}
	return acc, nil
}
