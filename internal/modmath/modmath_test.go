package modmath

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// testModulus returns an odd composite modulus of the given bit size,
// built like a Paillier N² (two primes, squared) so the group structure
// matches the kernel's production use.
func testModulus(t testing.TB, bits int) *big.Int {
	t.Helper()
	p, err := rand.Prime(rand.Reader, bits/4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rand.Prime(rand.Reader, bits/4)
	if err != nil {
		t.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	return n.Mul(n, n)
}

func randBelow(rng *mrand.Rand, bound *big.Int) *big.Int {
	b := make([]byte, (bound.BitLen()+7)/8)
	rng.Read(b)
	return new(big.Int).Mod(new(big.Int).SetBytes(b), bound)
}

func TestNewCtxRejectsBadModulus(t *testing.T) {
	for _, m := range []*big.Int{nil, big.NewInt(0), big.NewInt(1), big.NewInt(-7)} {
		if _, err := NewCtx(m); err == nil {
			t.Errorf("NewCtx(%v) accepted an invalid modulus", m)
		}
	}
	if _, err := NewCtx(big.NewInt(2)); err != nil {
		t.Errorf("NewCtx(2): %v", err)
	}
}

// TestMultiExpMatchesReference drives random widths, sizes, and sparsity
// patterns through MultiExp and asserts byte-identity with the reference
// Exp-product loop — the kernel's exactness contract.
func TestMultiExpMatchesReference(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	mods := []*big.Int{
		big.NewInt(2), big.NewInt(3), big.NewInt(35),
		testModulus(t, 256), testModulus(t, 512),
	}
	for _, m := range mods {
		ctx := MustCtx(m)
		for trial := 0; trial < 30; trial++ {
			k := rng.Intn(12)
			bases := make([]*big.Int, k)
			exps := make([]*big.Int, k)
			for i := range bases {
				bases[i] = randBelow(rng, m)
				switch rng.Intn(5) {
				case 0:
					exps[i] = new(big.Int) // zero exponent: skipped term
				case 1:
					exps[i] = big.NewInt(int64(rng.Intn(4))) // tiny
				default:
					exps[i] = randBelow(rng, m)
				}
				if rng.Intn(8) == 0 {
					bases[i] = new(big.Int) // zero base
				}
			}
			got, err := ctx.MultiExp(bases, exps)
			if err != nil {
				t.Fatalf("MultiExp: %v", err)
			}
			want, err := ctx.MultiExpRef(bases, exps)
			if err != nil {
				t.Fatalf("MultiExpRef: %v", err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("mod %v trial %d: MultiExp=%v want %v (bases=%v exps=%v)",
					m, trial, got, want, bases, exps)
			}
		}
	}
}

func TestMultiExpEdgeCases(t *testing.T) {
	ctx := MustCtx(big.NewInt(1000003))
	// Empty product is 1.
	got, err := ctx.MultiExp(nil, nil)
	if err != nil || got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty MultiExp = %v, %v; want 1", got, err)
	}
	// Length mismatch, nil elements, negative exponents all error.
	if _, err := ctx.MultiExp([]*big.Int{big.NewInt(2)}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ctx.MultiExp([]*big.Int{nil}, []*big.Int{big.NewInt(1)}); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := ctx.MultiExp([]*big.Int{big.NewInt(2)}, []*big.Int{big.NewInt(-1)}); err == nil {
		t.Error("negative exponent accepted")
	}
	// Single term delegates to Exp and matches it.
	b, e := big.NewInt(123456), big.NewInt(789)
	got, err = ctx.MultiExp([]*big.Int{b}, []*big.Int{e})
	if err != nil {
		t.Fatal(err)
	}
	if want := ctx.Exp(b, e); got.Cmp(want) != 0 {
		t.Fatalf("single-term MultiExp = %v, want %v", got, want)
	}
}

func TestFixedBaseMatchesExp(t *testing.T) {
	rng := mrand.New(mrand.NewSource(2))
	m := testModulus(t, 512)
	ctx := MustCtx(m)
	g := randBelow(rng, m)
	const maxBits = 160
	f, err := ctx.NewFixedBase(g, maxBits)
	if err != nil {
		t.Fatal(err)
	}
	bound := new(big.Int).Lsh(big.NewInt(1), maxBits)
	for trial := 0; trial < 50; trial++ {
		var e *big.Int
		switch trial {
		case 0:
			e = new(big.Int) // zero exponent
		case 1:
			e = big.NewInt(1)
		case 2:
			e = new(big.Int).Sub(bound, big.NewInt(1)) // max in-table
		case 3:
			e = new(big.Int).Lsh(big.NewInt(1), maxBits+13) // over-width: fallback
		default:
			e = randBelow(rng, bound)
		}
		got, err := f.Exp(e)
		if err != nil {
			t.Fatalf("FixedBase.Exp(%v): %v", e, err)
		}
		if want := ctx.Exp(g, e); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: FixedBase.Exp = %v, want %v", trial, got, want)
		}
	}
	if _, err := f.Exp(big.NewInt(-1)); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := f.Exp(nil); err == nil {
		t.Error("nil exponent accepted")
	}
}

func TestFixedBaseRejectsBadInputs(t *testing.T) {
	ctx := MustCtx(big.NewInt(97))
	if _, err := ctx.NewFixedBase(nil, 10); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := ctx.NewFixedBase(big.NewInt(3), 0); err == nil {
		t.Error("zero maxBits accepted")
	}
}

func TestSlideWindowsReconstructs(t *testing.T) {
	rng := mrand.New(mrand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		e := randBelow(rng, new(big.Int).Lsh(big.NewInt(1), uint(1+rng.Intn(300))))
		if e.Sign() == 0 {
			continue
		}
		w := uint(2 + rng.Intn(5))
		wins := slideWindows(e, w, nil)
		sum := new(big.Int)
		for _, win := range wins {
			if win.val%2 == 0 {
				t.Fatalf("even window value %d", win.val)
			}
			if win.val>>(w) != 0 {
				t.Fatalf("window value %d wider than %d bits", win.val, w)
			}
			term := new(big.Int).Lsh(big.NewInt(int64(win.val)), uint(win.pos))
			sum.Add(sum, term)
		}
		if sum.Cmp(e) != 0 {
			t.Fatalf("windows reconstruct %v, want %v (w=%d)", sum, e, w)
		}
	}
}

// FuzzMultiExp cross-checks MultiExp against the reference Exp-product
// loop on fuzz-chosen moduli, bases, and exponents (satellite: wired
// into scripts/fuzz-pass.sh and the CI fuzz job).
func FuzzMultiExp(f *testing.F) {
	f.Add([]byte{7}, []byte{2, 3, 5, 8}, 2)
	f.Add([]byte{255, 255}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 4)
	f.Add([]byte{0}, []byte{}, 0)
	f.Fuzz(func(t *testing.T, modBytes, data []byte, k int) {
		m := new(big.Int).SetBytes(modBytes)
		if m.Cmp(big.NewInt(2)) < 0 || m.BitLen() > 512 {
			t.Skip()
		}
		if k < 0 || k > 16 {
			t.Skip()
		}
		ctx := MustCtx(m)
		// Split data into 2k chunks: alternating base and exponent bytes.
		bases := make([]*big.Int, k)
		exps := make([]*big.Int, k)
		chunk := func(i int) []byte {
			if len(data) == 0 || k == 0 {
				return nil
			}
			sz := len(data)/(2*k) + 1
			lo := (i * sz) % len(data)
			hi := lo + sz
			if hi > len(data) {
				hi = len(data)
			}
			return data[lo:hi]
		}
		for i := 0; i < k; i++ {
			bases[i] = new(big.Int).SetBytes(chunk(2 * i))
			exps[i] = new(big.Int).SetBytes(chunk(2*i + 1))
		}
		got, err := ctx.MultiExp(bases, exps)
		if err != nil {
			t.Fatalf("MultiExp: %v", err)
		}
		want, err := ctx.MultiExpRef(bases, exps)
		if err != nil {
			t.Fatalf("MultiExpRef: %v", err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("MultiExp=%v want %v (m=%v bases=%v exps=%v)", got, want, m, bases, exps)
		}
	})
}
