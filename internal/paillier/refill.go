package paillier

import (
	"context"
	"crypto/rand"
	"io"
	"sync"
	"time"

	"ppgnn/internal/parallel"
)

// Background Precomputer refiller (DESIGN.md §15). Under sustained
// traffic a pool filled once at startup drains and every later
// encryption falls off the pooled-randomness cliff onto the full online
// modexp. The refiller keeps the pool topped up from the background: it
// watches the pool's own drain rate (an EWMA of factors consumed per
// tick, the same α=1/8 smoothing svc's admission EWMA uses), sizes a
// target a few ticks of headroom deep, and fills the deficit in small
// chunks so a consumer never waits behind one monolithic fill's
// appends.

// RefillerOptions tune one background refill loop; zero values take the
// defaults documented on each field.
type RefillerOptions struct {
	// Pool fans the factor exponentiations (nil = process default).
	Pool *parallel.Pool
	// Random is the randomness source (nil = crypto/rand.Reader). A
	// refilled pool's consumers no longer see deterministic pool
	// contents — seeded-reader byte-identity tests must pause the
	// refiller (the batch.go ordering contract).
	Random io.Reader
	// Interval is the tick period (default 5ms).
	Interval time.Duration
	// MaxChunk caps factors produced per tick (default 64), keeping
	// each fill's pool append small and consumers fairly interleaved.
	MaxChunk int
	// Min is the target floor even with no observed drain (default 0).
	Min int
	// Max caps the target so an admission burst cannot balloon the
	// pool's memory (default 4096).
	Max int
	// Target, when set, contributes an external size hint each tick —
	// svc derives one from its admission-cost EWMA and in-flight count.
	// The effective target is max(drain-based, Min, Target()), capped
	// at Max.
	Target func() int
}

// StartRefiller starts the background loop and returns its stop
// function. Stop cancels any in-flight fill, waits for the loop to
// exit, and is idempotent. The Precomputer remains fully usable after
// stop — it just stops being refilled.
func (p *Precomputer) StartRefiller(o RefillerOptions) (stop func()) {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	if o.MaxChunk <= 0 {
		o.MaxChunk = 64
	}
	if o.Max <= 0 {
		o.Max = 4096
	}
	if o.Min < 0 {
		o.Min = 0
	}
	if o.Min > o.Max {
		o.Min = o.Max
	}
	random := o.Random
	if random == nil {
		random = rand.Reader
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(o.Interval)
		defer tick.Stop()
		last := p.taken.Load()
		var ewma float64 // factors drained per tick, α = 1/8
		var published int64
		defer func() { gRefillTarget.Add(-published) }()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			cur := p.taken.Load()
			ewma += (float64(cur-last) - ewma) / 8
			last = cur
			// Eight ticks of headroom over the smoothed drain rate: deep
			// enough to ride out a burst, shallow enough to track decay.
			want := int(8 * ewma)
			if o.Target != nil {
				if t := o.Target(); t > want {
					want = t
				}
			}
			if want < o.Min {
				want = o.Min
			}
			if want > o.Max {
				want = o.Max
			}
			gRefillTarget.Add(int64(want) - published)
			published = int64(want)
			n := want - p.Size()
			if n <= 0 {
				continue
			}
			if n > o.MaxChunk {
				n = o.MaxChunk
			}
			if err := p.FillCtx(ctx, o.Pool, random, n); err != nil {
				if ctx.Err() != nil {
					return
				}
				continue // transient; the next tick retries
			}
			mRefillFills.Inc()
			mRefillFactors.Add(int64(n))
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}
