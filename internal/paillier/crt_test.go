package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// The CRT-accelerated c^λ must agree with the direct exponentiation for
// every degree.
func TestExpLambdaCRTMatchesDirect(t *testing.T) {
	k := key(t)
	for s := 1; s <= 3; s++ {
		mod := k.NS(s + 1)
		for i := 0; i < 10; i++ {
			c, err := rand.Int(rand.Reader, mod)
			if err != nil {
				t.Fatal(err)
			}
			if c.Sign() == 0 {
				continue
			}
			want := new(big.Int).Exp(c, k.lambda, mod)
			got := k.expLambdaCRT(c, s)
			if got.Cmp(want) != 0 {
				t.Fatalf("s=%d: CRT exponentiation mismatch", s)
			}
		}
	}
}

func TestCRTDecryptionFreshKey(t *testing.T) {
	// A fresh key (no warmed caches) must still decrypt correctly via CRT.
	k, err := GenerateKey(nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 2; s++ {
		m := big.NewInt(987654321)
		ct, err := k.Encrypt(nil, m, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("s=%d: decrypt = %v", s, got)
		}
	}
}

func benchKey(b *testing.B, bits int) *PrivateKey {
	b.Helper()
	k, err := GenerateKey(nil, bits)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func BenchmarkEncrypt1024(b *testing.B) {
	k := benchKey(b, 1024)
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Encrypt(nil, m, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt1024CRT(b *testing.B) {
	k := benchKey(b, 1024)
	ct, err := k.EncryptInt64(nil, 123456789, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt1024Direct(b *testing.B) {
	k := benchKey(b, 1024)
	ct, err := k.EncryptInt64(nil, 123456789, 1)
	if err != nil {
		b.Fatal(err)
	}
	mod := k.NS(ct.S + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := new(big.Int).Exp(ct.C, k.lambda, mod)
		x, err := k.logOnePlusN(u, ct.S)
		if err != nil {
			b.Fatal(err)
		}
		x.Mul(x, k.invLambda(ct.S))
		x.Mod(x, k.NS(ct.S))
	}
}

func BenchmarkHomomorphicDot1024(b *testing.B) {
	k := benchKey(b, 1024)
	const n = 100
	xs := make([]*big.Int, n)
	cs := make([]*Ciphertext, n)
	for i := range xs {
		xs[i] = big.NewInt(int64(i + 1))
		ct, err := k.EncryptInt64(nil, int64(i), 1)
		if err != nil {
			b.Fatal(err)
		}
		cs[i] = ct
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DotProduct(xs, cs); err != nil {
			b.Fatal(err)
		}
	}
}
