package paillier

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"ppgnn/internal/obs"
)

// Precomputer generates encryption randomness offline. An ε_s encryption is
// (1+N)^m · r^{N^s} mod N^{s+1}; the r^{N^s} factor does not depend on the
// plaintext, so a mobile client can compute a pool of them while idle or
// charging and pay only the cheap binomial part online. This directly
// attacks the paper's bottleneck for the user side — the O(δ') (or O(√δ')
// for OPT) encryptions of the indicator vector.
type Precomputer struct {
	pk *PublicKey
	s  int

	// taken counts factors ever consumed from the pool; the background
	// refiller (refill.go) differences it to estimate drain rate.
	taken atomic.Int64

	mu    sync.Mutex
	pool  []*big.Int // ready r^{N^s} mod N^{s+1} factors
	depth *obs.Gauge // this pool's depth gauge (degree × tenant slot)
}

// NewPrecomputer creates an empty pool for degree-s encryptions. The
// pool reports depth under the "default" tenant slot until
// SetMetricTenant rebinds it.
func (pk *PublicKey) NewPrecomputer(s int) (*Precomputer, error) {
	if s < 1 || s > MaxS {
		return nil, fmt.Errorf("paillier: degree s=%d out of range [1,%d]", s, MaxS)
	}
	return &Precomputer{pk: pk, s: s, depth: poolDepthGauge(s, "default")}, nil
}

// SetMetricTenant moves this pool's depth gauge to the given tenant
// slot (a closed-enum value — svc's tenantSlot, never a tenant name).
// The current depth transfers between gauges so per-slot sums stay
// exact across the move.
func (p *Precomputer) SetMetricTenant(slot string) {
	g := poolDepthGauge(p.s, slot)
	p.mu.Lock()
	defer p.mu.Unlock()
	if g == p.depth {
		return
	}
	n := int64(len(p.pool))
	p.depth.Add(-n)
	g.Add(n)
	p.depth = g
}

// Taken returns the number of factors ever consumed from the pool.
func (p *Precomputer) Taken() int64 { return p.taken.Load() }

// Fill adds n randomness factors to the pool (the offline phase). random
// defaults to crypto/rand.Reader when nil. The r^{N^s} exponentiations
// fan across the process-default worker pool; FillCtx takes an explicit
// pool and context.
func (p *Precomputer) Fill(random io.Reader, n int) error {
	return p.FillCtx(context.Background(), nil, random, n)
}

// Size returns the number of pooled factors.
func (p *Precomputer) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pool)
}

// take pops one factor, or nil when the pool is empty.
func (p *Precomputer) take() *big.Int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pool) == 0 {
		return nil
	}
	r := p.pool[len(p.pool)-1]
	p.pool = p.pool[:len(p.pool)-1]
	p.depth.Add(-1)
	p.taken.Add(1)
	return r
}

// Encrypt encrypts m using a pooled randomness factor; when the pool is
// empty it falls back to online randomness (and reports fromPool=false so
// callers can meter the difference). Each pooled factor is used exactly
// once — reuse would break semantic security.
func (p *Precomputer) Encrypt(random io.Reader, m *big.Int) (ct *Ciphertext, fromPool bool, err error) {
	if m.Sign() < 0 || m.Cmp(p.pk.NS(p.s)) >= 0 {
		return nil, false, fmt.Errorf("paillier: plaintext out of range [0, N^%d)", p.s)
	}
	rs := p.take()
	if rs == nil {
		mEncOnline.Inc()
		ct, err := p.pk.Encrypt(random, m, p.s)
		return ct, false, err
	}
	mod := p.pk.NS(p.s + 1)
	c := p.pk.onePlusNExp(m, p.s)
	c.Mul(c, rs)
	c.Mod(c, mod)
	mEncPooled.Inc()
	countEnc(p.s)
	return &Ciphertext{C: c, S: p.s}, true, nil
}
