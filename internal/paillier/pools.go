package paillier

import (
	"crypto/sha256"
	"sync"
)

// PoolSet is a bounded collection of Precomputers keyed by public key
// and degree, each with its own background refiller — the server-side
// home for rerandomization randomness (DESIGN.md §15). The LSP sees a
// different public key per group session, so server-side pools cannot
// be a single Precomputer: the set keeps one pool per (key, degree) it
// has recently served, LRU-evicting beyond MaxPools so key churn from
// short-lived sessions cannot grow memory without bound. An evicted
// pool's Precomputer stays valid for any session still holding it — it
// just stops being refilled.
type PoolSet struct {
	opts PoolSetOptions

	mu      sync.Mutex
	gen     uint64
	entries map[poolKey]*poolEntry
	closed  bool
}

// PoolSetOptions configure a PoolSet; zero values take the defaults
// documented on each field.
type PoolSetOptions struct {
	// MaxPools bounds the number of live (key, degree) pools
	// (default 8). Evictions are least-recently-used.
	MaxPools int
	// Refill is the per-pool background refiller configuration. Its
	// Target hook is shared by every pool in the set — svc passes its
	// admission-EWMA hint here.
	Refill RefillerOptions
	// Tenant is the metric tenant slot for the pools' depth gauges
	// (default "default"); svc sets the owning tenant's slot.
	Tenant string
}

type poolKey struct {
	fp [sha256.Size]byte
	s  int
}

type poolEntry struct {
	pre  *Precomputer
	stop func()
	gen  uint64
}

// keyFingerprint identifies a public key by its modulus, so the same
// group key re-parsed from the wire across sessions maps to the same
// pool.
func keyFingerprint(pk *PublicKey) [sha256.Size]byte {
	return sha256.Sum256(pk.N.Bytes())
}

// NewPoolSet creates an empty set. The caller must Close it to stop the
// refillers it starts.
func NewPoolSet(opts PoolSetOptions) *PoolSet {
	if opts.MaxPools <= 0 {
		opts.MaxPools = 8
	}
	if opts.Tenant == "" {
		opts.Tenant = "default"
	}
	return &PoolSet{opts: opts, entries: make(map[poolKey]*poolEntry)}
}

// For returns the set's pool for (pk, s), creating it — and starting
// its refiller, unless the set is closed — on first use. After Close,
// For still returns working (refiller-less) Precomputers, so in-flight
// sessions of a retiring epoch finish safely.
func (ps *PoolSet) For(pk *PublicKey, s int) (*Precomputer, error) {
	k := poolKey{keyFingerprint(pk), s}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.gen++
	if e, ok := ps.entries[k]; ok {
		e.gen = ps.gen
		return e.pre, nil
	}
	pre, err := pk.NewPrecomputer(s)
	if err != nil {
		return nil, err
	}
	pre.SetMetricTenant(ps.opts.Tenant)
	e := &poolEntry{pre: pre, gen: ps.gen}
	if !ps.closed {
		e.stop = pre.StartRefiller(ps.opts.Refill)
	}
	ps.entries[k] = e
	for len(ps.entries) > ps.opts.MaxPools {
		var oldK poolKey
		var old *poolEntry
		for kk, ee := range ps.entries {
			if old == nil || ee.gen < old.gen {
				old, oldK = ee, kk
			}
		}
		delete(ps.entries, oldK)
		if old.stop != nil {
			old.stop()
		}
	}
	return e.pre, nil
}

// Pools returns the number of live pools (for tests and size checks).
func (ps *PoolSet) Pools() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.entries)
}

// SetTenant rebinds every pool's depth gauge (current and future) to
// the given tenant slot.
func (ps *PoolSet) SetTenant(slot string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.opts.Tenant = slot
	for _, e := range ps.entries {
		e.pre.SetMetricTenant(slot)
	}
}

// Close stops every refiller and marks the set closed; it is
// idempotent. Existing and future pools remain usable without refill.
func (ps *PoolSet) Close() {
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		return
	}
	ps.closed = true
	stops := make([]func(), 0, len(ps.entries))
	for _, e := range ps.entries {
		if e.stop != nil {
			stops = append(stops, e.stop)
			e.stop = nil
		}
	}
	ps.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}
