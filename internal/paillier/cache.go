package paillier

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sync"

	"ppgnn/internal/parallel"
)

// EncCache is a bounded LRU of encrypted constants keyed by (public
// key, plaintext, degree), shared across sessions (DESIGN.md §15). The
// indicator vectors of Algorithm 1 re-encrypt the same tiny constant
// set — mostly zeros and a one — on every query, so across sustained
// traffic the binomial (1+N)^m part of those encryptions is pure
// repetition. The cache stores one ciphertext per key and RERANDOMIZES
// on every hit: the stored value is multiplied by a fresh enc(0) factor
// (pooled when a Precomputer is supplied, online otherwise), so each
// emission carries fresh uniform randomness and two hits for the same
// plaintext are never byte-identical — plaintext equality never becomes
// ciphertext equality on the wire. The cache privacy test in
// privacy_test.go and cache_test.go pin exactly that.
type EncCache struct {
	max int

	mu      sync.Mutex
	gen     uint64
	entries map[encKey]*encEntry
}

type encKey struct {
	fp [32]byte
	s  int
	m  string // plaintext bytes; never leaves the process
}

type encEntry struct {
	c   *big.Int // one stored ciphertext value for the key (never emitted as-is)
	gen uint64
}

// NewEncCache creates a cache bounded to max entries (max <= 0 takes
// 1024). Evictions are least-recently-used.
func NewEncCache(max int) *EncCache {
	if max <= 0 {
		max = 1024
	}
	return &EncCache{max: max, entries: make(map[encKey]*encEntry)}
}

// Len returns the number of cached entries (for tests).
func (ec *EncCache) Len() int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return len(ec.entries)
}

// EncryptBatch encrypts every plaintext of ms under ε_s through the
// cache, returning ciphertexts in input order plus how many randomness
// factors came from pre's pool. Factor handling matches the other batch
// forms: pooled factors are taken LIFO in index order while they last,
// then online randomness is drawn serially from random — so the call
// composes with the batch determinism contract. pre may be nil (all
// factors online); when set it must belong to pk at degree s.
//
// Cache hits cost one modular multiplication (stored ciphertext × fresh
// factor — a fused rerandomization); misses pay the normal encryption
// and populate the cache.
func (ec *EncCache) EncryptBatch(ctx context.Context, pl *parallel.Pool, random io.Reader, pk *PublicKey, pre *Precomputer, ms []*big.Int, s int) ([]*Ciphertext, int, error) {
	if s < 1 || s > MaxS {
		return nil, 0, fmt.Errorf("paillier: degree s=%d out of range [1,%d]", s, MaxS)
	}
	if pre != nil && (pre.pk != pk || pre.s != s) {
		return nil, 0, fmt.Errorf("paillier: precomputer does not match key/degree s=%d", s)
	}
	ns := pk.NS(s)
	for i, m := range ms {
		if m == nil {
			return nil, 0, fmt.Errorf("paillier: plaintext %d: %w", i, errNilElement)
		}
		if m.Sign() < 0 || m.Cmp(ns) >= 0 {
			return nil, 0, fmt.Errorf("paillier: plaintext %d out of range [0, N^%d)", i, s)
		}
	}

	var pooled []*big.Int
	if pre != nil {
		pooled = pre.takeN(len(ms))
	}
	sr := pk.shortRand.Load()
	online := make([]*big.Int, 0, len(ms)-len(pooled))
	for range ms[len(pooled):] {
		r, err := pk.drawEncRand(random, sr)
		if err != nil {
			return nil, 0, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		online = append(online, r)
	}

	// Serial lookup pass: bases[i] is the stored ciphertext for ms[i],
	// nil on miss. Duplicate plaintexts within one miss batch all
	// compute; the store pass dedups.
	fp := keyFingerprint(pk)
	keys := make([]encKey, len(ms))
	bases := make([]*big.Int, len(ms))
	ec.mu.Lock()
	for i, m := range ms {
		keys[i] = encKey{fp: fp, s: s, m: string(m.Bytes())}
		if e, ok := ec.entries[keys[i]]; ok {
			ec.gen++
			e.gen = ec.gen
			bases[i] = e.c
		}
	}
	ec.mu.Unlock()

	pk.warmEnc(s)
	mod := pk.NS(s + 1)
	out := make([]*Ciphertext, len(ms))
	err := pl.ForEach(ctx, len(ms), func(i int) error {
		factor := func() *big.Int {
			if i < len(pooled) {
				mEncPooled.Inc()
				return pooled[i]
			}
			mEncOnline.Inc()
			return pk.encFactor(online[i-len(pooled)], sr, s)
		}()
		if base := bases[i]; base != nil {
			// Fused rerandomization of the stored ciphertext: the fresh
			// factor is an enc(0), so the product encrypts the same
			// plaintext under fresh uniform randomness.
			c := new(big.Int).Mul(base, factor)
			c.Mod(c, mod)
			mCacheHit.Inc()
			mRerandomize.Inc()
			mAdd.Inc()
			countEnc(s)
			out[i] = &Ciphertext{C: c, S: s}
			return nil
		}
		c := pk.onePlusNExp(ms[i], s)
		c.Mul(c, factor)
		c.Mod(c, mod)
		mCacheMiss.Inc()
		countEnc(s)
		out[i] = &Ciphertext{C: c, S: s}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	// Store pass: keep one ciphertext per missed key (a private copy, so
	// later caller mutation of the returned value cannot poison the
	// cache), LRU-evicting past the bound.
	ec.mu.Lock()
	for i := range ms {
		if bases[i] != nil {
			continue
		}
		if _, ok := ec.entries[keys[i]]; ok {
			continue
		}
		ec.gen++
		ec.entries[keys[i]] = &encEntry{c: new(big.Int).Set(out[i].C), gen: ec.gen}
	}
	for len(ec.entries) > ec.max {
		var oldK encKey
		var old *encEntry
		for k, e := range ec.entries {
			if old == nil || e.gen < old.gen {
				old, oldK = e, k
			}
		}
		delete(ec.entries, oldK)
	}
	ec.mu.Unlock()
	return out, len(pooled), nil
}
