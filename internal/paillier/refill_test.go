package paillier

import (
	"bytes"
	"context"
	"math/big"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppgnn/internal/obs"
	"ppgnn/internal/parallel"
)

// TestPoolDepthGaugePerPool pins the ISSUE 10 satellite: with several
// Precomputers alive at once (the coordinator's s=1 and s=2 pools, and
// a second tenant's pool), each reports depth on its own (degree,
// tenant) gauge series — fills and takes on one pool never move another
// pool's series.
func TestPoolDepthGaugePerPool(t *testing.T) {
	k := key(t)
	g := func(deg, tenant string) int64 {
		return obs.Default().Snapshot().Gauge("paillier_precompute_pool_depth",
			obs.L("degree", deg), obs.L("tenant", tenant))
	}
	base1, base2, baseT0 := g("1", "default"), g("2", "default"), g("1", "t0")

	p1, _ := k.NewPrecomputer(1)
	p2, _ := k.NewPrecomputer(2)
	pt, _ := k.NewPrecomputer(1)
	pt.SetMetricTenant("t0")

	if err := p1.Fill(nil, 3); err != nil {
		t.Fatal(err)
	}
	if err := p2.Fill(nil, 5); err != nil {
		t.Fatal(err)
	}
	if err := pt.Fill(nil, 2); err != nil {
		t.Fatal(err)
	}
	if d := g("1", "default") - base1; d != 3 {
		t.Fatalf("s=1 default depth delta = %d, want 3", d)
	}
	if d := g("2", "default") - base2; d != 5 {
		t.Fatalf("s=2 default depth delta = %d, want 5", d)
	}
	if d := g("1", "t0") - baseT0; d != 2 {
		t.Fatalf("s=1 t0 depth delta = %d, want 2", d)
	}

	// Draining one pool must not move the others' series.
	if _, _, err := p2.Encrypt(nil, big.NewInt(9)); err != nil {
		t.Fatal(err)
	}
	if d := g("2", "default") - base2; d != 4 {
		t.Fatalf("s=2 default depth after take = %d, want 4", d)
	}
	if d := g("1", "default") - base1; d != 3 {
		t.Fatalf("s=1 default depth moved to %d on an s=2 take", d)
	}
	if d := g("1", "t0") - baseT0; d != 2 {
		t.Fatalf("t0 depth moved to %d on a default-tenant take", d)
	}

	// Rebinding a non-empty pool transfers its current depth.
	pt.SetMetricTenant("t1")
	if d := g("1", "t0") - baseT0; d != 0 {
		t.Fatalf("t0 depth after rebind = %d, want 0", d)
	}
	if d := g("1", "t1"); d < 2 {
		t.Fatalf("t1 depth after rebind = %d, want >= 2", d)
	}
	if pt.Taken() != 0 || p2.Taken() != 1 {
		t.Fatalf("taken counters = %d/%d, want 0/1", pt.Taken(), p2.Taken())
	}
}

// TestFillConcurrentWithEncryptBatch is the -race hammer for the
// FillCtx/takeN ordering contract: a background refill loop runs while
// a consumer issues EncryptBatch calls at width > 1. Every ciphertext
// must decrypt to its plaintext, the pool/online accounting must add
// up, and no two emitted ciphertexts may share randomness (no factor is
// ever handed out twice).
func TestFillConcurrentWithEncryptBatch(t *testing.T) {
	k := key(t)
	pre, err := k.NewPrecomputer(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var filling sync.WaitGroup
	filling.Add(1)
	go func() {
		defer filling.Done()
		for ctx.Err() == nil {
			if err := pre.FillCtx(ctx, nil, nil, 4); err != nil && ctx.Err() == nil {
				t.Error(err)
				return
			}
		}
	}()

	seen := make(map[string]bool)
	var pooledTotal int
	const rounds, batch = 20, 8
	for r := 0; r < rounds; r++ {
		ms := make([]*big.Int, batch)
		for i := range ms {
			ms[i] = big.NewInt(int64(r*batch + i))
		}
		cts, pooled, err := pre.EncryptBatch(ctx, nil, nil, ms)
		if err != nil {
			t.Fatal(err)
		}
		if pooled < 0 || pooled > batch {
			t.Fatalf("round %d: pooled = %d", r, pooled)
		}
		pooledTotal += pooled
		for i, ct := range cts {
			got, err := k.Decrypt(ct)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(ms[i]) != 0 {
				t.Fatalf("round %d slot %d: roundtrip %v != %v", r, i, got, ms[i])
			}
			key := ct.C.String()
			if seen[key] {
				t.Fatalf("round %d slot %d: duplicate ciphertext — a randomness factor was reused", r, i)
			}
			seen[key] = true
		}
	}
	cancel()
	filling.Wait()
	if got := pre.Taken(); got != int64(pooledTotal) {
		t.Fatalf("taken counter %d != pooled sum %d", got, pooledTotal)
	}
}

// TestEncryptBatchLIFODeterminismWithPausedRefill pins the batch.go
// ordering contract's determinism clause: with the refiller paused, a
// batch at any width consumes the pool and a seeded reader byte-
// identically to the serial loop.
func TestEncryptBatchLIFODeterminismWithPausedRefill(t *testing.T) {
	k := key(t)
	const n, poolDepth = 9, 4
	ms := make([]*big.Int, n)
	for i := range ms {
		ms[i] = big.NewInt(int64(100 + i))
	}
	run := func(width int) []*Ciphertext {
		pre, err := k.NewPrecomputer(1)
		if err != nil {
			t.Fatal(err)
		}
		// Identical pool state: same seed for the fill...
		if err := pre.FillCtx(context.Background(), nil, mrand.New(mrand.NewSource(7)), poolDepth); err != nil {
			t.Fatal(err)
		}
		// ...and the same seed for the online tail.
		cts, pooled, err := pre.EncryptBatch(context.Background(), parallel.New(width), mrand.New(mrand.NewSource(11)), ms)
		if err != nil {
			t.Fatal(err)
		}
		if pooled != poolDepth {
			t.Fatalf("width %d: pooled = %d, want %d", width, pooled, poolDepth)
		}
		return cts
	}
	want := run(1)
	for _, width := range []int{2, 4, 8} {
		got := run(width)
		for i := range want {
			if !bytes.Equal(want[i].C.Bytes(), got[i].C.Bytes()) {
				t.Fatalf("width %d slot %d: ciphertext differs from serial run", width, i)
			}
		}
	}
}

// TestRefillerSelfSizes starts a refiller with a floor, drains the pool
// hard, and checks it (a) reaches its floor with no traffic and (b)
// grows the pool back after sustained drain.
func TestRefillerSelfSizes(t *testing.T) {
	k := key(t)
	pre, err := k.NewPrecomputer(1)
	if err != nil {
		t.Fatal(err)
	}
	var hint atomic.Int64
	stop := pre.StartRefiller(RefillerOptions{
		Interval: time.Millisecond,
		MaxChunk: 8,
		Min:      6,
		Max:      64,
		Target:   func() int { return int(hint.Load()) },
	})
	defer stop()

	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("refiller never %s (size=%d)", what, pre.Size())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor(func() bool { return pre.Size() >= 6 }, "reached its floor")

	// An external target hint (svc's admission EWMA path) raises the
	// target past the floor.
	hint.Store(20)
	waitFor(func() bool { return pre.Size() >= 20 }, "honored the external target hint")

	// Sustained drain: consume factors and check the pool keeps pace.
	for i := 0; i < 30; i++ {
		if _, _, err := pre.Encrypt(nil, big.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(func() bool { return pre.Size() >= 6 }, "recovered after drain")

	stop()
	stop() // idempotent
	size := pre.Size()
	time.Sleep(10 * time.Millisecond)
	if pre.Size() < size {
		t.Fatalf("pool shrank after stop with no consumer: %d -> %d", size, pre.Size())
	}
	// Stopped refiller leaves the pool usable.
	if _, _, err := pre.Encrypt(nil, big.NewInt(1)); err != nil {
		t.Fatal(err)
	}
}

// TestPooledRerandomizeBatch checks the pooled rerandomization path:
// plaintexts preserved, ciphertext bytes changed, pooled/online split
// reported, degree mismatches rejected.
func TestPooledRerandomizeBatch(t *testing.T) {
	k := key(t)
	for s := 1; s <= 2; s++ {
		pre, err := k.NewPrecomputer(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := pre.Fill(nil, 3); err != nil {
			t.Fatal(err)
		}
		const n = 5 // 3 pooled + 2 online
		cs := make([]*Ciphertext, n)
		for i := range cs {
			if cs[i], err = k.Encrypt(nil, big.NewInt(int64(40+i)), s); err != nil {
				t.Fatal(err)
			}
		}
		out, pooled, err := pre.RerandomizeBatch(context.Background(), nil, nil, cs)
		if err != nil {
			t.Fatal(err)
		}
		if pooled != 3 {
			t.Fatalf("s=%d: pooled = %d, want 3", s, pooled)
		}
		for i := range out {
			if out[i].C.Cmp(cs[i].C) == 0 {
				t.Fatalf("s=%d slot %d: rerandomized ciphertext unchanged", s, i)
			}
			got, err := k.Decrypt(out[i])
			if err != nil {
				t.Fatal(err)
			}
			if got.Int64() != int64(40+i) {
				t.Fatalf("s=%d slot %d: plaintext %v after rerandomize", s, i, got)
			}
		}
		// Degree mismatch is rejected up front.
		wrong, err := k.Encrypt(nil, big.NewInt(1), 3-s)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := pre.RerandomizeBatch(context.Background(), nil, nil, []*Ciphertext{wrong}); err == nil {
			t.Fatalf("s=%d: mismatched degree accepted", s)
		}
	}
}

// TestPoolSetLifecycle covers For/evict/SetTenant/Close: pools are
// per-(key, degree), LRU-bounded, and usable (refiller-less) after
// Close — the epoch-retirement safety property svc relies on.
func TestPoolSetLifecycle(t *testing.T) {
	k := key(t)
	k2, err := GenerateKey(nil, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPoolSet(PoolSetOptions{
		MaxPools: 2,
		Refill:   RefillerOptions{Interval: time.Millisecond, Min: 2, MaxChunk: 4},
	})
	p1, err := ps.For(&k.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ps.For(&k.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again != p1 {
		t.Fatal("same (key, degree) returned a different pool")
	}
	if _, err := ps.For(&k.PublicKey, 2); err != nil {
		t.Fatal(err)
	}
	if ps.Pools() != 2 {
		t.Fatalf("pools = %d, want 2", ps.Pools())
	}
	// Third key evicts the LRU entry (p1: the s=1 pool, least recently
	// touched after the For(s=2) call... p1 was touched by `again`, so
	// LRU is actually still p1? No: order of touches is p1, p1, s2 —
	// the s=1 entry is older). Either way the bound holds.
	if _, err := ps.For(&k2.PublicKey, 1); err != nil {
		t.Fatal(err)
	}
	if ps.Pools() != 2 {
		t.Fatalf("pools after eviction = %d, want 2", ps.Pools())
	}

	// The refiller fills created pools toward Min.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if p, _ := ps.For(&k2.PublicKey, 1); p.Size() >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool-set refiller never reached its floor")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ps.SetTenant("t3")
	ps.Close()
	ps.Close() // idempotent

	// For still works after Close: a retiring epoch's in-flight sessions
	// must be able to draw pools (without refill).
	post, err := ps.For(&k.PublicKey, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs := []*Ciphertext{mustEnc(t, k, 5, 2)}
	out, _, err := post.RerandomizeBatch(context.Background(), nil, nil, cs)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := k.Decrypt(out[0]); got.Int64() != 5 {
		t.Fatalf("post-close rerandomize roundtrip = %v", got)
	}
}

func mustEnc(t *testing.T, k *PrivateKey, m int64, s int) *Ciphertext {
	t.Helper()
	ct, err := k.Encrypt(nil, big.NewInt(m), s)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}
